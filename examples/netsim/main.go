// Network simulation (Theorem 10): a universal fat-tree occupying the same
// physical volume as another routing network can simulate it with only
// polylogarithmic slowdown. This example walks the whole pipeline for a
// hypercube, a butterfly and a mesh: lay the network out in a cube, cut the
// cube into a decomposition tree (Theorem 5), balance it (Theorem 8),
// identify processors with fat-tree leaves, and deliver the same traffic on
// both machines.
//
//	go run ./examples/netsim
package main

import (
	"fmt"

	"fattree"
)

func main() {
	const n = 64
	workloads := map[string]fattree.MessageSet{
		"bit-reversal": fattree.BitReversal(n),
		"permutation":  fattree.RandomPermutation(n, 99),
	}

	for _, net := range []fattree.Network{
		fattree.NewHypercube(n),
		fattree.NewButterfly(n),
		fattree.NewMesh(n),
	} {
		fmt.Printf("=== %s on %d processors (volume %.0f) ===\n",
			net.Name(), net.Procs(), net.Volume())

		// The Section V machinery, step by step.
		id := fattree.IdentifyProcessors(net, 1)
		fmt.Printf("decomposition tree depth %d, balanced height %d, fat-tree root capacity %d\n",
			id.DecompDepth, id.BalancedHeight, id.Tree.RootCapacity())

		for name, ms := range workloads {
			r := fattree.SimulateOnFatTree(net, ms, 1)
			fmt.Printf("  %-13s %s needs %4d steps; equal-volume fat-tree: λ=%.1f, %d cycles "+
				"(%d ticks) -> slowdown %.1f vs lg³n = %.0f\n",
				name+":", net.Name(), r.NetworkCycles, r.LoadFactor,
				r.FatTreeCycles, r.FatTreeTicks, r.Slowdown, r.PolylogBound)
		}

		// One synchronous communication step over every physical link of the
		// network, realized on the fat-tree (the fixed-connection embedding
		// discussed after Theorem 10). Only direct networks have
		// processor-to-processor links; the butterfly routes through
		// switch-only levels, so it is skipped.
		if net.Name() != "butterfly" {
			_, s := fattree.EmbedFixedConnections(net, 1)
			fmt.Printf("  one full link-step of the %s = %d messages in %d fat-tree cycles\n",
				net.Name(), s.Messages(), s.Length())
		}
		fmt.Println()
	}

	fmt.Println("Theorem 10's shape: the slowdown column stays within a constant of lg³ n")
	fmt.Println("for every network — one fat-tree architecture is near-optimal for all of them.")
}
