// Application traces: Section VII argues a supercomputer "should have the
// powers to efficiently execute many different parallel algorithms", and that
// with a fat-tree "one should build the biggest fat-tree that one can afford,
// and the architecture automatically ensures that communication bandwidth is
// effectively utilized". This example runs four whole-application
// communication traces — multigrid V-cycle, finite-element solve, FFT, and
// sample sort — on three fat-trees of different hardware budgets and shows
// which applications notice the difference.
//
//	go run ./examples/apps
package main

import (
	"fmt"

	"fattree"
)

func main() {
	const k = 32 // 32×32 problem grid => n = 1024 processors
	n := k * k

	trees := []struct {
		label string
		ft    *fattree.FatTree
	}{
		{"budget (w=2√n)", fattree.NewUniversal(n, 2*k)},
		{"mid (w=n^2/3)", fattree.NewUniversal(n, 102)},
		{"full (w=n)", fattree.NewUniversal(n, n)},
	}
	traces := []*fattree.Trace{
		fattree.MultiGridTrace(k),
		fattree.FEMSolveTrace(k, 1),
		fattree.FFTTrace(n),
		fattree.SampleSortTrace(n, 4, 7),
	}

	fmt.Printf("n = %d processors; volumes: budget %.0f, mid %.0f, full %.0f\n\n",
		n,
		fattree.UniversalVolume(n, 2*k),
		fattree.UniversalVolume(n, 102),
		fattree.UniversalVolume(n, n))

	for _, tr := range traces {
		fmt.Printf("=== %s (%d messages over %d phases) ===\n",
			tr.Name, tr.Messages(), len(tr.Phases))
		full := fattree.RunTrace(trees[2].ft, tr, 32)
		for _, tc := range trees {
			res := fattree.RunTrace(tc.ft, tr, 32)
			fmt.Printf("  %-16s %6d cycles  %8d ticks  (%.2fx the full machine)\n",
				tc.label, res.TotalCycles, res.TotalTicks,
				float64(res.TotalTicks)/float64(full.TotalTicks))
		}
		fmt.Println()
	}

	fmt.Println("reading the table: an 8x volume cut costs multigrid and FEM only ~2.3x —")
	fmt.Println("their traffic is local at every scale. FFT pays ~7.5x: it is the genuinely")
	fmt.Println("global communicator that consumes the full machine's root bandwidth. Sample")
	fmt.Println("sort is insensitive for the opposite reason: its serial gather into one")
	fmt.Println("processor saturates a single leaf channel, which no network width can fix.")
	fmt.Println("One fat-tree architecture spans this spectrum; you buy the bandwidth your")
	fmt.Println("applications actually use.")
}
