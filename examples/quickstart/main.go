// Quickstart: build a universal fat-tree, generate traffic, schedule it
// off-line with Theorem 1, and play the schedule through the simulated
// switch hardware.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fattree"
)

func main() {
	// A universal fat-tree on 256 processors with root capacity 64: channel
	// capacities double level-by-level near the leaves and grow at 4^(1/3)
	// near the root (Section IV of the paper).
	const n = 256
	ft := fattree.NewUniversal(n, 64)
	fmt.Println("topology:", ft)

	// Traffic: a random permutation — every processor sends one message.
	ms := fattree.RandomPermutation(n, 42)
	fmt.Printf("workload: %d messages, load factor λ = %.2f (lower bound on delivery cycles)\n",
		len(ms), fattree.LoadFactor(ft, ms))

	// Off-line scheduling (Theorem 1): partition the messages into one-cycle
	// sets; d = O(λ·lg n).
	schedule := fattree.ScheduleOffline(ft, ms)
	if err := schedule.Verify(ms); err != nil {
		log.Fatalf("schedule invalid: %v", err)
	}
	fmt.Printf("schedule: %d delivery cycles (Theorem 1 bound %.0f)\n",
		schedule.Length(), schedule.Bound)

	// Play the schedule through the switch hardware of Fig. 3 (ideal
	// concentrators): every message arrives, nothing is dropped.
	engine := fattree.NewEngine(ft, fattree.SwitchIdeal, 0)
	stats := fattree.RunSchedule(engine, schedule)
	fmt.Printf("hardware: delivered %d/%d messages in %d cycles, %d drops\n",
		stats.Delivered, len(ms), stats.Cycles, stats.Drops)

	// Bit-serial timing (Fig. 2): each delivery cycle is O(lg n) ticks.
	const payload = 32
	fmt.Printf("bit-serial time: %d clock ticks total (%d-bit payloads, max %d ticks/cycle)\n",
		fattree.ScheduleTicks(ft, schedule.Cycles, payload),
		payload, fattree.MaxCycleTicks(ft, payload))

	// The same workload delivered online (greedy, with retries) for
	// comparison — no precomputed schedule, a few more cycles.
	online := fattree.RunOnline(fattree.NewEngine(ft, fattree.SwitchIdeal, 0), ms)
	fmt.Printf("online for comparison: %d cycles, %d drops along the way\n",
		online.Cycles, online.Drops)
}
