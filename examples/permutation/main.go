// Permutation routing: Section VI compares high-volume universal fat-trees
// with classical permutation networks — a fat-tree of Θ(n^(3/2)) volume
// routes any permutation off-line in O(lg n) time, which is best possible for
// bounded-degree processors and matches Beneš networks. This example routes
// adversarial permutations on three machines sized per the paper's remark
// (channel capacities Ω(lg n)) and contrasts the mesh and plain-tree
// baselines, where the same permutations take polynomially long.
//
//	go run ./examples/permutation
package main

import (
	"fmt"

	"fattree"
)

func main() {
	const n = 256
	lgn := fattree.Lg(n)

	// The permutation machine: universal profile scaled so every channel has
	// at least 2·lg n wires (processors get Θ(lg n) connections, as a
	// hypercube also requires). Corollary 2 then delivers any permutation in
	// Θ(λ) = O(1) delivery cycles of O(lg n) ticks each.
	perm := fattree.New(n, func(k int) int {
		return fattree.UniversalCapacity(n, n, k) * 2 * lgn
	})

	fmt.Printf("permutation fat-tree: n=%d, root %d wires, leaf channels %d wires\n\n",
		n, perm.RootCapacity(), perm.CapacityAtLevel(perm.Levels()))

	fmt.Println("permutation     λ      cycles  ticks  Beneš depth  mesh steps  tree steps")
	for _, wl := range []struct {
		name string
		ms   fattree.MessageSet
	}{
		{"bit-reversal", fattree.BitReversal(n)},
		{"transpose", fattree.Transpose(n)},
		{"perfect shuffle", fattree.Shuffle(n)},
		{"mirror", fattree.Reversal(n)},
		{"random", fattree.RandomPermutation(n, 4)},
	} {
		s := fattree.ScheduleOfflineBig(perm, wl.ms)
		if err := s.Verify(wl.ms); err != nil {
			panic(err)
		}
		ticks := fattree.ScheduleTicks(perm, s.Cycles, 0)
		mesh := fattree.DeliverOnNetwork(fattree.NewMesh(n), wl.ms)
		tree := fattree.DeliverOnNetwork(fattree.NewBinaryTree(n), wl.ms)
		fmt.Printf("%-15s %-6.2f %-7d %-6d %-12d %-11d %d\n",
			wl.name, s.LoadFactor, s.Length(), ticks, 2*lgn-1, mesh.Cycles, tree.Cycles)
	}

	fmt.Println("\n=> the fat-tree's tick column scales as O(lg n) — the Beneš figure —")
	fmt.Println("   while the mesh pays Θ(sqrt n) and the tree Θ(n) on global permutations.")
}
