// Finite-element locality study: the paper's introduction observes that many
// finite-element problems are planar, planar graphs have O(sqrt n) bisection
// (Lipton–Tarjan), and so a hypercube's full communication bandwidth is
// wasted on them — while a fat-tree can be *scaled down* to match the
// traffic. This example quantifies that: a k×k FEM mesh exchange runs on a
// sqrt(n)-root universal fat-tree with a small load factor and a fraction of
// the hypercube's volume, and the upper tree levels stay almost idle.
//
//	go run ./examples/finiteelement
package main

import (
	"fmt"

	"fattree"
)

func main() {
	const k = 32 // 32×32 mesh => n = 1024 processors
	n := k * k

	mesh := fattree.NewGridMesh(k, k)
	step := mesh.ExchangeStep()
	fmt.Printf("planar FEM mesh %dx%d: %d points, %d messages per relaxation step\n",
		k, k, n, len(step))
	fmt.Printf("bisection width of the embedded mesh: %d = Θ(sqrt n) (Lipton–Tarjan)\n\n",
		mesh.BisectionWidth(n))

	// Scale the fat-tree to the traffic: root capacity Θ(sqrt n). The mesh's
	// row-boundary traffic recurs at every scale, so mid-tree channels set
	// the load factor; the paper's point is that the *root* — the expensive
	// part — needs only Θ(sqrt n) wires rather than the hypercube's Θ(n).
	ft := fattree.NewUniversal(n, 2*k)
	lam := fattree.LoadFactor(ft, step)
	s := fattree.ScheduleOffline(ft, step)
	fmt.Printf("sqrt(n)-root fat-tree: λ = %.2f, one exchange = %d delivery cycles\n",
		lam, s.Length())

	// Hardware comparison: the scaled fat-tree versus a hypercube.
	ftVol := fattree.UniversalVolume(n, 2*k)
	cubeVol := fattree.HypercubeVolume(n)
	fmt.Printf("hardware: fat-tree volume %.0f vs hypercube volume %.0f (%.1f%%)\n\n",
		ftVol, cubeVol, 100*ftVol/cubeVol)

	// Where does the traffic go? Tabulate load by tree level: the expensive
	// upper channels carry almost nothing — the telephone-exchange effect.
	loads := fattree.NewLoads(ft, step)
	fmt.Println("level  capacity  max channel load  utilization")
	for lvl := 0; lvl <= ft.Levels(); lvl++ {
		maxLoad := 0
		first := 1 << uint(lvl)
		for v := first; v < 2*first; v++ {
			for _, dir := range []fattree.Direction{fattree.Up, fattree.Down} {
				if l := loads.Load(fattree.Channel{Node: v, Dir: dir}); l > maxLoad {
					maxLoad = l
				}
			}
		}
		cap := ft.CapacityAtLevel(lvl)
		fmt.Printf("%5d  %8d  %16d  %10.2f\n", lvl, cap, maxLoad, float64(maxLoad)/float64(cap))
	}

	// Ablation: destroy locality by assigning mesh points to processors at
	// random. The same mesh now loads the top of the tree heavily.
	shuffled := fattree.NewGridMeshShuffled(k, k, 7)
	badStep := shuffled.ExchangeStep()
	fmt.Printf("\nshuffled embedding (locality destroyed): λ = %.2f, %d cycles per exchange\n",
		fattree.LoadFactor(ft, badStep), fattree.ScheduleOffline(ft, badStep).Length())
	fmt.Println("=> the fat-tree rewards layouts whose communication is local,")
	fmt.Println("   and a fat-tree sized for the traffic replaces special-purpose hardware.")
}
