// External I/O: Section II gives the fat-tree an interface with the external
// world through the root channel, and Section VII calls it "a natural
// high-bandwidth external connection". This example runs a streaming
// pipeline: load a dataset in through the root, process it with local
// exchanges, and stream results back out — showing I/O throughput scaling
// with the root capacity you pay for, and I/O overlapping internal compute
// traffic because inputs ride only down channels and outputs only up
// channels.
//
//	go run ./examples/io
package main

import (
	"fmt"

	"fattree"
)

func main() {
	const n = 256
	const chunk = 512 // I/O messages per pipeline stage

	fmt.Println("streaming pipeline: root-load -> local compute -> root-store")
	fmt.Println()
	fmt.Println("w (root)  load cycles  compute cycles  store cycles  total  I/O bound k/w")
	for _, w := range []int{8, 16, 32, 64} {
		ft := fattree.NewUniversal(n, w)

		// Stage 1: stream the chunk in (root -> processors).
		load := fattree.ExternalIO(n, chunk, 0, 1)
		sLoad := fattree.ScheduleOffline(ft, load)

		// Stage 2: a local relaxation exchange (the compute phase's traffic).
		compute := fattree.NewGridMesh(16, 16).ExchangeStep()
		sCompute := fattree.ScheduleOfflineCompact(ft, compute)

		// Stage 3: stream results out (processors -> root).
		store := fattree.ExternalIO(n, 0, chunk, 2)
		sStore := fattree.ScheduleOffline(ft, store)

		total := sLoad.Length() + sCompute.Length() + sStore.Length()
		fmt.Printf("%-9d %-12d %-15d %-13d %-6d %d\n",
			w, sLoad.Length(), sCompute.Length(), sStore.Length(), total, chunk/w)
	}

	// Overlap: inputs use only down channels, outputs only up channels, and
	// local compute stays low in the tree — one combined schedule beats the
	// three stages run back to back.
	ft := fattree.NewUniversal(n, 32)
	combined := fattree.Concat(
		fattree.ExternalIO(n, chunk, 0, 1),
		fattree.NewGridMesh(16, 16).ExchangeStep(),
		fattree.ExternalIO(n, 0, chunk, 2),
	)
	s := fattree.ScheduleOfflineCompact(ft, combined)
	if err := s.Verify(combined); err != nil {
		panic(err)
	}
	fmt.Printf("\noverlapped (w=32): all three stages in %d cycles — the root channel's\n", s.Length())
	fmt.Println("two directions and the tree's lower levels work simultaneously.")
}
