package fattree

import "fattree/internal/trace"

// This file re-exports the application-trace machinery: multi-phase
// communication patterns of whole parallel algorithms, run phase-by-phase
// through the off-line scheduler.

type (
	// Trace is a multi-phase application communication trace.
	Trace = trace.Trace
	// Phase is one communication phase of a trace.
	Phase = trace.Phase
	// TraceResult is the cost breakdown of running a trace on a fat-tree.
	TraceResult = trace.Result
	// PhaseResult is one phase's cost.
	PhaseResult = trace.PhaseResult
)

// FFTTrace is the n-point FFT: lg n butterfly exchange stages of increasing
// globality.
func FFTTrace(n int) *Trace { return trace.FFT(n) }

// FEMSolveTrace is an iterative planar finite-element solve on a k×k mesh:
// relaxation exchanges plus tree reduction/broadcast per iteration.
func FEMSolveTrace(k, iters int) *Trace { return trace.FEMSolve(k, iters) }

// MultiGridTrace is one V-cycle on a k×k grid: smooth/restrict down,
// prolong up — local traffic at every scale.
func MultiGridTrace(k int) *Trace { return trace.MultiGrid(k) }

// SampleSortTrace is a three-phase sample sort: sample gather, splitter
// broadcast, balanced redistribution.
func SampleSortTrace(n, perProc int, seed int64) *Trace {
	return trace.SampleSort(n, perProc, seed)
}

// RunTrace schedules every phase of tr on t with Theorem 1 and totals
// delivery cycles and bit-serial ticks.
func RunTrace(t *FatTree, tr *Trace, payloadBits int) *TraceResult {
	return trace.Run(t, tr, payloadBits)
}
