// Integration tests of the public API: every facade entry point is exercised
// the way a downstream user would, and the cross-package invariants (schedule
// validity on hardware, universality bounds) are re-checked at the API
// surface.
package fattree_test

import (
	"math"
	"testing"

	"fattree"
)

func TestPublicTopologyAPI(t *testing.T) {
	ft := fattree.NewUniversal(64, 16)
	if ft.Processors() != 64 || ft.RootCapacity() != 16 {
		t.Fatalf("topology basics wrong: %v", ft)
	}
	if fattree.UniversalCapacity(64, 16, 0) != 16 {
		t.Errorf("UniversalCapacity root mismatch")
	}
	custom := fattree.New(8, func(k int) int { return k + 1 })
	if custom.CapacityAtLevel(3) != 4 {
		t.Errorf("custom profile not honoured")
	}
	if fattree.NewConstant(8, 2).TotalWires() != 60 {
		t.Errorf("constant tree wires wrong")
	}
	if fattree.NewDoubling(8).RootCapacity() != 8 {
		t.Errorf("doubling root wrong")
	}
	if fattree.Lg(1000) != 10 {
		t.Errorf("Lg wrong")
	}
}

func TestPublicSchedulingPipeline(t *testing.T) {
	ft := fattree.NewUniversal(128, 32)
	ms := fattree.Concat(
		fattree.RandomPermutation(128, 1),
		fattree.KLocal(128, 100, 4, 2),
	)
	lam := fattree.LoadFactor(ft, ms)
	if lam <= 0 {
		t.Fatalf("λ = %v", lam)
	}
	for name, f := range map[string]func(fattree.Topology, fattree.MessageSet) *fattree.Schedule{
		"offline": fattree.ScheduleOffline,
		"big":     fattree.ScheduleOfflineBig,
		"greedy":  fattree.ScheduleGreedy,
	} {
		s := f(ft, ms)
		if err := s.Verify(ms); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if float64(s.Length()) < lam {
			t.Errorf("%s: beats the λ lower bound — invalid", name)
		}
	}
}

func TestPublicHardwarePipeline(t *testing.T) {
	ft := fattree.NewUniversal(64, 32)
	ms := fattree.BitReversal(64)
	stats, s := fattree.DeliverOffline(ft, ms)
	if stats.Drops != 0 || stats.Delivered != len(ms) || stats.Cycles != s.Length() {
		t.Fatalf("offline hardware delivery wrong: %+v", stats)
	}
	online := fattree.RunOnline(fattree.NewEngine(ft, fattree.SwitchPartial, 3), ms)
	if online.Delivered != len(ms) {
		t.Fatalf("online partial delivery incomplete: %+v", online)
	}
}

func TestPublicCostModel(t *testing.T) {
	n := 1024
	if fattree.UniversalVolume(n, n) != fattree.HypercubeVolume(n) {
		t.Errorf("w=n volume should equal hypercube volume")
	}
	w := fattree.RootCapacityForVolume(n, fattree.MeshVolume(n))
	if w < 1 || w > n {
		t.Errorf("root capacity out of range: %d", w)
	}
	ft := fattree.NewUniversalOfVolume(n, fattree.HypercubeVolume(n))
	if ft.RootCapacity() < n/8 {
		t.Errorf("hypercube-volume tree too narrow: %d", ft.RootCapacity())
	}
	box := fattree.NodeBox(64, 2)
	if math.Abs(box.Volume()-512) > 1 {
		t.Errorf("node box volume %v", box.Volume())
	}
	if fattree.UniversalComponents(n, n) < n {
		t.Errorf("component count too small")
	}
	if fattree.ComponentsBound(n, n) <= 0 || fattree.ButterflyVolume(n) <= 0 ||
		fattree.TreeVolume(n) <= 0 || fattree.VolumeLowerBoundFromBisection(n, n/2) <= 0 {
		t.Errorf("cost figures must be positive")
	}
}

func TestPublicDecomposition(t *testing.T) {
	l := fattree.GridLayout(64, 4096)
	dt := fattree.CutPlanes(l, 1)
	bt := fattree.BalanceDecomposition(dt)
	if bt.Procs != 64 {
		t.Fatalf("balanced tree procs %d", bt.Procs)
	}
	heights := fattree.MaximalSubtrees(fattree.Interval{Lo: 3, Hi: 11})
	if len(heights) == 0 {
		t.Fatalf("no subtrees")
	}
	colors := []bool{true, false, true, false}
	a, b := fattree.SplitPearls(func(i int) bool { return colors[i] }, []fattree.Interval{{Lo: 0, Hi: 4}})
	if len(a) == 0 || len(b) == 0 {
		t.Fatalf("pearls split degenerate")
	}
}

func TestPublicUniversality(t *testing.T) {
	for _, net := range []fattree.Network{
		fattree.NewHypercube(32),
		fattree.NewShuffleExchange(32),
		fattree.NewButterfly(32),
	} {
		r := fattree.SimulateOnFatTree(net, fattree.RandomPermutation(32, 5), 1)
		if r.Slowdown <= 0 || r.Slowdown > 8*r.PolylogBound {
			t.Errorf("%s: slowdown %.1f outside envelope %.1f", net.Name(), r.Slowdown, r.PolylogBound)
		}
	}
	id := fattree.IdentifyProcessors(fattree.NewMesh(16), 1)
	if id.Tree.Processors() != 16 {
		t.Errorf("identification tree size %d", id.Tree.Processors())
	}
	_, s := fattree.EmbedFixedConnections(fattree.NewMesh(16), 1)
	if s.Messages() != 48 { // 4x4 mesh: 24 undirected links, both directions
		t.Errorf("mesh embedding found %d link messages, want 48", s.Messages())
	}
	// The binary tree routes through internal switches only, so it has no
	// processor-to-processor links — an empty embedding, by design.
	_, sTree := fattree.EmbedFixedConnections(fattree.NewBinaryTree(16), 1)
	if sTree.Messages() != 0 {
		t.Errorf("leaf-processor tree should embed no direct links")
	}
}

func TestPublicWorkloads(t *testing.T) {
	n := 64
	ft := fattree.NewConstant(n, 1)
	for name, ms := range map[string]fattree.MessageSet{
		"perm":      fattree.RandomPermutation(n, 1),
		"random":    fattree.Random(n, 100, 2),
		"bitrev":    fattree.BitReversal(n),
		"transpose": fattree.Transpose(n),
		"shuffle":   fattree.Shuffle(n),
		"reversal":  fattree.Reversal(n),
		"alltoall":  fattree.AllToAll(8),
		"local":     fattree.KLocal(n, 100, 4, 3),
		"nn":        fattree.NearestNeighbor(n),
		"hotspot":   fattree.HotSpot(n, 20, 4),
	} {
		if err := ms.Validate(ft); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	mesh := fattree.NewGridMesh(8, 8)
	if len(mesh.ExchangeStep()) == 0 {
		t.Errorf("empty FEM exchange")
	}
	if fattree.NewGridMeshShuffled(8, 8, 1).BisectionWidth(64) < mesh.BisectionWidth(64) {
		t.Errorf("shuffled mesh should not have smaller bisection")
	}
}

func TestPublicTiming(t *testing.T) {
	ft := fattree.NewConstant(64, 1)
	m := fattree.Message{Src: 0, Dst: 63}
	if fattree.MessageTicks(ft, m, 8) != 12+8+2 {
		t.Errorf("message ticks wrong")
	}
	ms := fattree.MessageSet{m}
	if fattree.CycleTicks(ft, ms, 8) != fattree.MessageTicks(ft, m, 8) {
		t.Errorf("cycle ticks wrong")
	}
	if fattree.MaxCycleTicks(ft, 8) < fattree.CycleTicks(ft, ms, 8) {
		t.Errorf("max cycle ticks below actual")
	}
	if fattree.ScheduleTicks(ft, []fattree.MessageSet{ms, ms}, 8) != 2*fattree.CycleTicks(ft, ms, 8) {
		t.Errorf("schedule ticks wrong")
	}
}

func TestPublicLoadsAndChannels(t *testing.T) {
	ft := fattree.NewConstant(8, 1)
	ms := fattree.MessageSet{{Src: 0, Dst: 7}}
	loads := fattree.NewLoads(ft, ms)
	up := fattree.Channel{Node: 8, Dir: fattree.Up}
	if loads.Load(up) != 1 {
		t.Errorf("load accounting wrong")
	}
	if !fattree.IsOneCycle(ft, ms) {
		t.Errorf("single message must be one-cycle")
	}
	f, arg := loads.MaxFactor()
	if f != 1 || arg.Node == 0 {
		t.Errorf("max factor wrong: %v at %v", f, arg)
	}
}
