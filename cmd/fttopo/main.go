// Command fttopo inspects fat-tree topologies and hardware costs: given a
// processor count and either a root capacity or a physical volume budget, it
// prints the per-level channel capacities, wiring totals, component counts,
// and the Theorem 4 volume next to the competing networks' figures.
//
// Usage:
//
//	fttopo -n 1024 -w 256
//	fttopo -n 4096 -volume 1e6
//
// Exit status: 0 success, 1 runtime failure, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"os"

	"fattree"
	"fattree/internal/metrics"
	"fattree/internal/viz"
)

func main() {
	n := flag.Int("n", 256, "number of processors (power of two)")
	w := flag.Int("w", 0, "root capacity (default n^(2/3) when volume unset)")
	volume := flag.Float64("volume", 0, "volume budget; sets the root capacity via Theorem 4's inverse")
	flag.Parse()

	if *n < 2 || *n&(*n-1) != 0 {
		fmt.Fprintf(os.Stderr, "fttopo: -n must be a power of two >= 2 (got %d)\n", *n)
		os.Exit(2)
	}
	rootCap := *w
	switch {
	case *volume > 0 && *w > 0:
		fmt.Fprintln(os.Stderr, "fttopo: give either -w or -volume, not both")
		os.Exit(2)
	case *volume > 0:
		rootCap = fattree.RootCapacityForVolume(*n, *volume)
		fmt.Printf("volume budget %.3g -> root capacity %d\n\n", *volume, rootCap)
	case rootCap == 0:
		// Default: the planar-friendly w = n^(2/3) scale.
		for rootCap*rootCap*rootCap < (*n)*(*n) {
			rootCap++
		}
	}

	ft := fattree.NewUniversal(*n, rootCap)
	fmt.Printf("universal fat-tree: n=%d processors, root capacity w=%d, %d switches\n\n",
		*n, ft.RootCapacity(), ft.InternalNodes())

	viz.Silhouette(os.Stdout, ft)
	fmt.Println()

	prof := metrics.NewTable("Channel capacities by level",
		"level", "nodes", "capacity", "wires at level")
	for k := 0; k <= ft.Levels(); k++ {
		nodes := 1 << uint(k)
		cap := ft.CapacityAtLevel(k)
		prof.AddRow(k, nodes, cap, 2*nodes*cap)
	}
	fmt.Print(prof.String())

	cost := metrics.NewTable("\nHardware cost (3-D VLSI model, Theorem 4)",
		"quantity", "fat-tree", "hypercube", "mesh", "binary tree")
	cost.AddRow("volume",
		fattree.UniversalVolume(*n, ft.RootCapacity()),
		fattree.HypercubeVolume(*n), fattree.MeshVolume(*n), fattree.TreeVolume(*n))
	cost.AddRow("components", fattree.UniversalComponents(*n, ft.RootCapacity()), "-", "-", "-")
	cost.AddRow("total wires", ft.TotalWires(), "-", "-", "-")
	cost.AddRow("bisection (wires)", ft.CapacityAtLevel(1)*2, *n/2, isqrt(*n), 1)
	fmt.Print(cost.String())
}

// isqrt returns floor(sqrt(n)).
func isqrt(n int) int {
	k := 0
	for (k+1)*(k+1) <= n {
		k++
	}
	return k
}
