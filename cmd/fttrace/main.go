// Command fttrace runs a whole-application communication trace on a fat-tree
// and prints the per-phase cost breakdown — delivery cycles and bit-serial
// ticks per phase, with load factors showing where the application stresses
// the tree.
//
// Usage:
//
//	fttrace -trace fft -n 1024 -w 256
//	fttrace -trace multigrid -k 32 -w 64
//	fttrace -trace femsolve -k 16 -iters 5
//	fttrace -trace samplesort -n 256 -w 64
//
// Exit status: 0 success, 1 runtime failure, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"os"

	"fattree"
	"fattree/internal/metrics"
)

func main() {
	traceName := flag.String("trace", "fft", "trace: fft|multigrid|femsolve|samplesort")
	n := flag.Int("n", 256, "processors for fft/samplesort (power of two)")
	k := flag.Int("k", 16, "grid side for multigrid/femsolve (power of two for multigrid)")
	iters := flag.Int("iters", 3, "iterations for femsolve")
	w := flag.Int("w", 0, "root capacity (default n/4)")
	payload := flag.Int("payload", 32, "payload bits")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	var tr *fattree.Trace
	switch *traceName {
	case "fft":
		tr = fattree.FFTTrace(*n)
	case "multigrid":
		tr = fattree.MultiGridTrace(*k)
	case "femsolve":
		tr = fattree.FEMSolveTrace(*k, *iters)
	case "samplesort":
		tr = fattree.SampleSortTrace(*n, 4, *seed)
	default:
		fmt.Fprintf(os.Stderr, "fttrace: unknown trace %q\n", *traceName)
		os.Exit(2)
	}

	procs := 2
	for procs < tr.Procs {
		procs *= 2
	}
	if *w == 0 {
		*w = procs / 4
		if *w < 1 {
			*w = 1
		}
	}
	ft := fattree.NewUniversal(procs, *w)
	fmt.Printf("trace %s: %d phases, %d messages, on %v\n\n",
		tr.Name, len(tr.Phases), tr.Messages(), ft)

	res := fattree.RunTrace(ft, tr, *payload)
	tab := metrics.NewTable("per-phase cost",
		"phase", "repeat", "messages", "λ", "cycles", "ticks", "total ticks")
	for i, pr := range res.PerPhase {
		tab.AddRow(pr.Name, pr.Repeat, len(tr.Phases[i].Messages), pr.Lambda,
			pr.Cycles, pr.Ticks, pr.TotalTicks)
	}
	fmt.Print(tab.String())
	fmt.Printf("\ntotal: %d delivery cycles, %d ticks\n", res.TotalCycles, res.TotalTicks)
}
