package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"fattree"
)

// This file is ftbench's micro-benchmark mode (-bench): the delivery-cycle
// and off-line-scheduler benchmarks tracked by EXPERIMENTS.md §A4, measured
// with the standard testing.Benchmark harness and emitted as a table or, with
// -json, as machine-readable records (make bench-json writes BENCH_6.json).
// The benchmark bodies mirror BenchmarkRouteCycle{Serial,Parallel} and
// BenchmarkOffLineSchedule in bench_test.go so the two entry points measure
// the same work. With -hist, the serial delivery cycle additionally runs with
// an observer attached and the resulting latency/congestion histograms are
// reported (text) or embedded per record (JSON).

// benchMeta records where and when a benchmark snapshot was taken, so
// BENCH_*.json files are comparable across machines and PRs (ftbenchdiff
// prints both sides' meta before the numbers).
type benchMeta struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Timestamp  string `json:"timestamp_utc"`
}

func currentBenchMeta() benchMeta {
	return benchMeta{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
}

// benchResult is one micro-benchmark measurement. Hist is only set for the
// observed serial delivery cycle under -hist; BytesPerEndpoint only for the
// implicit-topology rows, where the retained-heap footprint per endpoint is
// the tracked figure (ISSUE 8: 2^20 endpoints in bounded memory).
type benchResult struct {
	Name             string                `json:"name"`
	N                int                   `json:"n"`
	Iterations       int                   `json:"iterations"`
	NsPerOp          float64               `json:"ns_per_op"`
	BytesPerOp       int64                 `json:"bytes_per_op"`
	AllocsPerOp      int64                 `json:"allocs_per_op"`
	BytesPerEndpoint float64               `json:"bytes_per_endpoint,omitempty"`
	Hist             *fattree.ObsvSnapshot `json:"hist,omitempty"`
}

// benchDoc is the -json output shape since PR 5. ftbenchdiff also accepts
// the bare []benchResult array emitted before the meta header existed.
type benchDoc struct {
	Meta       benchMeta     `json:"meta"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// benchSizes are the processor counts every micro-benchmark runs at.
var benchSizes = []int{256, 1024, 4096}

// implicitBenchSizes are the large-n rows the streaming engine runs at. They
// are implicit-topology only: a materialized tree at 2^20 endpoints would
// allocate per-node switch state far beyond the memory ceiling these rows
// exist to pin, so the dense engine has no row here by design.
var implicitBenchSizes = []int{1 << 16, 1 << 18, 1 << 20}

// runMicroBenchmarks measures the suite and writes it to stdout.
func runMicroBenchmarks(asJSON, withHist bool) error {
	var results []benchResult
	for _, n := range benchSizes {
		var obs *fattree.Observer
		if withHist {
			// Same deterministic topology the benchmark builds internally.
			obs = fattree.NewObserver(fattree.NewUniversal(n, n/4))
		}
		serial := measureBench("RouteCycleSerial", n, routeCycleBench(n, 1, obs))
		if obs != nil {
			snap := obs.Snapshot()
			serial.Hist = &snap
		}
		results = append(results,
			serial,
			measureBench("RouteCycleParallel", n, routeCycleBench(n, 0, nil)),
			measureBench("OffLineSchedule", n, offLineBench(n)),
		)
	}
	for _, n := range implicitBenchSizes {
		results = append(results, implicitRouteBenches(n)...)
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(benchDoc{Meta: currentBenchMeta(), Benchmarks: results})
	}
	fmt.Printf("%-22s %8s %14s %12s %12s %12s\n",
		"benchmark", "n", "ns/op", "B/op", "allocs/op", "B/endpoint")
	for _, r := range results {
		perEndpoint := "-"
		if r.BytesPerEndpoint > 0 {
			perEndpoint = fmt.Sprintf("%.1f", r.BytesPerEndpoint)
		}
		fmt.Printf("%-22s %8d %14.0f %12d %12d %12s\n",
			r.Name, r.N, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, perEndpoint)
	}
	if withHist {
		for _, r := range results {
			if r.Hist == nil {
				continue
			}
			fmt.Printf("\n%s n=%d observed histograms:\n", r.Name, r.N)
			if err := r.Hist.WriteHistSummary(os.Stdout); err != nil {
				return err
			}
		}
	}
	return nil
}

// measureBench runs one benchmark function under the standard harness.
func measureBench(name string, n int, fn func(*testing.B)) benchResult {
	r := testing.Benchmark(fn)
	return benchResult{
		Name:        name,
		N:           n,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// routeCycleBench measures one steady-state delivery cycle on a warmed
// engine; workers = 1 pins the serial path, 0 uses GOMAXPROCS. A non-nil obs
// is attached to the engine (its tree must match n), so the measurement also
// covers the histogram-update cost at the serial merge points.
func routeCycleBench(n, workers int, obs *fattree.Observer) func(*testing.B) {
	return func(b *testing.B) {
		ft := fattree.NewUniversal(n, n/4)
		ms := fattree.RandomPermutation(n, 1)
		e := fattree.NewEngineWithOptions(ft, fattree.SwitchIdeal, 0,
			fattree.Options{Workers: workers, Observer: obs})
		// Warm the scratch arena so the measured loop is steady state.
		e.RunCycle(ms)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			delivered, res := e.RunCycle(ms)
			if res.Delivered == 0 || len(delivered) != len(ms) {
				b.Fatalf("cycle delivered %d of %d", res.Delivered, len(ms))
			}
		}
	}
}

// implicitRouteBenches measures the streaming engine on an implicit
// universal tree at one large n: a serial row (pinned at 0 allocs/op, like
// the dense RouteCycleSerial) and a parallel row, plus the retained-heap
// footprint per endpoint on the serial row. The footprint is the delta of two
// GC'd heap readings around topology + engine construction and one warm-up
// cycle, so it captures exactly what the data plane retains at steady state —
// O(messages × path length) arena plus the O(levels) capacity profile,
// independent of n. The CI memory-guard pins the same figure out of
// TestSoakImplicitHugeBoundedMemory.
func implicitRouteBenches(n int) []benchResult {
	ms := fattree.Random(n, n/64, 1)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	ft := fattree.NewImplicitUniversal(n, n/4)
	e := fattree.NewEngineWithOptions(ft, fattree.SwitchIdeal, 0, fattree.Options{Workers: 1})
	e.RunCycle(ms) // warm the scratch arena to its high-water mark
	runtime.GC()
	runtime.ReadMemStats(&after)
	retained := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if retained < 0 {
		retained = 0 // the first GC collected more than the engine retains
	}

	serial := measureBench("RouteCycleImplicit", n, implicitCycleBench(e, ms))
	serial.BytesPerEndpoint = float64(retained) / float64(n)

	fp := fattree.NewImplicitUniversal(n, n/4)
	ep := fattree.NewEngineWithOptions(fp, fattree.SwitchIdeal, 0, fattree.Options{Workers: 0})
	ep.RunCycle(ms)
	parallel := measureBench("RouteCycleImplicitPar", n, implicitCycleBench(ep, ms))
	return []benchResult{serial, parallel}
}

// implicitCycleBench measures one steady-state delivery cycle on a warmed
// streaming engine; random large-n sets are not one-cycle, so the invariant
// is progress plus a full delivered vector, not full delivery.
func implicitCycleBench(e *fattree.Engine, ms fattree.MessageSet) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			delivered, res := e.RunCycle(ms)
			if res.Delivered == 0 || len(delivered) != len(ms) {
				b.Fatalf("cycle delivered %d of %d", res.Delivered, len(ms))
			}
		}
	}
}

// offLineBench measures the Theorem 1 scheduler end to end on a warmed
// reusable Scheduler — the steady state of any caller that schedules more
// than once, pinned at 0 allocs/op by TestOffLineScheduleAllocs and the CI
// bench-guard.
func offLineBench(n int) func(*testing.B) {
	return func(b *testing.B) {
		ft := fattree.NewUniversal(n, n/4)
		ms := fattree.Random(n, 4*n, 1)
		sc := fattree.NewScheduler(ft)
		// Warm the scratch arena so the measured loop is steady state.
		sc.OffLine(ms)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := sc.OffLine(ms)
			if s.Length() == 0 {
				b.Fatal("empty schedule")
			}
		}
	}
}
