package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"fattree"
)

// This file is ftbench's micro-benchmark mode (-bench): the delivery-cycle
// and off-line-scheduler benchmarks tracked by EXPERIMENTS.md §A4, measured
// with the standard testing.Benchmark harness and emitted as a table or, with
// -json, as machine-readable records (make bench-json writes BENCH_3.json).
// The benchmark bodies mirror BenchmarkRouteCycle{Serial,Parallel} and
// BenchmarkOffLineSchedule in bench_test.go so the two entry points measure
// the same work.

// benchResult is one micro-benchmark measurement.
type benchResult struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchSizes are the processor counts every micro-benchmark runs at.
var benchSizes = []int{256, 1024, 4096}

// runMicroBenchmarks measures the suite and writes it to stdout.
func runMicroBenchmarks(asJSON bool) error {
	var results []benchResult
	for _, n := range benchSizes {
		results = append(results,
			measureBench("RouteCycleSerial", n, routeCycleBench(n, 1)),
			measureBench("RouteCycleParallel", n, routeCycleBench(n, 0)),
			measureBench("OffLineSchedule", n, offLineBench(n)),
		)
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(results)
	}
	fmt.Printf("%-20s %6s %14s %12s %12s\n", "benchmark", "n", "ns/op", "B/op", "allocs/op")
	for _, r := range results {
		fmt.Printf("%-20s %6d %14.0f %12d %12d\n", r.Name, r.N, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	return nil
}

// measureBench runs one benchmark function under the standard harness.
func measureBench(name string, n int, fn func(*testing.B)) benchResult {
	r := testing.Benchmark(fn)
	return benchResult{
		Name:        name,
		N:           n,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// routeCycleBench measures one steady-state delivery cycle on a warmed
// engine; workers = 1 pins the serial path, 0 uses GOMAXPROCS.
func routeCycleBench(n, workers int) func(*testing.B) {
	return func(b *testing.B) {
		ft := fattree.NewUniversal(n, n/4)
		ms := fattree.RandomPermutation(n, 1)
		e := fattree.NewEngineWithOptions(ft, fattree.SwitchIdeal, 0, fattree.Options{Workers: workers})
		// Warm the scratch arena so the measured loop is steady state.
		e.RunCycle(ms)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			delivered, res := e.RunCycle(ms)
			if res.Delivered == 0 || len(delivered) != len(ms) {
				b.Fatalf("cycle delivered %d of %d", res.Delivered, len(ms))
			}
		}
	}
}

// offLineBench measures the Theorem 1 scheduler end to end.
func offLineBench(n int) func(*testing.B) {
	return func(b *testing.B) {
		ft := fattree.NewUniversal(n, n/4)
		ms := fattree.Random(n, 4*n, 1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := fattree.ScheduleOffline(ft, ms)
			if s.Length() == 0 {
				b.Fatal("empty schedule")
			}
		}
	}
}
