// Command ftbench regenerates every experiment table of EXPERIMENTS.md: one
// experiment per theorem, lemma, corollary and figure of the paper, plus the
// design ablations. Run it with no arguments for the full suite, or select
// experiments by id.
//
// Usage:
//
//	ftbench                 # full suite
//	ftbench -quick          # smaller sizes
//	ftbench -run E8,E9      # selected experiments
//	ftbench -list           # list experiment ids
//	ftbench -bench -json    # delivery-engine micro-benchmarks as JSON
//	ftbench -bench -profile cpu,mem  # with pprof profiles of the run
//
// Exit status: 0 success, 1 runtime failure, 2 usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fattree/internal/experiments"
	"fattree/internal/metrics"
	"fattree/internal/obsv"
	"fattree/internal/par"
)

func main() {
	os.Exit(run())
}

func run() (code int) {
	quick := flag.Bool("quick", false, "run with reduced problem sizes")
	runIDs := flag.String("run", "", "comma-separated experiment ids (default all)")
	list := flag.Bool("list", false, "list experiments and exit")
	seed := flag.Int64("seed", 1, "random seed for all experiments")
	asJSON := flag.Bool("json", false, "emit results as JSON")
	parallel := flag.Bool("parallel", false, "run experiments concurrently (results print in order)")
	bench := flag.Bool("bench", false,
		"run the delivery-engine micro-benchmarks (ns/op, B/op, allocs/op) instead of the experiment suite")
	hist := flag.Bool("hist", false,
		"with -bench: attach an observer to the serial delivery cycle and report its latency/congestion histograms")
	profile := flag.String("profile", "", "comma-separated profiles to record: cpu|mem|trace")
	profileOut := flag.String("profile-out", "ftbench", "base path for -profile output files")
	flag.Parse()

	if *profile != "" {
		for _, k := range strings.Split(*profile, ",") {
			switch strings.TrimSpace(k) {
			case "cpu", "mem", "trace":
			default:
				fmt.Fprintf(os.Stderr, "ftbench: unknown -profile kind %q (want cpu|mem|trace)\n", k)
				return 2
			}
		}
		stop, err := obsv.StartProfiles(*profile, *profileOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ftbench: %v\n", err)
			return 1
		}
		// The pprof label on the internal/par workers ("pool"="par") splits
		// the CPU profile between the delivery fan-out and the coordinator.
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintf(os.Stderr, "ftbench: %v\n", err)
				if code == 0 {
					code = 1
				}
				return
			}
			fmt.Printf("profiles written to %s.*\n", *profileOut)
		}()
	}

	if *hist && !*bench {
		fmt.Fprintln(os.Stderr, "ftbench: -hist requires -bench")
		return 2
	}
	if *bench {
		if err := runMicroBenchmarks(*asJSON, *hist); err != nil {
			fmt.Fprintf(os.Stderr, "ftbench: %v\n", err)
			return 1
		}
		return 0
	}

	all := experiments.All()
	if *list {
		for _, e := range all {
			fmt.Printf("%-4s %s (%s)\n", e.ID, e.Title, e.Source)
		}
		return 0
	}

	selected := all
	if *runIDs != "" {
		selected = nil
		for _, id := range strings.Split(*runIDs, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "ftbench: unknown experiment %q (use -list)\n", id)
				return 2
			}
			selected = append(selected, e)
		}
	}

	opts := experiments.Options{Quick: *quick, Seed: *seed}
	if *asJSON {
		type jsonExperiment struct {
			ID     string           `json:"id"`
			Title  string           `json:"title"`
			Source string           `json:"source"`
			Tables []*metrics.Table `json:"tables"`
		}
		out := make([]jsonExperiment, 0, len(selected))
		for _, e := range selected {
			out = append(out, jsonExperiment{
				ID: e.ID, Title: e.Title, Source: e.Source, Tables: e.Run(opts),
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "ftbench: %v\n", err)
			return 1
		}
		return 0
	}

	start := time.Now()
	if *parallel {
		// Bounded fan-out on the shared pool; par.Map returns outputs in
		// experiment order, so the report reads identically to a serial run.
		type rendered struct {
			out string
			err error
		}
		outputs := par.Map(par.New(0), len(selected), func(i int) rendered {
			e := selected[i]
			var b strings.Builder
			t0 := time.Now()
			err := e.RunAndPrint(&b, opts)
			fmt.Fprintf(&b, "(%s took %v)\n\n", e.ID, time.Since(t0).Round(time.Millisecond))
			return rendered{out: b.String(), err: err}
		})
		for _, r := range outputs {
			if r.err != nil {
				fmt.Fprintf(os.Stderr, "ftbench: %v\n", r.err)
				return 1
			}
			fmt.Print(r.out)
		}
	} else {
		for _, e := range selected {
			t0 := time.Now()
			if err := e.RunAndPrint(os.Stdout, opts); err != nil {
				fmt.Fprintf(os.Stderr, "ftbench: %v\n", err)
				return 1
			}
			fmt.Printf("(%s took %v)\n\n", e.ID, time.Since(t0).Round(time.Millisecond))
		}
	}
	fmt.Printf("suite complete: %d experiments in %v\n", len(selected), time.Since(start).Round(time.Millisecond))
	return 0
}
