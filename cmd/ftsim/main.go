// Command ftsim runs a single delivery experiment on a fat-tree: choose a
// topology, a workload, a scheduling policy and a switch implementation, and
// it reports delivery cycles, drops, load factor, the theoretical bounds, and
// the bit-serial time.
//
// Usage examples:
//
//	ftsim -n 256 -w 64 -workload bitrev -policy offline
//	ftsim -n 1024 -w 1024 -workload perm -policy online -switches partial
//	ftsim -n 256 -w 32 -workload local -k 2048 -radius 4 -policy offlinebig
//	ftsim -n 256 -counters -trace-out trace.json   # open in chrome://tracing
//	ftsim -implicit -n 1048576 -workload random -k 16384 -policy online
//	ftsim -kary "8,4;2,1;1,2" -workload random -policy online
//
// Exit status: 0 success, 1 runtime failure, 2 usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fattree"
	"fattree/internal/viz"
)

func main() {
	n := flag.Int("n", 256, "number of processors (power of two)")
	w := flag.Int("w", 0, "root capacity (default n/4)")
	implicit := flag.Bool("implicit", false,
		"compute the topology on the fly (no per-node state) and route with the subtree-sharded streaming engine; lets -n reach 2^20 in bounded memory")
	kary := flag.String("kary", "",
		"simulate a k-ary fat-tree instead of the binary universal profile: \"down;up;parallel[;root]\" with one comma-separated entry per tier, e.g. \"8,4;2,1;1,2\" (overrides -n and -w; requires ideal switches and -policy greedy|online)")
	workloadName := flag.String("workload", "perm", "workload: perm|random|bitrev|transpose|shuffle|reversal|local|hotspot|nn|alltoall")
	k := flag.Int("k", 0, "message count for random/local/hotspot (default 4n)")
	radius := flag.Int("radius", 4, "radius for -workload local")
	seed := flag.Int64("seed", 1, "random seed")
	policy := flag.String("policy", "offline", "delivery policy: offline|offlinebig|greedy|online")
	switches := flag.String("switches", "ideal", "concentrator kind: ideal|partial")
	workers := flag.Int("workers", 0, "delivery-cycle workers: 0 = GOMAXPROCS, 1 = serial (results are identical)")
	payload := flag.Int("payload", 32, "payload bits per message (bit-serial timing)")
	showViz := flag.Bool("viz", false, "render per-level utilization bars and schedule occupancy")
	saveSchedule := flag.String("save-schedule", "", "write the compiled schedule to this file (JSON)")
	loadSchedule := flag.String("load-schedule", "", "load a precompiled schedule instead of scheduling")
	counters := flag.Bool("counters", false, "print the per-level observability counter report after the run")
	hist := flag.Bool("hist", false, "print latency/congestion histogram summaries after the run")
	histJSON := flag.String("hist-json", "", "write the full observability snapshot (counters + histograms) as JSON to this file")
	traceOut := flag.String("trace-out", "", "write a chrome://tracing trace_event JSON file of the run")
	traceJSONL := flag.String("trace-jsonl", "", "write the raw event stream as JSON Lines")
	traceCap := flag.Int("trace-cap", 1<<16, "event ring capacity for -trace-out/-trace-jsonl (oldest events overwritten)")
	profile := flag.String("profile", "", "comma-separated profiles to record: cpu|mem|trace")
	profileOut := flag.String("profile-out", "ftsim", "base path for -profile output files")
	flag.Parse()

	var karyDesc fattree.KaryDesc
	if *kary != "" {
		if *implicit {
			usage("-kary and -implicit are mutually exclusive")
		}
		var err error
		karyDesc, err = parseKaryDesc(*kary)
		if err != nil {
			usage("bad -kary descriptor: %v", err)
		}
		*n = 1
		for _, d := range karyDesc.Down {
			*n *= d
		}
		switch *policy {
		case "offline", "offlinebig":
			usage("-policy %s needs the binary Theorem 1 scheduler; use -policy greedy or online with -kary", *policy)
		}
		if *switches == "partial" {
			usage("-switches partial models the binary Section IV hardware; k-ary topologies route with ideal switches")
		}
	} else if *n < 2 || *n&(*n-1) != 0 {
		usage("-n must be a power of two >= 2 (got %d)", *n)
	}
	if *kary != "" && *n&(*n-1) != 0 {
		switch *workloadName {
		case "bitrev", "transpose", "shuffle":
			usage("-workload %s needs a power-of-two processor count; this -kary descriptor has n=%d", *workloadName, *n)
		}
	}
	if *w == 0 {
		*w = *n / 4
		if *w < 1 {
			*w = 1
		}
	}
	if *k == 0 {
		*k = 4 * *n
	}

	var obs *fattree.Observer
	var stopProfiles func() error

	// Under -implicit the topology is computed, not stored: dense stays nil,
	// and the two visualizations that walk per-node state are skipped (they
	// would materialize exactly the O(n) tables -implicit exists to avoid).
	// Under -kary dense stays nil too (the viz walkers are binary).
	var ft fattree.Topology
	var dense *fattree.FatTree
	switch {
	case *implicit:
		ft = fattree.NewImplicitUniversal(*n, *w)
	case *kary != "":
		ft = fattree.NewKary(karyDesc)
	default:
		dense = fattree.NewUniversal(*n, *w)
		ft = dense
	}
	ms := buildWorkload(*workloadName, *n, *k, *radius, *seed)
	lam := fattree.LoadFactor(ft, ms)
	kindNote := ""
	if *implicit {
		kindNote = " (implicit)"
	}
	if *kary != "" {
		kindNote = fmt.Sprintf(" (k-ary %s)", *kary)
	}
	fmt.Printf("fat-tree n=%d w=%d%s   workload %s: %d messages, λ = %.2f (lower bound on cycles)\n",
		*n, ft.RootCapacity(), kindNote, *workloadName, len(ms), lam)
	if *showViz {
		if dense != nil {
			viz.Utilization(os.Stdout, dense, ms)
		} else {
			fmt.Println("(-viz utilization bars need the materialized topology; skipped under -implicit)")
		}
	}

	kind := fattree.SwitchIdeal
	if *switches == "partial" {
		kind = fattree.SwitchPartial
	} else if *switches != "ideal" {
		usage("unknown -switches %q", *switches)
	}

	if *counters || *hist || *histJSON != "" || *traceOut != "" || *traceJSONL != "" {
		// The compact observer folds per-node counters into per-level arrays
		// — O(levels) instead of O(n), required at -implicit scales.
		if *implicit {
			obs = fattree.NewObserverCompact(ft)
		} else {
			obs = fattree.NewObserver(ft)
		}
		if *traceOut != "" || *traceJSONL != "" {
			if *traceCap < 1 {
				usage("-trace-cap must be >= 1 (got %d)", *traceCap)
			}
			obs.EnableTrace(*traceCap)
		}
	}
	if *profile != "" {
		for _, k := range strings.Split(*profile, ",") {
			switch strings.TrimSpace(k) {
			case "cpu", "mem", "trace":
			default:
				usage("unknown -profile kind %q (want cpu|mem|trace)", k)
			}
		}
		var err error
		stopProfiles, err = fattree.StartProfiles(*profile, *profileOut)
		if err != nil {
			fail("%v", err)
		}
	}

	engine := fattree.NewEngineWithOptions(ft, kind, *seed, fattree.Options{Workers: *workers, Observer: obs})

	var stats fattree.Stats
	var cycles []fattree.MessageSet
	switch *policy {
	case "offline", "offlinebig", "greedy":
		var s *fattree.Schedule
		if *loadSchedule != "" {
			f, err := os.Open(*loadSchedule)
			if err != nil {
				fail("%v", err)
			}
			s, err = fattree.ReadSchedule(f, ft)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fail("%v", err)
			}
			fmt.Printf("loaded precompiled schedule from %s\n", *loadSchedule)
		} else {
			switch *policy {
			case "offline":
				s = fattree.ScheduleOffline(ft, ms)
			case "offlinebig":
				s = fattree.ScheduleOfflineBig(ft, ms)
			default:
				s = fattree.ScheduleGreedy(ft, ms)
			}
		}
		if err := s.Verify(ms); err != nil {
			fail("schedule invalid: %v", err)
		}
		if *saveSchedule != "" {
			f, err := os.Create(*saveSchedule)
			if err != nil {
				fail("%v", err)
			}
			if _, err := s.WriteTo(f); err != nil {
				fail("writing schedule: %v", err)
			}
			// A close error on the write path means lost buffered data.
			if err := f.Close(); err != nil {
				fail("writing schedule: %v", err)
			}
			fmt.Printf("schedule written to %s\n", *saveSchedule)
		}
		fmt.Printf("schedule: %d delivery cycles (bound %.1f, utilization %.2f)\n",
			s.Length(), s.Bound, s.Utilization())
		if *showViz {
			if dense != nil {
				viz.ScheduleGantt(os.Stdout, dense, s.Cycles)
			} else {
				fmt.Println("(-viz schedule Gantt needs the materialized topology; skipped under -implicit)")
			}
		}
		stats = fattree.RunSchedule(engine, s)
		cycles = s.Cycles
	case "online":
		stats = fattree.RunOnline(engine, ms)
		if *showViz {
			viz.CycleProfile(os.Stdout, stats.PerCycle)
		}
	default:
		usage("unknown -policy %q", *policy)
	}

	fmt.Printf("delivered %d/%d in %d cycles, %d drops, %d deferrals\n",
		stats.Delivered, len(ms), stats.Cycles, stats.Drops, stats.Deferrals)
	if cycles != nil {
		fmt.Printf("bit-serial time: %d ticks total (payload %d bits, max cycle %d ticks)\n",
			fattree.ScheduleTicks(ft, cycles, *payload), *payload, fattree.MaxCycleTicks(ft, *payload))
	} else {
		fmt.Printf("bit-serial time: <= %d ticks (%d cycles × %d ticks/cycle)\n",
			stats.Cycles*fattree.MaxCycleTicks(ft, *payload), stats.Cycles, fattree.MaxCycleTicks(ft, *payload))
	}

	if stopProfiles != nil {
		if err := stopProfiles(); err != nil {
			fail("%v", err)
		}
		fmt.Printf("profiles written to %s.*\n", *profileOut)
	}
	if *counters {
		fmt.Println()
		if err := obs.Report(os.Stdout); err != nil {
			fail("%v", err)
		}
	}
	if *hist {
		fmt.Println()
		if err := obs.Snapshot().WriteHistSummary(os.Stdout); err != nil {
			fail("%v", err)
		}
	}
	if *histJSON != "" {
		snap := obs.Snapshot()
		writeFile(*histJSON, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(snap)
		})
		fmt.Printf("observability snapshot written to %s\n", *histJSON)
	}
	if *traceOut != "" {
		writeFile(*traceOut, obs.WriteChromeTrace)
		fmt.Printf("chrome trace written to %s (open via chrome://tracing or ui.perfetto.dev)\n", *traceOut)
	}
	if *traceJSONL != "" {
		writeFile(*traceJSONL, obs.WriteJSONL)
		fmt.Printf("event stream written to %s\n", *traceJSONL)
	}
}

// writeFile creates path and streams write's output into it, failing the run
// on any error (a close error on the write path means lost buffered data).
func writeFile(path string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fail("%v", err)
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fail("writing %s: %v", path, err)
	}
}

func buildWorkload(name string, n, k, radius int, seed int64) fattree.MessageSet {
	switch name {
	case "perm":
		return fattree.RandomPermutation(n, seed)
	case "random":
		return fattree.Random(n, k, seed)
	case "bitrev":
		return fattree.BitReversal(n)
	case "transpose":
		return fattree.Transpose(n)
	case "shuffle":
		return fattree.Shuffle(n)
	case "reversal":
		return fattree.Reversal(n)
	case "local":
		return fattree.KLocal(n, k, radius, seed)
	case "hotspot":
		return fattree.HotSpot(n, k, seed)
	case "nn":
		return fattree.NearestNeighbor(n)
	case "alltoall":
		return fattree.AllToAll(n)
	}
	usage("unknown -workload %q", name)
	return nil
}

// parseKaryDesc parses the -kary descriptor "down;up;parallel[;root]": three
// (or four) semicolon-separated fields, the first three comma-separated lists
// with one entry per tier, the optional fourth the root channel capacity.
func parseKaryDesc(s string) (fattree.KaryDesc, error) {
	var d fattree.KaryDesc
	fields := strings.Split(s, ";")
	if len(fields) != 3 && len(fields) != 4 {
		return d, fmt.Errorf("want \"down;up;parallel[;root]\", got %d field(s)", len(fields))
	}
	parseList := func(name, field string) ([]int, error) {
		parts := strings.Split(field, ",")
		out := make([]int, 0, len(parts))
		for _, p := range parts {
			var v int
			if _, err := fmt.Sscanf(strings.TrimSpace(p), "%d", &v); err != nil {
				return nil, fmt.Errorf("%s entry %q is not an integer", name, p)
			}
			out = append(out, v)
		}
		return out, nil
	}
	var err error
	if d.Down, err = parseList("down", fields[0]); err != nil {
		return d, err
	}
	if d.Up, err = parseList("up", fields[1]); err != nil {
		return d, err
	}
	if d.Parallel, err = parseList("parallel", fields[2]); err != nil {
		return d, err
	}
	if len(d.Up) != len(d.Down) || len(d.Parallel) != len(d.Down) {
		return d, fmt.Errorf("tier counts disagree: down=%d up=%d parallel=%d",
			len(d.Down), len(d.Up), len(d.Parallel))
	}
	if len(fields) == 4 {
		if _, err := fmt.Sscanf(strings.TrimSpace(fields[3]), "%d", &d.Root); err != nil {
			return d, fmt.Errorf("root entry %q is not an integer", fields[3])
		}
	}
	for i, v := range d.Down {
		if v < 2 {
			return d, fmt.Errorf("down[%d] = %d; every tier needs >= 2 children", i, v)
		}
		if d.Up[i] < 1 || d.Parallel[i] < 1 {
			return d, fmt.Errorf("up[%d]/parallel[%d] must be >= 1", i, i)
		}
	}
	if d.Root < 0 {
		return d, fmt.Errorf("root capacity %d must be >= 0", d.Root)
	}
	return d, nil
}

// usage reports a command-line mistake (bad flag value) and exits 2; fail
// reports a runtime failure (I/O, invalid schedule) and exits 1 — the exit
// convention shared by every CLI in this repository.
func usage(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "ftsim: "+format+"\n", args...)
	os.Exit(2)
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "ftsim: "+format+"\n", args...)
	os.Exit(1)
}
