package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"fattree"
)

// testConfig returns a small two-tree configuration with a bounded run
// budget, suitable for driving the sim loop synchronously in tests.
func testConfig(t *testing.T, extra ...string) config {
	t.Helper()
	args := append([]string{"-n", "16,32", "-workloads", "perm,random", "-runs", "4"}, extra...)
	cfg, err := parseConfig(args)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestParseConfigErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"bad size", []string{"-n", "15"}},
		{"size too small", []string{"-n", "2"}},
		{"unknown workload", []string{"-workloads", "nope"}},
		{"transpose odd lg", []string{"-n", "32", "-workloads", "transpose"}},
		{"unknown policy", []string{"-policy", "offline"}},
		{"unknown switches", []string{"-switches", "nope"}},
		{"loss out of range", []string{"-loss", "1.5"}},
		{"negative runs", []string{"-runs", "-1"}},
		{"bad history", []string{"-history", "0"}},
		{"unknown flag", []string{"-nope"}},
		{"positional args", []string{"extra"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := parseConfig(tc.args); err == nil {
				t.Fatalf("parseConfig(%v) accepted invalid flags", tc.args)
			}
		})
	}
	cfg, err := parseConfig([]string{"-n", "64,256", "-workloads", "transpose", "-policy", "random"})
	if err != nil {
		t.Fatalf("valid flags rejected: %v", err)
	}
	if len(cfg.sizes) != 2 || cfg.sizes[1] != 256 || cfg.policy != "random" {
		t.Fatalf("parsed config wrong: %+v", cfg)
	}
}

// completedServer runs the bounded sim loop to completion and returns the
// server ready for handler tests.
func completedServer(t *testing.T, extra ...string) *server {
	t.Helper()
	srv, err := newServer(testConfig(t, extra...))
	if err != nil {
		t.Fatal(err)
	}
	srv.simLoop(context.Background())
	return srv
}

// get performs one request against the server's mux.
func get(t *testing.T, srv *server, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.mux().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

func TestEndpoints(t *testing.T) {
	srv := completedServer(t)
	for _, tc := range []struct {
		path   string
		status int
		want   []string
	}{
		{"/healthz", 200, []string{"ok"}},
		{"/readyz", 200, []string{"ready"}},
		{"/metrics", 200, []string{
			"fattree_server_ready 1",
			`fattree_server_runs_total{tree="16",workload="perm"}`,
			`fattree_cycles_total{tree="16"}`,
			`fattree_cycles_total{tree="32"}`,
			`fattree_delivery_latency_cycles_bucket{tree="16",le="+Inf"}`,
			`fattree_level_utilization_permille_bucket{tree="32",level="0",le="+Inf"}`,
		}},
		{"/runs", 200, []string{`"total": 4`, `"workload": "perm"`, `"delivered"`}},
		{"/debug/pprof/cmdline", 200, nil},
		{"/nosuch", 404, nil},
	} {
		t.Run(tc.path, func(t *testing.T) {
			rec := get(t, srv, tc.path)
			if rec.Code != tc.status {
				t.Fatalf("%s: status %d, want %d", tc.path, rec.Code, tc.status)
			}
			body := rec.Body.String()
			for _, want := range tc.want {
				if !strings.Contains(body, want) {
					t.Errorf("%s missing %q in:\n%.2000s", tc.path, want, body)
				}
			}
		})
	}
}

func TestMetricsExpositionValid(t *testing.T) {
	srv := completedServer(t, "-loss", "0.05", "-switches", "partial", "-policy", "random")
	rec := get(t, srv, "/metrics")
	if err := fattree.ValidatePromExposition(rec.Body.Bytes()); err != nil {
		t.Fatalf("/metrics is not valid exposition: %v", err)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
}

func TestReadyzBeforeFirstRun(t *testing.T) {
	srv, err := newServer(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if rec := get(t, srv, "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before first run: status %d, want 503", rec.Code)
	}
	// /metrics and /healthz must serve fine before readiness.
	if rec := get(t, srv, "/metrics"); rec.Code != 200 ||
		!strings.Contains(rec.Body.String(), "fattree_server_ready 0") {
		t.Fatalf("/metrics before first run: %d", rec.Code)
	}
}

func TestRunsHistoryBounded(t *testing.T) {
	srv := completedServer(t, "-runs", "9", "-history", "3")
	rec := get(t, srv, "/runs")
	var doc struct {
		Total int         `json:"total"`
		Runs  []runRecord `json:"runs"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Total != 9 || len(doc.Runs) != 3 {
		t.Fatalf("total=%d len(runs)=%d, want 9 and 3", doc.Total, len(doc.Runs))
	}
	// Newest first.
	if doc.Runs[0].Seq != 9 || doc.Runs[2].Seq != 7 {
		t.Fatalf("runs not newest-first: %+v", doc.Runs)
	}
}

// TestScrapeDuringRun drives the sim loop and concurrent /metrics scrapes at
// the same time: every scrape must be valid exposition and internally
// consistent (the cycle-boundary snapshot contract), and nothing may race
// (run with -race in CI).
func TestScrapeDuringRun(t *testing.T) {
	cfg := testConfig(t, "-runs", "60", "-loss", "0.03", "-switches", "partial")
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.simLoop(context.Background())
	}()
	for i := 0; i < 50; i++ {
		rec := get(t, srv, "/metrics")
		if rec.Code != 200 {
			t.Fatalf("scrape %d: status %d", i, rec.Code)
		}
		if err := fattree.ValidatePromExposition(rec.Body.Bytes()); err != nil {
			t.Fatalf("scrape %d invalid: %v", i, err)
		}
		if rec := get(t, srv, "/runs"); rec.Code != 200 {
			t.Fatalf("/runs during run: status %d", rec.Code)
		}
	}
	wg.Wait()
}
