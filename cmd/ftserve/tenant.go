package main

// This file is the tenant-serving mode of ftserve (-tenants): the
// /v1/route request API, the per-tenant bounded queues with explicit
// backpressure, the dispatcher that schedules tenants on the shared
// internal/par pool, and the span instrumentation around the whole request
// path. Requests of one tenant are processed serially in arrival order by
// whichever pool worker drains that tenant's queue — the serial merge point
// that keeps the tenant's engine counters and RED block bit-identical across
// worker counts. The steady-state request path (dequeue → span → RunServe →
// RED merge → span → completion signal) is allocation-free; the HTTP rim
// around it (JSON decode/encode, workload materialization) is not, and is
// deliberately outside the //ftlint:hotpath boundary.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"fattree"
)

// maxRouteBody bounds a /v1/route body (single or per NDJSON batch).
const maxRouteBody = 8 << 20

// tenantBatch bounds how many requests one tenant drains per pool round, so
// a hot tenant cannot starve the others between rounds.
const tenantBatch = 64

// tenant is one served tenant: a persistent engine and observer plus the
// RED instrument block and the bounded request queue.
type tenant struct {
	name  string
	idx   int32
	eng   *fattree.Engine
	obs   *fattree.Observer
	red   *fattree.RED
	queue chan *routeReq
}

// routeReq is one admitted request, pooled and reused across requests. The
// dispatcher fills stats/waitUS/durUS/failed and signals done; the handler
// owns the request before enqueue and after receiving from done.
type routeReq struct {
	ms         fattree.MessageSet
	trace      uint64
	enqueuedNS int64
	stats      fattree.Stats
	waitUS     int64
	durUS      int64
	failed     bool
	done       chan struct{}
}

// routeWire is the /v1/route request body: a named workload or an explicit
// message list, never both.
type routeWire struct {
	Tenant   string    `json:"tenant"`
	Workload string    `json:"workload,omitempty"`
	K        int       `json:"k,omitempty"`
	Seed     int64     `json:"seed,omitempty"`
	Messages []wireMsg `json:"messages,omitempty"`
}

// wireMsg is one explicit message of a route request.
type wireMsg struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
}

// routeResp is the /v1/route response body (one line per request in NDJSON
// batch mode). Error responses carry only error (and retry_after_s on 429).
type routeResp struct {
	TraceID     string `json:"trace_id,omitempty"`
	Tenant      string `json:"tenant,omitempty"`
	Messages    int    `json:"messages,omitempty"`
	Delivered   int    `json:"delivered,omitempty"`
	Cycles      int    `json:"cycles,omitempty"`
	Drops       int    `json:"drops,omitempty"`
	Deferrals   int    `json:"deferrals,omitempty"`
	QueueWaitUS int64  `json:"queue_wait_us,omitempty"`
	DurationUS  int64  `json:"duration_us,omitempty"`
	Error       string `json:"error,omitempty"`
	RetryAfterS int    `json:"retry_after_s,omitempty"`
}

// tenantMode reports whether this server was started with -tenants.
func (s *server) tenantMode() bool { return len(s.tenants) > 0 }

// servedTotal returns the number of requests processed by the dispatcher.
func (s *server) servedTotal() int { return int(s.served.Load()) }

// getReq takes a pooled request, ready for reuse.
func (s *server) getReq() *routeReq {
	req := s.reqPool.Get().(*routeReq)
	req.ms = req.ms[:0]
	req.failed = false
	return req
}

// handleRoute serves POST /v1/route: one JSON request, or an NDJSON batch
// when the Content-Type says so.
func (s *server) handleRoute(w http.ResponseWriter, r *http.Request) {
	if !s.tenantMode() {
		writeJSON(w, http.StatusNotFound, routeResp{Error: "tenant mode disabled (start ftserve with -tenants)"})
		return
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, routeResp{Error: "POST only"})
		return
	}
	if strings.Contains(r.Header.Get("Content-Type"), "ndjson") {
		s.handleRouteBatch(w, r)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRouteBody))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, routeResp{Error: "reading body: " + err.Error()})
		return
	}
	resp, status := s.routeOne(body)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	respStart := s.spans.Now()
	writeJSON(w, status, resp)
	s.pushRespondSpan(resp, respStart)
}

// handleRouteBatch serves an NDJSON batch: one request per line, one
// response line per request, in order. The whole (bounded) body is read
// before the first response byte: the net/http server may make the request
// body unavailable once the response headers flush, so interleaving reads
// with response writes truncates large batches mid-stream. Per-line failures
// (including backpressure rejections) ride in the line objects; the HTTP
// status is 200 once any line parses.
func (s *server) handleRouteBatch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRouteBody))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, routeResp{Error: "reading batch: " + err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 0, 64<<10), maxRouteBody)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		resp, status := s.routeOne(line)
		if status == http.StatusTooManyRequests {
			resp.RetryAfterS = 1
		}
		respStart := s.spans.Now()
		if err := enc.Encode(resp); err != nil {
			return // client went away
		}
		s.pushRespondSpan(resp, respStart)
	}
	if err := bw.Flush(); err != nil {
		return // client went away; nothing to clean up
	}
}

// routeOne admits, schedules, and awaits one request, returning its response
// and HTTP status.
func (s *server) routeOne(body []byte) (routeResp, int) {
	handlerStart := s.spans.Now()
	var wire routeWire
	if err := json.Unmarshal(body, &wire); err != nil {
		return routeResp{Error: "invalid JSON: " + err.Error()}, http.StatusBadRequest
	}
	tn, ok := s.tenantIdx[wire.Tenant]
	if !ok {
		return routeResp{Error: fmt.Sprintf("unknown tenant %q", wire.Tenant)}, http.StatusNotFound
	}
	trace := s.traceSeq.Add(1)
	req := s.getReq()
	req.trace = trace
	if errResp, status := s.buildRequest(tn, &wire, req); status != 0 {
		tn.red.RejectRequest()
		s.reqPool.Put(req)
		return errResp, status
	}
	s.spans.Push(fattree.Span{
		Trace: trace, Tenant: tn.idx, Kind: fattree.SpanHandler,
		Start: handlerStart, Dur: s.spans.Now() - handlerStart,
		Msgs: int32(len(req.ms)),
	})

	// Admission: the RLock pairs with beginDrain's Lock so no request can
	// slip into a queue after the dispatcher's final drain round started.
	s.drainMu.RLock()
	if s.draining {
		s.drainMu.RUnlock()
		s.reqPool.Put(req)
		return routeResp{Error: "draining"}, http.StatusServiceUnavailable
	}
	req.enqueuedNS = s.spans.Now()
	select {
	case tn.queue <- req:
		tn.red.QueueEnter()
		s.drainMu.RUnlock()
	default:
		s.drainMu.RUnlock()
		tn.red.RejectRequest()
		s.spans.Push(fattree.Span{
			Trace: trace, Tenant: tn.idx, Kind: fattree.SpanQueue,
			Start: req.enqueuedNS, Err: true,
		})
		s.reqPool.Put(req)
		return routeResp{TraceID: fattree.TraceID(trace), Tenant: tn.name,
			Error: "tenant queue full"}, http.StatusTooManyRequests
	}
	select {
	case s.wake <- struct{}{}:
	default:
	}
	<-req.done

	resp := routeResp{
		TraceID: fattree.TraceID(trace), Tenant: tn.name,
		Messages: len(req.ms), Delivered: req.stats.Delivered,
		Cycles: req.stats.Cycles, Drops: req.stats.Drops,
		Deferrals: req.stats.Deferrals,
		QueueWaitUS: req.waitUS, DurationUS: req.durUS,
	}
	status := http.StatusOK
	if req.failed {
		resp.Error = "delivery stalled"
		status = http.StatusUnprocessableEntity
	}
	s.reqPool.Put(req)
	return resp, status
}

// buildRequest materializes the request's message set into req.ms. A nonzero
// status reports a client error (the response explains it).
func (s *server) buildRequest(tn *tenant, wire *routeWire, req *routeReq) (routeResp, int) {
	n := s.cfg.sizes[0]
	switch {
	case wire.Workload != "" && len(wire.Messages) > 0:
		return routeResp{Error: "workload and messages are mutually exclusive"}, http.StatusBadRequest
	case wire.Workload != "":
		if !s.workloadMenu[wire.Workload] {
			return routeResp{Error: fmt.Sprintf("workload %q not in this server's menu %v", wire.Workload, s.cfg.workloads)}, http.StatusBadRequest
		}
		if wire.K < 0 {
			return routeResp{Error: "k must be non-negative"}, http.StatusBadRequest
		}
		req.ms = buildWorkload(wire.Workload, n, wire.K, wire.Seed)
		return routeResp{}, 0
	case len(wire.Messages) > 0:
		for _, m := range wire.Messages {
			req.ms = append(req.ms, fattree.Message{Src: m.Src, Dst: m.Dst})
		}
		if err := req.ms.Validate(tn.eng.Tree()); err != nil {
			return routeResp{Error: "invalid messages: " + err.Error()}, http.StatusBadRequest
		}
		return routeResp{}, 0
	}
	return routeResp{Error: "need workload or messages"}, http.StatusBadRequest
}

// pushRespondSpan records the response stage of a completed request: from
// just before the response encode to the push itself.
func (s *server) pushRespondSpan(resp routeResp, start int64) {
	if resp.TraceID == "" {
		return
	}
	tn, ok := s.tenantIdx[resp.Tenant]
	if !ok {
		return
	}
	trace, err := strconv.ParseUint(resp.TraceID, 16, 64)
	if err != nil {
		return
	}
	s.spans.Push(fattree.Span{
		Trace: trace, Tenant: tn.idx, Kind: fattree.SpanRespond,
		Start: start, Dur: s.spans.Now() - start, Err: resp.Error != "",
	})
}

// beginDrain flips the server into draining: /readyz reports 503 and
// /v1/route refuses new work, while already-queued requests complete.
// Idempotent; safe from any goroutine.
func (s *server) beginDrain() {
	s.drainMu.Lock()
	if !s.draining {
		s.draining = true
		s.ready.Store(false)
	}
	s.drainMu.Unlock()
}

// tenantLoop is the dispatcher: it fans the tenants out over the shared
// worker pool, each round draining up to tenantBatch requests per tenant in
// arrival order, and sleeps on the wake channel when every queue is empty.
// On cancellation (or a spent -runs budget) it drains every queue to empty —
// in-flight requests complete — and returns.
func (s *server) tenantLoop(ctx context.Context) {
	counts := make([]int, len(s.tenants))
	for {
		processed := s.drainRound(counts)
		if s.cfg.runs > 0 && s.served.Load() >= int64(s.cfg.runs) {
			s.beginDrain()
			for s.drainRound(counts) > 0 {
			}
			return
		}
		if processed == 0 {
			select {
			case <-ctx.Done():
				s.beginDrain()
				for s.drainRound(counts) > 0 {
				}
				return
			case <-s.wake:
			}
		}
	}
}

// drainRound runs one pool round over all tenants and returns the number of
// requests processed. counts is caller-owned scratch, one slot per tenant.
func (s *server) drainRound(counts []int) int {
	s.pool.ForEach(len(s.tenants), func(i int) {
		counts[i] = s.tenants[i].drainBatch(s)
	})
	processed := 0
	for i, c := range counts {
		processed += c
		counts[i] = 0
	}
	if processed > 0 {
		s.served.Add(int64(processed))
	}
	return processed
}

// drainBatch processes up to tenantBatch queued requests of this tenant, in
// arrival order, and returns how many it processed.
func (tn *tenant) drainBatch(s *server) int {
	for n := 0; n < tenantBatch; n++ {
		select {
		case req := <-tn.queue:
			tn.process(s, req)
		default:
			return n
		}
	}
	return tenantBatch
}

// process is the observed steady-state request path: dequeue accounting,
// queue-wait span, one RunServe on the tenant's persistent engine, the RED
// merge, the engine span, and the completion signal. Allocation-free on a
// warmed engine (TestServeRouteAllocs, BenchmarkServeRoute).
//
//ftlint:hotpath
func (tn *tenant) process(s *server, req *routeReq) {
	spans := s.spans
	dequeued := spans.Now()
	wait := dequeued - req.enqueuedNS
	tn.red.QueueExit(wait / 1000)
	spans.Push(fattree.Span{
		Trace: req.trace, Tenant: tn.idx, Kind: fattree.SpanQueue,
		Start: req.enqueuedNS, Dur: wait,
	})
	//ftlint:ignore callgraphhotalloc RunServe's recorded witnesses are its validation error path (which feeds a panic) and the parallel fan-out closures; the serial request path is allocation-free, pinned by TestServeRouteAllocs and BenchmarkServeRoute.
	st := tn.eng.RunServe(req.ms)
	end := spans.Now()
	req.stats = st
	req.waitUS = wait / 1000
	req.durUS = (end - dequeued) / 1000
	req.failed = st.Delivered != len(req.ms)
	tn.red.ObserveRequest(int64(st.Cycles), req.durUS, req.trace, req.failed)
	spans.Push(fattree.Span{
		Trace: req.trace, Tenant: tn.idx, Kind: fattree.SpanEngine,
		Start: dequeued, Dur: end - dequeued,
		Cycles: int32(st.Cycles), Msgs: int32(len(req.ms)), Err: req.failed,
	})
	req.done <- struct{}{}
}

// writeJSON writes one JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, resp routeResp) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		return // client went away; nothing to clean up
	}
}

// handleSpansJSONL serves the span ring as JSONL, oldest-first.
func (s *server) handleSpansJSONL(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	if err := s.spans.WriteJSONL(w); err != nil {
		return // client went away; nothing to clean up
	}
}

// handleSpansChrome serves the span ring as Chrome trace_event JSON.
func (s *server) handleSpansChrome(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.spans.WriteChromeTrace(w, s.tenantNames()); err != nil {
		return // client went away; nothing to clean up
	}
}

// tenantNames returns the tenant display names indexed by tenant.idx.
func (s *server) tenantNames() []string {
	names := make([]string, len(s.tenants))
	for i, tn := range s.tenants {
		names[i] = tn.name
	}
	return names
}

// newReqPool builds the routeReq pool shared by all handlers.
func newReqPool() sync.Pool {
	return sync.Pool{New: func() any {
		return &routeReq{done: make(chan struct{}, 1)}
	}}
}
