package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"

	"fattree"
)

// tenantServer builds a tenant-mode server and runs its dispatcher until the
// test ends; the returned server is ready for handler calls.
func tenantServer(t *testing.T, extra ...string) *server {
	t.Helper()
	args := append([]string{"-n", "16", "-workloads", "perm,random,bitrev", "-tenants", "alpha,beta,gamma"}, extra...)
	cfg, err := parseConfig(args)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.ready.Store(true)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.tenantLoop(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return srv
}

// post performs one /v1/route request against the server's mux.
func post(t *testing.T, srv *server, body, contentType string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/route", strings.NewReader(body))
	req.Header.Set("Content-Type", contentType)
	srv.mux().ServeHTTP(rec, req)
	return rec
}

func TestRouteSingleRequest(t *testing.T) {
	srv := tenantServer(t)
	rec := post(t, srv, `{"tenant":"alpha","workload":"perm","seed":7}`, "application/json")
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp routeResp
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Tenant != "alpha" || resp.Messages == 0 || resp.Delivered != resp.Messages {
		t.Fatalf("unexpected response: %+v", resp)
	}
	if len(resp.TraceID) != 16 || resp.Cycles < 1 {
		t.Fatalf("missing trace/cycles: %+v", resp)
	}

	// Explicit message list on another tenant.
	rec = post(t, srv, `{"tenant":"beta","messages":[{"src":0,"dst":5},{"src":3,"dst":9}]}`, "application/json")
	if rec.Code != 200 {
		t.Fatalf("explicit messages: status %d: %s", rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Messages != 2 || resp.Delivered != 2 {
		t.Fatalf("explicit messages response: %+v", resp)
	}
}

func TestRouteClientErrors(t *testing.T) {
	srv := tenantServer(t)
	for _, tc := range []struct {
		name, body string
		status     int
	}{
		{"bad json", `{`, 400},
		{"unknown tenant", `{"tenant":"nope","workload":"perm"}`, 404},
		{"unknown workload", `{"tenant":"alpha","workload":"zeta"}`, 400},
		{"workload and messages", `{"tenant":"alpha","workload":"perm","messages":[{"src":0,"dst":1}]}`, 400},
		{"neither", `{"tenant":"alpha"}`, 400},
		{"negative k", `{"tenant":"alpha","workload":"random","k":-1}`, 400},
		{"out of range dst", `{"tenant":"alpha","messages":[{"src":0,"dst":99}]}`, 400},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rec := post(t, srv, tc.body, "application/json")
			if rec.Code != tc.status {
				t.Fatalf("status %d, want %d: %s", rec.Code, tc.status, rec.Body.String())
			}
			var resp routeResp
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatal(err)
			}
			if resp.Error == "" {
				t.Fatal("error response without error field")
			}
		})
	}

	rec := httptest.NewRecorder()
	srv.mux().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/route", nil))
	if rec.Code != 405 {
		t.Fatalf("GET /v1/route: status %d, want 405", rec.Code)
	}
}

func TestRouteDisabledWithoutTenants(t *testing.T) {
	srv := completedServer(t)
	rec := post(t, srv, `{"tenant":"alpha","workload":"perm"}`, "application/json")
	if rec.Code != 404 {
		t.Fatalf("rotation-mode /v1/route: status %d, want 404", rec.Code)
	}
}

func TestRouteBatchNDJSON(t *testing.T) {
	srv := tenantServer(t)
	batch := `{"tenant":"alpha","workload":"perm","seed":1}
{"tenant":"beta","workload":"bitrev"}

{"tenant":"nope","workload":"perm"}
{"tenant":"gamma","messages":[{"src":1,"dst":2}]}`
	rec := post(t, srv, batch, "application/x-ndjson")
	if rec.Code != 200 {
		t.Fatalf("batch status %d", rec.Code)
	}
	var resps []routeResp
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		var r routeResp
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad batch line %q: %v", sc.Text(), err)
		}
		resps = append(resps, r)
	}
	if len(resps) != 4 {
		t.Fatalf("batch returned %d lines, want 4 (blank line skipped)", len(resps))
	}
	for i, want := range []struct {
		tenant string
		errSub string
	}{
		{"alpha", ""}, {"beta", ""}, {"", "unknown tenant"}, {"gamma", ""},
	} {
		if want.errSub == "" && (resps[i].Tenant != want.tenant || resps[i].Error != "") {
			t.Fatalf("line %d: %+v", i, resps[i])
		}
		if want.errSub != "" && !strings.Contains(resps[i].Error, want.errSub) {
			t.Fatalf("line %d error %q, want %q", i, resps[i].Error, want.errSub)
		}
	}
}

// TestRouteBackpressure fills a tenant's queue without a running dispatcher:
// the overflow request must be rejected with 429 + Retry-After while the
// queued one completes once the dispatcher drains.
func TestRouteBackpressure(t *testing.T) {
	cfg, err := parseConfig([]string{"-n", "16", "-tenants", "alpha", "-queue", "1"})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.ready.Store(true)

	first := make(chan *httptest.ResponseRecorder, 1)
	go func() { first <- post(t, srv, `{"tenant":"alpha","workload":"perm"}`, "application/json") }()
	// Wait for the first request to occupy the queue slot.
	for len(srv.tenants[0].queue) == 0 {
		runtime.Gosched()
	}

	rec := post(t, srv, `{"tenant":"alpha","workload":"perm"}`, "application/json")
	if rec.Code != 429 {
		t.Fatalf("overflow status %d, want 429: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// One manual dispatcher round completes the queued request.
	counts := make([]int, 1)
	if n := srv.drainRound(counts); n != 1 {
		t.Fatalf("drainRound processed %d, want 1", n)
	}
	if rec := <-first; rec.Code != 200 {
		t.Fatalf("queued request: status %d", rec.Code)
	}

	// The rejection is visible in the RED error counters.
	snap := srv.tenants[0].red.Snapshot()
	if snap.Requests != 2 || snap.Errors != 1 {
		t.Fatalf("requests=%d errors=%d, want 2/1", snap.Requests, snap.Errors)
	}
}

// TestRouteDrainRefusal checks graceful drain: beginDrain flips /readyz to
// 503 and new route requests are refused while queued work still completes.
func TestRouteDrainRefusal(t *testing.T) {
	cfg, err := parseConfig([]string{"-n", "16", "-tenants", "alpha"})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.ready.Store(true)

	queued := make(chan *httptest.ResponseRecorder, 1)
	go func() { queued <- post(t, srv, `{"tenant":"alpha","workload":"perm"}`, "application/json") }()
	for len(srv.tenants[0].queue) == 0 {
		runtime.Gosched()
	}

	srv.beginDrain()
	if rec := get(t, srv, "/readyz"); rec.Code != 503 {
		t.Fatalf("/readyz while draining: status %d, want 503", rec.Code)
	}
	rec := post(t, srv, `{"tenant":"alpha","workload":"perm"}`, "application/json")
	if rec.Code != 503 || !strings.Contains(rec.Body.String(), "draining") {
		t.Fatalf("route while draining: status %d body %s", rec.Code, rec.Body.String())
	}

	// Already-admitted work still completes.
	counts := make([]int, 1)
	for srv.drainRound(counts) > 0 {
	}
	if rec := <-queued; rec.Code != 200 {
		t.Fatalf("queued request during drain: status %d", rec.Code)
	}
}

// TestTenantWorkerEquivalence replays the same per-tenant request mix at
// worker counts 1, 2, and GOMAXPROCS: every tenant's engine counters and RED
// block must be bit-identical to the serial run (the per-tenant serial merge
// point), no matter how the dispatcher pool interleaves tenants.
func TestTenantWorkerEquivalence(t *testing.T) {
	requests := func(tenant string) []string {
		var reqs []string
		for i := 0; i < 6; i++ {
			reqs = append(reqs, fmt.Sprintf(`{"tenant":%q,"workload":"perm","seed":%d}`, tenant, i))
			reqs = append(reqs, fmt.Sprintf(`{"tenant":%q,"workload":"random","k":32,"seed":%d}`, tenant, 100+i))
		}
		return reqs
	}
	run := func(workers string) *server {
		srv := tenantServer(t, "-workers", workers)
		var wg sync.WaitGroup
		for _, tn := range []string{"alpha", "beta", "gamma"} {
			wg.Add(1)
			go func(tn string) {
				defer wg.Done()
				for _, body := range requests(tn) {
					if rec := post(t, srv, body, "application/json"); rec.Code != 200 {
						t.Errorf("tenant %s: status %d: %s", tn, rec.Code, rec.Body.String())
						return
					}
				}
			}(tn)
		}
		wg.Wait()
		return srv
	}

	base := run("1")
	for _, workers := range []string{"2", "0"} {
		srv := run(workers)
		for i, tn := range srv.tenants {
			if !fattree.ObserversEqual(base.tenants[i].obs, tn.obs) {
				t.Errorf("-workers %s: tenant %s engine counters diverge from serial", workers, tn.name)
			}
			if !fattree.REDEqual(base.tenants[i].red, tn.red) {
				t.Errorf("-workers %s: tenant %s RED counters diverge from serial", workers, tn.name)
			}
		}
	}
}

// TestTenantMetricsExposition checks the tenant-mode scrape: RED families and
// engine counters labeled per tenant, accepted by the repo's own validator.
func TestTenantMetricsExposition(t *testing.T) {
	srv := tenantServer(t)
	for _, body := range []string{
		`{"tenant":"alpha","workload":"perm","seed":3}`,
		`{"tenant":"beta","workload":"bitrev"}`,
	} {
		if rec := post(t, srv, body, "application/json"); rec.Code != 200 {
			t.Fatalf("setup request failed: %d", rec.Code)
		}
	}
	rec := get(t, srv, "/metrics")
	if rec.Code != 200 {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if err := fattree.ValidatePromExposition(rec.Body.Bytes()); err != nil {
		t.Fatalf("tenant-mode /metrics is not valid exposition: %v", err)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`fattree_requests_total{tenant="alpha"} 1`,
		`fattree_requests_total{tenant="beta"} 1`,
		`fattree_requests_total{tenant="gamma"} 0`,
		`fattree_request_duration_cycles_bucket{tenant="alpha",le="+Inf"}`,
		`fattree_cycles_total{tenant="alpha"}`,
		`fattree_messages_offered_total{tenant="beta"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestTenantSpanEndpoints checks the flight-recorder exports: JSONL spans
// covering the whole request path and a loadable Chrome trace.
func TestTenantSpanEndpoints(t *testing.T) {
	srv := tenantServer(t)
	if rec := post(t, srv, `{"tenant":"alpha","workload":"perm"}`, "application/json"); rec.Code != 200 {
		t.Fatalf("setup request failed: %d", rec.Code)
	}
	rec := get(t, srv, "/debug/spans.jsonl")
	if rec.Code != 200 {
		t.Fatalf("/debug/spans.jsonl status %d", rec.Code)
	}
	kinds := map[string]int{}
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		var span struct {
			Trace string `json:"trace_id"`
			Kind  string `json:"kind"`
		}
		if err := json.Unmarshal(sc.Bytes(), &span); err != nil {
			t.Fatalf("bad span line %q: %v", sc.Text(), err)
		}
		kinds[span.Kind]++
	}
	for _, kind := range []string{"handler", "queue", "engine", "respond"} {
		if kinds[kind] == 0 {
			t.Errorf("span export missing %q stage (got %v)", kind, kinds)
		}
	}

	rec = get(t, srv, "/debug/spans.json")
	if rec.Code != 200 {
		t.Fatalf("/debug/spans.json status %d", rec.Code)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &trace); err != nil {
		t.Fatalf("chrome trace invalid: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("chrome trace empty")
	}
}

// TestRunRingCapacity pins the /runs retention container: a full ring
// overwrites oldest-first, never grows, and reports newest-first.
func TestRunRingCapacity(t *testing.T) {
	r := newRunRing(3)
	for seq := 1; seq <= 7; seq++ {
		r.push(runRecord{Seq: seq})
	}
	if r.len() != 3 || r.cap() != 3 {
		t.Fatalf("len=%d cap=%d, want 3/3", r.len(), r.cap())
	}
	got := r.newestFirst(nil)
	for i, want := range []int{7, 6, 5} {
		if got[i].Seq != want {
			t.Fatalf("newestFirst[%d].Seq = %d, want %d", i, got[i].Seq, want)
		}
	}
	// Storage must not move once allocated: push reuses the same backing
	// array (the old append-then-reslice grew a new one on every wrap).
	before := &r.buf[0]
	for seq := 8; seq <= 100; seq++ {
		r.push(runRecord{Seq: seq})
	}
	if before != &r.buf[0] {
		t.Fatal("runRing reallocated its storage")
	}
}

// TestTenantRunsEndpoint checks /runs tenant-mode semantics: total counts
// served requests.
func TestTenantRunsEndpoint(t *testing.T) {
	srv := tenantServer(t)
	for i := 0; i < 3; i++ {
		if rec := post(t, srv, `{"tenant":"alpha","workload":"perm"}`, "application/json"); rec.Code != 200 {
			t.Fatalf("setup request failed: %d", rec.Code)
		}
	}
	var doc struct {
		Total int `json:"total"`
	}
	if err := json.Unmarshal(get(t, srv, "/runs").Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Total != 3 {
		t.Fatalf("/runs total = %d, want 3 served requests", doc.Total)
	}
}

// TestServeRouteAllocs pins the steady-state request path — dequeue, spans,
// RunServe, RED merge, completion — at zero heap allocations per request.
func TestServeRouteAllocs(t *testing.T) {
	cfg, err := parseConfig([]string{"-n", "64", "-tenants", "alpha"})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tn := srv.tenants[0]
	ms := fattree.RandomPermutation(64, 42)
	req := &routeReq{ms: ms, trace: 7, done: make(chan struct{}, 1)}
	// Warm the engine scratch and the RED/span structures.
	req.enqueuedNS = srv.spans.Now()
	tn.process(srv, req)
	<-req.done

	allocs := testing.AllocsPerRun(100, func() {
		req.enqueuedNS = srv.spans.Now()
		tn.process(srv, req)
		<-req.done
	})
	if allocs != 0 {
		t.Errorf("request path: %.1f allocs/op, want 0", allocs)
	}
}

func TestTenantConfigErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"bad tenant name", []string{"-tenants", "a b"}},
		{"empty tenant name", []string{"-tenants", "alpha,,beta"}},
		{"duplicate tenant", []string{"-tenants", "alpha,alpha"}},
		{"multiple sizes", []string{"-tenants", "alpha", "-n", "16,32"}},
		{"bad queue", []string{"-tenants", "alpha", "-queue", "0"}},
		{"bad span cap", []string{"-tenants", "alpha", "-span-cap", "0"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := parseConfig(append([]string{"-n", "16"}, tc.args...)); err == nil {
				t.Fatalf("parseConfig(%v) accepted invalid flags", tc.args)
			}
		})
	}
}
