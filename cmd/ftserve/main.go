// Command ftserve is the live-telemetry daemon: it runs fat-tree delivery
// simulations continuously — rotating through a configurable set of tree
// sizes and workloads — and exposes the observability layer over HTTP while
// the simulations are in flight:
//
//	/metrics        Prometheus text exposition (fattree_* families, per-tree labels)
//	/healthz        liveness (200 once the process is up)
//	/readyz         readiness (200 after the first completed run, 503 before)
//	/runs           recent run history as JSON
//	/debug/pprof/   the standard pprof handlers
//
// Usage examples:
//
//	ftserve                                    # 127.0.0.1:8080, n=256, default rotation
//	ftserve -addr :9090 -n 256,1024 -workloads perm,transpose -loss 0.01
//	ftserve -runs 10 -addr 127.0.0.1:0        # bounded: exit 0 after 10 runs
//
// The daemon shuts down gracefully on SIGINT/SIGTERM. With -runs N > 0 it
// serves until N runs complete, then exits 0 (the smoke-test mode).
//
// Exit status: 0 success, 1 runtime failure, 2 usage error.
package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	cfg, err := parseConfig(os.Args[1:])
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftserve: %v\n", err)
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ftserve: %v\n", err)
		os.Exit(1)
	}
}

// run starts the simulation loop and the HTTP server, and blocks until a
// shutdown signal arrives or (in bounded -runs mode) the run budget is
// spent. A clean shutdown returns nil.
func run(cfg config) error {
	srv, err := newServer(cfg)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	fmt.Printf("ftserve: serving /metrics on http://%s (trees %v, workloads %v)\n",
		ln.Addr(), cfg.sizes, cfg.workloads)

	httpSrv := &http.Server{Handler: srv.mux()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	simDone := make(chan struct{})
	go func() {
		defer close(simDone)
		srv.simLoop(ctx)
	}()

	select {
	case <-ctx.Done():
		fmt.Println("ftserve: signal received, shutting down")
	case <-simDone:
		// Bounded mode finished its budget (or the loop stopped on ctx).
		fmt.Printf("ftserve: completed %d runs, shutting down\n", srv.totalRuns())
	case err := <-serveErr:
		stop()
		<-simDone
		return err
	}
	stop() // stop the sim loop if it is still running
	<-simDone

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
