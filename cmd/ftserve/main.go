// Command ftserve is the live-telemetry daemon. In its default rotation mode
// it runs fat-tree delivery simulations continuously — rotating through a
// configurable set of tree sizes and workloads — and exposes the
// observability layer over HTTP while the simulations are in flight. With
// -tenants it instead becomes a multi-tenant request server: every tenant
// gets a persistent engine on a shared tree, and clients submit message sets
// or named workloads through /v1/route, scheduled on a shared worker pool
// behind per-tenant bounded queues with explicit backpressure.
//
//	/metrics            Prometheus text exposition (fattree_* families;
//	                    per-tree labels, or per-tenant RED + engine counters)
//	/healthz            liveness (200 once the process is up)
//	/readyz             readiness (rotation: 200 after the first completed
//	                    run; tenants: 200 while accepting, 503 while draining)
//	/runs               recent run history (tenant mode: served-request total)
//	/v1/route           POST one JSON request, or an NDJSON batch when the
//	                    Content-Type says ndjson (tenant mode only)
//	/debug/spans.jsonl  request span ring as JSONL, oldest first (tenant mode)
//	/debug/spans.json   request span ring as Chrome trace_event JSON
//	/debug/pprof/       the standard pprof handlers
//
// Usage examples:
//
//	ftserve                                    # 127.0.0.1:8080, n=256, default rotation
//	ftserve -addr :9090 -n 256,1024 -workloads perm,transpose -loss 0.01
//	ftserve -runs 10 -addr 127.0.0.1:0        # bounded: exit 0 after 10 runs
//	ftserve -tenants alpha,beta -n 256 -queue 512   # multi-tenant /v1/route
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: tenant mode flips
// /readyz to 503, refuses new /v1/route work, drains the queued requests,
// and only then closes the listener. With -runs N > 0 it serves until N runs
// (tenant mode: N requests) complete, then exits 0 (the smoke-test mode).
//
// Exit status: 0 success, 1 runtime failure, 2 usage error.
package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	cfg, err := parseConfig(os.Args[1:])
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftserve: %v\n", err)
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ftserve: %v\n", err)
		os.Exit(1)
	}
}

// run starts the simulation loop and the HTTP server, and blocks until a
// shutdown signal arrives or (in bounded -runs mode) the run budget is
// spent. A clean shutdown returns nil.
func run(cfg config) error {
	srv, err := newServer(cfg)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	if srv.tenantMode() {
		fmt.Printf("ftserve: serving /v1/route on http://%s (tree %d, tenants %v, queue %d)\n",
			ln.Addr(), cfg.sizes[0], cfg.tenants, cfg.queue)
		srv.ready.Store(true) // accepting requests the moment the listener is up
	} else {
		fmt.Printf("ftserve: serving /metrics on http://%s (trees %v, workloads %v)\n",
			ln.Addr(), cfg.sizes, cfg.workloads)
	}

	httpSrv := &http.Server{Handler: srv.mux()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	simDone := make(chan struct{})
	go func() {
		defer close(simDone)
		if srv.tenantMode() {
			srv.tenantLoop(ctx)
		} else {
			srv.simLoop(ctx)
		}
	}()

	select {
	case <-ctx.Done():
		fmt.Println("ftserve: signal received, shutting down")
		if srv.tenantMode() {
			srv.beginDrain() // refuse new work while the dispatcher drains
		}
	case <-simDone:
		// Bounded mode finished its budget (or the loop stopped on ctx).
		if srv.tenantMode() {
			fmt.Printf("ftserve: served %d requests, shutting down\n", srv.totalRuns())
		} else {
			fmt.Printf("ftserve: completed %d runs, shutting down\n", srv.totalRuns())
		}
	case err := <-serveErr:
		stop()
		<-simDone
		return err
	}
	stop() // stop the sim loop if it is still running
	<-simDone

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
