package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fattree"
	"fattree/internal/par"
)

// config is the parsed ftserve command line.
type config struct {
	addr      string
	sizes     []int
	rootCap   int
	workloads []string
	k         int
	policy    string
	switches  fattree.SwitchKind
	loss      float64
	seed      int64
	workers   int
	runs      int
	interval  time.Duration
	history   int
	implicit  bool
	tenants   []string
	queue     int
	spanCap   int
}

// serveWorkloads are the workload generators the rotation may use.
var serveWorkloads = map[string]bool{
	"perm": true, "random": true, "bitrev": true, "transpose": true,
	"shuffle": true, "reversal": true, "nn": true, "alltoall": true,
	"hotspot": true, "local": true,
}

// parseConfig parses and validates args; any error is a usage error (exit 2).
func parseConfig(args []string) (config, error) {
	var cfg config
	var sizes, workloads, switches string
	fs := flag.NewFlagSet("ftserve", flag.ContinueOnError)
	var usage bytes.Buffer
	fs.SetOutput(&usage)
	fs.StringVar(&cfg.addr, "addr", "127.0.0.1:8080", "HTTP listen address (host:port; port 0 picks an ephemeral port)")
	fs.StringVar(&sizes, "n", "256", "comma-separated tree sizes to rotate through (powers of two)")
	fs.IntVar(&cfg.rootCap, "w", 0, "root capacity for every tree (0 = n/4 per tree)")
	fs.StringVar(&workloads, "workloads", "perm,random,transpose", "comma-separated workload rotation: perm|random|bitrev|transpose|shuffle|reversal|nn|alltoall|hotspot|local")
	fs.IntVar(&cfg.k, "k", 0, "message count for random/local/hotspot workloads (0 = 4n)")
	fs.StringVar(&cfg.policy, "policy", "online", "delivery policy per run: online|random")
	fs.StringVar(&switches, "switches", "ideal", "concentrator kind: ideal|partial")
	fs.Float64Var(&cfg.loss, "loss", 0, "transient-fault injection rate in [0,1)")
	fs.Int64Var(&cfg.seed, "seed", 1, "base random seed (varied per run)")
	fs.IntVar(&cfg.workers, "workers", 0, "delivery-cycle workers per engine: 0 = GOMAXPROCS, 1 = serial")
	fs.IntVar(&cfg.runs, "runs", 0, "stop after this many runs and exit 0 (0 = run until signalled)")
	fs.DurationVar(&cfg.interval, "interval", 0, "pause between runs (0 = back to back)")
	fs.IntVar(&cfg.history, "history", 64, "completed runs retained for /runs")
	fs.BoolVar(&cfg.implicit, "implicit", false, "compute topologies on the fly and route with the streaming engine (per-level /metrics counters; lets -n reach 2^20)")
	var tenants string
	fs.StringVar(&tenants, "tenants", "", "comma-separated tenant names; enables the /v1/route serving mode instead of the rotation (-runs then bounds served requests)")
	fs.IntVar(&cfg.queue, "queue", 256, "per-tenant bounded queue capacity (tenant mode); a full queue answers 429 + Retry-After")
	fs.IntVar(&cfg.spanCap, "span-cap", 4096, "request span ring capacity (/debug/spans.jsonl flight recorder)")
	if err := fs.Parse(args); err != nil {
		return cfg, fmt.Errorf("%w\n%s", err, usage.String())
	}
	if fs.NArg() > 0 {
		return cfg, fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	for _, f := range strings.Split(sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 4 || n&(n-1) != 0 {
			return cfg, fmt.Errorf("-n entries must be powers of two >= 4 (got %q)", f)
		}
		cfg.sizes = append(cfg.sizes, n)
	}
	for _, w := range strings.Split(workloads, ",") {
		w = strings.TrimSpace(w)
		if !serveWorkloads[w] {
			return cfg, fmt.Errorf("unknown workload %q in -workloads", w)
		}
		if w == "transpose" {
			for _, n := range cfg.sizes {
				if fattree.Lg(n)%2 != 0 {
					return cfg, fmt.Errorf("workload transpose needs an even power of two, but -n includes %d", n)
				}
			}
		}
		cfg.workloads = append(cfg.workloads, w)
	}
	switch cfg.policy {
	case "online", "random":
	default:
		return cfg, fmt.Errorf("unknown -policy %q (want online|random)", cfg.policy)
	}
	switch switches {
	case "ideal":
		cfg.switches = fattree.SwitchIdeal
	case "partial":
		cfg.switches = fattree.SwitchPartial
	default:
		return cfg, fmt.Errorf("unknown -switches %q (want ideal|partial)", switches)
	}
	if cfg.loss < 0 || cfg.loss >= 1 {
		return cfg, fmt.Errorf("-loss must be in [0,1) (got %v)", cfg.loss)
	}
	if cfg.runs < 0 || cfg.workers < 0 || cfg.interval < 0 {
		return cfg, fmt.Errorf("-runs, -workers, and -interval must be non-negative")
	}
	if cfg.history < 1 {
		return cfg, fmt.Errorf("-history must be >= 1 (got %d)", cfg.history)
	}
	if cfg.queue < 1 {
		return cfg, fmt.Errorf("-queue must be >= 1 (got %d)", cfg.queue)
	}
	if cfg.spanCap < 1 {
		return cfg, fmt.Errorf("-span-cap must be >= 1 (got %d)", cfg.spanCap)
	}
	if tenants != "" {
		seen := map[string]bool{}
		for _, name := range strings.Split(tenants, ",") {
			name = strings.TrimSpace(name)
			if !validTenantName(name) {
				return cfg, fmt.Errorf("tenant name %q must match [a-zA-Z0-9_-]+", name)
			}
			if seen[name] {
				return cfg, fmt.Errorf("duplicate tenant name %q", name)
			}
			seen[name] = true
			cfg.tenants = append(cfg.tenants, name)
		}
		if len(cfg.sizes) != 1 {
			return cfg, fmt.Errorf("tenant mode serves one tree geometry: -n must name exactly one size (got %v)", cfg.sizes)
		}
	}
	return cfg, nil
}

// validTenantName reports whether name is usable as a Prometheus label
// value and a JSON key without escaping: [a-zA-Z0-9_-]+.
func validTenantName(name string) bool {
	if name == "" {
		return false
	}
	for _, r := range name {
		ok := r == '_' || r == '-' || (r >= 'a' && r <= 'z') ||
			(r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// instance is one simulated tree of the rotation: the engine and observer
// persist across runs, so the observer's counters are the monotone totals
// Prometheus expects. Only the sim loop touches eng; handlers read obs via
// Snapshot, which is safe mid-run.
type instance struct {
	size int
	eng  *fattree.Engine
	obs  *fattree.Observer
}

// runRecord is one completed simulation run, as served by /runs.
type runRecord struct {
	Seq        int       `json:"seq"`
	Tree       int       `json:"tree"`
	Workload   string    `json:"workload"`
	Policy     string    `json:"policy"`
	Messages   int       `json:"messages"`
	Delivered  int       `json:"delivered"`
	Cycles     int       `json:"cycles"`
	Drops      int       `json:"drops"`
	Deferrals  int       `json:"deferrals"`
	DurationUS int64     `json:"duration_us"`
	Start      time.Time `json:"start"`
}

// runRing is a fixed-capacity ring of completed runs: pushing past capacity
// overwrites the oldest record in place. The previous retention scheme —
// append then re-slice the tail — grew a fresh backing array on every wrap
// and kept the evicted head reachable through it; the ring's storage is
// allocated once and never moves.
type runRing struct {
	buf   []runRecord
	start int // index of the oldest record
	size  int
}

func newRunRing(capacity int) *runRing {
	return &runRing{buf: make([]runRecord, capacity)}
}

func (r *runRing) push(rec runRecord) {
	if r.size < len(r.buf) {
		r.buf[(r.start+r.size)%len(r.buf)] = rec
		r.size++
		return
	}
	r.buf[r.start] = rec
	r.start = (r.start + 1) % len(r.buf)
}

func (r *runRing) len() int { return r.size }
func (r *runRing) cap() int { return len(r.buf) }

// newestFirst appends the retained records to dst, newest first.
func (r *runRing) newestFirst(dst []runRecord) []runRecord {
	for i := r.size - 1; i >= 0; i-- {
		dst = append(dst, r.buf[(r.start+i)%len(r.buf)])
	}
	return dst
}

// server owns the simulation instances and the HTTP handlers.
type server struct {
	cfg       config
	instances []*instance
	start     time.Time

	ready atomic.Bool // first run completed (tenant mode: accepting requests)

	mu        sync.Mutex
	history   *runRing // completed rotation runs, capped at cfg.history
	total     int
	runCounts [][]int64 // [size index][workload index] completed runs

	// Tenant-serving mode (-tenants); see tenant.go.
	tenants      []*tenant
	tenantIdx    map[string]*tenant
	workloadMenu map[string]bool
	spans        *fattree.SpanRing
	pool         *par.Pool
	wake         chan struct{}
	reqPool      sync.Pool
	traceSeq     atomic.Uint64
	served       atomic.Int64
	drainMu      sync.RWMutex
	draining     bool
}

// newServer builds the per-size engines and observers (rotation mode) or the
// per-tenant engines, queues, and instrumentation (tenant mode).
func newServer(cfg config) (*server, error) {
	s := &server{cfg: cfg, start: time.Now(), history: newRunRing(cfg.history)}
	if len(cfg.tenants) > 0 {
		return s, s.initTenants()
	}
	for i, n := range cfg.sizes {
		w := cfg.rootCap
		if w == 0 {
			w = n / 4
		}
		// Implicit mode trades the per-node counter arrays for per-level
		// ones (the exposition is per-level anyway) and computes the tree on
		// demand, so one rotation can hold a 2^20-endpoint instance.
		var ft fattree.Topology
		var obs *fattree.Observer
		if cfg.implicit {
			imp := fattree.NewImplicitUniversal(n, w)
			ft = imp
			obs = fattree.NewObserverCompact(imp)
		} else {
			dense := fattree.NewUniversal(n, w)
			ft = dense
			obs = fattree.NewObserver(dense)
		}
		eng := fattree.NewEngineWithOptions(ft, cfg.switches, cfg.seed+int64(i),
			fattree.Options{Workers: cfg.workers, Observer: obs})
		if cfg.loss > 0 {
			eng.InjectLoss(cfg.loss, cfg.seed+int64(7*i+3))
		}
		s.instances = append(s.instances, &instance{size: n, eng: eng, obs: obs})
		s.runCounts = append(s.runCounts, make([]int64, len(cfg.workloads)))
	}
	return s, nil
}

// initTenants builds the tenant-serving state: every tenant gets a persistent
// serial engine on the shared topology (the request path must stay
// allocation-free, which the parallel fan-out is not; -workers instead sizes
// the dispatcher pool that processes distinct tenants concurrently), an
// observer, a RED instrument block, and a bounded queue.
func (s *server) initTenants() error {
	n := s.cfg.sizes[0]
	w := s.cfg.rootCap
	if w == 0 {
		w = n / 4
	}
	ft := fattree.NewUniversal(n, w)
	s.tenantIdx = make(map[string]*tenant, len(s.cfg.tenants))
	s.workloadMenu = make(map[string]bool, len(s.cfg.workloads))
	for _, wl := range s.cfg.workloads {
		s.workloadMenu[wl] = true
	}
	for i, name := range s.cfg.tenants {
		obs := fattree.NewObserver(ft)
		eng := fattree.NewEngineWithOptions(ft, s.cfg.switches, s.cfg.seed+int64(i),
			fattree.Options{Workers: 1, Observer: obs})
		if s.cfg.loss > 0 {
			eng.InjectLoss(s.cfg.loss, s.cfg.seed+int64(7*i+3))
		}
		tn := &tenant{
			name: name, idx: int32(i), eng: eng, obs: obs,
			red:   fattree.NewRED(),
			queue: make(chan *routeReq, s.cfg.queue),
		}
		s.tenants = append(s.tenants, tn)
		s.tenantIdx[name] = tn
	}
	s.pool = par.New(s.cfg.workers)
	s.spans = fattree.NewSpanRing(s.cfg.spanCap)
	s.wake = make(chan struct{}, 1)
	s.reqPool = newReqPool()
	return nil
}

// simLoop runs simulations until the context is cancelled or (with -runs
// N > 0) the budget is spent, rotating through size × workload combinations.
func (s *server) simLoop(ctx context.Context) {
	for r := 0; ctx.Err() == nil; r++ {
		combo := r % (len(s.instances) * len(s.cfg.workloads))
		inst := s.instances[combo/len(s.cfg.workloads)]
		wlIdx := combo % len(s.cfg.workloads)
		wl := s.cfg.workloads[wlIdx]
		ms := buildWorkload(wl, inst.size, s.cfg.k, s.cfg.seed+int64(r))

		begin := time.Now()
		var stats fattree.Stats
		if s.cfg.policy == "random" {
			stats = fattree.RunOnlineRandom(inst.eng, ms, s.cfg.seed+int64(2*r+1))
		} else {
			stats = fattree.RunOnline(inst.eng, ms)
		}

		s.mu.Lock()
		s.total++
		s.runCounts[combo/len(s.cfg.workloads)][wlIdx]++
		s.history.push(runRecord{
			Seq: s.total, Tree: inst.size, Workload: wl, Policy: s.cfg.policy,
			Messages: len(ms), Delivered: stats.Delivered, Cycles: stats.Cycles,
			Drops: stats.Drops, Deferrals: stats.Deferrals,
			DurationUS: time.Since(begin).Microseconds(), Start: begin.UTC(),
		})
		s.mu.Unlock()
		s.ready.Store(true)

		if s.cfg.runs > 0 && s.total >= s.cfg.runs {
			return
		}
		if s.cfg.interval > 0 {
			select {
			case <-ctx.Done():
				return
			case <-time.After(s.cfg.interval):
			}
		}
	}
}

// totalRuns returns the number of completed runs (tenant mode: served
// requests).
func (s *server) totalRuns() int {
	if s.tenantMode() {
		return s.servedTotal()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// buildWorkload builds one run's message set (the ftserve subset of the
// ftsim workload menu; local uses a fixed radius of 4).
func buildWorkload(name string, n, k int, seed int64) fattree.MessageSet {
	if k == 0 {
		k = 4 * n
	}
	switch name {
	case "perm":
		return fattree.RandomPermutation(n, seed)
	case "random":
		return fattree.Random(n, k, seed)
	case "bitrev":
		return fattree.BitReversal(n)
	case "transpose":
		return fattree.Transpose(n)
	case "shuffle":
		return fattree.Shuffle(n)
	case "reversal":
		return fattree.Reversal(n)
	case "nn":
		return fattree.NearestNeighbor(n)
	case "alltoall":
		return fattree.AllToAll(n)
	case "hotspot":
		return fattree.HotSpot(n, k, seed)
	case "local":
		return fattree.KLocal(n, k, 4, seed)
	}
	panic("ftserve: unvalidated workload " + name)
}

// mux builds the HTTP handler tree.
func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/runs", s.handleRuns)
	mux.HandleFunc("/v1/route", s.handleRoute)
	if s.tenantMode() {
		mux.HandleFunc("/debug/spans.jsonl", s.handleSpansJSONL)
		mux.HandleFunc("/debug/spans.json", s.handleSpansChrome)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// handleMetrics renders the full exposition into a buffer first, so a slow
// or aborted client can never leave a half-written scrape.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	s.writeServerMetrics(&buf)
	var snaps []fattree.LabeledSnapshot
	if s.tenantMode() {
		reds := make([]fattree.LabeledRED, 0, len(s.tenants))
		for _, tn := range s.tenants {
			labels := []fattree.PromLabel{{Name: "tenant", Value: tn.name}}
			reds = append(reds, fattree.LabeledRED{Labels: labels, Snap: tn.red.Snapshot()})
			snaps = append(snaps, fattree.LabeledSnapshot{Labels: labels, Snap: tn.obs.Snapshot()})
		}
		if err := fattree.WriteREDPrometheus(&buf, reds...); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	} else {
		snaps = make([]fattree.LabeledSnapshot, 0, len(s.instances))
		for _, inst := range s.instances {
			snaps = append(snaps, fattree.LabeledSnapshot{
				Labels: []fattree.PromLabel{{Name: "tree", Value: strconv.Itoa(inst.size)}},
				Snap:   inst.obs.Snapshot(),
			})
		}
	}
	if err := fattree.WritePrometheus(&buf, snaps...); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if _, err := w.Write(buf.Bytes()); err != nil {
		return // client went away; nothing to clean up
	}
}

// writeServerMetrics writes the daemon's own families (distinct from the
// snapshot families WritePrometheus owns).
func (s *server) writeServerMetrics(buf *bytes.Buffer) {
	fmt.Fprintf(buf, "# HELP fattree_server_info Build and configuration of this ftserve process.\n")
	fmt.Fprintf(buf, "# TYPE fattree_server_info gauge\n")
	fmt.Fprintf(buf, "fattree_server_info{go_version=%q,policy=%q,switches=%q} 1\n",
		runtime.Version(), s.cfg.policy, switchName(s.cfg.switches))
	fmt.Fprintf(buf, "# HELP fattree_server_ready Whether the first simulation run has completed.\n")
	fmt.Fprintf(buf, "# TYPE fattree_server_ready gauge\n")
	ready := 0
	if s.ready.Load() {
		ready = 1
	}
	fmt.Fprintf(buf, "fattree_server_ready %d\n", ready)
	fmt.Fprintf(buf, "# HELP fattree_server_uptime_seconds Seconds since process start.\n")
	fmt.Fprintf(buf, "# TYPE fattree_server_uptime_seconds gauge\n")
	fmt.Fprintf(buf, "fattree_server_uptime_seconds %g\n", time.Since(s.start).Seconds())
	fmt.Fprintf(buf, "# HELP fattree_server_runs_total Completed simulation runs per tree and workload.\n")
	fmt.Fprintf(buf, "# TYPE fattree_server_runs_total counter\n")
	s.mu.Lock()
	for i, inst := range s.instances {
		for j, wl := range s.cfg.workloads {
			fmt.Fprintf(buf, "fattree_server_runs_total{tree=\"%d\",workload=%q} %d\n",
				inst.size, wl, s.runCounts[i][j])
		}
	}
	s.mu.Unlock()
}

func switchName(k fattree.SwitchKind) string {
	if k == fattree.SwitchPartial {
		return "partial"
	}
	return "ideal"
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if _, err := fmt.Fprintln(w, "ok"); err != nil {
		return
	}
}

func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		msg := "no run completed yet"
		if s.tenantMode() {
			msg = "not accepting requests (starting or draining)"
		}
		http.Error(w, msg, http.StatusServiceUnavailable)
		return
	}
	if _, err := fmt.Fprintln(w, "ready"); err != nil {
		return
	}
}

// handleRuns serves the recent run history as JSON, newest first.
func (s *server) handleRuns(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	recent := s.history.newestFirst(make([]runRecord, 0, s.history.len()))
	total := s.total
	s.mu.Unlock()
	if s.tenantMode() {
		total = s.servedTotal() // requests, not rotation runs
	}
	doc := struct {
		Total         int         `json:"total"`
		Ready         bool        `json:"ready"`
		UptimeSeconds float64     `json:"uptime_seconds"`
		Runs          []runRecord `json:"runs"`
	}{total, s.ready.Load(), time.Since(s.start).Seconds(), recent}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(buf.Bytes()); err != nil {
		return
	}
}
