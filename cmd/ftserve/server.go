package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fattree"
)

// config is the parsed ftserve command line.
type config struct {
	addr      string
	sizes     []int
	rootCap   int
	workloads []string
	k         int
	policy    string
	switches  fattree.SwitchKind
	loss      float64
	seed      int64
	workers   int
	runs      int
	interval  time.Duration
	history   int
	implicit  bool
}

// serveWorkloads are the workload generators the rotation may use.
var serveWorkloads = map[string]bool{
	"perm": true, "random": true, "bitrev": true, "transpose": true,
	"shuffle": true, "reversal": true, "nn": true, "alltoall": true,
	"hotspot": true, "local": true,
}

// parseConfig parses and validates args; any error is a usage error (exit 2).
func parseConfig(args []string) (config, error) {
	var cfg config
	var sizes, workloads, switches string
	fs := flag.NewFlagSet("ftserve", flag.ContinueOnError)
	var usage bytes.Buffer
	fs.SetOutput(&usage)
	fs.StringVar(&cfg.addr, "addr", "127.0.0.1:8080", "HTTP listen address (host:port; port 0 picks an ephemeral port)")
	fs.StringVar(&sizes, "n", "256", "comma-separated tree sizes to rotate through (powers of two)")
	fs.IntVar(&cfg.rootCap, "w", 0, "root capacity for every tree (0 = n/4 per tree)")
	fs.StringVar(&workloads, "workloads", "perm,random,transpose", "comma-separated workload rotation: perm|random|bitrev|transpose|shuffle|reversal|nn|alltoall|hotspot|local")
	fs.IntVar(&cfg.k, "k", 0, "message count for random/local/hotspot workloads (0 = 4n)")
	fs.StringVar(&cfg.policy, "policy", "online", "delivery policy per run: online|random")
	fs.StringVar(&switches, "switches", "ideal", "concentrator kind: ideal|partial")
	fs.Float64Var(&cfg.loss, "loss", 0, "transient-fault injection rate in [0,1)")
	fs.Int64Var(&cfg.seed, "seed", 1, "base random seed (varied per run)")
	fs.IntVar(&cfg.workers, "workers", 0, "delivery-cycle workers per engine: 0 = GOMAXPROCS, 1 = serial")
	fs.IntVar(&cfg.runs, "runs", 0, "stop after this many runs and exit 0 (0 = run until signalled)")
	fs.DurationVar(&cfg.interval, "interval", 0, "pause between runs (0 = back to back)")
	fs.IntVar(&cfg.history, "history", 64, "completed runs retained for /runs")
	fs.BoolVar(&cfg.implicit, "implicit", false, "compute topologies on the fly and route with the streaming engine (per-level /metrics counters; lets -n reach 2^20)")
	if err := fs.Parse(args); err != nil {
		return cfg, fmt.Errorf("%w\n%s", err, usage.String())
	}
	if fs.NArg() > 0 {
		return cfg, fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	for _, f := range strings.Split(sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 4 || n&(n-1) != 0 {
			return cfg, fmt.Errorf("-n entries must be powers of two >= 4 (got %q)", f)
		}
		cfg.sizes = append(cfg.sizes, n)
	}
	for _, w := range strings.Split(workloads, ",") {
		w = strings.TrimSpace(w)
		if !serveWorkloads[w] {
			return cfg, fmt.Errorf("unknown workload %q in -workloads", w)
		}
		if w == "transpose" {
			for _, n := range cfg.sizes {
				if fattree.Lg(n)%2 != 0 {
					return cfg, fmt.Errorf("workload transpose needs an even power of two, but -n includes %d", n)
				}
			}
		}
		cfg.workloads = append(cfg.workloads, w)
	}
	switch cfg.policy {
	case "online", "random":
	default:
		return cfg, fmt.Errorf("unknown -policy %q (want online|random)", cfg.policy)
	}
	switch switches {
	case "ideal":
		cfg.switches = fattree.SwitchIdeal
	case "partial":
		cfg.switches = fattree.SwitchPartial
	default:
		return cfg, fmt.Errorf("unknown -switches %q (want ideal|partial)", switches)
	}
	if cfg.loss < 0 || cfg.loss >= 1 {
		return cfg, fmt.Errorf("-loss must be in [0,1) (got %v)", cfg.loss)
	}
	if cfg.runs < 0 || cfg.workers < 0 || cfg.interval < 0 {
		return cfg, fmt.Errorf("-runs, -workers, and -interval must be non-negative")
	}
	if cfg.history < 1 {
		return cfg, fmt.Errorf("-history must be >= 1 (got %d)", cfg.history)
	}
	return cfg, nil
}

// instance is one simulated tree of the rotation: the engine and observer
// persist across runs, so the observer's counters are the monotone totals
// Prometheus expects. Only the sim loop touches eng; handlers read obs via
// Snapshot, which is safe mid-run.
type instance struct {
	size int
	eng  *fattree.Engine
	obs  *fattree.Observer
}

// runRecord is one completed simulation run, as served by /runs.
type runRecord struct {
	Seq        int       `json:"seq"`
	Tree       int       `json:"tree"`
	Workload   string    `json:"workload"`
	Policy     string    `json:"policy"`
	Messages   int       `json:"messages"`
	Delivered  int       `json:"delivered"`
	Cycles     int       `json:"cycles"`
	Drops      int       `json:"drops"`
	Deferrals  int       `json:"deferrals"`
	DurationUS int64     `json:"duration_us"`
	Start      time.Time `json:"start"`
}

// server owns the simulation instances and the HTTP handlers.
type server struct {
	cfg       config
	instances []*instance
	start     time.Time

	ready atomic.Bool // first run completed

	mu        sync.Mutex
	history   []runRecord // newest last, capped at cfg.history
	total     int
	runCounts [][]int64 // [size index][workload index] completed runs
}

// newServer builds the per-size engines and observers.
func newServer(cfg config) (*server, error) {
	s := &server{cfg: cfg, start: time.Now()}
	for i, n := range cfg.sizes {
		w := cfg.rootCap
		if w == 0 {
			w = n / 4
		}
		// Implicit mode trades the per-node counter arrays for per-level
		// ones (the exposition is per-level anyway) and computes the tree on
		// demand, so one rotation can hold a 2^20-endpoint instance.
		var ft fattree.Topology
		var obs *fattree.Observer
		if cfg.implicit {
			imp := fattree.NewImplicitUniversal(n, w)
			ft = imp
			obs = fattree.NewObserverCompact(imp)
		} else {
			dense := fattree.NewUniversal(n, w)
			ft = dense
			obs = fattree.NewObserver(dense)
		}
		eng := fattree.NewEngineWithOptions(ft, cfg.switches, cfg.seed+int64(i),
			fattree.Options{Workers: cfg.workers, Observer: obs})
		if cfg.loss > 0 {
			eng.InjectLoss(cfg.loss, cfg.seed+int64(7*i+3))
		}
		s.instances = append(s.instances, &instance{size: n, eng: eng, obs: obs})
		s.runCounts = append(s.runCounts, make([]int64, len(cfg.workloads)))
	}
	return s, nil
}

// simLoop runs simulations until the context is cancelled or (with -runs
// N > 0) the budget is spent, rotating through size × workload combinations.
func (s *server) simLoop(ctx context.Context) {
	for r := 0; ctx.Err() == nil; r++ {
		combo := r % (len(s.instances) * len(s.cfg.workloads))
		inst := s.instances[combo/len(s.cfg.workloads)]
		wlIdx := combo % len(s.cfg.workloads)
		wl := s.cfg.workloads[wlIdx]
		ms := buildWorkload(wl, inst.size, s.cfg.k, s.cfg.seed+int64(r))

		begin := time.Now()
		var stats fattree.Stats
		if s.cfg.policy == "random" {
			stats = fattree.RunOnlineRandom(inst.eng, ms, s.cfg.seed+int64(2*r+1))
		} else {
			stats = fattree.RunOnline(inst.eng, ms)
		}

		s.mu.Lock()
		s.total++
		s.runCounts[combo/len(s.cfg.workloads)][wlIdx]++
		s.history = append(s.history, runRecord{
			Seq: s.total, Tree: inst.size, Workload: wl, Policy: s.cfg.policy,
			Messages: len(ms), Delivered: stats.Delivered, Cycles: stats.Cycles,
			Drops: stats.Drops, Deferrals: stats.Deferrals,
			DurationUS: time.Since(begin).Microseconds(), Start: begin.UTC(),
		})
		if len(s.history) > s.cfg.history {
			s.history = s.history[len(s.history)-s.cfg.history:]
		}
		s.mu.Unlock()
		s.ready.Store(true)

		if s.cfg.runs > 0 && s.total >= s.cfg.runs {
			return
		}
		if s.cfg.interval > 0 {
			select {
			case <-ctx.Done():
				return
			case <-time.After(s.cfg.interval):
			}
		}
	}
}

// totalRuns returns the number of completed runs.
func (s *server) totalRuns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// buildWorkload builds one run's message set (the ftserve subset of the
// ftsim workload menu; local uses a fixed radius of 4).
func buildWorkload(name string, n, k int, seed int64) fattree.MessageSet {
	if k == 0 {
		k = 4 * n
	}
	switch name {
	case "perm":
		return fattree.RandomPermutation(n, seed)
	case "random":
		return fattree.Random(n, k, seed)
	case "bitrev":
		return fattree.BitReversal(n)
	case "transpose":
		return fattree.Transpose(n)
	case "shuffle":
		return fattree.Shuffle(n)
	case "reversal":
		return fattree.Reversal(n)
	case "nn":
		return fattree.NearestNeighbor(n)
	case "alltoall":
		return fattree.AllToAll(n)
	case "hotspot":
		return fattree.HotSpot(n, k, seed)
	case "local":
		return fattree.KLocal(n, k, 4, seed)
	}
	panic("ftserve: unvalidated workload " + name)
}

// mux builds the HTTP handler tree.
func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/runs", s.handleRuns)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// handleMetrics renders the full exposition into a buffer first, so a slow
// or aborted client can never leave a half-written scrape.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	s.writeServerMetrics(&buf)
	snaps := make([]fattree.LabeledSnapshot, 0, len(s.instances))
	for _, inst := range s.instances {
		snaps = append(snaps, fattree.LabeledSnapshot{
			Labels: []fattree.PromLabel{{Name: "tree", Value: strconv.Itoa(inst.size)}},
			Snap:   inst.obs.Snapshot(),
		})
	}
	if err := fattree.WritePrometheus(&buf, snaps...); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if _, err := w.Write(buf.Bytes()); err != nil {
		return // client went away; nothing to clean up
	}
}

// writeServerMetrics writes the daemon's own families (distinct from the
// snapshot families WritePrometheus owns).
func (s *server) writeServerMetrics(buf *bytes.Buffer) {
	fmt.Fprintf(buf, "# HELP fattree_server_info Build and configuration of this ftserve process.\n")
	fmt.Fprintf(buf, "# TYPE fattree_server_info gauge\n")
	fmt.Fprintf(buf, "fattree_server_info{go_version=%q,policy=%q,switches=%q} 1\n",
		runtime.Version(), s.cfg.policy, switchName(s.cfg.switches))
	fmt.Fprintf(buf, "# HELP fattree_server_ready Whether the first simulation run has completed.\n")
	fmt.Fprintf(buf, "# TYPE fattree_server_ready gauge\n")
	ready := 0
	if s.ready.Load() {
		ready = 1
	}
	fmt.Fprintf(buf, "fattree_server_ready %d\n", ready)
	fmt.Fprintf(buf, "# HELP fattree_server_uptime_seconds Seconds since process start.\n")
	fmt.Fprintf(buf, "# TYPE fattree_server_uptime_seconds gauge\n")
	fmt.Fprintf(buf, "fattree_server_uptime_seconds %g\n", time.Since(s.start).Seconds())
	fmt.Fprintf(buf, "# HELP fattree_server_runs_total Completed simulation runs per tree and workload.\n")
	fmt.Fprintf(buf, "# TYPE fattree_server_runs_total counter\n")
	s.mu.Lock()
	for i, inst := range s.instances {
		for j, wl := range s.cfg.workloads {
			fmt.Fprintf(buf, "fattree_server_runs_total{tree=\"%d\",workload=%q} %d\n",
				inst.size, wl, s.runCounts[i][j])
		}
	}
	s.mu.Unlock()
}

func switchName(k fattree.SwitchKind) string {
	if k == fattree.SwitchPartial {
		return "partial"
	}
	return "ideal"
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if _, err := fmt.Fprintln(w, "ok"); err != nil {
		return
	}
}

func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		http.Error(w, "no run completed yet", http.StatusServiceUnavailable)
		return
	}
	if _, err := fmt.Fprintln(w, "ready"); err != nil {
		return
	}
}

// handleRuns serves the recent run history as JSON, newest first.
func (s *server) handleRuns(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	recent := make([]runRecord, len(s.history))
	for i, rec := range s.history {
		recent[len(s.history)-1-i] = rec
	}
	total := s.total
	s.mu.Unlock()
	doc := struct {
		Total         int         `json:"total"`
		Ready         bool        `json:"ready"`
		UptimeSeconds float64     `json:"uptime_seconds"`
		Runs          []runRecord `json:"runs"`
	}{total, s.ready.Load(), time.Since(s.start).Seconds(), recent}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(buf.Bytes()); err != nil {
		return
	}
}
