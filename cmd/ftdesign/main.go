// Command ftdesign automates the engineering exercise of Section VII: given a
// number of endpoints, a physical switch radix, and a 3-D volume budget, it
// enumerates the 2- and 3-tier k-ary fat-tree design space, prices every
// candidate with the Section IV VLSI cost model (Lemma 3 node boxes for the
// switching hardware plus unit volume per wire), and emits the cheapest
// topology whose load factor respects the requested oversubscription — the
// paper's λ-based one-cycle predicate applied as an acceptance test.
//
// Candidates put full bisection bandwidth above the edge tier (channel
// capacity equals the aggregate width of the tier below) and apply the
// oversubscription ratio at the edge uplinks only, the standard folded-Clos
// shape. A logical upper-tier node wider than one physical switch is realized
// by a stack of ceil(ports/radix) switches, each priced as its own node box.
//
// Usage:
//
//	ftdesign -n 1024 -radix 36 -budget 60000
//	ftdesign -n 1024 -radix 36 -budget 42000 -oversub 2
//
// Exit status: 0 success (a design was found and passed the λ check),
// 1 runtime failure, 2 usage error or no design within the budget.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"fattree"
	"fattree/internal/vlsi"
)

// design is one priced candidate topology.
type design struct {
	desc      fattree.KaryDesc
	tiers     int
	switchVol float64 // summed Lemma 3 node boxes over physical switches
	wireVol   float64 // unit volume per wire, both directions of every channel
	physical  int     // physical switch count
}

func (d *design) cost() float64 { return d.switchVol + d.wireVol }

func main() {
	n := flag.Int("n", 0, "number of endpoints (>= 4)")
	radix := flag.Int("radix", 0, "ports per physical switch (>= 4)")
	budget := flag.Float64("budget", 0, "total volume budget in unit cells (> 0)")
	oversub := flag.Float64("oversub", 1, "maximum edge oversubscription ratio (1 = non-blocking)")
	all := flag.Bool("all", false, "list every design within budget, not just the cheapest")
	flag.Parse()

	if *n < 4 {
		usage("-n must be >= 4 (got %d)", *n)
	}
	if *radix < 4 {
		usage("-radix must be >= 4 (got %d)", *radix)
	}
	if *budget <= 0 {
		usage("-budget must be > 0 (got %g)", *budget)
	}
	if *oversub < 1 {
		usage("-oversub must be >= 1 (got %g)", *oversub)
	}

	fmt.Printf("ftdesign: n=%d radix=%d oversub=%.2f budget=%.0f\n", *n, *radix, *oversub, *budget)

	candidates := enumerate(*n)
	feasible := make([]design, 0, len(candidates))
	radixOK := 0
	for _, down := range candidates {
		d, ok := price(down, *radix, *oversub)
		if !ok {
			continue
		}
		radixOK++
		if d.cost() <= *budget {
			feasible = append(feasible, d)
		}
	}
	fmt.Printf("design space: %d factorizations, %d fit the radix, %d within budget\n",
		len(candidates), radixOK, len(feasible))
	if len(feasible) == 0 {
		usage("no 2/3-tier design for n=%d fits radix %d within budget %.0f (try a larger budget or -oversub)",
			*n, *radix, *budget)
	}

	sort.Slice(feasible, func(i, j int) bool {
		if feasible[i].cost() != feasible[j].cost() {
			return feasible[i].cost() < feasible[j].cost()
		}
		return feasible[i].tiers < feasible[j].tiers
	})
	if *all {
		for _, d := range feasible {
			fmt.Printf("  %d-tier down=%v caps=%s: %d switches, volume %.0f (switch %.0f + wire %.0f)\n",
				d.tiers, d.desc.Down, capsOf(d.desc), d.physical, d.cost(), d.switchVol, d.wireVol)
		}
	}

	best := feasible[0]
	t := fattree.NewKary(best.desc) // core validates the emitted descriptor
	fmt.Printf("best: %d-tier down=%v up=%v parallel=%v — %d physical switches, volume %.0f (switch %.0f + wire %.0f, budget %.0f)\n",
		best.tiers, best.desc.Down, best.desc.Up, best.desc.Parallel,
		best.physical, best.cost(), best.switchVol, best.wireVol, *budget)
	fmt.Printf("topology: %v\n", t)

	// The acceptance test is the paper's load-factor predicate on the worst
	// admissible traffic: the reversal permutation sends every message across
	// the root, so λ(reversal) meets the bisection exactly. A non-blocking
	// design must come out one-cycle (λ <= 1); an oversubscribed design must
	// stay within the requested ratio.
	lam := fattree.LoadFactor(t, fattree.Reversal(*n))
	if lam <= *oversub+1e-9 {
		fmt.Printf("one-cycle λ check: PASS (λ(reversal) = %.3f <= %.2f)\n", lam, *oversub)
	} else {
		fail("one-cycle λ check: FAIL (λ(reversal) = %.3f > %.2f) — cost model bug", lam, *oversub)
	}
}

// enumerate returns every 2- and 3-tier factorization of n (root tier first,
// every factor >= 2), deduplicated and deterministic.
func enumerate(n int) [][]int {
	var out [][]int
	for d1 := 2; d1 <= n/2; d1++ {
		if n%d1 != 0 {
			continue
		}
		d0 := n / d1
		if d0 >= 2 {
			out = append(out, []int{d0, d1})
		}
	}
	for d2 := 2; d2 <= n/4; d2++ {
		if n%d2 != 0 {
			continue
		}
		rest := n / d2
		for d1 := 2; d1 <= rest/2; d1++ {
			if rest%d1 != 0 {
				continue
			}
			d0 := rest / d1
			if d0 >= 2 {
				out = append(out, []int{d0, d1, d2})
			}
		}
	}
	return out
}

// price turns a factorization into a priced design, or reports that it cannot
// be built from radix-port switches. The leaf tier is the last Down entry;
// capacities above the edge follow full bisection, and the oversubscription
// ratio thins the edge uplinks only.
func price(down []int, radix int, oversub float64) (design, bool) {
	tiers := len(down)
	caps := make([]int, tiers+1) // caps[k] = channel width above a level-k node
	caps[tiers] = 1              // endpoint links
	caps[tiers-1] = int(math.Ceil(float64(down[tiers-1]) / oversub))
	if caps[tiers-1] < 1 {
		caps[tiers-1] = 1
	}
	for k := tiers - 2; k >= 1; k-- {
		caps[k] = down[k] * caps[k+1]
	}

	// Edge switches must be single physical switches: down-ports for the
	// endpoints plus up-ports for the uplinks.
	if down[tiers-1]+caps[tiers-1] > radix {
		return design{}, false
	}
	// Upper tiers may stack physical switches per logical node, but no node
	// may fan out to more children than a switch has ports.
	for k := 0; k < tiers-1; k++ {
		if down[k] > radix {
			return design{}, false
		}
	}

	desc := fattree.KaryDesc{
		Down:     append([]int(nil), down...),
		Up:       make([]int, tiers),
		Parallel: make([]int, tiers),
	}
	for k := 0; k < tiers; k++ {
		desc.Up[k] = caps[k+1]
		desc.Parallel[k] = 1
	}

	d := design{desc: desc, tiers: tiers}
	count := 1 // logical nodes at the current level
	for k := 0; k < tiers; k++ {
		up := caps[k]
		if k == 0 {
			up = desc.Up[0] // external root channel defaults to the level-1 width
		}
		ports := up + down[k]*caps[k+1]
		stack := (ports + radix - 1) / radix
		perSwitch := (ports + stack - 1) / stack
		d.switchVol += float64(count*stack) * vlsi.NodeBox(perSwitch, 1).Volume()
		d.physical += count * stack
		count *= down[k]
	}
	t := fattree.NewKary(desc)
	d.wireVol = float64(t.TotalWires())
	return d, true
}

// capsOf renders the per-level capacity table of a descriptor.
func capsOf(desc fattree.KaryDesc) string {
	return fmt.Sprintf("%v", fattree.NewKary(desc).LevelCapTable())
}

// usage reports a command-line mistake or an infeasible specification and
// exits 2; fail reports a runtime failure and exits 1 — the exit convention
// shared by every CLI in this repository.
func usage(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "ftdesign: "+format+"\n", args...)
	os.Exit(2)
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "ftdesign: "+format+"\n", args...)
	os.Exit(1)
}
