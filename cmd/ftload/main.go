// Command ftload is the open-loop load generator for ftserve's tenant mode:
// it drives /v1/route with a configurable rate, concurrency, tenant set, and
// workload mix, folds every request latency into a log2 histogram, and
// scrapes the server's /metrics while the load is in flight. Every scrape is
// gated: the exposition must be accepted by the repo's own validator, and the
// per-tenant conservation law — offered == delivered + dropped + deferred —
// must hold exactly. After the run it asserts the latency SLO (-slo-p99) and
// exits non-zero if any gate failed, so a soak run doubles as an end-to-end
// telemetry check.
//
// The generator is open-loop when -rate is set: arrivals are released by a
// pacer at the target rate regardless of completions, so server-side queueing
// shows up as latency (and 429 backpressure) instead of being hidden by
// coordinated omission. With -rate 0 it runs closed-loop: every worker fires
// its next request as soon as the previous one completes.
//
// With -batch N > 1 requests are sent as NDJSON batches of N lines per POST;
// each line still counts as one request. In batch mode the latency histogram
// records the server-reported per-request latency (queue wait + delivery);
// in single mode it records end-to-end wall clock.
//
// Usage examples:
//
//	ftload -addr http://127.0.0.1:8080 -tenants alpha,beta -requests 100000
//	ftload -tenants alpha -rate 5000 -duration 30s -slo-p99 20ms
//	ftload -tenants alpha,beta,gamma -requests 1000000 -batch 100 -concurrency 16
//
// Exit status: 0 all gates passed, 1 runtime or gate failure, 2 usage error.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"fattree/internal/obsv"
)

// config is the parsed ftload command line.
type config struct {
	addr        string
	tenants     []string
	workloads   []string
	rate        float64
	concurrency int
	batch       int
	k           int
	duration    time.Duration
	requests    int64
	sloP99      time.Duration
	seed        int64
	scrape      time.Duration
	timeout     time.Duration
}

// parseConfig parses and validates args; any error is a usage error (exit 2).
func parseConfig(args []string) (config, error) {
	var cfg config
	var tenants, workloads string
	fs := flag.NewFlagSet("ftload", flag.ContinueOnError)
	var usage bytes.Buffer
	fs.SetOutput(&usage)
	fs.StringVar(&cfg.addr, "addr", "http://127.0.0.1:8080", "ftserve base URL (tenant mode)")
	fs.StringVar(&tenants, "tenants", "", "comma-separated tenant names to spread load over (required)")
	fs.StringVar(&workloads, "workloads", "perm,random", "comma-separated workload mix, assigned round-robin")
	fs.Float64Var(&cfg.rate, "rate", 0, "offered request rate per second across all workers (0 = closed loop)")
	fs.IntVar(&cfg.concurrency, "concurrency", 8, "concurrent client workers")
	fs.IntVar(&cfg.batch, "batch", 1, "requests per POST: 1 = single JSON, >1 = NDJSON batch lines")
	fs.IntVar(&cfg.k, "k", 0, "message count for random/local/hotspot workloads (0 = server default)")
	fs.DurationVar(&cfg.duration, "duration", 0, "stop after this long (0 = no time bound)")
	fs.Int64Var(&cfg.requests, "requests", 0, "stop after this many requests (0 = no count bound)")
	fs.DurationVar(&cfg.sloP99, "slo-p99", 0, "fail (exit 1) if the p99 request latency exceeds this (0 = no gate)")
	fs.Int64Var(&cfg.seed, "seed", 1, "base workload seed (varied per request)")
	fs.DurationVar(&cfg.scrape, "scrape", 2*time.Second, "gate /metrics at this interval while loading (0 = final scrape only)")
	fs.DurationVar(&cfg.timeout, "timeout", 30*time.Second, "per-request HTTP timeout")
	if err := fs.Parse(args); err != nil {
		return cfg, fmt.Errorf("%w\n%s", err, usage.String())
	}
	if fs.NArg() > 0 {
		return cfg, fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	if tenants == "" {
		return cfg, fmt.Errorf("-tenants is required (the ftserve tenant set to load)")
	}
	for _, name := range strings.Split(tenants, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			return cfg, fmt.Errorf("empty tenant name in -tenants")
		}
		cfg.tenants = append(cfg.tenants, name)
	}
	for _, w := range strings.Split(workloads, ",") {
		w = strings.TrimSpace(w)
		if w == "" {
			return cfg, fmt.Errorf("empty workload name in -workloads")
		}
		cfg.workloads = append(cfg.workloads, w)
	}
	if cfg.rate < 0 {
		return cfg, fmt.Errorf("-rate must be non-negative (got %v)", cfg.rate)
	}
	if cfg.concurrency < 1 {
		return cfg, fmt.Errorf("-concurrency must be >= 1 (got %d)", cfg.concurrency)
	}
	if cfg.batch < 1 {
		return cfg, fmt.Errorf("-batch must be >= 1 (got %d)", cfg.batch)
	}
	if cfg.k < 0 {
		return cfg, fmt.Errorf("-k must be non-negative (got %d)", cfg.k)
	}
	if cfg.requests < 0 || cfg.duration < 0 || cfg.scrape < 0 {
		return cfg, fmt.Errorf("-requests, -duration, and -scrape must be non-negative")
	}
	if cfg.requests == 0 && cfg.duration == 0 {
		return cfg, fmt.Errorf("need a stop condition: set -requests and/or -duration")
	}
	if cfg.timeout <= 0 {
		return cfg, fmt.Errorf("-timeout must be positive (got %v)", cfg.timeout)
	}
	if !strings.Contains(cfg.addr, "://") {
		cfg.addr = "http://" + cfg.addr
	}
	cfg.addr = strings.TrimRight(cfg.addr, "/")
	return cfg, nil
}

// routeWire is the /v1/route request body ftload emits.
type routeWire struct {
	Tenant   string `json:"tenant"`
	Workload string `json:"workload"`
	K        int    `json:"k,omitempty"`
	Seed     int64  `json:"seed"`
}

// routeResp is the subset of the /v1/route response ftload reads.
type routeResp struct {
	Tenant      string `json:"tenant"`
	Delivered   int    `json:"delivered"`
	QueueWaitUS int64  `json:"queue_wait_us"`
	DurationUS  int64  `json:"duration_us"`
	Error       string `json:"error"`
	RetryAfterS int    `json:"retry_after_s"`
}

// loader is the shared state of one load run.
type loader struct {
	cfg    config
	client *http.Client

	seq    atomic.Int64 // request sequence, also the budget ledger
	ok     atomic.Int64 // 200 responses / clean batch lines
	reject atomic.Int64 // 429 backpressure rejections
	drain  atomic.Int64 // 503 drain refusals
	failed atomic.Int64 // anything else (transport errors, 4xx, stalls)

	tokens chan struct{} // open-loop pacer output (nil when closed-loop)

	mu  sync.Mutex
	lat obsv.Hist // per-request latency, microseconds

	gateMu sync.Mutex
	gates  []string // scrape-gate violations, reported at exit
}

func main() {
	cfg, err := parseConfig(os.Args[1:])
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftload: %v\n", err)
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ftload: %v\n", err)
		os.Exit(1)
	}
}

// run executes the load, the scrape gates, and the final SLO assertion.
func run(cfg config) error {
	l := &loader{
		cfg: cfg,
		lat: obsv.NewLog2Hist(25), // 1µs .. ~33s
		client: &http.Client{
			Timeout: cfg.timeout,
			Transport: &http.Transport{
				MaxIdleConns:        cfg.concurrency * 2,
				MaxIdleConnsPerHost: cfg.concurrency * 2,
			},
		},
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if cfg.duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.duration)
		defer cancel()
	}

	var pacer sync.WaitGroup
	if cfg.rate > 0 {
		l.tokens = make(chan struct{}, 1<<14)
		pacer.Add(1)
		go func() {
			defer pacer.Done()
			l.pace(ctx)
		}()
	}

	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		l.scrapeLoop(ctx)
	}()

	begin := time.Now()
	var workers sync.WaitGroup
	for w := 0; w < cfg.concurrency; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			l.worker(ctx)
		}()
	}
	workers.Wait()
	elapsed := time.Since(begin)
	stop() // release the pacer and the scrape loop
	pacer.Wait()
	<-scrapeDone

	// Final gated scrape: the post-load steady state must validate too.
	if err := l.checkScrape(); err != nil {
		l.violation(fmt.Sprintf("final scrape: %v", err))
	}
	return l.report(elapsed)
}

// pace releases one token per scheduled arrival at the target rate. Fractions
// accumulate across ticks so low rates stay exact.
func (l *loader) pace(ctx context.Context) {
	const tick = 5 * time.Millisecond
	t := time.NewTicker(tick)
	defer t.Stop()
	var carry float64
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			carry += l.cfg.rate * tick.Seconds()
			for ; carry >= 1; carry-- {
				select {
				case l.tokens <- struct{}{}:
				case <-ctx.Done():
					return
				}
			}
		}
	}
}

// claim reserves up to want requests against the -requests budget, returning
// the first reserved sequence number and how many were granted (0 = spent).
func (l *loader) claim(want int64) (first, granted int64) {
	if l.cfg.requests == 0 {
		end := l.seq.Add(want)
		return end - want, want
	}
	for {
		cur := l.seq.Load()
		left := l.cfg.requests - cur
		if left <= 0 {
			return 0, 0
		}
		grant := want
		if grant > left {
			grant = left
		}
		if l.seq.CompareAndSwap(cur, cur+grant) {
			return cur, grant
		}
	}
}

// worker drives requests until the budget is spent or the context ends.
func (l *loader) worker(ctx context.Context) {
	body := make([]byte, 0, 256*l.cfg.batch)
	for ctx.Err() == nil {
		if l.tokens != nil {
			select {
			case <-ctx.Done():
				return
			case <-l.tokens:
			}
		}
		first, n := l.claim(int64(l.cfg.batch))
		if n == 0 {
			return
		}
		if l.cfg.batch == 1 {
			l.fireSingle(ctx, first)
			continue
		}
		l.fireBatch(ctx, body, first, int(n))
	}
}

// request builds the wire body for request number seq.
func (l *loader) request(seq int64) routeWire {
	return routeWire{
		Tenant:   l.cfg.tenants[seq%int64(len(l.cfg.tenants))],
		Workload: l.cfg.workloads[seq%int64(len(l.cfg.workloads))],
		K:        l.cfg.k,
		Seed:     l.cfg.seed + seq,
	}
}

// fireSingle sends one JSON request and records its end-to-end wall latency.
// discard drains an already-classified response body so the HTTP client can
// reuse the connection. A failed drain means the server hung up mid-body;
// the request outcome was decided by the status line, so the only cost is
// the pooled connection.
func discard(r io.Reader) {
	if _, err := io.Copy(io.Discard, r); err != nil {
		return // connection is dead; Close will drop it from the pool
	}
}

func (l *loader) fireSingle(ctx context.Context, seq int64) {
	payload, err := json.Marshal(l.request(seq))
	if err != nil {
		l.failed.Add(1)
		return
	}
	begin := time.Now()
	resp, err := l.post(ctx, "application/json", payload)
	if err != nil {
		l.failed.Add(1)
		return
	}
	defer resp.Body.Close()
	discard(resp.Body)
	wall := time.Since(begin).Microseconds()
	switch resp.StatusCode {
	case http.StatusOK:
		l.ok.Add(1)
		l.observe(wall)
	case http.StatusTooManyRequests:
		l.reject.Add(1)
	case http.StatusServiceUnavailable:
		l.drain.Add(1)
	default:
		l.failed.Add(1)
	}
}

// fireBatch sends n requests starting at sequence first as one NDJSON POST
// and records the server-reported per-request latencies.
func (l *loader) fireBatch(ctx context.Context, scratch []byte, first int64, n int) {
	body := scratch[:0]
	for i := 0; i < n; i++ {
		line, err := json.Marshal(l.request(first + int64(i)))
		if err != nil {
			l.failed.Add(int64(n))
			return
		}
		body = append(body, line...)
		body = append(body, '\n')
	}
	resp, err := l.post(ctx, "application/x-ndjson", body)
	if err != nil {
		l.failed.Add(int64(n))
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		discard(resp.Body)
		l.failed.Add(int64(n))
		return
	}
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		lines++
		var r routeResp
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			l.failed.Add(1)
			continue
		}
		switch {
		case r.Error == "":
			l.ok.Add(1)
			l.observe(r.QueueWaitUS + r.DurationUS)
		case r.RetryAfterS > 0:
			l.reject.Add(1)
		case strings.Contains(r.Error, "draining"):
			l.drain.Add(1)
		default:
			l.failed.Add(1)
		}
	}
	if lines < n { // short response: the tail never got an answer
		l.failed.Add(int64(n - lines))
	}
}

// post issues one POST /v1/route.
func (l *loader) post(ctx context.Context, contentType string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		l.cfg.addr+"/v1/route", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	return l.client.Do(req)
}

// observe folds one request latency (µs) into the shared histogram.
func (l *loader) observe(us int64) {
	l.mu.Lock()
	l.lat.Observe(us)
	l.mu.Unlock()
}

// violation records one failed gate.
func (l *loader) violation(msg string) {
	l.gateMu.Lock()
	l.gates = append(l.gates, msg)
	l.gateMu.Unlock()
}

// scrapeLoop gates /metrics at the configured interval while load runs.
func (l *loader) scrapeLoop(ctx context.Context) {
	if l.cfg.scrape == 0 {
		return
	}
	t := time.NewTicker(l.cfg.scrape)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := l.checkScrape(); err != nil {
				l.violation(fmt.Sprintf("scrape: %v", err))
			}
		}
	}
}

// checkScrape fetches /metrics once and asserts the exposition gates: the
// text must pass the repo's own validator, every loaded tenant must be
// present, and the per-tenant conservation law must hold exactly.
func (l *loader) checkScrape() error {
	req, err := http.NewRequest(http.MethodGet, l.cfg.addr+"/metrics", nil)
	if err != nil {
		return err
	}
	resp, err := l.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/metrics status %d", resp.StatusCode)
	}
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	samples, err := obsv.ParseExposition(text)
	if err != nil {
		return fmt.Errorf("invalid exposition: %w", err)
	}
	return checkConservation(samples, l.cfg.tenants)
}

// checkConservation asserts offered == delivered + dropped + deferred for
// every loaded tenant's engine counters in one parsed scrape.
func checkConservation(samples []obsv.Sample, tenants []string) error {
	type flow struct {
		offered, delivered, dropped, deferred float64
		seen                                  bool
	}
	flows := make(map[string]*flow, len(tenants))
	for _, tn := range tenants {
		flows[tn] = &flow{}
	}
	for _, s := range samples {
		f, ok := flows[s.Label("tenant")]
		if !ok {
			continue
		}
		switch s.Name {
		case "fattree_messages_offered_total":
			f.offered, f.seen = s.Value, true
		case "fattree_messages_delivered_total":
			f.delivered = s.Value
		case "fattree_messages_dropped_total":
			f.dropped = s.Value
		case "fattree_messages_deferred_total":
			f.deferred = s.Value
		}
	}
	for _, tn := range tenants {
		f := flows[tn]
		if !f.seen {
			return fmt.Errorf("tenant %q missing from /metrics (is ftserve running with -tenants?)", tn)
		}
		if f.offered != f.delivered+f.dropped+f.deferred {
			return fmt.Errorf("tenant %q conservation broken: offered %v != delivered %v + dropped %v + deferred %v",
				tn, f.offered, f.delivered, f.dropped, f.deferred)
		}
	}
	return nil
}

// quantileString renders one histogram quantile for the summary line.
func quantileString(h *obsv.Hist, q float64) string {
	b, ok := h.Quantile(q)
	if !ok {
		if h.Count() == 0 {
			return "n/a"
		}
		return ">33s" // overflow bucket
	}
	return (time.Duration(b) * time.Microsecond).String()
}

// report prints the run summary and returns an error if any gate failed.
func (l *loader) report(elapsed time.Duration) error {
	sent := l.ok.Load() + l.reject.Load() + l.drain.Load() + l.failed.Load()
	rate := float64(sent) / elapsed.Seconds()
	fmt.Printf("ftload: %d requests in %v (%.0f req/s): %d ok, %d rejected (429), %d drained (503), %d failed\n",
		sent, elapsed.Round(time.Millisecond), rate,
		l.ok.Load(), l.reject.Load(), l.drain.Load(), l.failed.Load())
	fmt.Printf("ftload: latency p50<=%s p95<=%s p99<=%s\n",
		quantileString(&l.lat, 0.50), quantileString(&l.lat, 0.95), quantileString(&l.lat, 0.99))

	if l.failed.Load() > 0 {
		l.violation(fmt.Sprintf("%d requests failed outright", l.failed.Load()))
	}
	if l.ok.Load() == 0 {
		l.violation("no request succeeded")
	}
	if l.cfg.sloP99 > 0 {
		p99, ok := l.lat.Quantile(0.99)
		budget := l.cfg.sloP99.Microseconds()
		switch {
		case !ok && l.lat.Count() > 0:
			l.violation(fmt.Sprintf("p99 SLO %v: latency overflowed the histogram", l.cfg.sloP99))
		case ok && p99 > budget:
			l.violation(fmt.Sprintf("p99 SLO %v: p99 bucket bound %v exceeds it",
				l.cfg.sloP99, time.Duration(p99)*time.Microsecond))
		default:
			fmt.Printf("ftload: p99 SLO %v: PASS\n", l.cfg.sloP99)
		}
	}

	l.gateMu.Lock()
	gates := l.gates
	l.gateMu.Unlock()
	if len(gates) > 0 {
		for _, g := range gates {
			fmt.Printf("ftload: GATE FAILED: %s\n", g)
		}
		return fmt.Errorf("%d gate(s) failed", len(gates))
	}
	fmt.Println("ftload: all gates passed")
	return nil
}
