package main

import (
	"strings"
	"testing"

	"fattree/internal/obsv"
)

func TestParseConfigErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"no tenants", []string{"-requests", "10"}},
		{"no stop condition", []string{"-tenants", "alpha"}},
		{"empty tenant", []string{"-tenants", "alpha,,beta", "-requests", "1"}},
		{"empty workload", []string{"-tenants", "alpha", "-workloads", "perm,", "-requests", "1"}},
		{"negative rate", []string{"-tenants", "alpha", "-requests", "1", "-rate", "-5"}},
		{"bad concurrency", []string{"-tenants", "alpha", "-requests", "1", "-concurrency", "0"}},
		{"bad batch", []string{"-tenants", "alpha", "-requests", "1", "-batch", "0"}},
		{"negative k", []string{"-tenants", "alpha", "-requests", "1", "-k", "-1"}},
		{"negative requests", []string{"-tenants", "alpha", "-requests", "-1"}},
		{"bad timeout", []string{"-tenants", "alpha", "-requests", "1", "-timeout", "0"}},
		{"unknown flag", []string{"-nope"}},
		{"positional args", []string{"-tenants", "alpha", "-requests", "1", "extra"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := parseConfig(tc.args); err == nil {
				t.Fatalf("parseConfig(%v) accepted invalid flags", tc.args)
			}
		})
	}

	cfg, err := parseConfig([]string{"-tenants", "a,b", "-requests", "100", "-addr", "127.0.0.1:9999"})
	if err != nil {
		t.Fatalf("valid flags rejected: %v", err)
	}
	if cfg.addr != "http://127.0.0.1:9999" {
		t.Fatalf("addr not normalized: %q", cfg.addr)
	}
	if len(cfg.tenants) != 2 || cfg.tenants[1] != "b" {
		t.Fatalf("tenants parsed wrong: %v", cfg.tenants)
	}
}

func TestClaimBudget(t *testing.T) {
	l := &loader{cfg: config{requests: 10, batch: 4}}
	var total int64
	for {
		first, n := l.claim(4)
		if n == 0 {
			break
		}
		if first+n > 10 {
			t.Fatalf("claim overran the budget: first=%d n=%d", first, n)
		}
		total += n
	}
	if total != 10 {
		t.Fatalf("claimed %d requests, want exactly 10", total)
	}
}

func TestCheckConservation(t *testing.T) {
	scrape := `# TYPE fattree_messages_offered_total counter
fattree_messages_offered_total{tenant="alpha"} 100
fattree_messages_offered_total{tenant="beta"} 7
# TYPE fattree_messages_delivered_total counter
fattree_messages_delivered_total{tenant="alpha"} 90
fattree_messages_delivered_total{tenant="beta"} 7
# TYPE fattree_messages_dropped_total counter
fattree_messages_dropped_total{tenant="alpha"} 8
fattree_messages_dropped_total{tenant="beta"} 0
# TYPE fattree_messages_deferred_total counter
fattree_messages_deferred_total{tenant="alpha"} 2
fattree_messages_deferred_total{tenant="beta"} 0
`
	samples, err := obsv.ParseExposition([]byte(scrape))
	if err != nil {
		t.Fatal(err)
	}
	if err := checkConservation(samples, []string{"alpha", "beta"}); err != nil {
		t.Fatalf("conserved scrape rejected: %v", err)
	}
	if err := checkConservation(samples, []string{"alpha", "gamma"}); err == nil ||
		!strings.Contains(err.Error(), "missing") {
		t.Fatalf("missing tenant not detected: %v", err)
	}

	broken := strings.Replace(scrape, `fattree_messages_delivered_total{tenant="alpha"} 90`,
		`fattree_messages_delivered_total{tenant="alpha"} 89`, 1)
	samples, err = obsv.ParseExposition([]byte(broken))
	if err != nil {
		t.Fatal(err)
	}
	if err := checkConservation(samples, []string{"alpha"}); err == nil ||
		!strings.Contains(err.Error(), "conservation broken") {
		t.Fatalf("broken conservation not detected: %v", err)
	}
}

func TestQuantileString(t *testing.T) {
	h := obsv.NewLog2Hist(25)
	if got := quantileString(&h, 0.99); got != "n/a" {
		t.Fatalf("empty hist quantile = %q, want n/a", got)
	}
	for i := 0; i < 100; i++ {
		h.Observe(500) // all in the 512µs bucket
	}
	if got := quantileString(&h, 0.99); got != "512µs" {
		t.Fatalf("quantile = %q, want 512µs", got)
	}
}
