package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTemp writes one snapshot file and returns its path.
func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const oldDoc = `{
  "meta": {"go_version": "go1.22", "goos": "linux", "goarch": "amd64",
           "gomaxprocs": 8, "num_cpu": 8, "timestamp_utc": "2026-01-01T00:00:00Z"},
  "benchmarks": [
    {"name": "RouteCycleSerial", "n": 256, "ns_per_op": 1000, "allocs_per_op": 0},
    {"name": "RouteCycleSerial", "n": 1024, "ns_per_op": 4000, "allocs_per_op": 0},
    {"name": "OffLineSchedule", "n": 256, "ns_per_op": 9000, "allocs_per_op": 100}
  ]
}`

// flatDoc is the pre-meta array shape (BENCH_3.json vintage).
const flatDoc = `[
  {"name": "RouteCycleSerial", "n": 256, "ns_per_op": 1000, "allocs_per_op": 0}
]`

func runDiff(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb strings.Builder
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"one.json"},
		{"a.json", "b.json", "c.json"},
		{"-threshold", "-3", "a.json", "b.json"},
		{"-nope", "a.json", "b.json"},
	} {
		if code, _, _ := runDiff(t, args...); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}

func TestFileErrors(t *testing.T) {
	good := writeTemp(t, "good.json", oldDoc)
	bad := writeTemp(t, "bad.json", "{not json")
	if code, _, _ := runDiff(t, "/nonexistent/x.json", good); code != 1 {
		t.Error("missing old file: want exit 1")
	}
	if code, _, _ := runDiff(t, good, bad); code != 1 {
		t.Error("malformed new file: want exit 1")
	}
}

func TestNoRegressions(t *testing.T) {
	a := writeTemp(t, "a.json", oldDoc)
	newDoc := strings.ReplaceAll(oldDoc, `"ns_per_op": 1000`, `"ns_per_op": 1050`)
	b := writeTemp(t, "b.json", newDoc)
	code, out, _ := runDiff(t, a, b)
	if code != 0 || !strings.Contains(out, "no regressions") {
		t.Fatalf("exit %d, output:\n%s", code, out)
	}
	if !strings.Contains(out, "go1.22 linux/amd64") {
		t.Errorf("meta header missing:\n%s", out)
	}
}

func TestNsPerOpRegression(t *testing.T) {
	a := writeTemp(t, "a.json", oldDoc)
	newDoc := strings.ReplaceAll(oldDoc, `"ns_per_op": 4000`, `"ns_per_op": 5000`)
	b := writeTemp(t, "b.json", newDoc)

	// Advisory by default: flagged, but exit 0.
	code, out, _ := runDiff(t, a, b)
	if code != 0 {
		t.Fatalf("advisory mode: exit %d, want 0", code)
	}
	if !strings.Contains(out, "REGRESSION: ns/op +25.0%") || !strings.Contains(out, "advisory mode") {
		t.Fatalf("regression not flagged:\n%s", out)
	}

	// -strict fails; a raised threshold clears it.
	if code, _, _ = runDiff(t, "-strict", a, b); code != 1 {
		t.Fatalf("-strict: exit %d, want 1", code)
	}
	if code, _, _ = runDiff(t, "-strict", "-threshold", "30", a, b); code != 0 {
		t.Fatalf("-threshold 30: exit %d, want 0", code)
	}
}

func TestAllocRegression(t *testing.T) {
	a := writeTemp(t, "a.json", oldDoc)
	newDoc := strings.ReplaceAll(oldDoc,
		`{"name": "RouteCycleSerial", "n": 256, "ns_per_op": 1000, "allocs_per_op": 0}`,
		`{"name": "RouteCycleSerial", "n": 256, "ns_per_op": 1000, "allocs_per_op": 2}`)
	b := writeTemp(t, "b.json", newDoc)
	code, out, _ := runDiff(t, "-strict", a, b)
	if code != 1 || !strings.Contains(out, "REGRESSION: allocs/op 0 -> 2") {
		t.Fatalf("alloc regression not flagged (exit %d):\n%s", code, out)
	}
}

func TestFlatArrayCompat(t *testing.T) {
	a := writeTemp(t, "a.json", flatDoc)
	b := writeTemp(t, "b.json", oldDoc)
	code, out, _ := runDiff(t, a, b)
	if code != 0 {
		t.Fatalf("flat-array old file: exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "pre-PR-5 snapshot") {
		t.Errorf("missing no-metadata note:\n%s", out)
	}
	// Benchmarks absent from the flat file are reported as new, not errors.
	if !strings.Contains(out, "(new benchmark)") {
		t.Errorf("missing new-benchmark note:\n%s", out)
	}
}

func TestOnlyFilter(t *testing.T) {
	a := writeTemp(t, "a.json", oldDoc)
	// Regress RouteCycleSerial only; a diff restricted to OffLineSchedule
	// must not see it, even under -strict.
	newDoc := strings.ReplaceAll(oldDoc, `"ns_per_op": 4000`, `"ns_per_op": 9000`)
	b := writeTemp(t, "b.json", newDoc)

	code, out, _ := runDiff(t, "-strict", "-only", "OffLineSchedule", a, b)
	if code != 0 {
		t.Fatalf("-only OffLineSchedule: exit %d, want 0\n%s", code, out)
	}
	if strings.Contains(out, "RouteCycleSerial") {
		t.Errorf("filtered-out benchmark still reported:\n%s", out)
	}
	if !strings.Contains(out, "OffLineSchedule") {
		t.Errorf("kept benchmark missing from report:\n%s", out)
	}

	// The same diff without the filter (or with one matching the regressed
	// family) fails under -strict.
	if code, _, _ := runDiff(t, "-strict", "-only", "RouteCycle", a, b); code != 1 {
		t.Errorf("-only RouteCycle on a regressed family: exit %d, want 1", code)
	}

	// A pattern matching nothing is a runtime error, a malformed one a usage
	// error.
	if code, _, errb := runDiff(t, "-only", "NoSuchBench", a, b); code != 1 || !strings.Contains(errb, "matches no benchmark") {
		t.Errorf("empty -only match: exit %d stderr %q, want 1 + note", code, errb)
	}
	if code, _, _ := runDiff(t, "-only", "(", a, b); code != 2 {
		t.Errorf("invalid -only regexp: want usage error")
	}
}

func TestDroppedBenchmark(t *testing.T) {
	a := writeTemp(t, "a.json", oldDoc)
	b := writeTemp(t, "b.json", flatDoc)
	_, out, _ := runDiff(t, a, b)
	if !strings.Contains(out, "(dropped benchmark)") {
		t.Errorf("missing dropped-benchmark note:\n%s", out)
	}
}
