// Command ftbenchdiff compares two BENCH_*.json micro-benchmark snapshots
// (written by `ftbench -bench -json` / `make bench-json`) and flags ns/op
// regressions above a threshold, plus any allocs/op increase. It accepts both
// the current {"meta": ..., "benchmarks": [...]} shape and the bare array
// emitted before the meta header existed.
//
// Usage:
//
//	ftbenchdiff old.json new.json             # report, always exit 0
//	ftbenchdiff -threshold 5 old.json new.json
//	ftbenchdiff -strict old.json new.json     # exit 1 if regressions found
//	ftbenchdiff -only OffLineSchedule old.json new.json
//
// The default mode is advisory (exit 0 even with regressions) so CI can run
// it on shared, noisy runners without failing the build; -strict turns
// regressions into a nonzero exit for environments with stable timing.
// -only restricts the comparison to benchmarks whose name matches the given
// regular expression, so CI can hold one stable family to -strict while the
// noisier ones stay advisory.
//
// Exit status: 0 success (or advisory regressions), 1 runtime failure or
// regressions under -strict, 2 usage error.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// benchMeta and benchResult mirror the ftbench -json output; unknown fields
// (embedded histograms, future additions) are ignored.
type benchMeta struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Timestamp  string `json:"timestamp_utc"`
}

type benchResult struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type benchDoc struct {
	Meta       benchMeta     `json:"meta"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// filterBench keeps only the results whose name matches re.
func filterBench(rs []benchResult, re *regexp.Regexp) []benchResult {
	out := rs[:0]
	for _, r := range rs {
		if re.MatchString(r.Name) {
			out = append(out, r)
		}
	}
	return out
}

// readBench loads one snapshot, accepting either JSON shape.
func readBench(path string) (benchDoc, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return benchDoc{}, err
	}
	trimmed := bytes.TrimLeft(raw, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var doc benchDoc
		if err := json.Unmarshal(raw, &doc.Benchmarks); err != nil {
			return benchDoc{}, fmt.Errorf("%s: %v", path, err)
		}
		return doc, nil
	}
	var doc benchDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return benchDoc{}, fmt.Errorf("%s: %v", path, err)
	}
	return doc, nil
}

func metaLine(m benchMeta) string {
	if m == (benchMeta{}) {
		return "(no metadata: pre-PR-5 snapshot)"
	}
	return fmt.Sprintf("%s %s/%s gomaxprocs=%d cpus=%d at %s",
		m.GoVersion, m.GOOS, m.GOARCH, m.GOMAXPROCS, m.NumCPU, m.Timestamp)
}

// run is the testable entry point; it returns the process exit code. The
// report is rendered into buffers and flushed with one checked write per
// stream, so a broken pipe can't silently truncate it mid-table.
func run(args []string, stdout, stderr io.Writer) int {
	var out, errb bytes.Buffer
	code := diff(args, &out, &errb)
	if _, err := stdout.Write(out.Bytes()); err != nil {
		return 1
	}
	if _, err := stderr.Write(errb.Bytes()); err != nil {
		return 1
	}
	return code
}

func diff(args []string, stdout, stderr *bytes.Buffer) int {
	fs := flag.NewFlagSet("ftbenchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 10, "flag ns/op regressions above this percentage")
	strict := fs.Bool("strict", false, "exit 1 when regressions are flagged (default is advisory)")
	only := fs.String("only", "", "compare only benchmarks whose name matches this regexp")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: ftbenchdiff [-threshold pct] [-strict] [-only regexp] old.json new.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	if *threshold < 0 {
		fmt.Fprintf(stderr, "ftbenchdiff: -threshold must be non-negative (got %v)\n", *threshold)
		return 2
	}
	var filter *regexp.Regexp
	if *only != "" {
		var err error
		if filter, err = regexp.Compile(*only); err != nil {
			fmt.Fprintf(stderr, "ftbenchdiff: invalid -only pattern: %v\n", err)
			return 2
		}
	}

	old, err := readBench(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "ftbenchdiff: %v\n", err)
		return 1
	}
	cur, err := readBench(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "ftbenchdiff: %v\n", err)
		return 1
	}
	if filter != nil {
		old.Benchmarks = filterBench(old.Benchmarks, filter)
		cur.Benchmarks = filterBench(cur.Benchmarks, filter)
		if len(old.Benchmarks) == 0 && len(cur.Benchmarks) == 0 {
			fmt.Fprintf(stderr, "ftbenchdiff: -only %q matches no benchmark on either side\n", *only)
			return 1
		}
	}

	fmt.Fprintf(stdout, "old: %s\nnew: %s\n\n", metaLine(old.Meta), metaLine(cur.Meta))
	fmt.Fprintf(stdout, "%-22s %6s %14s %14s %9s %11s\n",
		"benchmark", "n", "old ns/op", "new ns/op", "delta", "allocs/op")

	type key struct {
		name string
		n    int
	}
	oldBy := make(map[key]benchResult, len(old.Benchmarks))
	for _, r := range old.Benchmarks {
		oldBy[key{r.Name, r.N}] = r
	}

	regressions := 0
	matched := make(map[key]bool, len(cur.Benchmarks))
	for _, now := range cur.Benchmarks {
		k := key{now.Name, now.N}
		was, ok := oldBy[k]
		if !ok {
			fmt.Fprintf(stdout, "%-22s %6d %14s %14.0f %9s %11d  (new benchmark)\n",
				now.Name, now.N, "-", now.NsPerOp, "-", now.AllocsPerOp)
			continue
		}
		matched[k] = true
		delta := 0.0
		if was.NsPerOp > 0 {
			delta = 100 * (now.NsPerOp - was.NsPerOp) / was.NsPerOp
		}
		flags := ""
		if delta > *threshold {
			flags += fmt.Sprintf("  REGRESSION: ns/op +%.1f%% > %.0f%%", delta, *threshold)
			regressions++
		}
		if now.AllocsPerOp > was.AllocsPerOp {
			flags += fmt.Sprintf("  REGRESSION: allocs/op %d -> %d", was.AllocsPerOp, now.AllocsPerOp)
			regressions++
		}
		fmt.Fprintf(stdout, "%-22s %6d %14.0f %14.0f %+8.1f%% %5d -> %-4d%s\n",
			now.Name, now.N, was.NsPerOp, now.NsPerOp, delta, was.AllocsPerOp, now.AllocsPerOp, flags)
	}
	for _, was := range old.Benchmarks {
		if !matched[key{was.Name, was.N}] {
			fmt.Fprintf(stdout, "%-22s %6d %14.0f %14s %9s %11s  (dropped benchmark)\n",
				was.Name, was.N, was.NsPerOp, "-", "-", "-")
		}
	}

	if regressions > 0 {
		fmt.Fprintf(stdout, "\n%d regression(s) flagged (threshold %.0f%% ns/op; any allocs/op increase)\n",
			regressions, *threshold)
		if *strict {
			return 1
		}
		fmt.Fprintln(stdout, "advisory mode: exiting 0 (use -strict to fail on regressions)")
		return 0
	}
	fmt.Fprintf(stdout, "\nno regressions above %.0f%% ns/op, no allocs/op increases\n", *threshold)
	return 0
}
