package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildFtlint compiles the ftlint binary once into a test temp dir.
func buildFtlint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "ftlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building ftlint: %v\n%s", err, out)
	}
	return bin
}

// writeModule materializes a throwaway module from path -> contents.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const badSimSource = `package sim

import (
	"math/rand"
	"time"
)

func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

func Stamp() int64 { return time.Now().UnixNano() }

func Stream() *rand.Rand { return rand.New(rand.NewSource(1)) }
`

const badMetricsSource = `package metrics

func Same(a, b float64) bool { return a == b }
`

const badParSource = `package par

func Spin() {
	go func() {
		for {
		}
	}()
}
`

const badSchedSource = `package sched

type Schedule struct{ n int }

type Scheduler struct{ arena Schedule }

//ftlint:loan
func (s *Scheduler) OffLine() *Schedule { return &s.arena }

var last *Schedule

func Keep(s *Scheduler) { last = s.OffLine() }
`

func badModule(t *testing.T) string {
	return writeModule(t, map[string]string{
		"go.mod":                  "module badmod\n\ngo 1.22\n",
		"internal/sim/bad.go":     badSimSource,
		"internal/metrics/bad.go": badMetricsSource,
		"internal/par/bad.go":     badParSource,
		"internal/sched/bad.go":   badSchedSource,
	})
}

// TestSmokeStandalone runs the multichecker over a known-bad module and
// asserts the non-zero exit plus one diagnostic per planted violation.
func TestSmokeStandalone(t *testing.T) {
	bin := buildFtlint(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = badModule(t)
	out, err := cmd.CombinedOutput()
	exit, ok := err.(*exec.ExitError)
	if !ok || exit.ExitCode() != 1 {
		t.Fatalf("ftlint ./... on bad module: err=%v (want exit 1)\n%s", err, out)
	}
	for _, want := range []string{
		"[nondeterm] call to global math/rand.Shuffle",
		"[nondeterm] time.Now",
		"[seedplumbing] rand.NewSource seeded from a constant",
		"[floatcompare] floating-point == comparison",
		"[goroshutdown] goroutine is not provably joinable",
		"[loanescape] loan from //ftlint:loan (*Scheduler).OffLine stored into package-level variable",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("missing diagnostic %q in output:\n%s", want, out)
		}
	}
}

// TestSmokeVetTool drives the same bad module through the go command's
// -vettool protocol, which exercises the unitchecker code path end to end.
func TestSmokeVetTool(t *testing.T) {
	bin := buildFtlint(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = badModule(t)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool on bad module succeeded; want failure\n%s", out)
	}
	for _, want := range []string{"[nondeterm]", "[seedplumbing]", "[floatcompare]", "[goroshutdown]", "[loanescape]"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("missing diagnostic %q in go vet output:\n%s", want, out)
		}
	}
}

// TestSmokeCleanModule asserts the zero exit on a module that follows the
// sanctioned patterns, including a fixed seed in a test file (tests are out
// of scope by design).
func TestSmokeCleanModule(t *testing.T) {
	bin := buildFtlint(t)
	dir := writeModule(t, map[string]string{
		"go.mod": "module goodmod\n\ngo 1.22\n",
		"internal/sim/good.go": `package sim

import "math/rand"

func Stream(seed int64, node int) *rand.Rand {
	return rand.New(rand.NewSource(seed + int64(node)))
}
`,
		"internal/sim/good_test.go": `package sim

import (
	"math/rand"
	"testing"
)

func TestStream(t *testing.T) {
	want := rand.New(rand.NewSource(1)).Int63()
	if got := Stream(1, 0).Int63(); got != want {
		t.Fatalf("got %d, want %d", got, want)
	}
}
`,
	})
	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("ftlint on clean module: %v\n%s", err, out)
	}
}

// TestRepoClean runs ftlint over this repository itself and requires a zero
// exit: every //ftlint:hotpath annotation in the tree — including the
// scheduler arena's — must satisfy the hotalloc rules, and the other
// analyzers must stay quiet. This is the static half of the allocation
// contract; TestOffLineScheduleAllocs and the RouteCycle guards are the
// runtime half.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-repo lint run is covered in CI")
	}
	bin := buildFtlint(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = filepath.Join("..", "..")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("ftlint ./... on the repository: %v\n%s", err, out)
	}
	// The interprocedural trio again, explicitly, so a future edit that drops
	// one from All() cannot silently shrink this check.
	cmd = exec.Command(bin, "-only", "callgraphhotalloc,loanescape,goroshutdown", "./...")
	cmd.Dir = filepath.Join("..", "..")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("ftlint -only callgraphhotalloc,loanescape,goroshutdown on the repository: %v\n%s", err, out)
	}
}

// TestListFlag sanity-checks the -list output names every analyzer.
func TestListFlag(t *testing.T) {
	bin := buildFtlint(t)
	out, err := exec.Command(bin, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("ftlint -list: %v\n%s", err, out)
	}
	for _, name := range []string{
		"nondeterm", "poolcapture", "floatcompare", "seedplumbing", "errdiscard",
		"hotalloc", "callgraphhotalloc", "loanescape", "goroshutdown",
	} {
		if !strings.Contains(string(out), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out)
		}
	}
}

// TestSmokeJSON asserts the -json shape on both a dirty and a clean run: a
// sorted array of {file, line, col, analyzer, message} objects, and the
// empty (but non-null) array when nothing is found.
func TestSmokeJSON(t *testing.T) {
	bin := buildFtlint(t)
	cmd := exec.Command(bin, "-json", "./...")
	cmd.Dir = badModule(t)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	if exit, ok := err.(*exec.ExitError); !ok || exit.ExitCode() != 1 {
		t.Fatalf("ftlint -json ./... on bad module: err=%v (want exit 1)\n%s%s", err, stdout.String(), stderr.String())
	}
	var diags []jsonDiagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not a diagnostic array: %v\n%s", err, stdout.String())
	}
	if len(diags) == 0 {
		t.Fatal("-json output is empty on a module full of violations")
	}
	byAnalyzer := make(map[string]int)
	for i, d := range diags {
		if d.File == "" || d.Line <= 0 || d.Col <= 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("diagnostic %d has empty fields: %+v", i, d)
		}
		byAnalyzer[d.Analyzer]++
	}
	for _, name := range []string{"nondeterm", "floatcompare", "goroshutdown", "loanescape"} {
		if byAnalyzer[name] == 0 {
			t.Errorf("-json output has no %s diagnostics; got %v", name, byAnalyzer)
		}
	}

	clean := exec.Command(bin, "-json", "./internal/metrics/...")
	clean.Dir = writeModule(t, map[string]string{
		"go.mod":                   "module goodmod\n\ngo 1.22\n",
		"internal/metrics/good.go": "package metrics\n\nfunc Twice(x int) int { return 2 * x }\n",
	})
	out, err := clean.Output()
	if err != nil {
		t.Fatalf("ftlint -json on clean module: %v", err)
	}
	if got := strings.TrimSpace(string(out)); got != "[]" {
		t.Errorf("clean -json run printed %q, want the empty array", got)
	}
}

// crossFactsModule plants a //ftlint:hotpath root in one package whose only
// allocation lives two packages away: the diagnostic can exist only if the
// callee's allocation witness crossed both package boundaries through facts.
func crossFactsModule(t *testing.T) string {
	return writeModule(t, map[string]string{
		"go.mod": "module xmod\n\ngo 1.22\n",
		"internal/concentrator/c.go": `package concentrator

func Route(n int) map[int]int {
	m := make(map[int]int, n)
	for i := 0; i < n; i++ {
		m[i] = i
	}
	return m
}

func Relay(n int) int { return len(Route(n)) }
`,
		"internal/sim/hot.go": `package sim

import "xmod/internal/concentrator"

//ftlint:hotpath
func Step(n int) int {
	return concentrator.Relay(n)
}
`,
	})
}

const crossFactsWant = "hot path reaches an allocation in another package: concentrator.Relay → Route → allocates a map"

// TestCrossPackageFactsStandalone proves the in-memory facts path: the
// interprocedural witness survives the topological standalone run.
func TestCrossPackageFactsStandalone(t *testing.T) {
	bin := buildFtlint(t)
	cmd := exec.Command(bin, "-only", "callgraphhotalloc", "./...")
	cmd.Dir = crossFactsModule(t)
	out, err := cmd.CombinedOutput()
	if exit, ok := err.(*exec.ExitError); !ok || exit.ExitCode() != 1 {
		t.Fatalf("ftlint on cross-package module: err=%v (want exit 1)\n%s", err, out)
	}
	if !strings.Contains(string(out), crossFactsWant) {
		t.Errorf("missing cross-package witness diagnostic %q in output:\n%s", crossFactsWant, out)
	}
}

// TestCrossPackageFactsVetTool proves the .vetx round trip: go vet analyzes
// concentrator first, serializes its witness facts to a .vetx file, and the
// sim unit must read them back to produce the same diagnostic.
func TestCrossPackageFactsVetTool(t *testing.T) {
	bin := buildFtlint(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = crossFactsModule(t)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool on cross-package module succeeded; want failure\n%s", out)
	}
	if !strings.Contains(string(out), crossFactsWant) {
		t.Errorf("missing cross-package witness diagnostic %q in go vet output:\n%s", crossFactsWant, out)
	}
}
