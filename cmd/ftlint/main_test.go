package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildFtlint compiles the ftlint binary once into a test temp dir.
func buildFtlint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "ftlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building ftlint: %v\n%s", err, out)
	}
	return bin
}

// writeModule materializes a throwaway module from path -> contents.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const badSimSource = `package sim

import (
	"math/rand"
	"time"
)

func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

func Stamp() int64 { return time.Now().UnixNano() }

func Stream() *rand.Rand { return rand.New(rand.NewSource(1)) }
`

const badMetricsSource = `package metrics

func Same(a, b float64) bool { return a == b }
`

func badModule(t *testing.T) string {
	return writeModule(t, map[string]string{
		"go.mod":                  "module badmod\n\ngo 1.22\n",
		"internal/sim/bad.go":     badSimSource,
		"internal/metrics/bad.go": badMetricsSource,
	})
}

// TestSmokeStandalone runs the multichecker over a known-bad module and
// asserts the non-zero exit plus one diagnostic per planted violation.
func TestSmokeStandalone(t *testing.T) {
	bin := buildFtlint(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = badModule(t)
	out, err := cmd.CombinedOutput()
	exit, ok := err.(*exec.ExitError)
	if !ok || exit.ExitCode() != 1 {
		t.Fatalf("ftlint ./... on bad module: err=%v (want exit 1)\n%s", err, out)
	}
	for _, want := range []string{
		"[nondeterm] call to global math/rand.Shuffle",
		"[nondeterm] time.Now",
		"[seedplumbing] rand.NewSource seeded from a constant",
		"[floatcompare] floating-point == comparison",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("missing diagnostic %q in output:\n%s", want, out)
		}
	}
}

// TestSmokeVetTool drives the same bad module through the go command's
// -vettool protocol, which exercises the unitchecker code path end to end.
func TestSmokeVetTool(t *testing.T) {
	bin := buildFtlint(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = badModule(t)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool on bad module succeeded; want failure\n%s", out)
	}
	for _, want := range []string{"[nondeterm]", "[seedplumbing]", "[floatcompare]"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("missing diagnostic %q in go vet output:\n%s", want, out)
		}
	}
}

// TestSmokeCleanModule asserts the zero exit on a module that follows the
// sanctioned patterns, including a fixed seed in a test file (tests are out
// of scope by design).
func TestSmokeCleanModule(t *testing.T) {
	bin := buildFtlint(t)
	dir := writeModule(t, map[string]string{
		"go.mod": "module goodmod\n\ngo 1.22\n",
		"internal/sim/good.go": `package sim

import "math/rand"

func Stream(seed int64, node int) *rand.Rand {
	return rand.New(rand.NewSource(seed + int64(node)))
}
`,
		"internal/sim/good_test.go": `package sim

import (
	"math/rand"
	"testing"
)

func TestStream(t *testing.T) {
	want := rand.New(rand.NewSource(1)).Int63()
	if got := Stream(1, 0).Int63(); got != want {
		t.Fatalf("got %d, want %d", got, want)
	}
}
`,
	})
	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("ftlint on clean module: %v\n%s", err, out)
	}
}

// TestRepoClean runs ftlint over this repository itself and requires a zero
// exit: every //ftlint:hotpath annotation in the tree — including the
// scheduler arena's — must satisfy the hotalloc rules, and the other
// analyzers must stay quiet. This is the static half of the allocation
// contract; TestOffLineScheduleAllocs and the RouteCycle guards are the
// runtime half.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-repo lint run is covered in CI")
	}
	bin := buildFtlint(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = filepath.Join("..", "..")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("ftlint ./... on the repository: %v\n%s", err, out)
	}
}

// TestListFlag sanity-checks the -list output names every analyzer.
func TestListFlag(t *testing.T) {
	bin := buildFtlint(t)
	out, err := exec.Command(bin, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("ftlint -list: %v\n%s", err, out)
	}
	for _, name := range []string{"nondeterm", "poolcapture", "floatcompare", "seedplumbing", "errdiscard"} {
		if !strings.Contains(string(out), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out)
		}
	}
}
