// Command ftlint is the multichecker for this repository's determinism and
// numeric-safety analyzers (internal/lint). It runs in two modes:
//
// Standalone, over go list patterns resolved in the current module:
//
//	ftlint ./...
//	ftlint -only nondeterm,poolcapture ./internal/sim/...
//
// As a vet tool, driven by the go command (which adds caching and testdata
// handling):
//
//	go vet -vettool=$(which ftlint) ./...
//
// Exit status: 0 clean, 1 diagnostics reported, 2 usage or load failure.
// Sanctioned exceptions are annotated in source with
// `//ftlint:ignore <analyzer> <reason>`.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fattree/internal/lint"
)

// jsonDiagnostic is the machine-readable shape of one finding, emitted by
// -json as a sorted array (empty array, not null, on a clean run) so CI can
// archive and diff lint results across commits.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	os.Exit(run(os.Args[1:]))
}

// printVersion answers the go command's `-V=full` probe. The output line
// must end in a buildID= token hashing the executable: the go command folds
// it into its vet cache key, so analyzer changes invalidate cached results.
func printVersion() int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftlint: %v\n", err)
		return 1
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftlint: %v\n", err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintf(os.Stderr, "ftlint: %v\n", err)
		return 1
	}
	fmt.Printf("ftlint version devel buildID=%02x\n", h.Sum(nil))
	return 0
}

func run(args []string) int {
	// The go command probes its vet tool before use: `ftlint -V=full`
	// must print a version line, and the single remaining argument of a
	// real invocation is the package's vet.cfg file.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		return printVersion()
	}
	if len(args) == 1 && args[0] == "-flags" {
		// The go command asks which analyzer flags the tool accepts, as a
		// JSON array; ftlint always runs its full suite.
		fmt.Println("[]")
		return 0
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		n, err := lint.RunVetTool(args[0], lint.All())
		if err != nil {
			// Load failure, matching the standalone convention: exit 2.
			fmt.Fprintf(os.Stderr, "ftlint: %v\n", err)
			return 2
		}
		if n > 0 {
			// Diagnostics reported: exit 1, like standalone mode.
			return 1
		}
		return 0
	}

	fs := flag.NewFlagSet("ftlint", flag.ContinueOnError)
	var (
		only     = fs.String("only", "", "comma-separated analyzer names to run (default: all)")
		list     = fs.Bool("list", false, "list the analyzers and exit")
		jsonMode = fs.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	)
	fs.Usage = func() {
		fmt.Fprint(os.Stderr, "usage: ftlint [-only a,b] [-json] [-list] [packages]\n\n"+
			"Runs the fat-tree determinism analyzers over the packages\n"+
			"(go list patterns, default ./...). Also usable as\n"+
			"`go vet -vettool=$(which ftlint) ./...`.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *only != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "ftlint: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftlint: %v\n", err)
		return 2
	}
	pkgs, err := lint.Load(cwd, fs.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftlint: %v\n", err)
		return 2
	}
	diags, err := lint.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftlint: %v\n", err)
		return 2
	}
	if *jsonMode {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "ftlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ftlint: %d diagnostic(s)\n", len(diags))
		return 1
	}
	return 0
}
