package fattree

import "fattree/internal/workload"

// This file re-exports the workload generators. All randomized generators
// take an explicit seed and are reproducible bit-for-bit.

// RandomPermutation is a uniform random permutation workload (fixed points
// dropped).
func RandomPermutation(n int, seed int64) MessageSet { return workload.RandomPermutation(n, seed) }

// Random is k messages with uniform endpoints.
func Random(n, k int, seed int64) MessageSet { return workload.Random(n, k, seed) }

// BitReversal is the bit-reversal permutation — adversarial for trees.
func BitReversal(n int) MessageSet { return workload.BitReversal(n) }

// Transpose is the matrix-transpose permutation (n an even power of two).
func Transpose(n int) MessageSet { return workload.Transpose(n) }

// Shuffle is the perfect-shuffle permutation of Schwartz's ultracomputer.
func Shuffle(n int) MessageSet { return workload.Shuffle(n) }

// Reversal is the mirror permutation p -> n-1-p (everything crosses the
// root).
func Reversal(n int) MessageSet { return workload.Reversal(n) }

// AllToAll is the complete exchange (n(n-1) messages).
func AllToAll(n int) MessageSet { return workload.AllToAll(n) }

// KLocal is k messages within ±radius of their source — the local traffic a
// fat-tree routes without touching the expensive upper channels.
func KLocal(n, k, radius int, seed int64) MessageSet { return workload.KLocal(n, k, radius, seed) }

// NearestNeighbor is the 1-D stencil exchange.
func NearestNeighbor(n int) MessageSet { return workload.NearestNeighbor(n) }

// HotSpot is k messages converging on processor 0.
func HotSpot(n, k int, seed int64) MessageSet { return workload.HotSpot(n, k, seed) }

// ExternalIO is `reads` input messages from the external world plus `writes`
// output messages to it, through the root interface.
func ExternalIO(n, reads, writes int, seed int64) MessageSet {
	return workload.ExternalIO(n, reads, writes, seed)
}

// FEMesh is a planar finite-element mesh whose relaxation steps generate the
// locality-rich traffic of the paper's introduction.
type FEMesh = workload.FEMesh

// NewGridMesh builds a rows×cols grid mesh with the row-major processor
// embedding.
func NewGridMesh(rows, cols int) *FEMesh { return workload.NewGridMesh(rows, cols) }

// NewGridMeshShuffled builds the same mesh with a random (locality-
// destroying) processor embedding.
func NewGridMeshShuffled(rows, cols int, seed int64) *FEMesh {
	return workload.NewGridMeshShuffled(rows, cols, seed)
}
