module fattree

go 1.22
