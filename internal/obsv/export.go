package obsv

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
)

// This file exports the event ring to the two interchange formats the
// tooling ecosystem reads: the Chrome trace_event JSON format (load the file
// in chrome://tracing or ui.perfetto.dev) and a JSONL stream (one event per
// line, for jq/scripts).
//
// Chrome trace mapping: the trace clock is synthetic — delivery cycle c
// occupies the microsecond interval [c·1000, (c+1)·1000) — so zooming shows
// cycles as fixed-width slices. Each cycle is a complete ("X") slice on the
// "delivery cycles" track; flight events are instants ("i") on one track per
// tree level (the level of the switch that handled the flight); and the
// per-cycle delivered/dropped counts are counter ("C") series, which the
// viewer renders as a load graph.

// cycleSpan is the synthetic trace-clock width of one delivery cycle in
// microseconds.
const cycleSpan = 1000

// chromeEvent is one trace_event record. Only the fields the viewer needs
// are emitted.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level trace_event JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// levelOf returns the tree level of heap node v (root = 0); injection and
// deferral events at leaves report the leaf level.
func levelOf(v int32) int {
	if v <= 0 {
		return 0
	}
	return bits.Len(uint(v)) - 1
}

// WriteChromeTrace exports the observer's buffered events as Chrome
// trace_event JSON. The counters need not be complete — the ring may have
// overwritten early events — but cycle slices are emitted only for cycles
// whose start event survives.
func (o *Observer) WriteChromeTrace(w io.Writer) error {
	if o.ring == nil {
		return fmt.Errorf("obsv: tracing is not enabled (call EnableTrace before the run)")
	}
	events := []chromeEvent{
		{Name: "process_name", Phase: "M", PID: 1,
			Args: map[string]any{"name": "fat-tree delivery engine"}},
		{Name: "thread_name", Phase: "M", PID: 1, TID: 0,
			Args: map[string]any{"name": "delivery cycles"}},
	}
	for level := 0; level <= o.levels; level++ {
		events = append(events, chromeEvent{
			Name: "thread_name", Phase: "M", PID: 1, TID: level + 1,
			Args: map[string]any{"name": fmt.Sprintf("level %d switches", level)},
		})
	}

	// Pending cycle slice state: trace_event "X" slices need start + dur, so
	// a cycle opens at its EvCycleStart and closes at EvCycleEnd.
	openCycle := int64(-1)
	var openOffered int32
	seq := int64(0) // event index within the current cycle
	lastCycle := int64(-1)
	o.Do(func(e Event) {
		if e.Cycle != lastCycle {
			lastCycle = e.Cycle
			seq = 0
		}
		base := e.Cycle * cycleSpan
		// Instants inside a cycle spread over its span in ring order.
		ts := base + seq%cycleSpan
		seq++
		switch e.Kind {
		case EvCycleStart:
			openCycle, openOffered = e.Cycle, e.Count
		case EvCycleEnd:
			start := e.Cycle
			offered := openOffered
			if openCycle != e.Cycle { // start was overwritten; reconstruct
				offered = -1
			}
			events = append(events, chromeEvent{
				Name: fmt.Sprintf("cycle %d", e.Cycle), Phase: "X",
				TS: start * cycleSpan, Dur: cycleSpan, PID: 1, TID: 0,
				Args: map[string]any{"offered": offered, "delivered": e.Count},
			})
			events = append(events, chromeEvent{
				Name: "delivered", Phase: "C", TS: start * cycleSpan, PID: 1,
				Args: map[string]any{"messages": e.Count},
			})
			openCycle = -1
		default:
			events = append(events, chromeEvent{
				Name: fmt.Sprintf("%s %d->%d", e.Kind, e.Src, e.Dst), Phase: "i",
				TS: ts, PID: 1, TID: levelOf(e.Node) + 1, Scope: "t",
				Args: map[string]any{
					"node": e.Node, "flight": e.Flight, "wire": e.Wire,
				},
			})
		}
	})
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// Do iterates the buffered events oldest-first; it is a no-op when tracing
// is disabled.
func (o *Observer) Do(fn func(Event)) {
	if o.ring != nil {
		o.ring.Do(fn)
	}
}

// jsonlEvent is the JSONL wire form of one event.
type jsonlEvent struct {
	Kind   string `json:"kind"`
	Cycle  int64  `json:"cycle"`
	Node   int32  `json:"node,omitempty"`
	Level  int    `json:"level"`
	Flight int32  `json:"flight"`
	Src    int32  `json:"src"`
	Dst    int32  `json:"dst"`
	Wire   int32  `json:"wire"`
	Count  int32  `json:"count,omitempty"`
}

// WriteJSONL exports the buffered events as one JSON object per line,
// oldest-first.
func (o *Observer) WriteJSONL(w io.Writer) error {
	if o.ring == nil {
		return fmt.Errorf("obsv: tracing is not enabled (call EnableTrace before the run)")
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	var err error
	o.ring.Do(func(e Event) {
		if err != nil {
			return
		}
		err = enc.Encode(jsonlEvent{
			Kind: e.Kind.String(), Cycle: e.Cycle, Node: e.Node,
			Level: levelOf(e.Node), Flight: e.Flight,
			Src: e.Src, Dst: e.Dst, Wire: e.Wire, Count: e.Count,
		})
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}
