package obsv

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestSpanRingOverwriteOldest(t *testing.T) {
	r := NewSpanRing(4)
	for i := 1; i <= 6; i++ {
		r.Push(Span{Trace: uint64(i), Kind: SpanEngine})
	}
	if r.Len() != 4 || r.Cap() != 4 {
		t.Fatalf("len=%d cap=%d, want 4/4", r.Len(), r.Cap())
	}
	if r.Overwritten() != 2 {
		t.Fatalf("overwritten=%d, want 2", r.Overwritten())
	}
	spans := r.Spans()
	for i, s := range spans {
		if want := uint64(i + 3); s.Trace != want {
			t.Fatalf("span %d has trace %d, want %d (oldest-first)", i, s.Trace, want)
		}
	}
	r.Reset()
	if r.Len() != 0 || r.Overwritten() != 0 {
		t.Fatalf("reset left len=%d overwritten=%d", r.Len(), r.Overwritten())
	}
}

func TestSpanRingConcurrentPush(t *testing.T) {
	r := NewSpanRing(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Push(Span{Trace: uint64(g*1000 + i), Kind: SpanQueue})
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 128 {
		t.Fatalf("len=%d, want full ring", r.Len())
	}
	if got := r.Overwritten(); got != 8*1000-128 {
		t.Fatalf("overwritten=%d, want %d", got, 8*1000-128)
	}
}

func TestSpanRingPushAllocs(t *testing.T) {
	r := NewSpanRing(64)
	s := Span{Trace: 42, Tenant: 1, Kind: SpanEngine, Dur: 100}
	allocs := testing.AllocsPerRun(100, func() { r.Push(s) })
	if allocs != 0 {
		t.Errorf("Push: %.1f allocs/op, want 0", allocs)
	}
}

func TestSpanExports(t *testing.T) {
	r := NewSpanRing(16)
	now := r.Now()
	r.Push(Span{Trace: 1, Tenant: 0, Kind: SpanHandler, Start: now, Dur: 1500})
	r.Push(Span{Trace: 1, Tenant: 0, Kind: SpanQueue, Start: now + 1500, Dur: 800})
	r.Push(Span{Trace: 1, Tenant: 0, Kind: SpanEngine, Start: now + 2300, Dur: 90000, Cycles: 7, Msgs: 64})
	r.Push(Span{Trace: 2, Tenant: 1, Kind: SpanEngine, Start: now + 100, Dur: 50, Err: true})

	var chrome bytes.Buffer
	if err := r.WriteChromeTrace(&chrome, []string{"alpha", "beta"}); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &trace); err != nil {
		t.Fatalf("chrome trace is not JSON: %v", err)
	}
	slices, threads := 0, 0
	for _, ev := range trace.TraceEvents {
		switch ev["ph"] {
		case "X":
			slices++
		case "M":
			threads++
		}
	}
	if slices != 4 {
		t.Fatalf("chrome trace has %d slices, want 4", slices)
	}
	if threads != 3 { // process_name + 2 tenant tracks
		t.Fatalf("chrome trace has %d metadata events, want 3", threads)
	}

	var jsonl bytes.Buffer
	if err := r.WriteJSONL(&jsonl); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	sc := bufio.NewScanner(&jsonl)
	lines := 0
	for sc.Scan() {
		lines++
		var s jsonlSpan
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("JSONL line %d invalid: %v", lines, err)
		}
		if len(s.Trace) != 16 {
			t.Fatalf("JSONL line %d trace_id %q is not 16 hex digits", lines, s.Trace)
		}
	}
	if lines != 4 {
		t.Fatalf("JSONL has %d lines, want 4", lines)
	}
}

func TestSpanKindStrings(t *testing.T) {
	for kind, want := range map[SpanKind]string{
		SpanHandler: "handler", SpanQueue: "queue",
		SpanEngine: "engine", SpanRespond: "respond", SpanKind(9): "span(9)",
	} {
		if got := kind.String(); got != want {
			t.Errorf("SpanKind(%d).String() = %q, want %q", kind, got, want)
		}
	}
	if got := TraceID(0x2a); got != "000000000000002a" {
		t.Errorf("TraceID(0x2a) = %q", got)
	}
}

func TestREDObserveAndExposition(t *testing.T) {
	red := NewRED()
	red.QueueEnter()
	red.QueueEnter()
	red.QueueExit(1500)
	red.ObserveRequest(3, 2500, 0xabc, false)
	red.ObserveRequest(12, 90, 0xdef, true)
	red.RejectRequest()

	snap := red.Snapshot()
	if snap.Requests != 3 || snap.Errors != 2 {
		t.Fatalf("requests=%d errors=%d, want 3/2", snap.Requests, snap.Errors)
	}
	if snap.QueueDepth != 1 || snap.QueuePeak != 2 {
		t.Fatalf("depth=%d peak=%d, want 1/2", snap.QueueDepth, snap.QueuePeak)
	}
	if snap.DurationCycles.Count != 2 || snap.DurationCycles.Sum != 15 {
		t.Fatalf("cycles hist count=%d sum=%d", snap.DurationCycles.Count, snap.DurationCycles.Sum)
	}

	var buf bytes.Buffer
	err := WriteREDPrometheus(&buf,
		LabeledRED{Labels: []PromLabel{{"tenant", "alpha"}}, Snap: snap},
		LabeledRED{Labels: []PromLabel{{"tenant", "beta"}}, Snap: NewRED().Snapshot()},
	)
	if err != nil {
		t.Fatalf("WriteREDPrometheus: %v", err)
	}
	text := buf.String()
	samples, err := ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("exposition rejected by own parser: %v\n%s", err, text)
	}
	if !strings.Contains(text, `# {trace_id="0000000000000abc"} 3`) {
		t.Fatalf("missing cycles exemplar:\n%s", text)
	}
	gotExemplars := 0
	for _, s := range samples {
		if s.ExemplarTrace != "" {
			gotExemplars++
			if s.Label("tenant") != "alpha" {
				t.Fatalf("exemplar on unexpected series %s{tenant=%q}", s.Name, s.Label("tenant"))
			}
		}
	}
	if gotExemplars != 4 { // 2 observations × 2 duration histograms
		t.Fatalf("parsed %d exemplar-carrying samples, want 4", gotExemplars)
	}
}

func TestREDEqualAndAllocs(t *testing.T) {
	a, b := NewRED(), NewRED()
	for _, r := range []*RED{a, b} {
		r.ObserveRequest(5, 100, 1, false)
		r.ObserveRequest(9, 999, 2, true)
	}
	if !REDEqual(a, b) {
		t.Fatal("identical sequences not REDEqual")
	}
	b.ObserveRequest(5, 1, 3, false)
	if REDEqual(a, b) {
		t.Fatal("diverged sequences still REDEqual")
	}

	allocs := testing.AllocsPerRun(100, func() {
		a.QueueEnter()
		a.QueueExit(10)
		a.ObserveRequest(4, 250, 7, false)
	})
	if allocs != 0 {
		t.Errorf("RED hot methods: %.1f allocs/op, want 0", allocs)
	}
}
