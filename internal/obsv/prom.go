package obsv

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file renders snapshots in the Prometheus text exposition format
// (version 0.0.4), hand-rolled on the stdlib — the repo takes no external
// dependencies. The writer groups samples by metric family (one HELP/TYPE
// header per family even when several labeled snapshots are exposed) and
// emits histogram buckets cumulatively with inclusive `le` bounds, exactly
// the convention obsv.Hist already uses internally. ValidateExposition is
// the matching strict parser used by the ftserve tests and the CI smoke job
// to prove the output is well-formed without importing a Prometheus client.

// PromLabel is one label pair attached to every sample of a snapshot.
type PromLabel struct {
	Name  string
	Value string
}

// LabeledSnapshot pairs a snapshot with the label set identifying its source
// (for example tree="256", workload="perm") in the exposition.
type LabeledSnapshot struct {
	Labels []PromLabel
	Snap   Snapshot
}

// promFamily describes one metric family of the exposition.
type promFamily struct {
	name string
	typ  string // "counter", "gauge", or "histogram"
	help string
}

// The fattree_* metric families, in exposition order. Counter families use
// the _total suffix; histogram families carry their unit in the name.
var promFamilies = []promFamily{
	{"fattree_cycles_total", "counter", "Delivery cycles simulated."},
	{"fattree_messages_offered_total", "counter", "Flight offers (retries counted once per offer)."},
	{"fattree_messages_delivered_total", "counter", "Flights that reached their destination channel."},
	{"fattree_messages_dropped_total", "counter", "Flights lost at a concentrator (congestion or injected fault)."},
	{"fattree_messages_deferred_total", "counter", "Flights unable to inject at the source leaf."},
	{"fattree_messages_retried_total", "counter", "Flights re-offered after a failed cycle."},
	{"fattree_buffered_stalls_total", "counter", "Buffered-model head-of-line stalls."},
	{"fattree_buffered_queue_peak_messages", "gauge", "Peak buffered-channel queue occupancy."},
	{"fattree_level_wire_use_total", "counter", "Wire-cycles carrying a message, by tree level."},
	{"fattree_level_requests_total", "counter", "Concentrator requests, by tree level."},
	{"fattree_level_grants_total", "counter", "Concentrator grants, by tree level."},
	{"fattree_level_drops_total", "counter", "Concentrator drops, by tree level."},
	{"fattree_level_match_rounds_total", "counter", "Hopcroft-Karp BFS phases, by tree level."},
	{"fattree_level_utilization_ratio", "gauge", "Mean wire utilization against capacity, by tree level."},
	{"fattree_sched_level_cycles_total", "counter", "Scheduler delivery cycles attributed to each LCA level."},
	{"fattree_sched_level_messages_total", "counter", "Scheduler messages attributed to each LCA level."},
	{"fattree_delivery_latency_cycles", "histogram", "Delivery latency in cycles from first offer to delivery."},
	{"fattree_match_rounds_per_matching", "histogram", "Hopcroft-Karp BFS phases per switch contest."},
	{"fattree_buffered_queue_depth_messages", "histogram", "Buffered-channel queue occupancy per hop."},
	{"fattree_level_utilization_permille", "histogram", "Per-cycle wire utilization in permille of capacity, by tree level."},
}

// WritePrometheus writes the snapshots as Prometheus text exposition. Each
// family's HELP/TYPE header appears once, followed by that family's samples
// from every snapshot in order, distinguished by the snapshots' label sets
// (which must therefore differ when more than one snapshot is passed).
func WritePrometheus(w io.Writer, snaps ...LabeledSnapshot) error {
	for _, fam := range promFamilies {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			fam.name, fam.help, fam.name, fam.typ); err != nil {
			return err
		}
		for _, ls := range snaps {
			if err := writeFamily(w, fam.name, ls); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeFamily writes one snapshot's samples for one family.
func writeFamily(w io.Writer, name string, ls LabeledSnapshot) error {
	c := &ls.Snap.Counters
	scalar := func(v int64) error { return writeSample(w, name, ls.Labels, nil, float64(v)) }
	switch name {
	case "fattree_cycles_total":
		return scalar(c.Cycles)
	case "fattree_messages_offered_total":
		return scalar(c.Offered)
	case "fattree_messages_delivered_total":
		return scalar(c.Delivered)
	case "fattree_messages_dropped_total":
		return scalar(c.Dropped)
	case "fattree_messages_deferred_total":
		return scalar(c.Deferred)
	case "fattree_messages_retried_total":
		return scalar(c.Retried)
	case "fattree_buffered_stalls_total":
		return scalar(sumInt64(c.Stalls))
	case "fattree_buffered_queue_peak_messages":
		return scalar(maxInt64(c.QueuePeak))
	case "fattree_level_wire_use_total":
		return writePerLevel(w, name, ls, func(s LevelSummary) float64 { return float64(s.WireUse) })
	case "fattree_level_requests_total":
		return writePerLevel(w, name, ls, func(s LevelSummary) float64 { return float64(s.Requests) })
	case "fattree_level_grants_total":
		return writePerLevel(w, name, ls, func(s LevelSummary) float64 { return float64(s.Grants) })
	case "fattree_level_drops_total":
		return writePerLevel(w, name, ls, func(s LevelSummary) float64 { return float64(s.Drops) })
	case "fattree_level_match_rounds_total":
		return writePerLevel(w, name, ls, func(s LevelSummary) float64 { return float64(s.MatchRounds) })
	case "fattree_level_utilization_ratio":
		return writePerLevel(w, name, ls, func(s LevelSummary) float64 { return s.Utilization })
	case "fattree_sched_level_cycles_total":
		return writeSchedLevels(w, name, ls, c.LevelCycles)
	case "fattree_sched_level_messages_total":
		return writeSchedLevels(w, name, ls, c.LevelMessages)
	case "fattree_delivery_latency_cycles":
		return writeHistogram(w, name, ls.Labels, ls.Snap.Latency)
	case "fattree_match_rounds_per_matching":
		return writeHistogram(w, name, ls.Labels, ls.Snap.MatchRounds)
	case "fattree_buffered_queue_depth_messages":
		return writeHistogram(w, name, ls.Labels, ls.Snap.QueueDepth)
	case "fattree_level_utilization_permille":
		for level, h := range ls.Snap.LevelUtil {
			labels := append(append([]PromLabel(nil), ls.Labels...),
				PromLabel{"level", strconv.Itoa(level)})
			if err := writeHistogram(w, name, labels, h); err != nil {
				return err
			}
		}
		return nil
	}
	panic("obsv: unknown metric family " + name)
}

// writePerLevel writes one sample per tree level with a `level` label.
func writePerLevel(w io.Writer, name string, ls LabeledSnapshot, get func(LevelSummary) float64) error {
	for _, s := range ls.Snap.PerLevel {
		labels := append(append([]PromLabel(nil), ls.Labels...),
			PromLabel{"level", strconv.Itoa(s.Level)})
		if err := writeSample(w, name, labels, nil, get(s)); err != nil {
			return err
		}
	}
	return nil
}

// writeSchedLevels writes the scheduler per-level block; the final slot (lg n
// + 1) is the external-traffic block, labeled level="external".
func writeSchedLevels(w io.Writer, name string, ls LabeledSnapshot, vals []int64) error {
	for level, v := range vals {
		lv := strconv.Itoa(level)
		if level == len(vals)-1 {
			lv = "external"
		}
		labels := append(append([]PromLabel(nil), ls.Labels...), PromLabel{"level", lv})
		if err := writeSample(w, name, labels, nil, float64(v)); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram writes one histogram's cumulative buckets, sum, and count.
func writeHistogram(w io.Writer, name string, labels []PromLabel, h HistSnap) error {
	cum := int64(0)
	for i, b := range h.Bounds {
		cum += h.Counts[i]
		le := PromLabel{"le", strconv.FormatInt(b, 10)}
		if err := writeSample(w, name+"_bucket", labels, &le, float64(cum)); err != nil {
			return err
		}
	}
	inf := PromLabel{"le", "+Inf"}
	if err := writeSample(w, name+"_bucket", labels, &inf, float64(h.Count)); err != nil {
		return err
	}
	if err := writeSample(w, name+"_sum", labels, nil, float64(h.Sum)); err != nil {
		return err
	}
	return writeSample(w, name+"_count", labels, nil, float64(h.Count))
}

// writeSample writes one `name{labels} value` line; extra, when non-nil, is
// appended after the shared labels (the histogram `le` slot).
func writeSample(w io.Writer, name string, labels []PromLabel, extra *PromLabel, v float64) error {
	var sb strings.Builder
	sb.WriteString(name)
	n := len(labels)
	if extra != nil {
		n++
	}
	if n > 0 {
		sb.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				sb.WriteByte(',')
			}
			writeLabel(&sb, l)
		}
		if extra != nil {
			if len(labels) > 0 {
				sb.WriteByte(',')
			}
			writeLabel(&sb, *extra)
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	sb.WriteByte('\n')
	_, err := io.WriteString(w, sb.String())
	return err
}

// writeExemplarSample writes one sample line carrying an OpenMetrics
// exemplar: `name{labels} value # {trace_id="..."} exemplarValue`. The
// exemplar value is the raw observation scaled like the bucket bounds.
func writeExemplarSample(w io.Writer, name string, labels []PromLabel, extra *PromLabel, v float64, ex Exemplar, scale float64) error {
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		writeLabel(&sb, l)
	}
	if extra != nil {
		if len(labels) > 0 {
			sb.WriteByte(',')
		}
		writeLabel(&sb, *extra)
	}
	sb.WriteByte('}')
	sb.WriteByte(' ')
	sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	sb.WriteString(` # {trace_id="`)
	sb.WriteString(TraceID(ex.Trace))
	sb.WriteString(`"} `)
	sb.WriteString(strconv.FormatFloat(float64(ex.Value)*scale, 'g', -1, 64))
	sb.WriteByte('\n')
	_, err := io.WriteString(w, sb.String())
	return err
}

// writeLabel writes name="value" with the exposition's escaping rules.
func writeLabel(sb *strings.Builder, l PromLabel) {
	sb.WriteString(l.Name)
	sb.WriteString(`="`)
	for _, r := range l.Value {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	sb.WriteByte('"')
}

func sumInt64(s []int64) int64 {
	var t int64
	for _, v := range s {
		t += v
	}
	return t
}

func maxInt64(s []int64) int64 {
	var m int64
	for _, v := range s {
		if v > m {
			m = v
		}
	}
	return m
}

// ValidateExposition parses text as Prometheus text exposition (format
// 0.0.4, plus OpenMetrics exemplars on bucket lines) and returns the first
// violation found: malformed metric or label syntax, an unparsable value, a
// sample whose family has no preceding TYPE declaration, a duplicate
// HELP/TYPE header, a malformed or misplaced exemplar, or a histogram whose
// buckets are non-cumulative, missing le="+Inf", or inconsistent with
// _count. It is deliberately stricter than a Prometheus scraper — every byte
// the repo's own writer emits must pass, so the tests can assert exposition
// validity without a client library.
func ValidateExposition(text []byte) error {
	_, err := ParseExposition(text)
	return err
}

// Sample is one parsed sample line of an exposition, as returned by
// ParseExposition. ExemplarTrace is the trace_id label of the sample's
// OpenMetrics exemplar, "" when none was attached.
type Sample struct {
	Name          string
	Labels        []PromLabel
	Value         float64
	ExemplarTrace string
}

// Label returns the value of the named label, or "" when absent.
func (s Sample) Label(name string) string {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// ParseExposition parses and validates text with exactly ValidateExposition's
// strictness and returns every sample line in order — the scrape-consuming
// half of the telemetry loop (cmd/ftload reads conservation counters out of
// a live /metrics scrape with it).
func ParseExposition(text []byte) ([]Sample, error) {
	types := map[string]string{}
	helped := map[string]bool{}
	samples := map[string][]promSample{} // family -> samples, histograms only
	counts := map[string]float64{}       // _count series by family+labels
	sawSample := map[string]bool{}
	var out []Sample
	for lineNo, line := range strings.Split(string(text), "\n") {
		ln := lineNo + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseHeader(line, ln, types, helped, sawSample); err != nil {
				return nil, err
			}
			continue
		}
		s, err := parseSample(line, ln)
		if err != nil {
			return nil, err
		}
		fam := familyOf(s.name, types)
		if _, ok := types[fam]; !ok {
			return nil, fmt.Errorf("line %d: sample %q has no preceding # TYPE", ln, s.name)
		}
		if s.exemplarTrace != "" && !strings.HasSuffix(s.name, "_bucket") && !strings.HasSuffix(s.name, "_total") {
			return nil, fmt.Errorf("line %d: exemplar on %q (only _bucket and _total series may carry one)", ln, s.name)
		}
		sawSample[fam] = true
		if types[fam] == "histogram" {
			switch {
			case s.name == fam+"_bucket":
				samples[fam] = append(samples[fam], s)
			case s.name == fam+"_count":
				counts[fam+"|"+s.labelKey("")] = s.value
			}
		}
		out = append(out, Sample{Name: s.name, Labels: s.labels, Value: s.value, ExemplarTrace: s.exemplarTrace})
	}
	if err := validateHistograms(types, samples, counts); err != nil {
		return nil, err
	}
	return out, nil
}

// promSample is one parsed sample line.
type promSample struct {
	name          string
	labels        []PromLabel
	value         float64
	line          int
	exemplarTrace string
}

// labelKey canonicalizes the label set (minus `drop`) for grouping.
func (s promSample) labelKey(drop string) string {
	kept := make([]string, 0, len(s.labels))
	for _, l := range s.labels {
		if l.Name != drop {
			kept = append(kept, l.Name+"="+l.Value)
		}
	}
	sort.Strings(kept)
	return strings.Join(kept, ",")
}

// le returns the sample's le label, or "" if absent.
func (s promSample) le() string {
	for _, l := range s.labels {
		if l.Name == "le" {
			return l.Value
		}
	}
	return ""
}

// parseHeader validates a # HELP / # TYPE comment line (other comments pass).
func parseHeader(line string, ln int, types map[string]string, helped, sawSample map[string]bool) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return nil // free-form comment
	}
	if len(fields) < 3 || !validMetricName(fields[2]) {
		return fmt.Errorf("line %d: malformed %s comment", ln, fields[1])
	}
	name := fields[2]
	if fields[1] == "HELP" {
		if helped[name] {
			return fmt.Errorf("line %d: duplicate HELP for %s", ln, name)
		}
		helped[name] = true
		return nil
	}
	if len(fields) < 4 {
		return fmt.Errorf("line %d: TYPE %s missing a type", ln, name)
	}
	switch fields[3] {
	case "counter", "gauge", "histogram", "summary", "untyped":
	default:
		return fmt.Errorf("line %d: TYPE %s has invalid type %q", ln, name, fields[3])
	}
	if _, dup := types[name]; dup {
		return fmt.Errorf("line %d: duplicate TYPE for %s", ln, name)
	}
	if sawSample[name] {
		return fmt.Errorf("line %d: TYPE for %s after its samples", ln, name)
	}
	types[name] = fields[3]
	return nil
}

// parseSample parses one `name{labels} value [timestamp]` line.
func parseSample(line string, ln int) (promSample, error) {
	s := promSample{line: ln}
	rest := line
	i := 0
	for i < len(rest) && rest[i] != '{' && rest[i] != ' ' {
		i++
	}
	s.name = rest[:i]
	if !validMetricName(s.name) {
		return s, fmt.Errorf("line %d: invalid metric name %q", ln, s.name)
	}
	rest = rest[i:]
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("line %d: unterminated label set", ln)
		}
		var err error
		if s.labels, err = parseLabels(rest[1:end], ln); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimLeft(rest, " ")
	// An OpenMetrics exemplar rides after the value (and optional
	// timestamp): ` # {labels} value`. Split it off before field parsing.
	exemplar := ""
	if idx := strings.Index(rest, " # "); idx >= 0 {
		exemplar = rest[idx+3:]
		rest = rest[:idx]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("line %d: expected value [timestamp], got %q", ln, rest)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("line %d: invalid sample value %q", ln, fields[0])
	}
	s.value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("line %d: invalid timestamp %q", ln, fields[1])
		}
	}
	if exemplar != "" {
		if s.exemplarTrace, err = parseExemplar(exemplar, ln); err != nil {
			return s, err
		}
	}
	return s, nil
}

// parseExemplar validates the `{labels} value [timestamp]` tail of an
// OpenMetrics exemplar and returns its trace_id label (which the repo's own
// writer always emits; an exemplar without one is rejected).
func parseExemplar(body string, ln int) (string, error) {
	if !strings.HasPrefix(body, "{") {
		return "", fmt.Errorf("line %d: exemplar must start with a label set, got %q", ln, body)
	}
	end := strings.Index(body, "}")
	if end < 0 {
		return "", fmt.Errorf("line %d: unterminated exemplar label set", ln)
	}
	labels, err := parseLabels(body[1:end], ln)
	if err != nil {
		return "", err
	}
	trace := ""
	for _, l := range labels {
		if l.Name == "trace_id" {
			trace = l.Value
		}
	}
	if trace == "" {
		return "", fmt.Errorf("line %d: exemplar without a trace_id label", ln)
	}
	fields := strings.Fields(body[end+1:])
	if len(fields) < 1 || len(fields) > 2 {
		return "", fmt.Errorf("line %d: exemplar needs a value [timestamp], got %q", ln, body[end+1:])
	}
	if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
		return "", fmt.Errorf("line %d: invalid exemplar value %q", ln, fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			return "", fmt.Errorf("line %d: invalid exemplar timestamp %q", ln, fields[1])
		}
	}
	return trace, nil
}

// parseLabels parses the inside of a {...} label set.
func parseLabels(body string, ln int) ([]PromLabel, error) {
	var out []PromLabel
	for body != "" {
		eq := strings.Index(body, "=")
		if eq < 0 {
			return nil, fmt.Errorf("line %d: label without '='", ln)
		}
		name := body[:eq]
		if !validLabelName(name) {
			return nil, fmt.Errorf("line %d: invalid label name %q", ln, name)
		}
		body = body[eq+1:]
		if !strings.HasPrefix(body, `"`) {
			return nil, fmt.Errorf("line %d: label %s value not quoted", ln, name)
		}
		body = body[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(body); i++ {
			c := body[i]
			if c == '\\' {
				if i+1 >= len(body) {
					return nil, fmt.Errorf("line %d: dangling escape in label %s", ln, name)
				}
				i++
				switch body[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("line %d: bad escape \\%c in label %s", ln, body[i], name)
				}
				continue
			}
			if c == '"' {
				body = body[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("line %d: unterminated label value for %s", ln, name)
		}
		out = append(out, PromLabel{name, val.String()})
		body = strings.TrimPrefix(body, ",")
	}
	return out, nil
}

// familyOf strips the histogram sample suffixes when the base name is a
// declared histogram family.
func familyOf(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return name
}

// validateHistograms checks every histogram series for cumulative buckets,
// a +Inf bucket, and bucket/count agreement.
func validateHistograms(types map[string]string, samples map[string][]promSample, counts map[string]float64) error {
	for fam, typ := range types {
		if typ != "histogram" {
			continue
		}
		bySeries := map[string][]promSample{}
		for _, s := range samples[fam] {
			k := s.labelKey("le")
			bySeries[k] = append(bySeries[k], s)
		}
		for key, buckets := range bySeries {
			prevLe, prevCum := -1.0, -1.0
			sawInf := false
			var infVal float64
			for _, b := range buckets {
				leStr := b.le()
				if leStr == "" {
					return fmt.Errorf("line %d: %s_bucket without le label", b.line, fam)
				}
				le := 0.0
				if leStr == "+Inf" {
					sawInf, infVal = true, b.value
					le = prevLe + 1 // any finite le must have come first
				} else {
					v, err := strconv.ParseFloat(leStr, 64)
					if err != nil {
						return fmt.Errorf("line %d: %s_bucket has invalid le %q", b.line, fam, leStr)
					}
					if sawInf {
						return fmt.Errorf("line %d: %s_bucket after le=\"+Inf\"", b.line, fam)
					}
					le = v
				}
				if le <= prevLe && prevCum >= 0 {
					return fmt.Errorf("line %d: %s buckets not in increasing le order", b.line, fam)
				}
				if b.value < prevCum {
					return fmt.Errorf("line %d: %s buckets not cumulative", b.line, fam)
				}
				prevLe, prevCum = le, b.value
			}
			if !sawInf {
				return fmt.Errorf("%s{%s}: missing le=\"+Inf\" bucket", fam, key)
			}
			count, ok := counts[fam+"|"+key]
			if !ok {
				return fmt.Errorf("%s{%s}: missing _count series", fam, key)
			}
			if infVal != count {
				return fmt.Errorf("%s{%s}: le=\"+Inf\" bucket %v != _count %v", fam, key, infVal, count)
			}
		}
	}
	return nil
}

// validMetricName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool { return validName(s, true) }

// validLabelName reports whether s matches [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(s string) bool { return validName(s, false) }

func validName(s string, allowColon bool) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(allowColon && r == ':') || (i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}
