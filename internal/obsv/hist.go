package obsv

// This file implements the fixed-size bucketed histograms of the live
// telemetry layer. The paper's quantitative claims are distributional —
// Theorems 5–7 bound per-channel load against capacity, and delivery time is
// a per-message quantity — so totals alone (obsv.Counters) cannot show a
// tail. A Hist captures the distribution with the same cost discipline as
// the counters: the bucket array is preallocated at construction, Observe is
// a bounded linear scan over at most a few dozen int64 bounds, and nothing
// ever allocates after New. Bounds are integers because every observed
// quantity is one — cycles, Hopcroft–Karp rounds, queue occupancies, and
// utilization scaled to per-mille — which keeps bucketing exact and
// bit-identical across worker counts (no float rounding to disagree about).

// Hist is a fixed-size histogram over int64 observations. Bucket i counts
// observations v with v <= Bound(i) (and > Bound(i-1)); one extra overflow
// bucket counts observations above the last bound (the Prometheus "+Inf"
// bucket). The zero Hist is unusable; construct with NewHist or NewLog2Hist.
//
// A Hist is not synchronized; the owning Observer serializes access.
type Hist struct {
	bounds []int64 // strictly increasing inclusive upper bounds
	counts []int64 // len(bounds)+1; last entry is the overflow bucket
	total  int64
	sum    int64
}

// NewHist returns a histogram with the given strictly increasing inclusive
// upper bounds (plus the implicit overflow bucket). The bounds slice is
// copied. It panics if bounds is empty or not strictly increasing.
func NewHist(bounds []int64) Hist {
	if len(bounds) == 0 {
		panic("obsv: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obsv: histogram bounds must be strictly increasing")
		}
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return Hist{bounds: b, counts: make([]int64, len(b)+1)}
}

// NewLog2Hist returns a histogram with power-of-two bounds 1, 2, 4, ...,
// 2^maxExp — the log-bucketed shape used for latency, matching-round, and
// queue-depth distributions, whose interesting structure is multiplicative.
func NewLog2Hist(maxExp int) Hist {
	if maxExp < 0 {
		panic("obsv: NewLog2Hist needs maxExp >= 0")
	}
	bounds := make([]int64, maxExp+1)
	for i := range bounds {
		bounds[i] = 1 << uint(i)
	}
	return NewHist(bounds)
}

// Observe records one observation. Boundary values land in the bucket whose
// bound they equal (bounds are inclusive, the Prometheus "le" convention).
func (h *Hist) Observe(v int64) { h.ObserveIdx(v) }

// ObserveIdx records one observation and returns the index of the bucket it
// landed in (NumBuckets()-1 for the overflow bucket) — the hook the RED
// instruments use to pin an exemplar trace ID to the bucket.
//
//ftlint:hotpath
func (h *Hist) ObserveIdx(v int64) int {
	h.total++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return i
		}
	}
	h.counts[len(h.bounds)]++
	return len(h.bounds)
}

// Count returns the number of observations recorded.
func (h *Hist) Count() int64 { return h.total }

// Sum returns the sum of all observed values.
func (h *Hist) Sum() int64 { return h.sum }

// NumBuckets returns the number of buckets including the overflow bucket.
func (h *Hist) NumBuckets() int { return len(h.counts) }

// Bound returns the inclusive upper bound of bucket i; i must be less than
// NumBuckets()-1 (the overflow bucket has no finite bound).
func (h *Hist) Bound(i int) int64 { return h.bounds[i] }

// BucketCount returns the (non-cumulative) count of bucket i; index
// NumBuckets()-1 is the overflow bucket.
func (h *Hist) BucketCount(i int) int64 { return h.counts[i] }

// Reset zeroes every bucket; the bounds are kept.
func (h *Hist) Reset() {
	h.total, h.sum = 0, 0
	for i := range h.counts {
		h.counts[i] = 0
	}
}

// Quantile returns the smallest bucket upper bound b such that at least
// q·Count() observations are <= b — the histogram's resolution-limited
// q-quantile. It returns (0, false) on an empty histogram and (0, false)
// when the quantile falls in the overflow bucket (the value is unbounded at
// this resolution).
func (h *Hist) Quantile(q float64) (int64, bool) {
	return quantile(h.bounds, h.counts, h.total, q)
}

// quantile is the shared bounds/counts walk used by Hist and HistSnap.
func quantile(bounds, counts []int64, total int64, q float64) (int64, bool) {
	if total == 0 {
		return 0, false
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	cum := int64(0)
	for i, b := range bounds {
		cum += counts[i]
		if cum >= rank {
			return b, true
		}
	}
	return 0, false
}

// histEqual reports whether two histograms hold identical bounds and counts
// — the bit-equality the cross-worker-count determinism tests assert.
func histEqual(a, b *Hist) bool {
	if a.total != b.total || a.sum != b.sum ||
		len(a.bounds) != len(b.bounds) {
		return false
	}
	for i := range a.bounds {
		if a.bounds[i] != b.bounds[i] {
			return false
		}
	}
	for i := range a.counts {
		if a.counts[i] != b.counts[i] {
			return false
		}
	}
	return true
}

// Default bucket shapes. Latency is open-ended (a livelocked retry loop can
// take thousands of cycles), matching rounds include an explicit 0 bucket
// (ideal concentrators run no Hopcroft–Karp phases), and per-level
// utilization is bounded by construction, so its bounds are per-mille of
// the Theorem 5 channel capacity with a top bucket at exactly 1000.
var (
	latencyBounds     = log2Bounds(16)                                        // 1 .. 65536 cycles
	matchRoundsBounds = append([]int64{0}, log2Bounds(9)...)                  // 0, 1 .. 512 rounds
	queueDepthBounds  = log2Bounds(12)                                        // 1 .. 4096 messages
	utilBounds        = []int64{0, 10, 25, 50, 100, 250, 500, 750, 900, 1000} // per-mille
)

// log2Bounds returns 1, 2, 4, ..., 2^maxExp.
func log2Bounds(maxExp int) []int64 {
	bounds := make([]int64, maxExp+1)
	for i := range bounds {
		bounds[i] = 1 << uint(i)
	}
	return bounds
}

// hists groups an observer's histograms; see New for the binding rules.
type hists struct {
	// latency is the per-message delivery latency in delivery cycles from
	// first offer to delivery (1 = delivered in the cycle it was first
	// offered), recorded by the engine's retry loops for every delivered
	// message. Messages abandoned by a stalled run are not recorded.
	latency Hist
	// matchRounds is the Hopcroft–Karp BFS phases per switch contest,
	// recorded at every Switch hook (ideal concentrators contribute 0).
	matchRounds Hist
	// queueDepth is the buffered model's per-channel queue occupancy,
	// recorded per hop for every non-empty queue.
	queueDepth Hist
	// levelUtil[level] is the per-cycle wire utilization of the level's
	// channels in per-mille of capacity (both directions), recorded at every
	// CycleEnd.
	levelUtil []Hist
}

func newHists(levels int) hists {
	h := hists{
		latency:     NewHist(latencyBounds),
		matchRounds: NewHist(matchRoundsBounds),
		queueDepth:  NewHist(queueDepthBounds),
		levelUtil:   make([]Hist, levels+1),
	}
	for i := range h.levelUtil {
		h.levelUtil[i] = NewHist(utilBounds)
	}
	return h
}

func (h *hists) reset() {
	h.latency.Reset()
	h.matchRounds.Reset()
	h.queueDepth.Reset()
	for i := range h.levelUtil {
		h.levelUtil[i].Reset()
	}
}

func (h *hists) equal(o *hists) bool {
	if !histEqual(&h.latency, &o.latency) ||
		!histEqual(&h.matchRounds, &o.matchRounds) ||
		!histEqual(&h.queueDepth, &o.queueDepth) ||
		len(h.levelUtil) != len(o.levelUtil) {
		return false
	}
	for i := range h.levelUtil {
		if !histEqual(&h.levelUtil[i], &o.levelUtil[i]) {
			return false
		}
	}
	return true
}
