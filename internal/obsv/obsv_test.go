package obsv

import (
	"strings"
	"testing"

	"fattree/internal/core"
)

func TestRingOverwrite(t *testing.T) {
	r := NewRing(3)
	if r.Cap() != 3 || r.Len() != 0 {
		t.Fatalf("fresh ring: cap=%d len=%d", r.Cap(), r.Len())
	}
	for i := 0; i < 5; i++ {
		r.push(Event{Kind: EvInject, Flight: int32(i)})
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
	if r.Overwritten() != 2 {
		t.Fatalf("overwritten = %d, want 2", r.Overwritten())
	}
	got := r.Events()
	for i, e := range got {
		if want := int32(i + 2); e.Flight != want {
			t.Fatalf("event %d flight = %d, want %d (oldest-first)", i, e.Flight, want)
		}
	}
	// Do must visit the same sequence without copying.
	var seen []int32
	r.Do(func(e Event) { seen = append(seen, e.Flight) })
	if len(seen) != 3 || seen[0] != 2 || seen[2] != 4 {
		t.Fatalf("Do order = %v", seen)
	}
	r.Reset()
	if r.Len() != 0 || r.Overwritten() != 0 || r.Cap() != 3 {
		t.Fatalf("reset ring: len=%d over=%d cap=%d", r.Len(), r.Overwritten(), r.Cap())
	}
}

func TestNewRingPanicsOnZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRing(0) did not panic")
		}
	}()
	NewRing(0)
}

func TestObserverCountersAndConservation(t *testing.T) {
	tr := core.NewUniversal(8, 4)
	o := New(tr)
	o.EnableTrace(64)

	m := core.Message{Src: 0, Dst: 5}
	o.CycleStart(3)
	o.Inject(0, m, tr.Leaf(0), 0)
	o.Inject(1, core.Message{Src: 1, Dst: 2}, tr.Leaf(1), 0)
	o.Defer(2, core.Message{Src: 2, Dst: 3}, tr.Leaf(2))
	o.Switch(2, 2, 1, 5, 1)
	o.Advance(0, m, 2, 2, int(core.Up), 1)
	o.Block(1, core.Message{Src: 1, Dst: 2}, 2)
	o.Deliver(0, m, 2)
	o.CycleEnd(1, 1, 1)
	o.Retries(1)

	c := &o.C
	if c.Cycles != 1 {
		t.Fatalf("cycles = %d", c.Cycles)
	}
	if c.Offered != c.Delivered+c.Dropped+c.Deferred {
		t.Fatalf("conservation broken: offered %d != %d+%d+%d",
			c.Offered, c.Delivered, c.Dropped, c.Deferred)
	}
	if c.Retried != 1 {
		t.Fatalf("retried = %d", c.Retried)
	}
	if got := c.WireUse[2*tr.Leaf(0)+int(core.Up)]; got != 1 {
		t.Fatalf("leaf 0 up wire-use = %d", got)
	}
	if got := c.WireUse[2*2+int(core.Up)]; got != 1 {
		t.Fatalf("node 2 up wire-use = %d", got)
	}
	if c.Requests[2] != 2 || c.Grants[2] != 1 || c.Drops[2] != 1 {
		t.Fatalf("switch 2 contention = req %d grant %d drop %d",
			c.Requests[2], c.Grants[2], c.Drops[2])
	}
	// Cumulative hardware counters become deltas.
	if c.MatchRounds[2] != 5 || c.Faults[2] != 1 {
		t.Fatalf("rounds=%d faults=%d", c.MatchRounds[2], c.Faults[2])
	}
	o.Switch(2, 1, 0, 7, 1)
	if c.MatchRounds[2] != 7 || c.Faults[2] != 1 {
		t.Fatalf("after second sweep rounds=%d faults=%d", c.MatchRounds[2], c.Faults[2])
	}
	// cycle-start, 2 injects, defer, advance, block, deliver, cycle-end.
	if o.Trace().Len() != 8 {
		t.Fatalf("traced events = %d, want 8", o.Trace().Len())
	}
}

func TestExternalInjectUsesRootDownChannel(t *testing.T) {
	tr := core.NewUniversal(8, 4)
	o := New(tr)
	o.Inject(0, core.Message{Src: core.External, Dst: 3}, 1, 0)
	if got := o.C.WireUse[2*1+int(core.Down)]; got != 1 {
		t.Fatalf("root down wire-use = %d, want 1", got)
	}
	if got := o.C.WireUse[2*1+int(core.Up)]; got != 0 {
		t.Fatalf("root up wire-use = %d, want 0", got)
	}
}

func TestPrimeSwitchBaseline(t *testing.T) {
	tr := core.NewUniversal(4, 2)
	o := New(tr)
	o.PrimeSwitch(1, 100, 10)
	o.Switch(1, 1, 0, 103, 12)
	if o.C.MatchRounds[1] != 3 || o.C.Faults[1] != 2 {
		t.Fatalf("primed deltas: rounds=%d faults=%d", o.C.MatchRounds[1], o.C.Faults[1])
	}
}

func TestCountersEqualAndReset(t *testing.T) {
	tr := core.NewUniversal(8, 4)
	a, b := New(tr), New(tr)
	if !CountersEqual(a, b) {
		t.Fatal("fresh observers differ")
	}
	a.CycleStart(2)
	a.Inject(0, core.Message{Src: 0, Dst: 1}, tr.Leaf(0), 0)
	a.CycleEnd(1, 1, 0)
	if CountersEqual(a, b) {
		t.Fatal("recorded observer equals fresh observer")
	}
	a.Reset()
	if !CountersEqual(a, b) {
		t.Fatal("reset observer still differs from fresh observer")
	}
}

func TestPerLevelAndReport(t *testing.T) {
	tr := core.NewUniversal(8, 4)
	o := New(tr)
	o.CycleStart(1)
	o.Inject(0, core.Message{Src: 0, Dst: 7}, tr.Leaf(0), 0)
	o.Switch(1, 1, 0, 2, 0)
	o.Advance(0, core.Message{Src: 0, Dst: 7}, 1, 1, int(core.Up), 0)
	o.CycleEnd(1, 0, 0)

	rows := o.PerLevel()
	if len(rows) != tr.Levels()+1 {
		t.Fatalf("rows = %d, want %d", len(rows), tr.Levels()+1)
	}
	if rows[0].Nodes != 1 || rows[0].WireUse != 1 || rows[0].MatchRounds != 2 {
		t.Fatalf("root row = %+v", rows[0])
	}
	leaf := rows[tr.Levels()]
	if leaf.Nodes != tr.Processors() || leaf.WireUse != 1 {
		t.Fatalf("leaf row = %+v", leaf)
	}
	// One wire used out of 2·cap·nodes·cycles at the root.
	wantUtil := 1.0 / float64(2*rows[0].Capacity)
	if rows[0].Utilization != wantUtil {
		t.Fatalf("root utilization = %v, want %v", rows[0].Utilization, wantUtil)
	}

	var sb strings.Builder
	if err := o.Report(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"observed 1 cycles", "offered 1", "level", "util"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestPerLevelMixedCapacity(t *testing.T) {
	tr := core.NewUniversal(8, 4)
	tr.SetChannelCapacity(2, 1+tr.CapTable()[3])
	o := New(tr)
	rows := o.PerLevel()
	if rows[1].Capacity != -1 {
		t.Fatalf("level 1 capacity = %d, want -1 (mixed)", rows[1].Capacity)
	}
}
