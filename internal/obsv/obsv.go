// Package obsv is the structured observability layer of the simulator: it
// turns the delivery engine, the Theorem 1 scheduler, and the buffered
// simulator from black boxes that report totals into instruments that show
// *where* congestion concentrates and *why* a cycle stalls — the per-resource
// visibility the paper's quantitative claims (Theorems 1–10 bound delivery
// cycles, channel loading, and bit-serial ticks) invite.
//
// The layer has three parts:
//
//   - Counters: per-channel and per-switch tallies (wire use against the
//     Theorem-bound channel capacity, concentrator requests/grants/drops,
//     Hopcroft–Karp matching rounds, retries under loss injection)
//     accumulated into flat arrays preallocated when the observer is bound
//     to a tree, so recording is an array add — no maps, no allocation.
//   - A fixed-capacity ring-buffer event tracer (cycle start/end, flight
//     injected/advanced/blocked/delivered) with exporters to Chrome
//     trace_event JSON (chrome://tracing, Perfetto) and a JSONL stream; see
//     export.go.
//   - pprof plumbing: profile start/stop helpers for the CLIs' -profile
//     flag family (profile.go) and runtime/pprof labels on the worker-pool
//     goroutines (internal/par), so CPU profiles attribute samples to the
//     delivery fan-out.
//
// # Cost contract
//
// Disabled observability is free: an engine whose observer is nil performs
// one pointer compare per deterministic merge point and allocates nothing —
// the hotalloc ftlint analyzer statically guarantees the hot path stays at
// 0 allocs/op, and the alloc-guard test asserts it at runtime. Enabled
// observability is cheap: counters are flat-array adds and events are
// fixed-slot ring writes, so steady-state cycles still allocate nothing.
//
// # Determinism contract
//
// An Observer is driven only from the engine's deterministic serial merge
// points (injection, the node-order level merge, collection), never from
// worker goroutines, so counter totals and the event stream are bit-identical
// for any worker count, and attaching an observer never perturbs routing.
// The extended FuzzEngineParallelEquivalence pins both properties.
package obsv

import (
	"fmt"
	"io"
	"math/bits"
	"sync"

	"fattree/internal/core"
)

// Counters is the flat-array tally block of one Observer. Arrays are indexed
// the same way as the engine's own arenas: channels by 2·node+dir (dir 0 =
// Up, 1 = Down) and switches by heap node id, so recording is a single array
// add and cross-run comparison is plain slice equality.
type Counters struct {
	// Cycles is the number of delivery cycles observed.
	Cycles int64
	// Offered counts flight offers: a message offered in k cycles (retries
	// included) counts k times. Every offered flight ends the cycle in
	// exactly one of the three buckets below, so
	// Offered == Delivered + Dropped + Deferred always holds — the
	// conservation law TestDeliveryConservation pins.
	Offered int64
	// Delivered, Dropped, Deferred partition the offered flights by outcome:
	// reached the destination channel, lost at a concentrator (congestion or
	// injected fault), or unable to inject at the source leaf.
	Delivered int64
	Dropped   int64
	Deferred  int64
	// Retried counts flights re-offered after a failed cycle (the Section II
	// negative-acknowledgment protocol): the undelivered count summed over
	// cycles, excluding messages abandoned when a run stalls or hits its
	// cycle bound.
	Retried int64

	// WireUse[2·node+dir] counts wire-cycles actually carrying a message in
	// that channel: injections onto leaf up channels and the root down
	// channel, upward-sweep grants onto the up channel above the switch, and
	// downward-sweep grants onto the down channel above the chosen child.
	// Divided by Cycles × cap(channel) it is the channel's utilization
	// against the Theorem-bound capacity (see Report).
	WireUse []int64

	// Per-switch concentrator contention, indexed by heap node id (internal
	// nodes 1..n-1): requests contesting the node's concentrators, grants
	// (requests that won an output wire), and drops (requests lost to
	// congestion, a partial-concentrator miss, or an injected fault).
	Requests []int64
	Grants   []int64
	Drops    []int64

	// MatchRounds[node] counts Hopcroft–Karp BFS phases run by the node's
	// partial concentrators (0 for ideal switches) — the matching effort the
	// Section IV hardware would spend in its routing circuitry.
	MatchRounds []int64

	// Faults[node] counts drops caused by injected transient faults (the
	// Lossy wrapper) rather than congestion; Drops[node] includes them.
	Faults []int64

	// Buffered-simulator counters (RunBufferedObserved), per channel:
	// head-of-line stalls charged to the full downstream channel and the
	// peak queue occupancy observed.
	Stalls    []int64
	QueuePeak []int64

	// Scheduler counters (sched.OffLineObserved), indexed by tree level
	// (root = 0, leaves = lg n); index lg n + 1 holds the external-traffic
	// block. LevelCycles is the delivery cycles the level contributed to the
	// schedule, LevelMessages the messages whose LCA sits at the level.
	LevelCycles   []int64
	LevelMessages []int64
}

// Observer collects counters, histograms, and (optionally) an event trace
// from the simulator. Bind it to a tree with New, attach it to an engine
// with sim.Engine.SetObserver (or sim.Options.Observer), and read the
// counters directly, render them with Report, or take an immutable Snapshot.
//
// An Observer must be driven by one simulation goroutine at a time (the
// engine invokes it only from its deterministic serial merge points), and
// must not be shared by engines running concurrently. Snapshot, however, is
// safe to call from any goroutine while a run is in flight: recording is
// bracketed by an internal mutex held from CycleStart to CycleEnd (and
// around every out-of-cycle hook), so a snapshot observes only whole
// delivery cycles — the conservation law Offered == Delivered + Dropped +
// Deferred holds in every snapshot, mid-run included. Direct reads of C are
// only safe once the run has finished.
type Observer struct {
	C Counters

	// mu brackets recording so Snapshot can read mid-run. CycleStart
	// acquires it and CycleEnd releases it — one lock per delivery cycle,
	// not per hook — and the infrequent out-of-cycle hooks (Retries,
	// Latencies, Stall, Queue, SchedLevel) lock around themselves.
	mu sync.Mutex

	nodes  int   // tree nodes + 1 (valid ids are 1..nodes-1)
	levels int   // leaf level
	caps   []int // capacity of the channel above node v, by node id; nil when compact

	// heap marks a heap-indexed tree, whose node levels fold with one
	// bits.Len; other shapes (k-ary fat-trees) fold through the lvlFirst
	// table built from the topology's LevelRange.
	heap     bool
	lvlFirst []int
	lvlCount []int

	// compact marks a per-level observer (NewCompact): channel and switch
	// arrays are indexed by tree level instead of heap node id, so the
	// footprint is O(levels) and independent of n. The streaming engine
	// drives it through the same hooks (node ids are folded to levels on
	// entry); the dense engine requires a dense observer.
	compact   bool
	levelCaps []int       // compact only: per-level capacity profile
	ovCaps    map[int]int // compact only: per-channel override snapshot
	mixed     []bool      // compact only: level has overrides with differing caps

	// hist holds the fixed-size distribution instruments (see hist.go);
	// cycleLevelUse accumulates the current cycle's per-level wire use so
	// CycleEnd can bucket the cycle's utilization, and levelWires memoizes
	// each level's total channel capacity (the denominator).
	hist          hists
	cycleLevelUse []int64
	levelWires    []int64

	// lastRounds/lastFaults are per-switch snapshots of the cumulative
	// hardware counters (matching rounds, fault corruptions), so Switch can
	// attribute deltas per sweep. Primed by PrimeSwitch when the observer is
	// attached to an engine whose switches have already routed.
	lastRounds []int64
	lastFaults []int64

	ring *Ring // nil until EnableTrace
}

// New returns an observer bound to t: every counter array is preallocated to
// the tree's size so recording never allocates. The per-node arrays make this
// the *dense* observer — O(n) memory; use NewCompact for topologies too large
// to materialize.
func New(t core.Topology) *Observer {
	nodes := t.Nodes() + 1
	o := &Observer{
		nodes:  nodes,
		levels: t.Levels(),
		caps:   core.CapTableOf(t),
	}
	o.bindLevels(t)
	o.C = Counters{
		WireUse:       make([]int64, 2*nodes),
		Requests:      make([]int64, nodes),
		Grants:        make([]int64, nodes),
		Drops:         make([]int64, nodes),
		MatchRounds:   make([]int64, nodes),
		Faults:        make([]int64, nodes),
		Stalls:        make([]int64, 2*nodes),
		QueuePeak:     make([]int64, 2*nodes),
		LevelCycles:   make([]int64, t.Levels()+2),
		LevelMessages: make([]int64, t.Levels()+2),
	}
	o.lastRounds = make([]int64, nodes)
	o.lastFaults = make([]int64, nodes)
	o.hist = newHists(t.Levels())
	o.cycleLevelUse = make([]int64, t.Levels()+1)
	o.levelWires = make([]int64, t.Levels()+1)
	for level := 0; level <= t.Levels(); level++ {
		first, count := o.lvlFirst[level], o.lvlCount[level]
		for v := first; v < first+count; v++ {
			o.levelWires[level] += int64(o.caps[v])
		}
	}
	return o
}

// bindLevels snapshots the topology's level geometry so the recording hooks
// can fold node ids to levels without touching the tree again.
func (o *Observer) bindLevels(t core.Topology) {
	o.heap = core.HeapIndexed(t)
	o.lvlFirst = make([]int, o.levels+1)
	o.lvlCount = make([]int, o.levels+1)
	for k := 0; k <= o.levels; k++ {
		o.lvlFirst[k], o.lvlCount[k] = t.LevelRange(k)
	}
}

// lvl folds a node id to its tree level: one bits.Len on heap-indexed trees,
// a short scan of the level table (at most levels+1 probes) otherwise.
//
//ftlint:hotpath
func (o *Observer) lvl(v int) int {
	if o.heap {
		return bits.Len(uint(v)) - 1
	}
	for k := o.levels; k > 0; k-- {
		if v >= o.lvlFirst[k] {
			return k
		}
	}
	return 0
}

// NewCompact returns an observer bound to t whose channel and switch counters
// are aggregated per tree level rather than per node, so its footprint is
// O(levels) — independent of n — and a 2^20-endpoint run can still assert the
// conservation laws and per-level utilization. Totals (Cycles, Offered,
// Delivered, Dropped, Deferred, Retried), histograms, and PerLevel carry the
// same information as a dense observer's aggregation; per-node attribution is
// unavailable. Only the streaming engine (and the scheduler's SchedLevel
// hook) can drive a compact observer; the dense engine rejects it.
func NewCompact(t core.Topology) *Observer {
	levels := t.Levels()
	o := &Observer{
		nodes:     t.Nodes() + 1,
		levels:    levels,
		compact:   true,
		levelCaps: t.LevelCapTable(),
		mixed:     make([]bool, levels+1),
	}
	o.bindLevels(t)
	o.C = Counters{
		WireUse:       make([]int64, 2*(levels+1)),
		Requests:      make([]int64, levels+1),
		Grants:        make([]int64, levels+1),
		Drops:         make([]int64, levels+1),
		MatchRounds:   make([]int64, levels+1),
		Faults:        make([]int64, levels+1),
		Stalls:        make([]int64, 2*(levels+1)),
		QueuePeak:     make([]int64, 2*(levels+1)),
		LevelCycles:   make([]int64, levels+2),
		LevelMessages: make([]int64, levels+2),
	}
	o.hist = newHists(levels)
	o.cycleLevelUse = make([]int64, levels+1)
	o.levelWires = make([]int64, levels+1)
	for level := 0; level <= levels; level++ {
		o.levelWires[level] = int64(o.lvlCount[level]) * int64(o.levelCaps[level])
	}
	t.Overrides(func(node, cap int) {
		level := o.lvl(node)
		o.levelWires[level] += int64(cap - o.levelCaps[level])
		if cap != o.levelCaps[level] {
			o.mixed[level] = true
		}
		if o.ovCaps == nil {
			o.ovCaps = make(map[int]int)
		}
		o.ovCaps[node] = cap
	})
	return o
}

// Levels returns the leaf level (lg n) of the bound tree.
func (o *Observer) Levels() int { return o.levels }

// Nodes returns one past the largest valid node id of the bound tree.
func (o *Observer) Nodes() int { return o.nodes }

// Compact reports whether the observer aggregates per level (NewCompact)
// rather than per node.
func (o *Observer) Compact() bool { return o.compact }

// ChannelCapacity returns the capacity of the channel above node v (both
// directions share one capacity), as snapshotted at New/NewCompact.
func (o *Observer) ChannelCapacity(v int) int {
	if o.compact {
		if c, ok := o.ovCaps[v]; ok {
			return c
		}
		return o.levelCaps[o.lvl(v)]
	}
	return o.caps[v]
}

// chIdx folds a (node, dir) channel to its counter index: 2·node+dir on a
// dense observer, 2·level+dir on a compact one.
func (o *Observer) chIdx(node, dir int) int {
	if o.compact {
		return 2*o.lvl(node) + dir
	}
	return 2*node + dir
}

// swIdx folds a switch node to its counter index: the node id on a dense
// observer, its level on a compact one.
func (o *Observer) swIdx(node int) int {
	if o.compact {
		return o.lvl(node)
	}
	return node
}

// EnableTrace attaches a fixed-capacity event ring buffer. The ring holds
// the most recent `capacity` events; older events are overwritten (the
// overwrite count is reported by Ring.Overwritten). capacity must be >= 1.
func (o *Observer) EnableTrace(capacity int) *Ring {
	o.ring = NewRing(capacity)
	return o.ring
}

// Trace returns the event ring, or nil when tracing is disabled.
func (o *Observer) Trace() *Ring { return o.ring }

// Tracing reports whether an event ring is attached.
func (o *Observer) Tracing() bool { return o.ring != nil }

// Reset zeroes every counter and histogram and drops all traced events; the
// binding (tree size, capacities, bucket bounds, ring capacity) is kept. Use
// it to reuse one observer across runs that should be tallied separately.
func (o *Observer) Reset() {
	o.mu.Lock()
	defer o.mu.Unlock()
	c := &o.C
	c.Cycles, c.Offered, c.Delivered, c.Dropped, c.Deferred, c.Retried = 0, 0, 0, 0, 0, 0
	for _, s := range [][]int64{
		c.WireUse, c.Requests, c.Grants, c.Drops, c.MatchRounds, c.Faults,
		c.Stalls, c.QueuePeak, c.LevelCycles, c.LevelMessages,
	} {
		for i := range s {
			s[i] = 0
		}
	}
	o.hist.reset()
	if o.ring != nil {
		o.ring.Reset()
	}
}

// CountersEqual reports whether two observers hold identical counter totals
// and identical histogram bucket arrays — the equality the parallel ==
// serial equivalence tests assert. Ring contents are compared only when both
// observers trace. Not safe while either observer's run is in flight.
func CountersEqual(a, b *Observer) bool {
	if !a.hist.equal(&b.hist) {
		return false
	}
	x, y := &a.C, &b.C
	if x.Cycles != y.Cycles || x.Offered != y.Offered ||
		x.Delivered != y.Delivered || x.Dropped != y.Dropped ||
		x.Deferred != y.Deferred || x.Retried != y.Retried {
		return false
	}
	for _, pair := range [][2][]int64{
		{x.WireUse, y.WireUse}, {x.Requests, y.Requests},
		{x.Grants, y.Grants}, {x.Drops, y.Drops},
		{x.MatchRounds, y.MatchRounds}, {x.Faults, y.Faults},
		{x.Stalls, y.Stalls},
		{x.QueuePeak, y.QueuePeak},
		{x.LevelCycles, y.LevelCycles}, {x.LevelMessages, y.LevelMessages},
	} {
		if len(pair[0]) != len(pair[1]) {
			return false
		}
		for i := range pair[0] {
			if pair[0][i] != pair[1][i] {
				return false
			}
		}
	}
	return true
}

// Recording methods. Each is a guarded array add — no allocation, no map,
// no branch beyond the bounds the caller already established — so the
// engine can call them from hot-path merge points when an observer is
// attached without breaking its zero-allocation steady state.

// CycleStart records the start of a delivery cycle offering `offered`
// flights. It acquires the observer's snapshot mutex, which the matching
// CycleEnd releases: every recording hook between the two runs inside one
// critical section, so a concurrent Snapshot sees only whole cycles.
func (o *Observer) CycleStart(offered int) {
	o.mu.Lock()
	o.C.Offered += int64(offered)
	for i := range o.cycleLevelUse {
		o.cycleLevelUse[i] = 0
	}
	if o.ring != nil {
		o.ring.push(Event{Kind: EvCycleStart, Cycle: o.C.Cycles, Count: int32(offered)})
	}
}

// CycleEnd records the end of the current delivery cycle with its outcome
// partition, buckets the cycle's per-level wire utilization, advances the
// cycle counter, and releases the snapshot mutex taken by CycleStart.
func (o *Observer) CycleEnd(delivered, dropped, deferred int) {
	o.C.Delivered += int64(delivered)
	o.C.Dropped += int64(dropped)
	o.C.Deferred += int64(deferred)
	for level, use := range o.cycleLevelUse {
		// Both directions of every channel are available each cycle, so the
		// per-cycle ceiling is 2 × the level's total capacity. Integer
		// per-mille keeps bucketing exact across worker counts.
		if wires := o.levelWires[level]; wires > 0 {
			o.hist.levelUtil[level].Observe(1000 * use / (2 * wires))
		}
	}
	if o.ring != nil {
		o.ring.push(Event{Kind: EvCycleEnd, Cycle: o.C.Cycles, Count: int32(delivered)})
	}
	o.C.Cycles++
	o.mu.Unlock()
}

// Retries records flights re-offered after the current cycle. Called by the
// retry loops between cycles, outside the CycleStart–CycleEnd section.
func (o *Observer) Retries(n int) {
	o.mu.Lock()
	o.C.Retried += int64(n)
	o.mu.Unlock()
}

// Latencies records the delivery latency, in delivery cycles from first
// offer to delivery, of every message delivered by the cycle that just
// ended (1 = delivered in the cycle it was first offered). The engine's
// retry loops batch one call per cycle, outside the CycleStart–CycleEnd
// section.
func (o *Observer) Latencies(lat []int64) {
	o.mu.Lock()
	for _, v := range lat {
		o.hist.latency.Observe(v)
	}
	o.mu.Unlock()
}

// Inject records flight i of the current cycle entering the network on a
// wire of the channel above `node` (the source leaf, or the root for
// external inputs).
func (o *Observer) Inject(i int, m core.Message, node, wire int) {
	o.C.WireUse[o.chIdx(node, channelDirOf(node, m))]++
	o.cycleLevelUse[o.lvl(node)]++
	if o.ring != nil {
		o.ring.push(Event{
			Kind: EvInject, Cycle: o.C.Cycles, Node: int32(node), Flight: int32(i),
			Src: int32(m.Src), Dst: int32(m.Dst), Wire: int32(wire),
		})
	}
}

// channelDirOf picks the direction of an injection channel: external inputs
// hold root *down* wires, everything else a leaf *up* wire.
func channelDirOf(node int, m core.Message) int {
	if node == 1 && m.Src == core.External {
		return int(core.Down)
	}
	return int(core.Up)
}

// Defer records flight i failing to inject (source channel full).
func (o *Observer) Defer(i int, m core.Message, node int) {
	if o.ring != nil {
		o.ring.push(Event{
			Kind: EvDefer, Cycle: o.C.Cycles, Node: int32(node), Flight: int32(i),
			Src: int32(m.Src), Dst: int32(m.Dst), Wire: -1,
		})
	}
}

// Switch records the outcome of one switch's concentrator contest in one
// sweep step: reqs requests, drops losses, plus the switch's *cumulative*
// hardware counters (Hopcroft–Karp BFS rounds, fault corruptions), which the
// observer converts to per-sweep deltas against its PrimeSwitch baseline.
func (o *Observer) Switch(node, reqs, drops int, roundsCum, faultsCum int64) {
	rounds := roundsCum - o.lastRounds[node]
	o.lastRounds[node] = roundsCum
	faults := faultsCum - o.lastFaults[node]
	o.lastFaults[node] = faultsCum
	o.SwitchDelta(node, reqs, drops, rounds, faults)
}

// SwitchDelta is Switch with the hardware counters already differenced: the
// streaming engine tracks each special switch's cumulative counters itself
// (its switches are lazily created, so the observer cannot hold a per-node
// baseline) and reports per-sweep deltas directly. Works on dense and compact
// observers alike.
func (o *Observer) SwitchDelta(node, reqs, drops int, dRounds, dFaults int64) {
	i := o.swIdx(node)
	o.C.Requests[i] += int64(reqs)
	o.C.Grants[i] += int64(reqs - drops)
	o.C.Drops[i] += int64(drops)
	o.C.MatchRounds[i] += dRounds
	o.hist.matchRounds.Observe(dRounds)
	o.C.Faults[i] += dFaults
}

// PrimeSwitch snapshots a switch's cumulative hardware counters without
// tallying them, so deltas recorded by Switch start from the attach point
// rather than from the engine's construction. The engine primes every switch
// when an observer is attached.
func (o *Observer) PrimeSwitch(node int, roundsCum, faultsCum int64) {
	if o.compact {
		// Compact observers are driven via SwitchDelta and keep no per-node
		// baseline to prime.
		return
	}
	o.mu.Lock()
	o.lastRounds[node] = roundsCum
	o.lastFaults[node] = faultsCum
	o.mu.Unlock()
}

// Advance records flight i winning a wire of the channel (chanNode, dir) at
// switch `node` during a sweep.
func (o *Observer) Advance(i int, m core.Message, node, chanNode, dir, wire int) {
	o.C.WireUse[o.chIdx(chanNode, dir)]++
	o.cycleLevelUse[o.lvl(chanNode)]++
	if o.ring != nil {
		o.ring.push(Event{
			Kind: EvAdvance, Cycle: o.C.Cycles, Node: int32(node), Flight: int32(i),
			Src: int32(m.Src), Dst: int32(m.Dst), Wire: int32(wire),
		})
	}
}

// Block records flight i losing the concentrator contest at switch `node`
// (dropped; it will be negatively acknowledged and retried).
func (o *Observer) Block(i int, m core.Message, node int) {
	if o.ring != nil {
		o.ring.push(Event{
			Kind: EvBlock, Cycle: o.C.Cycles, Node: int32(node), Flight: int32(i),
			Src: int32(m.Src), Dst: int32(m.Dst), Wire: -1,
		})
	}
}

// Deliver records flight i reaching its destination channel at switch
// `node`.
func (o *Observer) Deliver(i int, m core.Message, node int) {
	if o.ring != nil {
		o.ring.push(Event{
			Kind: EvDeliver, Cycle: o.C.Cycles, Node: int32(node), Flight: int32(i),
			Src: int32(m.Src), Dst: int32(m.Dst), Wire: -1,
		})
	}
}

// Stall records a head-of-line stall on the buffered simulator's channel
// (2·node+dir index ch).
func (o *Observer) Stall(ch int) {
	o.mu.Lock()
	o.C.Stalls[o.chIdx(ch>>1, ch&1)]++
	o.mu.Unlock()
}

// Queue records the occupancy of buffered channel ch, keeping the peak and
// bucketing every non-empty occupancy into the queue-depth histogram.
func (o *Observer) Queue(ch, depth int) {
	o.mu.Lock()
	ch = o.chIdx(ch>>1, ch&1)
	if int64(depth) > o.C.QueuePeak[ch] {
		o.C.QueuePeak[ch] = int64(depth)
	}
	if depth > 0 {
		o.hist.queueDepth.Observe(int64(depth))
	}
	o.mu.Unlock()
}

// SchedLevel records the Theorem 1 scheduler routing `messages` messages
// whose LCAs sit at `level` in `cycles` delivery cycles. Level levels+1
// holds the external-traffic block.
func (o *Observer) SchedLevel(level, cycles, messages int) {
	o.mu.Lock()
	o.C.LevelCycles[level] += int64(cycles)
	o.C.LevelMessages[level] += int64(messages)
	o.mu.Unlock()
}

// LevelSummary is one row of the per-level counter report.
type LevelSummary struct {
	Level    int
	Nodes    int   // switches (or leaves) at the level
	Wires    int64 // total wires across the level's channels (one direction)
	Capacity int   // wires per channel at the level (uniform levels only; -1 if mixed)
	// WireUse and Utilization aggregate both directions of every channel
	// beneath the level's nodes... see Report for the exact definition.
	WireUse     int64
	Utilization float64 // WireUse / (Cycles × total wires at level)
	Requests    int64
	Grants      int64
	Drops       int64
	MatchRounds int64
}

// PerLevel aggregates the channel and switch counters by tree level: level k
// covers the channels above the 2^k nodes at depth k and the concentrator
// activity of the switches there (leaf level channels carry injections; the
// leaf "switches" are processors, so their contention fields are zero).
func (o *Observer) PerLevel() []LevelSummary {
	out := make([]LevelSummary, o.levels+1)
	if o.compact {
		for level := 0; level <= o.levels; level++ {
			s := &out[level]
			s.Level = level
			s.Nodes = o.lvlCount[level]
			s.Capacity = o.levelCaps[level]
			if o.mixed[level] {
				s.Capacity = -1
			}
			s.Wires = o.levelWires[level]
			s.WireUse = o.C.WireUse[2*level] + o.C.WireUse[2*level+1]
			s.Requests = o.C.Requests[level]
			s.Grants = o.C.Grants[level]
			s.Drops = o.C.Drops[level]
			s.MatchRounds = o.C.MatchRounds[level]
			if o.C.Cycles > 0 && s.Wires > 0 {
				s.Utilization = float64(s.WireUse) / float64(o.C.Cycles*2*s.Wires)
			}
		}
		return out
	}
	for level := 0; level <= o.levels; level++ {
		first, count := o.lvlFirst[level], o.lvlCount[level]
		s := &out[level]
		s.Level = level
		s.Nodes = count
		s.Capacity = o.caps[first]
		for v := first; v < first+count; v++ {
			if o.caps[v] != s.Capacity {
				s.Capacity = -1 // per-channel overrides make the level mixed
			}
			s.Wires += int64(o.caps[v])
			s.WireUse += o.C.WireUse[2*v] + o.C.WireUse[2*v+1]
			s.Requests += o.C.Requests[v]
			s.Grants += o.C.Grants[v]
			s.Drops += o.C.Drops[v]
			s.MatchRounds += o.C.MatchRounds[v]
		}
		if o.C.Cycles > 0 && s.Wires > 0 {
			// Both directions of every channel are available each cycle.
			s.Utilization = float64(s.WireUse) / float64(o.C.Cycles*2*s.Wires)
		}
	}
	return out
}

// Report writes a human-readable counter summary: the outcome totals, the
// conservation check, and the per-level utilization/contention table.
func (o *Observer) Report(w io.Writer) error {
	c := &o.C
	if _, err := fmt.Fprintf(w,
		"observed %d cycles: offered %d = delivered %d + dropped %d + deferred %d (retried %d)\n",
		c.Cycles, c.Offered, c.Delivered, c.Dropped, c.Deferred, c.Retried); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%5s %6s %9s %10s %6s %9s %8s %7s %7s\n",
		"level", "nodes", "cap/chan", "wire-use", "util", "requests", "grants", "drops", "hkbfs"); err != nil {
		return err
	}
	for _, s := range o.PerLevel() {
		capStr := fmt.Sprintf("%d", s.Capacity)
		if s.Capacity < 0 {
			capStr = "mixed"
		}
		if _, err := fmt.Fprintf(w, "%5d %6d %9s %10d %5.1f%% %9d %8d %7d %7d\n",
			s.Level, s.Nodes, capStr, s.WireUse, 100*s.Utilization,
			s.Requests, s.Grants, s.Drops, s.MatchRounds); err != nil {
			return err
		}
	}
	if tr := o.ring; tr != nil {
		if _, err := fmt.Fprintf(w, "trace: %d events buffered, %d overwritten\n",
			tr.Len(), tr.Overwritten()); err != nil {
			return err
		}
	}
	return nil
}
