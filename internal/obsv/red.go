package obsv

import (
	"io"
	"strconv"
	"sync"
)

// This file implements the per-tenant RED (rate, errors, duration)
// instruments of the serving daemon. Each tenant of cmd/ftserve owns one RED
// block; the request path updates it at the serial per-tenant merge point
// (requests of one tenant are processed in arrival order), so the
// deterministic members — request and error counts and the duration-in-
// cycles histogram — are bit-identical across worker counts, exactly like
// the engine counters. The wall-clock members (duration and queue wait in
// seconds) are real time and deliberately excluded from REDEqual.
//
// Exemplars: every histogram bucket keeps the trace ID and raw value of the
// last observation that landed in it, emitted in the OpenMetrics exemplar
// syntax (`... # {trace_id="..."} value`) so a dashboard's latency bucket
// links straight to a span trace. The slots are fixed arrays sized at
// construction — updating one is two stores, no allocation.

// Exemplar is one histogram bucket's pinned example observation. Trace 0
// means the bucket has seen no observation.
type Exemplar struct {
	Trace uint64
	Value int64
}

// RED duration-bucket shapes: cycles share the engine's latency scale;
// wall-clock durations and queue waits are microseconds from 1µs to ~33s.
var (
	redCyclesBounds = log2Bounds(16) // 1 .. 65536 cycles
	redMicrosBounds = log2Bounds(25) // 1µs .. ~33.5s
)

// RED is one tenant's request instrument block. Safe for concurrent use; all
// methods are allocation-free after NewRED.
type RED struct {
	mu        sync.Mutex
	requests  int64
	errors    int64
	queueDep  int64
	queuePeak int64
	durCycles Hist // delivery cycles per request (deterministic)
	durMicros Hist // wall-clock request duration, µs
	waitMicro Hist // bounded-queue wait, µs
	cyclesEx  []Exemplar // per durCycles bucket, incl. overflow
	microsEx  []Exemplar // per durMicros bucket, incl. overflow
}

// NewRED returns a fresh instrument block.
func NewRED() *RED {
	r := &RED{
		durCycles: NewHist(redCyclesBounds),
		durMicros: NewHist(redMicrosBounds),
		waitMicro: NewHist(redMicrosBounds),
	}
	r.cyclesEx = make([]Exemplar, r.durCycles.NumBuckets())
	r.microsEx = make([]Exemplar, r.durMicros.NumBuckets())
	return r
}

// ObserveRequest records one completed request: its delivery-cycle count,
// wall-clock duration in microseconds, trace ID (pinned as the exemplar of
// the buckets the observation lands in), and whether it failed.
//
//ftlint:hotpath
func (r *RED) ObserveRequest(cycles, durMicros int64, trace uint64, failed bool) {
	r.mu.Lock()
	r.requests++
	if failed {
		r.errors++
	}
	r.cyclesEx[r.durCycles.ObserveIdx(cycles)] = Exemplar{trace, cycles}
	r.microsEx[r.durMicros.ObserveIdx(durMicros)] = Exemplar{trace, durMicros}
	r.mu.Unlock()
}

// RejectRequest records one request refused at admission (bounded queue
// full, 429): counted as a request and an error, with no duration.
//
//ftlint:hotpath
func (r *RED) RejectRequest() {
	r.mu.Lock()
	r.requests++
	r.errors++
	r.mu.Unlock()
}

// QueueEnter records a request entering the tenant's bounded queue.
//
//ftlint:hotpath
func (r *RED) QueueEnter() {
	r.mu.Lock()
	r.queueDep++
	if r.queueDep > r.queuePeak {
		r.queuePeak = r.queueDep
	}
	r.mu.Unlock()
}

// QueueExit records a request leaving the queue after waiting waitMicros.
//
//ftlint:hotpath
func (r *RED) QueueExit(waitMicros int64) {
	r.mu.Lock()
	r.queueDep--
	r.waitMicro.Observe(waitMicros)
	r.mu.Unlock()
}

// REDSnap is a point-in-time copy of one RED block.
type REDSnap struct {
	Requests, Errors     int64
	QueueDepth, QueuePeak int64
	DurationCycles  HistSnap
	DurationMicros  HistSnap
	QueueWaitMicros HistSnap
	CyclesExemplars []Exemplar
	MicrosExemplars []Exemplar
}

// Snapshot returns a consistent copy of the block.
func (r *RED) Snapshot() REDSnap {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := REDSnap{
		Requests: r.requests, Errors: r.errors,
		QueueDepth: r.queueDep, QueuePeak: r.queuePeak,
		DurationCycles:  r.durCycles.Snap(),
		DurationMicros:  r.durMicros.Snap(),
		QueueWaitMicros: r.waitMicro.Snap(),
		CyclesExemplars: append([]Exemplar(nil), r.cyclesEx...),
		MicrosExemplars: append([]Exemplar(nil), r.microsEx...),
	}
	return s
}

// REDEqual reports whether two blocks agree on their deterministic members:
// request and error counts and the duration-in-cycles histogram. Wall-clock
// histograms and exemplars are excluded — they depend on real time, not on
// the request sequence.
func REDEqual(a, b *RED) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
	return a.requests == b.requests && a.errors == b.errors &&
		histEqual(&a.durCycles, &b.durCycles)
}

// LabeledRED pairs a RED snapshot with the label set identifying its tenant.
type LabeledRED struct {
	Labels []PromLabel
	Snap   REDSnap
}

// The request-path metric families, in exposition order.
var redFamilies = []promFamily{
	{"fattree_requests_total", "counter", "Requests received, per tenant (including rejected)."},
	{"fattree_request_errors_total", "counter", "Requests that failed: rejected at admission, stalled, or invalid."},
	{"fattree_request_queue_depth", "gauge", "Requests currently waiting in the tenant's bounded queue."},
	{"fattree_request_queue_depth_peak", "gauge", "Peak bounded-queue occupancy since start."},
	{"fattree_request_duration_cycles", "histogram", "Delivery cycles per request (deterministic across worker counts)."},
	{"fattree_request_duration_seconds", "histogram", "Wall-clock request duration from dequeue to delivery."},
	{"fattree_request_queue_wait_seconds", "histogram", "Wall-clock wait in the tenant's bounded queue."},
}

// WriteREDPrometheus writes the per-tenant request families as Prometheus
// text exposition, one HELP/TYPE header per family followed by every
// tenant's samples. Wall-clock histograms are recorded in microseconds and
// exposed in seconds (le bounds scaled by 1e-6); duration histograms carry
// OpenMetrics exemplars with the bucket's last trace ID.
func WriteREDPrometheus(w io.Writer, tenants ...LabeledRED) error {
	for _, fam := range redFamilies {
		if _, err := io.WriteString(w, "# HELP "+fam.name+" "+fam.help+"\n# TYPE "+fam.name+" "+fam.typ+"\n"); err != nil {
			return err
		}
		for _, t := range tenants {
			var err error
			switch fam.name {
			case "fattree_requests_total":
				err = writeSample(w, fam.name, t.Labels, nil, float64(t.Snap.Requests))
			case "fattree_request_errors_total":
				err = writeSample(w, fam.name, t.Labels, nil, float64(t.Snap.Errors))
			case "fattree_request_queue_depth":
				err = writeSample(w, fam.name, t.Labels, nil, float64(t.Snap.QueueDepth))
			case "fattree_request_queue_depth_peak":
				err = writeSample(w, fam.name, t.Labels, nil, float64(t.Snap.QueuePeak))
			case "fattree_request_duration_cycles":
				err = writeExemplarHistogram(w, fam.name, t.Labels, t.Snap.DurationCycles, t.Snap.CyclesExemplars, 1)
			case "fattree_request_duration_seconds":
				err = writeExemplarHistogram(w, fam.name, t.Labels, t.Snap.DurationMicros, t.Snap.MicrosExemplars, 1e-6)
			case "fattree_request_queue_wait_seconds":
				err = writeExemplarHistogram(w, fam.name, t.Labels, t.Snap.QueueWaitMicros, nil, 1e-6)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// writeExemplarHistogram writes one histogram with le bounds (and exemplar
// values) scaled by scale, attaching each bucket's exemplar when present.
// exemplars may be nil (no exemplars) or one slot per bucket including the
// overflow bucket, which annotates le="+Inf".
func writeExemplarHistogram(w io.Writer, name string, labels []PromLabel, h HistSnap, exemplars []Exemplar, scale float64) error {
	bucket := func(le string, cum float64, ex Exemplar) error {
		l := PromLabel{"le", le}
		if ex.Trace == 0 {
			return writeSample(w, name+"_bucket", labels, &l, cum)
		}
		return writeExemplarSample(w, name+"_bucket", labels, &l, cum, ex, scale)
	}
	exAt := func(i int) Exemplar {
		if i < len(exemplars) {
			return exemplars[i]
		}
		return Exemplar{}
	}
	cum := int64(0)
	for i, b := range h.Bounds {
		cum += h.Counts[i]
		le := strconv.FormatFloat(float64(b)*scale, 'g', -1, 64)
		if scale == 1 {
			le = strconv.FormatInt(b, 10)
		}
		if err := bucket(le, float64(cum), exAt(i)); err != nil {
			return err
		}
	}
	if err := bucket("+Inf", float64(h.Count), exAt(len(h.Bounds))); err != nil {
		return err
	}
	if err := writeSample(w, name+"_sum", labels, nil, float64(h.Sum)*scale); err != nil {
		return err
	}
	return writeSample(w, name+"_count", labels, nil, float64(h.Count))
}
