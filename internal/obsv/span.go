package obsv

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// This file is the request-path half of the tracing layer: where the event
// ring (ring.go) records what happens *inside* a delivery cycle, the span
// ring records what happens *around* it — one span per stage of a served
// request (handler parse, queue wait, engine delivery, response write), all
// stamped with the request's trace ID so a single request can be followed
// handler → queue → engine → response across tenants. Same flight-recorder
// semantics as the event ring: fixed capacity, pushes never allocate, oldest
// spans are overwritten once full. Unlike the event ring the span ring is
// mutex-guarded — handler goroutines of different tenants push concurrently.

// SpanKind enumerates the stages of a served request.
type SpanKind uint8

const (
	// SpanHandler covers request decode, tenant resolution, and workload
	// materialization inside the HTTP handler.
	SpanHandler SpanKind = iota
	// SpanQueue covers the wait in the tenant's bounded queue, from enqueue
	// to the moment a pool worker dequeues the request.
	SpanQueue
	// SpanEngine covers the delivery itself: one RunServe call on the
	// tenant's persistent engine. Cycles and Msgs are meaningful here.
	SpanEngine
	// SpanRespond covers response encoding and the write back to the client.
	SpanRespond
)

// String returns the kind's lowercase name.
func (k SpanKind) String() string {
	switch k {
	case SpanHandler:
		return "handler"
	case SpanQueue:
		return "queue"
	case SpanEngine:
		return "engine"
	case SpanRespond:
		return "respond"
	}
	return fmt.Sprintf("span(%d)", uint8(k))
}

// Span is one recorded stage of one request. Start is nanoseconds on the
// ring's monotonic clock (see SpanRing.Now), Dur the stage's duration in
// nanoseconds. Cycles and Msgs are zero outside SpanEngine; Err is true when
// the stage ended in a request error (stall, rejection, bad input).
type Span struct {
	Trace  uint64
	Start  int64
	Dur    int64
	Tenant int32
	Cycles int32
	Msgs   int32
	Kind   SpanKind
	Err    bool
}

// SpanRing is a fixed-capacity, concurrency-safe span buffer. Pushes never
// allocate; once full the oldest spans are overwritten. The zero value is
// unusable — construct with NewSpanRing.
type SpanRing struct {
	mu          sync.Mutex
	buf         []Span
	start, size int
	overwritten int64
	epoch       time.Time
}

// NewSpanRing returns a ring holding at most capacity spans. Its monotonic
// clock starts at construction.
func NewSpanRing(capacity int) *SpanRing {
	if capacity < 1 {
		panic(fmt.Sprintf("obsv: span ring capacity %d must be >= 1", capacity))
	}
	return &SpanRing{buf: make([]Span, capacity), epoch: time.Now()}
}

// Now returns the ring's monotonic clock reading in nanoseconds since
// construction — the time base for Span.Start.
//
//ftlint:hotpath
func (r *SpanRing) Now() int64 { return time.Since(r.epoch).Nanoseconds() }

// Push appends s, overwriting the oldest span when full. Safe for concurrent
// use; never allocates.
//
//ftlint:hotpath
func (r *SpanRing) Push(s Span) {
	r.mu.Lock()
	if r.size < len(r.buf) {
		r.buf[(r.start+r.size)%len(r.buf)] = s
		r.size++
	} else {
		r.buf[r.start] = s
		r.start = (r.start + 1) % len(r.buf)
		r.overwritten++
	}
	r.mu.Unlock()
}

// Len returns the number of buffered spans.
func (r *SpanRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.size
}

// Cap returns the ring's fixed capacity.
func (r *SpanRing) Cap() int { return len(r.buf) }

// Overwritten returns how many spans were lost to overwriting.
func (r *SpanRing) Overwritten() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.overwritten
}

// Reset discards all spans (capacity and clock are kept).
func (r *SpanRing) Reset() {
	r.mu.Lock()
	r.start, r.size, r.overwritten = 0, 0, 0
	r.mu.Unlock()
}

// Spans returns the buffered spans oldest-first as a fresh slice.
func (r *SpanRing) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, r.size)
	for i := 0; i < r.size; i++ {
		out[i] = r.buf[(r.start+i)%len(r.buf)]
	}
	return out
}

// TraceID formats a trace ID the way it appears in responses, exemplars, and
// span exports: 16 lowercase hex digits.
func TraceID(trace uint64) string { return fmt.Sprintf("%016x", trace) }

// WriteChromeTrace exports the buffered spans as Chrome trace_event JSON
// (chrome://tracing, ui.perfetto.dev): one track per tenant, one complete
// ("X") slice per span, named by stage and carrying the trace ID, cycle
// count, and error flag as args. tenants maps tenant index → display name;
// indexes outside it render as "tenant <i>".
func (r *SpanRing) WriteChromeTrace(w io.Writer, tenants []string) error {
	spans := r.Spans()
	events := []chromeEvent{
		{Name: "process_name", Phase: "M", PID: 1,
			Args: map[string]any{"name": "fat-tree request path"}},
	}
	named := map[int32]bool{}
	for _, s := range spans {
		if !named[s.Tenant] {
			named[s.Tenant] = true
			name := fmt.Sprintf("tenant %d", s.Tenant)
			if int(s.Tenant) < len(tenants) {
				name = tenants[s.Tenant]
			}
			events = append(events, chromeEvent{
				Name: "thread_name", Phase: "M", PID: 1, TID: int(s.Tenant) + 1,
				Args: map[string]any{"name": name},
			})
		}
		dur := s.Dur / 1000
		if dur < 1 {
			dur = 1 // sub-microsecond stages still render as slices
		}
		events = append(events, chromeEvent{
			Name: s.Kind.String(), Phase: "X",
			TS: s.Start / 1000, Dur: dur, PID: 1, TID: int(s.Tenant) + 1,
			Args: map[string]any{
				"trace_id": TraceID(s.Trace), "cycles": s.Cycles,
				"msgs": s.Msgs, "err": s.Err,
			},
		})
	}
	return json.NewEncoder(w).Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// jsonlSpan is the JSONL wire form of one span.
type jsonlSpan struct {
	Trace   string `json:"trace_id"`
	Tenant  int32  `json:"tenant"`
	Kind    string `json:"kind"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
	Cycles  int32  `json:"cycles,omitempty"`
	Msgs    int32  `json:"msgs,omitempty"`
	Err     bool   `json:"err,omitempty"`
}

// WriteJSONL exports the buffered spans as one JSON object per line,
// oldest-first.
func (r *SpanRing) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range r.Spans() {
		if err := enc.Encode(jsonlSpan{
			Trace: TraceID(s.Trace), Tenant: s.Tenant, Kind: s.Kind.String(),
			StartNS: s.Start, DurNS: s.Dur, Cycles: s.Cycles, Msgs: s.Msgs, Err: s.Err,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}
