package obsv

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"
)

// This file backs the CLIs' -profile flag family: a comma-separated list of
// profile kinds started before the workload and stopped (with files flushed)
// after it. Kinds:
//
//	cpu   CPU profile            -> <base>.cpu.pprof   (go tool pprof)
//	mem   heap allocation profile-> <base>.mem.pprof   (go tool pprof)
//	trace runtime execution trace-> <base>.trace.out   (go tool trace)
//
// The pool workers of internal/par carry pprof labels (pool=par), so CPU
// samples taken inside the parallel delivery fan-out are attributable in
// `go tool pprof -tagfocus`.

// StartProfiles starts the requested profile kinds ("cpu", "mem", "trace",
// comma-separated; empty starts nothing) writing to files derived from base.
// It returns a stop function that ends the profiles and flushes the files;
// the caller must invoke it exactly once. An unknown kind or an unwritable
// file is reported before any workload runs.
func StartProfiles(spec, base string) (stop func() error, err error) {
	stop = func() error { return nil }
	if spec == "" {
		return stop, nil
	}
	if base == "" {
		base = "profile"
	}
	var stops []func() error
	cleanup := func() {
		for i := len(stops) - 1; i >= 0; i-- {
			_ = stops[i]()
		}
	}
	for _, kind := range strings.Split(spec, ",") {
		kind = strings.TrimSpace(kind)
		switch kind {
		case "":
		case "cpu":
			f, err := os.Create(base + ".cpu.pprof")
			if err != nil {
				cleanup()
				return nil, err
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				_ = f.Close()
				cleanup()
				return nil, err
			}
			stops = append(stops, func() error {
				pprof.StopCPUProfile()
				return f.Close()
			})
		case "mem":
			stops = append(stops, func() error {
				f, err := os.Create(base + ".mem.pprof")
				if err != nil {
					return err
				}
				runtime.GC() // fold transient garbage out of the heap picture
				if err := pprof.WriteHeapProfile(f); err != nil {
					_ = f.Close()
					return err
				}
				return f.Close()
			})
		case "trace":
			f, err := os.Create(base + ".trace.out")
			if err != nil {
				cleanup()
				return nil, err
			}
			if err := trace.Start(f); err != nil {
				_ = f.Close()
				cleanup()
				return nil, err
			}
			stops = append(stops, func() error {
				trace.Stop()
				return f.Close()
			})
		default:
			cleanup()
			return nil, fmt.Errorf("obsv: unknown profile kind %q (want cpu, mem, or trace)", kind)
		}
	}
	return func() error {
		var first error
		for i := len(stops) - 1; i >= 0; i-- {
			if err := stops[i](); err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}
