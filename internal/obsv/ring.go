package obsv

import "fmt"

// EventKind enumerates the traced event types.
type EventKind uint8

const (
	// EvCycleStart marks the start of a delivery cycle; Count is the number
	// of flights offered.
	EvCycleStart EventKind = iota
	// EvCycleEnd marks the end of a delivery cycle; Count is the number of
	// flights delivered.
	EvCycleEnd
	// EvInject marks a flight entering the network on a wire of its source
	// channel.
	EvInject
	// EvDefer marks a flight that could not inject (source channel full).
	EvDefer
	// EvAdvance marks a flight winning a concentrator contest and moving one
	// channel along its path.
	EvAdvance
	// EvBlock marks a flight dropped at a congested or faulty concentrator.
	EvBlock
	// EvDeliver marks a flight reaching its destination channel.
	EvDeliver
)

// String returns the kind's lowercase name.
func (k EventKind) String() string {
	switch k {
	case EvCycleStart:
		return "cycle-start"
	case EvCycleEnd:
		return "cycle-end"
	case EvInject:
		return "inject"
	case EvDefer:
		return "defer"
	case EvAdvance:
		return "advance"
	case EvBlock:
		return "block"
	case EvDeliver:
		return "deliver"
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Event is one traced occurrence. Fields not meaningful for a kind are zero
// (Wire is -1 where no wire was assigned). Flight indices are per-cycle
// message positions; Src/Dst are processor ids (or core.External).
type Event struct {
	Kind   EventKind
	Cycle  int64
	Node   int32
	Flight int32
	Src    int32
	Dst    int32
	Wire   int32
	Count  int32
}

// Ring is a fixed-capacity event buffer: pushes never allocate, and once
// full the oldest events are overwritten — the flight-recorder semantics a
// long soak run needs. Not safe for concurrent use (the observer is driven
// from serial merge points only).
type Ring struct {
	buf         []Event
	start, size int
	overwritten int64
}

// NewRing returns a ring holding at most capacity events.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		panic(fmt.Sprintf("obsv: ring capacity %d must be >= 1", capacity))
	}
	return &Ring{buf: make([]Event, capacity)}
}

// push appends e, overwriting the oldest event when full.
func (r *Ring) push(e Event) {
	if r.size < len(r.buf) {
		r.buf[(r.start+r.size)%len(r.buf)] = e
		r.size++
		return
	}
	r.buf[r.start] = e
	r.start = (r.start + 1) % len(r.buf)
	r.overwritten++
}

// Len returns the number of buffered events.
func (r *Ring) Len() int { return r.size }

// Cap returns the ring's fixed capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Overwritten returns how many events were lost to overwriting.
func (r *Ring) Overwritten() int64 { return r.overwritten }

// Reset discards all events (capacity is kept).
func (r *Ring) Reset() { r.start, r.size, r.overwritten = 0, 0, 0 }

// Events returns the buffered events oldest-first as a fresh slice.
func (r *Ring) Events() []Event {
	out := make([]Event, r.size)
	for i := 0; i < r.size; i++ {
		out[i] = r.buf[(r.start+i)%len(r.buf)]
	}
	return out
}

// Do calls fn on each buffered event oldest-first without copying.
func (r *Ring) Do(fn func(Event)) {
	for i := 0; i < r.size; i++ {
		fn(r.buf[(r.start+i)%len(r.buf)])
	}
}
