package obsv

import (
	"fmt"
	"io"
)

// This file is the live-read side of the observability layer. An Observer is
// driven by exactly one simulation goroutine, but a telemetry consumer (the
// ftserve /metrics handler, a progress printer) needs to read it *while the
// run is in flight*. Snapshot is that read: it takes the observer's mutex —
// which recording holds from CycleStart to CycleEnd — and deep-copies every
// counter and histogram, so the result is immutable, owned by the caller,
// and consistent at a delivery-cycle boundary (the conservation law
// Offered == Delivered + Dropped + Deferred holds in every snapshot).
// Latency observations for a cycle are batched just after it, so a snapshot
// taken in that window may trail Delivered by at most one cycle's worth of
// latency samples.

// HistSnap is an immutable copy of one histogram: per-bucket (non-
// cumulative) counts under inclusive upper bounds, plus the overflow count
// (Counts has one more entry than Bounds).
type HistSnap struct {
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
}

// Snap returns an immutable copy of the histogram.
func (h *Hist) Snap() HistSnap {
	return HistSnap{
		Bounds: append([]int64(nil), h.bounds...),
		Counts: append([]int64(nil), h.counts...),
		Count:  h.total,
		Sum:    h.sum,
	}
}

// Quantile returns the smallest bucket upper bound covering at least
// q·Count observations; ok is false on an empty histogram or when the
// quantile falls in the overflow bucket.
func (s HistSnap) Quantile(q float64) (int64, bool) {
	return quantile(s.Bounds, s.Counts, s.Count, q)
}

// Sub returns the bucket-wise difference s - prev (observations recorded
// after prev was taken). Both snapshots must come from the same histogram.
func (s HistSnap) Sub(prev HistSnap) HistSnap {
	if len(s.Bounds) != len(prev.Bounds) {
		panic("obsv: HistSnap.Sub of snapshots with different bucket layouts")
	}
	d := HistSnap{
		Bounds: append([]int64(nil), s.Bounds...),
		Counts: make([]int64, len(s.Counts)),
		Count:  s.Count - prev.Count,
		Sum:    s.Sum - prev.Sum,
	}
	for i := range s.Counts {
		d.Counts[i] = s.Counts[i] - prev.Counts[i]
	}
	return d
}

// Snapshot is an immutable, deep-copied view of an Observer at one moment:
// the full counter block, the four histogram groups, and the per-level
// aggregation. Take one with Observer.Snapshot; diff two with Sub.
type Snapshot struct {
	Counters    Counters       `json:"counters"`
	Latency     HistSnap       `json:"latency_cycles"`
	MatchRounds HistSnap       `json:"match_rounds"`
	QueueDepth  HistSnap       `json:"queue_depth"`
	LevelUtil   []HistSnap     `json:"level_utilization_permille"`
	PerLevel    []LevelSummary `json:"per_level"`
}

// Snapshot returns an immutable copy of the observer's counters, histograms,
// and per-level aggregates. It is safe to call from any goroutine while a
// run is in flight: recording holds the observer's mutex from CycleStart to
// CycleEnd, so the copy always lands on a delivery-cycle boundary.
func (o *Observer) Snapshot() Snapshot {
	o.mu.Lock()
	defer o.mu.Unlock()
	s := Snapshot{
		Counters:    copyCounters(&o.C),
		Latency:     o.hist.latency.Snap(),
		MatchRounds: o.hist.matchRounds.Snap(),
		QueueDepth:  o.hist.queueDepth.Snap(),
		LevelUtil:   make([]HistSnap, len(o.hist.levelUtil)),
		PerLevel:    o.PerLevel(),
	}
	for i := range o.hist.levelUtil {
		s.LevelUtil[i] = o.hist.levelUtil[i].Snap()
	}
	return s
}

// copyCounters deep-copies a counter block.
func copyCounters(c *Counters) Counters {
	out := *c
	out.WireUse = append([]int64(nil), c.WireUse...)
	out.Requests = append([]int64(nil), c.Requests...)
	out.Grants = append([]int64(nil), c.Grants...)
	out.Drops = append([]int64(nil), c.Drops...)
	out.MatchRounds = append([]int64(nil), c.MatchRounds...)
	out.Faults = append([]int64(nil), c.Faults...)
	out.Stalls = append([]int64(nil), c.Stalls...)
	out.QueuePeak = append([]int64(nil), c.QueuePeak...)
	out.LevelCycles = append([]int64(nil), c.LevelCycles...)
	out.LevelMessages = append([]int64(nil), c.LevelMessages...)
	return out
}

// Sub returns the difference s - prev: what happened between the two
// snapshots. Monotone counters and histogram buckets subtract element-wise;
// QueuePeak is a running maximum, not a counter, so the diff keeps s's
// values as the best available "peak since prev". Both snapshots must come
// from the same observer (same binding).
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters:    subCounters(&s.Counters, &prev.Counters),
		Latency:     s.Latency.Sub(prev.Latency),
		MatchRounds: s.MatchRounds.Sub(prev.MatchRounds),
		QueueDepth:  s.QueueDepth.Sub(prev.QueueDepth),
		LevelUtil:   make([]HistSnap, len(s.LevelUtil)),
		PerLevel:    make([]LevelSummary, len(s.PerLevel)),
	}
	if len(s.LevelUtil) != len(prev.LevelUtil) || len(s.PerLevel) != len(prev.PerLevel) {
		panic("obsv: Snapshot.Sub of snapshots from different observers")
	}
	for i := range s.LevelUtil {
		d.LevelUtil[i] = s.LevelUtil[i].Sub(prev.LevelUtil[i])
	}
	for i := range s.PerLevel {
		a, b := s.PerLevel[i], prev.PerLevel[i]
		row := a
		row.WireUse = a.WireUse - b.WireUse
		row.Requests = a.Requests - b.Requests
		row.Grants = a.Grants - b.Grants
		row.Drops = a.Drops - b.Drops
		row.MatchRounds = a.MatchRounds - b.MatchRounds
		row.Utilization = 0
		if cycles := d.Counters.Cycles; cycles > 0 && row.Wires > 0 {
			row.Utilization = float64(row.WireUse) / float64(cycles*2*row.Wires)
		}
		d.PerLevel[i] = row
	}
	return d
}

// subCounters subtracts two counter blocks element-wise; QueuePeak keeps a's
// values (see Snapshot.Sub).
func subCounters(a, b *Counters) Counters {
	out := copyCounters(a)
	out.Cycles -= b.Cycles
	out.Offered -= b.Offered
	out.Delivered -= b.Delivered
	out.Dropped -= b.Dropped
	out.Deferred -= b.Deferred
	out.Retried -= b.Retried
	for _, pair := range [][2][]int64{
		{out.WireUse, b.WireUse}, {out.Requests, b.Requests},
		{out.Grants, b.Grants}, {out.Drops, b.Drops},
		{out.MatchRounds, b.MatchRounds}, {out.Faults, b.Faults},
		{out.Stalls, b.Stalls},
		{out.LevelCycles, b.LevelCycles}, {out.LevelMessages, b.LevelMessages},
	} {
		if len(pair[0]) != len(pair[1]) {
			panic("obsv: Snapshot.Sub of snapshots from different observers")
		}
		for i := range pair[0] {
			pair[0][i] -= pair[1][i]
		}
	}
	return out
}

// WriteHistSummary renders the snapshot's histograms as a compact text
// report: one line of count/sum/quantiles per distribution, then the bucket
// row, then one utilization line per tree level. The same summary backs
// `ftsim -hist` and `ftbench -bench -hist`.
func (s Snapshot) WriteHistSummary(w io.Writer) error {
	write := func(name, unit string, h HistSnap) error {
		if _, err := fmt.Fprintf(w, "%-28s %s\n", name+":", quantileLine(h, unit)); err != nil {
			return err
		}
		if h.Count == 0 {
			return nil
		}
		_, err := fmt.Fprintf(w, "%-28s %s\n", "", bucketLine(h))
		return err
	}
	if err := write("delivery latency (cycles)", "cycles", s.Latency); err != nil {
		return err
	}
	if err := write("match rounds per contest", "rounds", s.MatchRounds); err != nil {
		return err
	}
	if err := write("buffered queue depth", "msgs", s.QueueDepth); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "per-level utilization (permille of capacity, per cycle):\n"); err != nil {
		return err
	}
	for level, h := range s.LevelUtil {
		if _, err := fmt.Fprintf(w, "  level %-2d                   %s\n", level, quantileLine(h, "permille")); err != nil {
			return err
		}
	}
	return nil
}

// quantileLine renders "count N sum S p50<=x p90<=y p99<=z" for one
// histogram, with overflow quantiles shown as >last-bound.
func quantileLine(h HistSnap, unit string) string {
	if h.Count == 0 {
		return "(no observations)"
	}
	q := func(p float64) string {
		v, ok := h.Quantile(p)
		if !ok {
			return fmt.Sprintf(">%d", h.Bounds[len(h.Bounds)-1])
		}
		return fmt.Sprintf("<=%d", v)
	}
	return fmt.Sprintf("count %d sum %d %s, p50%s p90%s p99%s max%s",
		h.Count, h.Sum, unit, q(0.50), q(0.90), q(0.99), q(1.0))
}

// bucketLine renders the non-empty buckets as "le=B:N ... +Inf:N".
func bucketLine(h HistSnap) string {
	out := ""
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		if out != "" {
			out += " "
		}
		if i < len(h.Bounds) {
			out += fmt.Sprintf("le=%d:%d", h.Bounds[i], c)
		} else {
			out += fmt.Sprintf("+Inf:%d", c)
		}
	}
	if out == "" {
		return "(all buckets empty)"
	}
	return "buckets " + out
}
