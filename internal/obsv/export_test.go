package obsv

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fattree/internal/core"
)

// tracedObserver records one small synthetic cycle with tracing enabled.
func tracedObserver(t *testing.T) *Observer {
	t.Helper()
	tr := core.NewUniversal(8, 4)
	o := New(tr)
	o.EnableTrace(128)
	m := core.Message{Src: 0, Dst: 5}
	o.CycleStart(2)
	o.Inject(0, m, tr.Leaf(0), 0)
	o.Defer(1, core.Message{Src: 1, Dst: 4}, tr.Leaf(1))
	o.Advance(0, m, 2, 2, int(core.Up), 1)
	o.Block(0, m, 1)
	o.Deliver(0, m, 2)
	o.CycleEnd(1, 0, 1)
	return o
}

func TestWriteChromeTraceParses(t *testing.T) {
	o := tracedObserver(t)
	var buf bytes.Buffer
	if err := o.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			PID   int    `json:"pid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	phases := map[string]int{}
	names := map[string]int{}
	for _, e := range doc.TraceEvents {
		if e.PID != 1 {
			t.Fatalf("event %q pid = %d", e.Name, e.PID)
		}
		phases[e.Phase]++
		names[e.Name]++
	}
	// Metadata, one complete cycle slice, the counter series, and instants.
	if phases["M"] == 0 || phases["X"] != 1 || phases["C"] != 1 || phases["i"] == 0 {
		t.Fatalf("phase histogram = %v", phases)
	}
	if names["cycle 0"] != 1 {
		t.Fatalf("missing cycle slice: %v", names)
	}
}

func TestWriteJSONLRoundTrips(t *testing.T) {
	o := tracedObserver(t)
	var buf bytes.Buffer
	if err := o.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var kinds []string
	for sc.Scan() {
		var e jsonlEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		kinds = append(kinds, e.Kind)
	}
	want := []string{"cycle-start", "inject", "defer", "advance", "block", "deliver", "cycle-end"}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
}

func TestExportersRequireTracing(t *testing.T) {
	o := New(core.NewUniversal(4, 2))
	var buf bytes.Buffer
	if err := o.WriteChromeTrace(&buf); err == nil {
		t.Fatal("WriteChromeTrace without tracing succeeded")
	}
	if err := o.WriteJSONL(&buf); err == nil {
		t.Fatal("WriteJSONL without tracing succeeded")
	}
	// Do without a ring is a silent no-op.
	o.Do(func(Event) { t.Fatal("Do visited an event with tracing disabled") })
}

func TestStartProfiles(t *testing.T) {
	base := filepath.Join(t.TempDir(), "prof")
	stop, err := StartProfiles("cpu,mem", base)
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{".cpu.pprof", ".mem.pprof"} {
		if _, err := os.Stat(base + suffix); err != nil {
			t.Fatalf("profile file %s: %v", suffix, err)
		}
	}

	if _, err := StartProfiles("bogus", base); err == nil ||
		!strings.Contains(err.Error(), "unknown profile kind") {
		t.Fatalf("unknown kind error = %v", err)
	}

	stop, err = StartProfiles("", base)
	if err != nil || stop == nil {
		t.Fatalf("empty spec: stop nil=%v err=%v", stop == nil, err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestLevelOf(t *testing.T) {
	cases := map[int32]int{0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 7: 2, 8: 3}
	for v, want := range cases {
		if got := levelOf(v); got != want {
			t.Fatalf("levelOf(%d) = %d, want %d", v, got, want)
		}
	}
}
