package obsv

import (
	"bytes"
	"testing"

	"fattree/internal/core"
)

// FuzzValidateExposition hammers the hand-rolled exposition parser: it must
// never panic, and whatever it accepts must re-parse identically through
// ParseExposition (the validator is a thin wrapper, so divergence means a
// state leak). The seed corpus covers real scrapes produced by the repo's
// own writers — counters, per-level histograms, RED families with exemplars
// — plus the malformed bucket/label/escape shapes the validator rejects.
func FuzzValidateExposition(f *testing.F) {
	// Real scrape 1: a populated observer snapshot, two labeled sources.
	o := New(core.NewUniversal(16, 4))
	o.CycleStart(8)
	o.CycleEnd(4, 0, 0)
	o.Latencies([]int64{1, 1, 2, 5}) // outside the CycleStart–CycleEnd section
	var scrape bytes.Buffer
	if err := WritePrometheus(&scrape,
		LabeledSnapshot{Labels: []PromLabel{{"tree", "16"}}, Snap: o.Snapshot()},
		LabeledSnapshot{Labels: []PromLabel{{"tree", "64"}, {"workload", "perm"}}, Snap: o.Snapshot()},
	); err != nil {
		f.Fatal(err)
	}
	f.Add(scrape.Bytes())

	// Real scrape 2: RED families with exemplars on the duration buckets.
	red := NewRED()
	red.QueueEnter()
	red.QueueExit(42)
	red.ObserveRequest(3, 1500, 0xbeef, false)
	red.RejectRequest()
	var redScrape bytes.Buffer
	if err := WriteREDPrometheus(&redScrape,
		LabeledRED{Labels: []PromLabel{{"tenant", "alpha"}}, Snap: red.Snapshot()},
	); err != nil {
		f.Fatal(err)
	}
	f.Add(redScrape.Bytes())
	f.Add(append(scrape.Bytes(), redScrape.Bytes()...))

	// Malformed shapes: each must be rejected without panicking.
	for _, bad := range []string{
		// Non-cumulative buckets.
		"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n",
		// Missing +Inf.
		"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_count 5\n",
		// +Inf disagrees with _count.
		"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_count 5\n",
		// le out of order.
		"# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_count 2\n",
		// Label escapes: dangling, bad escape char, unterminated value.
		"# TYPE c counter\nc{a=\"x\\\"} 1\n",
		"# TYPE c counter\nc{a=\"x\\q\"} 1\n",
		"# TYPE c counter\nc{a=\"x} 1\n",
		// Label syntax: missing '=', unquoted value, invalid name.
		"# TYPE c counter\nc{a} 1\n",
		"# TYPE c counter\nc{a=1} 1\n",
		"# TYPE c counter\nc{0a=\"x\"} 1\n",
		// Sample without TYPE, duplicate headers, TYPE after samples.
		"orphan 1\n",
		"# TYPE c counter\n# TYPE c counter\nc 1\n",
		"# HELP c one\n# HELP c two\n# TYPE c counter\nc 1\n",
		"# TYPE c counter\nc 1\n# TYPE d counter\nd 1\n# TYPE c gauge\n",
		// Values and timestamps.
		"# TYPE c counter\nc notanumber\n",
		"# TYPE c counter\nc 1 2 3\n",
		"# TYPE c counter\nc 1 t\n",
		// Exemplars: on a gauge, without trace_id, malformed tail.
		"# TYPE g gauge\ng 1 # {trace_id=\"ab\"} 1\n",
		"# TYPE c counter\nc_total 1 # {span=\"ab\"} 1\n",
		"# TYPE c counter\nc_total 1 # trace_id\n",
		"# TYPE c counter\nc_total 1 # {trace_id=\"ab\"} x\n",
		"# TYPE c counter\nc_total 1 # {trace_id=\"ab\"}\n",
		// Unterminated label set, bad metric name.
		"# TYPE c counter\nc{a=\"x\" 1\n",
		"9c 1\n",
		"# TYPE 9c counter\n",
	} {
		f.Add([]byte(bad))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return // bound parser work per input
		}
		err := ValidateExposition(data)
		samples, perr := ParseExposition(data)
		if (err == nil) != (perr == nil) {
			t.Fatalf("ValidateExposition err=%v but ParseExposition err=%v", err, perr)
		}
		if err != nil {
			return
		}
		// Accepted expositions: every returned sample must carry a valid
		// metric name, and every non-empty exemplar a non-empty trace.
		for _, s := range samples {
			if !validMetricName(s.Name) {
				t.Fatalf("accepted exposition yielded invalid metric name %q", s.Name)
			}
		}
	})
}
