package obsv

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"fattree/internal/core"
)

func TestHistBucketBoundaries(t *testing.T) {
	h := NewHist([]int64{1, 2, 4, 8})
	// Bounds are inclusive upper bounds (Prometheus le): a boundary value
	// lands in the bucket it names, the next value up in the bucket above.
	for _, v := range []int64{0, 1, 2, 3, 4, 5, 8, 9, 100} {
		h.Observe(v)
	}
	want := []int64{2, 1, 2, 2, 2} // <=1: {0,1}; <=2: {2}; <=4: {3,4}; <=8: {5,8}; +Inf: {9,100}
	if h.NumBuckets() != len(want) {
		t.Fatalf("NumBuckets = %d, want %d", h.NumBuckets(), len(want))
	}
	for i, w := range want {
		if got := h.BucketCount(i); got != w {
			t.Errorf("bucket %d count = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 9 || h.Sum() != 0+1+2+3+4+5+8+9+100 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
}

func TestHistOverflowBucket(t *testing.T) {
	h := NewLog2Hist(3) // bounds 1,2,4,8
	h.Observe(8)        // last finite bucket, inclusive
	h.Observe(9)        // first overflow value
	h.Observe(1 << 40)  // far overflow
	if got := h.BucketCount(h.NumBuckets() - 2); got != 1 {
		t.Errorf("last finite bucket = %d, want 1", got)
	}
	if got := h.BucketCount(h.NumBuckets() - 1); got != 2 {
		t.Errorf("overflow bucket = %d, want 2", got)
	}
	// A quantile that falls in the overflow bucket is unbounded at this
	// resolution and must report !ok.
	if _, ok := h.Quantile(1.0); ok {
		t.Error("Quantile(1.0) in overflow bucket reported ok")
	}
	if v, ok := h.Quantile(0.3); !ok || v != 8 {
		t.Errorf("Quantile(0.3) = %d,%v, want 8,true", v, ok)
	}
}

func TestHistQuantile(t *testing.T) {
	h := NewLog2Hist(4) // 1,2,4,8,16
	if _, ok := h.Quantile(0.5); ok {
		t.Error("empty histogram quantile reported ok")
	}
	for i := 0; i < 10; i++ {
		h.Observe(1)
	}
	h.Observe(16)
	if v, ok := h.Quantile(0.5); !ok || v != 1 {
		t.Errorf("p50 = %d,%v, want 1,true", v, ok)
	}
	if v, ok := h.Quantile(1.0); !ok || v != 16 {
		t.Errorf("p100 = %d,%v, want 16,true", v, ok)
	}
	if v, ok := h.Quantile(0.0); !ok || v != 1 {
		t.Errorf("p0 clamps to rank 1, got %d,%v", v, ok)
	}
}

func TestHistReset(t *testing.T) {
	h := NewLog2Hist(2)
	h.Observe(3)
	h.Observe(100)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("after reset count=%d sum=%d", h.Count(), h.Sum())
	}
	for i := 0; i < h.NumBuckets(); i++ {
		if h.BucketCount(i) != 0 {
			t.Fatalf("bucket %d nonzero after reset", i)
		}
	}
	if h.NumBuckets() != 4 { // bounds kept: 1,2,4 + overflow
		t.Fatalf("bounds not kept across reset")
	}
}

func TestNewHistValidation(t *testing.T) {
	for _, tc := range []struct {
		name   string
		bounds []int64
	}{
		{"empty", nil},
		{"equal", []int64{1, 1}},
		{"decreasing", []int64{4, 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewHist(%v) did not panic", tc.bounds)
				}
			}()
			NewHist(tc.bounds)
		})
	}
}

func TestNewHistCopiesBounds(t *testing.T) {
	bounds := []int64{1, 2, 4}
	h := NewHist(bounds)
	bounds[0] = 99
	if h.Bound(0) != 1 {
		t.Fatal("NewHist aliased the caller's bounds slice")
	}
}

// observeSomething drives a small observed run so snapshot tests have
// non-trivial counters and histograms to look at.
func observedRun(t *testing.T) *Observer {
	t.Helper()
	tree := core.NewUniversal(8, 4)
	o := New(tree)
	o.CycleStart(3)
	o.Inject(0, core.Message{Src: 0, Dst: 5}, tree.Leaf(0), 0)
	o.Switch(2, 2, 1, 3, 0)
	o.Advance(0, core.Message{Src: 0, Dst: 5}, 2, 1, 0, 0)
	o.CycleEnd(2, 1, 0)
	o.Retries(1)
	o.Latencies([]int64{1, 1})
	o.Queue(4, 7)
	o.Stall(4)
	o.SchedLevel(1, 2, 3)
	return o
}

func TestSnapshotImmutable(t *testing.T) {
	o := observedRun(t)
	s := o.Snapshot()
	if s.Counters.Offered != 3 || s.Counters.Delivered != 2 || s.Counters.Cycles != 1 {
		t.Fatalf("snapshot counters: %+v", s.Counters)
	}
	if s.Latency.Count != 2 {
		t.Fatalf("latency count = %d, want 2", s.Latency.Count)
	}
	// Mutating the observer after the snapshot must not change the snapshot.
	o.CycleStart(5)
	o.CycleEnd(5, 0, 0)
	o.Latencies([]int64{4})
	if s.Counters.Offered != 3 || s.Latency.Count != 2 {
		t.Fatal("snapshot mutated by later recording")
	}
	// Mutating the snapshot's slices must not reach the observer.
	s.Counters.WireUse[0] = 999
	s.Latency.Counts[0] = 999
	s2 := o.Snapshot()
	if s2.Counters.WireUse[0] == 999 || s2.Latency.Counts[0] == 999 {
		t.Fatal("snapshot aliases observer arrays")
	}
}

func TestSnapshotSub(t *testing.T) {
	o := observedRun(t)
	before := o.Snapshot()
	o.CycleStart(4)
	o.CycleEnd(4, 0, 0)
	o.Latencies([]int64{2, 2, 2, 2})
	after := o.Snapshot()
	d := after.Sub(before)
	if d.Counters.Cycles != 1 || d.Counters.Offered != 4 || d.Counters.Delivered != 4 {
		t.Fatalf("diff counters: %+v", d.Counters)
	}
	if d.Latency.Count != 4 || d.Latency.Sum != 8 {
		t.Fatalf("diff latency count=%d sum=%d, want 4, 8", d.Latency.Count, d.Latency.Sum)
	}
	// The pre-existing observations must have cancelled out.
	if d.Counters.Retried != 0 || d.QueueDepth.Count != 0 {
		t.Fatalf("diff leaked earlier observations: %+v", d.Counters)
	}
	// QueuePeak is a running max, not a counter: Sub keeps the later value.
	if d.Counters.QueuePeak[4] != 7 {
		t.Fatalf("diff queue peak = %d, want 7", d.Counters.QueuePeak[4])
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	s := observedRun(t).Snapshot()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters.Offered != s.Counters.Offered || back.Latency.Count != s.Latency.Count {
		t.Fatalf("round trip lost data: %+v", back.Counters)
	}
}

func TestWriteHistSummary(t *testing.T) {
	var sb strings.Builder
	if err := observedRun(t).Snapshot().WriteHistSummary(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"delivery latency", "match rounds", "queue depth",
		"per-level utilization", "count 2", "p50<=1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusValid(t *testing.T) {
	o := observedRun(t)
	var buf bytes.Buffer
	err := WritePrometheus(&buf,
		LabeledSnapshot{Labels: []PromLabel{{"tree", "8"}}, Snap: o.Snapshot()},
		LabeledSnapshot{Labels: []PromLabel{{"tree", "16"}}, Snap: o.Snapshot()},
	)
	if err != nil {
		t.Fatal(err)
	}
	text := buf.Bytes()
	if err := ValidateExposition(text); err != nil {
		t.Fatalf("own exposition invalid: %v\n%s", err, text)
	}
	out := string(text)
	for _, want := range []string{
		`fattree_cycles_total{tree="8"} 1`,
		`fattree_messages_offered_total{tree="8"} 3`,
		`fattree_delivery_latency_cycles_bucket{tree="8",le="+Inf"} 2`,
		`fattree_delivery_latency_cycles_count{tree="8"} 2`,
		`fattree_level_utilization_permille_bucket{tree="8",level="0",le="+Inf"}`,
		`fattree_sched_level_cycles_total{tree="8",level="external"}`,
		`fattree_buffered_queue_peak_messages{tree="16"} 7`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// One HELP/TYPE header per family even with two labeled snapshots.
	if n := strings.Count(out, "# TYPE fattree_cycles_total "); n != 1 {
		t.Errorf("fattree_cycles_total TYPE header appears %d times, want 1", n)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	for _, tc := range []struct {
		name, text string
	}{
		{"no type", "fattree_x_total 1\n"},
		{"bad name", "# TYPE 9bad counter\n"},
		{"bad type", "# TYPE fattree_x_total countr\nfattree_x_total 1\n"},
		{"bad value", "# TYPE fattree_x_total counter\nfattree_x_total abc\n"},
		{"unterminated labels", "# TYPE fattree_x_total counter\nfattree_x_total{a=\"b\" 1\n"},
		{"unquoted label", "# TYPE fattree_x_total counter\nfattree_x_total{a=b} 1\n"},
		{"duplicate type", "# TYPE fattree_x_total counter\n# TYPE fattree_x_total counter\n"},
		{"type after samples", "# TYPE fattree_x_total counter\nfattree_x_total 1\n# TYPE fattree_x_total counter\n"},
		{"histogram missing inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_count 1\nh_sum 1\n"},
		{"histogram not cumulative", "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_count 2\nh_sum 2\n"},
		{"histogram inf count mismatch", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_count 3\nh_sum 2\n"},
		{"histogram missing count", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 2\n"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if err := ValidateExposition([]byte(tc.text)); err == nil {
				t.Fatalf("accepted invalid exposition:\n%s", tc.text)
			}
		})
	}
	// And the degenerate valid cases.
	for _, tc := range []struct {
		name, text string
	}{
		{"empty", ""},
		{"comment only", "# scraped at dawn\n"},
		{"timestamped", "# TYPE x counter\nx 1 1700000000000\n"},
		{"escaped labels", "# TYPE x counter\nx{a=\"q\\\"uo\\\\te\\n\"} 1\n"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if err := ValidateExposition([]byte(tc.text)); err != nil {
				t.Fatalf("rejected valid exposition: %v\n%s", err, tc.text)
			}
		})
	}
}

func TestObserverResetClearsHistograms(t *testing.T) {
	o := observedRun(t)
	o.Reset()
	s := o.Snapshot()
	if s.Latency.Count != 0 || s.MatchRounds.Count != 0 || s.QueueDepth.Count != 0 {
		t.Fatalf("histograms survive Reset: %+v", s)
	}
	for _, h := range s.LevelUtil {
		if h.Count != 0 {
			t.Fatal("level-util histogram survives Reset")
		}
	}
}
