package workload

import (
	"testing"
	"testing/quick"

	"fattree/internal/core"
)

// isPermutation checks that each processor appears at most once as a source
// and at most once as a destination, and sources/destinations cover the same
// set of non-fixed points.
func isPermutation(t *testing.T, n int, ms core.MessageSet) {
	t.Helper()
	srcSeen := make([]bool, n)
	dstSeen := make([]bool, n)
	for _, m := range ms {
		if srcSeen[m.Src] {
			t.Fatalf("source %d repeated", m.Src)
		}
		if dstSeen[m.Dst] {
			t.Fatalf("destination %d repeated", m.Dst)
		}
		srcSeen[m.Src] = true
		dstSeen[m.Dst] = true
	}
}

func validateOn(t *testing.T, n int, ms core.MessageSet) {
	t.Helper()
	ft := core.NewConstant(n, 1)
	if err := ms.Validate(ft); err != nil {
		t.Fatalf("invalid workload: %v", err)
	}
}

func TestRandomPermutation(t *testing.T) {
	ms := RandomPermutation(64, 42)
	validateOn(t, 64, ms)
	isPermutation(t, 64, ms)
	if len(ms) < 60 {
		t.Errorf("suspiciously many fixed points: %d messages", len(ms))
	}
	// Determinism: same seed, same workload.
	if !ms.Equal(RandomPermutation(64, 42)) {
		t.Errorf("RandomPermutation not deterministic for fixed seed")
	}
	if ms.Equal(RandomPermutation(64, 43)) {
		t.Errorf("different seeds produced identical permutations")
	}
}

func TestRandom(t *testing.T) {
	ms := Random(32, 500, 7)
	validateOn(t, 32, ms)
	if len(ms) != 500 {
		t.Errorf("Random returned %d messages, want 500", len(ms))
	}
}

func TestBitReversal(t *testing.T) {
	ms := BitReversal(16)
	validateOn(t, 16, ms)
	isPermutation(t, 16, ms)
	// 0b0001 -> 0b1000.
	found := false
	for _, m := range ms {
		if m.Src == 1 && m.Dst == 8 {
			found = true
		}
		// Involution: reversing twice is the identity.
		rev := func(x int) int {
			r := 0
			for i := 0; i < 4; i++ {
				r = r<<1 | (x>>i)&1
			}
			return r
		}
		if rev(m.Src) != m.Dst {
			t.Errorf("bit-reversal wrong: %v", m)
		}
	}
	if !found {
		t.Errorf("expected message 1->8 in 16-point bit reversal")
	}
}

func TestTranspose(t *testing.T) {
	ms := Transpose(16) // 4x4 matrix of 2-bit halves
	validateOn(t, 16, ms)
	isPermutation(t, 16, ms)
	for _, m := range ms {
		row, col := m.Src>>2, m.Src&3
		if m.Dst != col<<2|row {
			t.Errorf("transpose wrong: %v", m)
		}
	}
	// Odd power of two must panic.
	defer func() {
		if recover() == nil {
			t.Errorf("Transpose(8) should panic")
		}
	}()
	Transpose(8)
}

func TestShuffle(t *testing.T) {
	ms := Shuffle(8)
	validateOn(t, 8, ms)
	isPermutation(t, 8, ms)
	want := map[int]int{1: 2, 2: 4, 3: 6, 4: 1, 5: 3, 6: 5} // 0 and 7 are fixed
	for _, m := range ms {
		if want[m.Src] != m.Dst {
			t.Errorf("shuffle wrong: %v (want %d->%d)", m, m.Src, want[m.Src])
		}
		delete(want, m.Src)
	}
	if len(want) != 0 {
		t.Errorf("missing shuffle messages: %v", want)
	}
}

func TestReversal(t *testing.T) {
	ms := Reversal(8)
	validateOn(t, 8, ms)
	isPermutation(t, 8, ms)
	if len(ms) != 8 {
		t.Errorf("even n has no fixed points; got %d messages", len(ms))
	}
}

func TestAllToAll(t *testing.T) {
	ms := AllToAll(8)
	validateOn(t, 8, ms)
	if len(ms) != 56 {
		t.Errorf("AllToAll(8) has %d messages, want 56", len(ms))
	}
	seen := map[core.Message]bool{}
	for _, m := range ms {
		if seen[m] {
			t.Errorf("duplicate message %v", m)
		}
		seen[m] = true
	}
}

func TestKLocalStaysLocal(t *testing.T) {
	ms := KLocal(1024, 2000, 8, 3)
	validateOn(t, 1024, ms)
	for _, m := range ms {
		d := m.Dst - m.Src
		if d < -8 || d > 8 {
			t.Errorf("message %v exceeds radius 8", m)
		}
	}
}

func TestKLocalLoadsOnlyLowTreeLevels(t *testing.T) {
	// Radius-1 traffic on a big tree must leave top channels nearly idle.
	n := 1024
	ft := core.NewConstant(n, 1)
	ms := KLocal(n, 5000, 1, 9)
	loads := core.NewLoads(ft, ms)
	topLoad := 0
	ft.Channels(func(c core.Channel) {
		if ft.Level(c.Node) <= 2 {
			topLoad += loads.Load(c)
		}
	})
	if topLoad > 0 {
		// Radius 1 can cross high channels only at power-of-two boundaries;
		// allow a small number but not a constant fraction.
		if topLoad > len(ms)/100 {
			t.Errorf("local traffic puts %d messages on top channels", topLoad)
		}
	}
}

func TestNearestNeighbor(t *testing.T) {
	ms := NearestNeighbor(8)
	validateOn(t, 8, ms)
	if len(ms) != 14 { // 7 edges × 2 directions
		t.Errorf("NearestNeighbor(8) has %d messages, want 14", len(ms))
	}
}

func TestHotSpot(t *testing.T) {
	ms := HotSpot(64, 100, 5)
	validateOn(t, 64, ms)
	for _, m := range ms {
		if m.Dst != 0 {
			t.Errorf("hot-spot message %v not destined to 0", m)
		}
	}
	// Hot-spot load factor must be ~k on a capacity-1 tree (the destination
	// leaf channel carries everything).
	ft := core.NewConstant(64, 1)
	lam := core.LoadFactor(ft, ms)
	if lam != 100 {
		t.Errorf("hot-spot λ = %v, want 100", lam)
	}
}

func TestPermutationPropertiesQuick(t *testing.T) {
	// Property: permutation generators produce valid permutation workloads
	// for arbitrary power-of-two sizes.
	f := func(expRaw uint8, seed int64) bool {
		exp := int(expRaw)%8 + 2 // n in 4..512
		n := 1 << exp
		for _, ms := range []core.MessageSet{
			RandomPermutation(n, seed), BitReversal(n), Shuffle(n), Reversal(n),
		} {
			srcSeen := make([]bool, n)
			for _, m := range ms {
				if m.Src == m.Dst || m.Src < 0 || m.Src >= n || m.Dst < 0 || m.Dst >= n {
					return false
				}
				if srcSeen[m.Src] {
					return false
				}
				srcSeen[m.Src] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGridMesh(t *testing.T) {
	m := NewGridMesh(4, 4)
	if m.Points() != 16 {
		t.Errorf("Points = %d", m.Points())
	}
	// 4x4 grid: 2*4*3 = 24 edges.
	if len(m.Edges) != 24 {
		t.Errorf("edges = %d, want 24", len(m.Edges))
	}
	ms := m.ExchangeStep()
	validateOn(t, 16, ms)
	if len(ms) != 48 {
		t.Errorf("exchange messages = %d, want 48", len(ms))
	}
}

func TestGridMeshBisection(t *testing.T) {
	// Row-major k×k grid: the halving cut [0, n/2) separates the top k/2 rows
	// from the bottom — exactly k crossing edges (one per column).
	for _, k := range []int{4, 8, 16, 32} {
		m := NewGridMesh(k, k)
		if got := m.BisectionWidth(k * k); got != k {
			t.Errorf("k=%d: bisection width %d, want %d", k, got, k)
		}
	}
}

func TestShuffledMeshDestroysLocality(t *testing.T) {
	k := 16
	good := NewGridMesh(k, k)
	bad := NewGridMeshShuffled(k, k, 1)
	if gw, bw := good.BisectionWidth(k*k), bad.BisectionWidth(k*k); bw <= 2*gw {
		t.Errorf("shuffled mesh bisection %d not clearly worse than row-major %d", bw, gw)
	}
}

func TestMeshLocalityOnTree(t *testing.T) {
	// Row-major mesh exchange loads the root channels with Θ(sqrt n)
	// messages, not Θ(n): measure and compare.
	k := 32
	n := k * k
	ft := core.NewConstant(n, 1)
	ms := NewGridMesh(k, k).ExchangeStep()
	loads := core.NewLoads(ft, ms)
	rootKidUp := loads.Load(core.Channel{Node: 2, Dir: core.Up})
	if rootKidUp != k {
		t.Errorf("root-crossing load = %d, want k = %d", rootKidUp, k)
	}
}
