package workload

import (
	"fmt"
	"math/rand"

	"fattree/internal/core"
)

// This file generates the planar finite-element workloads that motivate
// fat-trees in the paper's introduction: "many finite-element problems are
// planar, and planar graphs have a bisection width of size O(sqrt n)", so a
// hypercube's full bandwidth is wasted on them while a fat-tree can be scaled
// down to match.

// FEMesh is a planar finite-element mesh: nodes are mesh points assigned to
// processors, and Edges are the adjacency of the stiffness matrix. A
// relaxation step exchanges one message in each direction along every edge.
type FEMesh struct {
	// Rows, Cols give the grid dimensions (Rows*Cols mesh points).
	Rows, Cols int
	// Assign maps mesh point index (r*Cols + c) to a processor.
	Assign []int
	// Edges lists undirected mesh edges as [2]int{pointA, pointB}.
	Edges [][2]int
}

// NewGridMesh builds a rows×cols 2-D grid mesh (5-point stencil adjacency)
// whose points are assigned to processors 0..rows*cols-1 in row-major order —
// the natural embedding where processor numbering follows a space-filling
// row-major curve, so grid neighbours are usually numerically close.
func NewGridMesh(rows, cols int) *FEMesh {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("workload: grid mesh %dx%d invalid", rows, cols))
	}
	m := &FEMesh{Rows: rows, Cols: cols, Assign: make([]int, rows*cols)}
	for i := range m.Assign {
		m.Assign[i] = i
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			p := r*cols + c
			if c+1 < cols {
				m.Edges = append(m.Edges, [2]int{p, p + 1})
			}
			if r+1 < rows {
				m.Edges = append(m.Edges, [2]int{p, p + cols})
			}
		}
	}
	return m
}

// NewGridMeshShuffled is NewGridMesh with mesh points assigned to processors
// by a random permutation — the pessimal embedding that destroys locality.
// Comparing the two embeddings quantifies how much of the fat-tree's locality
// advantage comes from a good layout.
func NewGridMeshShuffled(rows, cols int, seed int64) *FEMesh {
	m := NewGridMesh(rows, cols)
	rng := rand.New(rand.NewSource(seed))
	m.Assign = rng.Perm(rows * cols)
	return m
}

// Points returns the number of mesh points (= processors used).
func (m *FEMesh) Points() int { return m.Rows * m.Cols }

// ExchangeStep returns the message set of one relaxation step: one message in
// each direction along every mesh edge, between the processors owning the two
// endpoints. Edges whose endpoints share a processor produce no messages.
func (m *FEMesh) ExchangeStep() core.MessageSet {
	ms := make(core.MessageSet, 0, 2*len(m.Edges))
	for _, e := range m.Edges {
		a, b := m.Assign[e[0]], m.Assign[e[1]]
		if a == b {
			continue
		}
		ms = append(ms, core.Message{Src: a, Dst: b}, core.Message{Src: b, Dst: a})
	}
	return ms
}

// BisectionWidth returns the number of mesh edges crossing the halving cut of
// the processor space [0, n/2) vs [n/2, n) under the current assignment. For
// the row-major embedding of a k×k grid this is Θ(k) = Θ(sqrt n), exhibiting
// the Lipton–Tarjan O(sqrt n) planar bisection the paper cites.
func (m *FEMesh) BisectionWidth(n int) int {
	half := n / 2
	count := 0
	for _, e := range m.Edges {
		a, b := m.Assign[e[0]], m.Assign[e[1]]
		if (a < half) != (b < half) {
			count++
		}
	}
	return count
}
