// Package workload generates message sets that exercise a fat-tree (or any
// routing network on n processors). The generators cover the traffic classes
// the paper's discussion motivates: structured permutations that stress the
// top of the tree (bit-reversal, transpose, shuffle), local traffic that the
// fat-tree routes "within the exchange" (k-local, nearest-neighbour), the
// planar finite-element workloads of the introduction, dense all-to-all
// exchanges, and adversarial hot-spots.
//
// Every randomized generator takes an explicit seed so that experiments are
// reproducible bit-for-bit.
package workload

import (
	"fmt"
	"math/bits"
	"math/rand"

	"fattree/internal/core"
)

// RandomPermutation returns a uniformly random permutation workload: each
// processor sends exactly one message and receives exactly one message.
// Fixed points (p -> p) are dropped since self-messages never enter the
// network, so the result may have slightly fewer than n messages.
func RandomPermutation(n int, seed int64) core.MessageSet {
	requireProcs("RandomPermutation", n)
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	ms := make(core.MessageSet, 0, n)
	for src, dst := range perm {
		if src != dst {
			ms = append(ms, core.Message{Src: src, Dst: dst})
		}
	}
	return ms
}

// Random returns k messages with independently uniform sources and
// destinations (excluding self-loops).
func Random(n, k int, seed int64) core.MessageSet {
	requireProcs("Random", n)
	requireMessages("Random", k)
	rng := rand.New(rand.NewSource(seed))
	ms := make(core.MessageSet, 0, k)
	for len(ms) < k {
		s, d := rng.Intn(n), rng.Intn(n)
		if s != d {
			ms = append(ms, core.Message{Src: s, Dst: d})
		}
	}
	return ms
}

// BitReversal returns the bit-reversal permutation on n = 2^L processors:
// processor with binary address b_{L-1}..b_0 sends to b_0..b_{L-1}. This is a
// classic worst case for tree-structured networks — almost all messages cross
// the root.
func BitReversal(n int) core.MessageSet {
	requirePow2("BitReversal", n)
	lgn := bits.Len(uint(n)) - 1
	ms := make(core.MessageSet, 0, n)
	for p := 0; p < n; p++ {
		d := int(bits.Reverse64(uint64(p)) >> (64 - lgn))
		if d != p {
			ms = append(ms, core.Message{Src: p, Dst: d})
		}
	}
	return ms
}

// Transpose returns the matrix-transpose permutation: viewing the L address
// bits as two halves (row, col), processor (r, c) sends to (c, r). n must be
// an even power of two.
func Transpose(n int) core.MessageSet {
	requirePow2("Transpose", n)
	lgn := bits.Len(uint(n)) - 1
	if lgn%2 != 0 {
		panic(fmt.Sprintf("workload: Transpose needs an even power of two, got n=%d", n))
	}
	half := lgn / 2
	mask := (1 << half) - 1
	ms := make(core.MessageSet, 0, n)
	for p := 0; p < n; p++ {
		row, col := p>>half, p&mask
		d := col<<half | row
		if d != p {
			ms = append(ms, core.Message{Src: p, Dst: d})
		}
	}
	return ms
}

// Shuffle returns the perfect-shuffle permutation (cyclic left rotation of the
// address bits), the interconnection pattern of Schwartz's ultracomputer and
// Stone's shuffle network which the paper discusses.
func Shuffle(n int) core.MessageSet {
	requirePow2("Shuffle", n)
	lgn := bits.Len(uint(n)) - 1
	ms := make(core.MessageSet, 0, n)
	for p := 0; p < n; p++ {
		d := ((p << 1) | (p >> (lgn - 1))) & (n - 1)
		if d != p {
			ms = append(ms, core.Message{Src: p, Dst: d})
		}
	}
	return ms
}

// Reversal returns the "mirror" permutation p -> n-1-p, which sends every
// message across the root.
func Reversal(n int) core.MessageSet {
	ms := make(core.MessageSet, 0, n)
	for p := 0; p < n; p++ {
		if d := n - 1 - p; d != p {
			ms = append(ms, core.Message{Src: p, Dst: d})
		}
	}
	return ms
}

// AllToAll returns the complete exchange: every processor sends one message to
// every other processor — n(n-1) messages. Use small n.
func AllToAll(n int) core.MessageSet {
	ms := make(core.MessageSet, 0, n*(n-1))
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				ms = append(ms, core.Message{Src: s, Dst: d})
			}
		}
	}
	return ms
}

// KLocal returns k messages whose destinations are uniform within a window of
// ±radius of the source (wrapping is not applied; destinations are clamped to
// the address space). Small radii produce traffic that stays low in the tree,
// the regime where fat-trees route "locally without soaking up the precious
// bandwidth higher up in the tree".
func KLocal(n, k, radius int, seed int64) core.MessageSet {
	requireProcs("KLocal", n)
	requireMessages("KLocal", k)
	if radius < 1 {
		panic("workload: KLocal radius must be >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	ms := make(core.MessageSet, 0, k)
	for len(ms) < k {
		s := rng.Intn(n)
		off := rng.Intn(2*radius+1) - radius
		d := s + off
		if d < 0 {
			d = 0
		}
		if d >= n {
			d = n - 1
		}
		if d != s {
			ms = append(ms, core.Message{Src: s, Dst: d})
		}
	}
	return ms
}

// NearestNeighbor returns the 1-D nearest-neighbour exchange: each processor
// sends to both neighbours (boundary processors to their single neighbour) —
// the communication pattern of a 1-D stencil computation.
func NearestNeighbor(n int) core.MessageSet {
	ms := make(core.MessageSet, 0, 2*n)
	for p := 0; p < n; p++ {
		if p > 0 {
			ms = append(ms, core.Message{Src: p, Dst: p - 1})
		}
		if p < n-1 {
			ms = append(ms, core.Message{Src: p, Dst: p + 1})
		}
	}
	return ms
}

// HotSpot returns k messages all destined to processor 0 from uniformly random
// sources — the adversarial concentration workload. The load factor is driven
// by the destination's leaf channel.
func HotSpot(n, k int, seed int64) core.MessageSet {
	requireProcs("HotSpot", n)
	requireMessages("HotSpot", k)
	rng := rand.New(rand.NewSource(seed))
	ms := make(core.MessageSet, 0, k)
	for len(ms) < k {
		if s := rng.Intn(n); s != 0 {
			ms = append(ms, core.Message{Src: s, Dst: 0})
		}
	}
	return ms
}

// ExternalIO returns an I/O workload through the root interface (Section II:
// "the channel leaving the root of the tree corresponds to an interface with
// the external world"): `reads` input messages from the external world to
// uniformly random processors and `writes` output messages from uniformly
// random processors to the external world.
func ExternalIO(n, reads, writes int, seed int64) core.MessageSet {
	if n < 1 {
		panic(fmt.Sprintf("workload: ExternalIO needs n >= 1 processors, got %d", n))
	}
	requireMessages("ExternalIO", reads)
	requireMessages("ExternalIO", writes)
	rng := rand.New(rand.NewSource(seed))
	ms := make(core.MessageSet, 0, reads+writes)
	for i := 0; i < reads; i++ {
		ms = append(ms, core.Message{Src: core.External, Dst: rng.Intn(n)})
	}
	for i := 0; i < writes; i++ {
		ms = append(ms, core.Message{Src: rng.Intn(n), Dst: core.External})
	}
	return ms
}

// requirePow2 panics unless n is a power of two >= 2.
func requirePow2(who string, n int) {
	if n < 2 || n&(n-1) != 0 {
		panic(fmt.Sprintf("workload: %s needs a power-of-two n >= 2, got %d", who, n))
	}
}

// requireProcs panics unless n >= 2. Every generator that redraws until
// src != dst needs at least two distinct processors, or its rejection loop
// can never terminate (the historical Funnel hang).
func requireProcs(who string, n int) {
	if n < 2 {
		panic(fmt.Sprintf("workload: %s needs n >= 2 processors, got %d", who, n))
	}
}

// requireMessages panics unless k >= 0. A negative count used to fall through
// the `len(ms) < k` loops and silently return an empty set.
func requireMessages(who string, k int) {
	if k < 0 {
		panic(fmt.Sprintf("workload: %s needs a non-negative message count, got %d", who, k))
	}
}
