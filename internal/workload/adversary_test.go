package workload

import (
	"testing"
	"testing/quick"

	"fattree/internal/core"
)

func TestLevelStressLCAs(t *testing.T) {
	n := 64
	ft := core.NewConstant(n, 1)
	for level := 0; level < 6; level++ {
		ms := LevelStress(n, level, 100, int64(level))
		validateOn(t, n, ms)
		for _, m := range ms {
			lca := ft.LCA(m.Src, m.Dst)
			if got := ft.Level(lca); got != level {
				t.Fatalf("level %d: message %v has LCA at level %d", level, m, got)
			}
		}
	}
}

func TestLevelStressLoadsTargetLevel(t *testing.T) {
	// Stress at level 2 must leave levels 0..2 channels idle.
	n := 64
	ft := core.NewConstant(n, 1)
	ms := LevelStress(n, 2, 200, 7)
	loads := core.NewLoads(ft, ms)
	ft.Channels(func(c core.Channel) {
		if ft.Level(c.Node) <= 2 && loads.Load(c) != 0 {
			t.Errorf("channel %v (level %d) loaded by level-2 stress", c, ft.Level(c.Node))
		}
	})
}

func TestLevelStressRejectsBadLevel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("leaf level should be rejected")
		}
	}()
	LevelStress(64, 6, 10, 1)
}

func TestFunnel(t *testing.T) {
	ms := Funnel(128, 40, 8, 300, 3)
	validateOn(t, 128, ms)
	for _, m := range ms {
		if m.Dst < 40 || m.Dst >= 48 {
			t.Fatalf("message %v outside funnel window", m)
		}
	}
	// The window's covering subtree dominates the load factor.
	ft := core.NewConstant(128, 1)
	lam := core.LoadFactor(ft, ms)
	if lam < 300/8/2 {
		t.Errorf("funnel λ = %v suspiciously small", lam)
	}
}

func TestRandomTreeProfileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		ft := RandomTreeProfile(64, 20, seed)
		for k := 1; k <= ft.Levels(); k++ {
			if ft.CapacityAtLevel(k) > ft.CapacityAtLevel(k-1) {
				return false
			}
			if ft.CapacityAtLevel(k) < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
