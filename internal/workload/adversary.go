package workload

import (
	"fmt"
	"math/rand"

	"fattree/internal/core"
)

// Adversarial generators: message sets engineered to concentrate load at a
// chosen part of the tree, used by stress tests and scheduler ablations.

// LevelStress returns k messages whose least common ancestors all sit at tree
// level `level` (0 = root): each message crosses a random switch of that
// level from its left subtree to its right subtree. The load lands exactly on
// the channels at levels level+1 .. lg n, peaking just below the chosen
// switches — the knob for probing one rung of the capacity profile.
func LevelStress(n, level, k int, seed int64) core.MessageSet {
	requirePow2("LevelStress", n)
	lgn := 0
	for 1<<uint(lgn) < n {
		lgn++
	}
	if level < 0 || level >= lgn {
		panic(fmt.Sprintf("workload: LevelStress level %d outside [0,%d)", level, lgn))
	}
	requireMessages("LevelStress", k)
	rng := rand.New(rand.NewSource(seed))
	subtreeLeaves := n >> uint(level+1) // leaves under each child of a level node
	ms := make(core.MessageSet, 0, k)
	for len(ms) < k {
		node := rng.Intn(1 << uint(level)) // which switch at the level
		base := node * 2 * subtreeLeaves
		src := base + rng.Intn(subtreeLeaves)
		dst := base + subtreeLeaves + rng.Intn(subtreeLeaves)
		if rng.Intn(2) == 0 {
			src, dst = dst, src
		}
		ms = append(ms, core.Message{Src: src, Dst: dst})
	}
	return ms
}

// Funnel returns k messages from uniformly random sources into a contiguous
// destination window [lo, lo+width) — a multi-processor hot region whose
// shared subtree becomes the bottleneck.
//
// Validation is up front, like every other generator here: Funnel used to
// accept n = 1 (window [0,1)) and then spin forever because every draw gave
// src == dst. requirePow2 forces n >= 2, so a src outside any window — and
// hence termination of the rejection loop — is always reachable.
func Funnel(n, lo, width, k int, seed int64) core.MessageSet {
	requirePow2("Funnel", n)
	requireMessages("Funnel", k)
	if lo < 0 || width < 1 || lo+width > n {
		panic(fmt.Sprintf("workload: Funnel window [%d,%d) outside [0,%d)", lo, lo+width, n))
	}
	rng := rand.New(rand.NewSource(seed))
	ms := make(core.MessageSet, 0, k)
	for len(ms) < k {
		src := rng.Intn(n)
		dst := lo + rng.Intn(width)
		if src != dst {
			ms = append(ms, core.Message{Src: src, Dst: dst})
		}
	}
	return ms
}

// RandomTreeProfile builds a random but monotone (non-increasing toward the
// leaves) capacity profile for property tests: cap at level k is drawn in
// [1, maxCap] with cap(k) <= cap(k-1).
func RandomTreeProfile(n, maxCap int, seed int64) *core.FatTree {
	requirePow2("RandomTreeProfile", n)
	rng := rand.New(rand.NewSource(seed))
	lgn := 0
	for 1<<uint(lgn) < n {
		lgn++
	}
	caps := make([]int, lgn+1)
	cur := 1 + rng.Intn(maxCap)
	for k := 0; k <= lgn; k++ {
		caps[k] = cur
		if cur > 1 {
			cur = 1 + rng.Intn(cur)
		}
	}
	return core.New(n, func(k int) int { return caps[k] })
}
