package workload

import "testing"

// TestGeneratorValidation pins the uniform up-front validation contract of
// every generator: malformed arguments panic immediately with a message that
// names the generator and the offending value, instead of hanging (the
// historical Funnel n=1 loop) or silently returning an empty set (negative
// message counts).
func TestGeneratorValidation(t *testing.T) {
	cases := []struct {
		name string
		call func()
		want string
	}{
		{"RandomPermutation n=1", func() { RandomPermutation(1, 1) },
			"workload: RandomPermutation needs n >= 2 processors, got 1"},
		{"Random n=1", func() { Random(1, 4, 1) },
			"workload: Random needs n >= 2 processors, got 1"},
		{"Random k<0", func() { Random(8, -1, 1) },
			"workload: Random needs a non-negative message count, got -1"},
		{"BitReversal non-pow2", func() { BitReversal(12) },
			"workload: BitReversal needs a power-of-two n >= 2, got 12"},
		{"Transpose non-pow2", func() { Transpose(6) },
			"workload: Transpose needs a power-of-two n >= 2, got 6"},
		{"Shuffle non-pow2", func() { Shuffle(10) },
			"workload: Shuffle needs a power-of-two n >= 2, got 10"},
		{"KLocal n=1", func() { KLocal(1, 4, 2, 1) },
			"workload: KLocal needs n >= 2 processors, got 1"},
		{"KLocal k<0", func() { KLocal(8, -2, 2, 1) },
			"workload: KLocal needs a non-negative message count, got -2"},
		{"HotSpot n=1", func() { HotSpot(1, 4, 1) },
			"workload: HotSpot needs n >= 2 processors, got 1"},
		{"HotSpot k<0", func() { HotSpot(8, -3, 1) },
			"workload: HotSpot needs a non-negative message count, got -3"},
		{"ExternalIO n=0", func() { ExternalIO(0, 1, 1, 1) },
			"workload: ExternalIO needs n >= 1 processors, got 0"},
		{"ExternalIO reads<0", func() { ExternalIO(8, -1, 0, 1) },
			"workload: ExternalIO needs a non-negative message count, got -1"},
		{"LevelStress k<0", func() { LevelStress(8, 1, -1, 1) },
			"workload: LevelStress needs a non-negative message count, got -1"},
		{"Funnel n=1", func() { Funnel(1, 0, 1, 4, 1) },
			"workload: Funnel needs a power-of-two n >= 2, got 1"},
		{"Funnel non-pow2", func() { Funnel(12, 0, 4, 4, 1) },
			"workload: Funnel needs a power-of-two n >= 2, got 12"},
		{"Funnel k<0", func() { Funnel(8, 0, 4, -1, 1) },
			"workload: Funnel needs a non-negative message count, got -1"},
		{"Funnel bad window", func() { Funnel(8, 6, 4, 4, 1) },
			"workload: Funnel window [6,10) outside [0,8)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%s: no panic", tc.name)
				}
				if msg, ok := r.(string); !ok || msg != tc.want {
					t.Fatalf("%s: panic %q, want %q", tc.name, r, tc.want)
				}
			}()
			tc.call()
		})
	}
}

// TestFunnelDegenerateWindowTerminates is the regression test for the Funnel
// hang: the smallest valid configuration whose window covers a single
// processor must terminate (pre-fix, n=1 spun forever; post-fix n=1 panics,
// and every valid n >= 2 draw loop can always escape the window).
func TestFunnelDegenerateWindowTerminates(t *testing.T) {
	ms := Funnel(2, 0, 1, 64, 7)
	if len(ms) != 64 {
		t.Fatalf("Funnel(2, 0, 1, 64): %d messages, want 64", len(ms))
	}
	for _, m := range ms {
		if m.Src != 1 || m.Dst != 0 {
			t.Fatalf("Funnel(2, 0, 1, ...) produced %+v; only 1->0 is valid", m)
		}
	}
}
