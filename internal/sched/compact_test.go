package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fattree/internal/core"
	"fattree/internal/workload"
)

func TestCompactPreservesValidity(t *testing.T) {
	for _, n := range []int{64, 256} {
		ft := core.NewUniversal(n, n/4)
		for seed := int64(0); seed < 3; seed++ {
			ms := workload.Random(n, 5*n, seed)
			s := OffLineCompact(ft, ms)
			if err := s.Verify(ms); err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
		}
	}
}

func TestCompactNeverLonger(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (3 + rng.Intn(4))
		ft := workload.RandomTreeProfile(n, 10, seed)
		ms := workload.Random(n, 1+rng.Intn(5*n), seed+1)
		plain := OffLine(ft, ms)
		packed := Compact(plain)
		if err := packed.Verify(ms); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return packed.Length() <= plain.Length() &&
			float64(packed.Length()) >= core.LoadFactor(ft, ms)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCompactActuallyHelpsOnMultiLevelTraffic(t *testing.T) {
	// Traffic spread over all levels: the level-sequential schedule wastes
	// slots that compaction reclaims.
	n := 256
	ft := core.NewUniversal(n, n/4)
	ms := core.Concat(
		workload.KLocal(n, 2*n, 2, 1),
		workload.RandomPermutation(n, 2),
		workload.LevelStress(n, 3, n, 3),
	)
	plain := OffLine(ft, ms)
	packed := Compact(plain)
	if packed.Length() >= plain.Length() {
		t.Errorf("compaction did not help: %d vs %d cycles", packed.Length(), plain.Length())
	}
}

func TestUtilizationRisesWithCompaction(t *testing.T) {
	ft := core.NewUniversal(128, 32)
	ms := core.Concat(
		workload.KLocal(128, 256, 2, 1),
		workload.RandomPermutation(128, 2),
	)
	plain := OffLine(ft, ms)
	packed := Compact(plain)
	up, pp := plain.Utilization(), packed.Utilization()
	if pp < up {
		t.Errorf("compaction lowered utilization: %.3f -> %.3f", up, pp)
	}
	if up <= 0 || up > 1 {
		t.Errorf("utilization out of range: %v", up)
	}
}

func TestUtilizationEmpty(t *testing.T) {
	ft := core.NewConstant(8, 1)
	s := OffLine(ft, nil)
	if s.Utilization() != 0 {
		t.Errorf("empty schedule utilization %v", s.Utilization())
	}
}

func TestCompactIdempotent(t *testing.T) {
	ft := core.NewUniversal(64, 16)
	ms := workload.Random(64, 300, 9)
	once := Compact(OffLine(ft, ms))
	twice := Compact(once)
	if twice.Length() != once.Length() {
		t.Errorf("compaction not idempotent: %d -> %d", once.Length(), twice.Length())
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	for _, n := range []int{64, 256} {
		ft := core.NewUniversal(n, n/4)
		for seed := int64(0); seed < 3; seed++ {
			ms := workload.Random(n, 4*n, seed)
			a := OffLine(ft, ms)
			b := OffLineParallel(ft, ms)
			if a.Length() != b.Length() {
				t.Fatalf("n=%d seed=%d: lengths differ %d vs %d", n, seed, a.Length(), b.Length())
			}
			for i := range a.Cycles {
				if !a.Cycles[i].Equal(b.Cycles[i]) {
					t.Fatalf("n=%d seed=%d: cycle %d differs", n, seed, i)
				}
			}
		}
	}
}

func TestParallelValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (3 + rng.Intn(3))
		ft := workload.RandomTreeProfile(n, 8, seed)
		ms := workload.Random(n, 1+rng.Intn(4*n), seed+1)
		s := OffLineParallel(ft, ms)
		return s.Verify(ms) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
