package sched

import (
	"encoding/json"
	"fmt"
	"io"

	"fattree/internal/core"
)

// Schedules are compiled artifacts — Section II's off-line setting has the
// switch program "compiled, as when simulating a large VLSI design or
// emulating a fixed-connection network" — so they need a durable format.
// This file serializes schedules to JSON: portable between the scheduler
// host and the machine (or between runs of the cmd tools).

// scheduleJSON is the wire format.
type scheduleJSON struct {
	// Processors and Capacities identify the target fat-tree: a schedule is
	// only valid for the machine it was compiled for.
	Processors int     `json:"processors"`
	Capacities []int   `json:"capacities"` // per level, 0 = root
	LoadFactor float64 `json:"loadFactor"`
	Bound      float64 `json:"bound"`
	// Cycles lists each delivery cycle's messages as [src, dst] pairs
	// (External is -1).
	Cycles [][][2]int `json:"cycles"`
}

// WriteTo serializes the schedule as JSON.
func (s *Schedule) WriteTo(w io.Writer) (int64, error) {
	sj := scheduleJSON{
		Processors: s.Tree.Processors(),
		LoadFactor: s.LoadFactor,
		Bound:      s.Bound,
		Cycles:     make([][][2]int, len(s.Cycles)),
	}
	for k := 0; k <= s.Tree.Levels(); k++ {
		sj.Capacities = append(sj.Capacities, s.Tree.CapacityAtLevel(k))
	}
	for i, cyc := range s.Cycles {
		sj.Cycles[i] = make([][2]int, len(cyc))
		for j, m := range cyc {
			sj.Cycles[i][j] = [2]int{m.Src, m.Dst}
		}
	}
	cw := &countingWriter{w: w}
	enc := json.NewEncoder(cw)
	err := enc.Encode(sj)
	return cw.n, err
}

// ReadSchedule deserializes a schedule and binds it to the given fat-tree,
// verifying that the tree matches the one the schedule was compiled for
// (processor count and level capacities).
func ReadSchedule(r io.Reader, t core.Topology) (*Schedule, error) {
	var sj scheduleJSON
	if err := json.NewDecoder(r).Decode(&sj); err != nil {
		return nil, fmt.Errorf("sched: decoding schedule: %w", err)
	}
	if sj.Processors != t.Processors() {
		return nil, fmt.Errorf("sched: schedule compiled for n=%d, tree has n=%d",
			sj.Processors, t.Processors())
	}
	if len(sj.Capacities) != t.Levels()+1 {
		return nil, fmt.Errorf("sched: schedule has %d capacity levels, tree has %d",
			len(sj.Capacities), t.Levels()+1)
	}
	for k, c := range sj.Capacities {
		if t.CapacityAtLevel(k) != c {
			return nil, fmt.Errorf("sched: capacity mismatch at level %d: schedule %d, tree %d",
				k, c, t.CapacityAtLevel(k))
		}
	}
	s := &Schedule{Tree: t, LoadFactor: sj.LoadFactor, Bound: sj.Bound}
	for _, cyc := range sj.Cycles {
		out := make(core.MessageSet, len(cyc))
		for j, pair := range cyc {
			out[j] = core.Message{Src: pair[0], Dst: pair[1]}
		}
		s.Cycles = append(s.Cycles, out)
	}
	return s, nil
}

// Clone returns a deep copy of the schedule with independently owned cycle
// storage. Schedules produced by a reusable Scheduler are loans from its
// arena, invalidated by the scheduler's next call; Clone is the escape hatch
// that turns a loan into a durable artifact (the Tree pointer is shared —
// fat-trees are immutable apart from capacity overrides).
func (s *Schedule) Clone() *Schedule {
	out := &Schedule{Tree: s.Tree, LoadFactor: s.LoadFactor, Bound: s.Bound}
	if s.Cycles != nil {
		out.Cycles = make([]core.MessageSet, len(s.Cycles))
		for i, cyc := range s.Cycles {
			out.Cycles[i] = cyc.Clone()
		}
	}
	return out
}

// countingWriter tracks bytes written for the io.WriterTo contract.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
