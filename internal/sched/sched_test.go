package sched

import (
	"math"
	"math/rand"
	"testing"

	"fattree/internal/core"
	"fattree/internal/workload"
)

// crossingSet builds k random messages crossing node v of t left-to-right.
func crossingSet(t *core.FatTree, v, k int, seed int64) core.MessageSet {
	rng := rand.New(rand.NewSource(seed))
	lo, _ := t.SubtreeLeaves(2 * v)
	_, hi := t.SubtreeLeaves(2*v + 1)
	mid := (lo + hi) / 2
	ms := make(core.MessageSet, 0, k)
	for i := 0; i < k; i++ {
		src := lo + rng.Intn(mid-lo)
		dst := mid + rng.Intn(hi-mid)
		ms = append(ms, core.Message{Src: src, Dst: dst})
	}
	return ms
}

func TestEvenBisectSplitsEveryChannelEvenly(t *testing.T) {
	ft := core.NewConstant(64, 1)
	for _, v := range []int{1, 2, 5, 12} {
		for trial := int64(0); trial < 10; trial++ {
			q := crossingSet(ft, v, 50+int(trial)*13, trial)
			a, b := EvenBisect(ft, v, q)
			if len(a)+len(b) != len(q) {
				t.Fatalf("node %d: bisect lost messages: %d + %d != %d", v, len(a), len(b), len(q))
			}
			if !core.Concat(a, b).Equal(q) {
				t.Fatalf("node %d: bisect is not a partition", v)
			}
			la, lb := core.NewLoads(ft, a), core.NewLoads(ft, b)
			ft.Channels(func(c core.Channel) {
				d := la.Load(c) - lb.Load(c)
				if d < -1 || d > 1 {
					t.Errorf("node %d trial %d: channel %v split %d vs %d",
						v, trial, c, la.Load(c), lb.Load(c))
				}
				// The paper's sharper form: load(a,c) = ceil(load(q,c)/2).
				total := la.Load(c) + lb.Load(c)
				if la.Load(c) != (total+1)/2 && la.Load(c) != total/2 {
					t.Errorf("node %d: channel %v: halves %d/%d of %d not floor/ceil",
						v, c, la.Load(c), lb.Load(c), total)
				}
			})
		}
	}
}

func TestEvenBisectSmallCases(t *testing.T) {
	ft := core.NewConstant(8, 1)
	// Empty.
	a, b := EvenBisect(ft, 1, nil)
	if a != nil || b != nil {
		t.Errorf("empty bisect should return nils")
	}
	// Singleton.
	a, b = EvenBisect(ft, 1, core.MessageSet{{Src: 0, Dst: 7}})
	if len(a) != 1 || len(b) != 0 {
		t.Errorf("singleton bisect: %d/%d", len(a), len(b))
	}
	// A pair from the same source must split across halves (leaf channel
	// load 2 must split 1/1).
	a, b = EvenBisect(ft, 1, core.MessageSet{{Src: 0, Dst: 7}, {Src: 0, Dst: 6}})
	if len(a) != 1 || len(b) != 1 {
		t.Errorf("same-source pair split %d/%d, want 1/1", len(a), len(b))
	}
}

func TestEvenBisectRightToLeft(t *testing.T) {
	ft := core.NewConstant(16, 1)
	// All sources in the right subtree of the root.
	q := core.MessageSet{{Src: 8, Dst: 0}, {Src: 9, Dst: 1}, {Src: 10, Dst: 2}, {Src: 11, Dst: 3}, {Src: 8, Dst: 1}, {Src: 9, Dst: 0}}
	a, b := EvenBisect(ft, 1, q)
	if len(a)+len(b) != len(q) {
		t.Fatalf("lost messages")
	}
	la, lb := core.NewLoads(ft, a), core.NewLoads(ft, b)
	ft.Channels(func(c core.Channel) {
		if d := la.Load(c) - lb.Load(c); d < -1 || d > 1 {
			t.Errorf("channel %v split unevenly: %d vs %d", c, la.Load(c), lb.Load(c))
		}
	})
}

func TestEvenBisectRejectsNonCrossing(t *testing.T) {
	ft := core.NewConstant(8, 1)
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic for non-crossing message")
		}
	}()
	// {0,1} has LCA below the root — not a root crossing.
	EvenBisect(ft, 1, core.MessageSet{{Src: 0, Dst: 7}, {Src: 0, Dst: 1}})
}

func TestEvenBisectDuplicates(t *testing.T) {
	ft := core.NewConstant(8, 1)
	q := core.MessageSet{{Src: 0, Dst: 7}, {Src: 0, Dst: 7}, {Src: 0, Dst: 7}, {Src: 0, Dst: 7}}
	a, b := EvenBisect(ft, 1, q)
	if len(a) != 2 || len(b) != 2 {
		t.Errorf("duplicate set split %d/%d, want 2/2", len(a), len(b))
	}
}

func schedulersUnderTest() map[string]func(core.Topology, core.MessageSet) *Schedule {
	return map[string]func(core.Topology, core.MessageSet) *Schedule{
		"OffLine":    OffLine,
		"OffLineBig": OffLineBig,
		"Greedy":     Greedy,
	}
}

func TestSchedulesAreValidPartitions(t *testing.T) {
	trees := map[string]*core.FatTree{
		"constant2":  core.NewConstant(64, 2),
		"universal":  core.NewUniversal(64, 16),
		"full":       core.NewUniversal(64, 64),
		"skinny":     core.NewConstant(64, 1),
		"doubling":   core.NewDoubling(64),
		"overridden": func() *core.FatTree { ft := core.NewConstant(64, 4); ft.SetChannelCapacity(3, 1); return ft }(),
	}
	workloads := map[string]core.MessageSet{
		"perm":     workload.RandomPermutation(64, 1),
		"reversal": workload.Reversal(64),
		"random":   workload.Random(64, 300, 2),
		"hotspot":  workload.HotSpot(64, 50, 3),
		"local":    workload.KLocal(64, 200, 2, 4),
		"empty":    nil,
	}
	for tn, ft := range trees {
		for wn, ms := range workloads {
			for sn, f := range schedulersUnderTest() {
				s := f(ft, ms)
				if err := s.Verify(ms); err != nil {
					t.Errorf("%s/%s/%s: %v", tn, wn, sn, err)
				}
			}
		}
	}
}

func TestTheorem1Bound(t *testing.T) {
	// d <= 2(ceil(λ)+1)·lg n for the Theorem 1 scheduler.
	for _, n := range []int{16, 64, 256} {
		ft := core.NewConstant(n, 1)
		for seed := int64(0); seed < 5; seed++ {
			ms := workload.Random(n, 4*n, seed)
			s := OffLine(ft, ms)
			lam := core.LoadFactor(ft, ms)
			bound := 2 * (math.Ceil(lam) + 1) * float64(ft.Levels())
			if float64(s.Length()) > bound {
				t.Errorf("n=%d seed=%d: d=%d exceeds Theorem 1 bound %.0f (λ=%.1f)",
					n, seed, s.Length(), bound, lam)
			}
			if float64(s.Length()) < lam {
				t.Errorf("n=%d seed=%d: d=%d below the λ lower bound %.1f — schedule invalid?",
					n, seed, s.Length(), lam)
			}
		}
	}
}

func TestCorollary2Bound(t *testing.T) {
	// With cap(c) >= α·lg n everywhere, d <= 2(α/(α-1))·λ(M) (and at least 1).
	for _, n := range []int{64, 256} {
		lgn := core.Lg(n)
		for _, alpha := range []int{2, 4} {
			ft := core.NewConstant(n, alpha*lgn)
			for seed := int64(0); seed < 5; seed++ {
				ms := workload.Random(n, 8*n, seed)
				s := OffLineBig(ft, ms)
				if err := s.Verify(ms); err != nil {
					t.Fatalf("n=%d α=%d: invalid schedule: %v", n, alpha, err)
				}
				lam := core.LoadFactor(ft, ms)
				bound := 2 * float64(alpha) / float64(alpha-1) * lam
				if bound < 1 {
					bound = 1
				}
				if float64(s.Length()) > bound+1e-9 {
					t.Errorf("n=%d α=%d seed=%d: d=%d exceeds Corollary 2 bound %.2f (λ=%.2f)",
						n, alpha, seed, s.Length(), bound, lam)
				}
			}
		}
	}
}

func TestOffLineBigAvoidsLogFactor(t *testing.T) {
	// On a fat-tree with big channels (α = 2), Corollary 2 schedules cost at
	// most 4λ + O(1) cycles — far below the λ·lg n worst case of Theorem 1.
	n := 256
	ft := core.NewConstant(n, 2*core.Lg(n))
	ms := workload.Random(n, 16*n, 7)
	big := OffLineBig(ft, ms)
	if err := big.Verify(ms); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	lam := core.LoadFactor(ft, ms)
	if float64(big.Length()) > 4*lam+4 {
		t.Errorf("OffLineBig d=%d exceeds 4λ+4 = %.1f", big.Length(), 4*lam+4)
	}
	if float64(big.Length()) > lam*float64(ft.Levels())/2 {
		t.Errorf("OffLineBig d=%d did not clearly avoid the lg n factor (λ·lg n/2 = %.0f)",
			big.Length(), lam*float64(ft.Levels())/2)
	}
}

func TestScheduleLowerBound(t *testing.T) {
	// No scheduler can beat ceil(λ): spot-check the three of them.
	n := 64
	ft := core.NewUniversal(n, 16)
	ms := workload.BitReversal(n)
	lam := core.LoadFactor(ft, ms)
	for name, f := range schedulersUnderTest() {
		if d := f(ft, ms).Length(); float64(d) < lam {
			t.Errorf("%s: %d cycles < λ = %.2f — impossible, schedule must be invalid", name, d, lam)
		}
	}
}

func TestOffLineDeterminism(t *testing.T) {
	ft := core.NewUniversal(128, 32)
	ms := workload.Random(128, 500, 9)
	a, b := OffLine(ft, ms), OffLine(ft, ms)
	if a.Length() != b.Length() {
		t.Fatalf("nondeterministic schedule length: %d vs %d", a.Length(), b.Length())
	}
	for i := range a.Cycles {
		if !a.Cycles[i].Equal(b.Cycles[i]) {
			t.Fatalf("cycle %d differs between runs", i)
		}
	}
}

func TestOneCycleInputSchedulesInFewCycles(t *testing.T) {
	// A message set with λ' <= 1 on a big-channel tree (the Corollary 2
	// regime: every capacity >= 2·lg n) schedules in one delivery cycle.
	n := 64
	ft := core.NewConstant(n, 2*core.Lg(n))
	ms := workload.NearestNeighbor(n)
	if core.LoadFactorWithSlack(ft, ms, core.Lg(n)) > 1 {
		t.Fatalf("precondition: λ' > 1 for nearest-neighbour on the big-channel tree")
	}
	s := OffLineBig(ft, ms)
	if s.Length() != 1 {
		t.Errorf("λ'<=1 input scheduled in %d cycles by OffLineBig, want 1", s.Length())
	}
}

func TestVerifyCatchesBadPartition(t *testing.T) {
	ft := core.NewConstant(8, 1)
	ms := core.MessageSet{{Src: 0, Dst: 7}, {Src: 1, Dst: 6}}
	s := &Schedule{Tree: ft, Cycles: []core.MessageSet{{{Src: 0, Dst: 7}}}}
	if err := s.Verify(ms); err == nil {
		t.Errorf("Verify accepted a lossy schedule")
	}
	s2 := &Schedule{Tree: ft, Cycles: []core.MessageSet{ms}}
	if err := s2.Verify(ms); err == nil {
		t.Errorf("Verify accepted an over-capacity cycle")
	}
}

func TestGreedyWorseOrEqualButValid(t *testing.T) {
	n := 128
	ft := core.NewConstant(n, 1)
	ms := workload.BitReversal(n)
	g := Greedy(ft, ms)
	if err := g.Verify(ms); err != nil {
		t.Fatalf("greedy invalid: %v", err)
	}
	o := OffLine(ft, ms)
	// Greedy has no guarantee; just record if it's dramatically better, which
	// would indicate the off-line schedule is broken.
	if g.Length()*4 < o.Length() {
		t.Errorf("greedy (%d) beats off-line (%d) by >4x — check OffLine", g.Length(), o.Length())
	}
}

func TestMessagesAccounting(t *testing.T) {
	ft := core.NewConstant(16, 1)
	ms := workload.Random(16, 100, 1)
	s := OffLine(ft, ms)
	if s.Messages() != len(ms) {
		t.Errorf("Messages() = %d, want %d", s.Messages(), len(ms))
	}
}
