package sched

import (
	"reflect"
	"runtime"
	"testing"

	"fattree/internal/core"
	"fattree/internal/obsv"
	"fattree/internal/workload"
)

// TestOffLineObserved checks the scheduler wiring of the observability layer:
// the observed scheduler produces the identical schedule, and its per-level
// counters partition the input — every message is attributed to exactly one
// level (its LCA's, or the external block) and every cycle to the level block
// that emitted it.
func TestOffLineObserved(t *testing.T) {
	n := 32
	ft := core.NewUniversal(n, 8)
	ms := workload.Random(n, 4*n, 3)
	// Mix in external traffic so the lg n + 1 block is exercised.
	ms = append(ms, core.Message{Src: core.External, Dst: 5},
		core.Message{Src: 7, Dst: core.External})

	plain := OffLine(ft, ms)
	o := obsv.New(ft)
	observed := OffLineObserved(ft, ms, o)
	if !reflect.DeepEqual(plain, observed) {
		t.Fatal("observer changed the schedule")
	}

	msgs, cycles := int64(0), int64(0)
	for level := range o.C.LevelMessages {
		msgs += o.C.LevelMessages[level]
		cycles += o.C.LevelCycles[level]
	}
	if msgs != int64(len(ms)) {
		t.Fatalf("per-level messages sum to %d, want %d", msgs, len(ms))
	}
	if cycles != int64(plain.Length()) {
		t.Fatalf("per-level cycles sum to %d, want schedule length %d", cycles, plain.Length())
	}
	if o.C.LevelMessages[ft.Levels()+1] != 2 {
		t.Fatalf("external block holds %d messages, want 2", o.C.LevelMessages[ft.Levels()+1])
	}
}

// TestOffLineObservedArenaReuse re-checks the conservation laws on a reused
// arena-backed scheduler: across repeated observed calls on one Scheduler
// (with a different-sized set in between to dirty the slabs), every call must
// attribute exactly its input messages and exactly its schedule's cycles to
// the per-level counters — no double counting from stale arena state and no
// messages lost to recycled buffers.
func TestOffLineObservedArenaReuse(t *testing.T) {
	n := 32
	ft := core.NewUniversal(n, 8)
	ms := workload.Random(n, 4*n, 3)
	ms = append(ms, core.Message{Src: core.External, Dst: 5},
		core.Message{Src: 7, Dst: core.External})
	small := workload.Random(n, n/2, 9)

	want := OffLine(ft, ms)
	sc := NewScheduler(ft)
	o := obsv.New(ft)
	prevMsgs, prevCycles := int64(0), int64(0)
	for round := 0; round < 3; round++ {
		observed := sc.OffLineObserved(ms, o)
		if !reflect.DeepEqual(want, observed) {
			t.Fatalf("round %d: reused observed scheduler changed the schedule", round)
		}
		msgs, cycles := int64(0), int64(0)
		for level := range o.C.LevelMessages {
			msgs += o.C.LevelMessages[level]
			cycles += o.C.LevelCycles[level]
		}
		// Counters are cumulative; each round must add exactly one run's worth.
		if msgs-prevMsgs != int64(len(ms)) {
			t.Fatalf("round %d: %d messages attributed, want %d", round, msgs-prevMsgs, len(ms))
		}
		if cycles-prevCycles != int64(want.Length()) {
			t.Fatalf("round %d: %d cycles attributed, want %d", round, cycles-prevCycles, want.Length())
		}
		prevMsgs, prevCycles = msgs, cycles
		// Dirty the arena with an unobserved, differently sized workload.
		sc.OffLine(small)
	}
}

// TestOffLineObservedWorkerCounts pins the determinism of the observed
// counters across worker counts: the per-level counter snapshot after an
// observed parallel schedule must be bit-identical whether the level fan-out
// ran on 1, 2, or GOMAXPROCS workers, because counter updates happen only at
// the serial merge points.
func TestOffLineObservedWorkerCounts(t *testing.T) {
	n := 64
	ft := core.NewUniversal(n, 16)
	ms := workload.Random(n, 4*n, 5)

	var want obsv.Snapshot
	for i, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		o := obsv.New(ft)
		sc := NewScheduler(ft)
		s := sc.OffLineParallelObserved(ms, workers, o)
		if err := s.Verify(ms); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		snap := o.Snapshot()
		if i == 0 {
			want = snap
			continue
		}
		if !reflect.DeepEqual(want.Counters.LevelMessages, snap.Counters.LevelMessages) {
			t.Errorf("workers=%d: LevelMessages differ from serial:\nwant %v\ngot  %v",
				workers, want.Counters.LevelMessages, snap.Counters.LevelMessages)
		}
		if !reflect.DeepEqual(want.Counters.LevelCycles, snap.Counters.LevelCycles) {
			t.Errorf("workers=%d: LevelCycles differ from serial:\nwant %v\ngot  %v",
				workers, want.Counters.LevelCycles, snap.Counters.LevelCycles)
		}
		if !reflect.DeepEqual(want, snap) {
			t.Errorf("workers=%d: full snapshot (histograms included) differs from serial", workers)
		}
	}
}
