package sched

import (
	"reflect"
	"testing"

	"fattree/internal/core"
	"fattree/internal/obsv"
	"fattree/internal/workload"
)

// TestOffLineObserved checks the scheduler wiring of the observability layer:
// the observed scheduler produces the identical schedule, and its per-level
// counters partition the input — every message is attributed to exactly one
// level (its LCA's, or the external block) and every cycle to the level block
// that emitted it.
func TestOffLineObserved(t *testing.T) {
	n := 32
	ft := core.NewUniversal(n, 8)
	ms := workload.Random(n, 4*n, 3)
	// Mix in external traffic so the lg n + 1 block is exercised.
	ms = append(ms, core.Message{Src: core.External, Dst: 5},
		core.Message{Src: 7, Dst: core.External})

	plain := OffLine(ft, ms)
	o := obsv.New(ft)
	observed := OffLineObserved(ft, ms, o)
	if !reflect.DeepEqual(plain, observed) {
		t.Fatal("observer changed the schedule")
	}

	msgs, cycles := int64(0), int64(0)
	for level := range o.C.LevelMessages {
		msgs += o.C.LevelMessages[level]
		cycles += o.C.LevelCycles[level]
	}
	if msgs != int64(len(ms)) {
		t.Fatalf("per-level messages sum to %d, want %d", msgs, len(ms))
	}
	if cycles != int64(plain.Length()) {
		t.Fatalf("per-level cycles sum to %d, want schedule length %d", cycles, plain.Length())
	}
	if o.C.LevelMessages[ft.Levels()+1] != 2 {
		t.Fatalf("external block holds %d messages, want 2", o.C.LevelMessages[ft.Levels()+1])
	}
}
