package sched

import (
	"testing"
	"testing/quick"

	"fattree/internal/core"
	"fattree/internal/workload"
)

func TestEvenBisectExternalSplitsEvenly(t *testing.T) {
	ft := core.NewUniversal(64, 8)
	var q core.MessageSet
	for p := 0; p < 40; p++ {
		q = append(q, core.Message{Src: p % 64, Dst: core.External})
	}
	a, b := EvenBisectExternal(ft, q)
	if !core.Concat(a, b).Equal(q) {
		t.Fatalf("not a partition")
	}
	la, lb := core.NewLoads(ft, a), core.NewLoads(ft, b)
	ft.Channels(func(c core.Channel) {
		if d := la.Load(c) - lb.Load(c); d < -1 || d > 1 {
			t.Errorf("channel %v split %d vs %d", c, la.Load(c), lb.Load(c))
		}
	})
	// The root channel itself must split within one.
	if d := la.Load(core.Channel{Node: 1, Dir: core.Up}) - lb.Load(core.Channel{Node: 1, Dir: core.Up}); d < -1 || d > 1 {
		t.Errorf("root channel split unevenly")
	}
}

func TestEvenBisectExternalRejectsMixed(t *testing.T) {
	ft := core.NewConstant(8, 1)
	defer func() {
		if recover() == nil {
			t.Errorf("mixed directions accepted")
		}
	}()
	EvenBisectExternal(ft, core.MessageSet{
		{Src: 0, Dst: core.External},
		{Src: core.External, Dst: 1},
	})
}

func TestSchedulersHandleExternalTraffic(t *testing.T) {
	ft := core.NewUniversal(64, 8)
	ms := core.Concat(
		workload.ExternalIO(64, 30, 30, 1),
		workload.RandomPermutation(64, 2),
	)
	for name, f := range map[string]func(core.Topology, core.MessageSet) *Schedule{
		"OffLine":         OffLine,
		"OffLineBig":      OffLineBig,
		"OffLineParallel": OffLineParallel,
		"Greedy":          Greedy,
	} {
		s := f(ft, ms)
		if err := s.Verify(ms); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if float64(s.Length()) < s.LoadFactor {
			t.Errorf("%s: beats λ", name)
		}
	}
}

func TestExternalScheduleRootBound(t *testing.T) {
	// k outputs through a w-root: the schedule needs >= ceil(k/w) cycles and
	// the even bisection should achieve close to it.
	ft := core.NewUniversal(64, 8)
	var ms core.MessageSet
	for i := 0; i < 64; i++ {
		ms = append(ms, core.Message{Src: i, Dst: core.External})
	}
	s := OffLine(ft, ms)
	if err := s.Verify(ms); err != nil {
		t.Fatalf("%v", err)
	}
	if s.Length() < 8 { // 64/8
		t.Errorf("d = %d below the root bound 8", s.Length())
	}
	if s.Length() > 16 {
		t.Errorf("d = %d far above the root bound 8", s.Length())
	}
}

func TestExternalScheduleProperty(t *testing.T) {
	f := func(seed int64) bool {
		ft := workload.RandomTreeProfile(32, 8, seed)
		mod := func(m int64) int {
			v := int(seed % m)
			if v < 0 {
				v = -v
			}
			return v + 1
		}
		ms := core.Concat(
			workload.ExternalIO(32, mod(13), mod(7), seed),
			workload.Random(32, 40, seed+1),
		)
		s := OffLine(ft, ms)
		return s.Verify(ms) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCompactHandlesExternal(t *testing.T) {
	ft := core.NewUniversal(32, 8)
	ms := core.Concat(workload.ExternalIO(32, 10, 10, 3), workload.Random(32, 60, 4))
	s := OffLineCompact(ft, ms)
	if err := s.Verify(ms); err != nil {
		t.Fatalf("%v", err)
	}
}
