package sched

import (
	"reflect"
	"testing"

	"fattree/internal/core"
)

// decodeFuzzMessages turns raw fuzz bytes into a valid message set on a
// deterministic tree: byte 0 picks the tree size and root capacity, then
// each subsequent byte pair is a (src, dst) candidate; self-loops are
// skipped so the set always validates.
func decodeFuzzMessages(data []byte) (*core.FatTree, core.MessageSet) {
	shape := byte(0)
	if len(data) > 0 {
		shape = data[0]
		data = data[1:]
	}
	n := 8 << (shape % 3)        // 8, 16, 32
	w := 1 << (1 + (shape>>2)%4) // 2, 4, 8, 16
	ft := core.NewUniversal(n, w)
	var ms core.MessageSet
	for i := 0; i+1 < len(data) && len(ms) < 4*n; i += 2 {
		src, dst := int(data[i])%n, int(data[i+1])%n
		if src == dst {
			continue
		}
		ms = append(ms, core.Message{Src: src, Dst: dst})
	}
	return ft, ms
}

// FuzzSchedule cross-checks the serial Theorem 1 scheduler against its
// parallel twin on fuzz-generated message sets: both schedules must verify
// as valid partitions of the input, and the parallel schedule must be
// bit-identical to the serial one (same cycles, same bound, same load
// factor) — the deterministic-merge guarantee of internal/par. Seed inputs
// live in testdata/fuzz/FuzzSchedule.
func FuzzSchedule(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 7, 3, 4})
	f.Add([]byte{1, 0, 15, 15, 0, 1, 14, 2, 13, 3, 12})
	f.Add([]byte{9, 5, 5, 5, 6, 5, 7, 5, 8, 6, 5, 7, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		ft, ms := decodeFuzzMessages(data)
		serial := OffLine(ft, ms)
		if err := serial.Verify(ms); err != nil {
			t.Fatalf("OffLine produced an invalid schedule: %v", err)
		}
		for _, workers := range []int{0, 1, 3} {
			parallel := OffLineParallelWorkers(ft, ms, workers)
			if err := parallel.Verify(ms); err != nil {
				t.Fatalf("OffLineParallelWorkers(%d) produced an invalid schedule: %v", workers, err)
			}
			if len(parallel.Cycles) != len(serial.Cycles) {
				t.Fatalf("workers=%d: %d cycles parallel vs %d serial",
					workers, len(parallel.Cycles), len(serial.Cycles))
			}
			for c := range serial.Cycles {
				if !reflect.DeepEqual(serial.Cycles[c], parallel.Cycles[c]) {
					t.Fatalf("workers=%d: cycle %d differs:\nserial   %v\nparallel %v",
						workers, c, serial.Cycles[c], parallel.Cycles[c])
				}
			}
			if serial.Bound != parallel.Bound || serial.LoadFactor != parallel.LoadFactor {
				t.Fatalf("workers=%d: bound/load-factor mismatch", workers)
			}
		}
	})
}
