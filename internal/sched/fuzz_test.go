package sched

import (
	"reflect"
	"runtime"
	"testing"

	"fattree/internal/core"
)

// decodeFuzzMessages turns raw fuzz bytes into a valid message set on a
// deterministic tree: byte 0 picks the tree size and root capacity, then
// each subsequent byte pair is a (src, dst) candidate; self-loops are
// skipped so the set always validates.
func decodeFuzzMessages(data []byte) (*core.FatTree, core.MessageSet) {
	shape := byte(0)
	if len(data) > 0 {
		shape = data[0]
		data = data[1:]
	}
	n := 8 << (shape % 3)        // 8, 16, 32
	w := 1 << (1 + (shape>>2)%4) // 2, 4, 8, 16
	ft := core.NewUniversal(n, w)
	var ms core.MessageSet
	for i := 0; i+1 < len(data) && len(ms) < 4*n; i += 2 {
		src, dst := int(data[i])%n, int(data[i+1])%n
		if src == dst {
			continue
		}
		ms = append(ms, core.Message{Src: src, Dst: dst})
	}
	return ft, ms
}

// sameSchedule fails the test unless got is bit-identical to want — same
// cycles in the same order, same bound, same load factor. Loan semantics make
// call order matter: compare a scheduler's result before its next call.
func sameSchedule(t *testing.T, label string, want, got *Schedule) {
	t.Helper()
	if len(got.Cycles) != len(want.Cycles) {
		t.Fatalf("%s: %d cycles, want %d", label, len(got.Cycles), len(want.Cycles))
	}
	for c := range want.Cycles {
		if !reflect.DeepEqual(want.Cycles[c], got.Cycles[c]) {
			t.Fatalf("%s: cycle %d differs:\nwant %v\ngot  %v",
				label, c, want.Cycles[c], got.Cycles[c])
		}
	}
	if want.Bound != got.Bound || want.LoadFactor != got.LoadFactor {
		t.Fatalf("%s: bound/load-factor mismatch", label)
	}
}

// FuzzSchedule cross-checks the serial Theorem 1 scheduler against its
// parallel twin and against a reused arena-backed Scheduler on fuzz-generated
// message sets: every schedule must verify as a valid partition of the input,
// the parallel schedule must be bit-identical to the serial one for workers
// {1, 2, GOMAXPROCS} (the deterministic-merge guarantee of internal/par), and
// a reused scheduler must match a fresh one across shrinking and regrowing
// message sets (the arena reuse contract of DESIGN.md §9). Seed inputs live
// in testdata/fuzz/FuzzSchedule.
func FuzzSchedule(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 7, 3, 4})
	f.Add([]byte{1, 0, 15, 15, 0, 1, 14, 2, 13, 3, 12})
	f.Add([]byte{9, 5, 5, 5, 6, 5, 7, 5, 8, 6, 5, 7, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		ft, ms := decodeFuzzMessages(data)
		serial := OffLine(ft, ms)
		if err := serial.Verify(ms); err != nil {
			t.Fatalf("OffLine produced an invalid schedule: %v", err)
		}
		sc := NewScheduler(ft)
		for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
			parallel := sc.OffLineParallel(ms, workers)
			if err := parallel.Verify(ms); err != nil {
				t.Fatalf("OffLineParallel(%d) produced an invalid schedule: %v", workers, err)
			}
			sameSchedule(t, "parallel", serial, parallel)
		}
		// Implicit-vs-materialized phase: the scheduler is pure topology
		// arithmetic, so running it against the implicit twin of the same
		// capacity profile must reproduce the materialized schedule bit for
		// bit, serial and parallel.
		imp := core.NewImplicit(ft.Processors(), ft.CapacityAtLevel)
		implicit := OffLine(imp, ms)
		if err := implicit.Verify(ms); err != nil {
			t.Fatalf("OffLine on the implicit tree produced an invalid schedule: %v", err)
		}
		sameSchedule(t, "implicit", serial, implicit)
		si := NewScheduler(imp)
		for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
			parallel := si.OffLineParallel(ms, workers)
			if err := parallel.Verify(ms); err != nil {
				t.Fatalf("implicit OffLineParallel(%d) produced an invalid schedule: %v", workers, err)
			}
			sameSchedule(t, "implicit-parallel", serial, parallel)
		}

		// Scheduler-reuse phases: shrink the message set, then regrow it. The
		// reused scheduler's arena has been stretched by the full set and
		// dirtied by every intermediate call; each result must still be
		// bit-identical to a fresh scheduler's. Each loan is compared before
		// the next call invalidates it.
		phases := []core.MessageSet{ms[:len(ms)/2], ms[:len(ms)/4], ms}
		for i, phase := range phases {
			fresh := OffLine(ft, phase)
			reused := sc.OffLine(phase)
			if err := reused.Verify(phase); err != nil {
				t.Fatalf("phase %d: reused scheduler produced an invalid schedule: %v", i, err)
			}
			sameSchedule(t, "reused", fresh, reused)
		}
	})
}
