package sched

import "fattree/internal/core"

// Compact merges s's delivery cycles greedily into the scheduler's arena:
// each cycle's messages are folded into the earliest prior cycle with spare
// capacity on every affected channel. Theorem 1 schedules are
// level-sequential — the cycles of level L+1 start after level L's even when
// the channels they use are disjoint — so compaction typically removes a
// large fraction of the cycles on workloads whose load spreads across levels,
// without affecting validity (every output cycle is still a one-cycle message
// set). The Theorem 1 upper bound is preserved because compaction never adds
// cycles. s must be a schedule on the scheduler's tree; the result is a loan
// valid until the next Compact/OffLineCompact call on this scheduler (it is
// independent of the OffLine arena, so compacting the last OffLine result is
// safe).
//
//ftlint:loan
//ftlint:hotpath
func (sc *Scheduler) Compact(s *Schedule) *Schedule {
	if s.Tree != sc.tree {
		panic("sched: Compact: schedule belongs to a different fat-tree")
	}
	// Reset the previous call's cycle buffers and load tables; doing it here
	// rather than on return keeps the previous result valid until this call.
	for j := 0; j < sc.cmpUsed; j++ {
		sc.cmpCycles[j] = sc.cmpCycles[j][:0]
		clear(sc.cmpLoads[j])
	}
	used := 0
	for _, cyc := range s.Cycles {
		for _, m := range cyc {
			sc.cmpPath = sc.tree.Path(m, sc.cmpPath[:0])
			placed := false
			for j := 0; j < used; j++ {
				ld := sc.cmpLoads[j]
				fits := true
				for _, c := range sc.cmpPath {
					if int(ld[2*c.Node+int(c.Dir)])+1 > sc.caps[c.Node] {
						fits = false
						break
					}
				}
				if fits {
					for _, c := range sc.cmpPath {
						ld[2*c.Node+int(c.Dir)]++
					}
					sc.cmpCycles[j] = append(sc.cmpCycles[j], m)
					placed = true
					break
				}
			}
			if !placed {
				if used == len(sc.cmpCycles) {
					sc.cmpCycles = append(sc.cmpCycles, nil)
					sc.cmpLoads = append(sc.cmpLoads, make([]int32, 4*sc.n))
				}
				ld := sc.cmpLoads[used]
				for _, c := range sc.cmpPath {
					ld[2*c.Node+int(c.Dir)]++
				}
				sc.cmpCycles[used] = append(sc.cmpCycles[used], m)
				used++
			}
		}
	}
	sc.cmpUsed = used
	sc.cmpOut = Schedule{Tree: s.Tree, LoadFactor: s.LoadFactor, Bound: s.Bound}
	if used > 0 {
		sc.cmpOut.Cycles = sc.cmpCycles[:used]
	}
	return &sc.cmpOut
}

// OffLineCompact schedules ms with Theorem 1 and compacts the result — the
// recommended production entry point: same worst-case guarantee, fewer cycles
// in practice. The result is a loan from the scheduler's arena.
//
//ftlint:loan
func (sc *Scheduler) OffLineCompact(ms core.MessageSet) *Schedule {
	return sc.Compact(sc.schedule(ms, nil, nil))
}

// Compact merges a schedule's delivery cycles greedily (never more cycles,
// usually fewer). It constructs a fresh Scheduler per call, so the result is
// independently owned.
func Compact(s *Schedule) *Schedule {
	//ftlint:ignore loanescape fresh Scheduler per call: its arena is unreachable elsewhere, so the result is independently owned
	return NewScheduler(s.Tree).Compact(s)
}

// OffLineCompact runs the Theorem 1 scheduler and compacts the result. It
// constructs a fresh Scheduler per call; loops should hold a Scheduler and
// call its OffLineCompact method instead.
func OffLineCompact(t core.Topology, ms core.MessageSet) *Schedule {
	//ftlint:ignore loanescape fresh Scheduler per call: its arena is unreachable elsewhere, so the result is independently owned
	return NewScheduler(t).OffLineCompact(ms)
}
