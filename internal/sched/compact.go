package sched

import "fattree/internal/core"

// Compact merges a schedule's delivery cycles greedily: each cycle's
// messages are folded into the earliest prior cycle with spare capacity on
// every affected channel. Theorem 1 schedules are level-sequential — the
// cycles of level L+1 start after level L's even when the channels they use
// are disjoint — so compaction typically removes a large fraction of the
// cycles on workloads whose load spreads across levels, without affecting
// validity (every output cycle is still a one-cycle message set). The
// Theorem 1 upper bound is preserved because compaction never adds cycles.
func Compact(s *Schedule) *Schedule {
	out := &Schedule{Tree: s.Tree, LoadFactor: s.LoadFactor, Bound: s.Bound}
	var loads []*core.Loads
	var buf []core.Channel

	place := func(m core.Message) {
		buf = s.Tree.Path(m, buf[:0])
		for i, l := range loads {
			fits := true
			for _, c := range buf {
				if l.Load(c)+1 > s.Tree.Capacity(c) {
					fits = false
					break
				}
			}
			if fits {
				l.Add(m)
				out.Cycles[i] = append(out.Cycles[i], m)
				return
			}
		}
		l := core.NewLoads(s.Tree, core.MessageSet{m})
		loads = append(loads, l)
		out.Cycles = append(out.Cycles, core.MessageSet{m})
	}

	for _, cyc := range s.Cycles {
		for _, m := range cyc {
			place(m)
		}
	}
	return out
}

// OffLineCompact runs the Theorem 1 scheduler and compacts the result — the
// recommended production entry point: same worst-case guarantee, fewer
// cycles in practice.
func OffLineCompact(t *core.FatTree, ms core.MessageSet) *Schedule {
	return Compact(OffLine(t, ms))
}
