package sched

import (
	"math"
	"runtime"
	"sync"

	"fattree/internal/core"
)

// OffLineParallel is the Theorem 1 scheduler with the per-node partitioning
// parallelized: subtrees rooted at the same level use disjoint channels and
// disjoint message sets, so their matching-and-tracing work is embarrassingly
// parallel. A worker pool of GOMAXPROCS goroutines processes the nodes of
// each level; results are merged deterministically in node order, so the
// schedule is identical to OffLine's.
func OffLineParallel(t *core.FatTree, ms core.MessageSet) *Schedule {
	if err := ms.Validate(t); err != nil {
		panic(err)
	}
	byNode, extOut, extIn := groupByLCA(t, ms)
	s := &Schedule{Tree: t, LoadFactor: core.LoadFactor(t, ms)}
	s.Cycles = append(s.Cycles, externalCycles(t, extOut, extIn)...)
	workers := runtime.GOMAXPROCS(0)

	for level := 0; level < t.Levels(); level++ {
		first := 1 << uint(level)
		type nodeWork struct {
			v int
			x *crossing
		}
		var work []nodeWork
		for v := first; v < 2*first; v++ {
			if x := byNode[v]; x != nil {
				work = append(work, nodeWork{v, x})
			}
		}
		if len(work) == 0 {
			continue
		}

		parts := make([][]core.MessageSet, len(work))
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i := range work {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				w := work[i]
				lr := partitionUntilOneCycle(t, w.v, w.x.lr)
				rl := partitionUntilOneCycle(t, w.v, w.x.rl)
				parts[i] = mergeOriented(lr, rl)
			}(i)
		}
		wg.Wait()

		maxParts := 0
		for _, p := range parts {
			if len(p) > maxParts {
				maxParts = len(p)
			}
		}
		for i := 0; i < maxParts; i++ {
			var cycle core.MessageSet
			for _, p := range parts {
				if i < len(p) {
					cycle = append(cycle, p[i]...)
				}
			}
			if len(cycle) > 0 {
				s.Cycles = append(s.Cycles, cycle)
			}
		}
	}
	s.Bound = 2 * (math.Ceil(s.LoadFactor) + 1) * float64(t.Levels())
	return s
}
