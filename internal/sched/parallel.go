package sched

import "fattree/internal/core"

// OffLineParallel is the Theorem 1 scheduler with the per-node partitioning
// parallelized: subtrees rooted at the same level use disjoint channels,
// disjoint message sets, and disjoint arena scratch regions, so their
// matching-and-tracing work is embarrassingly parallel. The nodes of each
// level are fanned out over the shared bounded worker pool (internal/par,
// GOMAXPROCS workers) and the per-node partitions are assembled serially in
// node order, so the schedule is bit-identical to OffLine's.
func OffLineParallel(t core.Topology, ms core.MessageSet) *Schedule {
	return OffLineParallelWorkers(t, ms, 0)
}

// OffLineParallelWorkers is OffLineParallel with an explicit worker bound
// (<= 0 means GOMAXPROCS). The schedule is identical for every bound.
func OffLineParallelWorkers(t core.Topology, ms core.MessageSet, workers int) *Schedule {
	//ftlint:ignore loanescape fresh Scheduler per call: its arena is unreachable elsewhere, so the result is independently owned
	return NewScheduler(t).OffLineParallel(ms, workers)
}
