package sched

import (
	"math"

	"fattree/internal/core"
	"fattree/internal/par"
)

// OffLineParallel is the Theorem 1 scheduler with the per-node partitioning
// parallelized: subtrees rooted at the same level use disjoint channels and
// disjoint message sets, so their matching-and-tracing work is embarrassingly
// parallel. The nodes of each level are fanned out over the shared bounded
// worker pool (internal/par, GOMAXPROCS workers) and the per-node cycle lists
// are merged deterministically in node order, so the schedule is identical to
// OffLine's.
func OffLineParallel(t *core.FatTree, ms core.MessageSet) *Schedule {
	return OffLineParallelWorkers(t, ms, 0)
}

// OffLineParallelWorkers is OffLineParallel with an explicit worker bound
// (<= 0 means GOMAXPROCS). The schedule is identical for every bound.
func OffLineParallelWorkers(t *core.FatTree, ms core.MessageSet, workers int) *Schedule {
	if err := ms.Validate(t); err != nil {
		panic(err)
	}
	byNode, extOut, extIn := groupByLCA(t, ms)
	s := &Schedule{Tree: t, LoadFactor: core.LoadFactor(t, ms)}
	s.Cycles = append(s.Cycles, externalCycles(t, extOut, extIn)...)
	pool := par.New(workers)

	for level := 0; level < t.Levels(); level++ {
		first := 1 << uint(level)
		type nodeWork struct {
			v int
			x *crossing
		}
		var work []nodeWork
		for v := first; v < 2*first; v++ {
			if x := &byNode[v]; !x.empty() {
				work = append(work, nodeWork{v, x})
			}
		}
		if len(work) == 0 {
			continue
		}

		// Fan the level's nodes out over the pool; par.Map returns the
		// per-node cycle lists in node order regardless of worker count.
		parts := par.Map(pool, len(work), func(i int) []core.MessageSet {
			w := work[i]
			lr := partitionUntilOneCycle(t, w.v, w.x.lr)
			rl := partitionUntilOneCycle(t, w.v, w.x.rl)
			return mergeOriented(lr, rl)
		})

		maxParts := 0
		for _, p := range parts {
			if len(p) > maxParts {
				maxParts = len(p)
			}
		}
		for i := 0; i < maxParts; i++ {
			var cycle core.MessageSet
			for _, p := range parts {
				if i < len(p) {
					cycle = append(cycle, p[i]...)
				}
			}
			if len(cycle) > 0 {
				s.Cycles = append(s.Cycles, cycle)
			}
		}
	}
	s.Bound = 2 * (math.Ceil(s.LoadFactor) + 1) * float64(t.Levels())
	return s
}
