package sched

import (
	"bytes"
	"strings"
	"testing"

	"fattree/internal/core"
	"fattree/internal/workload"
)

func TestScheduleRoundTrip(t *testing.T) {
	ft := core.NewUniversal(64, 16)
	ms := core.Concat(
		workload.RandomPermutation(64, 1),
		workload.ExternalIO(64, 5, 5, 2),
	)
	s := OffLine(ft, ms)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	loaded, err := ReadSchedule(&buf, ft)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if loaded.Length() != s.Length() || loaded.LoadFactor != s.LoadFactor {
		t.Fatalf("round trip changed the schedule")
	}
	for i := range s.Cycles {
		if !loaded.Cycles[i].Equal(s.Cycles[i]) {
			t.Fatalf("cycle %d differs after round trip", i)
		}
	}
	if err := loaded.Verify(ms); err != nil {
		t.Fatalf("loaded schedule invalid: %v", err)
	}
}

func TestReadScheduleRejectsWrongMachine(t *testing.T) {
	ft := core.NewUniversal(64, 16)
	s := OffLine(ft, workload.RandomPermutation(64, 1))
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatalf("%v", err)
	}
	raw := buf.String()

	// Wrong size.
	if _, err := ReadSchedule(strings.NewReader(raw), core.NewUniversal(128, 16)); err == nil {
		t.Errorf("accepted a schedule for the wrong machine size")
	}
	// Wrong capacities.
	if _, err := ReadSchedule(strings.NewReader(raw), core.NewUniversal(64, 32)); err == nil {
		t.Errorf("accepted a schedule for the wrong capacity profile")
	}
	// Garbage input.
	if _, err := ReadSchedule(strings.NewReader("not json"), ft); err == nil {
		t.Errorf("accepted garbage")
	}
}
