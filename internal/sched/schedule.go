package sched

import (
	"fmt"
	"math"
	"math/bits"

	"fattree/internal/core"
	"fattree/internal/obsv"
)

// A Schedule is a partition of a message set into one-cycle message sets
// M_1, ..., M_d: each cycle respects every channel capacity, so a fat-tree
// with ideal concentrator switches delivers each cycle in one delivery cycle.
type Schedule struct {
	Tree   core.Topology
	Cycles []core.MessageSet

	// LoadFactor is λ(M), the lower bound on the number of delivery cycles.
	LoadFactor float64
	// Bound is the theoretical upper bound on len(Cycles) guaranteed by the
	// algorithm that produced the schedule (Theorem 1 or Corollary 2).
	Bound float64
}

// Length returns d, the number of delivery cycles.
func (s *Schedule) Length() int { return len(s.Cycles) }

// Utilization returns the schedule's mean channel fill: the total
// wire-cycles actually carrying messages divided by the wire-cycles the
// loaded channels offer across all cycles. It measures how tightly the
// schedule packs (compaction raises it); channels with zero load in a cycle
// are excluded from the denominator only when they carry nothing in the
// *whole* schedule, so idle-by-design hardware does not mask slack.
func (s *Schedule) Utilization() float64 {
	if len(s.Cycles) == 0 {
		return 0
	}
	// everLoaded is a flat per-channel flag array indexed by 2·node+dir —
	// the same arena layout the engine's Replay uses — instead of a channel
	// map, so the two passes below do array reads only.
	everLoaded := make([]bool, 2*(s.Tree.Nodes()+1))
	any := false
	for _, cyc := range s.Cycles {
		l := core.NewLoads(s.Tree, cyc)
		s.Tree.Channels(func(c core.Channel) {
			if l.Load(c) > 0 {
				everLoaded[2*c.Node+int(c.Dir)] = true
				any = true
			}
		})
	}
	if !any {
		return 0
	}
	used, offered := 0, 0
	for _, cyc := range s.Cycles {
		l := core.NewLoads(s.Tree, cyc)
		s.Tree.Channels(func(c core.Channel) {
			if everLoaded[2*c.Node+int(c.Dir)] {
				used += l.Load(c)
				offered += s.Tree.Capacity(c)
			}
		})
	}
	return float64(used) / float64(offered)
}

// Messages returns the total number of messages across all cycles.
func (s *Schedule) Messages() int {
	total := 0
	for _, c := range s.Cycles {
		total += len(c)
	}
	return total
}

// Verify checks that the schedule is a valid partition of ms into one-cycle
// message sets: the concatenation of cycles equals ms as a multiset, and every
// cycle fits all channel capacities. It returns nil if the schedule is valid.
func (s *Schedule) Verify(ms core.MessageSet) error {
	if got := core.Concat(s.Cycles...); !got.Equal(ms) {
		return fmt.Errorf("sched: schedule is not a partition: %d messages scheduled, %d expected",
			len(got), len(ms))
	}
	for i, cyc := range s.Cycles {
		if !core.IsOneCycle(s.Tree, cyc) {
			l := core.NewLoads(s.Tree, cyc)
			f, arg := l.MaxFactor()
			return fmt.Errorf("sched: cycle %d is not one-cycle: λ=%.2f at channel %v", i, f, arg)
		}
	}
	return nil
}

// crossing holds the two oriented message sets whose least common ancestor is
// a given node: lr goes from the left subtree to the right, rl the reverse.
type crossing struct {
	lr, rl core.MessageSet
}

// groupByLCA buckets internal messages by their unique least-common-ancestor
// switch and crossing direction, and external messages by direction (they
// all cross the root interface). byNode is a flat slice indexed by heap node
// id (internal LCAs occupy 1..n-1; index 0 and the leaves stay empty), so
// grouping is one array write per message with no map churn, and callers
// iterate nodes in ascending id order without sorting.
//
//ftlint:hotpath
func groupByLCA(t core.Topology, ms core.MessageSet) (byNode []crossing, extOut, extIn core.MessageSet) {
	byNode = make([]crossing, t.Processors())
	for _, m := range ms {
		if m.IsExternal() {
			if m.Dst == core.External {
				extOut = append(extOut, m)
			} else {
				extIn = append(extIn, m)
			}
			continue
		}
		// Heap-index LCA of the two leaves; the bit below the common prefix
		// on the source side tells which child subtree the message departs
		// from (0 = left, so it crosses left-to-right).
		a, b := t.Leaf(m.Src), t.Leaf(m.Dst)
		shift := uint(bits.Len(uint(a ^ b)))
		x := &byNode[a>>shift]
		if (a>>(shift-1))&1 == 0 {
			x.lr = append(x.lr, m)
		} else {
			x.rl = append(x.rl, m)
		}
	}
	return byNode, extOut, extIn
}

// empty reports whether no message crosses this node.
func (x *crossing) empty() bool { return len(x.lr) == 0 && len(x.rl) == 0 }

// OffLine schedules ms on t using the algorithm of Theorem 1: the messages
// through the root are partitioned into one-cycle sets by repeated even
// bisection (left-to-right and right-to-left crossings routed simultaneously),
// then the messages within the two subtrees of the root are recursively
// partitioned; subtrees with roots at the same level are routed at the same
// time. The schedule length satisfies d = O(λ(M)·lg n); Theorem 1's explicit
// form is d <= sum over levels of 2·ceil(λ_level) <= 2(λ(M)+1)·lg n.
//
// OffLine constructs a fresh Scheduler per call, so the returned schedule is
// independently owned; loops that schedule many message sets on one tree
// should hold a Scheduler and call its OffLine method instead.
func OffLine(t core.Topology, ms core.MessageSet) *Schedule {
	//ftlint:ignore loanescape fresh Scheduler per call: its arena is unreachable elsewhere, so the result is independently owned
	return NewScheduler(t).OffLine(ms)
}

// OffLineObserved is OffLine with the observability layer attached: the
// observer's SchedLevel counters record, per tree level, how many delivery
// cycles the level contributed to the schedule and how many messages have
// their LCA there (index lg n + 1 holds the external-traffic block). The
// schedule produced is identical to OffLine's.
func OffLineObserved(t core.Topology, ms core.MessageSet, o *obsv.Observer) *Schedule {
	//ftlint:ignore loanescape fresh Scheduler per call: its arena is unreachable elsewhere, so the result is independently owned
	return NewScheduler(t).OffLineObserved(ms, o)
}

// OffLineBig schedules ms on t using the algorithm of Corollary 2, which
// applies when channel capacities are large (cap(c) >= α·lg n for α > 1).
// Fictitious capacities cap'(c) = cap(c) - lg n determine a load factor λ'(M);
// every node's crossing sets are bisected the same fixed number of times and
// part i of *every* node is routed in the same delivery cycle. The bisections
// are even to within one message per channel, and the error accumulated down
// the tree is at most lg n per channel, absorbed by the fictitious slack.
// The schedule length is the smallest power of two >= λ'(M), hence
// d <= 2·λ'(M) = 2(α/(α-1))·λ(M) when capacities are >= α·lg n.
func OffLineBig(t core.Topology, ms core.MessageSet) *Schedule {
	if !core.HeapIndexed(t) {
		panic("sched: the Theorem 1 scheduler requires a heap-indexed binary fat-tree; use Greedy for k-ary topologies")
	}
	if err := ms.Validate(t); err != nil {
		panic(err)
	}
	slack := core.Lg(t.Processors())
	lambdaPrime := core.LoadFactorWithSlack(t, ms, slack)
	rounds := 0
	for 1<<uint(rounds) < int(math.Ceil(lambdaPrime)) {
		rounds++
	}
	r := 1 << uint(rounds)

	s := &Schedule{
		Tree:       t,
		LoadFactor: core.LoadFactor(t, ms),
		Bound:      2 * lambdaPrime,
	}
	if s.Bound < 1 {
		s.Bound = 1
	}

	byNode, extOut, extIn := groupByLCA(t, ms)

	cycles := make([]core.MessageSet, r)
	for _, q := range []core.MessageSet{extOut, extIn} {
		parts := bisectRoundsWith(q, rounds, func(p core.MessageSet) (core.MessageSet, core.MessageSet) {
			return EvenBisectExternal(t, p)
		})
		for i, p := range parts {
			cycles[i] = append(cycles[i], p...)
		}
	}
	// byNode is indexed by heap node id, so ascending v is already the
	// deterministic (sorted) node order.
	for v := 1; v < len(byNode); v++ {
		x := &byNode[v]
		if x.empty() {
			continue
		}
		for _, q := range []core.MessageSet{x.lr, x.rl} {
			parts := bisectRounds(t, v, q, rounds)
			for i, p := range parts {
				cycles[i] = append(cycles[i], p...)
			}
		}
	}

	// Corollary 2's correctness argument needs the fictitious slack to absorb
	// the ±1-per-level bisection error, i.e. cap(c) >= α·lg n everywhere.
	// For fat-trees outside that regime (e.g. capacity-1 leaf channels) the
	// cycles may overflow; extract the overflowing messages and schedule the
	// remainder with Theorem 1 so OffLineBig is correct on every input while
	// retaining the Corollary 2 bound whenever its precondition holds (the
	// remainder is then empty).
	var remainder core.MessageSet
	for _, c := range cycles {
		fit, over := trimToCapacity(t, c)
		if len(fit) > 0 {
			s.Cycles = append(s.Cycles, fit)
		}
		remainder = append(remainder, over...)
	}
	if len(remainder) > 0 {
		tail := OffLine(t, remainder)
		s.Cycles = append(s.Cycles, tail.Cycles...)
		s.Bound += tail.Bound
	}
	return s
}

// trimToCapacity greedily keeps a maximal prefix-feasible subset of cycle:
// messages are admitted in order as long as no channel on their path exceeds
// its capacity; the rest are returned as overflow.
func trimToCapacity(t core.Topology, cycle core.MessageSet) (fit, over core.MessageSet) {
	loads := core.NewLoads(t, nil)
	var buf []core.Channel
	for _, m := range cycle {
		buf = t.Path(m, buf[:0])
		ok := true
		for _, c := range buf {
			if loads.Load(c)+1 > t.Capacity(c) {
				ok = false
				break
			}
		}
		if ok {
			loads.Add(m)
			fit = append(fit, m)
		} else {
			over = append(over, m)
		}
	}
	return fit, over
}

// bisectRounds splits q into 2^rounds parts by repeated even bisection at
// node v.
func bisectRounds(t core.Topology, v int, q core.MessageSet, rounds int) []core.MessageSet {
	return bisectRoundsWith(q, rounds, func(p core.MessageSet) (core.MessageSet, core.MessageSet) {
		return EvenBisect(t, v, p)
	})
}

// bisectRoundsWith splits q into 2^rounds parts with the given bisection.
func bisectRoundsWith(q core.MessageSet, rounds int,
	bisect func(core.MessageSet) (core.MessageSet, core.MessageSet)) []core.MessageSet {
	parts := []core.MessageSet{q}
	for i := 0; i < rounds; i++ {
		next := make([]core.MessageSet, 0, 2*len(parts))
		for _, p := range parts {
			a, b := bisect(p)
			next = append(next, a, b)
		}
		parts = next
	}
	return parts
}

// Greedy is a baseline scheduler used for comparison in the benchmarks: it
// fills delivery cycles first-fit in message order without the even-bisection
// machinery. It is correct (cycles are one-cycle sets) but offers no bound
// better than d <= Σ load — on adversarial inputs it can be a lg n factor or
// worse off the Theorem 1 schedule.
func Greedy(t core.Topology, ms core.MessageSet) *Schedule {
	if err := ms.Validate(t); err != nil {
		panic(err)
	}
	s := &Schedule{Tree: t, LoadFactor: core.LoadFactor(t, ms)}
	var cycleLoads []*core.Loads
	for _, m := range ms {
		placed := false
		for i, l := range cycleLoads {
			l.Add(m)
			if l.Fits() {
				s.Cycles[i] = append(s.Cycles[i], m)
				placed = true
				break
			}
			l.Remove(m)
		}
		if !placed {
			l := core.NewLoads(t, core.MessageSet{m})
			cycleLoads = append(cycleLoads, l)
			s.Cycles = append(s.Cycles, core.MessageSet{m})
		}
	}
	s.Bound = math.Inf(1)
	return s
}
