package sched

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"fattree/internal/core"
	"fattree/internal/workload"
)

// TestOfflineScheduleProperty fuzzes the Theorem 1 scheduler across random
// tree shapes and workloads: the schedule must always be a valid partition
// into one-cycle sets, within the Theorem 1 bound, and at least λ.
func TestOfflineScheduleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (3 + rng.Intn(4)) // 8..64
		ft := workload.RandomTreeProfile(n, 12, seed)
		var ms core.MessageSet
		switch rng.Intn(4) {
		case 0:
			ms = workload.Random(n, 1+rng.Intn(6*n), seed+1)
		case 1:
			ms = workload.RandomPermutation(n, seed+1)
		case 2:
			ms = workload.LevelStress(n, rng.Intn(ft.Levels()), 1+rng.Intn(3*n), seed+1)
		default:
			ms = workload.Funnel(n, rng.Intn(n/2), 1+rng.Intn(n/2), 1+rng.Intn(2*n), seed+1)
		}
		s := OffLine(ft, ms)
		if err := s.Verify(ms); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		lam := core.LoadFactor(ft, ms)
		if float64(s.Length()) < lam {
			return false
		}
		bound := 2 * (math.Ceil(lam) + 1) * float64(ft.Levels())
		return float64(s.Length()) <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSchedulerReuseProperty fuzzes the arena reuse contract: one Scheduler
// fed a random sequence of shrinking and regrowing workloads (random tree
// profiles included) must produce, at every phase, a schedule bit-identical
// to a fresh scheduler's on the same input — dirty slabs, stretched tables,
// and stale boundary lists from earlier phases must never leak into a result.
func TestSchedulerReuseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (3 + rng.Intn(4)) // 8..64
		ft := workload.RandomTreeProfile(n, 12, seed)
		sc := NewScheduler(ft)
		sizes := []int{4 * n, n / 2, 1, 6 * n, 0, 2 * n}
		for phase, size := range sizes {
			ms := workload.Random(n, size, seed+int64(phase))
			fresh := OffLine(ft, ms)
			reused := sc.OffLine(ms)
			if err := reused.Verify(ms); err != nil {
				t.Logf("seed %d phase %d: %v", seed, phase, err)
				return false
			}
			if !reflect.DeepEqual(fresh, reused) {
				t.Logf("seed %d phase %d (size %d): reused schedule differs from fresh", seed, phase, size)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestOfflineBigProperty fuzzes the Corollary 2 scheduler: always a valid
// partition (the overflow fix-up guarantees it on any tree), never below λ.
func TestOfflineBigProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (3 + rng.Intn(3)) // 8..32
		ft := workload.RandomTreeProfile(n, 20, seed)
		ms := workload.Random(n, 1+rng.Intn(5*n), seed+1)
		s := OffLineBig(ft, ms)
		if err := s.Verify(ms); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return float64(s.Length()) >= core.LoadFactor(ft, ms)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestEvenBisectProperty fuzzes the bisection primitive at random internal
// nodes with random crossing sets: exact partition, per-channel floor/ceil
// split.
func TestEvenBisectProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (3 + rng.Intn(4))
		ft := core.NewConstant(n, 1)
		level := rng.Intn(ft.Levels())
		v := 1<<uint(level) + rng.Intn(1<<uint(level))
		lo, hi := ft.SubtreeLeaves(v)
		mid := (lo + hi) / 2
		k := 1 + rng.Intn(60)
		q := make(core.MessageSet, 0, k)
		for i := 0; i < k; i++ {
			src := lo + rng.Intn(mid-lo)
			dst := mid + rng.Intn(hi-mid)
			q = append(q, core.Message{Src: src, Dst: dst})
		}
		a, b := EvenBisect(ft, v, q)
		if !core.Concat(a, b).Equal(q) {
			return false
		}
		la, lb := core.NewLoads(ft, a), core.NewLoads(ft, b)
		ok := true
		ft.Channels(func(c core.Channel) {
			total := la.Load(c) + lb.Load(c)
			if la.Load(c) != total/2 && la.Load(c) != (total+1)/2 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestLevelStressNoLogFactor verifies a structural property of the level-
// parallel Theorem 1 implementation: when every message's LCA sits at one
// level, only that level contributes delivery cycles, so d <= 2(ceil(λ)+1)
// with no lg n factor — subtrees at the same level route simultaneously.
func TestLevelStressNoLogFactor(t *testing.T) {
	n := 64
	ft := core.NewUniversal(n, 32)
	for level := 0; level < ft.Levels(); level++ {
		ms := workload.LevelStress(n, level, 96, int64(level+1))
		s := OffLine(ft, ms)
		if err := s.Verify(ms); err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		lam := core.LoadFactor(ft, ms)
		bound := 2 * (math.Ceil(lam) + 1)
		if float64(s.Length()) > bound {
			t.Errorf("level %d: d=%d exceeds the single-level bound %.0f (λ=%.2f)",
				level, s.Length(), bound, lam)
		}
	}
}
