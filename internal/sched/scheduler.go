package sched

import (
	"math"
	"math/bits"
	"runtime"
	"slices"

	"fattree/internal/core"
	"fattree/internal/obsv"
	"fattree/internal/par"
)

// Scheduler is a reusable, allocation-free Theorem 1 scheduler bound to one
// fat-tree. It owns a scratch arena — flat grouping tables, two ping-pong
// message slabs, per-node bisection working sets, and a transient load
// tally — that is recycled across calls, so a warmed Scheduler runs
// OffLine/OffLineCompact at zero steady-state allocations per call.
//
// The ownership rules mirror the Engine arena contract (DESIGN.md §7/§9):
//
//   - The *Schedule returned by any method, including its Cycles and every
//     MessageSet inside them, is a loan from the scheduler's arena. It is
//     valid until the next call on the same Scheduler; use Schedule.Clone to
//     keep one alive longer.
//   - A Scheduler is not safe for concurrent use. OffLineParallel fans the
//     per-node partitioning out over a worker pool internally, but calls on
//     one Scheduler must be serialized by the caller.
//   - Reuse is invisible: a reused Scheduler produces bit-identical schedules
//     to a fresh one, and OffLineParallel is bit-identical to OffLine for
//     every worker count.
//
// The package-level OffLine/OffLineCompact/... functions construct a fresh
// Scheduler per call, so their results are independently owned — existing
// one-shot callers keep value semantics.
type Scheduler struct {
	tree core.Topology
	n    int         // processors
	caps []int       // caps[v] = capacity of both channels above node v
	lam  *core.Loads // persistent load table, cleared per call, for λ(M)

	// Grouping tables, indexed by internal heap node id (1..n-1). The counts
	// are rebuilt per call; during the fill pass the offset tables serve as
	// running cursors and end up pointing at each segment's end.
	lrCnt, rlCnt []int32
	lrOff, rlOff []int32

	// groupA holds the grouped messages: external outputs, external inputs,
	// then for each internal node in ascending id order its left-to-right and
	// right-to-left crossing segments. groupB is the bisection ping-pong twin:
	// each bisection round writes the other slab at the same offsets, so a
	// partition is just a boundary list into whichever slab holds round parity.
	groupA, groupB []core.Message
	// cycleBuf backs the assembled delivery cycles; cycles holds their
	// headers. Both are truncated and refilled per call.
	cycleBuf []core.Message
	cycles   []core.MessageSet

	// chkLoad is the transient per-channel tally used by the one-cycle check,
	// indexed 2·node+dir. It is zero between checks (add, inspect, roll back),
	// and same-level nodes touch disjoint subtree ranges, so the level fan-out
	// shares it without synchronization.
	chkLoad []int32

	// Bisection slabs, carved into per-node regions each level: boundary
	// ping-pong lists, string-end partner tables, strand sides, and the
	// composite (processor<<32|index) sort keys of the hierarchical matching.
	bndSlab    []int32
	bisPartner []int32
	bisSide    []int8
	bisKeys    []int64

	// nodes lists the non-empty nodes of the level being scheduled; extNS is
	// the pseudo-node for the external-traffic block. nodeWorker is the
	// persistent fan-out closure (allocated once, never per call).
	nodes      []nodeState
	extNS      nodeState
	nodeWorker func(i int)

	pool        *par.Pool
	poolWorkers int

	out Schedule // loaned result of the last scheduling call

	// Compact state: per-output-cycle load tables and reusable cycle buffers.
	cmpLoads  [][]int32
	cmpCycles []core.MessageSet
	cmpUsed   int
	cmpPath   []core.Channel
	cmpOut    Schedule // loaned result of the last Compact call
}

// bisector is one node's matching-and-tracing scratch, carved from the
// scheduler's slabs (or allocated per call by the exported EvenBisect).
type bisector struct {
	partner []int32 // partner[e] = end matched with e, or -1
	side    []int8  // side[m] = 0 (first half), 1 (second half), -1 unassigned
	keys    []int64 // composite sort keys: processor<<32 | message index
}

// nodeState is the per-node unit of level-parallel work: the node's two
// oriented crossing segments in groupA, its carved scratch regions, and the
// resulting partition boundaries.
type nodeState struct {
	v              int
	lrOff, lrLen   int
	rlOff, rlLen   int
	bis            bisector
	lrBndA, lrBndB []int32
	rlBndA, rlBndB []int32
	lrBnd, rlBnd   []int32 // final boundaries (parts+1 entries; nil if empty)
	lrFlip, rlFlip bool    // true if the final parts live in groupB
}

// NewScheduler returns a reusable Theorem 1 scheduler for t. The capacity
// table is snapshotted here; SetChannelCapacity calls made after construction
// are not observed.
func NewScheduler(t core.Topology) *Scheduler {
	if !core.HeapIndexed(t) {
		panic("sched: the Theorem 1 scheduler requires a heap-indexed binary fat-tree; use Greedy for k-ary topologies")
	}
	n := t.Processors()
	sc := &Scheduler{
		tree:    t,
		n:       n,
		caps:    core.CapTableOf(t),
		lam:     core.NewLoads(t, nil),
		lrCnt:   make([]int32, n),
		rlCnt:   make([]int32, n),
		lrOff:   make([]int32, n),
		rlOff:   make([]int32, n),
		chkLoad: make([]int32, 4*n),
	}
	sc.nodeWorker = func(i int) { sc.runNode(&sc.nodes[i]) }
	return sc
}

// Tree returns the fat-tree the scheduler is bound to.
func (sc *Scheduler) Tree() core.Topology { return sc.tree }

// OffLine schedules ms with the Theorem 1 algorithm. The returned schedule is
// a loan from the scheduler's arena, valid until the next call.
//
//ftlint:loan
func (sc *Scheduler) OffLine(ms core.MessageSet) *Schedule {
	return sc.schedule(ms, nil, nil)
}

// OffLineObserved is OffLine with the observability layer attached; the
// schedule produced is identical to OffLine's.
//
//ftlint:loan
func (sc *Scheduler) OffLineObserved(ms core.MessageSet, o *obsv.Observer) *Schedule {
	return sc.schedule(ms, o, nil)
}

// OffLineParallel is OffLine with the per-node partitioning of each level
// fanned out over workers goroutines (<= 0 means GOMAXPROCS). Subtrees rooted
// at the same level use disjoint channels, messages, and scratch regions, and
// the per-node results are assembled serially in node order, so the schedule
// is bit-identical to OffLine's for every worker count.
//
//ftlint:loan
func (sc *Scheduler) OffLineParallel(ms core.MessageSet, workers int) *Schedule {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if sc.pool == nil || sc.poolWorkers != workers {
		sc.pool = par.New(workers)
		sc.poolWorkers = workers
	}
	return sc.schedule(ms, nil, sc.pool)
}

// OffLineParallelObserved combines OffLineParallel and OffLineObserved.
// Counters are updated only at the serial merge points between levels, so the
// observer sees identical values for every worker count.
//
//ftlint:loan
func (sc *Scheduler) OffLineParallelObserved(ms core.MessageSet, workers int, o *obsv.Observer) *Schedule {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if sc.pool == nil || sc.poolWorkers != workers {
		sc.pool = par.New(workers)
		sc.poolWorkers = workers
	}
	return sc.schedule(ms, o, sc.pool)
}

// schedule is the shared implementation: validate, group by LCA, partition
// the external block and then every level (optionally in parallel), and
// assemble delivery cycles. o and pool may be nil.
//
//ftlint:loan
//ftlint:hotpath
func (sc *Scheduler) schedule(ms core.MessageSet, o *obsv.Observer, pool *par.Pool) *Schedule {
	t := sc.tree
	//ftlint:ignore callgraphhotalloc Validate allocates only on its error path, which feeds the panic below; the happy path is allocation-free.
	if err := ms.Validate(t); err != nil {
		panic(err)
	}
	sc.grow(len(ms))

	// λ(M) on the persistent load table.
	sc.lam.Clear()
	for _, m := range ms {
		sc.lam.Add(m)
	}
	lambda, _ := sc.lam.MaxFactor()

	eo, ei := sc.group(ms)
	sc.cycles = sc.cycles[:0]
	cycleCur := 0

	// External traffic crosses the root interface and shares channels with
	// every level, so it gets its own leading block of cycles: the i-th
	// output part is routed with the i-th input part (outputs use only up
	// channels, inputs only down channels).
	if eo+ei > 0 {
		ext := &sc.extNS
		kmax := eo
		if ei > kmax {
			kmax = ei
		}
		ext.bis.partner = sc.bisPartner[:2*kmax]
		ext.bis.side = sc.bisSide[:kmax]
		ext.bis.keys = sc.bisKeys[:kmax]
		bOff := 0
		outA := sc.bndSlab[bOff : bOff+2*eo+2]
		bOff += 2*eo + 2
		outB := sc.bndSlab[bOff : bOff+2*eo+2]
		bOff += 2*eo + 2
		inA := sc.bndSlab[bOff : bOff+2*ei+2]
		bOff += 2*ei + 2
		inB := sc.bndSlab[bOff : bOff+2*ei+2]
		outBnd, outFlip := sc.partition(0, 0, eo, &ext.bis, outA, outB, true, true)
		inBnd, inFlip := sc.partition(0, eo, ei, &ext.bis, inA, inB, true, false)
		maxParts := parts(outBnd)
		if p := parts(inBnd); p > maxParts {
			maxParts = p
		}
		added := 0
		for i := 0; i < maxParts; i++ {
			start := cycleCur
			cycleCur = sc.copyPart(outBnd, outFlip, i, cycleCur)
			cycleCur = sc.copyPart(inBnd, inFlip, i, cycleCur)
			if cycleCur > start {
				sc.cycles = append(sc.cycles, sc.cycleBuf[start:cycleCur:cycleCur])
				added++
			}
		}
		if o != nil {
			o.SchedLevel(t.Levels()+1, added, eo+ei)
		}
	}

	// Per level, every node's crossing sets are partitioned independently
	// (the level fan-out); the i-th parts of all nodes at the level are
	// unioned into one delivery cycle. Different subtrees use disjoint
	// channels, and the lr/rl sets of one node also use disjoint channels,
	// so the union stays one-cycle.
	for level := 0; level < t.Levels(); level++ {
		first := 1 << uint(level)
		sc.nodes = sc.nodes[:0]
		bOff, pOff, sOff := 0, 0, 0
		levelMessages := 0
		for v := first; v < 2*first; v++ {
			klr, krl := int(sc.lrCnt[v]), int(sc.rlCnt[v])
			if klr+krl == 0 {
				continue
			}
			levelMessages += klr + krl
			kmax := klr
			if krl > kmax {
				kmax = krl
			}
			ns := nodeState{
				v:     v,
				lrOff: int(sc.lrOff[v]) - klr, lrLen: klr,
				rlOff: int(sc.rlOff[v]) - krl, rlLen: krl,
			}
			ns.bis.partner = sc.bisPartner[pOff : pOff+2*kmax]
			pOff += 2 * kmax
			ns.bis.side = sc.bisSide[sOff : sOff+kmax]
			ns.bis.keys = sc.bisKeys[sOff : sOff+kmax]
			sOff += kmax
			ns.lrBndA = sc.bndSlab[bOff : bOff+2*klr+2]
			bOff += 2*klr + 2
			ns.lrBndB = sc.bndSlab[bOff : bOff+2*klr+2]
			bOff += 2*klr + 2
			ns.rlBndA = sc.bndSlab[bOff : bOff+2*krl+2]
			bOff += 2*krl + 2
			ns.rlBndB = sc.bndSlab[bOff : bOff+2*krl+2]
			bOff += 2*krl + 2
			sc.nodes = append(sc.nodes, ns)
		}
		if len(sc.nodes) == 0 {
			continue
		}
		//ftlint:ignore callgraphhotalloc parallel fan-out spawns worker closures by design; the serial path (nil pool) returns before allocating.
		pool.ForEach(len(sc.nodes), sc.nodeWorker)

		maxParts := 0
		for i := range sc.nodes {
			ns := &sc.nodes[i]
			if p := parts(ns.lrBnd); p > maxParts {
				maxParts = p
			}
			if p := parts(ns.rlBnd); p > maxParts {
				maxParts = p
			}
		}
		added := 0
		for i := 0; i < maxParts; i++ {
			start := cycleCur
			for j := range sc.nodes {
				ns := &sc.nodes[j]
				cycleCur = sc.copyPart(ns.lrBnd, ns.lrFlip, i, cycleCur)
				cycleCur = sc.copyPart(ns.rlBnd, ns.rlFlip, i, cycleCur)
			}
			if cycleCur > start {
				sc.cycles = append(sc.cycles, sc.cycleBuf[start:cycleCur:cycleCur])
				added++
			}
		}
		if o != nil && levelMessages > 0 {
			o.SchedLevel(level, added, levelMessages)
		}
	}

	sc.out = Schedule{
		Tree:       t,
		LoadFactor: lambda,
		Bound:      2 * (math.Ceil(lambda) + 1) * float64(t.Levels()),
	}
	if len(sc.cycles) > 0 {
		sc.out.Cycles = sc.cycles
	}
	return &sc.out
}

// grow sizes the message-proportional slabs for a call on m messages. Slabs
// only ever grow (to the high-water message count), never shrink and never
// move while a call is in flight, so carved regions stay valid.
func (sc *Scheduler) grow(m int) {
	sc.groupA = growSlab(sc.groupA, m)
	sc.groupB = growSlab(sc.groupB, m)
	sc.cycleBuf = growSlab(sc.cycleBuf, m)
	sc.bisKeys = growSlab(sc.bisKeys, m)
	sc.bisSide = growSlab(sc.bisSide, m)
	sc.bisPartner = growSlab(sc.bisPartner, 2*m)
	// Per level: every node needs two boundary ping-pong lists per oriented
	// segment (2k+2 entries each, since k messages split into at most 2k
	// parts), totalling 4·(messages at the level) + 8·(nodes at the level).
	sc.bndSlab = growSlab(sc.bndSlab, 4*m+8*sc.n+16)
}

// growSlab returns s with length n, reallocating only when capacity is
// insufficient. Contents are unspecified after growth.
func growSlab[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// group buckets ms into groupA — external outputs, external inputs, then per
// internal node (ascending heap id) the left-to-right and right-to-left
// crossing segments — preserving ms order within each segment, exactly like
// groupByLCA. It returns the external output and input counts.
//
//ftlint:hotpath
func (sc *Scheduler) group(ms core.MessageSet) (eo, ei int) {
	n := sc.n
	clear(sc.lrCnt)
	clear(sc.rlCnt)
	for _, m := range ms {
		if m.IsExternal() {
			if m.Dst == core.External {
				eo++
			} else {
				ei++
			}
			continue
		}
		a, b := n+m.Src, n+m.Dst
		shift := uint(bits.Len(uint(a ^ b)))
		v := a >> shift
		if (a>>(shift-1))&1 == 0 {
			sc.lrCnt[v]++
		} else {
			sc.rlCnt[v]++
		}
	}
	pos := int32(eo + ei)
	for v := 1; v < n; v++ {
		sc.lrOff[v] = pos
		pos += sc.lrCnt[v]
		sc.rlOff[v] = pos
		pos += sc.rlCnt[v]
	}
	co, ci := int32(0), int32(eo)
	for _, m := range ms {
		if m.IsExternal() {
			if m.Dst == core.External {
				sc.groupA[co] = m
				co++
			} else {
				sc.groupA[ci] = m
				ci++
			}
			continue
		}
		a, b := n+m.Src, n+m.Dst
		shift := uint(bits.Len(uint(a ^ b)))
		v := a >> shift
		if (a>>(shift-1))&1 == 0 {
			sc.groupA[sc.lrOff[v]] = m
			sc.lrOff[v]++
		} else {
			sc.groupA[sc.rlOff[v]] = m
			sc.rlOff[v]++
		}
	}
	return eo, ei
}

// runNode partitions one node's two oriented crossing segments. It is the
// unit of level-parallel work: all state it touches — the node's groupA/B
// segments, its carved scratch regions, and the chkLoad entries inside its
// subtree — is disjoint from every other node at the same level.
//
//ftlint:hotpath
func (sc *Scheduler) runNode(ns *nodeState) {
	ns.lrBnd, ns.lrFlip = sc.partition(ns.v, ns.lrOff, ns.lrLen, &ns.bis, ns.lrBndA, ns.lrBndB, false, false)
	ns.rlBnd, ns.rlFlip = sc.partition(ns.v, ns.rlOff, ns.rlLen, &ns.bis, ns.rlBndA, ns.rlBndB, false, false)
}

// partition iteratively bisects the segment [off, off+k) of groupA until
// every part is a one-cycle message set, exactly mirroring the classic
// partitionWith loop: each round bisects *every* part (so parts = 2^rounds
// and part indices stay aligned across nodes), writing halves into the other
// ping-pong slab at the same offsets. It returns the part boundaries
// (parts+1 ascending offsets; nil when k == 0) and whether the final parts
// live in groupB. Since a part's maximum channel load ceil-halves each round,
// rounds <= ceil(lg k) and parts <= 2k, which bounds the boundary regions.
//
//ftlint:hotpath
func (sc *Scheduler) partition(v, off, k int, bi *bisector, bndA, bndB []int32, external, outbound bool) ([]int32, bool) {
	if k == 0 {
		return nil, false
	}
	src, dst := sc.groupA, sc.groupB
	cur, nxt := bndA, bndB
	cur[0], cur[1] = int32(off), int32(off+k)
	curLen := 2
	flip := false
	for {
		allFit := true
		for j := 0; j+1 < curLen; j++ {
			if !sc.partFits(src[cur[j]:cur[j+1]]) {
				allFit = false
				break
			}
		}
		if allFit {
			return cur[:curLen], flip
		}
		w := 0
		for j := 0; j+1 < curLen; j++ {
			a, b := cur[j], cur[j+1]
			la := bisectPart(sc.tree, v, src[a:b], dst[a:b], bi, external, outbound)
			nxt[w] = a
			nxt[w+1] = a + int32(la)
			w += 2
		}
		nxt[w] = cur[curLen-1]
		curLen = w + 1
		cur, nxt = nxt, cur
		src, dst = dst, src
		flip = !flip
	}
}

// partFits reports whether part respects every channel capacity (is a
// one-cycle message set): it tallies each message's path into chkLoad against
// the capacity snapshot, then rolls the tally back, leaving chkLoad zero.
//
//ftlint:hotpath
func (sc *Scheduler) partFits(part []core.Message) bool {
	ok := sc.tallyPart(part, 1)
	sc.tallyPart(part, -1)
	return ok
}

// tallyPart walks every message path in part, adding delta to the chkLoad
// entry of each channel touched, and reports whether no entry exceeded its
// capacity along the way (meaningful for delta = +1).
//
//ftlint:hotpath
func (sc *Scheduler) tallyPart(part []core.Message, delta int32) bool {
	ld, caps, n := sc.chkLoad, sc.caps, sc.n
	ok := true
	for _, m := range part {
		switch {
		case m.Dst == core.External:
			for v := n + m.Src; v >= 1; v >>= 1 {
				ld[2*v] += delta
				if int(ld[2*v]) > caps[v] {
					ok = false
				}
			}
		case m.Src == core.External:
			for v := n + m.Dst; v >= 1; v >>= 1 {
				ld[2*v+1] += delta
				if int(ld[2*v+1]) > caps[v] {
					ok = false
				}
			}
		default:
			a, b := n+m.Src, n+m.Dst
			lca := a >> uint(bits.Len(uint(a^b)))
			for v := a; v != lca; v >>= 1 {
				ld[2*v] += delta
				if int(ld[2*v]) > caps[v] {
					ok = false
				}
			}
			for v := b; v != lca; v >>= 1 {
				ld[2*v+1] += delta
				if int(ld[2*v+1]) > caps[v] {
					ok = false
				}
			}
		}
	}
	return ok
}

// parts returns the number of parts a boundary list describes.
func parts(bnd []int32) int {
	if len(bnd) == 0 {
		return 0
	}
	return len(bnd) - 1
}

// copyPart appends part i of an oriented partition to the cycle buffer at
// cur and returns the new cursor.
//
//ftlint:hotpath
func (sc *Scheduler) copyPart(bnd []int32, flip bool, i, cur int) int {
	if i >= parts(bnd) {
		return cur
	}
	src := sc.groupA
	if flip {
		src = sc.groupB
	}
	return cur + copy(sc.cycleBuf[cur:], src[bnd[i]:bnd[i+1]])
}

// bisectPart is the allocation-free matching-and-tracing even bisection: it
// splits q (all crossing node v in the same direction, or all external in the
// same direction when external is set) into a first half written to
// out[:la] and a second half written to out[la:], both in q order, and
// returns la. Every channel's load splits as ceil/floor. bi provides the
// scratch; out must not alias q.
//
//ftlint:hotpath
func bisectPart(t core.Topology, v int, q, out []core.Message, bi *bisector, external, outbound bool) int {
	k := len(q)
	if k == 0 {
		return 0
	}
	if k == 1 {
		out[0] = q[0]
		return 1
	}
	partner := bi.partner[:2*k]
	for i := range partner {
		partner[i] = -1
	}
	keys := bi.keys[:k]
	var unmatched int32 = -1
	if external {
		// Hierarchically match the processor ends over the whole tree; the
		// external ends all live at the interface and pair consecutively.
		for i, m := range q {
			p := m.Src
			if !outbound {
				p = m.Dst
			}
			keys[i] = int64(p)<<32 | int64(i)
		}
		slices.Sort(keys)
		unmatched = matchSorted(t, 1, keys, 0, k, 0, partner)
		for i := 0; i+1 < k; i += 2 {
			partner[2*i+1] = int32(2*(i+1) + 1)
			partner[2*(i+1)+1] = int32(2*i + 1)
		}
	} else {
		// Match source ends within the source subtree and destination ends
		// within the destination subtree.
		srcChild, dstChild := 2*v, 2*v+1
		if !t.Contains(srcChild, q[0].Src) {
			srcChild, dstChild = dstChild, srcChild
		}
		for i, m := range q {
			keys[i] = int64(m.Src)<<32 | int64(i)
		}
		slices.Sort(keys)
		unmatched = matchSorted(t, srcChild, keys, 0, k, 0, partner)
		for i, m := range q {
			keys[i] = int64(m.Dst)<<32 | int64(i)
		}
		slices.Sort(keys)
		matchSorted(t, dstChild, keys, 0, k, 1, partner)
	}

	// Tracing: follow strings, alternating sides; start with the unmatched
	// source end if any (the single open path when k is odd), then pick
	// unassigned messages in q order (the remaining components are cycles).
	side := bi.side[:k]
	for i := range side {
		side[i] = -1
	}
	if unmatched != -1 {
		traceStrands(partner, side, unmatched)
	}
	for i := 0; i < k; i++ {
		if side[i] == -1 {
			traceStrands(partner, side, int32(2*i))
		}
	}
	la := 0
	for _, s := range side {
		if s == 0 {
			la++
		}
	}
	c0, c1 := 0, la
	for i, m := range q {
		if side[i] == 0 {
			out[c0] = m
			c0++
		} else {
			out[c1] = m
			c1++
		}
	}
	return la
}

// matchSorted performs the hierarchical matching over the subtree rooted at
// node: keys[lo:hi] are composite (processor<<32 | message index) keys sorted
// ascending, so each subtree owns a contiguous segment found by binary
// search. At each leaf consecutive ends pair up; at each internal node the
// (at most one) unmatched end from each child is paired. End ids are
// 2·index+endBit (endBit 0 = source/processor ends, 1 = destination ends).
// It returns the single unmatched end, or -1.
//
//ftlint:hotpath
func matchSorted(t core.Topology, node int, keys []int64, lo, hi, endBit int, partner []int32) int32 {
	if lo >= hi {
		return -1
	}
	plo, phi := t.SubtreeLeaves(node)
	if plo+1 == phi {
		for i := lo; i+1 < hi; i += 2 {
			a := int32(keys[i]&0xffffffff)<<1 | int32(endBit)
			b := int32(keys[i+1]&0xffffffff)<<1 | int32(endBit)
			partner[a] = b
			partner[b] = a
		}
		if (hi-lo)%2 == 1 {
			return int32(keys[hi-1]&0xffffffff)<<1 | int32(endBit)
		}
		return -1
	}
	mid := (plo + phi) / 2
	cut, top := lo, hi
	for cut < top {
		h := int(uint(cut+top) >> 1)
		if int(keys[h]>>32) < mid {
			cut = h + 1
		} else {
			top = h
		}
	}
	l := matchSorted(t, 2*node, keys, lo, cut, endBit, partner)
	r := matchSorted(t, 2*node+1, keys, cut, hi, endBit, partner)
	if l != -1 && r != -1 {
		partner[l] = r
		partner[r] = l
		return -1
	}
	if l != -1 {
		return l
	}
	return r
}

// traceStrands follows one string component starting from end start,
// assigning side 0 to messages traversed source→destination and side 1 to
// messages traversed destination→source, until the component closes or an
// unmatched end is reached.
//
//ftlint:hotpath
func traceStrands(partner []int32, side []int8, start int32) {
	e := start
	for {
		m := e / 2
		if side[m] != -1 {
			return
		}
		side[m] = 0
		p := partner[2*m+1]
		if p == -1 {
			return
		}
		m2 := p / 2
		if side[m2] != -1 {
			return
		}
		side[m2] = 1
		e = partner[2*m2]
		if e == -1 {
			return
		}
	}
}
