// Package sched implements the off-line scheduling algorithms of Section III
// of the paper: Theorem 1 (arbitrary fat-trees, d = O(λ(M)·lg n) delivery
// cycles) and Corollary 2 (channels of capacity >= α·lg n, d <= 2(α/(α-1))·λ(M)
// delivery cycles). Both are built on an even-bisection primitive that splits
// the messages crossing a tree node into two halves whose load on *every*
// channel differs by at most one; the bisection is the paper's
// matching-and-tracing construction (strings with source and destination ends,
// hierarchical matching up the tree, then alternating assignment along traced
// strands), reminiscent of switch setting in a Beneš network.
package sched

import (
	"fmt"
	"sort"

	"fattree/internal/core"
)

// end encoding: message q[i] has a source end 2i and a destination end 2i+1.
// mate(e) — the other end of the same string — is e^1.

// EvenBisect partitions q into two message sets (a, b) such that for every
// channel c of the fat-tree, |load(a,c) - load(b,c)| <= 1, and moreover
// load(a,c) = ceil(load(q,c)/2). All messages of q must cross node v in the
// same direction: every source in one child subtree of v and every destination
// in the other. EvenBisect panics if q violates that precondition, since it is
// only ever called on the crossing sets the schedulers construct.
func EvenBisect(t *core.FatTree, v int, q core.MessageSet) (a, b core.MessageSet) {
	if len(q) == 0 {
		return nil, nil
	}
	if len(q) == 1 {
		return q.Clone(), nil
	}
	left, right := 2*v, 2*v+1
	srcChild, dstChild := left, right
	if !t.Contains(left, q[0].Src) {
		srcChild, dstChild = right, left
	}
	for _, m := range q {
		if !t.Contains(srcChild, m.Src) || !t.Contains(dstChild, m.Dst) {
			panic(fmt.Sprintf("sched: message %v does not cross node %d from subtree %d to %d",
				m, v, srcChild, dstChild))
		}
	}

	// partner[e] is the end matched with e by the hierarchical matching, or -1.
	partner := make([]int, 2*len(q))
	for i := range partner {
		partner[i] = -1
	}

	// Hierarchically match source ends within the source subtree and
	// destination ends within the destination subtree. At each leaf as many
	// pairs as possible are matched; at each internal node the (at most one)
	// unmatched end from each child is paired. Source ends match only source
	// ends and destination ends only destination ends, because all of q
	// crosses v in the same direction.
	srcEnds := make([]int, len(q))
	dstEnds := make([]int, len(q))
	for i := range q {
		srcEnds[i] = 2 * i
		dstEnds[i] = 2*i + 1
	}
	unmatchedSrc := hierMatch(t, srcChild, srcEnds, leafOfEnd(t, q, true), partner)
	hierMatch(t, dstChild, dstEnds, leafOfEnd(t, q, false), partner)

	// Tracing phase: follow strings, alternating sides. Traversing a string
	// from source to destination assigns its message to side 0; traversing
	// destination to source assigns to side 1. Start with the unmatched source
	// end if there is one (the single open path when |q| is odd), then pick
	// arbitrary unassigned source ends (the remaining components are cycles).
	side := make([]int8, len(q))
	for i := range side {
		side[i] = -1
	}
	trace := func(startSrcEnd int) {
		e := startSrcEnd
		for {
			m := e / 2
			if side[m] != -1 {
				return
			}
			side[m] = 0 // traversed source -> destination
			p := partner[2*m+1]
			if p == -1 {
				return // reached the unmatched destination end
			}
			m2 := p / 2
			if side[m2] != -1 {
				return // completed a cycle
			}
			side[m2] = 1 // traversed destination -> source
			e = partner[2*m2]
			if e == -1 {
				return
			}
		}
	}
	if unmatchedSrc != -1 {
		trace(unmatchedSrc)
	}
	for i := range q {
		if side[i] == -1 {
			trace(2 * i)
		}
	}

	for i, m := range q {
		if side[i] == 0 {
			a = append(a, m)
		} else {
			b = append(b, m)
		}
	}
	return a, b
}

// EvenBisectExternal is the analog of EvenBisect for external traffic: all
// messages of q must cross the root interface in the same direction (all
// outputs, dst == External, or all inputs, src == External). The processor
// ends are matched hierarchically over the whole tree; the external ends all
// live at the interface and are paired consecutively. Every channel's load —
// including the root channel's — splits to within one.
func EvenBisectExternal(t *core.FatTree, q core.MessageSet) (a, b core.MessageSet) {
	if len(q) == 0 {
		return nil, nil
	}
	if len(q) == 1 {
		return q.Clone(), nil
	}
	outbound := q[0].Dst == core.External
	for _, m := range q {
		if !m.IsExternal() || (m.Dst == core.External) != outbound {
			panic(fmt.Sprintf("sched: message %v does not match the external direction", m))
		}
	}
	procOf := func(m core.Message) int {
		if outbound {
			return m.Src
		}
		return m.Dst
	}

	partner := make([]int, 2*len(q))
	for i := range partner {
		partner[i] = -1
	}
	procEnds := make([]int, len(q))
	for i := range q {
		procEnds[i] = 2 * i
	}
	unmatchedProc := hierMatch(t, 1, procEnds, func(e int) int { return procOf(q[e/2]) }, partner)
	// External ends pair consecutively at the interface.
	for i := 0; i+1 < len(q); i += 2 {
		partner[2*i+1] = 2*(i+1) + 1
		partner[2*(i+1)+1] = 2*i + 1
	}

	side := make([]int8, len(q))
	for i := range side {
		side[i] = -1
	}
	trace := func(startProcEnd int) {
		e := startProcEnd
		for {
			m := e / 2
			if side[m] != -1 {
				return
			}
			side[m] = 0
			p := partner[2*m+1]
			if p == -1 {
				return
			}
			m2 := p / 2
			if side[m2] != -1 {
				return
			}
			side[m2] = 1
			e = partner[2*m2]
			if e == -1 {
				return
			}
		}
	}
	if unmatchedProc != -1 {
		trace(unmatchedProc)
	}
	for i := range q {
		if side[i] == -1 {
			trace(2 * i)
		}
	}
	for i, m := range q {
		if side[i] == 0 {
			a = append(a, m)
		} else {
			b = append(b, m)
		}
	}
	return a, b
}

// leafOfEnd returns a function giving the leaf processor where an end lives:
// for source ends (src=true) the message's source, else its destination.
func leafOfEnd(t *core.FatTree, q core.MessageSet, src bool) func(e int) int {
	return func(e int) int {
		m := q[e/2]
		if src {
			return m.Src
		}
		return m.Dst
	}
}

// hierMatch performs the hierarchical matching of ends over the subtree rooted
// at root. ends is the list of end ids to be matched; leafOf maps an end to
// the processor (leaf) where it lives. Pairs are recorded symmetrically in
// partner. It returns the single unmatched end, or -1 if none.
func hierMatch(t *core.FatTree, root int, ends []int, leafOf func(int) int, partner []int) int {
	// Sort ends by leaf so each subtree owns a contiguous segment.
	sort.Slice(ends, func(i, j int) bool { return leafOf(ends[i]) < leafOf(ends[j]) })

	var rec func(node int, seg []int) int
	rec = func(node int, seg []int) int {
		if len(seg) == 0 {
			return -1
		}
		lo, hi := t.SubtreeLeaves(node)
		if lo+1 == hi {
			// Leaf: match as many pairs as possible; at most one end remains.
			for i := 0; i+1 < len(seg); i += 2 {
				partner[seg[i]] = seg[i+1]
				partner[seg[i+1]] = seg[i]
			}
			if len(seg)%2 == 1 {
				return seg[len(seg)-1]
			}
			return -1
		}
		// Split the segment at the boundary between the children's leaf
		// ranges.
		mid := (lo + hi) / 2
		cut := sort.Search(len(seg), func(i int) bool { return leafOf(seg[i]) >= mid })
		l := rec(2*node, seg[:cut])
		r := rec(2*node+1, seg[cut:])
		if l != -1 && r != -1 {
			partner[l] = r
			partner[r] = l
			return -1
		}
		if l != -1 {
			return l
		}
		return r
	}
	return rec(root, ends)
}
