// Package sched implements the off-line scheduling algorithms of Section III
// of the paper: Theorem 1 (arbitrary fat-trees, d = O(λ(M)·lg n) delivery
// cycles) and Corollary 2 (channels of capacity >= α·lg n, d <= 2(α/(α-1))·λ(M)
// delivery cycles). Both are built on an even-bisection primitive that splits
// the messages crossing a tree node into two halves whose load on *every*
// channel differs by at most one; the bisection is the paper's
// matching-and-tracing construction (strings with source and destination ends,
// hierarchical matching up the tree, then alternating assignment along traced
// strands), reminiscent of switch setting in a Beneš network.
package sched

import (
	"fmt"

	"fattree/internal/core"
)

// end encoding: message q[i] has a source end 2i and a destination end 2i+1.
// mate(e) — the other end of the same string — is e^1. The matching-and-
// tracing machinery itself (bisectPart, matchSorted, traceStrands) lives in
// scheduler.go, where the Scheduler arena drives it allocation-free; the
// exported primitives here validate their preconditions and allocate
// call-local scratch.

// EvenBisect partitions q into two message sets (a, b) such that for every
// channel c of the fat-tree, |load(a,c) - load(b,c)| <= 1, and moreover
// load(a,c) = ceil(load(q,c)/2). All messages of q must cross node v in the
// same direction: every source in one child subtree of v and every destination
// in the other. EvenBisect panics if q violates that precondition, since it is
// only ever called on the crossing sets the schedulers construct.
func EvenBisect(t core.Topology, v int, q core.MessageSet) (a, b core.MessageSet) {
	if len(q) == 0 {
		return nil, nil
	}
	if len(q) == 1 {
		return q.Clone(), nil
	}
	left, right := 2*v, 2*v+1
	srcChild, dstChild := left, right
	if !t.Contains(left, q[0].Src) {
		srcChild, dstChild = right, left
	}
	for _, m := range q {
		if !t.Contains(srcChild, m.Src) || !t.Contains(dstChild, m.Dst) {
			panic(fmt.Sprintf("sched: message %v does not cross node %d from subtree %d to %d",
				m, v, srcChild, dstChild))
		}
	}
	return evenBisectOwned(t, v, q, false, false)
}

// EvenBisectExternal is the analog of EvenBisect for external traffic: all
// messages of q must cross the root interface in the same direction (all
// outputs, dst == External, or all inputs, src == External). The processor
// ends are matched hierarchically over the whole tree; the external ends all
// live at the interface and are paired consecutively. Every channel's load —
// including the root channel's — splits to within one.
func EvenBisectExternal(t core.Topology, q core.MessageSet) (a, b core.MessageSet) {
	if len(q) == 0 {
		return nil, nil
	}
	if len(q) == 1 {
		return q.Clone(), nil
	}
	outbound := q[0].Dst == core.External
	for _, m := range q {
		if !m.IsExternal() || (m.Dst == core.External) != outbound {
			panic(fmt.Sprintf("sched: message %v does not match the external direction", m))
		}
	}
	return evenBisectOwned(t, 0, q, true, outbound)
}

// evenBisectOwned runs bisectPart with freshly allocated scratch and returns
// independently owned halves (b is nil when every message lands on side 0,
// preserving the historical return shape for k <= 1 edge cases).
func evenBisectOwned(t core.Topology, v int, q core.MessageSet, external, outbound bool) (a, b core.MessageSet) {
	k := len(q)
	bi := bisector{
		partner: make([]int32, 2*k),
		side:    make([]int8, k),
		keys:    make([]int64, k),
	}
	out := make(core.MessageSet, k)
	la := bisectPart(t, v, q, out, &bi, external, outbound)
	a = out[:la:la]
	if la == k {
		return a, nil
	}
	return a, out[la:]
}
