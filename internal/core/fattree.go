// Package core implements the fat-tree routing network of Leiserson's 1985
// paper "Fat-Trees: Universal Networks for Hardware-Efficient Supercomputing".
//
// A fat-tree is a routing network based on a complete binary tree. A set of n
// processors is located at the leaves, and each edge of the underlying tree
// corresponds to two channels: one from parent to child and one from child to
// parent. Each channel c has a capacity cap(c), the number of wires in the
// channel, which — under bit-serial communication — is also the maximum number
// of simultaneous messages the channel can support. Going up the tree the
// capacities grow, so a fat-tree gets "thicker" toward the root, like a real
// tree.
//
// Nodes are heap-indexed: the root is node 1, the children of node v are 2v
// and 2v+1, and the leaves are nodes n..2n-1 (processor p sits at leaf n+p).
// Following the paper, every node and the channel *beneath* it share a level
// number equal to the node's distance from the root: the root and the external
// root channel are at level 0, the processors and the channels leaving them
// are at level lg n.
package core

import (
	"fmt"
	"math"
	"math/bits"
)

// Direction distinguishes the two channels of a tree edge.
type Direction int

const (
	// Up is the child-to-parent channel (toward the root).
	Up Direction = iota
	// Down is the parent-to-child channel (toward the leaves).
	Down
)

// String returns "up" or "down".
func (d Direction) String() string {
	if d == Up {
		return "up"
	}
	return "down"
}

// Channel identifies one directed channel of a fat-tree: the Up or Down half
// of the edge between Node and its parent. The root channel (Node == 1)
// connects the root to the external interface.
type Channel struct {
	Node int       // heap index of the node beneath the channel
	Dir  Direction // Up (toward root) or Down (toward leaves)
}

// String renders the channel as e.g. "up(6)" for debugging output.
func (c Channel) String() string { return fmt.Sprintf("%s(%d)", c.Dir, c.Node) }

// geom is the shared geometry of a fat-tree: the level-uniform capacity
// profile plus a sparse per-channel override overlay. Every query —
// parent/child/LCA navigation, per-channel capacities, subtree intervals — is
// heap-index arithmetic over this O(levels)-sized state; nothing is stored
// per node. Both FatTree and ImplicitFatTree embed it, so the two topology
// implementations cannot drift apart.
type geom struct {
	n      int   // number of processors (power of two)
	levels int   // lg n; leaves are at level `levels`
	caps   []int // caps[k] = capacity of every channel at level k, 0 <= k <= levels

	// override holds per-channel capacity overrides (same value for both
	// directions), keyed by node index. It is nil unless SetChannelCapacity
	// has been called. Overrides let callers model irregular fat-trees; the
	// universal fat-trees of the paper are level-uniform.
	override map[int]int
}

// FatTree is a fat-tree routing network on n = 2^L processors, the
// "materialized" Topology implementation: it additionally offers the flat
// per-node CapTable used by the dense simulation engine and observer. The
// zero value is not usable; construct one with New, NewUniversal, or
// NewConstant.
type FatTree struct {
	geom
}

// newGeom validates and builds the shared geometry; see New.
func newGeom(n int, capAt func(level int) int) geom {
	if n < 2 || n&(n-1) != 0 {
		panic(fmt.Sprintf("core: n = %d must be a power of two and >= 2", n))
	}
	levels := bits.Len(uint(n)) - 1
	caps := make([]int, levels+1)
	for k := 0; k <= levels; k++ {
		c := capAt(k)
		if c < 1 {
			panic(fmt.Sprintf("core: capacity at level %d is %d; must be >= 1", k, c))
		}
		caps[k] = c
	}
	return geom{n: n, levels: levels, caps: caps}
}

// New builds a fat-tree on n processors whose channel capacity at level k is
// capAt(k), for 0 <= k <= lg n. n must be a power of two and at least 2, and
// capAt must return a positive capacity for every level; New panics otherwise,
// since a malformed network is a programming error, not a runtime condition.
func New(n int, capAt func(level int) int) *FatTree {
	return &FatTree{geom: newGeom(n, capAt)}
}

// UniversalCapacity returns the channel capacity at the given level of a
// universal fat-tree on n processors with root capacity w, per the paper's
// definition in Section IV:
//
//	cap(c at level k) = min( ceil(n / 2^k), ceil(w / 2^(2k/3)) ), at least 1.
//
// Near the leaves the first term governs and capacities double from one level
// to the next going up; within 3·lg(n/w) levels of the root the second term
// governs and capacities grow at the rate 4^(1/3) = 2^(2/3) per level, which
// is the growth rate a 3-D volume argument can support. The regimes cross at
// level k = 3·lg(n/w).
func UniversalCapacity(n, w, level int) int {
	doubling := ceilDiv(n, 1<<uint(level))
	root := int(math.Ceil(float64(w) / math.Pow(2, 2*float64(level)/3)))
	c := doubling
	if root < c {
		c = root
	}
	if c < 1 {
		c = 1
	}
	return c
}

// NewUniversal builds a universal fat-tree on n processors with root capacity
// w, using the capacity profile of Section IV. The paper requires
// n^(2/3) <= w <= n for the profile to be meaningful; values outside that
// range are accepted (the min() clamps them) so callers can explore the edges.
func NewUniversal(n, w int) *FatTree {
	if w < 1 {
		panic(fmt.Sprintf("core: root capacity w = %d must be >= 1", w))
	}
	return New(n, func(k int) int { return UniversalCapacity(n, w, k) })
}

// NewConstant builds a fat-tree whose every channel has capacity c. With c = 1
// this is the plain binary tree the paper contrasts against.
func NewConstant(n, c int) *FatTree {
	return New(n, func(int) int { return c })
}

// NewDoubling builds the pure-doubling profile cap_k = ceil(n/2^k): capacities
// double at every level all the way to the root (root capacity n). This is the
// "ablation" profile contrasted with the universal profile in the benchmarks:
// it has the same leaf behaviour but ignores the 3-D volume constraint near
// the root.
func NewDoubling(n int) *FatTree {
	return New(n, func(k int) int { return ceilDiv(n, 1<<uint(k)) })
}

// Processors returns n, the number of processors (leaves).
func (t *geom) Processors() int { return t.n }

// Levels returns lg n, the level number of the leaves. Channels exist at
// levels 0 (the external root channel) through Levels() (the channels between
// processors and their parent switches).
func (t *geom) Levels() int { return t.levels }

// Nodes returns the total number of tree nodes, 2n-1 (internal switches plus
// leaves).
func (t *geom) Nodes() int { return 2*t.n - 1 }

// InternalNodes returns the number of switching nodes, n-1.
func (t *geom) InternalNodes() int { return t.n - 1 }

// Leaf returns the heap index of processor p's leaf. It panics if p is out of
// range.
func (t *geom) Leaf(p int) int {
	if p < 0 || p >= t.n {
		panic(fmt.Sprintf("core: processor %d out of range [0,%d)", p, t.n))
	}
	return t.n + p
}

// ProcessorOf returns the processor number of leaf node v, or -1 if v is not a
// leaf.
func (t *geom) ProcessorOf(v int) int {
	if v < t.n || v >= 2*t.n {
		return -1
	}
	return v - t.n
}

// Level returns the level (distance from the root) of node v. The root has
// level 0 and leaves have level lg n.
func (t *geom) Level(v int) int {
	if v < 1 || v >= 2*t.n {
		panic(fmt.Sprintf("core: node %d out of range [1,%d)", v, 2*t.n))
	}
	return bits.Len(uint(v)) - 1
}

// Parent returns the parent of node v, or 0 for the root. v is not
// range-checked; it is the hot-path navigation primitive.
//
//ftlint:hotpath
func (t *geom) Parent(v int) int { return v >> 1 }

// Children returns the contiguous child range of node v: (2v, 2) for an
// internal node, (0, 0) for a leaf.
func (t *geom) Children(v int) (first, count int) {
	t.Level(v) // range-check
	if v >= t.n {
		return 0, 0
	}
	return 2 * v, 2
}

// LevelRange returns the contiguous node range of level k: [2^k, 2^(k+1)).
// It panics if k is out of range.
func (t *geom) LevelRange(k int) (first, count int) {
	if k < 0 || k > t.levels {
		panic(fmt.Sprintf("core: level %d out of range [0,%d]", k, t.levels))
	}
	return 1 << uint(k), 1 << uint(k)
}

// CapacityAtLevel returns the (level-uniform) capacity of channels at level k.
// Per-channel overrides are not reflected here; use Capacity for that.
func (t *geom) CapacityAtLevel(k int) int {
	if k < 0 || k > t.levels {
		panic(fmt.Sprintf("core: level %d out of range [0,%d]", k, t.levels))
	}
	return t.caps[k]
}

// Capacity returns the capacity of the channel c, honouring any per-channel
// override. Both directions of an edge always share one capacity, as in the
// paper (each tree edge corresponds to two channels of equal width).
func (t *geom) Capacity(c Channel) int {
	if t.override != nil {
		if v, ok := t.override[c.Node]; ok {
			return v
		}
	}
	return t.caps[t.Level(c.Node)]
}

// CapAt returns the capacity of both channels of the edge above node v,
// honouring overrides, without range-checking v. It is the O(1) hot-path
// accessor behind the streaming engine; callers must guarantee 1 <= v < 2n
// (bits.Len on an out-of-range index reads a wrong level or panics on the
// slice access).
//
//ftlint:hotpath
func (t *geom) CapAt(v int) int {
	if t.override != nil {
		if c, ok := t.override[v]; ok {
			return c
		}
	}
	return t.caps[bits.Len(uint(v))-1]
}

// LevelCapTable returns a fresh copy of the per-level capacity table:
// table[k] is the level-uniform capacity at level k, 0 <= k <= Levels().
// Per-channel overrides are not reflected; enumerate them with Overrides.
// This is the O(levels) counterpart of FatTree.CapTable for callers that must
// stay independent of n.
func (t *geom) LevelCapTable() []int {
	table := make([]int, len(t.caps))
	copy(table, t.caps)
	return table
}

// Overrides calls fn for every per-channel capacity override in effect. The
// iteration order is unspecified (the overlay is a map), so callers must do
// only order-independent work — sums, corrections, copies.
func (t *geom) Overrides(fn func(node, cap int)) {
	for v, c := range t.override {
		fn(v, c)
	}
}

// CapTable returns a freshly allocated flat capacity table indexed by heap
// node id: table[v] is the capacity of both channels of the edge above node v
// (index 0 is unused). It memoizes Capacity — including any per-channel
// overrides in effect at the call — so hot loops can replace map probes with
// a single array read. Callers own the slice; overrides applied after the
// call are not reflected.
//
// CapTable is deliberately not part of the Topology interface: it is O(n)
// memory, which is exactly what ImplicitFatTree exists to avoid. Interface
// consumers use CapTableOf, which falls back to LevelCapTable + Overrides.
func (t *FatTree) CapTable() []int {
	table := make([]int, 2*t.n)
	for v := 1; v < 2*t.n; v++ {
		table[v] = t.caps[bits.Len(uint(v))-1]
	}
	if t.override != nil {
		for v := 1; v < 2*t.n; v++ {
			if c, ok := t.override[v]; ok {
				table[v] = c
			}
		}
	}
	return table
}

// SetChannelCapacity overrides the capacity of both channels of the edge above
// node v. cap must be >= 1 and v must be a valid heap node index in [1, 2n);
// both are validated up front (before any mutation) with the same panics on
// every Topology implementation, so a caller that survives the call on a
// FatTree behaves identically on an ImplicitFatTree.
func (t *geom) SetChannelCapacity(v, cap int) {
	if cap < 1 {
		panic(fmt.Sprintf("core: capacity %d must be >= 1", cap))
	}
	if v < 1 || v >= 2*t.n {
		panic(fmt.Sprintf("core: node %d out of range [1,%d)", v, 2*t.n))
	}
	if t.override == nil {
		t.override = make(map[int]int)
	}
	t.override[v] = cap
}

// RootCapacity returns the capacity of the level-0 channel between the root
// and the external interface.
func (t *geom) RootCapacity() int { return t.Capacity(Channel{Node: 1, Dir: Up}) }

// Channels calls fn for every directed channel of the fat-tree, in
// deterministic order (node 1..2n-1, Up then Down). The root channel (node 1)
// is included: it models the external interface. This iterator is inherently
// O(n); size-independent callers should work per level instead.
func (t *geom) Channels(fn func(Channel)) {
	for v := 1; v < 2*t.n; v++ {
		fn(Channel{Node: v, Dir: Up})
		fn(Channel{Node: v, Dir: Down})
	}
}

// TotalWires returns the sum of capacities over all directed channels — a
// crude "amount of communication hardware" figure used by the cost model and
// the topology inspector. It is computed in O(levels + #overrides): level k
// contributes 2^k channels per direction at the level-uniform capacity, and
// each override corrects its edge's contribution.
func (t *geom) TotalWires() int {
	total := 0
	for k, c := range t.caps {
		total += 2 * (1 << uint(k)) * c
	}
	for v, c := range t.override {
		total += 2 * (c - t.caps[bits.Len(uint(v))-1])
	}
	return total
}

// SubtreeLeaves returns the half-open processor interval [lo, hi) of the
// leaves under node v. For a leaf it is the single processor.
func (t *geom) SubtreeLeaves(v int) (lo, hi int) {
	t.Level(v) // range-check
	// Left-most descendant leaf: keep taking left children.
	l, r := v, v
	for l < t.n {
		l = 2 * l
		r = 2*r + 1
	}
	return l - t.n, r - t.n + 1
}

// Contains reports whether processor p lies in the subtree rooted at node v.
func (t *geom) Contains(v, p int) bool {
	lo, hi := t.SubtreeLeaves(v)
	return p >= lo && p < hi
}

// String summarizes the fat-tree ("fat-tree(n=64, caps=[8 8 7 5 4 2 1])").
func (t *FatTree) String() string {
	return fmt.Sprintf("fat-tree(n=%d, caps=%v)", t.n, t.caps)
}

// ceilDiv returns ceil(a/b) for positive a, b.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Lg returns max(1, ceil(log2 x)) — the paper's "lg" notation, used for
// address lengths and the fictitious-capacity slack of Corollary 2.
func Lg(x int) int {
	if x <= 2 {
		return 1
	}
	return bits.Len(uint(x - 1))
}
