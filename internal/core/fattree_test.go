package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, 1, 3, 6, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", n)
				}
			}()
			New(n, func(int) int { return 1 })
		}()
	}
}

func TestNewRejectsBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("New with zero capacity did not panic")
		}
	}()
	New(8, func(k int) int { return 0 })
}

func TestLevelsAndNodes(t *testing.T) {
	cases := []struct {
		n, levels, nodes, internal int
	}{
		{2, 1, 3, 1},
		{4, 2, 7, 3},
		{64, 6, 127, 63},
		{1024, 10, 2047, 1023},
	}
	for _, c := range cases {
		ft := NewConstant(c.n, 1)
		if got := ft.Levels(); got != c.levels {
			t.Errorf("n=%d: Levels=%d want %d", c.n, got, c.levels)
		}
		if got := ft.Nodes(); got != c.nodes {
			t.Errorf("n=%d: Nodes=%d want %d", c.n, got, c.nodes)
		}
		if got := ft.InternalNodes(); got != c.internal {
			t.Errorf("n=%d: InternalNodes=%d want %d", c.n, got, c.internal)
		}
	}
}

func TestLevelOfNodes(t *testing.T) {
	ft := NewConstant(8, 1)
	want := map[int]int{1: 0, 2: 1, 3: 1, 4: 2, 7: 2, 8: 3, 15: 3}
	for v, lv := range want {
		if got := ft.Level(v); got != lv {
			t.Errorf("Level(%d)=%d want %d", v, got, lv)
		}
	}
}

func TestLeafAndProcessorOf(t *testing.T) {
	ft := NewConstant(16, 1)
	for p := 0; p < 16; p++ {
		leaf := ft.Leaf(p)
		if got := ft.ProcessorOf(leaf); got != p {
			t.Errorf("ProcessorOf(Leaf(%d))=%d", p, got)
		}
		if ft.Level(leaf) != ft.Levels() {
			t.Errorf("leaf %d not at leaf level", leaf)
		}
	}
	if ft.ProcessorOf(1) != -1 || ft.ProcessorOf(7) != -1 {
		t.Errorf("internal nodes should map to processor -1")
	}
}

func TestUniversalCapacityProfile(t *testing.T) {
	n, w := 4096, 1024 // n^(2/3) = 256 <= w <= n
	ft := NewUniversal(n, w)
	if got := ft.RootCapacity(); got != w {
		t.Errorf("root capacity = %d, want %d", got, w)
	}
	// Leaf channels have capacity 1 when w <= n.
	if got := ft.CapacityAtLevel(ft.Levels()); got != 1 {
		t.Errorf("leaf capacity = %d, want 1", got)
	}
	// Capacities must be non-increasing going down the tree.
	for k := 1; k <= ft.Levels(); k++ {
		if ft.CapacityAtLevel(k) > ft.CapacityAtLevel(k-1) {
			t.Errorf("capacity increases going down: level %d: %d > %d",
				k, ft.CapacityAtLevel(k), ft.CapacityAtLevel(k-1))
		}
	}
	// Near the leaves, capacities double per level (the n/2^k regime).
	crossover := 3 * Lg(n/w) // = 6 here
	for k := ft.Levels(); k > crossover+1; k-- {
		lower, upper := ft.CapacityAtLevel(k), ft.CapacityAtLevel(k-1)
		if upper != 2*lower && upper != 2*lower-1 { // ceil effects
			t.Errorf("expected doubling at level %d: %d -> %d", k, lower, upper)
		}
	}
	// Near the root, growth rate should be ~4^(1/3) per level.
	ratio := float64(ft.CapacityAtLevel(0)) / float64(ft.CapacityAtLevel(1))
	want := math.Pow(2, 2.0/3.0)
	if math.Abs(ratio-want) > 0.1 {
		t.Errorf("near-root growth ratio = %.3f, want ~%.3f", ratio, want)
	}
}

func TestUniversalCapacityCrossover(t *testing.T) {
	// At k = 3 lg(n/w) the two regimes agree: n/2^k == w/2^(2k/3).
	n, w := 1<<12, 1<<9
	k := 3 * (12 - 9)
	doubling := float64(n) / math.Pow(2, float64(k))
	rootRegime := float64(w) / math.Pow(2, 2*float64(k)/3)
	if math.Abs(doubling-rootRegime) > 1e-9 {
		t.Fatalf("regimes disagree at crossover: %v vs %v", doubling, rootRegime)
	}
}

func TestDoublingProfile(t *testing.T) {
	ft := NewDoubling(64)
	if ft.RootCapacity() != 64 {
		t.Errorf("doubling root capacity = %d, want 64", ft.RootCapacity())
	}
	for k := 0; k <= ft.Levels(); k++ {
		want := 64 >> uint(k)
		if got := ft.CapacityAtLevel(k); got != want {
			t.Errorf("level %d capacity = %d, want %d", k, got, want)
		}
	}
}

func TestSetChannelCapacity(t *testing.T) {
	ft := NewConstant(8, 4)
	ft.SetChannelCapacity(2, 9)
	if got := ft.Capacity(Channel{Node: 2, Dir: Up}); got != 9 {
		t.Errorf("override not applied: got %d", got)
	}
	if got := ft.Capacity(Channel{Node: 2, Dir: Down}); got != 9 {
		t.Errorf("override must cover both directions: got %d", got)
	}
	if got := ft.Capacity(Channel{Node: 3, Dir: Up}); got != 4 {
		t.Errorf("override leaked to other channel: got %d", got)
	}
}

func TestSubtreeLeaves(t *testing.T) {
	ft := NewConstant(8, 1)
	cases := []struct{ v, lo, hi int }{
		{1, 0, 8}, {2, 0, 4}, {3, 4, 8}, {4, 0, 2}, {7, 6, 8}, {8, 0, 1}, {15, 7, 8},
	}
	for _, c := range cases {
		lo, hi := ft.SubtreeLeaves(c.v)
		if lo != c.lo || hi != c.hi {
			t.Errorf("SubtreeLeaves(%d) = [%d,%d), want [%d,%d)", c.v, lo, hi, c.lo, c.hi)
		}
	}
}

func TestContains(t *testing.T) {
	ft := NewConstant(16, 1)
	if !ft.Contains(2, 3) || ft.Contains(2, 8) {
		t.Errorf("Contains wrong for node 2")
	}
	for p := 0; p < 16; p++ {
		if !ft.Contains(1, p) {
			t.Errorf("root must contain every processor")
		}
	}
}

func TestTotalWires(t *testing.T) {
	ft := NewConstant(4, 3)
	// 7 nodes × 2 directions × capacity 3 = 42.
	if got := ft.TotalWires(); got != 42 {
		t.Errorf("TotalWires = %d, want 42", got)
	}
}

func TestChannelsEnumeration(t *testing.T) {
	ft := NewConstant(8, 1)
	count := 0
	seen := map[Channel]bool{}
	ft.Channels(func(c Channel) {
		if seen[c] {
			t.Errorf("channel %v enumerated twice", c)
		}
		seen[c] = true
		count++
	})
	if count != 2*ft.Nodes() {
		t.Errorf("enumerated %d channels, want %d", count, 2*ft.Nodes())
	}
}

func TestLg(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for x, want := range cases {
		if got := Lg(x); got != want {
			t.Errorf("Lg(%d)=%d want %d", x, got, want)
		}
	}
}

func TestUniversalCapacityMonotoneInW(t *testing.T) {
	// Property: for fixed n and level, capacity is nondecreasing in w.
	n := 1 << 10
	f := func(wRaw, kRaw uint16) bool {
		w := int(wRaw)%n + 1
		k := int(kRaw) % 11
		return UniversalCapacity(n, w, k) <= UniversalCapacity(n, w+1, k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMessageSetValidate(t *testing.T) {
	ft := NewConstant(8, 1)
	if err := (MessageSet{{0, 7}, {3, 4}}).Validate(ft); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
	bad := []MessageSet{
		{{0, 8}},  // dst out of range
		{{-3, 2}}, // src out of range (-1 is the External pseudo-processor)
		{{3, 3}},  // self-loop
	}
	for i, ms := range bad {
		if err := ms.Validate(ft); err == nil {
			t.Errorf("bad set %d accepted", i)
		}
	}
}

func TestMessageSetEqualAndConcat(t *testing.T) {
	a := MessageSet{{0, 1}, {2, 3}}
	b := MessageSet{{2, 3}, {0, 1}}
	if !a.Equal(b) {
		t.Errorf("multiset equality failed")
	}
	c := Concat(a, MessageSet{{4, 5}})
	if len(c) != 3 {
		t.Errorf("Concat length = %d", len(c))
	}
	if a.Equal(c) {
		t.Errorf("unequal sets reported equal")
	}
	// Duplicates matter.
	if (MessageSet{{0, 1}, {0, 1}}).Equal(MessageSet{{0, 1}}) {
		t.Errorf("multiset multiplicity ignored")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := MessageSet{{0, 1}}
	b := a.Clone()
	b[0] = Message{5, 6}
	if a[0] != (Message{0, 1}) {
		t.Errorf("Clone aliased the original")
	}
}

func TestRandomTreesHaveValidCaps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 << (1 + rng.Intn(10))
		w := 1 + rng.Intn(n)
		ft := NewUniversal(n, w)
		for k := 0; k <= ft.Levels(); k++ {
			if ft.CapacityAtLevel(k) < 1 {
				t.Fatalf("n=%d w=%d level %d: capacity < 1", n, w, k)
			}
		}
	}
}
