package core

// This file implements the load machinery of Section III: load(M, c) is the
// number of messages of a message set M that must pass through channel c, the
// load factor λ(M, c) = load(M, c)/cap(c), and the load factor of the whole
// fat-tree λ(M) = max over channels. λ(M) is a lower bound on the number of
// delivery cycles needed to deliver M, and Theorem 1/Corollary 2 show it is
// nearly achievable.

// Loads records, for every edge of a fat-tree, how many messages of some
// message set traverse its Up and Down channels. Index by node id.
type Loads struct {
	tree  Topology
	nodes int  // highest node index, cached so the scans below stay O(1) per probe
	heap  bool // heap-indexed tree: the path walks below use the inline v/2 parent
	up    []int
	down  []int
}

// NewLoads computes the per-channel loads of ms on t in O(|ms|·levels) time:
// the up channel above node v carries the messages whose source lies in v's
// subtree and whose destination does not; symmetrically for down.
func NewLoads(t Topology, ms MessageSet) *Loads {
	nodes := t.Nodes()
	l := &Loads{
		tree:  t,
		nodes: nodes,
		heap:  HeapIndexed(t),
		up:    make([]int, nodes+1),
		down:  make([]int, nodes+1),
	}
	for _, m := range ms {
		l.Add(m)
	}
	return l
}

// parent steps one level toward the root: the inline heap shift on
// heap-indexed trees (keeping the scheduler's λ recomputation free of
// interface calls), the topology's Parent otherwise.
//
//ftlint:hotpath
func (l *Loads) parent(v int) int {
	if l.heap {
		return v >> 1
	}
	return l.tree.Parent(v)
}

// Add accounts one message's path into the load table.
func (l *Loads) Add(m Message) {
	if m.IsExternal() {
		l.addExternal(m, 1)
		return
	}
	t := l.tree
	lca := t.LCA(m.Src, m.Dst)
	for v := t.Leaf(m.Src); v != lca; v = l.parent(v) {
		l.up[v]++
	}
	for v := t.Leaf(m.Dst); v != lca; v = l.parent(v) {
		l.down[v]++
	}
}

// Remove un-accounts one message's path. Removing a message that was never
// added produces negative loads; callers own that invariant.
func (l *Loads) Remove(m Message) {
	if m.IsExternal() {
		l.addExternal(m, -1)
		return
	}
	t := l.tree
	lca := t.LCA(m.Src, m.Dst)
	for v := t.Leaf(m.Src); v != lca; v = l.parent(v) {
		l.up[v]--
	}
	for v := t.Leaf(m.Dst); v != lca; v = l.parent(v) {
		l.down[v]--
	}
}

// Clear resets every channel's load to zero, so a long-lived Loads can be
// reused across message sets without reallocating its tables (the scheduler
// arena recomputes λ this way on every call).
func (l *Loads) Clear() {
	clear(l.up)
	clear(l.down)
}

// Load returns load(M, c) for the channel c.
func (l *Loads) Load(c Channel) int {
	if c.Dir == Up {
		return l.up[c.Node]
	}
	return l.down[c.Node]
}

// MaxLoad returns the maximum load over all channels.
func (l *Loads) MaxLoad() int {
	max := 0
	for v := 1; v <= l.nodes; v++ {
		if l.up[v] > max {
			max = l.up[v]
		}
		if l.down[v] > max {
			max = l.down[v]
		}
	}
	return max
}

// Factor returns the load factor λ(M, c) of channel c: load divided by
// capacity.
func (l *Loads) Factor(c Channel) float64 {
	return float64(l.Load(c)) / float64(l.tree.Capacity(c))
}

// MaxFactor returns λ(M) = max over channels of λ(M, c), together with a
// channel achieving it. For an empty message set it returns 0 and the root
// channel.
func (l *Loads) MaxFactor() (float64, Channel) {
	best := 0.0
	arg := Channel{Node: 1, Dir: Up}
	for v := 1; v <= l.nodes; v++ {
		for _, c := range [2]Channel{{Node: v, Dir: Up}, {Node: v, Dir: Down}} {
			f := l.Factor(c)
			if f > best {
				best, arg = f, c
			}
		}
	}
	return best, arg
}

// Fits reports whether the loads respect every channel capacity, i.e. whether
// the accounted message set is a one-cycle message set (λ(M) <= 1): a fat-tree
// with ideal concentrator switches routes such a set in a single delivery
// cycle.
func (l *Loads) Fits() bool {
	for v := 1; v <= l.nodes; v++ {
		if l.up[v] > l.tree.Capacity(Channel{Node: v, Dir: Up}) {
			return false
		}
		if l.down[v] > l.tree.Capacity(Channel{Node: v, Dir: Down}) {
			return false
		}
	}
	return true
}

// FitsWithSlack reports whether load(c) <= cap(c) - slack for every channel
// whose capacity exceeds slack, and load(c) <= cap(c) otherwise. It implements
// the fictitious capacities cap'(c) = cap(c) - lg n of Corollary 2.
func (l *Loads) FitsWithSlack(slack int) bool {
	for v := 1; v <= l.nodes; v++ {
		capUp := l.tree.Capacity(Channel{Node: v, Dir: Up})
		capDown := l.tree.Capacity(Channel{Node: v, Dir: Down})
		if l.up[v] > fictitious(capUp, slack) {
			return false
		}
		if l.down[v] > fictitious(capDown, slack) {
			return false
		}
	}
	return true
}

// fictitious returns max(1, cap-slack) — a channel always admits at least one
// message per cycle.
func fictitious(cap, slack int) int {
	f := cap - slack
	if f < 1 {
		f = 1
	}
	return f
}

// LoadFactor is a convenience wrapper: it computes λ(M) for ms on t.
func LoadFactor(t Topology, ms MessageSet) float64 {
	f, _ := NewLoads(t, ms).MaxFactor()
	return f
}

// IsOneCycle reports whether ms is a one-cycle message set on t
// (load(M,c) <= cap(c) for every channel).
func IsOneCycle(t Topology, ms MessageSet) bool {
	return NewLoads(t, ms).Fits()
}

// LoadFactorWithSlack computes the load factor λ'(M) under the fictitious
// capacities cap'(c) = max(1, cap(c) - slack) used in Corollary 2.
func LoadFactorWithSlack(t Topology, ms MessageSet, slack int) float64 {
	l := NewLoads(t, ms)
	best := 0.0
	for v := 1; v <= t.Nodes(); v++ {
		for _, c := range [2]Channel{{Node: v, Dir: Up}, {Node: v, Dir: Down}} {
			f := float64(l.Load(c)) / float64(fictitious(t.Capacity(c), slack))
			if f > best {
				best = f
			}
		}
	}
	return best
}
