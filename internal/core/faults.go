package core

import (
	"fmt"
	"math/rand"
)

// This file models hardware faults, one of the engineering concerns Section
// VII raises ("problems of maintenance, fault tolerance ... must be solved").
// A wire failure narrows its channel; the fat-tree keeps routing — capacities
// merely shrink, load factors rise, and the off-line scheduler adapts because
// it only ever reads cap(c). Robustness is quantified in experiment E17.

// DegradeChannels fails wires at random: each tree edge independently, with
// the given probability, loses a severity fraction of its wires in both
// directions (capacity never drops below one — the last wire is assumed
// repairable). It returns the number of degraded edges. The fat-tree is
// modified in place via capacity overrides.
func DegradeChannels(t Topology, probability, severity float64, seed int64) int {
	if probability < 0 || probability > 1 || severity < 0 || severity > 1 {
		panic("core: DegradeChannels needs probability and severity in [0,1]")
	}
	rng := rand.New(rand.NewSource(seed))
	degraded := 0
	for v := 2; v <= t.Nodes(); v++ { // skip the external root channel
		if rng.Float64() >= probability {
			continue
		}
		cap := t.Capacity(Channel{Node: v, Dir: Up})
		newCap := cap - int(float64(cap)*severity+0.5)
		if newCap < 1 {
			newCap = 1
		}
		if newCap < cap {
			t.SetChannelCapacity(v, newCap)
			degraded++
		}
	}
	return degraded
}

// FailNode fails an entire switch: both channels of the edge above node v and
// the edges above its children collapse to a single wire each (the minimal
// still-connected configuration; a totally dead switch would disconnect the
// tree, which the tree topology cannot tolerate — the paper's fat-tree has no
// path diversity between a fixed leaf pair).
func FailNode(t Topology, v int) {
	// Validate v before mutating anything: a bad index must not leave the
	// tree half-failed (the first SetChannelCapacity would otherwise apply
	// and then panic on a child, or — for v = 0 — panic after no-op guards).
	nodes := t.Nodes()
	if v < 1 || v > nodes {
		panic(fmt.Sprintf("core: FailNode: node %d out of range [1,%d)", v, nodes+1))
	}
	t.SetChannelCapacity(v, 1)
	first, count := t.Children(v)
	for c := first; c < first+count; c++ {
		t.SetChannelCapacity(c, 1)
	}
}
