package core

import (
	"fmt"
	"testing"
)

// mustPanicMsg runs fn and asserts it panics with exactly want.
func mustPanicMsg(t *testing.T, label, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("%s: no panic, want %q", label, want)
		}
		if got := fmt.Sprint(r); got != want {
			t.Fatalf("%s: panic %q, want %q", label, got, want)
		}
	}()
	fn()
}

// TestSetChannelCapacityValidation pins the bugfix that made out-of-range
// validation identical across the materialized and implicit implementations:
// both must reject cap < 1 and v outside [1, 2n) with the same panics, in the
// same order (capacity first), and must not mutate anything on a rejected
// call. The boundary nodes 1 and 2n-1 must be accepted by both.
func TestSetChannelCapacityValidation(t *testing.T) {
	const n = 8
	trees := map[string]Topology{
		"materialized": NewUniversal(n, 4),
		"implicit":     NewImplicitUniversal(n, 4),
	}
	for name, tr := range trees {
		t.Run(name, func(t *testing.T) {
			capMsg := "core: capacity 0 must be >= 1"
			rangeMsg := fmt.Sprintf("core: node %%d out of range [1,%d)", 2*n)

			mustPanicMsg(t, "cap=0", capMsg, func() { tr.SetChannelCapacity(1, 0) })
			mustPanicMsg(t, "cap=-3", "core: capacity -3 must be >= 1", func() { tr.SetChannelCapacity(1, -3) })
			mustPanicMsg(t, "v=0", fmt.Sprintf(rangeMsg, 0), func() { tr.SetChannelCapacity(0, 2) })
			mustPanicMsg(t, "v=-1", fmt.Sprintf(rangeMsg, -1), func() { tr.SetChannelCapacity(-1, 2) })
			mustPanicMsg(t, "v=2n", fmt.Sprintf(rangeMsg, 2*n), func() { tr.SetChannelCapacity(2*n, 2) })
			// Both arguments invalid: the capacity check fires first on both
			// implementations, so error behavior cannot depend on which
			// implementation a caller holds.
			mustPanicMsg(t, "both-bad", capMsg, func() { tr.SetChannelCapacity(0, 0) })

			// Rejected calls must not have mutated the overlay.
			count := 0
			tr.Overrides(func(int, int) { count++ })
			if count != 0 {
				t.Fatalf("rejected calls left %d overrides behind", count)
			}

			// Boundary acceptance: the root and the last leaf.
			tr.SetChannelCapacity(1, 2)
			tr.SetChannelCapacity(2*n-1, 1)
			if got := tr.CapAt(1); got != 2 {
				t.Fatalf("root override not applied: %d", got)
			}
			if got := tr.CapAt(2*n - 1); got != 1 {
				t.Fatalf("leaf override not applied: %d", got)
			}
		})
	}
}

// TestFailNodeValidation pins FailNode's up-front range check on both
// implementations: a bad index panics with one message and leaves the tree
// untouched — never half-failed.
func TestFailNodeValidation(t *testing.T) {
	const n = 8
	trees := map[string]Topology{
		"materialized": NewUniversal(n, 4),
		"implicit":     NewImplicitUniversal(n, 4),
	}
	for name, tr := range trees {
		t.Run(name, func(t *testing.T) {
			for _, v := range []int{0, -2, 2 * n, 100} {
				want := fmt.Sprintf("core: FailNode: node %d out of range [1,%d)", v, 2*n)
				mustPanicMsg(t, fmt.Sprintf("v=%d", v), want, func() { FailNode(tr, v) })
			}
			count := 0
			tr.Overrides(func(int, int) { count++ })
			if count != 0 {
				t.Fatalf("rejected FailNode left %d overrides behind", count)
			}

			FailNode(tr, 2) // interior node: its channel and both children collapse
			for _, v := range []int{2, 4, 5} {
				if got := tr.CapAt(v); got != 1 {
					t.Fatalf("node %d capacity %d after FailNode, want 1", v, got)
				}
			}
		})
	}
}
