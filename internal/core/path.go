package core

import "math/bits"

// Routing in the fat-tree is basically easy since every message has a unique
// path in the underlying complete binary tree: a message from processor i to
// processor j goes up the tree to their least common ancestor and then back
// down according to the least significant bits of j. This file computes those
// paths.

// LCA returns the heap index of the least common ancestor of processors p and
// q (their leaves' lowest common tree ancestor).
func (t *geom) LCA(p, q int) int {
	a, b := t.Leaf(p), t.Leaf(q)
	// Heap-index LCA: strip low bits until the indices share their common
	// prefix. Since both leaves are at the same depth, xor's bit length tells
	// how many levels to climb.
	diff := uint(a ^ b)
	shift := bits.Len(diff)
	return a >> shift
}

// PathLength returns the number of channels on the unique path of message m:
// up from the source leaf to the LCA, then down to the destination leaf. A
// message between distinct leaves under a common parent traverses 2 channels;
// an external message traverses lg n + 1 channels (leaf to root interface).
func (t *geom) PathLength(m Message) int {
	if m.IsExternal() {
		return t.levels + 1
	}
	lca := t.LCA(m.Src, m.Dst)
	leafDepth := t.levels
	lcaDepth := t.Level(lca)
	return 2 * (leafDepth - lcaDepth)
}

// Path appends the channels of message m's unique path to buf and returns the
// extended slice. The order is: Up channels from the source leaf toward (but
// excluding) the LCA's own parent channel, then Down channels from just below
// the LCA to the destination leaf. External messages route through the root
// channel (see ExternalPath). Passing a reused buf avoids allocation in hot
// loops.
func (t *geom) Path(m Message, buf []Channel) []Channel {
	if m.IsExternal() {
		return t.ExternalPath(m, buf)
	}
	lca := t.LCA(m.Src, m.Dst)
	// Ascend from source leaf: the up channel above each node strictly below
	// the LCA is used.
	for v := t.Leaf(m.Src); v != lca; v >>= 1 {
		buf = append(buf, Channel{Node: v, Dir: Up})
	}
	// Descend to destination leaf: collect the nodes below the LCA on the way
	// down, then emit their Down channels in root-to-leaf order.
	start := len(buf)
	for v := t.Leaf(m.Dst); v != lca; v >>= 1 {
		buf = append(buf, Channel{Node: v, Dir: Down})
	}
	// The descent channels were collected leaf-to-LCA; reverse them so the
	// path reads source→destination.
	for i, j := start, len(buf)-1; i < j; i, j = i+1, j-1 {
		buf[i], buf[j] = buf[j], buf[i]
	}
	return buf
}

// AddressBits returns the number of destination-address bits needed to route
// m from its source: one bit per switching decision, which is the number of
// Down channels on the path, i.e. the depth below the LCA. The paper bounds
// this by 2·lg n for a general (externally addressed) message; internal
// messages need only the suffix below the LCA.
func (t *geom) AddressBits(m Message) int {
	lca := t.LCA(m.Src, m.Dst)
	return t.levels - t.Level(lca)
}

// CrossesNode reports whether message m's path passes through switching node
// v, i.e. v lies on the unique tree path between the two leaves (inclusive of
// the LCA, exclusive of the leaves themselves unless v is a leaf endpoint).
func (t *geom) CrossesNode(v int, m Message) bool {
	// v is on the path iff v is an ancestor-or-self of exactly the portion of
	// the path: equivalently, v is an ancestor of src-leaf or dst-leaf and a
	// descendant-or-self of the LCA.
	lca := t.LCA(m.Src, m.Dst)
	if !isAncestorOrSelf(lca, v) {
		return false
	}
	return isAncestorOrSelf(v, t.Leaf(m.Src)) || isAncestorOrSelf(v, t.Leaf(m.Dst))
}

// isAncestorOrSelf reports whether heap node a is an ancestor of (or equal to)
// heap node b.
func isAncestorOrSelf(a, b int) bool {
	for b >= a {
		if b == a {
			return true
		}
		b >>= 1
	}
	return false
}
