package core

// The channel leaving the root of the fat-tree corresponds to an interface
// with the external world (Section II), and Section VII calls it "a natural
// high-bandwidth external connection". This file extends messages, paths and
// loads to I/O traffic: a message may have the External pseudo-processor as
// its source (input from the world) or destination (output to the world).
// External messages traverse the root channel, whose capacity is the
// fat-tree's root capacity w — so I/O bandwidth scales with the hardware
// budget exactly like internal bisection bandwidth.

// External is the pseudo-processor denoting the outside world. It may appear
// as a message's source or destination (not both).
const External = -1

// IsExternal reports whether the message crosses the root interface.
func (m Message) IsExternal() bool { return m.Src == External || m.Dst == External }

// ExternalPath appends the channels of an external message's path to buf:
// for an output (dst == External), the up channels from the source leaf
// through the root channel; for an input (src == External), the root down
// channel followed by the down channels to the destination leaf.
func (t *geom) ExternalPath(m Message, buf []Channel) []Channel {
	switch {
	case m.Dst == External:
		for v := t.Leaf(m.Src); v >= 1; v >>= 1 {
			buf = append(buf, Channel{Node: v, Dir: Up})
		}
	case m.Src == External:
		start := len(buf)
		for v := t.Leaf(m.Dst); v >= 1; v >>= 1 {
			buf = append(buf, Channel{Node: v, Dir: Down})
		}
		for i, j := start, len(buf)-1; i < j; i, j = i+1, j-1 {
			buf[i], buf[j] = buf[j], buf[i]
		}
	default:
		panic("core: ExternalPath on an internal message")
	}
	return buf
}

// externalValidate checks an external message's processor endpoint.
func externalValidate(t Topology, m Message) bool {
	if m.Src == External && m.Dst == External {
		return false
	}
	p := m.Src
	if p == External {
		p = m.Dst
	}
	return p >= 0 && p < t.Processors()
}

// addExternal accounts an external message's path into the load table.
func (l *Loads) addExternal(m Message, delta int) {
	t := l.tree
	if m.Dst == External {
		for v := t.Leaf(m.Src); v >= 1; v = l.parent(v) {
			l.up[v] += delta
		}
		return
	}
	for v := t.Leaf(m.Dst); v >= 1; v = l.parent(v) {
		l.down[v] += delta
	}
}
