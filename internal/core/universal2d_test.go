package core

import (
	"math"
	"testing"
)

func TestUniversal2DProfile(t *testing.T) {
	n, w := 4096, 64 // w = sqrt n
	ft := NewUniversal2D(n, w)
	if ft.RootCapacity() != w {
		t.Errorf("root capacity %d, want %d", ft.RootCapacity(), w)
	}
	if ft.CapacityAtLevel(ft.Levels()) != 1 {
		t.Errorf("leaf capacity %d", ft.CapacityAtLevel(ft.Levels()))
	}
	// Non-increasing toward the leaves.
	for k := 1; k <= ft.Levels(); k++ {
		if ft.CapacityAtLevel(k) > ft.CapacityAtLevel(k-1) {
			t.Errorf("capacity increases at level %d", k)
		}
	}
	// Near the root, growth rate ~ sqrt(2) per level.
	ratio := float64(ft.CapacityAtLevel(0)) / float64(ft.CapacityAtLevel(2))
	if math.Abs(ratio-2) > 0.35 {
		t.Errorf("two-level near-root growth %v, want ~2 (sqrt2 per level)", ratio)
	}
}

func TestUniversal2DCrossover(t *testing.T) {
	// The regimes cross at k = 2·lg(n/w): n/2^k == w/2^(k/2).
	n, w := 1<<12, 1<<8
	k := 2 * (12 - 8)
	doubling := float64(n) / math.Pow(2, float64(k))
	rootRegime := float64(w) / math.Pow(2, float64(k)/2)
	if math.Abs(doubling-rootRegime) > 1e-9 {
		t.Fatalf("regimes disagree at crossover: %v vs %v", doubling, rootRegime)
	}
}

func TestUniversal2DFatterBelowRootFor3D(t *testing.T) {
	// For equal root capacity, the 2-D profile decays *slower* going down
	// (perimeter scales as sqrt(area) per halving = 2^(1/2) per level versus
	// the 3-D surface's 2^(2/3)), so 2-D capacities dominate level by level.
	// The 2-D model's penalty is in hardware cost — the same w costs
	// quadratic area versus the 3-D (w·lg)^(3/2) volume — not in the profile.
	n, w := 1024, 64
	for k := 0; k <= Lg(n); k++ {
		if Universal2DCapacity(n, w, k) < UniversalCapacity(n, w, k) {
			t.Errorf("level %d: 2-D cap below 3-D cap", k)
		}
	}
}
