package core

import "testing"

func TestExternalValidate(t *testing.T) {
	ft := NewUniversal(8, 4)
	good := MessageSet{
		{Src: 3, Dst: External},
		{Src: External, Dst: 5},
	}
	if err := good.Validate(ft); err != nil {
		t.Fatalf("valid external set rejected: %v", err)
	}
	bad := []MessageSet{
		{{Src: External, Dst: External}},
		{{Src: External, Dst: 8}},
		{{Src: -2, Dst: 3}},
	}
	for i, ms := range bad {
		if err := ms.Validate(ft); err == nil {
			t.Errorf("bad external set %d accepted", i)
		}
	}
}

func TestExternalPath(t *testing.T) {
	ft := NewUniversal(8, 4)
	// Output from processor 5: up channels leaf(5)=13, 6, 3, 1.
	out := ft.Path(Message{Src: 5, Dst: External}, nil)
	wantOut := []Channel{{13, Up}, {6, Up}, {3, Up}, {1, Up}}
	if len(out) != len(wantOut) {
		t.Fatalf("output path %v", out)
	}
	for i := range out {
		if out[i] != wantOut[i] {
			t.Errorf("output path[%d] = %v, want %v", i, out[i], wantOut[i])
		}
	}
	// Input to processor 2: down channels 1, 2, 5, leaf(2)=10.
	in := ft.Path(Message{Src: External, Dst: 2}, nil)
	wantIn := []Channel{{1, Down}, {2, Down}, {5, Down}, {10, Down}}
	for i := range in {
		if in[i] != wantIn[i] {
			t.Errorf("input path[%d] = %v, want %v", i, in[i], wantIn[i])
		}
	}
	// Path length is lg n + 1.
	if got := ft.PathLength(Message{Src: 5, Dst: External}); got != 4 {
		t.Errorf("external path length %d, want 4", got)
	}
}

func TestExternalLoads(t *testing.T) {
	ft := NewUniversal(8, 4)
	ms := MessageSet{
		{Src: 0, Dst: External},
		{Src: 1, Dst: External},
		{Src: External, Dst: 7},
	}
	loads := NewLoads(ft, ms)
	// Both outputs cross the root up channel.
	if got := loads.Load(Channel{1, Up}); got != 2 {
		t.Errorf("root up load %d, want 2", got)
	}
	if got := loads.Load(Channel{1, Down}); got != 1 {
		t.Errorf("root down load %d, want 1", got)
	}
	// Add/Remove symmetry.
	loads.Remove(ms[0])
	if got := loads.Load(Channel{1, Up}); got != 1 {
		t.Errorf("after remove, root up load %d, want 1", got)
	}
}

func TestExternalLoadFactorLimitedByRoot(t *testing.T) {
	// k outputs through a root of capacity w: λ >= k/w.
	ft := NewUniversal(64, 16)
	var ms MessageSet
	for p := 0; p < 64; p++ {
		ms = append(ms, Message{Src: p, Dst: External})
	}
	lam := LoadFactor(ft, ms)
	if lam < 4 { // 64/16
		t.Errorf("λ = %v, want >= 4 (root-limited)", lam)
	}
}

func TestExternalOneCycle(t *testing.T) {
	ft := NewUniversal(8, 4)
	ms := MessageSet{
		{Src: 0, Dst: External}, {Src: 2, Dst: External},
		{Src: External, Dst: 5}, {Src: External, Dst: 7},
	}
	if !IsOneCycle(ft, ms) {
		t.Errorf("4 I/O messages on a w=4 tree should be one-cycle")
	}
}
