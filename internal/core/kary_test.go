package core

import (
	"fmt"
	"reflect"
	"testing"
)

// karyRef is an explicitly materialized reference tree: every pointer and
// capacity is stored per node, built by breadth-first expansion from the root
// with none of KaryFatTree's level-order index arithmetic. Queries are
// answered by walking pointers, so agreement with the arithmetic
// implementation on every node and every leaf pair is a genuine check.
type karyRef struct {
	n          int
	levels     int
	parent     []int // parent[v], 0 for the root
	level      []int // level[v]
	childFirst []int // childFirst[v], 0 for leaves
	childCount []int
	cap        []int // cap[v] = capacity of the channel above v
}

func buildKaryRef(desc KaryDesc) *karyRef {
	tiers := len(desc.Down)
	nodes := 0
	count := 1
	for k := 0; k <= tiers; k++ {
		nodes += count
		if k < tiers {
			count *= desc.Down[k]
		}
	}
	r := &karyRef{
		n:          count,
		levels:     tiers,
		parent:     make([]int, nodes+1),
		level:      make([]int, nodes+1),
		childFirst: make([]int, nodes+1),
		childCount: make([]int, nodes+1),
		cap:        make([]int, nodes+1),
	}
	// BFS expansion: the queue holds nodes whose children are unassigned; the
	// next free index is handed out in queue order.
	queue := []int{1}
	next := 2
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		k := r.level[v]
		if k == tiers {
			continue
		}
		r.childFirst[v] = next
		r.childCount[v] = desc.Down[k]
		for i := 0; i < desc.Down[k]; i++ {
			c := next
			next++
			r.parent[c] = v
			r.level[c] = k + 1
			queue = append(queue, c)
		}
	}
	rootCap := desc.Root
	if rootCap == 0 {
		rootCap = desc.Up[0] * desc.Parallel[0]
	}
	for v := 1; v <= nodes; v++ {
		if r.level[v] == 0 {
			r.cap[v] = rootCap
		} else {
			r.cap[v] = desc.Up[r.level[v]-1] * desc.Parallel[r.level[v]-1]
		}
	}
	return r
}

// leaf returns the node index of processor p by scanning for the p-th
// leaf-level node.
func (r *karyRef) leaf(p int) int {
	for v := 1; v < len(r.level); v++ {
		if r.level[v] == r.levels {
			if p == 0 {
				return v
			}
			p--
		}
	}
	panic("karyRef: leaf out of range")
}

// lca walks both leaves up by pointer until the paths meet.
func (r *karyRef) lca(p, q int) int {
	a, b := r.leaf(p), r.leaf(q)
	for a != b {
		a, b = r.parent[a], r.parent[b]
	}
	return a
}

// leaves collects the processor numbers under v by pointer-walking the
// subtree.
func (r *karyRef) leaves(v int) []int {
	if r.level[v] == r.levels {
		for p := 0; p < r.n; p++ {
			if r.leaf(p) == v {
				return []int{p}
			}
		}
		panic("karyRef: unreachable leaf")
	}
	var out []int
	for c := r.childFirst[v]; c < r.childFirst[v]+r.childCount[v]; c++ {
		out = append(out, r.leaves(c)...)
	}
	return out
}

func (r *karyRef) totalWires() int {
	total := 0
	for v := 1; v < len(r.cap); v++ {
		total += 2 * r.cap[v]
	}
	return total
}

// karyProfiles are the non-binary descriptor shapes the parity tests sweep:
// a 2-tier oversubscribed pod, a mixed-arity 3-tier, and a square 2-tier with
// parallel trunks and an explicit root capacity.
var karyProfiles = []KaryDesc{
	{Down: []int{3, 4}, Up: []int{2, 1}, Parallel: []int{1, 1}},
	{Down: []int{4, 2, 3}, Up: []int{3, 2, 1}, Parallel: []int{1, 1, 1}},
	{Down: []int{5, 5}, Up: []int{2, 1}, Parallel: []int{3, 2}, Root: 7},
}

// TestKaryQueryParity checks every navigation, capacity, and path query of
// KaryFatTree against the pointer-walking reference on every node and every
// leaf pair, for each non-binary profile.
func TestKaryQueryParity(t *testing.T) {
	for _, desc := range karyProfiles {
		desc := desc
		t.Run(fmt.Sprintf("down=%v", desc.Down), func(t *testing.T) {
			kt := NewKary(desc)
			ref := buildKaryRef(desc)

			if kt.Nodes() != len(ref.level)-1 {
				t.Fatalf("Nodes() = %d, reference has %d", kt.Nodes(), len(ref.level)-1)
			}
			if kt.Processors() != ref.n || kt.Levels() != ref.levels {
				t.Fatalf("shape (n=%d, levels=%d), reference (n=%d, levels=%d)",
					kt.Processors(), kt.Levels(), ref.n, ref.levels)
			}
			if kt.InternalNodes() != kt.Nodes()-ref.n {
				t.Fatalf("InternalNodes() = %d, want %d", kt.InternalNodes(), kt.Nodes()-ref.n)
			}

			// Per-node queries.
			levelSeen := make(map[int]int)
			for v := 1; v <= kt.Nodes(); v++ {
				if got, want := kt.Level(v), ref.level[v]; got != want {
					t.Fatalf("Level(%d) = %d, want %d", v, got, want)
				}
				levelSeen[ref.level[v]]++
				if got, want := kt.Parent(v), ref.parent[v]; got != want {
					t.Fatalf("Parent(%d) = %d, want %d", v, got, want)
				}
				f, c := kt.Children(v)
				if f != ref.childFirst[v] || c != ref.childCount[v] {
					t.Fatalf("Children(%d) = (%d,%d), want (%d,%d)", v, f, c, ref.childFirst[v], ref.childCount[v])
				}
				if got, want := kt.CapAt(v), ref.cap[v]; got != want {
					t.Fatalf("CapAt(%d) = %d, want %d", v, got, want)
				}
				if got, want := kt.Capacity(Channel{Node: v, Dir: Up}), ref.cap[v]; got != want {
					t.Fatalf("Capacity(%d) = %d, want %d", v, got, want)
				}
				lo, hi := kt.SubtreeLeaves(v)
				leaves := ref.leaves(v)
				if lo != leaves[0] || hi != leaves[len(leaves)-1]+1 || hi-lo != len(leaves) {
					t.Fatalf("SubtreeLeaves(%d) = [%d,%d), reference leaves %v", v, lo, hi, leaves)
				}
				for p := 0; p < ref.n; p++ {
					if got, want := kt.Contains(v, p), p >= leaves[0] && p <= leaves[len(leaves)-1]; got != want {
						t.Fatalf("Contains(%d, %d) = %v, want %v", v, p, got, want)
					}
				}
			}
			for k := 0; k <= ref.levels; k++ {
				_, c := kt.LevelRange(k)
				if c != levelSeen[k] {
					t.Fatalf("LevelRange(%d) count = %d, reference counted %d", k, c, levelSeen[k])
				}
			}

			// Per-leaf and per-pair queries.
			for p := 0; p < ref.n; p++ {
				if got, want := kt.Leaf(p), ref.leaf(p); got != want {
					t.Fatalf("Leaf(%d) = %d, want %d", p, got, want)
				}
				if got := kt.ProcessorOf(kt.Leaf(p)); got != p {
					t.Fatalf("ProcessorOf(Leaf(%d)) = %d", p, got)
				}
				for q := 0; q < ref.n; q++ {
					m := Message{Src: p, Dst: q}
					lca := ref.lca(p, q)
					if got := kt.LCA(p, q); got != lca {
						t.Fatalf("LCA(%d,%d) = %d, want %d", p, q, got, lca)
					}
					if got, want := kt.PathLength(m), 2*(ref.levels-ref.level[lca]); got != want {
						t.Fatalf("PathLength(%d->%d) = %d, want %d", p, q, got, want)
					}
					// The path must climb by parent pointers to the LCA and
					// descend to the destination.
					path := kt.Path(m, nil)
					var want []Channel
					for v := ref.leaf(p); v != lca; v = ref.parent[v] {
						want = append(want, Channel{Node: v, Dir: Up})
					}
					var down []Channel
					for v := ref.leaf(q); v != lca; v = ref.parent[v] {
						down = append(down, Channel{Node: v, Dir: Down})
					}
					for i := len(down) - 1; i >= 0; i-- {
						want = append(want, down[i])
					}
					if !reflect.DeepEqual(path, want) {
						t.Fatalf("Path(%d->%d) = %v, want %v", p, q, path, want)
					}
				}
			}

			if got, want := kt.TotalWires(), ref.totalWires(); got != want {
				t.Fatalf("TotalWires() = %d, want %d", got, want)
			}

			// Overrides flow through CapAt, Capacity, and TotalWires exactly
			// as in the reference.
			kt.SetChannelCapacity(1, 9)
			kt.SetChannelCapacity(kt.Leaf(0), 5)
			ref.cap[1] = 9
			ref.cap[ref.leaf(0)] = 5
			for v := 1; v <= kt.Nodes(); v++ {
				if got, want := kt.CapAt(v), ref.cap[v]; got != want {
					t.Fatalf("after override: CapAt(%d) = %d, want %d", v, got, want)
				}
			}
			if got, want := kt.TotalWires(), ref.totalWires(); got != want {
				t.Fatalf("after override: TotalWires() = %d, want %d", got, want)
			}
		})
	}
}

// TestKaryBinaryShapeMatchesFatTree pins the numbering degeneration the
// simulation equivalence tests rely on: an all-binary descriptor produces a
// KaryFatTree that answers every query exactly like the materialized binary
// FatTree with the same capacity profile.
func TestKaryBinaryShapeMatchesFatTree(t *testing.T) {
	const n = 32
	ft := NewUniversal(n, 8)
	caps := ft.LevelCapTable()
	desc := KaryDesc{
		Down:     make([]int, ft.Levels()),
		Up:       make([]int, ft.Levels()),
		Parallel: make([]int, ft.Levels()),
		Root:     caps[0],
	}
	for i := 0; i < ft.Levels(); i++ {
		desc.Down[i] = 2
		desc.Up[i] = caps[i+1]
		desc.Parallel[i] = 1
	}
	kt := NewKary(desc)

	if !HeapIndexed(kt) {
		t.Fatal("binary-shaped KaryFatTree must be heap-indexed")
	}
	if kt.Nodes() != ft.Nodes() || kt.Levels() != ft.Levels() || kt.Processors() != ft.Processors() {
		t.Fatalf("shape mismatch: kary %v vs binary %v", kt, ft)
	}
	for v := 1; v <= ft.Nodes(); v++ {
		if kt.Level(v) != ft.Level(v) || kt.Parent(v) != ft.Parent(v) || kt.CapAt(v) != ft.CapAt(v) {
			t.Fatalf("node %d: kary (level %d, parent %d, cap %d) vs binary (level %d, parent %d, cap %d)",
				v, kt.Level(v), kt.Parent(v), kt.CapAt(v), ft.Level(v), ft.Parent(v), ft.CapAt(v))
		}
		kf, kc := kt.Children(v)
		ff, fc := ft.Children(v)
		if kf != ff || kc != fc {
			t.Fatalf("Children(%d): kary (%d,%d) vs binary (%d,%d)", v, kf, kc, ff, fc)
		}
	}
	for p := 0; p < n; p++ {
		if kt.Leaf(p) != ft.Leaf(p) {
			t.Fatalf("Leaf(%d): kary %d vs binary %d", p, kt.Leaf(p), ft.Leaf(p))
		}
		for q := 0; q < n; q++ {
			m := Message{Src: p, Dst: q}
			if kt.LCA(p, q) != ft.LCA(p, q) {
				t.Fatalf("LCA(%d,%d): kary %d vs binary %d", p, q, kt.LCA(p, q), ft.LCA(p, q))
			}
			if !reflect.DeepEqual(kt.Path(m, nil), ft.Path(m, nil)) {
				t.Fatalf("Path(%d->%d) differs", p, q)
			}
		}
	}
	if kt.TotalWires() != ft.TotalWires() {
		t.Fatalf("TotalWires: kary %d vs binary %d", kt.TotalWires(), ft.TotalWires())
	}
	// Loads — and hence every λ figure — agree too.
	ms := Reversal(n)
	if l1, l2 := LoadFactor(kt, ms), LoadFactor(ft, ms); l1 != l2 {
		t.Fatalf("LoadFactor: kary %g vs binary %g", l1, l2)
	}
}

// Reversal is a tiny local copy of the workload generator (the core package
// cannot import internal/workload).
func Reversal(n int) MessageSet {
	ms := make(MessageSet, 0, n)
	for p := 0; p < n; p++ {
		if d := n - 1 - p; d != p {
			ms = append(ms, Message{Src: p, Dst: d})
		}
	}
	return ms
}

// TestKaryValidation pins the constructor panics and the validate-before-
// mutate contract of SetChannelCapacity and FailNode.
func TestKaryValidation(t *testing.T) {
	mustPanic := func(name, want string, fn func()) {
		t.Run(name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%s: no panic", name)
				}
				if msg, ok := r.(string); !ok || msg != want {
					t.Fatalf("%s: panic %q, want %q", name, r, want)
				}
			}()
			fn()
		})
	}

	mustPanic("empty descriptor", "core: k-ary descriptor needs at least one tier",
		func() { NewKary(KaryDesc{}) })
	mustPanic("tier count mismatch", "core: k-ary descriptor tier counts disagree: down=2 up=1 parallel=2",
		func() { NewKary(KaryDesc{Down: []int{2, 2}, Up: []int{1}, Parallel: []int{1, 1}}) })
	mustPanic("arity below 2", "core: k-ary down[1] = 1; every tier needs >= 2 children",
		func() { NewKary(KaryDesc{Down: []int{2, 1}, Up: []int{1, 1}, Parallel: []int{1, 1}}) })
	mustPanic("uplinks below 1", "core: k-ary up[0] = 0; must be >= 1",
		func() { NewKary(KaryDesc{Down: []int{2}, Up: []int{0}, Parallel: []int{1}}) })
	mustPanic("parallel below 1", "core: k-ary parallel[0] = -1; must be >= 1",
		func() { NewKary(KaryDesc{Down: []int{2}, Up: []int{1}, Parallel: []int{-1}}) })
	mustPanic("negative root", "core: k-ary root capacity -3 must be >= 0 (0 selects the default)",
		func() { NewKary(KaryDesc{Down: []int{2}, Up: []int{1}, Parallel: []int{1}, Root: -3}) })

	kt := NewKary(karyProfiles[0])
	mustPanic("SetChannelCapacity bad cap", "core: capacity 0 must be >= 1",
		func() { kt.SetChannelCapacity(1, 0) })
	mustPanic("SetChannelCapacity bad node", fmt.Sprintf("core: node %d out of range [1,%d)", kt.Nodes()+1, kt.Nodes()+1),
		func() { kt.SetChannelCapacity(kt.Nodes()+1, 4) })
	mustPanic("FailNode bad node", fmt.Sprintf("core: FailNode: node 0 out of range [1,%d)", kt.Nodes()+1),
		func() { FailNode(kt, 0) })
	// The failed validations must not have left a partial override behind.
	kt.Overrides(func(node, cap int) {
		t.Fatalf("rejected mutation left override (%d -> %d)", node, cap)
	})

	// FailNode on a valid switch collapses its edge and its children's edges
	// to single wires, and nothing else.
	FailNode(kt, 1)
	if kt.CapAt(1) != 1 {
		t.Fatalf("FailNode(1): root channel cap %d, want 1", kt.CapAt(1))
	}
	first, count := kt.Children(1)
	for c := first; c < first+count; c++ {
		if kt.CapAt(c) != 1 {
			t.Fatalf("FailNode(1): child %d cap %d, want 1", c, kt.CapAt(c))
		}
	}
}
