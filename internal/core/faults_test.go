package core

import "testing"

func TestDegradeChannels(t *testing.T) {
	ft := NewUniversal(64, 32)
	before := ft.TotalWires()
	degraded := DegradeChannels(ft, 0.5, 0.5, 1)
	if degraded == 0 {
		t.Fatalf("nothing degraded at probability 0.5")
	}
	if ft.TotalWires() >= before {
		t.Errorf("wires did not shrink: %d -> %d", before, ft.TotalWires())
	}
	// Capacities never drop below 1.
	ft.Channels(func(c Channel) {
		if ft.Capacity(c) < 1 {
			t.Errorf("channel %v has capacity %d", c, ft.Capacity(c))
		}
	})
}

func TestDegradeChannelsZeroProbability(t *testing.T) {
	ft := NewUniversal(64, 32)
	before := ft.TotalWires()
	if got := DegradeChannels(ft, 0, 0.9, 1); got != 0 {
		t.Errorf("degraded %d edges at probability 0", got)
	}
	if ft.TotalWires() != before {
		t.Errorf("wires changed with no degradation")
	}
}

func TestDegradeChannelsDeterministic(t *testing.T) {
	a := NewUniversal(64, 32)
	b := NewUniversal(64, 32)
	DegradeChannels(a, 0.3, 0.5, 42)
	DegradeChannels(b, 0.3, 0.5, 42)
	a.Channels(func(c Channel) {
		if a.Capacity(c) != b.Capacity(c) {
			t.Fatalf("channel %v differs across identical seeds", c)
		}
	})
}

func TestDegradeChannelsRejectsBadArgs(t *testing.T) {
	ft := NewConstant(8, 2)
	for _, args := range [][2]float64{{-0.1, 0.5}, {0.5, 1.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("args %v accepted", args)
				}
			}()
			DegradeChannels(ft, args[0], args[1], 1)
		}()
	}
}

func TestFailNode(t *testing.T) {
	ft := NewUniversal(64, 32)
	FailNode(ft, 2)
	for _, v := range []int{2, 4, 5} {
		if got := ft.Capacity(Channel{Node: v, Dir: Up}); got != 1 {
			t.Errorf("node %d channel capacity %d after failure, want 1", v, got)
		}
	}
	// Unrelated channels untouched.
	if ft.Capacity(Channel{Node: 3, Dir: Up}) == 1 {
		t.Errorf("sibling channel degraded")
	}
}

func TestDegradedTreeStillRoutes(t *testing.T) {
	// Load computation and one-cycle checks keep working after degradation —
	// the scheduler sees only capacities.
	ft := NewUniversal(64, 32)
	DegradeChannels(ft, 0.5, 0.8, 7)
	ms := MessageSet{{Src: 0, Dst: 63}, {Src: 5, Dst: 40}}
	if LoadFactor(ft, ms) <= 0 {
		t.Errorf("load factor broken on degraded tree")
	}
	if !IsOneCycle(ft, MessageSet{{Src: 0, Dst: 1}}) {
		t.Errorf("single sibling message must fit even fully degraded")
	}
}
