package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteLCA climbs both leaves one level at a time.
func bruteLCA(t *FatTree, p, q int) int {
	a, b := t.Leaf(p), t.Leaf(q)
	for a != b {
		a >>= 1
		b >>= 1
	}
	return a
}

func TestLCAAgainstBruteForce(t *testing.T) {
	ft := NewConstant(64, 1)
	for p := 0; p < 64; p++ {
		for q := 0; q < 64; q++ {
			if got, want := ft.LCA(p, q), bruteLCA(ft, p, q); got != want {
				t.Fatalf("LCA(%d,%d)=%d want %d", p, q, got, want)
			}
		}
	}
}

func TestLCAExamples(t *testing.T) {
	ft := NewConstant(8, 1)
	cases := []struct{ p, q, lca int }{
		{0, 1, 4},  // siblings under node 4
		{0, 3, 2},  // within left half
		{0, 7, 1},  // across the root
		{4, 6, 3},  // within right half
		{5, 5, 13}, // same leaf: LCA is the leaf itself
	}
	for _, c := range cases {
		if got := ft.LCA(c.p, c.q); got != c.lca {
			t.Errorf("LCA(%d,%d)=%d want %d", c.p, c.q, got, c.lca)
		}
	}
}

func TestPathStructure(t *testing.T) {
	ft := NewConstant(8, 1)
	path := ft.Path(Message{Src: 0, Dst: 7}, nil)
	// 0 -> 7 crosses the root: 3 up channels then 3 down channels.
	if len(path) != 6 {
		t.Fatalf("path length = %d, want 6", len(path))
	}
	wantNodes := []Channel{
		{8, Up}, {4, Up}, {2, Up},
		{3, Down}, {7, Down}, {15, Down},
	}
	for i, c := range path {
		if c != wantNodes[i] {
			t.Errorf("path[%d] = %v, want %v", i, c, wantNodes[i])
		}
	}
}

func TestPathLengthMatchesPath(t *testing.T) {
	ft := NewConstant(128, 1)
	rng := rand.New(rand.NewSource(3))
	buf := make([]Channel, 0, 32)
	for trial := 0; trial < 500; trial++ {
		src, dst := rng.Intn(128), rng.Intn(128)
		if src == dst {
			continue
		}
		m := Message{src, dst}
		buf = ft.Path(m, buf[:0])
		if len(buf) != ft.PathLength(m) {
			t.Fatalf("PathLength(%v)=%d but Path has %d channels", m, ft.PathLength(m), len(buf))
		}
	}
}

func TestPathUpThenDown(t *testing.T) {
	// Property: every path is a (possibly empty) run of Up channels followed
	// by a run of Down channels, levels strictly decreasing then increasing.
	ft := NewConstant(256, 1)
	f := func(a, b uint8) bool {
		src, dst := int(a), int(b)
		if src == dst {
			return true
		}
		path := ft.Path(Message{src, dst}, nil)
		phase := Up
		prevLevel := ft.Levels() + 1
		for _, c := range path {
			if c.Dir == Down {
				if phase == Up {
					phase = Down
					prevLevel = ft.Level(c.Node) - 1
				}
			} else if phase == Down {
				return false // Up after Down
			}
			lv := ft.Level(c.Node)
			if phase == Up && lv != prevLevel-1 && prevLevel != ft.Levels()+1 {
				return false
			}
			prevLevel = lv
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPathEndpoints(t *testing.T) {
	ft := NewConstant(64, 1)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		src, dst := rng.Intn(64), rng.Intn(64)
		if src == dst {
			continue
		}
		path := ft.Path(Message{src, dst}, nil)
		if path[0] != (Channel{ft.Leaf(src), Up}) {
			t.Fatalf("path must start at source leaf: %v", path[0])
		}
		if path[len(path)-1] != (Channel{ft.Leaf(dst), Down}) {
			t.Fatalf("path must end at destination leaf: %v", path[len(path)-1])
		}
	}
}

func TestAddressBits(t *testing.T) {
	ft := NewConstant(8, 1)
	if got := ft.AddressBits(Message{0, 1}); got != 1 {
		t.Errorf("siblings need 1 address bit, got %d", got)
	}
	if got := ft.AddressBits(Message{0, 7}); got != 3 {
		t.Errorf("cross-root needs lg n = 3 bits, got %d", got)
	}
	// The paper's bound: at most 2 lg n bits suffice for any message.
	for p := 0; p < 8; p++ {
		for q := 0; q < 8; q++ {
			if p == q {
				continue
			}
			if ft.AddressBits(Message{p, q}) > 2*Lg(8) {
				t.Errorf("address bits exceed 2 lg n for %d->%d", p, q)
			}
		}
	}
}

func TestCrossesNode(t *testing.T) {
	ft := NewConstant(8, 1)
	m := Message{0, 3} // path: leaf 8 up to node 2, down to leaf 11
	wantTrue := []int{8, 4, 2, 5, 11}
	wantFalse := []int{1, 3, 6, 7, 9, 10, 12, 13, 14, 15}
	for _, v := range wantTrue {
		if !ft.CrossesNode(v, m) {
			t.Errorf("message %v should cross node %d", m, v)
		}
	}
	for _, v := range wantFalse {
		if ft.CrossesNode(v, m) {
			t.Errorf("message %v should not cross node %d", m, v)
		}
	}
}

func TestCrossesNodeMatchesPath(t *testing.T) {
	ft := NewConstant(32, 1)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		src, dst := rng.Intn(32), rng.Intn(32)
		if src == dst {
			continue
		}
		m := Message{src, dst}
		onPath := map[int]bool{ft.LCA(src, dst): true}
		for _, c := range ft.Path(m, nil) {
			onPath[c.Node] = true
		}
		for v := 1; v < ft.Nodes()+1; v++ {
			if got := ft.CrossesNode(v, m); got != onPath[v] {
				t.Fatalf("CrossesNode(%d, %v)=%v, path says %v", v, m, got, onPath[v])
			}
		}
	}
}
