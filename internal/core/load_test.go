package core

import (
	"math/rand"
	"testing"
)

// bruteLoad counts messages through channel c by checking every message's
// explicit path.
func bruteLoad(t *FatTree, ms MessageSet, c Channel) int {
	count := 0
	for _, m := range ms {
		for _, pc := range t.Path(m, nil) {
			if pc == c {
				count++
			}
		}
	}
	return count
}

func randomSet(n, k int, seed int64) MessageSet {
	rng := rand.New(rand.NewSource(seed))
	ms := make(MessageSet, 0, k)
	for len(ms) < k {
		s, d := rng.Intn(n), rng.Intn(n)
		if s != d {
			ms = append(ms, Message{s, d})
		}
	}
	return ms
}

func TestLoadsAgainstBruteForce(t *testing.T) {
	ft := NewConstant(32, 2)
	ms := randomSet(32, 100, 1)
	loads := NewLoads(ft, ms)
	ft.Channels(func(c Channel) {
		if got, want := loads.Load(c), bruteLoad(ft, ms, c); got != want {
			t.Errorf("load(%v)=%d want %d", c, got, want)
		}
	})
}

func TestLoadsAddRemove(t *testing.T) {
	ft := NewConstant(16, 1)
	loads := NewLoads(ft, nil)
	m := Message{0, 15}
	loads.Add(m)
	loads.Add(m)
	loads.Remove(m)
	// After add,add,remove the counts must equal a single message's path.
	single := NewLoads(ft, MessageSet{m})
	ft.Channels(func(c Channel) {
		if loads.Load(c) != single.Load(c) {
			t.Errorf("channel %v: %d != %d", c, loads.Load(c), single.Load(c))
		}
	})
}

func TestRootChannelUnusedByInternalTraffic(t *testing.T) {
	ft := NewConstant(16, 1)
	loads := NewLoads(ft, randomSet(16, 200, 2))
	for _, dir := range []Direction{Up, Down} {
		if got := loads.Load(Channel{1, dir}); got != 0 {
			t.Errorf("root external channel %v carries %d internal messages", dir, got)
		}
	}
}

func TestLoadFactorPermutation(t *testing.T) {
	// A permutation places load exactly 1 on each leaf channel; on a constant
	// capacity-1 tree, λ is driven by the most congested internal channel.
	ft := NewConstant(8, 1)
	// The "reversal" permutation sends everything across the root: each of the
	// root's two child edges carries 4 messages in each direction.
	var ms MessageSet
	for p := 0; p < 8; p++ {
		ms = append(ms, Message{p, 7 - p})
	}
	f, arg := NewLoads(ft, ms).MaxFactor()
	if f != 4 {
		t.Errorf("λ = %v, want 4 (channel %v)", f, arg)
	}
	if ft.Level(arg.Node) != 1 {
		t.Errorf("max-load channel should be at level 1, got %v", arg)
	}
}

func TestLoadFactorOnUniversalTree(t *testing.T) {
	// On a w=n universal fat-tree, the reversal permutation is one-cycle:
	// every channel has capacity >= its load.
	n := 64
	ft := NewUniversal(n, n)
	var ms MessageSet
	for p := 0; p < n; p++ {
		ms = append(ms, Message{p, n - 1 - p})
	}
	if !IsOneCycle(ft, ms) {
		f, arg := NewLoads(ft, ms).MaxFactor()
		t.Errorf("reversal should be one-cycle on full-bandwidth tree; λ=%v at %v", f, arg)
	}
}

func TestLocalTrafficLoadsOnlyLowLevels(t *testing.T) {
	// Nearest-neighbour traffic within pairs never crosses above level
	// lg n - 1: upper channels carry zero load. This is the locality property
	// motivating fat-trees (telephone-exchange analogy in Section II).
	n := 64
	ft := NewConstant(n, 1)
	var ms MessageSet
	for p := 0; p < n; p += 2 {
		ms = append(ms, Message{p, p + 1}, Message{p + 1, p})
	}
	loads := NewLoads(ft, ms)
	ft.Channels(func(c Channel) {
		if ft.Level(c.Node) < ft.Levels() && loads.Load(c) != 0 {
			t.Errorf("pairwise traffic leaked to channel %v (level %d)", c, ft.Level(c.Node))
		}
	})
}

func TestFitsAndSlack(t *testing.T) {
	ft := NewConstant(8, 2)
	// Two messages across one leaf channel: load 2, capacity 2 — fits.
	ms := MessageSet{{0, 1}, {0, 2}}
	loads := NewLoads(ft, ms)
	if !loads.Fits() {
		t.Errorf("load 2 on capacity 2 should fit")
	}
	// With slack 1, fictitious capacity is 1, so it no longer fits.
	if loads.FitsWithSlack(1) {
		t.Errorf("load 2 on fictitious capacity 1 should not fit")
	}
	// A single message always fits (fictitious capacity is at least 1).
	if !NewLoads(ft, MessageSet{{0, 1}}).FitsWithSlack(10) {
		t.Errorf("single message should fit under any slack")
	}
}

func TestMaxLoad(t *testing.T) {
	ft := NewConstant(8, 1)
	ms := MessageSet{{0, 7}, {1, 6}, {2, 5}}
	loads := NewLoads(ft, ms)
	// All three messages cross the root's left child edge upward.
	if got := loads.MaxLoad(); got != 3 {
		t.Errorf("MaxLoad = %d, want 3", got)
	}
}

func TestLoadFactorWithSlackHelper(t *testing.T) {
	ft := NewConstant(8, 4)
	ms := MessageSet{{0, 7}, {1, 6}} // load 2 on level-1 channels
	lam := LoadFactor(ft, ms)
	if lam != 0.5 {
		t.Errorf("λ = %v, want 0.5", lam)
	}
	lamSlack := LoadFactorWithSlack(ft, ms, 2) // fictitious cap 2
	if lamSlack != 1.0 {
		t.Errorf("λ' = %v, want 1.0", lamSlack)
	}
}

func TestEmptySetLoadFactor(t *testing.T) {
	ft := NewConstant(8, 1)
	if f := LoadFactor(ft, nil); f != 0 {
		t.Errorf("empty set λ = %v", f)
	}
	if !IsOneCycle(ft, nil) {
		t.Errorf("empty set must be one-cycle")
	}
}

func TestLoadsLinearity(t *testing.T) {
	// Property: loads are additive — NewLoads(A ∪ B) equals NewLoads(A) plus
	// NewLoads(B) on every channel, including external traffic.
	ft := NewUniversal(32, 8)
	a := randomSet(32, 40, 1)
	b := append(randomSet(32, 40, 2), Message{Src: 3, Dst: External}, Message{Src: External, Dst: 9})
	la, lb := NewLoads(ft, a), NewLoads(ft, b)
	lab := NewLoads(ft, Concat(a, b))
	ft.Channels(func(c Channel) {
		if lab.Load(c) != la.Load(c)+lb.Load(c) {
			t.Fatalf("channel %v: %d != %d + %d", c, lab.Load(c), la.Load(c), lb.Load(c))
		}
	})
}
