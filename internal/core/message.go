package core

import (
	"fmt"
	"sort"
)

// Message is a single point-to-point message (i, j): processor Src has a
// message to be sent to processor Dst. Message *contents* are abstracted away,
// exactly as in the paper: routing depends only on the endpoints.
type Message struct {
	Src, Dst int
}

// String renders the message as "3->17".
func (m Message) String() string { return fmt.Sprintf("%d->%d", m.Src, m.Dst) }

// MessageSet is a multiset M ⊆ P × P of messages. The paper defines M as a
// set, but the scheduling and simulation machinery is indifferent to
// duplicates, and workloads such as all-to-all naturally produce multisets,
// so we permit them.
type MessageSet []Message

// Validate checks that every message endpoint names a processor of t (or the
// External pseudo-processor on one side) and that no message is a self-loop
// (a message from a processor to itself never enters the routing network).
// It returns the first violation found.
func (ms MessageSet) Validate(t Topology) error {
	n := t.Processors()
	for i, m := range ms {
		if m.IsExternal() {
			if !externalValidate(t, m) {
				return fmt.Errorf("core: message %d (%v): invalid external message", i, m)
			}
			continue
		}
		if m.Src < 0 || m.Src >= n {
			return fmt.Errorf("core: message %d (%v): source out of range [0,%d)", i, m, n)
		}
		if m.Dst < 0 || m.Dst >= n {
			return fmt.Errorf("core: message %d (%v): destination out of range [0,%d)", i, m, n)
		}
		if m.Src == m.Dst {
			return fmt.Errorf("core: message %d (%v): self-loop", i, m)
		}
	}
	return nil
}

// Clone returns a copy of the message set.
func (ms MessageSet) Clone() MessageSet {
	out := make(MessageSet, len(ms))
	copy(out, ms)
	return out
}

// Sorted returns a copy ordered by (Src, Dst); useful for deterministic
// comparison in tests.
func (ms MessageSet) Sorted() MessageSet {
	out := ms.Clone()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// Equal reports whether two message sets are equal as multisets.
func (ms MessageSet) Equal(other MessageSet) bool {
	if len(ms) != len(other) {
		return false
	}
	a, b := ms.Sorted(), other.Sorted()
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Concat returns the concatenation of message sets (multiset union).
func Concat(sets ...MessageSet) MessageSet {
	total := 0
	for _, s := range sets {
		total += len(s)
	}
	out := make(MessageSet, 0, total)
	for _, s := range sets {
		out = append(out, s...)
	}
	return out
}
