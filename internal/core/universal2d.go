package core

import (
	"fmt"
	"math"
)

// The paper's hardware model extends Thompson's two-dimensional VLSI model to
// three dimensions; this file provides the two-dimensional (area-universal)
// fat-tree family for comparison — the regime of Leiserson's companion
// results, where bandwidth through a closed curve is proportional to its
// perimeter. A region of area A has perimeter Θ(sqrt A), so halving a layout
// area scales bandwidth by 2^(1/2) per level instead of the volume model's
// 4^(1/3).

// Universal2DCapacity returns the channel capacity at a level of an
// area-universal fat-tree on n processors with root capacity w:
//
//	cap(c at level k) = min( ceil(n / 2^k), ceil(w / 2^(k/2)) ), at least 1.
//
// Near the leaves capacities double per level going up; within 2·lg(n/w)
// levels of the root they grow at rate 2^(1/2), the perimeter-supported rate.
// The regimes cross at k = 2·lg(n/w). The meaningful root range is
// sqrt(n) <= w <= n.
func Universal2DCapacity(n, w, level int) int {
	doubling := ceilDiv(n, 1<<uint(level))
	root := int(math.Ceil(float64(w) / math.Pow(2, float64(level)/2)))
	c := doubling
	if root < c {
		c = root
	}
	if c < 1 {
		c = 1
	}
	return c
}

// NewUniversal2D builds an area-universal fat-tree on n processors with root
// capacity w.
func NewUniversal2D(n, w int) *FatTree {
	if w < 1 {
		panic(fmt.Sprintf("core: root capacity w = %d must be >= 1", w))
	}
	return New(n, func(k int) int { return Universal2DCapacity(n, w, k) })
}
