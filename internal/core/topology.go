package core

import "fmt"

// Topology is the interface the scheduler, simulator, and observability
// layers program against: everything they need from a fat-tree, with every
// method answerable from O(levels) state. Two implementations exist:
//
//   - FatTree, the materialized instance, which additionally offers the flat
//     O(n) CapTable consumed by the dense per-node simulation engine; and
//   - ImplicitFatTree, the computed instance, which deliberately omits it so
//     that a 2^20-endpoint topology occupies a few dozen machine words and
//     consumers are forced onto the streaming/per-level paths.
//
// Both are built from the same embedded geometry, so navigation, capacities,
// and override semantics are identical by construction. Methods that mutate
// (SetChannelCapacity) or iterate per node (Channels) remain part of the
// contract; Channels is O(n) time but O(1) space and only dense consumers
// call it.
type Topology interface {
	// Shape.
	Processors() int
	Levels() int
	Nodes() int
	InternalNodes() int

	// Navigation. The binary implementations answer these with heap-index
	// arithmetic (Parent is v/2, level k spans [2^k, 2^(k+1))); KaryFatTree
	// answers from its level-order numbering tables. Parent returns 0 for
	// the root and does not range-check (it is the hot-path primitive);
	// Children returns (0, 0) for a leaf.
	Leaf(p int) int
	ProcessorOf(v int) int
	Level(v int) int
	Parent(v int) int
	Children(v int) (first, count int)
	LevelRange(k int) (first, count int)
	SubtreeLeaves(v int) (lo, hi int)
	Contains(v, p int) bool
	LCA(p, q int) int

	// Capacities: the per-level profile plus the sparse override overlay.
	CapacityAtLevel(k int) int
	Capacity(c Channel) int
	CapAt(v int) int
	RootCapacity() int
	SetChannelCapacity(v, cap int)
	LevelCapTable() []int
	Overrides(fn func(node, cap int))
	TotalWires() int
	Channels(fn func(Channel))

	// Paths.
	PathLength(m Message) int
	Path(m Message, buf []Channel) []Channel
	ExternalPath(m Message, buf []Channel) []Channel
	AddressBits(m Message) int
	CrossesNode(v int, m Message) bool

	fmt.Stringer
}

var (
	_ Topology = (*FatTree)(nil)
	_ Topology = (*ImplicitFatTree)(nil)
	_ Topology = (*KaryFatTree)(nil)
)

// HeapIndexed reports whether t uses the complete-binary heap numbering —
// 2n-1 nodes with processor p at leaf n+p, so Parent is v/2 and level k spans
// [2^k, 2^(k+1)). FatTree and ImplicitFatTree always do; a KaryFatTree does
// exactly when its descriptor is all-binary (its level-order numbering then
// coincides with the heap numbering). Consumers whose algorithms are bound to
// the binary shape — the Theorem 1 scheduler's bisection machinery, the
// dense and streaming simulation planes — gate on this instead of on concrete
// types, so a binary-shaped KaryFatTree qualifies wherever the arithmetic
// does.
func HeapIndexed(t Topology) bool {
	return t.Nodes() == 2*t.Processors()-1 && t.Leaf(0) == t.Processors()
}

// ImplicitFatTree is the computed fat-tree: the same geometry as FatTree —
// heap-indexed navigation, the per-level capacity profile, the sparse
// override overlay — with no per-node storage and no way to demand any (it
// has no CapTable method). Use it for topologies too large to materialize;
// the simulation engine recognizes it and streams flight state through
// subtree shards instead of allocating per-node arrays.
type ImplicitFatTree struct {
	geom
}

// NewImplicit builds an implicit fat-tree on n processors whose channel
// capacity at level k is capAt(k). Validation matches New exactly.
func NewImplicit(n int, capAt func(level int) int) *ImplicitFatTree {
	return &ImplicitFatTree{geom: newGeom(n, capAt)}
}

// NewImplicitUniversal is NewUniversal's implicit counterpart: the Section IV
// capacity profile with root capacity w, computed on demand.
func NewImplicitUniversal(n, w int) *ImplicitFatTree {
	if w < 1 {
		panic(fmt.Sprintf("core: root capacity w = %d must be >= 1", w))
	}
	return NewImplicit(n, func(k int) int { return UniversalCapacity(n, w, k) })
}

// NewImplicitConstant is NewConstant's implicit counterpart.
func NewImplicitConstant(n, c int) *ImplicitFatTree {
	return NewImplicit(n, func(int) int { return c })
}

// NewImplicitDoubling is NewDoubling's implicit counterpart.
func NewImplicitDoubling(n int) *ImplicitFatTree {
	return NewImplicit(n, func(k int) int { return ceilDiv(n, 1<<uint(k)) })
}

// String summarizes the implicit fat-tree
// ("implicit-fat-tree(n=64, caps=[8 8 7 5 4 2 1])").
func (t *ImplicitFatTree) String() string {
	return fmt.Sprintf("implicit-fat-tree(n=%d, caps=%v)", t.n, t.caps)
}

// CapTableOf returns a flat per-node capacity table for any Topology:
// FatTree's own memoized CapTable when available, otherwise a table rebuilt
// from the per-level profile and the override overlay. The result is O(n)
// memory by definition — callers that must stay independent of n (the
// streaming engine, the compact observer) use LevelCapTable and CapAt
// instead; this helper exists for consumers whose own state is per-node
// anyway, such as the scheduler arena and the dense observer.
func CapTableOf(t Topology) []int {
	if ft, ok := t.(*FatTree); ok {
		return ft.CapTable()
	}
	table := make([]int, t.Nodes()+1)
	caps := t.LevelCapTable()
	for k := 0; k < len(caps); k++ {
		first, count := t.LevelRange(k)
		for v := first; v < first+count; v++ {
			table[v] = caps[k]
		}
	}
	t.Overrides(func(node, cap int) { table[node] = cap })
	return table
}
