package core

import "fmt"

// This file implements the generalized k-ary fat-tree: the parameterized
// multi-level topology real deployments build (SimGrid's
// FatTree(down;up;parallel) descriptors, Solnushkin's automated two-layer
// designs) expressed as a third Topology implementation. Where the paper's
// fat-tree is a complete binary tree with a per-level capacity profile, a
// k-ary fat-tree lets every tier choose its own arity and its own uplink
// aggregate — down[i] children per level-i node, up[i] uplinks of parallel[i]
// wires each from every level-(i+1) node toward its parent — so
// oversubscribed pods, wide-radix leaf switches, and 2/3-tier datacenter
// shapes are all expressible. The binary universal fat-tree is the special
// case down[i] = 2, up[i]·parallel[i] = cap(level i+1), and in that shape the
// node numbering below degenerates to exactly the heap numbering of FatTree,
// which the equivalence tests exploit.

// KaryDesc describes a k-ary fat-tree, one entry per tier. Tier i connects
// the level-i nodes to their level-(i+1) children; tier 0 is the root tier
// and tier len(Down)-1 is the leaf tier whose children are the processors.
type KaryDesc struct {
	// Down[i] is the number of children of every level-i node (the "down
	// links" of the SimGrid descriptor). Each entry must be >= 2.
	Down []int

	// Up[i] is the number of uplinks from each level-(i+1) node toward its
	// parent, and Parallel[i] the number of parallel wires per uplink, so the
	// channel above a level-(i+1) node has capacity Up[i]·Parallel[i]. Both
	// entries must be >= 1.
	Up       []int
	Parallel []int

	// Root is the capacity of the external root channel (the level-0 channel
	// between the root and the outside world). 0 selects the default
	// Up[0]·Parallel[0] — the same width as the channels just below the root.
	Root int
}

// Tiers returns the number of tiers, which is also the leaf level number.
func (d KaryDesc) Tiers() int { return len(d.Down) }

// KaryFatTree is a generalized k-ary fat-tree on n = prod(Down) processors.
// Nodes are numbered level by level: the root is node 1, and the children of
// consecutive nodes of one level occupy consecutive index ranges of the next
// (the children of node v at level k start at LevelRange(k+1).first +
// (v-LevelRange(k).first)·Down[k]). For an all-binary descriptor this is
// exactly the heap numbering of FatTree, so HeapIndexed reports true and the
// Theorem 1 scheduler applies unchanged; for any other shape consumers must
// navigate through Parent/Children/LevelRange instead of bit arithmetic.
//
// The validation contract matches FatTree and ImplicitFatTree: constructors
// panic on malformed descriptors, and SetChannelCapacity/FailNode validate
// every argument before mutating anything.
type KaryFatTree struct {
	desc   KaryDesc
	n      int   // processors, prod(Down)
	levels int   // number of tiers; leaves live at level `levels`
	nodes  int   // total node count (internal switches plus leaves)
	caps   []int // caps[k] = capacity of the channel above a level-k node

	levelFirst []int // levelFirst[k] = index of the first level-k node
	levelCount []int // levelCount[k] = number of level-k nodes
	leafStride []int // leafStride[k] = processors per level-k subtree

	// override holds per-channel capacity overrides, keyed by node index,
	// with the same semantics as the geom overlay (both directions share the
	// value; nil until SetChannelCapacity is called).
	override map[int]int
}

var _ Topology = (*KaryFatTree)(nil)

// NewKary validates desc and builds the k-ary fat-tree. It panics on a
// malformed descriptor — mismatched tier counts, an arity below 2, a link
// count below 1, a negative root capacity — because a malformed network is a
// programming error, exactly as in New.
func NewKary(desc KaryDesc) *KaryFatTree {
	tiers := len(desc.Down)
	if tiers < 1 {
		panic("core: k-ary descriptor needs at least one tier")
	}
	if len(desc.Up) != tiers || len(desc.Parallel) != tiers {
		panic(fmt.Sprintf("core: k-ary descriptor tier counts disagree: down=%d up=%d parallel=%d",
			tiers, len(desc.Up), len(desc.Parallel)))
	}
	for i, d := range desc.Down {
		if d < 2 {
			panic(fmt.Sprintf("core: k-ary down[%d] = %d; every tier needs >= 2 children", i, d))
		}
		if desc.Up[i] < 1 {
			panic(fmt.Sprintf("core: k-ary up[%d] = %d; must be >= 1", i, desc.Up[i]))
		}
		if desc.Parallel[i] < 1 {
			panic(fmt.Sprintf("core: k-ary parallel[%d] = %d; must be >= 1", i, desc.Parallel[i]))
		}
	}
	if desc.Root < 0 {
		panic(fmt.Sprintf("core: k-ary root capacity %d must be >= 0 (0 selects the default)", desc.Root))
	}

	t := &KaryFatTree{
		desc:       cloneDesc(desc),
		levels:     tiers,
		caps:       make([]int, tiers+1),
		levelFirst: make([]int, tiers+1),
		levelCount: make([]int, tiers+1),
		leafStride: make([]int, tiers+1),
	}
	t.levelFirst[0], t.levelCount[0] = 1, 1
	for k := 0; k < tiers; k++ {
		count := t.levelCount[k] * desc.Down[k]
		if count > 1<<30 {
			panic(fmt.Sprintf("core: k-ary tree too large: %d nodes at level %d", count, k+1))
		}
		t.levelCount[k+1] = count
		t.levelFirst[k+1] = t.levelFirst[k] + t.levelCount[k]
	}
	t.n = t.levelCount[tiers]
	t.nodes = t.levelFirst[tiers] + t.levelCount[tiers] - 1
	for k := 0; k <= tiers; k++ {
		t.leafStride[k] = t.n / t.levelCount[k]
	}
	t.caps[0] = desc.Root
	if t.caps[0] == 0 {
		t.caps[0] = desc.Up[0] * desc.Parallel[0]
	}
	for k := 1; k <= tiers; k++ {
		t.caps[k] = desc.Up[k-1] * desc.Parallel[k-1]
	}
	return t
}

// cloneDesc deep-copies the descriptor so later caller mutations cannot
// corrupt the built topology.
func cloneDesc(d KaryDesc) KaryDesc {
	out := KaryDesc{
		Down:     make([]int, len(d.Down)),
		Up:       make([]int, len(d.Up)),
		Parallel: make([]int, len(d.Parallel)),
		Root:     d.Root,
	}
	copy(out.Down, d.Down)
	copy(out.Up, d.Up)
	copy(out.Parallel, d.Parallel)
	return out
}

// Desc returns a copy of the validated descriptor.
func (t *KaryFatTree) Desc() KaryDesc { return cloneDesc(t.desc) }

// Processors returns n, the number of processors (leaves).
func (t *KaryFatTree) Processors() int { return t.n }

// Levels returns the leaf level number (the number of tiers).
func (t *KaryFatTree) Levels() int { return t.levels }

// Nodes returns the total number of tree nodes (internal switches plus
// leaves). Unlike the binary tree's 2n-1, a k-ary tree with wider tiers has
// proportionally fewer internal nodes; Nodes() is always <= 2n-1.
func (t *KaryFatTree) Nodes() int { return t.nodes }

// InternalNodes returns the number of switching nodes.
func (t *KaryFatTree) InternalNodes() int { return t.nodes - t.n }

// Leaf returns the node index of processor p's leaf. It panics if p is out
// of range.
func (t *KaryFatTree) Leaf(p int) int {
	if p < 0 || p >= t.n {
		panic(fmt.Sprintf("core: processor %d out of range [0,%d)", p, t.n))
	}
	return t.levelFirst[t.levels] + p
}

// ProcessorOf returns the processor number of leaf node v, or -1 if v is not
// a leaf.
func (t *KaryFatTree) ProcessorOf(v int) int {
	first := t.levelFirst[t.levels]
	if v < first || v > t.nodes {
		return -1
	}
	return v - first
}

// Level returns the level (distance from the root) of node v.
func (t *KaryFatTree) Level(v int) int {
	if v < 1 || v > t.nodes {
		panic(fmt.Sprintf("core: node %d out of range [1,%d)", v, t.nodes+1))
	}
	return t.levelOf(v)
}

// levelOf is Level without the range check, scanning from the leaf level
// first because most nodes are leaves.
//
//ftlint:hotpath
func (t *KaryFatTree) levelOf(v int) int {
	for k := t.levels; k > 0; k-- {
		if v >= t.levelFirst[k] {
			return k
		}
	}
	return 0
}

// Parent returns the parent of node v, or 0 for the root — the same sentinel
// heap division by two produces. v is not range-checked; it is the hot-path
// navigation primitive.
//
//ftlint:hotpath
func (t *KaryFatTree) Parent(v int) int {
	if v <= 1 {
		return 0
	}
	k := t.levelOf(v)
	return t.levelFirst[k-1] + (v-t.levelFirst[k])/t.desc.Down[k-1]
}

// Children returns the contiguous child range of node v: the first child
// index and the child count, or (0, 0) for a leaf.
func (t *KaryFatTree) Children(v int) (first, count int) {
	k := t.Level(v)
	if k == t.levels {
		return 0, 0
	}
	return t.levelFirst[k+1] + (v-t.levelFirst[k])*t.desc.Down[k], t.desc.Down[k]
}

// LevelRange returns the contiguous node range of level k: the first index
// and the node count. It panics if k is out of range.
func (t *KaryFatTree) LevelRange(k int) (first, count int) {
	if k < 0 || k > t.levels {
		panic(fmt.Sprintf("core: level %d out of range [0,%d]", k, t.levels))
	}
	return t.levelFirst[k], t.levelCount[k]
}

// AncestorAt returns node v's ancestor at level k (v itself when k is v's
// level). It panics if v is out of range or k is below v's level.
func (t *KaryFatTree) AncestorAt(v, k int) int {
	kv := t.Level(v)
	if k < 0 || k > kv {
		panic(fmt.Sprintf("core: level %d outside [0,%d] for node %d", k, kv, v))
	}
	lo := (v - t.levelFirst[kv]) * t.leafStride[kv]
	return t.levelFirst[k] + lo/t.leafStride[k]
}

// SubtreeLeaves returns the half-open processor interval [lo, hi) of the
// leaves under node v.
func (t *KaryFatTree) SubtreeLeaves(v int) (lo, hi int) {
	k := t.Level(v)
	lo = (v - t.levelFirst[k]) * t.leafStride[k]
	return lo, lo + t.leafStride[k]
}

// Contains reports whether processor p lies in the subtree rooted at node v.
func (t *KaryFatTree) Contains(v, p int) bool {
	lo, hi := t.SubtreeLeaves(v)
	return p >= lo && p < hi
}

// LCA returns the node index of the least common ancestor of processors p
// and q: the deepest level at which both lie in the same subtree.
func (t *KaryFatTree) LCA(p, q int) int {
	t.Leaf(p) // range-check
	t.Leaf(q)
	for k := t.levels; k > 0; k-- {
		s := t.leafStride[k]
		if p/s == q/s {
			return t.levelFirst[k] + p/s
		}
	}
	return 1
}

// CapacityAtLevel returns the (level-uniform) capacity of channels at level
// k. Per-channel overrides are not reflected here; use Capacity for that.
func (t *KaryFatTree) CapacityAtLevel(k int) int {
	if k < 0 || k > t.levels {
		panic(fmt.Sprintf("core: level %d out of range [0,%d]", k, t.levels))
	}
	return t.caps[k]
}

// Capacity returns the capacity of channel c, honouring any per-channel
// override; both directions of an edge share one capacity.
func (t *KaryFatTree) Capacity(c Channel) int {
	if t.override != nil {
		if v, ok := t.override[c.Node]; ok {
			return v
		}
	}
	return t.caps[t.Level(c.Node)]
}

// CapAt returns the capacity of both channels of the edge above node v,
// honouring overrides, without range-checking v — the O(1) hot-path accessor.
//
//ftlint:hotpath
func (t *KaryFatTree) CapAt(v int) int {
	if t.override != nil {
		if c, ok := t.override[v]; ok {
			return c
		}
	}
	return t.caps[t.levelOf(v)]
}

// RootCapacity returns the capacity of the level-0 channel between the root
// and the external interface.
func (t *KaryFatTree) RootCapacity() int { return t.Capacity(Channel{Node: 1, Dir: Up}) }

// SetChannelCapacity overrides the capacity of both channels of the edge
// above node v. Validation happens before any mutation, with the same panics
// as the other Topology implementations.
func (t *KaryFatTree) SetChannelCapacity(v, cap int) {
	if cap < 1 {
		panic(fmt.Sprintf("core: capacity %d must be >= 1", cap))
	}
	if v < 1 || v > t.nodes {
		panic(fmt.Sprintf("core: node %d out of range [1,%d)", v, t.nodes+1))
	}
	if t.override == nil {
		t.override = make(map[int]int)
	}
	t.override[v] = cap
}

// LevelCapTable returns a fresh copy of the per-level capacity table.
func (t *KaryFatTree) LevelCapTable() []int {
	table := make([]int, len(t.caps))
	copy(table, t.caps)
	return table
}

// Overrides calls fn for every per-channel capacity override in effect, in
// unspecified order.
func (t *KaryFatTree) Overrides(fn func(node, cap int)) {
	for v, c := range t.override {
		fn(v, c)
	}
}

// TotalWires returns the sum of capacities over all directed channels,
// computed in O(levels + #overrides).
func (t *KaryFatTree) TotalWires() int {
	total := 0
	for k, c := range t.caps {
		total += 2 * t.levelCount[k] * c
	}
	for v, c := range t.override {
		total += 2 * (c - t.caps[t.levelOf(v)])
	}
	return total
}

// Channels calls fn for every directed channel in deterministic order (node
// 1..Nodes(), Up then Down), including the external root channel.
func (t *KaryFatTree) Channels(fn func(Channel)) {
	for v := 1; v <= t.nodes; v++ {
		fn(Channel{Node: v, Dir: Up})
		fn(Channel{Node: v, Dir: Down})
	}
}

// PathLength returns the number of channels on message m's unique path.
func (t *KaryFatTree) PathLength(m Message) int {
	if m.IsExternal() {
		return t.levels + 1
	}
	return 2 * (t.levels - t.Level(t.LCA(m.Src, m.Dst)))
}

// Path appends the channels of message m's unique path to buf: Up channels
// from the source leaf toward (excluding) the LCA, then Down channels from
// just below the LCA to the destination leaf.
func (t *KaryFatTree) Path(m Message, buf []Channel) []Channel {
	if m.IsExternal() {
		return t.ExternalPath(m, buf)
	}
	lca := t.LCA(m.Src, m.Dst)
	for v := t.Leaf(m.Src); v != lca; v = t.Parent(v) {
		buf = append(buf, Channel{Node: v, Dir: Up})
	}
	start := len(buf)
	for v := t.Leaf(m.Dst); v != lca; v = t.Parent(v) {
		buf = append(buf, Channel{Node: v, Dir: Down})
	}
	for i, j := start, len(buf)-1; i < j; i, j = i+1, j-1 {
		buf[i], buf[j] = buf[j], buf[i]
	}
	return buf
}

// ExternalPath appends the channels of an external message's path to buf,
// with the same orientation rules as the binary implementation.
func (t *KaryFatTree) ExternalPath(m Message, buf []Channel) []Channel {
	switch {
	case m.Dst == External:
		for v := t.Leaf(m.Src); v >= 1; v = t.Parent(v) {
			buf = append(buf, Channel{Node: v, Dir: Up})
		}
	case m.Src == External:
		start := len(buf)
		for v := t.Leaf(m.Dst); v >= 1; v = t.Parent(v) {
			buf = append(buf, Channel{Node: v, Dir: Down})
		}
		for i, j := start, len(buf)-1; i < j; i, j = i+1, j-1 {
			buf[i], buf[j] = buf[j], buf[i]
		}
	default:
		panic("core: ExternalPath on an internal message")
	}
	return buf
}

// AddressBits returns the number of destination-address switching decisions
// on m's path: the depth of the destination leaf below the LCA. Each k-ary
// switching decision selects among Down[k] children.
func (t *KaryFatTree) AddressBits(m Message) int {
	return t.levels - t.Level(t.LCA(m.Src, m.Dst))
}

// CrossesNode reports whether message m's path passes through node v.
func (t *KaryFatTree) CrossesNode(v int, m Message) bool {
	lca := t.LCA(m.Src, m.Dst)
	if !t.ancestorOrSelf(lca, v) {
		return false
	}
	return t.Contains(v, m.Src) || t.Contains(v, m.Dst)
}

// ancestorOrSelf reports whether node a is an ancestor of (or equal to)
// node b.
func (t *KaryFatTree) ancestorOrSelf(a, b int) bool {
	ka, kb := t.Level(a), t.Level(b)
	if ka > kb {
		return false
	}
	return t.AncestorAt(b, ka) == a
}

// String summarizes the k-ary fat-tree
// ("kary-fat-tree(n=64, down=[4 4 4], up=[2 2 1], parallel=[1 1 1])").
func (t *KaryFatTree) String() string {
	return fmt.Sprintf("kary-fat-tree(n=%d, down=%v, up=%v, parallel=%v, caps=%v)",
		t.n, t.desc.Down, t.desc.Up, t.desc.Parallel, t.caps)
}
