package viz

import (
	"strings"
	"testing"

	"fattree/internal/core"
	"fattree/internal/decomp"
	"fattree/internal/workload"
)

func TestSilhouette(t *testing.T) {
	var b strings.Builder
	ft := core.NewUniversal(64, 16)
	Silhouette(&b, ft)
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + one line per level (0..6).
	if len(lines) != 8 {
		t.Fatalf("expected 8 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "root") || !strings.Contains(lines[7], "leaves") {
		t.Errorf("labels missing:\n%s", out)
	}
	// The root bar must be the longest.
	rootBar := strings.Count(lines[1], "█")
	leafBar := strings.Count(lines[7], "█")
	if rootBar <= leafBar {
		t.Errorf("root bar (%d) not longer than leaf bar (%d)", rootBar, leafBar)
	}
}

func TestUtilizationFlagsOverload(t *testing.T) {
	var b strings.Builder
	ft := core.NewConstant(16, 1)
	Utilization(&b, ft, workload.Reversal(16))
	out := b.String()
	if !strings.Contains(out, "overloaded") {
		t.Errorf("reversal on unit tree must overload:\n%s", out)
	}
	// Local traffic on a wide tree shows no overload.
	b.Reset()
	Utilization(&b, core.NewConstant(16, 8), workload.NearestNeighbor(16))
	if strings.Contains(b.String(), "overloaded") {
		t.Errorf("nearest-neighbour on cap-8 tree should not overload:\n%s", b.String())
	}
}

func TestDecompositionProfile(t *testing.T) {
	var b strings.Builder
	tr := decomp.NewRegular(4, 16, 2)
	DecompositionProfile(&b, tr)
	out := b.String()
	if !strings.Contains(out, "depth 4") || !strings.Contains(out, "ratio a = 2.000") {
		t.Errorf("profile missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+5+1 { // header + 5 levels + footer
		t.Errorf("expected 7 lines:\n%s", out)
	}
}

func TestScheduleGantt(t *testing.T) {
	var b strings.Builder
	ft := core.NewConstant(8, 1)
	cycles := []core.MessageSet{
		{{Src: 0, Dst: 7}}, // global: every level busy
		{{Src: 0, Dst: 1}}, // local: only the bottom level busy
	}
	ScheduleGantt(&b, ft, cycles)
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+4 { // header + levels 0..3
		t.Fatalf("expected 5 lines:\n%s", out)
	}
	// Level 1 (root children) busy only in cycle 0.
	if !strings.Contains(lines[2], "|# |") {
		t.Errorf("level 1 row wrong: %q", lines[2])
	}
	// Leaf level busy in both cycles.
	if !strings.Contains(lines[4], "|##|") {
		t.Errorf("leaf row wrong: %q", lines[4])
	}
	// Root external channel idle throughout.
	if !strings.Contains(lines[1], "|  |") {
		t.Errorf("root row wrong: %q", lines[1])
	}
}

func TestCycleProfile(t *testing.T) {
	var b strings.Builder
	CycleProfile(&b, []int{10, 5, 1})
	out := b.String()
	if !strings.Contains(out, "cycle 1") || !strings.Contains(out, "cycle 3") {
		t.Errorf("cycles missing:\n%s", out)
	}
	b.Reset()
	CycleProfile(&b, nil)
	if !strings.Contains(b.String(), "no deliveries") {
		t.Errorf("empty profile not handled")
	}
}

func TestBarsBounded(t *testing.T) {
	// Even huge overloads keep bars bounded.
	if got := scaledFrac(100); len([]rune(got)) > barWidth+2 {
		t.Errorf("overload bar too long: %d runes", len([]rune(got)))
	}
	if scaled(1, 1000000) == "" {
		t.Errorf("nonzero value should render at least one cell")
	}
}
