// Package viz renders terminal visualizations of fat-tree state: per-level
// capacity/utilization bars and tree silhouettes. The experiments and cmd
// tools use it to make the "fat" in fat-tree visible — capacities thickening
// toward the root and traffic concentrating where the workload's locality
// puts it.
package viz

import (
	"fmt"
	"io"
	"strings"

	"fattree/internal/core"
	"fattree/internal/decomp"
)

// barWidth is the maximum bar length in characters.
const barWidth = 40

// Silhouette writes an ASCII silhouette of the fat-tree: one row per level,
// bar length proportional to the level's channel capacity — the Fig. 1
// picture, sideways.
func Silhouette(w io.Writer, t *core.FatTree) {
	maxCap := t.CapacityAtLevel(0)
	fmt.Fprintf(w, "fat-tree silhouette (n=%d, root capacity %d)\n", t.Processors(), t.RootCapacity())
	for k := 0; k <= t.Levels(); k++ {
		c := t.CapacityAtLevel(k)
		bar := scaled(c, maxCap)
		label := "switches"
		if k == 0 {
			label = "root"
		} else if k == t.Levels() {
			label = "leaves"
		}
		fmt.Fprintf(w, "L%-2d %-*s cap %-6d ×%-6d %s\n", k, barWidth, bar, c, 1<<uint(k), label)
	}
}

// Utilization writes per-level utilization bars for a message set: for each
// level, the most loaded channel's load against its capacity. Overloaded
// levels (λ > 1) are flagged — they are the channels that force extra
// delivery cycles.
func Utilization(w io.Writer, t *core.FatTree, ms core.MessageSet) {
	loads := core.NewLoads(t, ms)
	fmt.Fprintf(w, "per-level peak utilization (%d messages, λ = %.2f)\n",
		len(ms), core.LoadFactor(t, ms))
	for k := 0; k <= t.Levels(); k++ {
		maxLoad := 0
		first := 1 << uint(k)
		for v := first; v < 2*first && v < 2*t.Processors(); v++ {
			for _, dir := range []core.Direction{core.Up, core.Down} {
				if l := loads.Load(core.Channel{Node: v, Dir: dir}); l > maxLoad {
					maxLoad = l
				}
			}
		}
		cap := t.CapacityAtLevel(k)
		frac := float64(maxLoad) / float64(cap)
		bar := scaledFrac(frac)
		flag := ""
		if frac > 1 {
			flag = fmt.Sprintf("  <- overloaded %.1fx", frac)
		}
		fmt.Fprintf(w, "L%-2d %-*s %4d/%-4d%s\n", k, barWidth+2, bar, maxLoad, cap, flag)
	}
}

// DecompositionProfile renders a decomposition tree's per-level bandwidths
// as bars — the (w, a) staircase of Theorem 5, with the measured decay ratio
// in the footer.
func DecompositionProfile(w io.Writer, t *decomp.Tree) {
	fmt.Fprintf(w, "decomposition tree: depth %d, %d processors\n", t.Depth, t.Procs())
	max := t.W[0]
	for i, bw := range t.W {
		n := int(bw / max * float64(barWidth))
		if n == 0 && bw > 0 {
			n = 1
		}
		fmt.Fprintf(w, "L%-2d %-*s %.1f\n", i, barWidth, strings.Repeat("█", n), bw)
	}
	fmt.Fprintf(w, "per-level decay ratio a = %.3f\n", t.Ratio())
}

// ScheduleGantt renders a schedule as a level × cycle occupancy chart: one
// row per tree level, one column per delivery cycle, each cell showing how
// full the level's most loaded channel is in that cycle (' ' idle, '.' <50%,
// 'o' <100%, '#' full). Level-sequential Theorem 1 schedules show a
// staircase; compacted schedules fill the rectangle.
func ScheduleGantt(w io.Writer, t *core.FatTree, cycles []core.MessageSet) {
	fmt.Fprintf(w, "schedule occupancy (%d cycles x %d levels)\n", len(cycles), t.Levels()+1)
	grids := make([][]byte, t.Levels()+1)
	for k := range grids {
		grids[k] = make([]byte, len(cycles))
	}
	for ci, cyc := range cycles {
		loads := core.NewLoads(t, cyc)
		for k := 0; k <= t.Levels(); k++ {
			maxFrac := 0.0
			first := 1 << uint(k)
			for v := first; v < 2*first; v++ {
				for _, dir := range []core.Direction{core.Up, core.Down} {
					c := core.Channel{Node: v, Dir: dir}
					f := float64(loads.Load(c)) / float64(t.Capacity(c))
					if f > maxFrac {
						maxFrac = f
					}
				}
			}
			switch {
			case maxFrac == 0:
				grids[k][ci] = ' '
			case maxFrac < 0.5:
				grids[k][ci] = '.'
			case maxFrac < 1:
				grids[k][ci] = 'o'
			default:
				grids[k][ci] = '#'
			}
		}
	}
	for k, row := range grids {
		fmt.Fprintf(w, "L%-2d |%s|\n", k, string(row))
	}
}

// CycleProfile writes a histogram of messages delivered per cycle — the
// drain curve of an online run.
func CycleProfile(w io.Writer, perCycle []int) {
	max := 0
	for _, c := range perCycle {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		fmt.Fprintln(w, "(no deliveries)")
		return
	}
	fmt.Fprintf(w, "deliveries per cycle (%d cycles)\n", len(perCycle))
	for i, c := range perCycle {
		fmt.Fprintf(w, "cycle %-4d %-*s %d\n", i+1, barWidth, scaled(c, max), c)
	}
}

// scaled renders a bar of length proportional to v/max.
func scaled(v, max int) string {
	if max == 0 {
		return ""
	}
	n := v * barWidth / max
	if n == 0 && v > 0 {
		n = 1
	}
	return strings.Repeat("█", n)
}

// scaledFrac renders a utilization bar: full width means 100%; overload is
// shown with a '!' tail capped at the bar width plus two.
func scaledFrac(frac float64) string {
	n := int(frac * barWidth)
	if n <= barWidth {
		if n == 0 && frac > 0 {
			n = 1
		}
		return strings.Repeat("█", n)
	}
	return strings.Repeat("█", barWidth) + "!!"
}
