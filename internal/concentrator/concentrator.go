package concentrator

import (
	"fmt"
	"math/rand"
)

// Pippenger's construction parameters: bipartite partial concentrator graphs
// with s = 2r/3 outputs in which every input has degree at most 6 and every
// output degree at most 9, concentrating any k <= α·s inputs with α = 3/4.
const (
	// MaxInDegree is the paper's bound on the degree of concentrator inputs.
	MaxInDegree = 6
	// MaxOutDegree is the paper's bound on the degree of concentrator outputs.
	MaxOutDegree = 9
	// DefaultAlpha is the concentration constant α of Pippenger's (r, 2r/3, 3/4)
	// partial concentrators.
	DefaultAlpha = 0.75
)

// Concentrator routes messages from input wires onto fewer output wires. The
// job of the concentrator switch is to create electrical paths from those
// input wires that carry messages to output wires; if there are more input
// messages than reachable output wires, the excess messages are lost
// (congestion).
type Concentrator interface {
	// Inputs returns r, the number of input wires.
	Inputs() int
	// Outputs returns s <= r, the number of output wires.
	Outputs() int
	// Route connects the given active input wires to distinct outputs via
	// vertex-disjoint paths where possible. It returns out[i] = the output
	// assigned to active[i], or -1 if that message is lost.
	Route(active []int) (out []int, lost int)
	// Components returns the number of switching components, which must be
	// O(r) for the fat-tree node cost bound of Section IV to hold.
	Components() int
}

// Ideal is the idealized concentrator assumed through most of Section III:
// if the number of input messages does not exceed the number of output wires,
// no messages are lost. With k > s actives, exactly k-s are lost.
type Ideal struct {
	r, s int
	out  []int // reusable result buffer; Route's return is scratch-owned
}

// NewIdeal returns an ideal (r, s) concentrator. It panics if s > r or either
// is non-positive, which would not be a concentrator at all.
func NewIdeal(r, s int) *Ideal {
	if r < 1 || s < 1 || s > r {
		panic(fmt.Sprintf("concentrator: invalid ideal concentrator (r=%d, s=%d)", r, s))
	}
	return &Ideal{r: r, s: s}
}

// Inputs returns r.
func (c *Ideal) Inputs() int { return c.r }

// Outputs returns s.
func (c *Ideal) Outputs() int { return c.s }

// Components models the ideal concentrator as a full crossbar-free
// concentrator of linear size.
func (c *Ideal) Components() int { return c.r + c.s }

// Route assigns the first s active inputs to outputs 0..s-1 and drops the
// rest. The returned slice is reused by the next Route call.
//
//ftlint:hotpath
func (c *Ideal) Route(active []int) ([]int, int) {
	c.out = growInts(c.out, len(active))
	out := c.out
	lost := 0
	for i := range active {
		if active[i] < 0 || active[i] >= c.r {
			panic(fmt.Sprintf("concentrator: active input %d out of range [0,%d)", active[i], c.r))
		}
		if i < c.s {
			out[i] = i
		} else {
			out[i] = -1
			lost++
		}
	}
	return out, lost
}

// Partial is an (r, s, α) partial concentrator graph: a bipartite graph with
// r inputs and s <= r outputs such that any k <= α·s inputs can be
// simultaneously connected to some k outputs by vertex-disjoint paths. The
// graph is bipartite (constant depth, no intermediate vertices), inputs have
// degree at most MaxInDegree and outputs at most MaxOutDegree, mirroring
// Pippenger's probabilistic construction.
type Partial struct {
	r, s int
	adj  [][]int // adj[input] = candidate outputs

	// Reusable routing scratch: the matching working set and the
	// epoch-stamped duplicate-input guard (seen[u] == gen means input u
	// already appeared in the current Route call).
	m    Matcher
	seen []int64
	gen  int64
}

// NewPartial builds a seeded pseudo-random (r, s, ·) partial concentrator.
// Each input is wired to MaxInDegree outputs (fewer when s < MaxInDegree)
// drawn from the outputs with remaining slot budget, keeping every output's
// degree at most MaxOutDegree whenever the aggregate budget allows
// (r·MaxInDegree <= s·MaxOutDegree, which holds at the canonical ratio
// s = 2r/3). The achieved concentration constant is measured, not assumed:
// see MeasureAlpha.
func NewPartial(r, s int, seed int64) *Partial {
	if r < 1 || s < 1 || s > r {
		panic(fmt.Sprintf("concentrator: invalid partial concentrator (r=%d, s=%d)", r, s))
	}
	rng := rand.New(rand.NewSource(seed))
	deg := MaxInDegree
	if deg > s {
		deg = s
	}
	// Slot pool: each output appears up to MaxOutDegree times, but at least
	// enough slots exist to serve all inputs.
	slotsPerOut := MaxOutDegree
	if r*deg > s*slotsPerOut {
		slotsPerOut = (r*deg + s - 1) / s
	}
	remaining := make([]int, s)
	for v := range remaining {
		remaining[v] = slotsPerOut
	}
	adj := make([][]int, r)
	// Process inputs in random order so no input is systematically starved.
	order := rng.Perm(r)
	pool := make([]int, 0, s)
	for _, u := range order {
		used := make(map[int]bool, deg)
		edges := make([]int, 0, deg)
		for len(edges) < deg {
			// Rebuild the candidate pool of outputs with remaining budget and
			// not already wired to u.
			pool = pool[:0]
			for v := 0; v < s; v++ {
				if remaining[v] > 0 && !used[v] {
					pool = append(pool, v)
				}
			}
			if len(pool) == 0 {
				break // budget exhausted; accept lower degree for this input
			}
			v := pool[rng.Intn(len(pool))]
			used[v] = true
			remaining[v]--
			edges = append(edges, v)
		}
		adj[u] = edges
	}
	return &Partial{r: r, s: s, adj: adj, seen: make([]int64, r)}
}

// Inputs returns r.
func (c *Partial) Inputs() int { return c.r }

// Outputs returns s.
func (c *Partial) Outputs() int { return c.s }

// Components counts one component per vertex plus one per edge — O(r) by the
// degree bounds.
func (c *Partial) Components() int {
	edges := 0
	for _, a := range c.adj {
		edges += len(a)
	}
	return c.r + c.s + edges
}

// MaxInputDegree returns the largest input degree in the graph.
func (c *Partial) MaxInputDegree() int {
	max := 0
	for _, a := range c.adj {
		if len(a) > max {
			max = len(a)
		}
	}
	return max
}

// MaxOutputDegree returns the largest output degree in the graph.
func (c *Partial) MaxOutputDegree() int {
	deg := make([]int, c.s)
	for _, a := range c.adj {
		for _, v := range a {
			deg[v]++
		}
	}
	max := 0
	for _, d := range deg {
		if d > max {
			max = d
		}
	}
	return max
}

// Route connects the active inputs to distinct outputs by maximum bipartite
// matching; unmatched actives are lost. Duplicate or out-of-range inputs
// panic. The returned slice is reused by the next Route (or MeasureAlpha)
// call on this concentrator.
//
//ftlint:hotpath
func (c *Partial) Route(active []int) ([]int, int) {
	c.gen++
	for _, u := range active {
		if u < 0 || u >= c.r {
			panic(fmt.Sprintf("concentrator: active input %d out of range [0,%d)", u, c.r))
		}
		if c.seen[u] == c.gen {
			panic(fmt.Sprintf("concentrator: duplicate active input %d", u))
		}
		c.seen[u] = c.gen
	}
	matched, size := c.m.MatchSubset(active, c.s, c.adj)
	return matched, len(active) - size
}

// MatchingRounds returns the cumulative number of Hopcroft–Karp BFS phases
// this concentrator has run since construction.
func (c *Partial) MatchingRounds() int64 { return c.m.Rounds() }

// MeasureAlpha estimates the concentration constant of the graph: the largest
// fraction α such that every sampled subset of ceil(α·s) inputs was fully
// connected to distinct outputs. It samples `trials` random subsets at each
// candidate size, descending from s, and returns the first size at which no
// loss was observed. The returned value is a lower-bound estimate of the true
// α (sampling can only overestimate loss-freeness, so trials should be
// generous in tests).
func (c *Partial) MeasureAlpha(trials int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	for k := c.s; k >= 1; k-- {
		ok := true
		for t := 0; t < trials && ok; t++ {
			subset := rng.Perm(c.r)[:k]
			_, size := c.m.MatchSubset(subset, c.s, c.adj)
			if size < k {
				ok = false
			}
		}
		if ok {
			return float64(k) / float64(c.s)
		}
	}
	return 0
}
