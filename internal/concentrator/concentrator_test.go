package concentrator

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdealNoCongestionNoLoss(t *testing.T) {
	c := NewIdeal(12, 8)
	out, lost := c.Route([]int{0, 3, 5, 7, 11})
	if lost != 0 {
		t.Fatalf("lost %d without congestion", lost)
	}
	seen := map[int]bool{}
	for _, o := range out {
		if o < 0 || o >= 8 || seen[o] {
			t.Fatalf("bad output assignment %v", out)
		}
		seen[o] = true
	}
}

func TestIdealCongestionLosesExactExcess(t *testing.T) {
	c := NewIdeal(10, 4)
	active := []int{0, 1, 2, 3, 4, 5, 6}
	_, lost := c.Route(active)
	if lost != 3 {
		t.Fatalf("lost %d, want 3", lost)
	}
}

func TestIdealPanicsOnBadInput(t *testing.T) {
	c := NewIdeal(4, 2)
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic for out-of-range input")
		}
	}()
	c.Route([]int{5})
}

func TestPartialDegreeBounds(t *testing.T) {
	for _, r := range []int{9, 30, 90, 300} {
		s := 2 * r / 3
		c := NewPartial(r, s, 42)
		if got := c.MaxInputDegree(); got > MaxInDegree {
			t.Errorf("r=%d: input degree %d > %d", r, got, MaxInDegree)
		}
		if got := c.MaxOutputDegree(); got > MaxOutDegree {
			t.Errorf("r=%d: output degree %d > %d", r, got, MaxOutDegree)
		}
		if c.Components() > (MaxInDegree+2)*r+2*s {
			t.Errorf("r=%d: components %d not O(r)", r, c.Components())
		}
	}
}

func TestPartialConcentrationAlpha(t *testing.T) {
	// The measured concentration constant should be comfortably positive —
	// Pippenger's existence proof promises α = 3/4 for large r; our seeded
	// graphs should concentrate at least half of s on these sizes.
	for _, r := range []int{30, 90, 240} {
		s := 2 * r / 3
		c := NewPartial(r, s, 7)
		alpha := c.MeasureAlpha(40, 11)
		if alpha < 0.5 {
			t.Errorf("r=%d: measured α = %.2f < 0.5", r, alpha)
		}
	}
}

func TestPartialRouteVertexDisjoint(t *testing.T) {
	r := 60
	c := NewPartial(r, 40, 3)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		k := 1 + rng.Intn(30)
		active := rng.Perm(r)[:k]
		out, lost := c.Route(active)
		used := map[int]bool{}
		routed := 0
		for i, o := range out {
			if o == -1 {
				continue
			}
			routed++
			if used[o] {
				t.Fatalf("output %d used twice", o)
			}
			used[o] = true
			// The assignment must follow a real edge of the graph.
			found := false
			for _, v := range c.adj[active[i]] {
				if v == o {
					found = true
				}
			}
			if !found {
				t.Fatalf("input %d routed to non-adjacent output %d", active[i], o)
			}
		}
		if routed+lost != k {
			t.Fatalf("routed %d + lost %d != active %d", routed, lost, k)
		}
	}
}

func TestPartialRejectsDuplicates(t *testing.T) {
	c := NewPartial(10, 7, 1)
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic for duplicate active input")
		}
	}()
	c.Route([]int{3, 3})
}

func TestPartialSmallSizes(t *testing.T) {
	// Degenerate sizes must not panic and must still concentrate.
	for _, rs := range [][2]int{{1, 1}, {2, 1}, {3, 2}, {5, 5}} {
		c := NewPartial(rs[0], rs[1], 9)
		active := make([]int, rs[0])
		for i := range active {
			active[i] = i
		}
		out, lost := c.Route(active)
		if len(out) != rs[0] {
			t.Errorf("r=%d s=%d: wrong output length", rs[0], rs[1])
		}
		if lost > rs[0]-1 && rs[1] >= 1 {
			t.Errorf("r=%d s=%d: everything lost", rs[0], rs[1])
		}
	}
}

func TestCascadeRatioAndDepth(t *testing.T) {
	c := NewCascade(81, 16, 2)
	if c.Inputs() != 81 || c.Outputs() != 16 {
		t.Fatalf("cascade dims wrong: %d->%d", c.Inputs(), c.Outputs())
	}
	// Depth must be logarithmic in the ratio (constant for constant ratio):
	// 81 -> 54 -> 36 -> 24 -> 16 is 4 stages.
	if c.Depth() != 4 {
		t.Errorf("depth = %d, want 4", c.Depth())
	}
	if c.Components() > 20*81 {
		t.Errorf("cascade components %d not O(r)", c.Components())
	}
}

func TestCascadeRoutesUnderAlphaFraction(t *testing.T) {
	c := NewCascade(60, 20, 4)
	rng := rand.New(rand.NewSource(8))
	// Requesting well under the output count should mostly succeed.
	totalLost, totalSent := 0, 0
	for trial := 0; trial < 30; trial++ {
		k := 1 + rng.Intn(10) // k <= 10 = s/2
		active := rng.Perm(60)[:k]
		out, lost := c.Route(active)
		totalLost += lost
		totalSent += k
		for i, o := range out {
			if o != -1 && (o < 0 || o >= 20) {
				t.Fatalf("trial %d: active %d routed to invalid wire %d", trial, active[i], o)
			}
		}
		// Outputs must be distinct.
		used := map[int]bool{}
		for _, o := range out {
			if o == -1 {
				continue
			}
			if used[o] {
				t.Fatalf("output wire %d reused", o)
			}
			used[o] = true
		}
	}
	if totalLost*10 > totalSent {
		t.Errorf("cascade lost %d of %d under light load", totalLost, totalSent)
	}
}

func TestCascadeIdentitySize(t *testing.T) {
	c := NewCascade(8, 8, 1)
	out, lost := c.Route([]int{0, 1, 2, 3, 4, 5, 6, 7})
	if lost != 0 {
		t.Errorf("r==s cascade lost %d of 8", lost)
	}
	_ = out
}

func TestSwitchRouting(t *testing.T) {
	// Node with parent channels of width 4 and child channels of width 2.
	sw := NewSwitch(4, 2, KindIdeal, 0)
	reqs := []Request{
		{In: Left, InWire: 0, Out: Parent},
		{In: Left, InWire: 1, Out: Right},
		{In: Right, InWire: 0, Out: Parent},
		{In: Parent, InWire: 2, Out: Left},
	}
	out, lost := sw.Route(reqs)
	if lost != 0 {
		t.Fatalf("lost %d without congestion", lost)
	}
	for i, o := range out {
		if o < 0 {
			t.Errorf("request %d lost", i)
		}
	}
	// The two parent-bound messages must land on distinct up wires.
	if out[0] == out[2] {
		t.Errorf("parent-bound messages share wire %d", out[0])
	}
}

func TestSwitchCongestion(t *testing.T) {
	// Parent channel width 1; both children send up: one must be lost.
	sw := NewSwitch(1, 1, KindIdeal, 0)
	reqs := []Request{
		{In: Left, InWire: 0, Out: Parent},
		{In: Right, InWire: 0, Out: Parent},
	}
	_, lost := sw.Route(reqs)
	if lost != 1 {
		t.Fatalf("lost %d, want 1", lost)
	}
}

func TestSwitchInvariantsEnforced(t *testing.T) {
	sw := NewSwitch(2, 2, KindIdeal, 0)
	bad := [][]Request{
		{{In: Left, InWire: 0, Out: Left}},                                      // turn-back
		{{In: Left, InWire: 5, Out: Parent}},                                    // wire range
		{{In: Left, InWire: 0, Out: Parent}, {In: Left, InWire: 0, Out: Right}}, // duplicate wire
	}
	for i, reqs := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			sw.Route(reqs)
		}()
	}
}

func TestSwitchComponentsLinear(t *testing.T) {
	// Components must scale linearly with incident wires (Section IV: a node
	// with m incident wires has O(m) components).
	prev := 0
	for _, w := range []int{4, 8, 16, 32, 64} {
		sw := NewSwitch(w, w/2, KindPartial, 13)
		m := sw.IncidentWires()
		comp := sw.Components()
		if comp > 25*m {
			t.Errorf("w=%d: %d components for %d wires — not O(m)", w, comp, m)
		}
		if comp <= prev {
			t.Errorf("components should grow with node size")
		}
		prev = comp
	}
}

func TestSwitchPartialKind(t *testing.T) {
	sw := NewSwitch(8, 4, KindPartial, 21)
	// Light load through a partial-concentrator switch should mostly succeed.
	reqs := []Request{
		{In: Left, InWire: 0, Out: Parent},
		{In: Right, InWire: 1, Out: Parent},
		{In: Parent, InWire: 3, Out: Left},
	}
	out, _ := sw.Route(reqs)
	routed := 0
	for _, o := range out {
		if o >= 0 {
			routed++
		}
	}
	if routed < 2 {
		t.Errorf("partial switch routed only %d of 3 under light load", routed)
	}
}

func TestHopcroftKarpMatchesGreedyLowerBound(t *testing.T) {
	// Property: maximum matching size is at least any greedy matching size.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nIn, nOut := 8+rng.Intn(8), 6+rng.Intn(8)
		adj := make([][]int, nIn)
		for i := range adj {
			for v := 0; v < nOut; v++ {
				if rng.Intn(3) == 0 {
					adj[i] = append(adj[i], v)
				}
			}
		}
		_, size := hopcroftKarp(nIn, nOut, adj)
		// Greedy matching.
		used := make([]bool, nOut)
		greedy := 0
		for _, a := range adj {
			for _, v := range a {
				if !used[v] {
					used[v] = true
					greedy++
					break
				}
			}
		}
		return size >= greedy && size <= nIn && size <= nOut
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHopcroftKarpPerfectMatching(t *testing.T) {
	// Complete bipartite graph K_{n,n} has a perfect matching.
	n := 10
	adj := make([][]int, n)
	for i := range adj {
		for v := 0; v < n; v++ {
			adj[i] = append(adj[i], v)
		}
	}
	matchIn, size := hopcroftKarp(n, n, adj)
	if size != n {
		t.Fatalf("matching size %d, want %d", size, n)
	}
	seen := map[int]bool{}
	for _, v := range matchIn {
		if v == -1 || seen[v] {
			t.Fatalf("invalid perfect matching %v", matchIn)
		}
		seen[v] = true
	}
}
