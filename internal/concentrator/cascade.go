package concentrator

import "fmt"

// Cascade pastes several partial concentrator graphs together, outputs to
// inputs, to obtain an arbitrary concentration ratio in constant depth ("by
// pasting several of these graphs together, outputs to inputs, any constant
// ratio of concentration can be obtained in constant depth"). Each stage
// shrinks the wire count by the canonical factor 2/3 until the target output
// count is reached; the final stage is built directly at the needed ratio.
type Cascade struct {
	stages []*Partial
	r, s   int

	// Reusable routing scratch: the per-message current-wire array and the
	// live-wire compaction buffers. Route's return is scratch-owned.
	cur, live, idxOf []int
}

// NewCascade builds a cascade concentrating r inputs onto s <= r outputs.
// Stage i is a partial concentrator from w_i wires to max(s, 2w_i/3) wires.
func NewCascade(r, s int, seed int64) *Cascade {
	if r < 1 || s < 1 || s > r {
		panic(fmt.Sprintf("concentrator: invalid cascade (r=%d, s=%d)", r, s))
	}
	c := &Cascade{r: r, s: s}
	w := r
	stage := int64(0)
	for w > s {
		next := 2 * w / 3
		if next < s {
			next = s
		}
		c.stages = append(c.stages, NewPartial(w, next, seed+stage))
		w = next
		stage++
	}
	if len(c.stages) == 0 {
		// r == s: a single identity-capable stage keeps Route well-defined.
		c.stages = append(c.stages, NewPartial(r, s, seed))
	}
	return c
}

// Inputs returns r.
func (c *Cascade) Inputs() int { return c.r }

// Outputs returns s.
func (c *Cascade) Outputs() int { return c.s }

// Depth returns the number of stages — constant for any fixed concentration
// ratio.
func (c *Cascade) Depth() int { return len(c.stages) }

// Components sums the component counts of the stages; still O(r) because the
// stage widths form a geometric series.
func (c *Cascade) Components() int {
	total := 0
	for _, st := range c.stages {
		total += st.Components()
	}
	return total
}

// MatchingRounds returns the cumulative Hopcroft–Karp BFS phases summed over
// the cascade's stages since construction.
func (c *Cascade) MatchingRounds() int64 {
	total := int64(0)
	for _, st := range c.stages {
		total += st.MatchingRounds()
	}
	return total
}

// Route pushes the active inputs through the stages. A message lost at any
// stage is lost overall. It returns the final output wire per active input
// (-1 if lost) and the total number lost. The returned slice is reused by
// the next Route call.
//
//ftlint:hotpath
func (c *Cascade) Route(active []int) ([]int, int) {
	// cur[i] = wire currently carrying active[i], or -1 once lost.
	cur := growInts(c.cur, len(active))
	c.cur = cur
	copy(cur, active)
	for _, st := range c.stages {
		// Collect live wires (they are distinct by induction).
		live := growInts(c.live, len(cur))[:0]
		idxOf := growInts(c.idxOf, len(cur))[:0]
		for i, w := range cur {
			if w >= 0 {
				live = append(live, w)
				idxOf = append(idxOf, i)
			}
		}
		c.live, c.idxOf = live[:cap(live)], idxOf[:cap(idxOf)]
		out, _ := st.Route(live)
		for j, i := range idxOf {
			cur[i] = out[j]
		}
	}
	lost := 0
	for _, w := range cur {
		if w < 0 {
			lost++
		}
	}
	return cur, lost
}

var _ Concentrator = (*Ideal)(nil)
var _ Concentrator = (*Partial)(nil)
var _ Concentrator = (*Cascade)(nil)
