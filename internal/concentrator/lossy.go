package concentrator

import (
	"fmt"
	"math/rand"
)

// Lossy wraps a concentrator with a transient-fault model: each message the
// inner concentrator routes successfully is independently corrupted in
// transit with probability Rate and counts as lost. Section VII lists fault
// tolerance among the unsolved engineering concerns; the acknowledgment
// protocol of Section II already handles these losses — corrupted messages
// are simply negatively acknowledged and retried — and experiment E17
// measures the cost.
type Lossy struct {
	inner     Concentrator
	rate      float64
	rng       *rand.Rand
	corrupted int64 // cumulative fault corruptions, for the observability layer
}

// NewLossy wraps inner with the given corruption rate in [0, 1).
func NewLossy(inner Concentrator, rate float64, seed int64) *Lossy {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("concentrator: loss rate %v outside [0,1)", rate))
	}
	return &Lossy{inner: inner, rate: rate, rng: rand.New(rand.NewSource(seed))}
}

// Inputs returns the inner concentrator's input count.
func (l *Lossy) Inputs() int { return l.inner.Inputs() }

// Outputs returns the inner concentrator's output count.
func (l *Lossy) Outputs() int { return l.inner.Outputs() }

// Components returns the inner component count (faults add no hardware).
func (l *Lossy) Components() int { return l.inner.Components() }

// Route routes through the inner concentrator, then corrupts each surviving
// assignment independently. A corrupted message's wire remains occupied for
// the cycle (the hardware committed it before the fault), so corruption
// cannot create over-subscription downstream.
func (l *Lossy) Route(active []int) ([]int, int) {
	out, lost := l.inner.Route(active)
	for i, o := range out {
		if o >= 0 && l.rng.Float64() < l.rate {
			out[i] = -1
			lost++
			l.corrupted++
		}
	}
	return out, lost
}

// Corrupted returns the cumulative number of messages this wrapper has
// corrupted since construction.
func (l *Lossy) Corrupted() int64 { return l.corrupted }

// MatchingRounds forwards the inner concentrator's cumulative Hopcroft–Karp
// round count (faults add no matching work).
func (l *Lossy) MatchingRounds() int64 { return matchingRoundsOf(l.inner) }

var _ Concentrator = (*Lossy)(nil)

// InjectLoss wraps all three concentrators of the switch with the transient-
// fault model.
func (s *Switch) InjectLoss(rate float64, seed int64) {
	s.toParent = NewLossy(s.toParent, rate, seed)
	s.toLeft = NewLossy(s.toLeft, rate, seed+1)
	s.toRight = NewLossy(s.toRight, rate, seed+2)
}
