// Package concentrator implements the switching circuitry inside a fat-tree
// node (Section IV of the paper): (r,s) concentrator and (r,s,α) partial
// concentrator graphs with the degree bounds of Pippenger's construction
// (inputs of degree at most 6, outputs of degree at most 9), cascades of
// partial concentrators achieving any constant concentration ratio in
// constant depth, and the three-concentrator node switch of Fig. 3.
//
// The paper's concentrators are probabilistic existence results; here they
// are seeded pseudo-random bipartite graphs whose concentration quality α is
// *measured* by sampling rather than assumed, and routing through a
// concentrator is maximum bipartite matching (the paper suggests network-flow
// or per-level matchings for the off-line setting).
package concentrator

// matchInf marks BFS-unreachable inputs in Hopcroft–Karp.
const matchInf = int(^uint(0) >> 1)

// Matcher holds the reusable working set of Hopcroft–Karp maximum matching:
// the match arrays of both sides, the BFS layer distances and queue, and the
// subset adjacency view. Every buffer is grown on demand and reused across
// runs, so a warm Matcher performs matchings without heap allocation — the
// same pooled-scratch discipline as the delivery engine and scheduler arenas
// (DESIGN.md §7, §9). The zero value is ready to use. A Matcher is not safe
// for concurrent use; each Partial owns one.
type Matcher struct {
	matchIn  []int
	matchOut []int
	dist     []int
	queue    []int
	sub      [][]int
	adj      [][]int // adjacency of the current run (set by run, for bfs/dfs)

	// rounds counts BFS phases cumulatively across runs — the matching effort
	// the Section IV routing hardware would spend. The observability layer
	// reads it through Switch.MatchingRounds and differences snapshots, so it
	// is monotone and never reset.
	rounds int64
}

// growInts returns s resized to length n, reusing the backing array when
// capacity allows and reallocating with headroom otherwise. The contents are
// unspecified after the call.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n, n+n/2)
	}
	return s[:n]
}

// MatchSubset computes a maximum matching restricted to the given subset of
// inputs. It returns the matched output for each element of subset (parallel
// slice, -1 if unmatched) and the matching size. The returned slice lives in
// the Matcher's scratch and is valid only until its next Run.
//
//ftlint:hotpath
func (m *Matcher) MatchSubset(subset []int, nOutputs int, adj [][]int) ([]int, int) {
	if cap(m.sub) < len(subset) {
		m.sub = make([][]int, len(subset), len(subset)+len(subset)/2)
	}
	m.sub = m.sub[:len(subset)]
	for i, u := range subset {
		m.sub[i] = adj[u]
	}
	return m.Run(len(subset), nOutputs, m.sub)
}

// Run computes a maximum matching in a bipartite graph given as adjacency
// lists from the nInputs left vertices to right vertices 0..nOutputs-1. It
// returns matchIn (input -> matched output or -1, scratch-owned, valid until
// the next Run) and the matching size. Runs in O(E·sqrt(V)).
//
//ftlint:hotpath
func (m *Matcher) Run(nInputs, nOutputs int, adj [][]int) (matchIn []int, size int) {
	m.matchIn = growInts(m.matchIn, nInputs)
	m.matchOut = growInts(m.matchOut, nOutputs)
	m.dist = growInts(m.dist, nInputs)
	m.queue = growInts(m.queue, nInputs)
	m.adj = adj
	for i := range m.matchIn {
		m.matchIn[i] = -1
	}
	for i := range m.matchOut {
		m.matchOut[i] = -1
	}
	for m.bfs(nInputs) {
		m.rounds++
		for u := 0; u < nInputs; u++ {
			if m.matchIn[u] == -1 && m.dfs(u) {
				size++
			}
		}
	}
	m.adj = nil
	return m.matchIn, size
}

// bfs layers the alternating-path BFS from all free inputs and reports
// whether an augmenting path exists.
func (m *Matcher) bfs(nInputs int) bool {
	queue := m.queue[:0]
	for u := 0; u < nInputs; u++ {
		if m.matchIn[u] == -1 {
			m.dist[u] = 0
			queue = append(queue, u)
		} else {
			m.dist[u] = matchInf
		}
	}
	found := false
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for _, v := range m.adj[u] {
			w := m.matchOut[v]
			if w == -1 {
				found = true
			} else if m.dist[w] == matchInf {
				m.dist[w] = m.dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	return found
}

// dfs extends an augmenting path from input u along the BFS layers.
func (m *Matcher) dfs(u int) bool {
	for _, v := range m.adj[u] {
		w := m.matchOut[v]
		if w == -1 || (m.dist[w] == m.dist[u]+1 && m.dfs(w)) {
			m.matchIn[u] = v
			m.matchOut[v] = u
			return true
		}
	}
	m.dist[u] = matchInf
	return false
}

// Rounds reports the cumulative BFS-phase count across every Run — the
// matching effort the Section IV routing hardware would spend. It is monotone
// and never reset; observers difference successive readings.
func (m *Matcher) Rounds() int64 { return m.rounds }

// hopcroftKarp is the one-shot form of Matcher.Run, for callers without a
// Matcher to warm (tests, offline analysis).
func hopcroftKarp(nInputs, nOutputs int, adj [][]int) (matchIn []int, size int) {
	var m Matcher
	return m.Run(nInputs, nOutputs, adj)
}
