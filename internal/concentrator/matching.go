// Package concentrator implements the switching circuitry inside a fat-tree
// node (Section IV of the paper): (r,s) concentrator and (r,s,α) partial
// concentrator graphs with the degree bounds of Pippenger's construction
// (inputs of degree at most 6, outputs of degree at most 9), cascades of
// partial concentrators achieving any constant concentration ratio in
// constant depth, and the three-concentrator node switch of Fig. 3.
//
// The paper's concentrators are probabilistic existence results; here they
// are seeded pseudo-random bipartite graphs whose concentration quality α is
// *measured* by sampling rather than assumed, and routing through a
// concentrator is maximum bipartite matching (the paper suggests network-flow
// or per-level matchings for the off-line setting).
package concentrator

// hopcroftKarp computes a maximum matching in a bipartite graph given as
// adjacency lists from the nInputs left vertices to right vertices
// 0..nOutputs-1. It returns matchIn (input -> matched output or -1) and the
// matching size. Runs in O(E·sqrt(V)).
func hopcroftKarp(nInputs, nOutputs int, adj [][]int) (matchIn []int, size int) {
	const inf = int(^uint(0) >> 1)
	matchIn = make([]int, nInputs)
	matchOut := make([]int, nOutputs)
	for i := range matchIn {
		matchIn[i] = -1
	}
	for i := range matchOut {
		matchOut[i] = -1
	}
	dist := make([]int, nInputs)
	queue := make([]int, 0, nInputs)

	bfs := func() bool {
		queue = queue[:0]
		for u := 0; u < nInputs; u++ {
			if matchIn[u] == -1 {
				dist[u] = 0
				queue = append(queue, u)
			} else {
				dist[u] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, v := range adj[u] {
				w := matchOut[v]
				if w == -1 {
					found = true
				} else if dist[w] == inf {
					dist[w] = dist[u] + 1
					queue = append(queue, w)
				}
			}
		}
		return found
	}

	var dfs func(u int) bool
	dfs = func(u int) bool {
		for _, v := range adj[u] {
			w := matchOut[v]
			if w == -1 || (dist[w] == dist[u]+1 && dfs(w)) {
				matchIn[u] = v
				matchOut[v] = u
				return true
			}
		}
		dist[u] = inf
		return false
	}

	for bfs() {
		for u := 0; u < nInputs; u++ {
			if matchIn[u] == -1 && dfs(u) {
				size++
			}
		}
	}
	return matchIn, size
}

// maxMatchingSubset computes a maximum matching restricted to the given
// subset of inputs. It returns the matched output for each element of subset
// (parallel slice, -1 if unmatched) and the matching size.
func maxMatchingSubset(subset []int, nOutputs int, adj [][]int) (matched []int, size int) {
	sub := make([][]int, len(subset))
	for i, u := range subset {
		sub[i] = adj[u]
	}
	return hopcroftKarp(len(subset), nOutputs, sub)
}
