package concentrator

import "fmt"

// This file implements the internal structure of a fat-tree node (Fig. 3 of
// the paper). A node has three input ports and three output ports connected
// to the channels of the surrounding tree edges. A wire from an input port is
// fanned out toward the two opposite output ports; a selector ANDs the M bit
// with the leading address bit (or its complement) to determine which output
// port the message wants, and a concentrator switch at each output port
// establishes disjoint electrical paths for as many of those messages as
// possible.

// Port names the three bidirectional port positions of a node.
type Port int

const (
	// Parent is the port facing the node's parent (the Up output channel and
	// the Down input channel).
	Parent Port = iota
	// Left is the port facing the left child.
	Left
	// Right is the port facing the right child.
	Right
)

// String returns "parent", "left" or "right".
func (p Port) String() string {
	switch p {
	case Parent:
		return "parent"
	case Left:
		return "left"
	case Right:
		return "right"
	}
	return fmt.Sprintf("port(%d)", int(p))
}

// Kind selects the concentrator implementation inside a switch.
type Kind int

const (
	// KindIdeal uses ideal concentrators: no message is lost unless an output
	// channel is congested (more messages than wires). This is the assumption
	// of Section III.
	KindIdeal Kind = iota
	// KindPartial uses Pippenger-style partial concentrators; a message can
	// occasionally be lost even without congestion, when the active set
	// exceeds the measured α fraction. Section IV's remedy — treating the
	// effective capacity as α times the wire count — is applied by callers.
	KindPartial
)

// Request is one message entering a node during a delivery cycle: it occupies
// wire InWire of input port In, and its leading address bit directs it to
// output port Out. In == Out is invalid: a message never turns back on the
// port it arrived on (paths in the tree are simple).
type Request struct {
	In     Port
	InWire int
	Out    Port
}

// Switch is the switching circuitry of one fat-tree node: one concentrator
// per output port, each fed by the two input ports that can reach it.
//
// A Switch owns reusable routing scratch (as do its concentrators), so one
// Switch must not route from multiple goroutines concurrently, and the slice
// Route returns is valid only until the next Route call.
type Switch struct {
	capParent int // width of the parent-side channels (up and down)
	capChild  int // width of each child-side channel
	toParent  Concentrator
	toLeft    Concentrator
	toRight   Concentrator

	scr switchScratch
}

// switchScratch is the reusable per-route arena of one switch: request
// partitions per output port, epoch-stamped input-wire occupancy guards, and
// the result and active-wire buffers. Sized by the port widths, it is
// allocated once at construction and never grows.
type switchScratch struct {
	byOut    [3][]pendingReq
	seen     [3][]int64 // per input port: stamp of the route that used a wire
	gen      int64
	outWires []int
	active   []int
}

// pendingReq maps one request to its index in the concatenated input
// numbering of its output port's concentrator.
type pendingReq struct {
	reqIdx int
	wire   int
}

// NewSwitch builds the switch for a node whose parent-side channels have
// capParent wires and whose child-side channels have capChild wires each.
// kind selects ideal or partial concentrators; seed feeds the partial
// constructions.
func NewSwitch(capParent, capChild int, kind Kind, seed int64) *Switch {
	if capParent < 1 || capChild < 1 {
		panic(fmt.Sprintf("concentrator: invalid switch widths parent=%d child=%d", capParent, capChild))
	}
	build := func(r, s int, stage int64) Concentrator {
		if s >= r {
			return &passThrough{r: r, s: s}
		}
		if kind == KindIdeal {
			return NewIdeal(r, s)
		}
		return NewCascade(r, s, seed+stage)
	}
	s := &Switch{
		capParent: capParent,
		capChild:  capChild,
		// To the parent: candidates come from both children.
		toParent: build(2*capChild, capParent, 0),
		// To a child: candidates come from the parent and the other child.
		toLeft:  build(capParent+capChild, capChild, 1),
		toRight: build(capParent+capChild, capChild, 2),
	}
	maxReqs := capParent + 2*capChild // every input wire of every port active
	for out := Parent; out <= Right; out++ {
		s.scr.byOut[out] = make([]pendingReq, 0, maxReqs)
		s.scr.seen[out] = make([]int64, s.portWidth(out))
	}
	s.scr.outWires = make([]int, 0, maxReqs)
	s.scr.active = make([]int, 0, maxReqs)
	return s
}

// passThrough is the degenerate "concentrator" used when an output port has
// at least as many wires as its candidate inputs: every message passes.
type passThrough struct {
	r, s int
	buf  []int
}

func (p *passThrough) Inputs() int     { return p.r }
func (p *passThrough) Outputs() int    { return p.s }
func (p *passThrough) Components() int { return p.r }

// Route passes every active wire through unchanged. The returned slice is
// reused by the next Route call.
//
//ftlint:hotpath
func (p *passThrough) Route(active []int) ([]int, int) {
	p.buf = growInts(p.buf, len(active))
	copy(p.buf, active)
	return p.buf, 0
}

// Components returns the total number of switching components in the node,
// which is O(m) for m incident wires (Section IV).
func (s *Switch) Components() int {
	return s.toParent.Components() + s.toLeft.Components() + s.toRight.Components()
}

// IncidentWires returns m, the number of wires incident on the node (both
// directions of all three ports).
func (s *Switch) IncidentWires() int {
	return 2 * (s.capParent + 2*s.capChild)
}

// Route performs one delivery cycle's switching: each request is assigned an
// output wire on its requested port, or -1 if the concentrator loses it. It
// returns the per-request assignments and the total number lost. Requests
// must be well-formed (valid wire ranges, In != Out, no two requests on the
// same input wire); Route panics otherwise, as the caller (the simulator)
// owns those invariants.
//
// The returned slice is owned by the switch's scratch and valid only until
// the next Route call on this switch.
//
//ftlint:hotpath
func (s *Switch) Route(reqs []Request) (outWires []int, lost int) {
	// Partition the requests by output port, mapping each to its index in the
	// concatenated input numbering of that port's concentrator. The
	// duplicate-wire guard is an epoch stamp per input wire, cleared by
	// incrementing the generation instead of reallocating.
	scr := &s.scr
	scr.gen++
	for out := Parent; out <= Right; out++ {
		scr.byOut[out] = scr.byOut[out][:0]
	}
	for i, r := range reqs {
		if r.In == r.Out {
			panic(fmt.Sprintf("concentrator: request %d turns back on port %v", i, r.In))
		}
		if r.InWire < 0 || r.InWire >= s.portWidth(r.In) {
			panic(fmt.Sprintf("concentrator: request %d wire %d out of range on port %v", i, r.InWire, r.In))
		}
		if scr.seen[r.In][r.InWire] == scr.gen {
			panic(fmt.Sprintf("concentrator: two requests on input wire %d of port %v", r.InWire, r.In))
		}
		scr.seen[r.In][r.InWire] = scr.gen
		scr.byOut[r.Out] = append(scr.byOut[r.Out],
			pendingReq{reqIdx: i, wire: s.concentratorInput(r.In, r.Out, r.InWire)})
	}

	outWires = growInts(scr.outWires, len(reqs))
	scr.outWires = outWires
	for i := range outWires {
		outWires[i] = -1
	}
	for out := Parent; out <= Right; out++ {
		ps := scr.byOut[out]
		if len(ps) == 0 {
			continue
		}
		active := growInts(scr.active, len(ps))
		scr.active = active
		for j, p := range ps {
			active[j] = p.wire
		}
		assigned, l := s.concentratorFor(out).Route(active)
		lost += l
		for j, p := range ps {
			outWires[p.reqIdx] = assigned[j]
		}
	}
	return outWires, lost
}

// MatchingRounds returns the cumulative Hopcroft–Karp BFS phases run by the
// node's three concentrators since construction — 0 for ideal or pass-through
// ports, which route without matching. The observability layer snapshots this
// monotone counter and differences it per sweep.
func (s *Switch) MatchingRounds() int64 {
	return matchingRoundsOf(s.toParent) + matchingRoundsOf(s.toLeft) + matchingRoundsOf(s.toRight)
}

// FaultDrops returns the cumulative number of messages corrupted by injected
// transient faults (the Lossy wrapper) across the node's three concentrators;
// 0 when no loss is injected. Monotone, for observability snapshots.
func (s *Switch) FaultDrops() int64 {
	return corruptedOf(s.toParent) + corruptedOf(s.toLeft) + corruptedOf(s.toRight)
}

// matchingRoundsOf reads a concentrator's cumulative matching-round counter,
// or 0 for implementations that do no matching.
func matchingRoundsOf(c Concentrator) int64 {
	if m, ok := c.(interface{ MatchingRounds() int64 }); ok {
		return m.MatchingRounds()
	}
	return 0
}

// corruptedOf reads a concentrator's cumulative fault-corruption counter, or
// 0 for fault-free implementations.
func corruptedOf(c Concentrator) int64 {
	if f, ok := c.(interface{ Corrupted() int64 }); ok {
		return f.Corrupted()
	}
	return 0
}

// portWidth returns the wire count of a port (per direction).
func (s *Switch) portWidth(p Port) int {
	if p == Parent {
		return s.capParent
	}
	return s.capChild
}

// concentratorFor returns the concentrator serving output port out.
func (s *Switch) concentratorFor(out Port) Concentrator {
	switch out {
	case Parent:
		return s.toParent
	case Left:
		return s.toLeft
	case Right:
		return s.toRight
	}
	panic("concentrator: bad output port")
}

// concentratorInput maps (input port, wire) to the concatenated input index
// of the concentrator at output port out. For the parent concentrator the
// order is (left wires, right wires); for a child concentrator it is
// (parent wires, other-child wires).
func (s *Switch) concentratorInput(in, out Port, wire int) int {
	switch out {
	case Parent:
		if in == Left {
			return wire
		}
		return s.capChild + wire
	case Left, Right:
		if in == Parent {
			return wire
		}
		return s.capParent + wire
	}
	panic("concentrator: bad output port")
}
