package concentrator

import "testing"

func TestLossyZeroRatePassesEverything(t *testing.T) {
	inner := NewIdeal(8, 8)
	l := NewLossy(inner, 0, 1)
	if l.Inputs() != 8 || l.Outputs() != 8 || l.Components() != inner.Components() {
		t.Errorf("lossy wrapper changed dimensions")
	}
	out, lost := l.Route([]int{0, 1, 2, 3})
	if lost != 0 {
		t.Errorf("zero-rate lossy lost %d", lost)
	}
	for i, o := range out {
		if o < 0 {
			t.Errorf("message %d lost at rate 0", i)
		}
	}
}

func TestLossyDropsAboutRate(t *testing.T) {
	inner := NewIdeal(16, 16)
	l := NewLossy(inner, 0.3, 7)
	active := make([]int, 16)
	for i := range active {
		active[i] = i
	}
	totalLost, totalSent := 0, 0
	for trial := 0; trial < 200; trial++ {
		_, lost := l.Route(active)
		totalLost += lost
		totalSent += 16
	}
	rate := float64(totalLost) / float64(totalSent)
	if rate < 0.2 || rate > 0.4 {
		t.Errorf("observed loss rate %.3f, want ~0.3", rate)
	}
}

func TestLossyRejectsBadRate(t *testing.T) {
	for _, rate := range []float64{-0.1, 1.0, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("rate %v accepted", rate)
				}
			}()
			NewLossy(NewIdeal(4, 4), rate, 1)
		}()
	}
}

func TestSwitchInjectLoss(t *testing.T) {
	sw := NewSwitch(4, 2, KindIdeal, 0)
	sw.InjectLoss(0.99, 3)
	// At 99% corruption, most requests are lost.
	reqs := []Request{
		{In: Left, InWire: 0, Out: Parent},
		{In: Right, InWire: 1, Out: Parent},
		{In: Parent, InWire: 0, Out: Left},
	}
	lostTotal := 0
	for trial := 0; trial < 50; trial++ {
		_, lost := sw.Route(reqs)
		lostTotal += lost
	}
	if lostTotal < 100 { // 150 requests total; expect ~148 lost
		t.Errorf("only %d of 150 lost at 99%% corruption", lostTotal)
	}
}

func TestPortString(t *testing.T) {
	if Parent.String() != "parent" || Left.String() != "left" || Right.String() != "right" {
		t.Errorf("port names wrong")
	}
	if Port(9).String() == "" {
		t.Errorf("unknown port should still render")
	}
}
