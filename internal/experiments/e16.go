package experiments

import (
	"math"

	"fattree/internal/core"
	"fattree/internal/metrics"
	"fattree/internal/trace"
	"fattree/internal/vlsi"
)

// E16Applications runs whole-application communication traces on fat-trees of
// three hardware scales — the Section VII thesis that "one should build the
// biggest fat-tree one can afford, and the architecture automatically ensures
// that communication bandwidth is effectively utilized". Local applications
// (multigrid, FEM) degrade only mildly on cheap trees; FFT — the genuinely
// global communicator — pays the most when hardware shrinks; sample sort is
// insensitive because its serial gather saturates one leaf channel that no
// network width can widen.
func E16Applications(o Options) []*metrics.Table {
	k := 16
	if !o.Quick {
		k = 32
	}
	n := k * k
	trees := []struct {
		name string
		ft   *core.FatTree
	}{
		{"w=sqrt(n)", core.NewUniversal(n, 2*k)},
		{"w=n^(2/3)", core.NewUniversal(n, rootW(n))},
		{"w=n", core.NewUniversal(n, n)},
	}
	traces := []*trace.Trace{
		trace.MultiGrid(k),
		trace.FEMSolve(k, 1),
		trace.FFT(n),
		trace.SampleSort(n, 4, o.Seed),
	}

	tab := metrics.NewTable(
		"Application traces across hardware scales (n = "+itoa(n)+", payload 32)",
		"application", "tree", "volume", "cycles", "ticks", "ticks vs w=n")
	for _, tr := range traces {
		full := trace.Run(trees[len(trees)-1].ft, tr, 32).TotalTicks
		for _, tc := range trees {
			res := trace.Run(tc.ft, tr, 32)
			vol := vlsi.UniversalVolume(n, tc.ft.RootCapacity())
			tab.AddRow(tr.Name, tc.name, vol, res.TotalCycles, res.TotalTicks,
				math.Round(100*float64(res.TotalTicks)/float64(full))/100)
		}
	}
	return []*metrics.Table{tab}
}
