package experiments

import (
	"fattree/internal/baseline"
	"fattree/internal/core"
	"fattree/internal/metrics"
	"fattree/internal/sched"
	"fattree/internal/sim"
	"fattree/internal/universal"
	"fattree/internal/vlsi"
	"fattree/internal/workload"
)

// E18Mesh3D pits the universal fat-tree against its strongest cheap
// competitor: the three-dimensional array, which exploits the paper's 3-D
// VLSI model most fully — bisection Θ(n^(2/3)) in Θ(n) volume, the *same*
// bandwidth order as the volume-matched fat-tree's root. Measured honestly,
// the 3-D mesh wins outright on stencils (its native pattern) and in raw
// clock ticks generally, because the fat-tree's polylog constants dominate
// at feasible sizes — the reason real machines (Cray, BlueGene) shipped 3-D
// toruses. The fat-tree's asymptotic edge shows in delivery-cycle currency:
// on bit-reversal its cycle count falls below the mesh's step count as n
// grows (crossover visible at n = 4096), with the gap widening as
// Θ(n^(1/3)/lg-factors). Theorem 10's envelope of course still covers both
// networks.
func E18Mesh3D(o Options) []*metrics.Table {
	sizes := pick(o, []int{64}, []int{64, 512, 4096})
	tab := metrics.NewTable(
		"3-D mesh vs volume-matched universal fat-tree",
		"n", "workload", "t mesh3d", "d ft", "mesh3d/d", "ft ticks", "mesh3d/ticks", "mesh3d diameter")
	for _, n := range sizes {
		m3 := baseline.NewMesh3D(n)
		ft := vlsi.NewUniversalOfVolume(n, m3.Volume())
		for _, wl := range []struct {
			name string
			ms   core.MessageSet
		}{
			{"3-D stencil", stencil3D(n)},
			{"permutation", workload.RandomPermutation(n, o.Seed)},
			{"bit-reversal", workload.BitReversal(n)},
		} {
			tMesh := baseline.Deliver(m3, wl.ms).Cycles
			s := sched.OffLine(ft, wl.ms)
			ftTicks := s.Length() * sim.MaxCycleTicks(ft, 0)
			k := 1
			for k*k*k < n {
				k++
			}
			tab.AddRow(n, wl.name, tMesh, s.Length(),
				float64(tMesh)/float64(s.Length()), ftTicks,
				float64(tMesh)/float64(ftTicks), 3*(k-1))
		}
	}

	// Theorem 10 applies to the 3-D mesh and the torus like everything else.
	n := 64
	env := metrics.NewTable(
		"Theorem 10 on the volume-exploiting networks (n = 64)",
		"network", "workload", "t (net)", "slowdown", "lg³n", "norm")
	for _, net := range []baseline.Network{baseline.NewMesh3D(n), baseline.NewTorus(n)} {
		for _, wl := range []struct {
			name string
			ms   core.MessageSet
		}{
			{"bit-reversal", workload.BitReversal(n)},
			{"permutation", workload.RandomPermutation(n, o.Seed)},
		} {
			r := universal.Simulate(net, wl.ms, 1)
			env.AddRow(net.Name(), wl.name, r.NetworkCycles, r.Slowdown, r.PolylogBound,
				r.Slowdown/r.PolylogBound)
		}
	}
	return []*metrics.Table{tab, env}
}

// stencil3D is the 6-point nearest-neighbour exchange on the k³ grid.
func stencil3D(n int) core.MessageSet {
	k := 1
	for k*k*k < n {
		k++
	}
	id := func(x, y, z int) int { return z*k*k + y*k + x }
	var ms core.MessageSet
	for z := 0; z < k; z++ {
		for y := 0; y < k; y++ {
			for x := 0; x < k; x++ {
				p := id(x, y, z)
				if x+1 < k {
					q := id(x+1, y, z)
					ms = append(ms, core.Message{Src: p, Dst: q}, core.Message{Src: q, Dst: p})
				}
				if y+1 < k {
					q := id(x, y+1, z)
					ms = append(ms, core.Message{Src: p, Dst: q}, core.Message{Src: q, Dst: p})
				}
				if z+1 < k {
					q := id(x, y, z+1)
					ms = append(ms, core.Message{Src: p, Dst: q}, core.Message{Src: q, Dst: p})
				}
			}
		}
	}
	return ms
}
