package experiments

import (
	"fattree/internal/core"
	"fattree/internal/metrics"
	"fattree/internal/sched"
	"fattree/internal/workload"
)

// E23Portability reproduces two Section VII engineering claims. First,
// portability: "algorithms are the same no matter how big the fat-tree is;
// code is portable in that it can be moved between an inexpensive computer
// and a more expensive one" — a job scheduled into a subtree of a larger
// universal fat-tree never runs slower than on a standalone machine of the
// job's size, because the universal profile gives the subtree at least the
// standalone capacities at every corresponding level. Second, isolation: two
// jobs placed in sibling subtrees share no channels, so the combined
// schedule costs exactly the slower of the two.
func E23Portability(o Options) []*metrics.Table {
	jobN := 64
	if o.Quick {
		jobN = 32
	}

	porta := metrics.NewTable(
		"Portability: a "+itoa(jobN)+"-processor job standalone vs inside larger machines",
		"workload", "standalone d", "inside 4x machine", "inside 16x machine")
	jobs := []struct {
		name string
		ms   core.MessageSet
	}{
		{"permutation", workload.RandomPermutation(jobN, o.Seed)},
		{"bit-reversal", workload.BitReversal(jobN)},
		{"random 4n", workload.Random(jobN, 4*jobN, o.Seed+1)},
	}
	for _, job := range jobs {
		standalone := core.NewUniversal(jobN, jobN/4)
		d0 := sched.Compact(sched.OffLine(standalone, job.ms)).Length()
		row := []interface{}{job.name, d0}
		for _, factor := range []int{4, 16} {
			bigN := jobN * factor
			big := core.NewUniversal(bigN, bigN/4)
			// Place the job in the leftmost subtree of the big machine:
			// processor p of the job becomes processor p of the machine.
			s := sched.Compact(sched.OffLine(big, job.ms))
			if err := s.Verify(job.ms); err != nil {
				panic(err)
			}
			row = append(row, s.Length())
		}
		porta.AddRow(row...)
	}

	iso := metrics.NewTable(
		"Isolation: two jobs in sibling subtrees of a "+itoa(2*jobN)+"-processor machine",
		"job A", "job B", "d(A alone)", "d(B alone)", "d(A+B)", "max(dA,dB)")
	machine := core.NewUniversal(2*jobN, jobN/2)
	offset := func(ms core.MessageSet, off int) core.MessageSet {
		out := make(core.MessageSet, len(ms))
		for i, m := range ms {
			out[i] = core.Message{Src: m.Src + off, Dst: m.Dst + off}
		}
		return out
	}
	for _, pair := range [][2]int{{0, 1}, {1, 2}, {0, 2}} {
		a := jobs[pair[0]]
		b := jobs[pair[1]]
		msA := a.ms // left subtree: processors [0, jobN)
		msB := offset(b.ms, jobN)
		dA := sched.OffLine(machine, msA).Length()
		dB := sched.OffLine(machine, msB).Length()
		both := sched.OffLine(machine, core.Concat(msA, msB))
		if err := both.Verify(core.Concat(msA, msB)); err != nil {
			panic(err)
		}
		max := dA
		if dB > max {
			max = dB
		}
		iso.AddRow(a.name, b.name, dA, dB, both.Length(), max)
	}
	return []*metrics.Table{porta, iso}
}
