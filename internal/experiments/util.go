package experiments

import (
	"fmt"
	"math/rand"
)

// itoa formats an int (kept local to avoid strconv imports scattered through
// the experiment files).
func itoa(n int) string { return fmt.Sprintf("%d", n) }

// intCeil returns ceil(a/b).
func intCeil(a, b int) int { return (a + b - 1) / b }

// fmtRatio renders a growth ratio like "2.00x".
func fmtRatio(r float64) string { return fmt.Sprintf("%.2fx", r) }

// newRng builds a seeded generator.
func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
