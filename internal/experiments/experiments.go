// Package experiments regenerates every quantitative result of the paper —
// each theorem, lemma, corollary and figure of the evaluation — as a table of
// "paper bound vs measured" rows. The experiment index and its mapping to
// implementation modules live in DESIGN.md; EXPERIMENTS.md records a full
// run. The same runners back the cmd/ftbench tool and the root-level Go
// benchmarks.
package experiments

import (
	"fmt"
	"io"

	"fattree/internal/metrics"
)

// Options tunes an experiment run.
type Options struct {
	// Quick shrinks problem sizes for use inside testing.B loops and CI.
	Quick bool
	// Seed feeds every randomized component, making runs reproducible.
	Seed int64
}

// Experiment is one reproducible experiment.
type Experiment struct {
	// ID is the experiment identifier from DESIGN.md ("E1".."E12", "A1"...).
	ID string
	// Title describes the claim under test.
	Title string
	// Source cites the paper artifact being reproduced.
	Source string
	// Run executes the experiment and returns its result tables.
	Run func(o Options) []*metrics.Table
}

// All returns every experiment in index order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Fat-tree structure and universal capacity profile", "Fig. 1, §II, §IV", E1Topology},
		{"E2", "Partial concentrator switches", "Fig. 3, §IV", E2Concentrator},
		{"E3", "Off-line scheduling, d = O(λ·lg n)", "Theorem 1", E3OfflineSchedule},
		{"E4", "Big channels, d <= 2(α/(α-1))·λ", "Corollary 2", E4BigChannels},
		{"E5", "Hardware cost of universal fat-trees", "Lemma 3, Theorem 4", E5Hardware},
		{"E6", "Cut-plane decomposition trees", "Theorem 5", E6Decomposition},
		{"E7", "Balanced decomposition trees", "Lemmas 6-7, Theorem 8, Cor. 9", E7Balanced},
		{"E8", "Universality: equal-volume simulation", "Theorem 10", E8Universality},
		{"E9", "Non-universal networks suffer polynomial slowdown", "§VI", E9NonUniversal},
		{"E10", "Locality: planar finite-element traffic", "§I, §VII", E10Locality},
		{"E11", "Permutation routing on full-bandwidth fat-trees", "§VI", E11Permutation},
		{"E12", "Bit-serial delivery cycle takes O(lg n) ticks", "Fig. 2, §II", E12BitSerial},
		{"E13", "Randomized on-line routing, O(λ + lg n·lg lg n)", "§VI, reference [8]", E13Online},
		{"E14", "Universality on cube-connected cycles", "§VII (Galil–Paul)", E14CCC},
		{"E15", "Geometric layout and fat-tree self-simulation", "Theorem 4 construction, §VI", E15Layout},
		{"E16", "Application traces across hardware scales", "§VII engineering thesis", E16Applications},
		{"E17", "Fault tolerance: graceful degradation", "§VII engineering concerns", E17Faults},
		{"E18", "3-D mesh and torus: the volume-exploiting competitors", "§IV-VI, 3-D model", E18Mesh3D},
		{"E19", "Delivery disciplines: schedules, retry, backpressure", "§VII design alternatives", E19Buffered},
		{"E20", "On-line universality, O(lg³ n·lg lg n) degradation", "§VI closing claim", E20OnlineUniversality},
		{"E21", "External I/O through the root interface", "§II, §VII", E21ExternalIO},
		{"E22", "The datacenter descendant: k-ary folded Clos", "legacy of the paper", E22Clos},
		{"E23", "Portability and sibling-subtree isolation", "§VII engineering claims", E23Portability},
		{"E24", "Area-universal (2-D Thompson model) fat-trees", "§IV model lineage", E24AreaUniversal},
		{"E25", "Sustained throughput and the saturation knee", "operational view of §II scaling", E25Saturation},
		{"A1", "Ablation: universal vs pure-doubling capacity profile", "DESIGN.md §4.2", A1Profile},
		{"A2", "Ablation: ideal vs partial concentrators", "DESIGN.md §4.4", A2Switches},
	}
}

// ByID finds an experiment by identifier.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAndPrint runs the experiment and writes its tables to w. A write error
// means the rendered run is incomplete, so it aborts the printout: a
// truncated "paper bound vs measured" table must never pass for a full one.
func (e Experiment) RunAndPrint(w io.Writer, o Options) error {
	if _, err := fmt.Fprintf(w, "== %s: %s (%s) ==\n\n", e.ID, e.Title, e.Source); err != nil {
		return err
	}
	for _, t := range e.Run(o) {
		if _, err := t.WriteTo(w); err != nil {
			return fmt.Errorf("rendering %s table: %w", e.ID, err)
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// pick returns q when quick, else full.
func pick(o Options, q, full []int) []int {
	if o.Quick {
		return q
	}
	return full
}
