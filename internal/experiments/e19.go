package experiments

import (
	"fattree/internal/concentrator"
	"fattree/internal/core"
	"fattree/internal/metrics"
	"fattree/internal/sched"
	"fattree/internal/sim"
	"fattree/internal/workload"
)

// E19Buffered compares the paper's three delivery disciplines plus the
// modern alternative Section VII gestures at ("fat-tree architectures can be
// built with different design decisions"): off-line Theorem 1 schedules,
// compacted schedules, randomized drop-retry, and buffered backpressure
// switches. Tick accounting: a scheduled/retry delivery cycle costs the
// 2·lg n + 2 bit-serial pipeline; a buffered hop costs one tick once the
// pipe fills.
func E19Buffered(o Options) []*metrics.Table {
	n := 256
	if o.Quick {
		n = 64
	}
	ft := core.NewUniversal(n, n/4)
	tab := metrics.NewTable(
		"Delivery disciplines (n = "+itoa(n)+", universal w = n/4; times in ticks)",
		"workload", "λ", "offline", "compacted", "util off", "util comp", "drop-retry", "buffered(d=4)")
	for _, wl := range []struct {
		name string
		ms   core.MessageSet
	}{
		{"permutation", workload.RandomPermutation(n, o.Seed)},
		{"random 4n", workload.Random(n, 4*n, o.Seed+1)},
		{"bit-reversal", workload.BitReversal(n)},
		{"2-local", workload.KLocal(n, 4*n, 2, o.Seed+2)},
	} {
		lam := core.LoadFactor(ft, wl.ms)
		cycleTicks := sim.MaxCycleTicks(ft, 0)
		off := sched.OffLine(ft, wl.ms)
		comp := sched.Compact(off)
		engine := sim.New(ft, concentrator.KindIdeal, o.Seed)
		retry := sim.RunOnlineRandom(engine, wl.ms, o.Seed+3)
		buf := sim.RunBuffered(ft, wl.ms, 4)
		tab.AddRow(wl.name, lam,
			off.Length()*cycleTicks, comp.Length()*cycleTicks,
			off.Utilization(), comp.Utilization(),
			retry.Cycles*cycleTicks, buf.Hops)
	}

	depth := metrics.NewTable(
		"Buffer-depth sweep (bit-reversal): backpressure vs queue capacity",
		"queue depth", "hops", "max queue", "mean latency", "stalls")
	ms := workload.BitReversal(n)
	for _, d := range []int{1, 2, 4, 16, 64} {
		buf := sim.RunBuffered(ft, ms, d)
		depth.AddRow(d, buf.Hops, buf.MaxQueue, buf.MeanLatency, buf.Stalls)
	}
	return []*metrics.Table{tab, depth}
}
