package experiments

import (
	"fattree/internal/baseline"
	"fattree/internal/concentrator"
	"fattree/internal/core"
	"fattree/internal/metrics"
	"fattree/internal/sched"
	"fattree/internal/sim"
	"fattree/internal/universal"
	"fattree/internal/workload"
)

// E13Online reproduces the on-line routing extension announced in Section VI
// (Greenberg–Leiserson, reference [8]): a randomized on-line protocol
// delivers every message set in O(λ(M) + lg n·lg lg n) delivery cycles with
// high probability. Contention is resolved by fresh random priorities each
// cycle; the table compares measured cycles against λ, the envelope, and the
// off-line Theorem 1 schedule.
func E13Online(o Options) []*metrics.Table {
	sizes := pick(o, []int{64}, []int{64, 256, 1024})
	tab := metrics.NewTable(
		"Randomized on-line routing vs the λ + lg n·lg lg n envelope (ideal switches)",
		"n", "workload", "λ", "online cycles", "envelope (c=4)", "offline d", "drops")
	for _, n := range sizes {
		ft := core.NewUniversal(n, n/4)
		e := sim.New(ft, concentrator.KindIdeal, o.Seed)
		for _, wl := range []struct {
			name string
			ms   core.MessageSet
		}{
			{"permutation", workload.RandomPermutation(n, o.Seed)},
			{"random 4n", workload.Random(n, 4*n, o.Seed+1)},
			{"bit-reversal", workload.BitReversal(n)},
			{"hot-spot n/4", workload.HotSpot(n, n/4, o.Seed+2)},
		} {
			lam := core.LoadFactor(ft, wl.ms)
			online := sim.RunOnlineRandom(e, wl.ms, o.Seed+3)
			if online.Delivered != len(wl.ms) {
				panic("E13: online delivery incomplete")
			}
			offline := sched.OffLine(ft, wl.ms)
			tab.AddRow(n, wl.name, lam, online.Cycles,
				sim.OnlineBound(ft, lam, 4), offline.Length(), online.Drops)
		}
	}
	// The "with high probability" part: the distribution of cycle counts
	// over independent runs must concentrate — the max over many seeds stays
	// a small constant above the median.
	n := 256
	if o.Quick {
		n = 64
	}
	runs := 50
	if o.Quick {
		runs = 10
	}
	dist := metrics.NewTable(
		"Concentration over "+itoa(runs)+" independent runs (n = "+itoa(n)+")",
		"workload", "λ", "min", "median", "p90", "max", "max/median")
	ft := core.NewUniversal(n, n/4)
	e := sim.New(ft, concentrator.KindIdeal, o.Seed)
	for _, wl := range []struct {
		name string
		ms   core.MessageSet
	}{
		{"permutation", workload.RandomPermutation(n, o.Seed)},
		{"random 4n", workload.Random(n, 4*n, o.Seed+1)},
	} {
		var cycles []float64
		for r := 0; r < runs; r++ {
			stats := sim.RunOnlineRandom(e, wl.ms, o.Seed+int64(100+r))
			if stats.Delivered != len(wl.ms) {
				panic("E13: run incomplete")
			}
			cycles = append(cycles, float64(stats.Cycles))
		}
		sum := metrics.Summarize(cycles)
		lam := core.LoadFactor(ft, wl.ms)
		dist.AddRow(wl.name, lam, sum.Min, sum.Median, sum.P90, sum.Max, sum.Max/sum.Median)
	}
	return []*metrics.Table{tab, dist}
}

// E14CCC extends E8 with the cube-connected-cycles network the related-work
// section discusses (Galil–Paul's general-purpose machine): a constant-degree
// network that the equal-volume fat-tree simulates inside the same polylog
// envelope.
func E14CCC(o Options) []*metrics.Table {
	n := 64 // d=4: 4·2^4 processors
	tab := metrics.NewTable(
		"Theorem 10 on cube-connected cycles (n = 64 = 4·2^4)",
		"workload", "t (ccc)", "λ (ft)", "d (ft)", "slowdown", "lg³n", "norm")
	net := baseline.NewCCC(n)
	for _, wl := range []struct {
		name string
		ms   core.MessageSet
	}{
		{"bit-reversal", workload.BitReversal(n)},
		{"permutation", workload.RandomPermutation(n, o.Seed)},
		{"8-local", workload.KLocal(n, 2*n, 8, o.Seed+1)},
	} {
		r := universal.Simulate(net, wl.ms, 1)
		tab.AddRow(wl.name, r.NetworkCycles, r.LoadFactor, r.FatTreeCycles,
			r.Slowdown, r.PolylogBound, r.Slowdown/r.PolylogBound)
	}
	return []*metrics.Table{tab}
}
