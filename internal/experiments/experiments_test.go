package experiments

import (
	"io"
	"strings"
	"testing"
)

func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(Options{Quick: true, Seed: 1})
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for i, tab := range tables {
				if tab.Rows() == 0 {
					t.Errorf("%s table %d has no rows", e.ID, i)
				}
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E8"); !ok {
		t.Errorf("E8 not found")
	}
	if _, ok := ByID("E99"); ok {
		t.Errorf("E99 should not exist")
	}
}

func TestRunAndPrint(t *testing.T) {
	e, _ := ByID("E12")
	var b strings.Builder
	if err := e.RunAndPrint(&b, Options{Quick: true, Seed: 1}); err != nil {
		t.Fatalf("RunAndPrint: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, "E12") || !strings.Contains(out, "payload") {
		t.Errorf("missing content:\n%s", out)
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	// Same seed, same tables.
	for _, id := range []string{"E3", "E8", "A1"} {
		e, _ := ByID(id)
		a := render(e, 7)
		b := render(e, 7)
		if a != b {
			t.Errorf("%s not deterministic for fixed seed", id)
		}
	}
}

func render(e Experiment, seed int64) string {
	var b strings.Builder
	if err := e.RunAndPrint(&b, Options{Quick: true, Seed: seed}); err != nil {
		panic(err)
	}
	return b.String()
}

func BenchmarkQuickSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, e := range All() {
			if err := e.RunAndPrint(io.Discard, Options{Quick: true, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	}
}
