package experiments

import (
	"math"

	"fattree/internal/core"
	"fattree/internal/decomp"
	"fattree/internal/metrics"
	"fattree/internal/sched"
	"fattree/internal/sim"
	"fattree/internal/vlsi"
	"fattree/internal/workload"
)

// E24AreaUniversal explores the two-dimensional regime of the paper's model
// (it extends "Thompson's two-dimensional VLSI model" to 3-D; the 2-D analog
// is Leiserson's area-universal fat-tree family): capacities grow at 2^(1/2)
// per level near the root instead of 4^(1/3), areas follow (w·lg(n/w))², 2-D
// cut-line decomposition trees have ratio sqrt(2), and an equal-area
// area-universal fat-tree simulates the planar mesh within a polylog
// envelope.
func E24AreaUniversal(o Options) []*metrics.Table {
	n := 1024
	if o.Quick {
		n = 64
	}
	w := 1
	for w*w < n {
		w++ // w = ceil(sqrt n)
	}

	profile := metrics.NewTable(
		"Area-universal capacity profile (n = "+itoa(n)+", w = sqrt n) vs volume-universal",
		"level", "2-D cap", "growth", "3-D cap (same w)")
	prev := 0
	for k := 0; k <= core.Lg(n); k++ {
		c2 := core.Universal2DCapacity(n, w, k)
		c3 := core.UniversalCapacity(n, w, k)
		growth := ""
		if prev > 0 {
			growth = fmtRatio(float64(prev) / float64(c2))
		}
		profile.AddRow(k, c2, growth, c3)
		prev = c2
	}

	area := metrics.NewTable(
		"Area cost and round-trip",
		"n", "w", "area (w·lg)²", "w from area", "mesh area")
	for _, nn := range pick(o, []int{64, 256}, []int{64, 256, 1024, 4096}) {
		ww := 1
		for ww*ww < nn {
			ww++
		}
		a := vlsi.UniversalArea(nn, ww)
		area.AddRow(nn, ww, a, vlsi.RootCapacityForArea(nn, a), vlsi.MeshArea(nn))
	}

	// 2-D decomposition: ratio sqrt(2).
	dec := metrics.NewTable(
		"2-D cut-line decomposition (Theorem 5, planar analog)",
		"layout", "procs", "W0 (perimeter)", "ratio a", "sqrt(2)")
	l := decomp.GridLayout2D(n, float64(4*n))
	dtree := decomp.CutLines(l, 1)
	if err := dtree.Validate(); err != nil {
		panic(err)
	}
	dec.AddRow("grid square", n, dtree.W[0], dtree.Ratio(), math.Sqrt2)

	// Mini-universality in the plane: planar mesh traffic on an equal-area
	// area-universal fat-tree.
	uni := metrics.NewTable(
		"Equal-area simulation of the planar mesh (area = Θ(n))",
		"workload", "λ", "d", "ft ticks", "lg³n")
	ft := vlsi.NewUniversal2DOfArea(n, vlsi.MeshArea(n))
	bt := decomp.Balance(dtree)
	if err := bt.Validate(); err != nil {
		panic(err)
	}
	order := bt.LeafOrder(dtree)
	slot := make([]int, n)
	for s, p := range order {
		slot[p] = s
	}
	lg := math.Log2(float64(n))
	for _, wl := range []struct {
		name string
		ms   core.MessageSet
	}{
		{"transpose", workload.Transpose(n)},
		{"permutation", workload.RandomPermutation(n, o.Seed)},
		{"8-local", workload.KLocal(n, 2*n, 8, o.Seed+1)},
	} {
		remapped := make(core.MessageSet, len(wl.ms))
		for i, m := range wl.ms {
			remapped[i] = core.Message{Src: slot[m.Src], Dst: slot[m.Dst]}
		}
		s := sched.Compact(sched.OffLine(ft, remapped))
		if err := s.Verify(remapped); err != nil {
			panic(err)
		}
		uni.AddRow(wl.name, s.LoadFactor, s.Length(),
			s.Length()*sim.MaxCycleTicks(ft, 0), lg*lg*lg)
	}
	return []*metrics.Table{profile, area, dec, uni}
}
