package experiments

import (
	"fattree/internal/concentrator"
	"fattree/internal/core"
	"fattree/internal/metrics"
	"fattree/internal/sched"
	"fattree/internal/sim"
	"fattree/internal/workload"
)

// A1Profile ablates the Section IV capacity profile: the pure-doubling
// profile (root capacity n) ignores the 3-D volume constraint; the universal
// profile gives up a little scheduling performance near the root in exchange
// for physically realizable wiring. The table reports wires (hardware) and
// delivery cycles (performance) side by side.
func A1Profile(o Options) []*metrics.Table {
	sizes := pick(o, []int{64}, []int{64, 256, 1024})
	tab := metrics.NewTable(
		"Ablation: universal profile (w = n^(2/3)) vs pure doubling",
		"n", "workload", "wires univ", "wires dbl", "d univ", "d dbl")
	for _, n := range sizes {
		w := 1
		for w*w*w < n*n { // w = ceil(n^(2/3))
			w++
		}
		univ := core.NewUniversal(n, w)
		dbl := core.NewDoubling(n)
		for _, wl := range []struct {
			name string
			ms   core.MessageSet
		}{
			{"bit-reversal", workload.BitReversal(n)},
			{"random 2n", workload.Random(n, 2*n, o.Seed)},
			{"8-local", workload.KLocal(n, 2*n, 8, o.Seed+1)},
		} {
			su := sched.OffLine(univ, wl.ms)
			sd := sched.OffLine(dbl, wl.ms)
			tab.AddRow(n, wl.name, univ.TotalWires(), dbl.TotalWires(), su.Length(), sd.Length())
		}
	}
	return []*metrics.Table{tab}
}

// A2Switches ablates the concentrator implementation: ideal concentrators
// (Section III's assumption) versus Pippenger-style partial concentrators
// (Section IV's construction). Playing the same Theorem 1 schedule, ideal
// switches lose nothing; partial switches drop a small fraction and need a
// few extra cycles to drain, matching the paper's remark that treating
// capacity as α times the wire count absorbs the difference.
func A2Switches(o Options) []*metrics.Table {
	n := 64
	if o.Quick {
		n = 32
	}
	tab := metrics.NewTable(
		"Ablation: ideal vs partial concentrators playing the same off-line schedule",
		"workload", "sched cycles", "ideal cycles", "ideal drops", "partial cycles", "partial drops")
	ft := core.NewUniversal(n, n/2)
	for _, wl := range []struct {
		name string
		ms   core.MessageSet
	}{
		{"permutation", workload.RandomPermutation(n, o.Seed)},
		{"random 3n", workload.Random(n, 3*n, o.Seed+1)},
	} {
		s := sched.OffLine(ft, wl.ms)
		ideal := sim.RunSchedule(sim.New(ft, concentrator.KindIdeal, o.Seed), s)
		partial := sim.RunSchedule(sim.New(ft, concentrator.KindPartial, o.Seed), s)
		tab.AddRow(wl.name, s.Length(), ideal.Cycles, ideal.Drops, partial.Cycles, partial.Drops)
	}
	return []*metrics.Table{tab}
}
