package experiments

import (
	"math"

	"fattree/internal/baseline"
	"fattree/internal/decomp"
	"fattree/internal/metrics"
	"fattree/internal/vlsi"
)

// E5Hardware reproduces Lemma 3 and Theorem 4: component counts
// Θ(n·lg(w³/n²)), volumes Θ((w·lg(n/w))^(3/2)), node boxes of volume
// O(m^(3/2)), and the headline comparison — a fat-tree scaled for planar
// traffic costs a vanishing fraction of a hypercube.
func E5Hardware(o Options) []*metrics.Table {
	sizes := pick(o, []int{1 << 8, 1 << 10}, []int{1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16})
	comp := metrics.NewTable(
		"Theorem 4 components: measured vs Θ(n·lg(w³/n²))",
		"n", "w", "components", "bound", "ratio")
	vol := metrics.NewTable(
		"Theorem 4 volume vs competing networks",
		"n", "w", "fat-tree vol", "hypercube vol", "mesh vol", "ft/cube")
	for _, n := range sizes {
		for _, frac := range []float64{2.0 / 3.0, 0.8, 1.0} {
			w := int(math.Pow(float64(n), frac))
			c := float64(vlsi.UniversalComponents(n, w))
			b := vlsi.ComponentsBound(n, w)
			comp.AddRow(n, w, c, b, c/b)
			v := vlsi.UniversalVolume(n, w)
			vol.AddRow(n, w, v, vlsi.HypercubeVolume(n), vlsi.MeshVolume(n),
				v/vlsi.HypercubeVolume(n))
		}
	}

	boxes := metrics.NewTable(
		"Lemma 3 node boxes: volume Θ(m^(3/2)) across aspect parameters",
		"m wires", "h", "box", "volume", "m^1.5")
	for _, m := range []int{16, 64, 256} {
		for _, h := range []float64{1, 2} {
			if h > math.Sqrt(float64(m)) {
				continue
			}
			b := vlsi.NodeBox(m, h)
			boxes.AddRow(m, h, b.String(), b.Volume(), math.Pow(float64(m), 1.5))
		}
	}
	return []*metrics.Table{comp, vol, boxes}
}

// E6Decomposition reproduces Theorem 5: every network occupying a cube of
// volume v has an (O(v^(2/3)), 4^(1/3)) decomposition tree, produced by
// cutting planes. Bandwidths are measured from box geometry, not assumed.
func E6Decomposition(o Options) []*metrics.Table {
	n := 256
	if o.Quick {
		n = 64
	}
	tab := metrics.NewTable(
		"Theorem 5: cut-plane decomposition trees (γ = 1)",
		"network", "procs", "volume", "W0 measured", "6·v^(2/3)", "ratio a", "4^(1/3)")
	for _, net := range []baseline.Network{
		baseline.NewHypercube(n),
		baseline.NewMesh(n),
		baseline.NewBinaryTree(n),
		baseline.NewButterfly(n),
	} {
		tree := decomp.CutPlanes(net.Layout(), 1)
		if err := tree.Validate(); err != nil {
			panic(err)
		}
		tab.AddRow(net.Name(), net.Procs(), net.Volume(), tree.W[0],
			6*math.Pow(net.Volume(), 2.0/3.0), tree.Ratio(), math.Pow(4, 1.0/3.0))
	}
	return []*metrics.Table{tab}
}

// E7Balanced reproduces Lemmas 6-7 and Theorem 8 / Corollary 9: balancing a
// decomposition tree splits processors within one at every level while
// inflating per-level bandwidth by at most ~4a/(a-1).
func E7Balanced(o Options) []*metrics.Table {
	depth := 9
	if o.Quick {
		depth = 7
	}
	tab := metrics.NewTable(
		"Theorem 8: balanced decomposition trees (bandwidth blowup vs Corollary 9 factor)",
		"tree", "a", "height", "lg n", "max blowup w'_j/w_j", "4a/(a-1)·a")
	for _, a := range []float64{2, math.Pow(4, 1.0/3.0)} {
		w := math.Pow(a, float64(depth))
		tr := decomp.NewRegular(depth, w, a)
		bt := decomp.Balance(tr)
		if err := bt.Validate(); err != nil {
			panic(err)
		}
		blowup := maxBlowup(bt, tr, a, w)
		tab.AddRow("regular", a, bt.Height(), depth, blowup, 4*a/(a-1)*a)
	}

	// End-to-end: balanced tree of a real cut-plane decomposition.
	n := 128
	if o.Quick {
		n = 64
	}
	net := baseline.NewHypercube(n)
	tr := decomp.CutPlanes(net.Layout(), 1)
	bt := decomp.Balance(tr)
	if err := bt.Validate(); err != nil {
		panic(err)
	}
	a := tr.Ratio()
	tab.AddRow("hypercube layout", a, bt.Height(), logCeil(n), maxBlowup(bt, tr, a, tr.W[0]), 4*a/(a-1)*a)
	return []*metrics.Table{tab}
}

// maxBlowup computes max over balanced levels j of (max bandwidth at level j)
// divided by the original tree's w_j = w/a^j (clamped to the deepest level).
func maxBlowup(bt *decomp.BNode, tr *decomp.Tree, a, w float64) float64 {
	max := 0.0
	for j, bw := range bt.MaxBandwidthAtLevel() {
		exp := float64(j)
		if j > tr.Depth {
			exp = float64(tr.Depth)
		}
		wj := w / math.Pow(a, exp)
		if r := bw / wj; r > max {
			max = r
		}
	}
	return max
}

// logCeil returns ceil(log2 n).
func logCeil(n int) int {
	l := 0
	for 1<<uint(l) < n {
		l++
	}
	return l
}
