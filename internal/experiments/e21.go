package experiments

import (
	"fattree/internal/concentrator"
	"fattree/internal/core"
	"fattree/internal/metrics"
	"fattree/internal/sched"
	"fattree/internal/sim"
	"fattree/internal/workload"
)

// E21ExternalIO exercises the root interface of Section II ("the channel
// leaving the root of the tree corresponds to an interface with the external
// world") and Section VII's remark that it "offers a natural high-bandwidth
// external connection": I/O throughput scales linearly with the root
// capacity w — the same knob that buys internal bisection bandwidth — and
// I/O coexists with internal traffic because inputs use only down channels
// and outputs only up channels.
func E21ExternalIO(o Options) []*metrics.Table {
	n := 256
	if o.Quick {
		n = 64
	}
	k := 2 * n // total I/O messages, half reads half writes

	scale := metrics.NewTable(
		"I/O bandwidth scales with root capacity (n = "+itoa(n)+", "+itoa(k)+" I/O messages)",
		"w", "λ", "d offline", "root bound k/2w", "hardware cycles", "drops")
	for _, w := range []int{4, 8, 16, 32, 64} {
		ft := core.NewUniversal(n, w)
		ms := workload.ExternalIO(n, k/2, k/2, o.Seed)
		s := sched.OffLine(ft, ms)
		if err := s.Verify(ms); err != nil {
			panic(err)
		}
		e := sim.New(ft, concentrator.KindIdeal, o.Seed)
		stats := sim.RunSchedule(e, s)
		scale.AddRow(w, s.LoadFactor, s.Length(), k/(2*w), stats.Cycles, stats.Drops)
	}

	mix := metrics.NewTable(
		"I/O coexisting with internal traffic (w = 16)",
		"workload", "λ", "d offline", "d compacted")
	ft := core.NewUniversal(n, 16)
	ioOnly := workload.ExternalIO(n, n/2, n/2, o.Seed)
	internal := workload.RandomPermutation(n, o.Seed+1)
	both := core.Concat(ioOnly, internal)
	for _, wl := range []struct {
		name string
		ms   core.MessageSet
	}{
		{"I/O only", ioOnly},
		{"internal only", internal},
		{"I/O + internal", both},
	} {
		s := sched.OffLine(ft, wl.ms)
		if err := s.Verify(wl.ms); err != nil {
			panic(err)
		}
		mix.AddRow(wl.name, s.LoadFactor, s.Length(), sched.Compact(s).Length())
	}
	return []*metrics.Table{scale, mix}
}
