package experiments

import (
	"math"

	"fattree/internal/baseline"
	"fattree/internal/core"
	"fattree/internal/metrics"
	"fattree/internal/sched"
	"fattree/internal/sim"
	"fattree/internal/universal"
	"fattree/internal/vlsi"
	"fattree/internal/workload"
)

// E8Universality reproduces Theorem 10: an equal-volume universal fat-tree
// delivers (off-line) any message set a competing network delivers in time t,
// within the O(t·lg³ n) envelope. The normalized slowdown column is the shape
// claim: it must stay bounded as n grows.
func E8Universality(o Options) []*metrics.Table {
	n := 64
	if o.Quick {
		n = 32
	}
	nets := []baseline.Network{
		baseline.NewHypercube(n),
		baseline.NewButterfly(n),
		baseline.NewShuffleExchange(n),
	}
	if sq := int(math.Sqrt(float64(n))); sq*sq == n {
		nets = append(nets, baseline.NewMesh(n))
	}
	byNet := metrics.NewTable(
		"Theorem 10 across networks (n = "+itoa(n)+"): slowdown vs lg³ n",
		"network", "workload", "t (net)", "λ (ft)", "d (ft)", "ft ticks", "slowdown", "lg³n", "norm")
	for _, net := range nets {
		for _, wl := range []struct {
			name string
			ms   core.MessageSet
		}{
			{"bit-reversal", workload.BitReversal(n)},
			{"permutation", workload.RandomPermutation(n, o.Seed)},
		} {
			r := universal.Simulate(net, wl.ms, 1)
			byNet.AddRow(net.Name(), wl.name, r.NetworkCycles, r.LoadFactor,
				r.FatTreeCycles, r.FatTreeTicks, r.Slowdown, r.PolylogBound,
				r.Slowdown/r.PolylogBound)
		}
	}

	sweep := metrics.NewTable(
		"Theorem 10 scaling (hypercube, random permutation): normalized slowdown stays bounded",
		"n", "t (net)", "d (ft)", "slowdown", "lg³n", "norm")
	sizes := pick(o, []int{16, 32, 64}, []int{16, 32, 64, 128, 256})
	for _, nn := range sizes {
		r := universal.Simulate(baseline.NewHypercube(nn), workload.RandomPermutation(nn, o.Seed), 1)
		sweep.AddRow(nn, r.NetworkCycles, r.FatTreeCycles, r.Slowdown, r.PolylogBound,
			r.Slowdown/r.PolylogBound)
	}
	return []*metrics.Table{byNet, sweep}
}

// E9NonUniversal reproduces the Section VI observation: two-dimensional
// arrays and simple trees are not universal — their slowdown on global
// traffic grows polynomially with n (tree ~ n, mesh ~ sqrt n), while the
// equal-volume universal fat-tree's delivery-cycle count grows only
// polylogarithmically. Both cycle counts (one hop per cycle on the baseline;
// one delivery cycle on the fat-tree) and the fat-tree's total clock ticks
// (delivery cycles × the O(lg n) bit-serial cycle) are reported: the
// cycle-ratio columns grow polynomially, while the normalized tick columns
// stay bounded — the separation the paper claims. The polylog constants mean
// the raw tick crossover sits beyond laptop sizes; the growth *rates* are the
// reproduced shape.
func E9NonUniversal(o Options) []*metrics.Table {
	sizes := pick(o, []int{16, 64}, []int{16, 64, 256, 1024})
	tab := metrics.NewTable(
		"Non-universality of mesh and tree on bit-reversal (fat-tree at mesh volume)",
		"n", "t tree", "t mesh", "d ft", "ft ticks", "tree/d", "mesh/d", "ftticks/lg³n")
	var ns, treeRatio, meshRatio, ftNorm []float64
	for _, n := range sizes {
		ms := workload.BitReversal(n)
		tTree := baseline.Deliver(baseline.NewBinaryTree(n), ms).Cycles
		tMesh := baseline.Deliver(baseline.NewMesh(n), ms).Cycles
		ft := vlsi.NewUniversalOfVolume(n, vlsi.MeshVolume(n))
		s := sched.OffLine(ft, ms)
		ftTicks := s.Length() * sim.MaxCycleTicks(ft, 0)
		lg := math.Log2(float64(n))
		tab.AddRow(n, tTree, tMesh, s.Length(), ftTicks,
			float64(tTree)/float64(s.Length()), float64(tMesh)/float64(s.Length()),
			float64(ftTicks)/(lg*lg*lg))
		ns = append(ns, float64(n))
		treeRatio = append(treeRatio, float64(tTree)/float64(s.Length()))
		meshRatio = append(meshRatio, float64(tMesh)/float64(s.Length()))
		ftNorm = append(ftNorm, float64(ftTicks)/(lg*lg*lg))
	}

	// Fitted growth of the slowdown ratios makes the separation explicit:
	// the tree's disadvantage grows polynomially in n, the mesh's stays
	// bounded, and the fat-tree's lg³n-normalized cost is essentially flat.
	fit := metrics.NewTable(
		"Fitted growth of the slowdown measures",
		"series", "best-fit model")
	fit.AddRow("tree steps / ft cycles", metrics.CompareGrowth(ns, treeRatio))
	fit.AddRow("mesh steps / ft cycles", metrics.CompareGrowth(ns, meshRatio))
	fit.AddRow("ft ticks / lg³n", metrics.CompareGrowth(ns, ftNorm))
	return []*metrics.Table{tab, fit}
}

// E10Locality reproduces the introduction's motivating observation: planar
// finite-element traffic has O(sqrt n) bisection, so a fat-tree scaled to
// O(n)-ish volume handles it with a small load factor while a hypercube's
// Θ(n^(3/2)) volume is mostly wasted. The shuffled embedding shows how much
// of the win is the locality of the row-major layout.
func E10Locality(o Options) []*metrics.Table {
	ks := pick(o, []int{8, 16}, []int{8, 16, 32})
	tab := metrics.NewTable(
		"Planar FEM exchange on a sqrt(n)-root fat-tree",
		"k (mesh k×k)", "msgs", "bisection", "λ", "d", "ft vol", "cube vol", "vol ratio")
	shuf := metrics.NewTable(
		"Embedding ablation: row-major vs shuffled mesh-point assignment",
		"k", "λ row-major", "d row-major", "λ shuffled", "d shuffled")
	for _, k := range ks {
		n := k * k
		w := 2 * k // Θ(sqrt n) root capacity matches the planar bisection
		ft := core.NewUniversal(n, w)
		good := workload.NewGridMesh(k, k)
		bad := workload.NewGridMeshShuffled(k, k, o.Seed)
		msGood := good.ExchangeStep()
		msBad := bad.ExchangeStep()
		sGood := sched.OffLine(ft, msGood)
		sBad := sched.OffLine(ft, msBad)
		tab.AddRow(k, len(msGood), good.BisectionWidth(n), sGood.LoadFactor, sGood.Length(),
			vlsi.UniversalVolume(n, w), vlsi.HypercubeVolume(n),
			vlsi.UniversalVolume(n, w)/vlsi.HypercubeVolume(n))
		shuf.AddRow(k, sGood.LoadFactor, sGood.Length(), sBad.LoadFactor, sBad.Length())
	}
	return []*metrics.Table{tab, shuf}
}

// E11Permutation reproduces the Section VI comparison with classical
// permutation networks: a high-volume universal fat-tree routes an arbitrary
// permutation off-line in O(lg n) time — best possible up to constants,
// matching Beneš networks. The O(lg n) figure needs the remark after
// Theorem 10: give each processor Θ(lg n) connections (channel capacities
// Ω(lg n) throughout, as a Boolean hypercube also requires) and apply
// Corollary 2, so the cycle count is Θ(λ) = O(1) and the time is dominated by
// the one O(lg n) bit-serial delivery cycle. The plain w = n tree with
// 1-wire leaf channels is shown for contrast: Theorem 1 gives it O(lg n)
// cycles, i.e. O(lg² n) ticks.
func E11Permutation(o Options) []*metrics.Table {
	sizes := pick(o, []int{64, 256}, []int{64, 256, 1024})
	tab := metrics.NewTable(
		"Permutation routing (vs Beneš depth 2 lg n - 1)",
		"n", "tree", "λ", "d cycles", "total ticks", "Beneš depth", "ticks/lg n")
	for _, n := range sizes {
		lgn := core.Lg(n)
		ms := workload.RandomPermutation(n, o.Seed)

		// The paper's permutation machine: universal profile with every
		// channel (including the processors' own) at least 2 lg n wires.
		fat := core.New(n, func(k int) int {
			c := core.UniversalCapacity(n, n, k) * 2 * lgn
			return c
		})
		sBig := sched.OffLineBig(fat, ms)
		if err := sBig.Verify(ms); err != nil {
			panic(err)
		}
		ticksBig := sim.ScheduleTicks(fat, sBig.Cycles, 0)
		tab.AddRow(n, "Ω(lg n) caps", sBig.LoadFactor, sBig.Length(), ticksBig,
			2*lgn-1, float64(ticksBig)/float64(lgn))

		// Contrast: the plain w = n universal tree under Theorem 1.
		plain := core.NewUniversal(n, n)
		sPlain := sched.OffLine(plain, ms)
		ticksPlain := sim.ScheduleTicks(plain, sPlain.Cycles, 0)
		tab.AddRow(n, "w=n, unit leaves", sPlain.LoadFactor, sPlain.Length(), ticksPlain,
			2*lgn-1, float64(ticksPlain)/float64(lgn))
	}
	return []*metrics.Table{tab}
}

// E12BitSerial reproduces the Fig. 2 timing claim: the duration of a delivery
// cycle grows by exactly two ticks per doubling of n (two more channels on
// the longest path) — O(lg n) switching time, the unavoidable factor in
// Theorem 10's slowdown.
func E12BitSerial(o Options) []*metrics.Table {
	tab := metrics.NewTable(
		"Delivery-cycle duration in clock ticks",
		"n", "payload 0", "payload 32", "payload 256")
	sizes := pick(o, []int{16, 64, 256}, []int{16, 64, 256, 1024, 4096})
	for _, n := range sizes {
		ft := core.NewConstant(n, 1)
		tab.AddRow(n, sim.MaxCycleTicks(ft, 0), sim.MaxCycleTicks(ft, 32), sim.MaxCycleTicks(ft, 256))
	}

	measured := metrics.NewTable(
		"Per-message latency by traffic locality (n = 256, payload 16): local messages finish early",
		"workload", "mean message ticks", "cycle ticks (max)", "max possible")
	ft := core.NewConstant(256, 4)
	for _, wl := range []struct {
		name string
		ms   core.MessageSet
	}{
		{"nearest-neighbour", workload.NearestNeighbor(256)},
		{"4-local", workload.KLocal(256, 400, 4, o.Seed)},
		{"bit-reversal", workload.BitReversal(256)},
	} {
		measured.AddRow(wl.name, sim.MeanMessageTicks(ft, wl.ms, 16),
			sim.CycleTicks(ft, wl.ms, 16), sim.MaxCycleTicks(ft, 16))
	}
	return []*metrics.Table{tab, measured}
}
