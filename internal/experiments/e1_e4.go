package experiments

import (
	"math"

	"fattree/internal/concentrator"
	"fattree/internal/core"
	"fattree/internal/metrics"
	"fattree/internal/sched"
	"fattree/internal/workload"
)

// E1Topology reproduces Fig. 1 and the Section IV capacity definition: the
// per-level capacities of universal fat-trees (doubling near the leaves,
// 4^(1/3) growth within 3·lg(n/w) of the root) next to the pure-doubling
// profile, plus aggregate wiring for a sweep of root capacities.
func E1Topology(o Options) []*metrics.Table {
	n := 1024
	if o.Quick {
		n = 64
	}
	w := int(math.Pow(float64(n), 2.0/3.0))
	profile := metrics.NewTable(
		"Per-level channel capacities (n = "+itoa(n)+")",
		"level", "universal w=n^(2/3)", "universal w=n/4", "doubling", "growth (univ n^(2/3))")
	prev := 0
	for k := 0; k <= core.Lg(n); k++ {
		c1 := core.UniversalCapacity(n, w, k)
		c2 := core.UniversalCapacity(n, n/4, k)
		c3 := intCeil(n, 1<<uint(k))
		growth := ""
		if prev > 0 {
			growth = fmtRatio(float64(prev) / float64(c1))
		}
		profile.AddRow(k, c1, c2, c3, growth)
		prev = c1
	}

	agg := metrics.NewTable(
		"Aggregate wiring across root capacities (n = "+itoa(n)+")",
		"w", "root cap", "total wires", "address bits <= 2 lg n")
	for _, frac := range []float64{2.0 / 3.0, 0.75, 0.9, 1.0} {
		wc := int(math.Pow(float64(n), frac))
		ft := core.NewUniversal(n, wc)
		agg.AddRow(wc, ft.RootCapacity(), ft.TotalWires(), 2*core.Lg(n))
	}
	return []*metrics.Table{profile, agg}
}

// E2Concentrator reproduces the Fig. 3 switch internals: Pippenger-style
// partial concentrators with bounded degrees, measured concentration constant
// α, linear component counts, and loss behaviour below and above the α·s
// threshold.
func E2Concentrator(o Options) []*metrics.Table {
	sizes := pick(o, []int{30, 90}, []int{30, 90, 270, 540})
	tab := metrics.NewTable(
		"Partial concentrators (s = 2r/3): paper promises α = 3/4, deg <= 6/9, O(r) components",
		"r", "s", "max in-deg", "max out-deg", "components/r", "measured α", "loss@k=s/2", "loss@k=s")
	trials := 60
	if o.Quick {
		trials = 20
	}
	for _, r := range sizes {
		s := 2 * r / 3
		c := concentrator.NewPartial(r, s, o.Seed+int64(r))
		alpha := c.MeasureAlpha(trials, o.Seed+1)
		lossHalf := lossRate(c, s/2, trials, o.Seed+2)
		lossFull := lossRate(c, s, trials, o.Seed+3)
		tab.AddRow(r, s, c.MaxInputDegree(), c.MaxOutputDegree(),
			float64(c.Components())/float64(r), alpha, lossHalf, lossFull)
	}

	cas := metrics.NewTable(
		"Cascades: constant depth for constant ratio",
		"r", "s", "stages", "components/r")
	for _, r := range sizes {
		for _, ratio := range []int{2, 4} {
			s := r / ratio
			if s < 1 {
				continue
			}
			c := concentrator.NewCascade(r, s, o.Seed)
			cas.AddRow(r, s, c.Depth(), float64(c.Components())/float64(r))
		}
	}
	return []*metrics.Table{tab, cas}
}

// lossRate samples random active sets of size k and returns the fraction of
// messages lost.
func lossRate(c *concentrator.Partial, k, trials int, seed int64) float64 {
	if k < 1 {
		return 0
	}
	rng := newRng(seed)
	lost, sent := 0, 0
	for t := 0; t < trials; t++ {
		active := rng.Perm(c.Inputs())[:k]
		_, l := c.Route(active)
		lost += l
		sent += k
	}
	return float64(lost) / float64(sent)
}

// E3OfflineSchedule reproduces Theorem 1: measured delivery cycles d against
// the lower bound λ(M) and the upper bound 2(ceil(λ)+1)·lg n, across tree
// shapes and workloads, with the greedy first-fit scheduler for contrast.
func E3OfflineSchedule(o Options) []*metrics.Table {
	sizes := pick(o, []int{64}, []int{64, 256, 1024})
	tab := metrics.NewTable(
		"Theorem 1: λ <= d <= 2(ceil(λ)+1)·lg n (capacity-1 tree ≡ worst case)",
		"n", "workload", "messages", "λ", "d offline", "bound", "d greedy", "d/λ")
	for _, n := range sizes {
		ft := core.NewUniversal(n, n/4)
		for _, wl := range []struct {
			name string
			ms   core.MessageSet
		}{
			{"permutation", workload.RandomPermutation(n, o.Seed)},
			{"random 4n", workload.Random(n, 4*n, o.Seed+1)},
			{"bit-reversal", workload.BitReversal(n)},
			{"hot-spot n/2", workload.HotSpot(n, n/2, o.Seed+2)},
		} {
			s := sched.OffLine(ft, wl.ms)
			if err := s.Verify(wl.ms); err != nil {
				panic(err)
			}
			g := sched.Greedy(ft, wl.ms)
			lam := s.LoadFactor
			bound := 2 * (math.Ceil(lam) + 1) * float64(ft.Levels())
			ratio := 0.0
			if lam > 0 {
				ratio = float64(s.Length()) / lam
			}
			tab.AddRow(n, wl.name, len(wl.ms), lam, s.Length(), bound, g.Length(), ratio)
		}
	}
	return []*metrics.Table{tab}
}

// E4BigChannels reproduces Corollary 2: with every capacity at least α·lg n,
// the scheduler uses at most 2(α/(α-1))·λ cycles — load-factor optimal to a
// constant, removing Theorem 1's lg n factor.
func E4BigChannels(o Options) []*metrics.Table {
	sizes := pick(o, []int{64}, []int{64, 256})
	tab := metrics.NewTable(
		"Corollary 2: d <= 2(α/(α-1))·λ when cap >= α·lg n",
		"n", "α", "cap", "λ", "λ'", "d big", "bound", "d thm1")
	for _, n := range sizes {
		lgn := core.Lg(n)
		for _, alpha := range []int{2, 4} {
			ft := core.NewConstant(n, alpha*lgn)
			ms := workload.Random(n, 8*n, o.Seed)
			s := sched.OffLineBig(ft, ms)
			if err := s.Verify(ms); err != nil {
				panic(err)
			}
			plain := sched.OffLine(ft, ms)
			lam := s.LoadFactor
			lamP := core.LoadFactorWithSlack(ft, ms, lgn)
			bound := 2 * float64(alpha) / float64(alpha-1) * lam
			if bound < 1 {
				bound = 1
			}
			tab.AddRow(n, alpha, alpha*lgn, lam, lamP, s.Length(), bound, plain.Length())
		}
	}
	return []*metrics.Table{tab}
}
