package experiments

import (
	"fattree/internal/concentrator"
	"fattree/internal/core"
	"fattree/internal/metrics"
	"fattree/internal/sim"
)

// E25Saturation measures sustained (open-loop) throughput: uniformly random
// messages arrive continuously and the on-line protocol drains them. Below
// the fabric's capacity the backlog stays flat and latency constant; past it
// the backlog grows linearly. The knee tracks the hardware budget — the
// operational meaning of "communication can be scaled independently from
// the number of processors".
func E25Saturation(o Options) []*metrics.Table {
	n := 256
	cycles := 150
	if o.Quick {
		n = 64
		cycles = 80
	}

	sweep := metrics.NewTable(
		"Offered load sweep (n = "+itoa(n)+", w = n/4): the saturation knee",
		"arrivals/cycle", "delivered/cycle", "mean latency", "backlog slope", "final backlog")
	ft := core.NewUniversal(n, n/4)
	for _, per := range []int{n / 16, n / 8, n / 4, n / 2} {
		e := sim.New(ft, concentrator.KindIdeal, o.Seed)
		stats := sim.RunOpenLoop(e, sim.UniformArrivals(ft, per, o.Seed+1), cycles, o.Seed+2)
		sweep.AddRow(per, float64(stats.Delivered)/float64(stats.Cycles),
			stats.MeanLatency, stats.BacklogSlope, stats.Backlog)
	}

	budget := metrics.NewTable(
		"Same offered load ("+itoa(n/4)+"/cycle) across hardware budgets",
		"w", "delivered/cycle", "mean latency", "backlog slope")
	for _, w := range []int{n / 32, n / 16, n / 8, n / 4, n} {
		if w < 1 {
			continue
		}
		tree := core.NewUniversal(n, w)
		e := sim.New(tree, concentrator.KindIdeal, o.Seed)
		stats := sim.RunOpenLoop(e, sim.UniformArrivals(tree, n/4, o.Seed+1), cycles, o.Seed+2)
		budget.AddRow(w, float64(stats.Delivered)/float64(stats.Cycles),
			stats.MeanLatency, stats.BacklogSlope)
	}
	return []*metrics.Table{sweep, budget}
}
