package experiments

import (
	"fattree/internal/baseline"
	"fattree/internal/core"
	"fattree/internal/metrics"
	"fattree/internal/universal"
	"fattree/internal/workload"
)

// E20OnlineUniversality reproduces the paper's closing claim of Section VI:
// "one can obtain an on-line analog to Theorem 10, except with an
// O(lg³ n·lg lg n) time degradation." The off-line Theorem 10 pipeline is
// rerun with the randomized on-line protocol replacing the precomputed
// schedule; no switch settings are compiled in advance.
func E20OnlineUniversality(o Options) []*metrics.Table {
	n := 64
	if o.Quick {
		n = 32
	}
	tab := metrics.NewTable(
		"On-line Theorem 10 (n = "+itoa(n)+"): randomized protocol, no compiled switch settings",
		"network", "workload", "t (net)", "d online", "d offline", "slowdown", "lg³n·lglgn", "norm")
	nets := []baseline.Network{
		baseline.NewHypercube(n),
		baseline.NewShuffleExchange(n),
	}
	if sq := isqrt(n); sq*sq == n {
		nets = append(nets, baseline.NewMesh(n))
	}
	for _, net := range nets {
		for _, wl := range []struct {
			name string
			ms   core.MessageSet
		}{
			{"bit-reversal", workload.BitReversal(n)},
			{"permutation", workload.RandomPermutation(n, o.Seed)},
		} {
			on := universal.SimulateOnline(net, wl.ms, 1, o.Seed)
			off := universal.Simulate(net, wl.ms, 1)
			tab.AddRow(net.Name(), wl.name, on.NetworkCycles, on.FatTreeCycles,
				off.FatTreeCycles, on.Slowdown, on.PolylogBound, on.Slowdown/on.PolylogBound)
		}
	}
	return []*metrics.Table{tab}
}

// isqrt returns floor(sqrt(n)).
func isqrt(n int) int {
	k := 0
	for (k+1)*(k+1) <= n {
		k++
	}
	return k
}
