package experiments

import (
	"math"

	"fattree/internal/baseline"
	"fattree/internal/core"
	"fattree/internal/metrics"
	"fattree/internal/universal"
	"fattree/internal/vlsi"
	"fattree/internal/workload"
)

// E15Layout realizes universal fat-trees geometrically with the recursive
// Leighton–Rosenberg-style placement and compares the achieved bounding
// volume with the Theorem 4 formula, then closes the loop of Section VI by
// simulating a fat-tree *on* a fat-tree through the full Theorem 10 pipeline
// (layout → decomposition → balancing → identification → scheduling).
func E15Layout(o Options) []*metrics.Table {
	sizes := pick(o, []int{64, 256}, []int{64, 256, 1024, 4096})
	geo := metrics.NewTable(
		"Geometric realization: achieved volume vs Theorem 4 formula",
		"n", "w", "formula vol", "achieved vol", "ratio", "aspect", "box-sum vol")
	for _, n := range sizes {
		for _, w := range []int{rootW(n), n} {
			ft := core.NewUniversal(n, w)
			tl := vlsi.LayoutFatTree(ft)
			if err := tl.Validate(); err != nil {
				panic(err)
			}
			formula := vlsi.UniversalVolume(n, w)
			geo.AddRow(n, w, formula, tl.Volume(), tl.Volume()/formula,
				tl.AspectRatio(), tl.BoxSum)
		}
	}

	n := 64
	if !o.Quick {
		n = 128
	}
	self := metrics.NewTable(
		"Self-simulation: a fat-tree as the simulated network R (Theorem 10)",
		"workload", "t (ft as R)", "λ", "d", "slowdown", "lg³n", "norm")
	inner := baseline.NewFatTreeNetwork(core.NewUniversal(n, n/4))
	for _, wl := range []struct {
		name string
		ms   core.MessageSet
	}{
		{"permutation", workload.RandomPermutation(n, o.Seed)},
		{"bit-reversal", workload.BitReversal(n)},
		{"4-local", workload.KLocal(n, 2*n, 4, o.Seed+1)},
	} {
		r := universal.Simulate(inner, wl.ms, 1)
		self.AddRow(wl.name, r.NetworkCycles, r.LoadFactor, r.FatTreeCycles,
			r.Slowdown, r.PolylogBound, r.Slowdown/r.PolylogBound)
	}
	return []*metrics.Table{geo, self}
}

// rootW returns ceil(n^(2/3)).
func rootW(n int) int {
	return int(math.Ceil(math.Pow(float64(n), 2.0/3.0)))
}
