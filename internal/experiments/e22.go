package experiments

import (
	"fattree/internal/baseline"
	"fattree/internal/core"
	"fattree/internal/metrics"
	"fattree/internal/sched"
	"fattree/internal/sim"
	"fattree/internal/universal"
	"fattree/internal/workload"
)

// E22Clos connects the paper to its legacy: the k-ary folded-Clos "fat-tree"
// of modern datacenters offers the same full bisection bandwidth as a w = n
// Leiserson fat-tree, built from constant-radix switches instead of
// variable-width channels. The table compares delivery of the same global
// workloads on both fabrics (store-and-forward steps on the Clos versus
// compacted off-line delivery-cycle ticks on the binary fat-tree), reports
// the hardware inventories side by side, and closes by pushing the Clos
// itself through Theorem 10 — the universality theorem covers its own
// descendants.
func E22Clos(o Options) []*metrics.Table {
	n := 128 // k = 8
	if o.Quick {
		n = 16 // k = 4
	}
	clos := baseline.NewClos(n)
	ft := core.NewUniversal(n, n) // full-bisection binary fat-tree

	perf := metrics.NewTable(
		"Folded Clos (k="+itoa(clos.Radix())+") vs w=n binary fat-tree (n = "+itoa(n)+")",
		"workload", "t clos", "congest det", "congest ecmp", "d ft", "ft ticks")
	for _, wl := range []struct {
		name string
		ms   core.MessageSet
	}{
		{"permutation", workload.RandomPermutation(n, o.Seed)},
		{"bit-reversal", workload.BitReversal(n)},
		{"random 4n", workload.Random(n, 4*n, o.Seed+1)},
	} {
		res := baseline.Deliver(clos, wl.ms)
		ecmp := baseline.Deliver(baseline.NewClosECMP(n, o.Seed+9), wl.ms)
		s := sched.Compact(sched.OffLine(ft, wl.ms))
		if err := s.Verify(wl.ms); err != nil {
			panic(err)
		}
		perf.AddRow(wl.name, res.Cycles, res.Congestion, ecmp.Congestion, s.Length(),
			s.Length()*sim.MaxCycleTicks(ft, 0))
	}

	hw := metrics.NewTable(
		"Hardware inventories at full bisection",
		"fabric", "switches", "switch radix", "bisection", "volume")
	hw.AddRow("clos k="+itoa(clos.Radix()), clos.SwitchCount(), clos.Radix(),
		clos.BisectionWidth(), clos.Volume())
	hw.AddRow("binary fat-tree w=n", ft.InternalNodes(), "variable (2..3w)",
		2*ft.CapacityAtLevel(1), clos.Volume())

	env := metrics.NewTable(
		"Theorem 10 covers the descendant: Clos simulated on an equal-volume fat-tree",
		"workload", "t clos", "slowdown", "lg³n", "norm")
	for _, wl := range []struct {
		name string
		ms   core.MessageSet
	}{
		{"permutation", workload.RandomPermutation(n, o.Seed)},
		{"bit-reversal", workload.BitReversal(n)},
	} {
		r := universal.Simulate(clos, wl.ms, 1)
		env.AddRow(wl.name, r.NetworkCycles, r.Slowdown, r.PolylogBound,
			r.Slowdown/r.PolylogBound)
	}
	return []*metrics.Table{perf, hw, env}
}
