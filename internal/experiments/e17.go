package experiments

import (
	"fattree/internal/concentrator"
	"fattree/internal/core"
	"fattree/internal/metrics"
	"fattree/internal/sched"
	"fattree/internal/sim"
	"fattree/internal/workload"
)

// E17Faults measures graceful degradation under the two fault models of
// Section VII's engineering concerns: permanent wire failures (channels
// narrow, capacities shrink, the off-line scheduler adapts transparently)
// and transient switch faults (messages corrupted in flight, retried by the
// acknowledgment protocol). The paper claims fat-trees are "a robust
// engineering structure — one need not worry about the exact capacities of
// channels as long as the capacities exhibit reasonable growth"; the tables
// quantify how performance bends rather than breaks.
func E17Faults(o Options) []*metrics.Table {
	n := 256
	if o.Quick {
		n = 64
	}
	ms := workload.Random(n, 4*n, o.Seed)

	perm := metrics.NewTable(
		"Permanent wire failures: degrade each edge w.p. p by 50% of its wires",
		"p", "edges degraded", "wires left", "λ", "d offline", "d/λ clean-normalized")
	cleanTree := core.NewUniversal(n, n/4)
	cleanSched := sched.OffLine(cleanTree, ms)
	cleanD := float64(cleanSched.Length())
	for _, p := range []float64{0, 0.05, 0.1, 0.25, 0.5, 1.0} {
		ft := core.NewUniversal(n, n/4)
		degraded := core.DegradeChannels(ft, p, 0.5, o.Seed+int64(p*100))
		s := sched.OffLine(ft, ms)
		if err := s.Verify(ms); err != nil {
			panic(err)
		}
		perm.AddRow(p, degraded, ft.TotalWires(), s.LoadFactor, s.Length(),
			float64(s.Length())/cleanD)
	}

	trans := metrics.NewTable(
		"Transient switch faults: corruption rate vs retry cost (online, ideal switches)",
		"loss rate", "cycles", "drops", "cycles vs clean")
	var cleanCycles float64
	for _, rate := range []float64{0, 0.01, 0.05, 0.1, 0.25} {
		ft := core.NewUniversal(n, n/4)
		e := sim.New(ft, concentrator.KindIdeal, o.Seed)
		if rate > 0 {
			e.InjectLoss(rate, o.Seed+int64(rate*1000))
		}
		stats := sim.RunOnlineRandom(e, ms, o.Seed+5)
		if stats.Delivered != len(ms) {
			panic("E17: delivery incomplete under transient faults")
		}
		if rate == 0 {
			cleanCycles = float64(stats.Cycles)
		}
		trans.AddRow(rate, stats.Cycles, stats.Drops, float64(stats.Cycles)/cleanCycles)
	}
	return []*metrics.Table{perm, trans}
}
