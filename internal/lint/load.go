package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Export     string
	Dir        string
	GoFiles    []string
	Standard   bool
}

// Load type-checks the non-test Go source of every package matching the
// `go list` patterns, resolved relative to dir. Imports are satisfied from
// compiler export data (`go list -export`), so the loader needs no network,
// no GOPATH layout, and no dependencies outside the standard library; only
// the target packages themselves are parsed from source.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Export,Dir,GoFiles,Standard",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	// -deps lists dependencies too; keep only packages named by the patterns.
	// go list prints dependencies before dependents, and the named packages
	// are exactly the non-standard ones when patterns stay inside the module,
	// so re-list without -deps to identify them precisely.
	named, err := listImportPaths(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, p := range targets {
		if !named[p.ImportPath] {
			continue
		}
		pkg, err := checkPackage(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// listImportPaths resolves the patterns to the set of named import paths.
func listImportPaths(dir string, patterns []string) (map[string]bool, error) {
	cmd := exec.Command("go", append([]string{"list"}, patterns...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	named := make(map[string]bool)
	for _, line := range bytes.Split(out, []byte("\n")) {
		if len(line) > 0 {
			named[string(line)] = true
		}
	}
	return named, nil
}

// checkPackage parses and type-checks one package from source.
func checkPackage(fset *token.FileSet, imp types.Importer, pkgPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", pkgPath, err)
	}
	return &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// newInfo returns a types.Info with every map the analyzers consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
