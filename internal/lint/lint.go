// Package lint is a suite of static analyzers that mechanically enforce the
// determinism and numeric-safety invariants of this repository. The paper's
// quantitative claims are validated by "paper bound vs. measured" tables, so
// every measured number must be reproducible bit-for-bit; the invariants that
// guarantee it — all randomness flows through per-entity RNG streams derived
// from (seed, node), parallel fan-outs write only per-index result slots and
// merge in message-index order, float comparisons carry explicit tolerances —
// previously lived only in code review. The analyzers here encode them as
// machine-checked rules, runnable standalone via cmd/ftlint, through
// `go vet -vettool`, or as `make lint`.
//
// The framework mirrors the golang.org/x/tools/go/analysis API (Analyzer,
// Pass, Reportf) but is built purely on the standard library's go/ast and
// go/types, because this module deliberately carries no external
// dependencies. Type information for whole-repo runs comes from
// `go list -export` plus the gc export-data importer (see load.go); fixture
// tests type-check straight from testdata source (see testutil.go).
//
// A diagnostic can be suppressed for a sanctioned exception by the line
// comment directive
//
//	//ftlint:ignore <analyzer> <reason>
//
// placed on the flagged line or the line above it. The reason is mandatory
// by convention: an ignore without a justification defeats the point.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static analysis: a named rule with a Run function
// that inspects a type-checked package and reports diagnostics.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -only flags, and
	// //ftlint:ignore directives. It must be a single lowercase word.
	Name string
	// Doc is the one-paragraph description shown by `ftlint -list`.
	Doc string
	// Match reports whether the analyzer applies to the package with the
	// given import path during a whole-repo run. A nil Match applies
	// everywhere. Fixture tests bypass Match: they run the analyzer
	// directly on the fixture package.
	Match func(pkgPath string) bool
	// Run inspects one package and reports diagnostics through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package, mirroring
// analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one reported finding, resolved to a concrete file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil if not found.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ObjectOf returns the object denoted by ident, consulting Defs then Uses.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Info.Defs[id]; o != nil {
		return o
	}
	return p.Info.Uses[id]
}

// RunAnalyzers applies every analyzer (subject to its Match filter) to every
// package and returns the surviving diagnostics sorted by position. Findings
// on lines carrying an //ftlint:ignore directive for the analyzer are
// dropped.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.PkgPath) {
				continue
			}
			if err := runOne(pkg, a, &diags); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	diags = filterIgnored(pkgs, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// runOne applies a single analyzer to a single package, appending to diags.
func runOne(pkg *Package, a *Analyzer, diags *[]Diagnostic) error {
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		diags:    diags,
	}
	return a.Run(pass)
}

// ignoreKey identifies one source line of one file.
type ignoreKey struct {
	file string
	line int
}

// filterIgnored drops diagnostics whose line (or the line above) carries an
// //ftlint:ignore directive naming the analyzer (or "all").
func filterIgnored(pkgs []*Package, diags []Diagnostic) []Diagnostic {
	ignores := make(map[ignoreKey][]string)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					if !strings.HasPrefix(text, "ftlint:ignore") {
						continue
					}
					fields := strings.Fields(strings.TrimPrefix(text, "ftlint:ignore"))
					if len(fields) == 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					k := ignoreKey{pos.Filename, pos.Line}
					ignores[k] = append(ignores[k], fields[0])
				}
			}
		}
	}
	if len(ignores) == 0 {
		return diags
	}
	keep := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
			for _, name := range ignores[ignoreKey{d.Pos.Filename, line}] {
				if name == d.Analyzer || name == "all" {
					suppressed = true
				}
			}
		}
		if !suppressed {
			keep = append(keep, d)
		}
	}
	return keep
}

// pathHasSuffix reports whether the import path is pkg or ends in "/pkg" —
// the matcher used to recognize this module's packages both at their real
// import paths (fattree/internal/sim) and in relocated test modules.
func pathHasSuffix(path, pkg string) bool {
	return path == pkg || strings.HasSuffix(path, "/"+pkg)
}
