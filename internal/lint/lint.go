// Package lint is a suite of static analyzers that mechanically enforce the
// determinism and numeric-safety invariants of this repository. The paper's
// quantitative claims are validated by "paper bound vs. measured" tables, so
// every measured number must be reproducible bit-for-bit; the invariants that
// guarantee it — all randomness flows through per-entity RNG streams derived
// from (seed, node), parallel fan-outs write only per-index result slots and
// merge in message-index order, float comparisons carry explicit tolerances —
// previously lived only in code review. The analyzers here encode them as
// machine-checked rules, runnable standalone via cmd/ftlint, through
// `go vet -vettool`, or as `make lint`.
//
// The framework mirrors the golang.org/x/tools/go/analysis API (Analyzer,
// Pass, Reportf) but is built purely on the standard library's go/ast and
// go/types, because this module deliberately carries no external
// dependencies. Type information for whole-repo runs comes from
// `go list -export` plus the gc export-data importer (see load.go); fixture
// tests type-check straight from testdata source (see testutil.go).
//
// A diagnostic can be suppressed for a sanctioned exception by the line
// comment directive
//
//	//ftlint:ignore <analyzer> <reason>
//
// placed on the flagged line or the line above it. The reason is mandatory
// by convention: an ignore without a justification defeats the point.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static analysis: a named rule with a Run function
// that inspects a type-checked package and reports diagnostics.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -only flags, and
	// //ftlint:ignore directives. It must be a single lowercase word.
	Name string
	// Doc is the one-paragraph description shown by `ftlint -list`.
	Doc string
	// Match reports whether the analyzer applies to the package with the
	// given import path during a whole-repo run. A nil Match applies
	// everywhere. Fixture tests bypass Match: they run the analyzer
	// directly on the fixture package.
	//
	// For a NeedsFacts analyzer, Match gates only reporting: the analyzer
	// still runs on non-matching packages in facts-only mode, because its
	// dependents need the facts.
	Match func(pkgPath string) bool
	// NeedsFacts marks an analyzer that exports per-package facts for its
	// dependents (and imports theirs). The drivers run fact-based analyzers
	// over packages in dependency order — imports before importers — and
	// plumb each package's exported payload to the passes analyzing its
	// dependents: in memory for standalone and fixture runs, through the
	// .vetx facts files for `go vet -vettool` runs.
	NeedsFacts bool
	// Run inspects one package and reports diagnostics through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package, mirroring
// analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// FactsOnly is set when this pass runs only to compute exported facts —
	// the package is outside the analyzer's Match scope, or the vet driver
	// requested a facts-only (VetxOnly) analysis. Reportf is a no-op on a
	// facts-only pass.
	FactsOnly bool

	// importFacts returns the payload the same analyzer exported for a
	// directly imported package, or nil when none is known (package outside
	// the analyzed set, standard library, or analyzer exported nothing).
	importFacts func(pkgPath string) []byte
	// exportFacts records this package's payload for dependent passes.
	exportFacts func(payload []byte)

	diags *[]Diagnostic
}

// ImportFacts returns the fact payload this analyzer exported while analyzing
// the directly imported package pkgPath, or nil when no facts are known for
// it. The payload encoding is private to the analyzer (the drivers treat it
// as opaque bytes).
func (p *Pass) ImportFacts(pkgPath string) []byte {
	if p.importFacts == nil {
		return nil
	}
	return p.importFacts(pkgPath)
}

// ExportFacts records payload as this package's facts for dependent passes of
// the same analyzer. Calling it more than once overwrites; a package with no
// exportable facts simply never calls it.
func (p *Pass) ExportFacts(payload []byte) {
	if p.exportFacts != nil {
		p.exportFacts(payload)
	}
}

// Diagnostic is one reported finding, resolved to a concrete file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos. On a facts-only pass it is a no-op:
// the package is analyzed solely so its dependents see its facts.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.FactsOnly {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil if not found.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ObjectOf returns the object denoted by ident, consulting Defs then Uses.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Info.Defs[id]; o != nil {
		return o
	}
	return p.Info.Uses[id]
}

// RunAnalyzers applies every analyzer (subject to its Match filter) to every
// package and returns the surviving diagnostics sorted by position. Packages
// are processed in dependency order — imports before importers — so
// fact-based analyzers see the facts of every analyzed import; facts flow
// through an in-memory store, the standalone equivalent of the vet driver's
// .vetx files. Findings on lines carrying an //ftlint:ignore directive for
// the analyzer are dropped.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	store := make(factStore)
	for _, pkg := range topoOrder(pkgs) {
		for _, a := range analyzers {
			match := a.Match == nil || a.Match(pkg.PkgPath)
			if !match && !a.NeedsFacts {
				continue
			}
			if err := runOne(pkg, a, &diags, store, !match); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	diags = filterIgnored(pkgs, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// runOne applies a single analyzer to a single package, appending to diags.
// store may be nil for analyzers that use no facts; factsOnly suppresses
// reporting (the pass runs solely to export facts).
func runOne(pkg *Package, a *Analyzer, diags *[]Diagnostic, store factStore, factsOnly bool) error {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		Info:      pkg.Info,
		FactsOnly: factsOnly,
		diags:     diags,
	}
	if store != nil {
		pass.importFacts = func(path string) []byte { return store.get(path, a.Name) }
		pass.exportFacts = func(payload []byte) { store.set(pkg.PkgPath, a.Name, payload) }
	}
	return a.Run(pass)
}

// ignoreKey identifies one source line of one file.
type ignoreKey struct {
	file string
	line int
}

// filterIgnored drops diagnostics whose line (or the line above) carries an
// //ftlint:ignore directive naming the analyzer (or "all").
func filterIgnored(pkgs []*Package, diags []Diagnostic) []Diagnostic {
	ignores := make(map[ignoreKey][]string)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					if !strings.HasPrefix(text, "ftlint:ignore") {
						continue
					}
					fields := strings.Fields(strings.TrimPrefix(text, "ftlint:ignore"))
					if len(fields) == 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					k := ignoreKey{pos.Filename, pos.Line}
					ignores[k] = append(ignores[k], fields[0])
				}
			}
		}
	}
	if len(ignores) == 0 {
		return diags
	}
	keep := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
			for _, name := range ignores[ignoreKey{d.Pos.Filename, line}] {
				if name == d.Analyzer || name == "all" {
					suppressed = true
				}
			}
		}
		if !suppressed {
			keep = append(keep, d)
		}
	}
	return keep
}

// pathHasSuffix reports whether the import path is pkg or ends in "/pkg" —
// the matcher used to recognize this module's packages both at their real
// import paths (fattree/internal/sim) and in relocated test modules.
func pathHasSuffix(path, pkg string) bool {
	return path == pkg || strings.HasSuffix(path, "/"+pkg)
}
