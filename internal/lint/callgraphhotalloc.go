package lint

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/ast"
	"go/types"
	"sort"
)

// CallGraphHotAlloc is the interprocedural companion of HotAlloc: where the
// intraprocedural rule checks only the body of each //ftlint:hotpath
// function, this analyzer follows the static call graph, so a hot root like
// sim.Engine.routeCycle is allocation-checked end to end — through its
// same-package helpers and across package boundaries into, e.g.,
// concentrator.Matcher.Run.
//
// Per package it computes, for every declared function, a transitive
// "allocation witness": the first reachable allocation along any static call
// chain, as a human-readable hop list ("(*Matcher).Run → allocates a map at
// matching.go:88"). Witnesses are exported as facts, so when a dependent
// package's hot root calls into this one, the dependent's pass sees the
// callee's witness without re-analyzing its source — the unitchecker .vetx
// round-trip in vet mode, the in-memory fact store standalone.
//
// The allocation sites recognized in callee bodies are the union of the
// intraprocedural rules (map make/literal, fresh-local-slice append growth,
// non-pointer→interface boxing) plus two patterns only visible once calls are
// followed: fmt.Sprintf/Sprint/Sprintln/Errorf/Appendf (every call builds a
// fresh string or boxes its operands) and the evaluation of a
// variable-capturing func literal (each evaluation materializes a closure on
// the heap).
//
// Division of labor with HotAlloc: inside a root's own body, map/append/
// boxing sites stay with the intraprocedural rule (one diagnostic, not two);
// this analyzer adds the fmt and closure rules there, and everything in
// callees. As everywhere, panic trees are exempt — a crash path may allocate
// — and warm-up calls that must allocate (grow paths, one-time table builds)
// carry //ftlint:ignore callgraphhotalloc with a reason. Blind spots: calls
// through func values and interface methods produce no edge, and standard-
// library callees outside the fmt denylist are assumed allocation-free.
var CallGraphHotAlloc = &Analyzer{
	Name: "callgraphhotalloc",
	Doc: "interprocedural hotalloc: follows the static call graph from every //ftlint:hotpath " +
		"root, across package boundaries via exported allocation facts, and flags any " +
		"reachable allocation (maps, fresh-slice growth, boxing, fmt.Sprintf, capturing closures)",
	NeedsFacts: true,
	Run:        runCallGraphHotAlloc,
}

// hotAllocFacts is the gob payload exported per package: function key →
// transitive allocation witness (absent means allocation-free as far as the
// static call graph shows).
type hotAllocFacts struct {
	Witness map[string]string
}

// allocSite is one direct allocation in a function body.
type allocSite struct {
	node ast.Node // anchors the diagnostic position
	desc string   // "allocates a map", "calls fmt.Sprintf (allocates)", ...
	kind allocKind
}

type allocKind int

const (
	allocMap     allocKind = iota // make(map)/map literal — HotAlloc's rule
	allocAppend                   // fresh-local-slice growth — HotAlloc's rule
	allocBoxing                   // non-pointer→interface — HotAlloc's rule
	allocFmt                      // fmt.Sprintf and family — this analyzer's rule
	allocClosure                  // capturing func literal — this analyzer's rule
)

// coveredByHotAlloc reports whether the intraprocedural analyzer already
// flags this site kind when it appears directly in a //ftlint:hotpath body.
func (k allocKind) coveredByHotAlloc() bool {
	return k == allocMap || k == allocAppend || k == allocBoxing
}

// fmtAllocators is the standard-library denylist: calls that allocate their
// result by contract. Everything else in std is assumed clean (blind spot).
var fmtAllocators = map[string]bool{
	"fmt.Sprintf":  true,
	"fmt.Sprint":   true,
	"fmt.Sprintln": true,
	"fmt.Errorf":   true,
	"fmt.Appendf":  true,
}

func runCallGraphHotAlloc(pass *Pass) error {
	idx := declIndex(pass)
	order := declsInSourceOrder(idx)

	// Phase 1: direct allocation sites and intra-package call edges.
	sites := make(map[*types.Func][]allocSite, len(idx))
	intraCalls := make(map[*types.Func][]*types.Func, len(idx))
	crossCalls := make(map[*types.Func][]crossEdge, len(idx))
	for _, fn := range order {
		decl := idx[fn]
		sites[fn] = directAllocSites(pass, decl.Body)
		staticCallees(pass, decl.Body, func(call *ast.CallExpr, callee *types.Func) {
			switch {
			case callee.Pkg() == pass.Pkg:
				if _, declared := idx[callee]; declared {
					intraCalls[fn] = append(intraCalls[fn], callee)
				}
			case callee.Pkg() != nil:
				crossCalls[fn] = append(crossCalls[fn], crossEdge{call: call, callee: callee})
			}
		})
	}

	// Phase 2: transitive witnesses, consulting imported facts at
	// cross-package edges. Cycles resolve to "no witness" on the back edge —
	// any real allocation inside the cycle is still found from the node
	// whose direct sites or other callees carry it.
	imported := make(map[string]*hotAllocFacts)
	factsFor := func(pkgPath string) *hotAllocFacts {
		if f, ok := imported[pkgPath]; ok {
			return f
		}
		f := decodeHotAllocFacts(pass.ImportFacts(pkgPath))
		imported[pkgPath] = f
		return f
	}
	witness := make(map[*types.Func]string, len(idx))
	state := make(map[*types.Func]int, len(idx)) // 0 unvisited, 1 visiting, 2 done
	var resolve func(fn *types.Func) string
	resolve = func(fn *types.Func) string {
		if state[fn] == 2 {
			return witness[fn]
		}
		if state[fn] == 1 {
			return ""
		}
		state[fn] = 1
		w := ""
		if own := sites[fn]; len(own) > 0 {
			w = own[0].desc + " at " + shortPos(pass, own[0].node)
		} else {
		edges:
			for _, callee := range intraCalls[fn] {
				if sub := resolve(callee); sub != "" {
					w = funcKey(callee) + " → " + sub
					break edges
				}
			}
			if w == "" {
				for _, edge := range crossCalls[fn] {
					f := factsFor(edge.callee.Pkg().Path())
					if f == nil {
						continue
					}
					if sub := f.Witness[funcKey(edge.callee)]; sub != "" {
						w = displayKey(pass, edge.callee) + " → " + sub
						break
					}
				}
			}
		}
		if len(w) > 220 {
			w = w[:220] + "…"
		}
		state[fn] = 2
		witness[fn] = w
		return w
	}
	for _, fn := range order {
		resolve(fn)
	}

	// Export this package's witnesses for dependents.
	out := hotAllocFacts{Witness: make(map[string]string)}
	for fn, w := range witness {
		if w != "" {
			out.Witness[funcKey(fn)] = w
		}
	}
	if len(out.Witness) > 0 {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(out); err != nil {
			return fmt.Errorf("encoding hotalloc facts: %v", err)
		}
		pass.ExportFacts(buf.Bytes())
	}

	// Phase 3: reporting, from each //ftlint:hotpath root. Sites and edges
	// are reported once, attributed to the first root (in source order) that
	// reaches them.
	reported := make(map[ast.Node]bool)
	for _, root := range order {
		if !isHotPath(idx[root]) {
			continue
		}
		rootKey := funcKey(root)
		// The root's own body: only the rules HotAlloc does not cover.
		for _, s := range sites[root] {
			if s.kind.coveredByHotAlloc() || reported[s.node] {
				continue
			}
			reported[s.node] = true
			pass.Reportf(s.node.Pos(), "hot path %s (//ftlint:hotpath %s)", s.desc, rootKey)
		}
		reportHotEdges(pass, root, rootKey, idx, sites, intraCalls, crossCalls, factsFor, reported)
	}
	return nil
}

// crossEdge is one statically resolved call into another package.
type crossEdge struct {
	call   *ast.CallExpr
	callee *types.Func
}

// reportHotEdges walks the intra-package call graph from root, reporting
// every direct allocation site in reached (non-root-annotated) functions and
// every cross-package edge whose callee carries an allocation witness.
func reportHotEdges(pass *Pass, root *types.Func, rootKey string,
	idx map[*types.Func]*ast.FuncDecl, sites map[*types.Func][]allocSite,
	intraCalls map[*types.Func][]*types.Func, crossCalls map[*types.Func][]crossEdge,
	factsFor func(string) *hotAllocFacts, reported map[ast.Node]bool) {

	seen := map[*types.Func]bool{root: true}
	stack := []*types.Func{root}
	for len(stack) > 0 {
		fn := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		// Cross-package edges out of fn: consult the callee's facts.
		for _, edge := range crossCalls[fn] {
			f := factsFor(edge.callee.Pkg().Path())
			if f == nil {
				continue
			}
			w := f.Witness[funcKey(edge.callee)]
			if w == "" || reported[edge.call] {
				continue
			}
			reported[edge.call] = true
			pass.Reportf(edge.call.Pos(),
				"hot path reaches an allocation in another package: %s → %s (reachable from //ftlint:hotpath %s)",
				displayKey(pass, edge.callee), w, rootKey)
		}
		// Same-package callees: report their direct sites and keep walking.
		for _, callee := range intraCalls[fn] {
			if seen[callee] {
				continue
			}
			seen[callee] = true
			if isHotPath(idx[callee]) {
				// The callee is itself a root: its body is covered by its
				// own iteration (and by HotAlloc for the classic rules),
				// and everything below it by its own walk.
				continue
			}
			for _, s := range sites[callee] {
				if reported[s.node] {
					continue
				}
				reported[s.node] = true
				pass.Reportf(s.node.Pos(),
					"%s on a hot path: %s is reachable from //ftlint:hotpath %s",
					s.desc, funcKey(callee), rootKey)
			}
			stack = append(stack, callee)
		}
		// Deterministic order: stack DFS visits the last pushed first; the
		// sort in RunAnalyzers orders the final diagnostics anyway, and
		// "first root wins" only needs root iteration order, which is
		// source order.
	}
}

// directAllocSites scans one function body for the allocation patterns this
// analyzer recognizes, skipping panic trees.
func directAllocSites(pass *Pass, body *ast.BlockStmt) []allocSite {
	var out []allocSite
	fresh := freshLocalSlices(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch builtinName(pass, n) {
			case "panic":
				return false // crash paths may allocate
			case "make":
				if len(n.Args) > 0 {
					if t := pass.TypeOf(n.Args[0]); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							out = append(out, allocSite{n, "allocates a map", allocMap})
						}
					}
				}
			case "append":
				if len(n.Args) == 0 {
					break
				}
				if id, ok := ast.Unparen(n.Args[0]).(*ast.Ident); ok {
					if obj := pass.ObjectOf(id); obj != nil && fresh[obj] {
						out = append(out, allocSite{n,
							fmt.Sprintf("grows fresh local slice %q with append", id.Name), allocAppend})
					}
				}
			default:
				if fn := calleeFunc(pass.Info, n); fn != nil && fn.Pkg() != nil &&
					fmtAllocators[fn.Pkg().Path()+"."+fn.Name()] {
					out = append(out, allocSite{n,
						"calls fmt." + fn.Name() + " (allocates its result)", allocFmt})
					break
				}
				forEachIfaceBoxing(pass, n, func(arg ast.Expr, t types.Type) {
					out = append(out, allocSite{arg,
						"boxes non-pointer " + types.TypeString(t, types.RelativeTo(pass.Pkg)) + " into an interface",
						allocBoxing})
				})
			}
		case *ast.CompositeLit:
			if t := pass.TypeOf(n); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					out = append(out, allocSite{n, "allocates a map", allocMap})
				}
			}
		case *ast.FuncLit:
			if capturesVariables(pass, n) {
				out = append(out, allocSite{n, "creates a capturing closure", allocClosure})
			}
		}
		return true
	})
	sort.SliceStable(out, func(i, j int) bool { return out[i].node.Pos() < out[j].node.Pos() })
	return out
}

// decodeHotAllocFacts parses an imported fact payload; nil in, nil out.
func decodeHotAllocFacts(payload []byte) *hotAllocFacts {
	if len(payload) == 0 {
		return nil
	}
	var f hotAllocFacts
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&f); err != nil {
		return nil // treat undecodable facts as absent (stale format)
	}
	return &f
}
