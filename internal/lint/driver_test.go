package lint

import (
	"encoding/json"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// This file tests the driver plumbing in-process: the facts-file format, the
// topological ordering, the standalone Load→RunAnalyzers path, and the
// -vettool protocol including the .vetx facts round trip. The cmd/ftlint
// smoke tests cover the same paths through the real binary; these run them
// under the coverage profile.

func TestFactsFileRoundTrip(t *testing.T) {
	in := map[string][]byte{
		"callgraphhotalloc": []byte("witness-payload"),
		"loanescape":        []byte{0x00, 0x01, 0x02},
	}
	blob, err := encodeFactsFile(in)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	out, err := decodeFactsFile(blob)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip lost entries: got %d, want %d", len(out), len(in))
	}
	for name, payload := range in {
		if string(out[name]) != string(payload) {
			t.Errorf("payload of %q corrupted: got %q, want %q", name, out[name], payload)
		}
	}
}

func TestFactsFileEmpty(t *testing.T) {
	blob, err := encodeFactsFile(nil)
	if err != nil {
		t.Fatalf("encoding no facts: %v", err)
	}
	if len(blob) != 0 {
		t.Fatalf("no facts must encode to an empty file (the pre-facts format), got %d bytes", len(blob))
	}
	out, err := decodeFactsFile(nil)
	if err != nil {
		t.Fatalf("decoding the empty file: %v", err)
	}
	if len(out) != 0 {
		t.Fatalf("empty file decoded to %d entries", len(out))
	}
}

func TestFactStore(t *testing.T) {
	s := make(factStore)
	if got := s.get("p", "a"); got != nil {
		t.Fatalf("empty store returned %q", got)
	}
	s.set("p", "a", []byte("x"))
	s.set("p", "b", []byte("y"))
	if got := string(s.get("p", "a")); got != "x" {
		t.Errorf(`get("p","a") = %q, want "x"`, got)
	}
	s.set("p", "a", []byte("z"))
	if got := string(s.get("p", "a")); got != "z" {
		t.Errorf("overwrite did not stick: got %q", got)
	}
}

// TestTopoOrder builds a synthetic diamond a→{b,c}→d handed over in reverse
// and asserts every import precedes its importer.
func TestTopoOrder(t *testing.T) {
	mk := func(path string, imports ...*types.Package) *types.Package {
		p := types.NewPackage(path, filepath.Base(path))
		p.SetImports(imports)
		return p
	}
	d := mk("m/d")
	b := mk("m/b", d)
	c := mk("m/c", d)
	a := mk("m/a", b, c)
	var pkgs []*Package
	for _, tp := range []*types.Package{a, c, b, d} {
		pkgs = append(pkgs, &Package{PkgPath: tp.Path(), Types: tp})
	}
	order := topoOrder(pkgs)
	if len(order) != len(pkgs) {
		t.Fatalf("topoOrder dropped packages: got %d, want %d", len(order), len(pkgs))
	}
	pos := make(map[string]int)
	for i, p := range order {
		pos[p.PkgPath] = i
	}
	for _, edge := range [][2]string{{"m/d", "m/b"}, {"m/d", "m/c"}, {"m/b", "m/a"}, {"m/c", "m/a"}} {
		if pos[edge[0]] > pos[edge[1]] {
			t.Errorf("%s ordered after its importer %s: %v", edge[0], edge[1], pos)
		}
	}
}

// writeTestModule materializes a throwaway module from path -> contents.
func writeTestModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// crossModule is the two-package shape every facts test wants: a hot root in
// sim whose only allocation lives in concentrator.
func crossModule(t *testing.T) string {
	return writeTestModule(t, map[string]string{
		"go.mod": "module xmod\n\ngo 1.22\n",
		"internal/concentrator/c.go": `package concentrator

func Route(n int) map[int]int {
	m := make(map[int]int, n)
	for i := 0; i < n; i++ {
		m[i] = i
	}
	return m
}
`,
		"internal/sim/hot.go": `package sim

import "xmod/internal/concentrator"

//ftlint:hotpath
func Step(n int) int {
	return len(concentrator.Route(n))
}
`,
	})
}

// TestRunAnalyzersCrossPackage drives the standalone path end to end:
// Load resolves both packages, topoOrder puts the callee first, and the
// in-memory fact store carries its witness into the sim pass.
func TestRunAnalyzersCrossPackage(t *testing.T) {
	dir := crossModule(t)
	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("Load returned %d packages, want 2", len(pkgs))
	}
	diags, err := RunAnalyzers(pkgs, []*Analyzer{CallGraphHotAlloc})
	if err != nil {
		t.Fatalf("RunAnalyzers: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	want := "hot path reaches an allocation in another package: concentrator.Route → allocates a map"
	if got := diags[0].String(); !strings.Contains(got, want) || !strings.Contains(got, "[callgraphhotalloc]") {
		t.Errorf("diagnostic %q does not carry the cross-package witness %q", got, want)
	}
}

// TestRunVetToolFactsRoundTrip exercises the -vettool protocol without the
// go command in the middle: one VetxOnly invocation for the dependency
// writes its facts file, and the dependent's invocation must read the
// witness back from disk to produce the diagnostic.
func TestRunVetToolFactsRoundTrip(t *testing.T) {
	dir := crossModule(t)
	exports, err := listExports(dir, "./...")
	if err != nil {
		t.Fatalf("listing export data: %v", err)
	}
	concExport, ok := exports["xmod/internal/concentrator"]
	if !ok {
		t.Fatalf("no export data for the concentrator package: %v", exports)
	}
	work := t.TempDir()
	concVetx := filepath.Join(work, "conc.vetx")
	simVetx := filepath.Join(work, "sim.vetx")

	writeCfg := func(name string, cfg vetConfig) string {
		t.Helper()
		path := filepath.Join(work, name)
		blob, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, blob, 0o666); err != nil {
			t.Fatal(err)
		}
		return path
	}

	// Dependency first, facts only — the go command's order.
	concCfg := writeCfg("conc.cfg", vetConfig{
		ID:         "xmod/internal/concentrator",
		Dir:        filepath.Join(dir, "internal", "concentrator"),
		ImportPath: "xmod/internal/concentrator",
		GoFiles:    []string{filepath.Join(dir, "internal", "concentrator", "c.go")},
		VetxOnly:   true,
		VetxOutput: concVetx,
	})
	n, err := RunVetTool(concCfg, All())
	if err != nil {
		t.Fatalf("RunVetTool(concentrator): %v", err)
	}
	if n != 0 {
		t.Fatalf("VetxOnly invocation reported %d diagnostics", n)
	}
	blob, err := os.ReadFile(concVetx)
	if err != nil {
		t.Fatalf("the VetxOnly invocation must write its facts file: %v", err)
	}
	facts, err := decodeFactsFile(blob)
	if err != nil {
		t.Fatalf("decoding the facts file: %v", err)
	}
	if len(facts["callgraphhotalloc"]) == 0 {
		t.Fatalf("facts file carries no callgraphhotalloc witness: %v", facts)
	}

	// Dependent second, fed the dependency's .vetx file.
	simCfg := writeCfg("sim.cfg", vetConfig{
		ID:          "xmod/internal/sim",
		Dir:         filepath.Join(dir, "internal", "sim"),
		ImportPath:  "xmod/internal/sim",
		GoFiles:     []string{filepath.Join(dir, "internal", "sim", "hot.go")},
		ImportMap:   map[string]string{"xmod/internal/concentrator": "xmod/internal/concentrator"},
		PackageFile: map[string]string{"xmod/internal/concentrator": concExport},
		PackageVetx: map[string]string{"xmod/internal/concentrator": concVetx},
		VetxOutput:  simVetx,
	})
	n, err = RunVetTool(simCfg, All())
	if err != nil {
		t.Fatalf("RunVetTool(sim): %v", err)
	}
	if n != 1 {
		t.Fatalf("sim invocation reported %d diagnostics, want exactly the cross-package witness", n)
	}
	if _, err := os.Stat(simVetx); err != nil {
		t.Errorf("sim invocation must write its own facts file too: %v", err)
	}
}

// TestRunVetToolSkipsTestUnits: a unit carrying test sources is skipped but
// must still write its (empty) facts file so the vet cache works.
func TestRunVetToolSkipsTestUnits(t *testing.T) {
	work := t.TempDir()
	vetx := filepath.Join(work, "out.vetx")
	blob, err := json.Marshal(vetConfig{
		ID:         "p [p.test]",
		ImportPath: "p [p.test]",
		GoFiles:    []string{"p_test.go"},
		VetxOutput: vetx,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(work, "vet.cfg")
	if err := os.WriteFile(cfgPath, blob, 0o666); err != nil {
		t.Fatal(err)
	}
	n, err := RunVetTool(cfgPath, All())
	if err != nil || n != 0 {
		t.Fatalf("test unit: n=%d err=%v, want 0, nil", n, err)
	}
	st, err := os.Stat(vetx)
	if err != nil {
		t.Fatalf("test unit must write an empty facts file: %v", err)
	}
	if st.Size() != 0 {
		t.Errorf("test unit's facts file has %d bytes, want 0", st.Size())
	}
}

func TestAllAndByName(t *testing.T) {
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i-1].Name >= all[i].Name {
			t.Errorf("All() not in strict name order: %q before %q", all[i-1].Name, all[i].Name)
		}
	}
	for _, a := range all {
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not return the analyzer", a.Name)
		}
	}
	if ByName("nope") != nil {
		t.Error(`ByName("nope") returned an analyzer`)
	}
}
