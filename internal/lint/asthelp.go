package lint

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves the function or method called by call, or nil when the
// callee is not a declared function (a func value, builtin, or conversion).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	case *ast.IndexExpr: // explicit instantiation of a generic function
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			obj = info.Uses[id]
		} else if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			obj = info.Uses[sel.Sel]
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// funcPkgPath returns the import path of the package declaring fn, or "".
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isFloat reports whether t's underlying type is a floating-point basic type
// (including untyped float constants).
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// resultsIncludeError reports whether the call's results include a value of
// type error (the canonical "this can fail" signature shape).
func resultsIncludeError(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return true
		}
	}
	return false
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorType)
}

// declaredWithin reports whether obj's declaration lies inside node's source
// range — the capture test: an identifier written inside a closure is
// "captured" when its declaration is outside the closure body.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj != nil && obj.Pos() != 0 && obj.Pos() >= node.Pos() && obj.Pos() <= node.End()
}

// usesAnyObject reports whether expr mentions an identifier resolving (via
// Uses) to any object for which ok returns true.
func usesAnyObject(info *types.Info, expr ast.Expr, ok func(types.Object) bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, isIdent := n.(*ast.Ident); isIdent {
			if obj := info.Uses[id]; obj != nil && ok(obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
