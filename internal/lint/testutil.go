package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// This file is the fixture harness — the analysistest equivalent. A fixture
// is one package directory under testdata/src; expected diagnostics are
// declared inline with analysistest syntax:
//
//	rand.Intn(10) // want `global math/rand`
//
// Each backquoted or double-quoted string after "want" is a regexp that must
// match one diagnostic reported on that line. Fixture-local imports resolve
// to sibling directories under testdata/src (so a fixture can carry a fake
// "par" package); everything else resolves through compiler export data,
// exactly like whole-repo runs.

// testingT is the subset of *testing.T the harness needs, split out so the
// harness itself can be unit-tested.
type testingT interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// RunFixture loads testdata/src/<fixture> relative to dir, applies the
// analyzer (bypassing its Match filter — fixtures choose their analyzer
// explicitly), and compares the diagnostics against the // want
// expectations in the fixture source.
//
// For a NeedsFacts analyzer, any fixture-local imports (sibling directories
// under testdata/src) are first analyzed in facts-only mode in dependency
// order, so the main fixture package sees their facts exactly as a real
// driver would — this is how the cross-package call-graph fixtures work.
func RunFixture(t testingT, a *Analyzer, dir, fixture string) {
	t.Helper()
	src := filepath.Join(dir, "testdata", "src")
	fset := token.NewFileSet()
	fi := &fixtureImporter{
		src:      src,
		fset:     fset,
		std:      importer.ForCompiler(fset, "gc", stdLookup(src)),
		packages: make(map[string]*types.Package),
	}
	pkg, err := fi.load(fixture)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	var diags []Diagnostic
	store := make(factStore)
	if a.NeedsFacts {
		// fi.loaded is in completion order — imports finish loading before
		// their importers — so it is already topological; the main fixture
		// package is last and skipped here.
		for _, dep := range fi.loaded {
			if dep.PkgPath == fixture {
				continue
			}
			if err := runOne(dep, a, &diags, store, true); err != nil {
				t.Fatalf("running %s on fixture dep %s: %v", a.Name, dep.PkgPath, err)
			}
		}
	}
	if err := runOne(pkg, a, &diags, store, false); err != nil {
		t.Fatalf("running %s on fixture %s: %v", a.Name, fixture, err)
	}
	diags = filterIgnored([]*Package{pkg}, diags)
	checkExpectations(t, pkg, diags)
}

// stdLookup satisfies standard-library imports from compiler export data,
// resolving lazily through `go list -export` so fixtures may import any std
// package without pre-declaring it.
func stdLookup(dir string) func(string) (io.ReadCloser, error) {
	cache := make(map[string]string)
	return func(path string) (io.ReadCloser, error) {
		if f, ok := cache[path]; ok {
			return os.Open(f)
		}
		pkgs, err := listExports(dir, path)
		if err != nil {
			return nil, err
		}
		for p, f := range pkgs {
			cache[p] = f
		}
		f, ok := cache[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
}

// listExports returns ImportPath -> export-data file for the pattern and its
// dependencies, via `go list -export -deps` run in dir.
func listExports(dir, pattern string) (map[string]string, error) {
	cmd := exec.Command("go", "list", "-export", "-deps",
		"-json=ImportPath,Export", pattern)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list -export %s: %v\n%s", pattern, err, stderr.String())
	}
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// fixtureImporter resolves fixture-local packages from source and delegates
// the rest to the export-data importer.
type fixtureImporter struct {
	src      string
	fset     *token.FileSet
	std      types.Importer
	packages map[string]*types.Package
	loaded   []*Package // fixture-local packages in completion (topological) order
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if dirExists(filepath.Join(fi.src, filepath.FromSlash(path))) {
		if p, ok := fi.packages[path]; ok {
			return p, nil
		}
		pkg, err := fi.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return fi.std.Import(path)
}

// load parses and type-checks the fixture package at src/<path>.
func (fi *fixtureImporter) load(path string) (*Package, error) {
	dir := filepath.Join(fi.src, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fi.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture %s has no Go files", path)
	}
	info := newInfo()
	conf := types.Config{Importer: fi}
	tpkg, err := conf.Check(path, fi.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %v", path, err)
	}
	fi.packages[path] = tpkg
	pkg := &Package{
		PkgPath: path,
		Dir:     dir,
		Fset:    fi.fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}
	fi.loaded = append(fi.loaded, pkg)
	return pkg, nil
}

func dirExists(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.IsDir()
}

// expectation is one // want regexp at a file line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	text string
}

// checkExpectations cross-checks diagnostics against // want comments:
// every expectation must be matched by exactly one diagnostic on its line,
// and every diagnostic must be claimed by an expectation.
func checkExpectations(t testingT, pkg *Package, diags []Diagnostic) {
	expects := parseWants(t, pkg)
	matched := make([]bool, len(diags))
	for _, e := range expects {
		found := false
		for i, d := range diags {
			if matched[i] || d.Pos.Filename != e.file || d.Pos.Line != e.line {
				continue
			}
			if e.re.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.text)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("%s: unexpected diagnostic: %s", pkg.PkgPath, d)
		}
	}
}

// wantRE extracts the quoted regexps of a want comment: backquoted or
// double-quoted Go string literals.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// parseWants collects the // want expectations of every fixture file.
func parseWants(t testingT, pkg *Package) []expectation {
	var out []expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				quoted := wantRE.FindAllString(strings.TrimPrefix(text, "want "), -1)
				if len(quoted) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, q := range quoted {
					var lit string
					if strings.HasPrefix(q, "`") {
						lit = strings.Trim(q, "`")
					} else {
						var err error
						lit, err = strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
						}
					}
					re, err := regexp.Compile(lit)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, lit, err)
					}
					out = append(out, expectation{file: pos.Filename, line: pos.Line, re: re, text: lit})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out
}
