package lint

import "testing"

func TestNondetermFixture(t *testing.T) {
	RunFixture(t, Nondeterm, ".", "nondeterm")
}

func TestNondetermMatch(t *testing.T) {
	for path, want := range map[string]bool{
		"fattree/internal/sim":         true,
		"fattree/internal/sched":       true,
		"fattree/internal/par":         true,
		"fattree/internal/core":        true,
		"fattree/internal/metrics":     false,
		"fattree/internal/experiments": false,
		"fattree/cmd/ftsim":            false,
	} {
		if got := Nondeterm.Match(path); got != want {
			t.Errorf("Nondeterm.Match(%q) = %v, want %v", path, got, want)
		}
	}
}
