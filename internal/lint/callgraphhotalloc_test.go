package lint

import "testing"

// The callgraph fixture is split across two packages: callgraph/b is loaded
// facts-only, and callgraph/a's // want expectations include diagnostics
// whose witnesses could only have arrived through b's exported facts.
func TestCallGraphHotAllocFixture(t *testing.T) {
	RunFixture(t, CallGraphHotAlloc, ".", "callgraph/a")
}

func TestCallGraphHotAllocNeedsFacts(t *testing.T) {
	if !CallGraphHotAlloc.NeedsFacts {
		t.Fatal("callgraphhotalloc must declare NeedsFacts so drivers run it facts-only on non-matching packages")
	}
	if CallGraphHotAlloc.Match != nil {
		t.Fatal("callgraphhotalloc must run on every package: hot roots may live anywhere")
	}
}
