package lint

import (
	"go/ast"
	"go/types"
)

// HotAlloc flags per-call heap allocation patterns inside the delivery-path
// hot functions — the functions annotated with the //ftlint:hotpath
// directive in the simulator, scheduler, and concentrator packages. The
// engine's performance contract is zero steady-state allocation per delivery
// cycle (see DESIGN.md "Scratch-arena ownership"); the three patterns that
// historically broke it are:
//
//   - allocating a map (make(map[...]) or a map composite literal) as
//     transient per-cycle state, where a flat epoch-stamped arena is the
//     sanctioned replacement;
//   - growing a fresh local slice with append, i.e. appending to a slice
//     variable declared in the same function with a nil or empty
//     initializer (`var x []T`, `x := []T{}`, `x := make([]T, 0)`), where
//     the sanctioned form reuses pooled scratch (`x := e.scr.buf[:0]` or
//     growInts) so the backing array survives across cycles;
//   - converting a non-pointer concrete value to an interface — passing a
//     struct, int, or slice to an interface-typed parameter, or an explicit
//     I(x) conversion — which boxes the value on the heap every call. This
//     is the rule that keeps the observability hooks free when disabled:
//     the engine holds its observer as a concrete *obsv.Observer pointer
//     behind a nil check, never as an interface, so the hot path performs
//     no conversion at all.
//
// Parameters, named results, and slices initialized from existing storage
// are exempt append bases: building a result the caller retains is
// legitimate, and reslicing pooled scratch is exactly the sanctioned idiom.
// Pointer, channel, map, and func values are exempt interface operands
// (pointer-shaped: boxed without allocation), as are constants (the
// compiler materializes them in static data) — so `panic("msg")` and
// nil-guarded pointer observers stay clean. panic call trees are skipped
// wholesale: a crash path may allocate. Warm-up allocations that must stay
// (one-time table builds) carry an //ftlint:ignore hotalloc directive with
// a reason.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "flags map allocation, fresh-local-slice append growth, and non-pointer-to-interface " +
		"boxing inside //ftlint:hotpath functions of the simulator, scheduler, and " +
		"concentrator packages",
	Match: func(path string) bool {
		return pathHasSuffix(path, "internal/sim") ||
			pathHasSuffix(path, "internal/sched") ||
			pathHasSuffix(path, "internal/concentrator")
	},
	Run: runHotAlloc,
}

// hotPathDirective marks a function as part of the per-cycle hot path.
const hotPathDirective = "//ftlint:hotpath"

func runHotAlloc(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotPath(fn) {
				continue
			}
			checkHotFunc(pass, fn)
		}
	}
	return nil
}

// isHotPath reports whether the function's doc comment carries the
// //ftlint:hotpath directive.
func isHotPath(fn *ast.FuncDecl) bool {
	return hasFuncDirective(fn, hotPathDirective)
}

// checkHotFunc applies the hot-path rules to one annotated function.
func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	fresh := freshLocalSlices(pass, fn.Body)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch builtinName(pass, n) {
			case "panic":
				// Crash paths are exempt wholesale: the fmt.Sprintf and
				// string boxing feeding a panic allocate, and that is fine —
				// the process is about to die.
				return false
			case "make":
				if len(n.Args) > 0 {
					if t := pass.TypeOf(n.Args[0]); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							pass.Reportf(n.Pos(),
								"hot path allocates a map; use a flat slice or epoch-stamped arena (DESIGN.md scratch-arena rules)")
						}
					}
				}
			case "append":
				if len(n.Args) == 0 {
					break
				}
				id, ok := ast.Unparen(n.Args[0]).(*ast.Ident)
				if !ok {
					break
				}
				if obj := pass.ObjectOf(id); obj != nil && fresh[obj] {
					pass.Reportf(n.Pos(),
						"hot path grows fresh local slice %q with append; reuse pooled scratch (buf[:0] or growInts)", id.Name)
				}
			default:
				checkIfaceBoxing(pass, n)
			}
		case *ast.CompositeLit:
			if t := pass.TypeOf(n); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(),
						"hot path allocates a map; use a flat slice or epoch-stamped arena (DESIGN.md scratch-arena rules)")
				}
			}
		}
		return true
	})
}

// freshLocalSlices collects the objects of slice variables declared inside
// body with a nil or empty initializer: `var x []T`, `x := []T{}`, and
// `x := make([]T, 0)`. Appending to these grows a heap allocation made this
// call; appending to anything else (parameters, named results, reslices of
// pooled storage) is exempt.
func freshLocalSlices(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	record := func(id *ast.Ident) {
		if id.Name == "_" {
			return
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			return
		}
		if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
			fresh[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gen, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gen.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue // only uninitialized `var x []T` is fresh-and-nil
				}
				for _, id := range vs.Names {
					record(id)
				}
			}
		case *ast.AssignStmt:
			if n.Tok.String() != ":=" || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || !isEmptySliceExpr(pass, n.Rhs[i]) {
					continue
				}
				record(id)
			}
		}
		return true
	})
	return fresh
}

// isEmptySliceExpr matches `[]T{}` and `make([]T, 0)` — initializers whose
// backing array is freshly allocated and empty.
func isEmptySliceExpr(pass *Pass, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		if len(e.Elts) != 0 {
			return false
		}
		t := pass.TypeOf(e)
		if t == nil {
			return false
		}
		_, isSlice := t.Underlying().(*types.Slice)
		return isSlice
	case *ast.CallExpr:
		if builtinName(pass, e) != "make" || len(e.Args) != 2 {
			return false
		}
		lit, ok := ast.Unparen(e.Args[1]).(*ast.BasicLit)
		return ok && lit.Value == "0"
	}
	return false
}

// checkIfaceBoxing flags call arguments (and explicit conversions) that box a
// non-pointer concrete value into an interface: each such conversion heap-
// allocates a copy of the value at the call site. Pointer-shaped operands
// (pointers, channels, maps, funcs, unsafe.Pointer) are stored in the
// interface word directly and constants are materialized in static data, so
// neither allocates and neither is flagged. This is what statically pins the
// disabled-observer hot path at 0 allocs/op: a nil-guarded concrete pointer
// passes this rule, an interface-typed observer field would not.
func checkIfaceBoxing(pass *Pass, call *ast.CallExpr) {
	forEachIfaceBoxing(pass, call, func(arg ast.Expr, t types.Type) {
		pass.Reportf(arg.Pos(),
			"hot path boxes non-pointer %s into an interface (heap-allocates per call); pass a pointer or keep the concrete type (nil-guarded, like the engine's observer)",
			types.TypeString(t, types.RelativeTo(pass.Pkg)))
	})
}

// forEachIfaceBoxing invokes report for every argument of call (or operand of
// an explicit conversion) whose passing boxes a non-pointer concrete value
// into an interface. Shared by the intraprocedural hotalloc rule and the
// call-graph analyzer's allocation-site scanner.
func forEachIfaceBoxing(pass *Pass, call *ast.CallExpr, report func(arg ast.Expr, t types.Type)) {
	// Explicit conversion I(x).
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			ifaceBoxing(pass, call.Args[0], report)
		}
		return
	}
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				// xs... passes the existing slice through: no per-element
				// conversion happens at this call site.
				continue
			}
			param = params.At(params.Len() - 1).Type().Underlying().(*types.Slice).Elem()
		case i < params.Len():
			param = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(param) {
			ifaceBoxing(pass, arg, report)
		}
	}
}

// ifaceBoxing calls report(arg, type) if converting arg to an interface
// allocates: its static type is a concrete, non-pointer-shaped type and it is
// not a constant.
func ifaceBoxing(pass *Pass, arg ast.Expr, report func(arg ast.Expr, t types.Type)) {
	tv, ok := pass.Info.Types[ast.Unparen(arg)]
	if !ok || tv.Type == nil {
		return
	}
	if tv.Value != nil {
		return // constants live in static data; boxing one does not allocate
	}
	t := tv.Type
	if b, isBasic := t.Underlying().(*types.Basic); isBasic &&
		(b.Kind() == types.UntypedNil || b.Kind() == types.UnsafePointer) {
		return
	}
	switch t.Underlying().(type) {
	case *types.Interface:
		return // interface-to-interface copies two words, no allocation
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // pointer-shaped: stored in the interface word directly
	}
	report(arg, t)
}

// builtinName returns the name of the builtin a call invokes, or "".
func builtinName(pass *Pass, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if _, isBuiltin := pass.ObjectOf(id).(*types.Builtin); !isBuiltin {
		return ""
	}
	return id.Name
}
