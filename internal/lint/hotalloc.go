package lint

import (
	"go/ast"
	"go/types"
)

// HotAlloc flags per-call heap allocation patterns inside the delivery-path
// hot functions — the functions annotated with the //ftlint:hotpath
// directive in the simulator, scheduler, and concentrator packages. The
// engine's performance contract is zero steady-state allocation per delivery
// cycle (see DESIGN.md "Scratch-arena ownership"); the two patterns that
// historically broke it are:
//
//   - allocating a map (make(map[...]) or a map composite literal) as
//     transient per-cycle state, where a flat epoch-stamped arena is the
//     sanctioned replacement;
//   - growing a fresh local slice with append, i.e. appending to a slice
//     variable declared in the same function with a nil or empty
//     initializer (`var x []T`, `x := []T{}`, `x := make([]T, 0)`), where
//     the sanctioned form reuses pooled scratch (`x := e.scr.buf[:0]` or
//     growInts) so the backing array survives across cycles.
//
// Parameters, named results, and slices initialized from existing storage
// are exempt: building a result the caller retains is legitimate, and
// reslicing pooled scratch is exactly the sanctioned idiom. Warm-up
// allocations that must stay (one-time table builds) carry an
// //ftlint:ignore hotalloc directive with a reason.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "flags map allocation and fresh-local-slice append growth inside //ftlint:hotpath " +
		"functions of the simulator, scheduler, and concentrator packages",
	Match: func(path string) bool {
		return pathHasSuffix(path, "internal/sim") ||
			pathHasSuffix(path, "internal/sched") ||
			pathHasSuffix(path, "internal/concentrator")
	},
	Run: runHotAlloc,
}

// hotPathDirective marks a function as part of the per-cycle hot path.
const hotPathDirective = "//ftlint:hotpath"

func runHotAlloc(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotPath(fn) {
				continue
			}
			checkHotFunc(pass, fn)
		}
	}
	return nil
}

// isHotPath reports whether the function's doc comment carries the
// //ftlint:hotpath directive.
func isHotPath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if c.Text == hotPathDirective {
			return true
		}
	}
	return false
}

// checkHotFunc applies both hot-path rules to one annotated function.
func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	fresh := freshLocalSlices(pass, fn.Body)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch builtinName(pass, n) {
			case "make":
				if len(n.Args) > 0 {
					if t := pass.TypeOf(n.Args[0]); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							pass.Reportf(n.Pos(),
								"hot path allocates a map; use a flat slice or epoch-stamped arena (DESIGN.md scratch-arena rules)")
						}
					}
				}
			case "append":
				if len(n.Args) == 0 {
					break
				}
				id, ok := ast.Unparen(n.Args[0]).(*ast.Ident)
				if !ok {
					break
				}
				if obj := pass.ObjectOf(id); obj != nil && fresh[obj] {
					pass.Reportf(n.Pos(),
						"hot path grows fresh local slice %q with append; reuse pooled scratch (buf[:0] or growInts)", id.Name)
				}
			}
		case *ast.CompositeLit:
			if t := pass.TypeOf(n); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(),
						"hot path allocates a map; use a flat slice or epoch-stamped arena (DESIGN.md scratch-arena rules)")
				}
			}
		}
		return true
	})
}

// freshLocalSlices collects the objects of slice variables declared inside
// body with a nil or empty initializer: `var x []T`, `x := []T{}`, and
// `x := make([]T, 0)`. Appending to these grows a heap allocation made this
// call; appending to anything else (parameters, named results, reslices of
// pooled storage) is exempt.
func freshLocalSlices(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	record := func(id *ast.Ident) {
		if id.Name == "_" {
			return
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			return
		}
		if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
			fresh[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gen, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gen.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue // only uninitialized `var x []T` is fresh-and-nil
				}
				for _, id := range vs.Names {
					record(id)
				}
			}
		case *ast.AssignStmt:
			if n.Tok.String() != ":=" || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || !isEmptySliceExpr(pass, n.Rhs[i]) {
					continue
				}
				record(id)
			}
		}
		return true
	})
	return fresh
}

// isEmptySliceExpr matches `[]T{}` and `make([]T, 0)` — initializers whose
// backing array is freshly allocated and empty.
func isEmptySliceExpr(pass *Pass, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		if len(e.Elts) != 0 {
			return false
		}
		t := pass.TypeOf(e)
		if t == nil {
			return false
		}
		_, isSlice := t.Underlying().(*types.Slice)
		return isSlice
	case *ast.CallExpr:
		if builtinName(pass, e) != "make" || len(e.Args) != 2 {
			return false
		}
		lit, ok := ast.Unparen(e.Args[1]).(*ast.BasicLit)
		return ok && lit.Value == "0"
	}
	return false
}

// builtinName returns the name of the builtin a call invokes, or "".
func builtinName(pass *Pass, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if _, isBuiltin := pass.ObjectOf(id).(*types.Builtin); !isBuiltin {
		return ""
	}
	return id.Name
}
