package lint

// All returns every analyzer in the suite, in stable name order. This is the
// set cmd/ftlint runs by default and CI enforces; adding an analyzer here
// enrolls it everywhere at once.
func All() []*Analyzer {
	return []*Analyzer{
		CallGraphHotAlloc,
		ErrDiscard,
		FloatCompare,
		GoroShutdown,
		HotAlloc,
		LoanEscape,
		Nondeterm,
		PoolCapture,
		SeedPlumbing,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
