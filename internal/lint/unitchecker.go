package lint

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"strings"
)

// hasTestFile reports whether any source file is a _test.go file.
func hasTestFile(files []string) bool {
	for _, f := range files {
		if strings.HasSuffix(f, "_test.go") {
			return true
		}
	}
	return false
}

// This file implements the driver side of cmd/vet's -vettool protocol, so
// ftlint can run as `go vet -vettool=$(which ftlint) ./...`. The go command
// invokes the tool once per package with a JSON config file argument
// (<dir>/vet.cfg) naming the package's sources, the export-data files of its
// imports, and the .vetx facts files its imports produced in earlier
// invocations; the tool must write this package's facts file, print
// diagnostics to stderr, and exit non-zero when it found any. Fact-based
// analyzers (Analyzer.NeedsFacts) run even on VetxOnly invocations — where
// the go command wants only the facts file, because the package is analyzed
// purely as a dependency — with reporting suppressed.

// vetConfig mirrors the fields of the go command's vet config JSON that
// ftlint consumes (the file carries more; unknown fields are ignored).
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunVetTool executes one -vettool invocation for the config file at
// cfgPath, returning the number of diagnostics printed to stderr.
func RunVetTool(cfgPath string, analyzers []*Analyzer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing vet config %s: %v", cfgPath, err)
	}
	// The invariants are production-code rules: tests may use fixed seeds
	// and exact comparisons deliberately. The go command compiles test
	// variants as separate units ("p [p.test]", "p_test"); skip any unit
	// carrying test sources, mirroring the standalone loader, which
	// analyzes GoFiles only. The facts file must still exist for the go
	// command to cache the result, so write it empty.
	if strings.Contains(cfg.ImportPath, " [") || strings.HasSuffix(cfg.ImportPath, ".test") ||
		strings.HasSuffix(cfg.ImportPath, "_test") || hasTestFile(cfg.GoFiles) {
		return 0, writeFactsFile(cfg.VetxOutput, nil)
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	pkg, err := checkPackage(fset, imp, cfg.ImportPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, writeFactsFile(cfg.VetxOutput, nil)
		}
		return 0, err
	}

	// Seed the fact store with the imports' facts files, keyed by canonical
	// import path (the paths analyzers see through types.Package.Path).
	store := make(factStore)
	for path, file := range cfg.PackageVetx {
		blob, err := os.ReadFile(file)
		if err != nil {
			return 0, fmt.Errorf("reading facts of %s: %v", path, err)
		}
		byAnalyzer, err := decodeFactsFile(blob)
		if err != nil {
			return 0, fmt.Errorf("facts of %s: %v", path, err)
		}
		for name, payload := range byAnalyzer {
			store.set(path, name, payload)
		}
	}

	var diags []Diagnostic
	for _, a := range analyzers {
		match := a.Match == nil || a.Match(cfg.ImportPath)
		if !match && !a.NeedsFacts {
			continue
		}
		factsOnly := cfg.VetxOnly || !match
		if err := runOne(pkg, a, &diags, store, factsOnly); err != nil {
			return 0, err
		}
	}
	if err := writeFactsFile(cfg.VetxOutput, store[cfg.ImportPath]); err != nil {
		return 0, err
	}
	if cfg.VetxOnly {
		return 0, nil
	}
	diags = filterIgnored([]*Package{pkg}, diags)
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	return len(diags), nil
}

// writeFactsFile encodes the analyzer-name → payload map of the analyzed
// package into the .vetx file the go command asked for. A nil map writes an
// empty file: the file must exist for the vet result to be cacheable even
// when there are no facts.
func writeFactsFile(path string, facts map[string][]byte) error {
	if path == "" {
		return nil
	}
	blob, err := encodeFactsFile(facts)
	if err != nil {
		return err
	}
	return os.WriteFile(path, blob, 0o666)
}
