package lint

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"strings"
)

// hasTestFile reports whether any source file is a _test.go file.
func hasTestFile(files []string) bool {
	for _, f := range files {
		if strings.HasSuffix(f, "_test.go") {
			return true
		}
	}
	return false
}

// This file implements the driver side of cmd/vet's -vettool protocol, so
// ftlint can run as `go vet -vettool=$(which ftlint) ./...`. The go command
// invokes the tool once per package with a JSON config file argument
// (<dir>/vet.cfg) naming the package's sources and the export-data files of
// its imports, and expects the tool to write the "facts" output file, print
// diagnostics to stderr, and exit non-zero when it found any. ftlint
// computes no cross-package facts, so the facts file is written empty.

// vetConfig mirrors the fields of the go command's vet config JSON that
// ftlint consumes (the file carries more; unknown fields are ignored).
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunVetTool executes one -vettool invocation for the config file at
// cfgPath, returning the number of diagnostics printed to stderr.
func RunVetTool(cfgPath string, analyzers []*Analyzer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing vet config %s: %v", cfgPath, err)
	}
	// The facts file must exist for the go command to cache the result,
	// even when this package is only analyzed for its dependents.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		return 0, nil
	}
	// The invariants are production-code rules: tests may use fixed seeds
	// and exact comparisons deliberately. The go command compiles test
	// variants as separate units ("p [p.test]", "p_test"); skip any unit
	// carrying test sources, mirroring the standalone loader, which
	// analyzes GoFiles only.
	if strings.Contains(cfg.ImportPath, " [") || strings.HasSuffix(cfg.ImportPath, ".test") ||
		strings.HasSuffix(cfg.ImportPath, "_test") || hasTestFile(cfg.GoFiles) {
		return 0, nil
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	pkg, err := checkPackage(fset, imp, cfg.ImportPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, err
	}

	var diags []Diagnostic
	for _, a := range analyzers {
		if a.Match != nil && !a.Match(cfg.ImportPath) {
			continue
		}
		if err := runOne(pkg, a, &diags); err != nil {
			return 0, err
		}
	}
	diags = filterIgnored([]*Package{pkg}, diags)
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	return len(diags), nil
}
