package lint

import "testing"

// The implicit fixture models the implicit-topology streaming engine's hot
// shard loops: field-backed scatter reuse and capacity probes must stay
// clean, while fresh-slice growth and unsanctioned lazy map materialization
// reached from a hot root are diagnosed with reachability witnesses.
func TestCallGraphHotAllocImplicitFixture(t *testing.T) {
	RunFixture(t, CallGraphHotAlloc, ".", "implicit")
}
