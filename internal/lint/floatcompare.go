package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCompare flags == and != between floating-point values in the numeric
// packages (internal/vlsi, internal/metrics). The experiment tables carry
// fitted exponents, areas, and R² values computed through chains of float
// arithmetic; exact equality on such values is at best accidental and at
// worst makes a "paper bound vs measured" row flip between runs of
// mathematically identical code (different FMA contraction, different
// association after a refactor). The sanctioned forms are the tolerance
// helpers metrics.ApproxEqual / metrics.NearZero, or an explicit
// |a-b| <= eps with a justified eps.
//
// Two exact idioms stay legal: x != x (the NaN test) and comparisons
// against math.Inf(...) (infinities are exactly representable).
var FloatCompare = &Analyzer{
	Name: "floatcompare",
	Doc: "flags ==/!= on floating-point values in internal/vlsi and internal/metrics; " +
		"use metrics.ApproxEqual / metrics.NearZero or an explicit tolerance",
	Match: func(path string) bool {
		return pathHasSuffix(path, "internal/vlsi") || pathHasSuffix(path, "internal/metrics")
	},
	Run: runFloatCompare,
}

func runFloatCompare(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			xt, yt := pass.TypeOf(bin.X), pass.TypeOf(bin.Y)
			if xt == nil || yt == nil || (!isFloat(xt) && !isFloat(yt)) {
				return true
			}
			if bothConstant(pass, bin) {
				return true // compile-time comparison, exact by definition
			}
			if isSelfCompare(bin) {
				return true // x != x: the NaN test
			}
			if isMathInfCall(pass, bin.X) || isMathInfCall(pass, bin.Y) {
				return true
			}
			pass.Reportf(bin.Pos(),
				"floating-point %s comparison: use metrics.ApproxEqual / metrics.NearZero (explicit tolerance) instead of exact equality",
				bin.Op)
			return true
		})
	}
	return nil
}

// bothConstant reports whether both operands are compile-time constants.
func bothConstant(pass *Pass, bin *ast.BinaryExpr) bool {
	xv := pass.Info.Types[bin.X]
	yv := pass.Info.Types[bin.Y]
	return xv.Value != nil && yv.Value != nil
}

// isSelfCompare recognizes `x == x` / `x != x` over a plain identifier.
func isSelfCompare(bin *ast.BinaryExpr) bool {
	x, okx := ast.Unparen(bin.X).(*ast.Ident)
	y, oky := ast.Unparen(bin.Y).(*ast.Ident)
	return okx && oky && x.Name == y.Name
}

// isMathInfCall recognizes a direct call to math.Inf.
func isMathInfCall(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	return funcPkgPath(fn) == "math" && fn.Name() == "Inf" && sig != nil && sig.Recv() == nil
}
