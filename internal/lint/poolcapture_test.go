package lint

import "testing"

func TestPoolCaptureFixture(t *testing.T) {
	RunFixture(t, PoolCapture, ".", "poolcapture")
}
