package lint

import "testing"

func TestFloatCompareFixture(t *testing.T) {
	RunFixture(t, FloatCompare, ".", "floatcompare")
}

func TestFloatCompareMatch(t *testing.T) {
	for path, want := range map[string]bool{
		"fattree/internal/vlsi":    true,
		"fattree/internal/metrics": true,
		"fattree/internal/sim":     false,
	} {
		if got := FloatCompare.Match(path); got != want {
			t.Errorf("FloatCompare.Match(%q) = %v, want %v", path, got, want)
		}
	}
}
