package lint

import "testing"

func TestHotAllocFixture(t *testing.T) {
	RunFixture(t, HotAlloc, ".", "hotalloc")
}

func TestHotAllocMatch(t *testing.T) {
	for path, want := range map[string]bool{
		"fattree/internal/sim":          true,
		"fattree/internal/sched":        true,
		"fattree/internal/concentrator": true,
		"fattree/internal/core":         false,
		"fattree/cmd/ftsim":             false,
		"fattree":                       false,
	} {
		if got := HotAlloc.Match(path); got != want {
			t.Errorf("HotAlloc.Match(%q) = %v, want %v", path, got, want)
		}
	}
}
