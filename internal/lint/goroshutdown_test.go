package lint

import "testing"

// The goroshutdown fixture imports goroshutdown/dep, whose shutdown bits
// arrive through exported facts (RunFixture bypasses Match, as fixtures
// choose their analyzer explicitly).
func TestGoroShutdownFixture(t *testing.T) {
	RunFixture(t, GoroShutdown, ".", "goroshutdown")
}

func TestGoroShutdownMatch(t *testing.T) {
	for path, want := range map[string]bool{
		"fattree/cmd/ftserve":    true,
		"fattree/internal/par":   true,
		"fattree/internal/sim":   false,
		"fattree/internal/sched": false,
		"fattree/cmd/ftsim":      false,
		"fattree":                false,
	} {
		if got := GoroShutdown.Match(path); got != want {
			t.Errorf("GoroShutdown.Match(%q) = %v, want %v", path, got, want)
		}
	}
}
