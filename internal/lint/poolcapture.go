package lint

import (
	"go/ast"
	"go/types"
)

// PoolCapture flags closures handed to the internal/par fan-out primitives
// (Pool.ForEach, par.Map) that write to captured state other than a
// per-index result slot. The pool's contract is exactly the deterministic-
// merge discipline of the parallel engine and scheduler: distinct items may
// run on any worker in any order, so an item may write only
//
//	slot[f(i)] = …   // an element selected by the item's own index
//
// and never a shared scalar (`total += x`), a fixed element (`out[0] = x`),
// or a shared slice header (`all = append(all, x)`). Those shapes are data
// races that `go test -race` only reports when the scheduler happens to
// interleave them; this analyzer rejects them statically.
var PoolCapture = &Analyzer{
	Name: "poolcapture",
	Doc: "flags closures passed to par.Pool.ForEach / par.Map that write captured " +
		"variables other than their own per-index result slot",
	Run: runPoolCapture,
}

func runPoolCapture(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := parFanoutCallee(pass, call)
			if name == "" {
				return true
			}
			// The worker function is the trailing argument in both shapes:
			// (*Pool).ForEach(n, fn) and Map(pool, n, fn).
			if len(call.Args) == 0 {
				return true
			}
			fn, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
			if !ok {
				return true
			}
			checkPoolClosure(pass, name, fn)
			return true
		})
	}
	return nil
}

// parFanoutCallee returns "ForEach" or "Map" when call targets the par
// package's fan-out primitives (recognized at any import path ending in
// "par", so relocated fixtures match too), else "".
func parFanoutCallee(pass *Pass, call *ast.CallExpr) string {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || !pathHasSuffix(funcPkgPath(fn), "par") {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return ""
	}
	switch {
	case fn.Name() == "ForEach" && sig.Recv() != nil:
		return "ForEach"
	case fn.Name() == "Map" && sig.Recv() == nil:
		return "Map"
	}
	return ""
}

// checkPoolClosure inspects every write inside the worker closure.
func checkPoolClosure(pass *Pass, callee string, fn *ast.FuncLit) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != fn {
			return true // writes in nested closures are still writes; keep walking
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkPoolWrite(pass, callee, fn, lhs)
			}
		case *ast.IncDecStmt:
			checkPoolWrite(pass, callee, fn, n.X)
		}
		return true
	})
}

// checkPoolWrite reports lhs when it writes captured state without selecting
// the slot through any closure-local value. The slot-selection rule: a write
// is per-index if the root of the lvalue chain is declared inside the
// closure, or if any index along the chain mentions a closure-local variable
// (the index parameter or anything derived from it).
func checkPoolWrite(pass *Pass, callee string, fn *ast.FuncLit, lhs ast.Expr) {
	local := func(obj types.Object) bool { return declaredWithin(obj, fn) }

	expr := ast.Unparen(lhs)
	perIndex := false
	for {
		done := false
		switch e := expr.(type) {
		case *ast.IndexExpr:
			if usesAnyObject(pass.Info, e.Index, local) {
				perIndex = true
			}
			expr = ast.Unparen(e.X)
		case *ast.SelectorExpr:
			expr = ast.Unparen(e.X)
		case *ast.StarExpr:
			expr = ast.Unparen(e.X)
		default:
			done = true
		}
		if done {
			break
		}
	}
	id, ok := expr.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := pass.ObjectOf(id)
	if obj == nil || local(obj) || perIndex {
		return
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return
	}
	pass.Reportf(lhs.Pos(),
		"closure passed to par.%s writes captured variable %q outside its per-index slot; "+
			"write only result[i] (or an element selected by the item index) and merge after the fan-out",
		callee, id.Name)
}
