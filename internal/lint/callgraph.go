package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"
)

// This file is the shared call-graph substrate under the interprocedural
// analyzers (callgraphhotalloc, loanescape, goroshutdown): stable function
// keys that survive the trip through a gob facts file, an index from declared
// function objects to their syntax, static callee resolution, directive
// detection, and closure-capture tests. Only statically resolvable calls
// become edges — calls through func values, interface methods, and reflection
// are invisible, which is the documented blind spot of every analysis built
// here (DESIGN.md §10).

// funcKey returns the package-relative key identifying fn in exported facts:
// "Name" for package-level functions, "(T).Name" or "(*T).Name" for methods.
// The key is stable across compilations, so a fact written while analyzing
// the defining package matches the key computed from a call site in a
// dependent one.
func funcKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	ptr := ""
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
		ptr = "*"
	}
	named, ok := t.(*types.Named)
	if !ok {
		// Interface receivers and other exotica; the analyzers treat these
		// as unresolvable before keying, so the fallback is cosmetic.
		return fn.Name()
	}
	return "(" + ptr + named.Obj().Name() + ")." + fn.Name()
}

// displayKey renders fn for a diagnostic: the funcKey qualified with the
// package name when fn lives outside pass's package.
func displayKey(pass *Pass, fn *types.Func) string {
	key := funcKey(fn)
	if fn.Pkg() != nil && fn.Pkg() != pass.Pkg {
		return fn.Pkg().Name() + "." + key
	}
	return key
}

// isAbstract reports whether fn is an interface method — a callee whose
// concrete body cannot be resolved statically.
func isAbstract(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// declIndex maps every declared function and method of the package to its
// syntax, in a form the interprocedural analyzers can walk. Declarations
// without bodies (assembly stubs) are skipped.
func declIndex(pass *Pass) map[*types.Func]*ast.FuncDecl {
	idx := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				idx[fn] = fd
			}
		}
	}
	return idx
}

// declsInSourceOrder returns the keys of idx ordered by source position, so
// every traversal that iterates declared functions is deterministic.
func declsInSourceOrder(idx map[*types.Func]*ast.FuncDecl) []*types.Func {
	fns := make([]*types.Func, 0, len(idx))
	for fn := range idx {
		fns = append(fns, fn)
	}
	// Positions are unique per decl, so a simple insertion keeps it stable.
	for i := 1; i < len(fns); i++ {
		for j := i; j > 0 && idx[fns[j-1]].Pos() > idx[fns[j]].Pos(); j-- {
			fns[j-1], fns[j] = fns[j], fns[j-1]
		}
	}
	return fns
}

// staticCallees walks body and reports every statically resolvable callee —
// declared functions and concrete methods, same-package or imported — via
// visit, paired with the call expression. Calls through func values,
// builtins, conversions, and interface methods produce no edge. Bodies of
// nested function literals are included: their calls execute on behalf of the
// enclosing function (or escape with it, which the analyzers treat the same
// way, conservatively).
func staticCallees(pass *Pass, body ast.Node, visit func(call *ast.CallExpr, callee *types.Func)) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil || isAbstract(fn) {
			return true
		}
		visit(call, fn)
		return true
	})
}

// hasFuncDirective reports whether the function's doc comment carries the
// given //ftlint:<name> directive line.
func hasFuncDirective(fn *ast.FuncDecl, directive string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

// capturesVariables reports whether the function literal references any
// variable declared outside its own body (excluding package-level objects):
// a capturing literal materializes a closure on the heap each time it is
// evaluated, a non-capturing one compiles to a static function value.
func capturesVariables(pass *Pass, lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captures {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == pass.Pkg.Scope() || v.Parent() == types.Universe {
			return true // package-level or universe: not a capture
		}
		if !declaredWithin(obj, lit) {
			captures = true
			return false
		}
		return true
	})
	return captures
}

// shortPos renders pos as "file.go:line" — positions quoted inside fact
// witnesses, where the full path of the defining machine is noise by the
// time a dependent package's diagnostic prints it.
func shortPos(pass *Pass, n ast.Node) string {
	pos := pass.Fset.Position(n.Pos())
	return filepath.Base(pos.Filename) + ":" + strconv.Itoa(pos.Line)
}
