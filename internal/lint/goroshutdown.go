package lint

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// GoroShutdown pins the graceful-shutdown contract of the long-running
// subsystems: every goroutine started in cmd/ftserve or internal/par must be
// provably joinable, so SIGTERM can never strand a worker mid-simulation or
// leak a sim loop past the daemon's exit. A `go` statement passes when the
// analyzer can prove one of:
//
//   - the goroutine signals a sync.WaitGroup (a Done call, usually deferred,
//     anywhere in its body or — via call-graph facts — in a function it
//     calls), so a Wait elsewhere joins it;
//   - the goroutine is cancellable: its body (or, transitively, a callee,
//     across packages through facts) receives from ctx.Done(), selects on or
//     receives from a quit-style channel (name matching done/quit/stop/
//     shutdown/exit/cancel), or ranges over a channel (terminating when the
//     producer closes it);
//   - the spawner awaits it: the goroutine's function literal sends on or
//     closes a captured channel that the enclosing function receives from —
//     the `serveErr <- srv.Serve(ln)` / `defer close(done)` idiom.
//
// Anything else — `go func() { for { poll() } }()`, a goroutine whose callee
// is a func value the analyzer cannot resolve — is flagged. Blind spots
// (DESIGN.md §10): the proof is syntactic; a WaitGroup nobody Waits on, a
// quit channel nobody closes, or a select whose quit case never returns all
// pass. Facts export the "carries a shutdown signal" bit for every function,
// so cancellable loops may live in other packages than the go statement.
var GoroShutdown = &Analyzer{
	Name: "goroshutdown",
	Doc: "requires every goroutine in cmd/ftserve and internal/par to be provably joinable: " +
		"WaitGroup-signalled, cancellable via ctx.Done()/quit-channel select (transitively, " +
		"across packages via facts), or awaited through a channel the spawner receives from",
	NeedsFacts: true,
	Match: func(path string) bool {
		return pathHasSuffix(path, "cmd/ftserve") || pathHasSuffix(path, "internal/par")
	},
	Run: runGoroShutdown,
}

// goroFacts is the gob payload exported per package: keys of functions whose
// bodies (transitively) carry a shutdown signal.
type goroFacts struct {
	Shutdown map[string]bool
}

// quitChanName matches identifiers conventionally used for shutdown
// channels.
func quitChanName(name string) bool {
	l := strings.ToLower(name)
	for _, w := range []string{"done", "quit", "stop", "shutdown", "exit", "cancel"} {
		if strings.Contains(l, w) {
			return true
		}
	}
	return false
}

func runGoroShutdown(pass *Pass) error {
	idx := declIndex(pass)
	order := declsInSourceOrder(idx)

	// Phase 1: direct signals and call edges per declared function.
	direct := make(map[*types.Func]bool, len(idx))
	intraCalls := make(map[*types.Func][]*types.Func, len(idx))
	crossCalls := make(map[*types.Func][]*types.Func, len(idx))
	for _, fn := range order {
		decl := idx[fn]
		direct[fn] = hasDirectShutdownSignal(pass, decl.Body)
		staticCallees(pass, decl.Body, func(call *ast.CallExpr, callee *types.Func) {
			switch {
			case callee.Pkg() == pass.Pkg:
				if _, declared := idx[callee]; declared {
					intraCalls[fn] = append(intraCalls[fn], callee)
				}
			case callee.Pkg() != nil:
				crossCalls[fn] = append(crossCalls[fn], callee)
			}
		})
	}

	// Phase 2: transitive closure, consulting imported facts.
	imported := make(map[string]*goroFacts)
	factsFor := func(pkgPath string) *goroFacts {
		if f, ok := imported[pkgPath]; ok {
			return f
		}
		f := decodeGoroFacts(pass.ImportFacts(pkgPath))
		imported[pkgPath] = f
		return f
	}
	calleeShutdown := func(fn *types.Func) bool {
		f := factsFor(fn.Pkg().Path())
		return f != nil && f.Shutdown[funcKey(fn)]
	}
	shutdown := make(map[*types.Func]bool, len(idx))
	state := make(map[*types.Func]int, len(idx))
	var resolve func(fn *types.Func) bool
	resolve = func(fn *types.Func) bool {
		if state[fn] == 2 {
			return shutdown[fn]
		}
		if state[fn] == 1 {
			return false
		}
		state[fn] = 1
		ok := direct[fn]
		if !ok {
			for _, callee := range intraCalls[fn] {
				if resolve(callee) {
					ok = true
					break
				}
			}
		}
		if !ok {
			for _, callee := range crossCalls[fn] {
				if calleeShutdown(callee) {
					ok = true
					break
				}
			}
		}
		state[fn] = 2
		shutdown[fn] = ok
		return ok
	}
	for _, fn := range order {
		resolve(fn)
	}

	out := goroFacts{Shutdown: make(map[string]bool)}
	for fn, ok := range shutdown {
		if ok {
			out.Shutdown[funcKey(fn)] = true
		}
	}
	if len(out.Shutdown) > 0 {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(out); err != nil {
			return fmt.Errorf("encoding goroshutdown facts: %v", err)
		}
		pass.ExportFacts(buf.Bytes())
	}
	if pass.FactsOnly {
		return nil
	}

	// Phase 3: every go statement must be provable.
	for _, fn := range order {
		decl := idx[fn]
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(pass, g, decl.Body, func(callee *types.Func) bool {
				if callee.Pkg() == pass.Pkg {
					if _, declared := idx[callee]; declared {
						return resolve(callee)
					}
					return false
				}
				return calleeShutdown(callee)
			})
			return true
		})
	}
	return nil
}

// checkGoStmt proves one go statement joinable or reports it. enclosing is
// the body of the function containing the statement (for the spawner-awaits
// pattern); calleeOK resolves named callees to their transitive shutdown
// fact.
func checkGoStmt(pass *Pass, g *ast.GoStmt, enclosing *ast.BlockStmt, calleeOK func(*types.Func) bool) {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		if hasDirectShutdownSignal(pass, lit.Body) {
			return
		}
		// Transitive: a callee of the literal body carries the signal.
		found := false
		staticCallees(pass, lit.Body, func(_ *ast.CallExpr, callee *types.Func) {
			if !found && callee.Pkg() != nil && calleeOK(callee) {
				found = true
			}
		})
		if found {
			return
		}
		if spawnerAwaits(pass, lit, enclosing) {
			return
		}
		pass.Reportf(g.Pos(),
			"goroutine is not provably joinable: no WaitGroup signal, no ctx.Done()/quit-channel select, and the spawner never receives from a channel it closes or sends on; plumb a shutdown signal")
		return
	}
	// Named function or method: its (transitive) fact must carry the signal.
	if fn := calleeFunc(pass.Info, g.Call); fn != nil && !isAbstract(fn) {
		if calleeOK(fn) {
			return
		}
		pass.Reportf(g.Pos(),
			"goroutine runs %s, which carries no shutdown signal (no WaitGroup Done, ctx.Done()/quit-channel select, or channel range on any static call path); plumb one through or join it explicitly",
			displayKey(pass, fn))
		return
	}
	pass.Reportf(g.Pos(),
		"goroutine target cannot be resolved statically (func value or interface method), so joinability is unprovable; spawn a named function or an inline literal with a shutdown signal")
}

// hasDirectShutdownSignal reports whether body itself contains a joinability
// signal: a (*sync.WaitGroup).Done call, a receive from ctx.Done(), a select
// or unary receive involving a quit-style channel, or a range over a
// channel.
func hasDirectShutdownSignal(pass *Pass, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(pass.Info, n); fn != nil {
				if fn.Name() == "Done" && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
					found = true // wg.Done(): joined by a Wait
					return false
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" && isShutdownChan(pass, n.X) {
				found = true
				return false
			}
		case *ast.SelectStmt:
			for _, clause := range n.Body.List {
				comm, ok := clause.(*ast.CommClause)
				if !ok || comm.Comm == nil {
					continue
				}
				if recvFrom := receiveOperand(comm.Comm); recvFrom != nil && isShutdownChan(pass, recvFrom) {
					found = true
					return false
				}
			}
		case *ast.RangeStmt:
			if t := pass.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true // terminates when the producer closes
					return false
				}
			}
		}
		return true
	})
	return found
}

// receiveOperand extracts the channel expression of a receive comm clause
// (`case <-c:` or `case v := <-c:`), or nil.
func receiveOperand(comm ast.Stmt) ast.Expr {
	switch s := comm.(type) {
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok && u.Op.String() == "<-" {
			return u.X
		}
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if u, ok := ast.Unparen(s.Rhs[0]).(*ast.UnaryExpr); ok && u.Op.String() == "<-" {
				return u.X
			}
		}
	}
	return nil
}

// isShutdownChan reports whether e denotes a cancellation source: ctx.Done()
// for a context.Context, or a channel identifier named like a quit channel.
func isShutdownChan(pass *Pass, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if fn := calleeFunc(pass.Info, e); fn != nil {
			return fn.Name() == "Done" && fn.Pkg() != nil && fn.Pkg().Path() == "context"
		}
	case *ast.Ident:
		return quitChanName(e.Name)
	case *ast.SelectorExpr:
		return quitChanName(e.Sel.Name)
	}
	return false
}

// spawnerAwaits reports whether the goroutine literal signals its completion
// through a channel the enclosing function receives from: the body sends on
// or closes a captured channel object that `enclosing` receives from via a
// unary receive, a select case, or a range.
func spawnerAwaits(pass *Pass, lit *ast.FuncLit, enclosing *ast.BlockStmt) bool {
	// Channels the literal signals on.
	signalled := make(map[types.Object]bool)
	record := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil && !declaredWithin(obj, lit) {
				signalled[obj] = true
			}
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			record(n.Chan)
		case *ast.CallExpr:
			if builtinName(pass, n) == "close" && len(n.Args) == 1 {
				record(n.Args[0])
			}
		}
		return true
	})
	if len(signalled) == 0 {
		return false
	}
	// Receives in the enclosing function over any of them.
	uses := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		obj := pass.Info.Uses[id]
		return obj != nil && signalled[obj]
	}
	awaited := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if awaited {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" && uses(n.X) {
				awaited = true
			}
		case *ast.RangeStmt:
			if uses(n.X) {
				awaited = true
			}
		}
		return true
	})
	return awaited
}

// decodeGoroFacts parses an imported fact payload; nil in, nil out.
func decodeGoroFacts(payload []byte) *goroFacts {
	if len(payload) == 0 {
		return nil
	}
	var f goroFacts
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&f); err != nil {
		return nil
	}
	return &f
}
