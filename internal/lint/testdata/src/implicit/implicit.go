// Package implicit models the implicit-topology streaming engine's hot
// shard loops (internal/sim/stream.go): a per-level capacity profile with a
// sparse override overlay, persistent scatter buffers that are reused across
// cycles, and a lazily materialized special-switch table. The fixture pins
// what the call-graph analyzer must and must not report on this shape —
// field-backed append reuse and map probes are clean, fresh-slice growth and
// lazy map materialization reached from a hot root are diagnosed, and the
// sanctioned lazy table carries an //ftlint:ignore.
package implicit

// state is the streaming engine's per-topology state: O(levels) profile,
// sparse overrides, persistent per-cycle scratch.
type state struct {
	levelCaps []int
	ov        map[int]int
	keys      []uint64
	special   map[int]int
}

// levelOf stands in for bits.Len arithmetic; pure and allocation-free.
func levelOf(v int) int {
	k := 0
	for v > 1 {
		v >>= 1
		k++
	}
	return k
}

// capAt probes the override overlay then the per-level profile: map reads
// and slice indexing allocate nothing, so a hot root may call it freely.
//
//ftlint:hotpath
func (st *state) capAt(v int) int {
	if st.ov != nil {
		if c, ok := st.ov[v]; ok {
			return c
		}
	}
	return st.levelCaps[levelOf(v)]
}

// scatter appends to the persistent field buffer — arena reuse at its
// high-water mark, not growth of a fresh local — and must stay clean.
//
//ftlint:hotpath
func (st *state) scatter(flights []int) {
	st.keys = st.keys[:0]
	for i, v := range flights {
		st.keys = append(st.keys, uint64(v)<<32|uint64(uint32(i)))
	}
}

// gatherRuns grows a fresh local per call; reached from the hot route loop
// below, it is the classic per-cycle allocation the streaming engine must
// avoid.
func gatherRuns(keys []uint64) []int {
	var runs []int
	for i := range keys {
		if i == 0 || keys[i]>>32 != keys[i-1]>>32 {
			runs = append(runs, i) // want `grows fresh local slice "runs" with append on a hot path: gatherRuns is reachable from //ftlint:hotpath \(\*state\)\.route`
		}
	}
	return runs
}

// materialize builds the lazy special-switch table without a sanction; the
// map allocation is attributed to the hot root that reaches it.
func (st *state) materialize(v int) int {
	if st.special == nil {
		st.special = make(map[int]int) // want `allocates a map on a hot path: \(\*state\)\.materialize is reachable from //ftlint:hotpath \(\*state\)\.route`
	}
	st.special[v] = st.capAt(v)
	return st.special[v]
}

// route is the hot shard loop: reuse is fine, the fresh slice and the
// unsanctioned lazy map are not.
//
//ftlint:hotpath
func (st *state) route(flights []int) int {
	st.scatter(flights)
	runs := gatherRuns(st.keys)
	total := 0
	for _, r := range runs {
		total += st.materialize(int(st.keys[r] >> 32))
	}
	return total
}

// sanctioned is the same lazy-table pattern with the escape hatch the real
// engine uses: a one-time materialization documented in place.
func (st *state) sanctioned(v int) int {
	if st.special == nil {
		//ftlint:ignore callgraphhotalloc one-time lazy table: populated on first contest, never on the steady state
		st.special = make(map[int]int)
	}
	return st.special[v]
}

// routeSanctioned exercises the ignore path end to end; no diagnostics.
//
//ftlint:hotpath
func (st *state) routeSanctioned(v int) int {
	return st.sanctioned(v) + st.capAt(v)
}
