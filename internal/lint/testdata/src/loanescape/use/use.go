// Package use exercises every loanescape rule against loans from the api
// package (known only through facts) and from a local re-loaning function.
package use

import "loanescape/api"

var owner api.Owner

var leakedGlobal = owner.Loan() // want `package-level variable initialized with a loan from //ftlint:loan api\.\(\*Owner\)\.Loan; loans die at the owner's next call`

var savedGlobal = owner.Loan().Clone() // laundered through Clone(): independently owned

var freshGlobal = api.Fresh() // not a loan: fine

var latest *api.Schedule

type cache struct {
	sched *api.Schedule
	byKey map[int]*api.Schedule
}

// fill stores loans straight from the call into every escaping destination.
func (c *cache) fill(o *api.Owner, key int) {
	c.sched = o.Loan()      // want `loan from //ftlint:loan api\.\(\*Owner\)\.Loan stored into struct field "sched"`
	latest = o.Loan()       // want `loan from //ftlint:loan api\.\(\*Owner\)\.Loan stored into package-level variable "latest"`
	c.byKey[key] = o.Loan() // want `loan from //ftlint:loan api\.\(\*Owner\)\.Loan stored into a map element`
	c.sched = o.Loan().Clone()
}

// track follows the loan through a local variable, and sees the release when
// the variable is reassigned with an owned value.
func (c *cache) track(o *api.Owner) {
	s := o.Loan()
	c.sched = s // want `loan from //ftlint:loan api\.\(\*Owner\)\.Loan stored into struct field "sched"`
	s = s.Clone()
	c.sched = s // reassigned with an owned value: fine
}

// snapshot re-loans without declaring it.
func snapshot(o *api.Owner) *api.Schedule {
	return o.Loan() // want `returns a loan from //ftlint:loan api\.\(\*Owner\)\.Loan, but snapshot is not annotated //ftlint:loan`
}

// reloan declares the re-loan, so its returns are fine — and its own callers
// are now tracked through the local loan set.
//
//ftlint:loan
func reloan(o *api.Owner) *api.Schedule {
	return o.Loan()
}

// keep shows a local //ftlint:loan function's result escaping: the source in
// the diagnostic is unqualified because the annotation is in this package.
func keep(o *api.Owner) {
	s := reloan(o)
	latest = s // want `loan from //ftlint:loan reloan stored into package-level variable "latest"`
}

// fanOut hands loans to goroutines, as an argument and by capture.
func fanOut(o *api.Owner) {
	s := o.Loan()
	go consume(s) // want `loan from //ftlint:loan api\.\(\*Owner\)\.Loan passed to a goroutine, which may outlive it`
	go func() {
		n := len(s.Cycles) // want `loaned value "s" \(from //ftlint:loan api\.\(\*Owner\)\.Loan\) captured by a goroutine, which may outlive it`
		_ = n
	}()
	go consume(s.Clone()) // laundered before the handoff: fine
}

func consume(s *api.Schedule) { _ = s }

// local consumes a loan before the owner's next call — the sanctioned
// pattern; var-declaration tracking keeps it quiet, not blindness.
func local(o *api.Owner) int {
	var s = o.Loan()
	return len(s.Cycles)
}

// facade mirrors the repo's package-level wrappers: a fresh Owner per call
// makes the loan independently owned, recorded with a sanctioned ignore.
func facade() *api.Schedule {
	//ftlint:ignore loanescape fresh Owner per call: its arena is unreachable elsewhere
	return new(api.Owner).Loan()
}
