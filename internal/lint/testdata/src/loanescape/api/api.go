// Package api is the imported half of the loanescape fixtures: the
// //ftlint:loan annotations live here, and the use package must learn them
// through exported facts, exactly as cmd/ftbench learns internal/sched's.
package api

// Schedule mimics an arena-backed result with the sanctioned Clone() escape
// hatch.
type Schedule struct {
	Cycles []int
}

// Clone returns an independently owned deep copy.
func (s *Schedule) Clone() *Schedule {
	out := &Schedule{Cycles: make([]int, len(s.Cycles))}
	copy(out.Cycles, s.Cycles)
	return out
}

// Owner mimics a Scheduler: loans point into its arena.
type Owner struct {
	arena Schedule
}

// Loan returns a view of the arena, valid until the next call on the owner.
//
//ftlint:loan
func (o *Owner) Loan() *Schedule {
	return &o.arena
}

// Fresh is not a loan: every call returns an independently owned value.
func Fresh() *Schedule {
	return &Schedule{}
}
