// Package errdiscard is the fixture for the errdiscard analyzer: dropped
// errors in user-facing layers hide truncated output.
package errdiscard

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"
)

func uncheckedFprintf(w io.Writer) {
	fmt.Fprintf(w, "x=%d\n", 1) // want `error result of fmt\.Fprintf is unchecked`
}

func uncheckedFprintln(w io.Writer) {
	fmt.Fprintln(w, "row") // want `error result of fmt\.Fprintln is unchecked`
}

func blankPair(w io.Writer) {
	_, _ = fmt.Fprintln(w, "hi") // want `error result of fmt\.Fprintln discarded`
}

func blankSingle(f *os.File) {
	_ = f.Sync() // want `error result of \*os\.File\.Sync discarded`
}

func blankErrValue(err error) {
	_ = err // want `error value discarded`
}

func uncheckedMethod(f *os.File) {
	f.Sync() // want `error result of \*os\.File\.Sync is unchecked`
}

func stderrDiagnostics() {
	fmt.Fprintln(os.Stderr, "diag") // best-effort diagnostics: legal
	fmt.Fprintf(os.Stdout, "out\n")
}

func consoleOutput() {
	fmt.Println("hello") // console stdout: legal
}

func inMemorySinks(b *strings.Builder, buf *bytes.Buffer) {
	fmt.Fprintf(b, "x")   // *strings.Builder never fails: legal
	fmt.Fprintf(buf, "y") // *bytes.Buffer never fails: legal
	b.WriteString("z")
	buf.WriteByte('w')
}

func deferredClose(f *os.File) {
	defer f.Close() // conventional on read paths: legal
}

func handled(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "x"); err != nil {
		return err
	}
	return nil
}
