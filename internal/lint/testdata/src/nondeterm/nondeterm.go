// Package nondeterm is the fixture for the nondeterm analyzer: global
// math/rand calls, the clock, and order-sensitive map iteration are flagged;
// seeded streams and order-free reductions are not.
package nondeterm

import (
	"math/rand"
	"sort"
	"time"
)

func globalRand() int {
	return rand.Intn(10) // want `global math/rand\.Intn`
}

func globalPerm(n int) []int {
	return rand.Perm(n) // want `global math/rand\.Perm`
}

func clock() int64 {
	return time.Now().UnixNano() // want `time\.Now`
}

func clockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `time\.Now`
}

func seededStream(seed int64, node int) *rand.Rand {
	return rand.New(rand.NewSource(seed + int64(node))) // sanctioned (seed, node) stream
}

func mapToSlice(m map[int]int) []int {
	var out []int
	for k := range m { // want `map iteration feeds ordered output \(append\)`
		out = append(out, k)
	}
	return out
}

func mapToIndexed(m map[int]string, out []string) {
	for k, v := range m { // want `map iteration feeds ordered output \(slice element write\)`
		out[k%len(out)] = v
	}
}

func mapToChannel(m map[int]int, ch chan int) {
	for _, v := range m { // want `map iteration feeds ordered output \(channel send\)`
		ch <- v
	}
}

func mapReduce(m map[int]int) int {
	total := 0
	for _, v := range m { // order-free reduction: legal
		total += v
	}
	return total
}

func mapClear(m map[int]int) int {
	n := 0
	for range m { // no element data escapes: legal
		n++
	}
	return n
}

func sortedKeys(m map[int]int) []int {
	// The collect-then-sort idiom still trips the analyzer by design: the
	// deterministic packages should carry the sort next to the collection
	// and annotate the sanctioned site.
	var keys []int
	//ftlint:ignore nondeterm keys are sorted immediately below
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
