// Package a holds the hot roots of the callgraph fixtures. Its
// //ftlint:hotpath functions reach allocations directly, through
// same-package helpers, and — via the facts exported by package b — across
// the package boundary.
package a

import (
	"fmt"

	"callgraph/b"
)

// visit takes a func value, so the call through it produces no edge; the
// closure literal built at the call site is the allocation under test.
func visit(f func(int)) { f(0) }

// route's own body trips the two rules the intraprocedural analyzer does not
// cover (fmt and capturing closures); its map stays with hotalloc, so
// callgraphhotalloc must not double-report it.
//
//ftlint:hotpath
func route(msgs []int) string {
	seen := make(map[int]bool, len(msgs)) // intraprocedural hotalloc's rule: not reported here
	for _, m := range msgs {
		seen[m] = true
	}
	n := 0
	visit(func(i int) { n += i + len(msgs) }) // want `hot path creates a capturing closure \(//ftlint:hotpath route\)`
	return fmt.Sprintf("%d/%d", n, len(seen)) // want `hot path calls fmt\.Sprintf \(allocates its result\) \(//ftlint:hotpath route\)`
}

// fill is not annotated; its allocation is attributed to the hot root that
// reaches it.
func fill(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i) // want `grows fresh local slice "out" with append on a hot path: fill is reachable from //ftlint:hotpath deliver`
	}
	return out
}

// deliver reaches fill's growth one hop down and b's allocations across the
// package boundary, through facts.
//
//ftlint:hotpath
func deliver(n int) int {
	out := fill(n)
	m := b.Build(n) // want `hot path reaches an allocation in another package: b\.Build → allocates a map at b\.go:\d+ \(reachable from //ftlint:hotpath deliver\)`
	k := b.Outer(n) // want `hot path reaches an allocation in another package: b\.Outer → inner → grows fresh local slice "out" with append at b\.go:\d+ \(reachable from //ftlint:hotpath deliver\)`
	return len(out) + len(m) + k + b.Clean(n)
}

type engine struct {
	scratch []int
	limit   int
}

// step's helper allocates only inside a panic argument tree, which is
// exempt, and its own fmt call carries a sanctioned //ftlint:ignore.
//
//ftlint:hotpath
func (e *engine) step(n int) int {
	e.check(n)
	//ftlint:ignore callgraphhotalloc fixture-sanctioned warm-up formatting
	s := fmt.Sprint(n)
	return len(s)
}

func (e *engine) check(n int) {
	if n > e.limit {
		panic(fmt.Sprintf("step %d exceeds limit %d", n, e.limit)) // crash path: exempt
	}
}

// drain is allocation-free end to end: pooled-scratch reslice in its own
// body, an allocation-free callee across the boundary. Nothing is flagged.
//
//ftlint:hotpath
func (e *engine) drain(msgs []int) int {
	buf := e.scratch[:0]
	for _, m := range msgs {
		buf = append(buf, m)
	}
	e.scratch = buf
	return b.Clean(len(buf))
}
