// Package b is the imported half of the callgraph fixtures. It is analyzed
// facts-only — no diagnostics are expected here — but its allocation
// witnesses must reach package a through the exported facts payload, exactly
// as internal/concentrator's reach internal/sim in the real repo.
package b

// Build allocates a map directly; the witness package a sees is one hop.
func Build(n int) map[int]int {
	m := make(map[int]int, n)
	for i := 0; i < n; i++ {
		m[i] = i
	}
	return m
}

// Outer allocates two hops deep, so package a's diagnostic quotes a chained
// witness: Outer → inner → the append site.
func Outer(n int) int { return inner(n) }

func inner(n int) int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return len(out)
}

// Clean is allocation-free on every static path; hot callers are fine.
func Clean(n int) int { return 2 * n }
