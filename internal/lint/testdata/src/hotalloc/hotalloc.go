// Package hotalloc exercises the hotalloc analyzer: per-cycle allocation
// patterns inside functions annotated //ftlint:hotpath.
package hotalloc

// engine mimics a simulator with pooled scratch buffers.
type engine struct {
	scratch []int
	seen    []int64
	gen     int64
}

// route is a hot function committing both sins: transient map state and
// fresh-local-slice growth.
//
//ftlint:hotpath
func (e *engine) route(active []int) int {
	seen := make(map[int]bool, len(active)) // want `hot path allocates a map`
	var out []int
	for _, w := range active {
		if seen[w] {
			continue
		}
		seen[w] = true
		out = append(out, w) // want `grows fresh local slice "out"`
	}
	return len(out)
}

// routeLiterals covers the other fresh initializers: an empty composite
// literal, a zero-length make, and a map literal.
//
//ftlint:hotpath
func (e *engine) routeLiterals(active []int) int {
	dup := map[int]int{} // want `hot path allocates a map`
	a := []int{}
	b := make([]int, 0)
	for i, w := range active {
		dup[w] = i
		a = append(a, w) // want `grows fresh local slice "a"`
		b = append(b, w) // want `grows fresh local slice "b"`
	}
	return len(a) + len(b)
}

// routePooled is the sanctioned form: epoch-stamped guards and appends to a
// reslice of pooled scratch. Nothing is flagged.
//
//ftlint:hotpath
func (e *engine) routePooled(active []int) int {
	e.gen++
	buf := e.scratch[:0]
	for _, w := range active {
		if e.seen[w] == e.gen {
			continue
		}
		e.seen[w] = e.gen
		buf = append(buf, w) // reslice of pooled storage: exempt
	}
	e.scratch = buf
	return len(buf)
}

// results shows that named results and parameters are exempt append bases —
// building a caller-retained result is legitimate even on the hot path.
//
//ftlint:hotpath
func results(active []int, acc []int) (out []int) {
	for _, w := range active {
		out = append(out, w)
		acc = append(acc, w)
	}
	_ = acc
	return out
}

// warmUp carries a sanctioned one-time allocation behind an ignore
// directive.
//
//ftlint:hotpath
func warmUp(n int) int {
	//ftlint:ignore hotalloc one-time warm-up table build, not per-cycle
	table := make(map[int]int, n)
	for i := 0; i < n; i++ {
		table[i] = i
	}
	return len(table)
}

// sink models an observer interface a hot function might report into.
type sink interface{ observe(v int) }

// tally implements sink with a pointer receiver: handing a *tally to an
// interface stores the pointer directly, no allocation.
type tally struct{ n int }

func (t *tally) observe(v int) { t.n += v }

// sample implements sink by value: boxing a sample copies it to the heap.
type sample struct{ n int }

func (s sample) observe(int) {}

func emit(s sink)                        {}
func record(tag string, vs ...sink)      {}
func describe(msg string, s sink) string { return msg }

// routeObserved exercises the interface-boxing rule: value types handed to
// interface parameters, variadic slots, and explicit conversions are flagged;
// nil-guarded concrete pointers, nil literals, constants, and pass-through
// variadic slices are the sanctioned forms and pass.
//
//ftlint:hotpath
func (e *engine) routeObserved(active []int, obs *tally) int {
	if obs != nil {
		emit(obs) // concrete pointer into interface: no allocation, exempt
	}
	emit(nil) // untyped nil: exempt
	for _, w := range active {
		emit(sample{n: w})        // want `boxes non-pointer sample into an interface`
		record("cycle", sample{}) // want `boxes non-pointer sample into an interface`
		_ = sink(sample{n: w})    // want `boxes non-pointer sample into an interface`
		_ = any(w)                // want `boxes non-pointer int into an interface`
	}
	record("const-tag") // constant string tag only: exempt
	pool := []sink{obs}
	record("spread", pool...) // xs... passes the slice through: exempt
	return len(active)
}

// guarded shows the crash-path exemption: everything under a panic call is
// skipped, including interface boxing in the arguments that build the
// message.
//
//ftlint:hotpath
func guarded(obs *tally, s sample) {
	if obs == nil {
		panic(describe("nil observer", s)) // boxing inside panic: exempt
	}
	emit(obs)
}

// msg and scheduler mimic the sched arena (DESIGN.md §9): ping-pong message
// slabs, an int32 boundary slab carved into per-node regions, and reusable
// cycle headers.
type msg struct{ src, dst int }

type scheduler struct {
	groupA, groupB []msg
	bndSlab        []int32
	cycles         [][]msg
}

// partitionNaive is the pre-arena shape of the even-bisection loop: a
// per-call grouping map and a fresh boundary list, both flagged.
//
//ftlint:hotpath
func (s *scheduler) partitionNaive(q []msg) int {
	byNode := make(map[int][]msg, len(q)) // want `hot path allocates a map`
	var bnd []int32
	for i, m := range q {
		byNode[m.src] = append(byNode[m.src], m)
		bnd = append(bnd, int32(i)) // want `grows fresh local slice "bnd"`
	}
	return len(byNode) + len(bnd)
}

// partitionArena is the sanctioned scheduler form: boundary lists are carved
// from the pooled slab, messages ping-pong between pooled group slabs, and
// cycle headers append to a pooled field. Nothing is flagged.
//
//ftlint:hotpath
func (s *scheduler) partitionArena(q []msg) int {
	bnd := s.bndSlab[:0]
	buf := s.groupA[:0]
	for i, m := range q {
		bnd = append(bnd, int32(i))
		buf = append(buf, m)
	}
	s.bndSlab, s.groupA = bnd, buf
	s.cycles = append(s.cycles, buf) // append to pooled field: exempt
	return len(bnd)
}

// cold is not annotated, so identical patterns pass: the analyzer only
// polices declared hot paths.
func cold(active []int) []int {
	seen := make(map[int]bool)
	var out []int
	for _, w := range active {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}
