// Package goroshutdown exercises every joinability proof and every failure
// mode of the goroshutdown analyzer.
package goroshutdown

import (
	"context"
	"sync"

	"goroshutdown/dep"
)

func poll() {}

// leaky spins forever with no signal anywhere in reach.
func leaky() {
	go func() { // want `goroutine is not provably joinable`
		for {
			poll()
		}
	}()
}

// waitGroup passes on the WaitGroup proof: Done anywhere in the body.
func waitGroup(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			poll()
		}()
	}
	wg.Wait()
}

// cancellable passes on the ctx.Done() receive.
func cancellable(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				poll()
			}
		}
	}()
}

// quitChannel passes on the quit-style channel-name heuristic.
func quitChannel(quit chan struct{}) {
	go func() {
		for {
			select {
			case <-quit:
				return
			default:
				poll()
			}
		}
	}()
}

// ranger passes because ranging over a channel ends when the producer closes.
func ranger(jobs chan int) {
	go func() {
		for range jobs {
			poll()
		}
	}()
}

// spawnerAwaited passes on the third proof: the literal sends on a captured
// channel the enclosing function receives from (the serve-error idiom). The
// channel name deliberately matches no quit-style word.
func spawnerAwaited() error {
	errc := make(chan error, 1)
	go func() {
		errc <- run()
	}()
	return <-errc
}

func run() error { return nil }

// transitive passes through the call graph: the named callee reaches a
// quit-channel select two frames down.
func transitive(quit chan struct{}) {
	go worker(quit)
}

func worker(quit chan struct{}) {
	inner(quit)
}

func inner(quit chan struct{}) {
	for {
		select {
		case <-quit:
			return
		default:
			poll()
		}
	}
}

// crossPackage relies on facts: dep.Loop's shutdown bit crossed the package
// boundary; dep.Spin's absence of one is just as visible.
func crossPackage(quit chan struct{}) {
	go dep.Loop(quit, poll)
	go func() {
		dep.Loop(quit, poll)
	}()
	go dep.Spin(poll) // want `goroutine runs dep\.Spin, which carries no shutdown signal`
}

// named spawns a resolvable callee with no signal on any path.
func named() {
	go poll() // want `goroutine runs poll, which carries no shutdown signal`
}

// funcValue cannot be resolved statically, so joinability is unprovable.
func funcValue(f func()) {
	go f() // want `goroutine target cannot be resolved statically`
}
