// Package dep holds loop bodies whose shutdown bits must reach the
// goroshutdown fixture through exported facts.
package dep

// Loop selects on its quit channel, so its "carries a shutdown signal" fact
// is exported and spawners in other packages may rely on it.
func Loop(quit chan struct{}, work func()) {
	for {
		select {
		case <-quit:
			return
		default:
			work()
		}
	}
}

// Spin never checks anything; spawning it is a leak wherever it happens.
func Spin(work func()) {
	for {
		work()
	}
}
