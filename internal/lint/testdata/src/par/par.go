// Package par is a fixture stand-in for fattree/internal/par with the same
// fan-out API surface, so the poolcapture fixture type-checks without
// importing the real module.
package par

type Pool struct{ workers int }

func New(workers int) *Pool { return &Pool{workers: workers} }

func (p *Pool) Workers() int { return p.workers }

func (p *Pool) ForEach(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

func Map[T any](p *Pool, n int, fn func(i int) T) []T {
	out := make([]T, n)
	p.ForEach(n, func(i int) {
		out[i] = fn(i)
	})
	return out
}
