// Package poolcapture is the fixture for the poolcapture analyzer: closures
// on the par fan-out primitives may write only per-index slots.
package poolcapture

import "par"

func sharedScalar(p *par.Pool, n int) int {
	total := 0
	p.ForEach(n, func(i int) {
		total += i // want `captured variable "total"`
	})
	return total
}

func sharedIncrement(p *par.Pool, n int) int {
	count := 0
	p.ForEach(n, func(i int) {
		count++ // want `captured variable "count"`
	})
	return count
}

func fixedSlot(p *par.Pool, n int, out []int) {
	p.ForEach(n, func(i int) {
		out[0] = i // want `captured variable "out"`
	})
}

func sharedAppend(p *par.Pool, n int) []int {
	var all []int
	p.ForEach(n, func(i int) {
		all = append(all, i) // want `captured variable "all"`
	})
	return all
}

func mapWriteInsideMap(p *par.Pool, n int) []int {
	seen := 0
	return par.Map(p, n, func(i int) int {
		seen++ // want `captured variable "seen"`
		return seen
	})
}

func perIndexSlot(p *par.Pool, n int) []int {
	out := make([]int, n)
	p.ForEach(n, func(i int) {
		out[i] = i * i // the sanctioned pattern
	})
	return out
}

func derivedIndexSlot(p *par.Pool, nodes, dropped []int) {
	// The engine's level-sharding shape: the slot index is derived from the
	// item index through a closure-local value.
	p.ForEach(len(nodes), func(k int) {
		v := nodes[k]
		dropped[v] = v
	})
}

func localState(p *par.Pool, n int, out []int) {
	p.ForEach(n, func(i int) {
		acc := 0
		for j := 0; j < i; j++ {
			acc += j
		}
		out[i] = acc
	})
}

func structSlot(p *par.Pool, results []struct{ Sum int }) {
	p.ForEach(len(results), func(i int) {
		results[i].Sum = i // per-index field write: legal
	})
}

func sharedStructField(p *par.Pool, n int, agg *struct{ Sum int }) {
	p.ForEach(n, func(i int) {
		agg.Sum += i // want `captured variable "agg"`
	})
}
