// Package seedplumbing is the fixture for the seedplumbing analyzer: every
// RNG stream must derive its seed from a plumbed parameter or parent stream.
package seedplumbing

import (
	"math/rand"
	"time"
)

func constantSeed() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want `seeded from a constant or the clock`
}

func clockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `seeded from a constant or the clock`
}

const fixedSeed = 7

func namedConstantSeed() *rand.Rand {
	return rand.New(rand.NewSource(fixedSeed)) // want `seeded from a constant or the clock`
}

var processSeed int64

func packageVarSeed() *rand.Rand {
	return rand.New(rand.NewSource(processSeed)) // want `seeded from a constant or the clock`
}

func plumbedSeed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func derivedStream(seed int64, node int) *rand.Rand {
	return rand.New(rand.NewSource(seed + int64(3*node)))
}

type sw struct{ seed int64 }

func (s *sw) stream() *rand.Rand {
	return rand.New(rand.NewSource(s.seed ^ 0x9e3779b9))
}

func parentStream(parent *rand.Rand) *rand.Rand {
	return rand.New(rand.NewSource(parent.Int63()))
}

func localDerived(seed int64) *rand.Rand {
	mixed := seed*6364136223846793005 + 1442695040888963407
	return rand.New(rand.NewSource(mixed))
}
