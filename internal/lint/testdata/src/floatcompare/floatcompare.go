// Package floatcompare is the fixture for the floatcompare analyzer.
package floatcompare

import "math"

func exactEqual(a, b float64) bool {
	return a == b // want `floating-point == comparison`
}

func exactNotEqual(a float64) bool {
	return a != 0 // want `floating-point != comparison`
}

func float32Equal(a, b float32) bool {
	return a == b // want `floating-point == comparison`
}

func mixedExpr(a, b float64) bool {
	return a*2 == b+1 // want `floating-point == comparison`
}

func nanTest(a float64) bool {
	return a != a // the NaN test: legal
}

func infTest(a float64) bool {
	return a == math.Inf(1) // infinities compare exactly: legal
}

func intEqual(a, b int) bool {
	return a == b // integers: not our business
}

func constFold() bool {
	return 0.1+0.2 == 0.3 // both sides constant: compile-time exact
}

func tolerance(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9 // the sanctioned form
}

func ordering(a, b float64) bool {
	return a < b // ordering comparisons are fine
}
