package lint

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// LoanEscape turns the arena ownership prose of DESIGN.md §7/§9 into
// diagnostics. A function annotated //ftlint:loan returns a loan: a value
// backed by the callee's scratch arena, valid only until the next call on the
// same owner (Scheduler.OffLine, Scheduler.Compact, and the engine's
// arena-backed accessors are the canonical cases). Retaining a loan past its
// call site is the silent-aliasing bug the arena rewrites made possible, so
// this analyzer flags every retention it can see statically:
//
//   - storing a loan (the call result, or a local variable holding one) into
//     a struct field, a package-level variable, or a map element;
//   - initializing a package-level variable with a loan;
//   - handing a loan to a goroutine — as an argument, or captured by the
//     go statement's function literal;
//   - returning a loan from a function that is not itself annotated
//     //ftlint:loan (re-loaning must be declared, so callers two hops away
//     still see the contract).
//
// The sanctioned escape hatch is laundering through Clone():
// `sc.OffLine(ms).Clone()` or `owned := s.Clone()` produce independently
// owned values and are never flagged. Which functions are loans crosses
// package boundaries through facts, so `cmd/ftbench` storing a schedule
// loaned by `internal/sched` is caught even though the annotation lives in
// the other package.
//
// Blind spots (DESIGN.md §10): tracking is per-variable and flow-insensitive
// beyond direct reassignment — values derived from a loan (s.Cycles[0]), a
// loan smuggled through an unannotated helper's parameter, and captures by
// closures that escape without a go statement are not seen.
var LoanEscape = &Analyzer{
	Name: "loanescape",
	Doc: "flags results of //ftlint:loan functions (arena-backed loans, valid until the owner's " +
		"next call) stored into fields, globals, or maps, handed to goroutines, or returned " +
		"from unannotated functions, unless laundered through Clone()",
	NeedsFacts: true,
	Run:        runLoanEscape,
}

// loanDirective marks a function whose results are loans from its receiver's
// (or an internal) arena.
const loanDirective = "//ftlint:loan"

// loanFacts is the gob payload exported per package: the keys of every
// //ftlint:loan function, so dependent packages recognize loan calls.
type loanFacts struct {
	Loans map[string]bool
}

func runLoanEscape(pass *Pass) error {
	idx := declIndex(pass)
	order := declsInSourceOrder(idx)

	// Local loan set + facts export.
	localLoans := make(map[*types.Func]bool)
	exported := loanFacts{Loans: make(map[string]bool)}
	for _, fn := range order {
		if hasFuncDirective(idx[fn], loanDirective) {
			localLoans[fn] = true
			exported.Loans[funcKey(fn)] = true
		}
	}
	if len(exported.Loans) > 0 {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(exported); err != nil {
			return fmt.Errorf("encoding loan facts: %v", err)
		}
		pass.ExportFacts(buf.Bytes())
	}
	if pass.FactsOnly {
		return nil
	}

	imported := make(map[string]*loanFacts)
	// isLoanCall resolves whether call invokes a loan function, consulting
	// imported facts across package boundaries.
	isLoanCall := func(call *ast.CallExpr) (*types.Func, bool) {
		fn := calleeFunc(pass.Info, call)
		if fn == nil || isAbstract(fn) || fn.Pkg() == nil {
			return nil, false
		}
		if fn.Pkg() == pass.Pkg {
			return fn, localLoans[fn]
		}
		path := fn.Pkg().Path()
		f, ok := imported[path]
		if !ok {
			f = decodeLoanFacts(pass.ImportFacts(path))
			imported[path] = f
		}
		return fn, f != nil && f.Loans[funcKey(fn)]
	}

	// Package-level variable initializers: a loan stored in a global is dead
	// the moment its owner is called again.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gen, ok := decl.(*ast.GenDecl)
			if !ok || gen.Tok != token.VAR {
				continue
			}
			for _, spec := range gen.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					if call, ok := ast.Unparen(v).(*ast.CallExpr); ok {
						if fn, isLoan := isLoanCall(call); isLoan {
							pass.Reportf(v.Pos(),
								"package-level variable initialized with a loan from //ftlint:loan %s; loans die at the owner's next call — Clone() it",
								displayKey(pass, fn))
						}
					}
				}
			}
		}
	}

	for _, fn := range order {
		checkLoanEscapes(pass, idx[fn], localLoans[fn], isLoanCall)
	}
	return nil
}

// checkLoanEscapes walks one declared function, tracking which local
// variables hold loans and flagging every escaping use.
func checkLoanEscapes(pass *Pass, decl *ast.FuncDecl, declIsLoan bool,
	isLoanCall func(*ast.CallExpr) (*types.Func, bool)) {

	loaned := make(map[types.Object]*types.Func) // local var -> loan source

	// exprLoanSource returns the loan function behind e: a direct loan call,
	// or a local variable currently holding one. Clone() chains are owned by
	// construction and return nil.
	exprLoanSource := func(e ast.Expr) *types.Func {
		switch e := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			if fn, isLoan := isLoanCall(e); isLoan {
				return fn
			}
		case *ast.Ident:
			if obj := pass.Info.Uses[e]; obj != nil {
				return loaned[obj]
			}
		}
		return nil
	}

	describeDst := func(lhs ast.Expr) string {
		switch lhs := ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr:
			if sel, ok := pass.Info.Selections[lhs]; ok && sel.Kind() == types.FieldVal {
				return fmt.Sprintf("struct field %q", lhs.Sel.Name)
			}
		case *ast.Ident:
			if obj := pass.Info.Uses[lhs]; obj != nil {
				if v, ok := obj.(*types.Var); ok && v.Parent() == pass.Pkg.Scope() {
					return fmt.Sprintf("package-level variable %q", lhs.Name)
				}
			}
		case *ast.IndexExpr:
			if t := pass.TypeOf(lhs.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					return "a map element"
				}
			}
		}
		return ""
	}

	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if i >= len(n.Lhs) {
						break
					}
					src := exprLoanSource(rhs)
					lhs := ast.Unparen(n.Lhs[i])
					if src == nil {
						// Reassigning a tracked variable with an owned value
						// (v = v.Clone(), v = nil) releases the loan.
						if id, ok := lhs.(*ast.Ident); ok && n.Tok == token.ASSIGN && len(n.Lhs) == len(n.Rhs) {
							if obj := pass.Info.Uses[id]; obj != nil {
								delete(loaned, obj)
							}
						}
						continue
					}
					if dst := describeDst(n.Lhs[i]); dst != "" {
						pass.Reportf(rhs.Pos(),
							"loan from //ftlint:loan %s stored into %s; the value is only valid until the owner's next call — Clone() it first",
							displayKey(pass, src), dst)
						continue
					}
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						if obj := pass.ObjectOf(id); obj != nil {
							loaned[obj] = src
						}
					}
				}
			case *ast.ValueSpec:
				// var v = loanCall() inside the body.
				for i, val := range n.Values {
					if src := exprLoanSource(val); src != nil && i < len(n.Names) {
						if obj := pass.Info.Defs[n.Names[i]]; obj != nil {
							loaned[obj] = src
						}
					}
				}
			case *ast.ReturnStmt:
				if declIsLoan {
					return true // a loan function may re-loan freely
				}
				for _, res := range n.Results {
					if src := exprLoanSource(res); src != nil {
						pass.Reportf(res.Pos(),
							"returns a loan from //ftlint:loan %s, but %s is not annotated //ftlint:loan; annotate it or return a Clone()",
							displayKey(pass, src), decl.Name.Name)
					}
				}
			case *ast.GoStmt:
				checkGoLoan(pass, n, loaned, exprLoanSource)
				return false // checked; don't re-flag inner assignments twice
			case *ast.FuncLit:
				// Walk literal bodies with the same tracking state: loans
				// created inside run under the same rules. Returns inside a
				// literal belong to the literal, which cannot be annotated;
				// re-loaning from one is flagged via the enclosing decl rule.
				return true
			}
			return true
		})
	}
	walk(decl.Body)
}

// checkGoLoan flags loans handed to a goroutine: loaned arguments of the go
// call, and loaned variables captured by its function literal.
func checkGoLoan(pass *Pass, g *ast.GoStmt, loaned map[types.Object]*types.Func,
	exprLoanSource func(ast.Expr) *types.Func) {

	for _, arg := range g.Call.Args {
		if src := exprLoanSource(arg); src != nil {
			pass.Reportf(arg.Pos(),
				"loan from //ftlint:loan %s passed to a goroutine, which may outlive it; Clone() it first",
				displayKey(pass, src))
		}
	}
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			return true
		}
		if src := loaned[obj]; src != nil && !declaredWithin(obj, lit) {
			pass.Reportf(id.Pos(),
				"loaned value %q (from //ftlint:loan %s) captured by a goroutine, which may outlive it; Clone() it first",
				id.Name, displayKey(pass, src))
		}
		return true
	})
}

// decodeLoanFacts parses an imported fact payload; nil in, nil out.
func decodeLoanFacts(payload []byte) *loanFacts {
	if len(payload) == 0 {
		return nil
	}
	var f loanFacts
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&f); err != nil {
		return nil
	}
	return &f
}
