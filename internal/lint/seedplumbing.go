package lint

import (
	"go/ast"
	"go/types"
)

// SeedPlumbing flags RNG streams whose seed is not plumbed: a call to
// rand.NewSource (or rand.NewChaCha8/NewPCG under math/rand/v2) whose
// argument mentions no variable at all — only literals, constants, and
// calls such as time.Now().UnixNano(). Every RNG in the deterministic
// packages must derive from a seed parameter or a parent stream, the
// (seed, node) discipline that makes the parallel engine's per-switch
// randomness reproducible for any worker count:
//
//	rand.New(rand.NewSource(seed + int64(node)))   // sanctioned
//	rand.New(rand.NewSource(42))                   // flagged: constant
//	rand.New(rand.NewSource(time.Now().UnixNano()))// flagged: clock
//
// The check is per-source-expression, so constructors that take a seed but
// ignore it when wiring their RNGs are still caught.
var SeedPlumbing = &Analyzer{
	Name: "seedplumbing",
	Doc: "flags rand.NewSource calls whose seed derives from no variable (constants, " +
		"the clock) inside the deterministic packages; seeds must be plumbed from (seed, node)",
	Match: func(path string) bool {
		for _, pkg := range []string{"internal/sim", "internal/sched", "internal/core", "internal/concentrator"} {
			if pathHasSuffix(path, pkg) {
				return true
			}
		}
		return false
	},
	Run: runSeedPlumbing,
}

// sourceCtors are the stream constructors whose argument is the seed.
var sourceCtors = map[string]bool{"NewSource": true, "NewPCG": true, "NewChaCha8": true}

func runSeedPlumbing(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || !sourceCtors[fn.Name()] {
				return true
			}
			if path := funcPkgPath(fn); path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			for _, arg := range call.Args {
				if seedIsPlumbed(pass, arg) {
					return true
				}
			}
			pass.Reportf(call.Pos(),
				"rand.%s seeded from a constant or the clock: derive the seed from a plumbed parameter or parent stream, e.g. (seed, node)",
				fn.Name())
			return true
		})
	}
	return nil
}

// seedIsPlumbed reports whether the seed expression mentions at least one
// variable (parameter, receiver field, local derived value) — the signature
// of a seed that flows from the caller rather than being invented on the
// spot. Package names and constants do not count.
func seedIsPlumbed(pass *Pass, arg ast.Expr) bool {
	return usesAnyObject(pass.Info, arg, func(obj types.Object) bool {
		v, ok := obj.(*types.Var)
		if !ok {
			return false
		}
		// A package-level var is shared mutable state, not a plumbed seed.
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return false
		}
		return true
	})
}
