package lint

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
)

// This file is the facts layer: the plumbing that lets an analyzer export a
// per-package summary ("function F allocates", "function G is a loan",
// "function H is ctx-aware") and have the pass analyzing a dependent package
// read it back. It is what turns the intraprocedural analyzers into
// whole-program ones — the call-graph hotalloc check follows a hot path from
// sim.Engine.RunCycle into concentrator.Matcher.Run only because the
// concentrator's allocation facts were computed first and handed to the sim
// pass.
//
// Facts travel differently per driver, but analyzers never notice:
//
//   - Standalone (`ftlint ./...`) and fixture runs keep facts in a factStore
//     keyed by (package, analyzer) and simply process packages in dependency
//     order — `go list -deps` order is already topological, and topoOrder
//     re-establishes it defensively from the type-checked import graph.
//   - `go vet -vettool` runs analyze one package per process invocation. The
//     go command hands each invocation the .vetx facts files its imports
//     produced earlier (vet.cfg PackageVetx) and expects the tool to write
//     this package's facts file (vet.cfg VetxOutput). encodeFactsFile and
//     decodeFactsFile define that file's format: a gob-encoded
//     analyzer-name → payload map, empty input decoding to no facts so the
//     pre-facts empty files stay readable.
//
// Payload bytes are opaque to the drivers; each analyzer defines its own gob
// schema (see the *Facts types in callgraph.go, loanescape.go,
// goroshutdown.go).

// factStore holds per-package, per-analyzer fact payloads in memory — the
// standalone and fixture equivalent of the vet driver's .vetx files.
type factStore map[string]map[string][]byte

// get returns the payload analyzer exported for pkgPath, or nil.
func (s factStore) get(pkgPath, analyzer string) []byte {
	return s[pkgPath][analyzer]
}

// set records analyzer's payload for pkgPath, overwriting any previous one.
func (s factStore) set(pkgPath, analyzer string, payload []byte) {
	m := s[pkgPath]
	if m == nil {
		m = make(map[string][]byte)
		s[pkgPath] = m
	}
	m[analyzer] = payload
}

// encodeFactsFile serializes one package's facts — analyzer name → opaque
// payload — into the bytes written to a .vetx file. An empty map encodes to
// an empty file, mirroring the pre-facts format.
func encodeFactsFile(m map[string][]byte) ([]byte, error) {
	if len(m) == 0 {
		return []byte{}, nil
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return nil, fmt.Errorf("encoding facts: %v", err)
	}
	return buf.Bytes(), nil
}

// decodeFactsFile parses the bytes of a .vetx facts file. Empty input means
// no facts (packages skipped by the driver write empty files).
func decodeFactsFile(data []byte) (map[string][]byte, error) {
	if len(data) == 0 {
		return nil, nil
	}
	var m map[string][]byte
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&m); err != nil {
		return nil, fmt.Errorf("decoding facts: %v", err)
	}
	return m, nil
}

// topoOrder returns pkgs sorted so every package appears after the packages
// it imports (restricted to the analyzed set). Ties and roots are broken by
// import path, so the order — and therefore fact computation — is
// deterministic regardless of input order. The module's import graph is
// acyclic by construction; an unexpected cycle degrades to emission order
// within the cycle rather than failing.
func topoOrder(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	paths := make([]string, 0, len(pkgs))
	for _, p := range pkgs {
		byPath[p.PkgPath] = p
		paths = append(paths, p.PkgPath)
	}
	sort.Strings(paths)

	out := make([]*Package, 0, len(pkgs))
	state := make(map[string]int, len(pkgs)) // 0 unvisited, 1 visiting, 2 done
	var visit func(path string)
	visit = func(path string) {
		pkg, ok := byPath[path]
		if !ok || state[path] != 0 {
			return
		}
		state[path] = 1
		imports := pkg.Types.Imports()
		deps := make([]string, 0, len(imports))
		for _, imp := range imports {
			deps = append(deps, imp.Path())
		}
		sort.Strings(deps)
		for _, dep := range deps {
			visit(dep)
		}
		state[path] = 2
		out = append(out, pkg)
	}
	for _, path := range paths {
		visit(path)
	}
	return out
}
