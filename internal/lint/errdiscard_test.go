package lint

import "testing"

func TestErrDiscardFixture(t *testing.T) {
	RunFixture(t, ErrDiscard, ".", "errdiscard")
}

func TestErrDiscardMatch(t *testing.T) {
	for path, want := range map[string]bool{
		"fattree/cmd/ftsim":            true,
		"fattree/cmd/ftlint":           true,
		"fattree/internal/experiments": true,
		"fattree/internal/sim":         false,
		"fattree":                      false,
	} {
		if got := ErrDiscard.Match(path); got != want {
			t.Errorf("ErrDiscard.Match(%q) = %v, want %v", path, got, want)
		}
	}
}
