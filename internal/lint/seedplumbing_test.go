package lint

import "testing"

func TestSeedPlumbingFixture(t *testing.T) {
	RunFixture(t, SeedPlumbing, ".", "seedplumbing")
}
