package lint

import (
	"go/ast"
	"go/types"
)

// Nondeterm flags sources of nondeterminism inside the determinism-critical
// packages (internal/sim, internal/sched, internal/par, internal/core):
//
//   - calls to math/rand's global top-level functions (rand.Intn, rand.Perm,
//     …), which draw from the shared process-wide source — the sanctioned
//     pattern is a per-entity *rand.Rand derived from (seed, node);
//   - any use of time.Now — a delivery cycle's outcome must be a pure
//     function of (tree, messages, seed), never of the clock;
//   - map iteration whose body feeds ordered output (appends to a slice,
//     writes a slice element, or sends on a channel): Go randomizes map
//     iteration order per run, so such loops must iterate sorted keys.
//
// These are exactly the invariants the parallel engine's bit-identical
// guarantee rests on; see DESIGN.md "Determinism invariants".
var Nondeterm = &Analyzer{
	Name: "nondeterm",
	Doc: "flags global math/rand calls, time.Now, and order-sensitive map iteration " +
		"in the determinism-critical packages (sim, sched, par, core)",
	Match: func(path string) bool {
		for _, pkg := range []string{"internal/sim", "internal/sched", "internal/par", "internal/core"} {
			if pathHasSuffix(path, pkg) {
				return true
			}
		}
		return false
	},
	Run: runNondeterm,
}

// globalRandFuncs are the math/rand package-level functions backed by the
// shared global source. rand.New / rand.NewSource are excluded: creating a
// dedicated stream is the sanctioned pattern (seedplumbing checks how the
// seed is derived).
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

func runNondeterm(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkNondetermCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkNondetermCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		return
	}
	path := funcPkgPath(fn)
	// Methods have a receiver; only package-level rand functions use the
	// global source.
	sig, _ := fn.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil
	switch {
	case (path == "math/rand" || path == "math/rand/v2") && !isMethod && globalRandFuncs[fn.Name()]:
		pass.Reportf(call.Pos(),
			"call to global math/rand.%s draws from the shared process-wide source; derive a *rand.Rand from (seed, node) instead",
			fn.Name())
	case path == "time" && !isMethod && fn.Name() == "Now":
		pass.Reportf(call.Pos(),
			"time.Now in a determinism-critical package: results must be a pure function of (inputs, seed), not the clock")
	}
}

// checkMapRange flags `for k := range m` over a map when the loop body feeds
// ordered output, i.e. contains an append, a slice-element write, or a
// channel send. Loops that only reduce (sum, count, max) are order-free and
// pass.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	if rng.Key == nil && rng.Value == nil {
		return // `for range m`: no element data escapes
	}
	if feed := orderedOutputIn(pass, rng.Body); feed != "" {
		pass.Reportf(rng.Pos(),
			"map iteration feeds ordered output (%s): Go randomizes map order per run; iterate sorted keys or use an indexed slice",
			feed)
	}
}

// orderedOutputIn returns a description of the first ordered-output
// construct in body, or "".
func orderedOutputIn(pass *Pass, body *ast.BlockStmt) string {
	feed := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if feed != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					feed = "append"
					return false
				}
			}
		case *ast.SendStmt:
			feed = "channel send"
			return false
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if bt := pass.TypeOf(ix.X); bt != nil {
						if _, isSlice := bt.Underlying().(*types.Slice); isSlice {
							feed = "slice element write"
							return false
						}
					}
				}
			}
		}
		return true
	})
	return feed
}
