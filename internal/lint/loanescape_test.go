package lint

import "testing"

// The loanescape fixture imports loanescape/api, whose //ftlint:loan
// annotations reach the use package only through exported facts; the local
// re-loaning cases ride in the same package.
func TestLoanEscapeFixture(t *testing.T) {
	RunFixture(t, LoanEscape, ".", "loanescape/use")
}

func TestLoanEscapeNeedsFacts(t *testing.T) {
	if !LoanEscape.NeedsFacts {
		t.Fatal("loanescape must declare NeedsFacts so loan annotations cross package boundaries")
	}
	if LoanEscape.Match != nil {
		t.Fatal("loanescape must run on every package: loans may be consumed anywhere")
	}
}
