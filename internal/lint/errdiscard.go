package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDiscard flags silently dropped errors in the user-facing layers (cmd/
// and internal/experiments), where a swallowed write error means a truncated
// experiment table that still looks like a complete "paper bound vs
// measured" run:
//
//   - `_ = f()` and `_, _ = f()` assignments that blank every result of a
//     call returning an error (or blank an existing error value);
//   - calls used as bare statements whose results include an error —
//     notably fmt.Fprintf to a real sink.
//
// Exemptions, matching Go convention: fmt.Print* (console stdout),
// fmt.Fprint* to os.Stderr / os.Stdout (best-effort diagnostics), writes to
// *strings.Builder / *bytes.Buffer (documented never to fail), and
// `defer x.Close()` on read paths.
var ErrDiscard = &Analyzer{
	Name: "errdiscard",
	Doc: "flags _ =-discarded errors and unchecked error-returning calls (fmt.Fprintf " +
		"to real sinks) in cmd/ and internal/experiments",
	Match: func(path string) bool {
		return strings.Contains(path, "/cmd/") || pathHasSuffix(path, "internal/experiments")
	},
	Run: runErrDiscard,
}

func runErrDiscard(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				checkBlankAssign(pass, n)
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkUncheckedCall(pass, call, false)
				}
			case *ast.DeferStmt:
				checkUncheckedCall(pass, n.Call, true)
			case *ast.GoStmt:
				checkUncheckedCall(pass, n.Call, true)
			}
			return true
		})
	}
	return nil
}

// checkBlankAssign flags assignments whose left side is entirely blank and
// whose right side produces an error.
func checkBlankAssign(pass *Pass, as *ast.AssignStmt) {
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
			return
		}
	}
	if len(as.Rhs) == 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			if resultsIncludeError(pass.Info, call) && !isExemptCall(pass, call) {
				pass.Reportf(as.Pos(),
					"error result of %s discarded with a blank assignment; handle it or propagate it",
					calleeLabel(pass, call))
			}
			return
		}
	}
	for i, rhs := range as.Rhs {
		if t := pass.TypeOf(rhs); t != nil && isErrorType(t) {
			pass.Reportf(as.Lhs[i].Pos(),
				"error value discarded with a blank assignment; handle it or propagate it")
		}
	}
}

// checkUncheckedCall flags a call used as a statement when its results
// include an error. deferred covers `defer` and `go` statements, where the
// conventional `defer x.Close()` on read paths stays legal.
func checkUncheckedCall(pass *Pass, call *ast.CallExpr, deferred bool) {
	if !resultsIncludeError(pass.Info, call) || isExemptCall(pass, call) {
		return
	}
	if deferred {
		if fn := calleeFunc(pass.Info, call); fn != nil && fn.Name() == "Close" {
			return
		}
	}
	pass.Reportf(call.Pos(),
		"error result of %s is unchecked; handle it or propagate it",
		calleeLabel(pass, call))
}

// isExemptCall implements the conventional best-effort sinks.
func isExemptCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)

	// Methods on the never-failing in-memory writers.
	if sig != nil && sig.Recv() != nil {
		if t := sig.Recv().Type(); isNeverFailingWriter(t) {
			return true
		}
		return false
	}

	if funcPkgPath(fn) != "fmt" {
		return false
	}
	name := fn.Name()
	switch {
	case strings.HasPrefix(name, "Print"): // console stdout
		return true
	case strings.HasPrefix(name, "Fprint"):
		if len(call.Args) == 0 {
			return false
		}
		sink := ast.Unparen(call.Args[0])
		if isStdStream(pass, sink) {
			return true
		}
		if t := pass.TypeOf(sink); t != nil && isNeverFailingWriter(t) {
			return true
		}
	}
	return false
}

// isStdStream recognizes the selector expressions os.Stderr and os.Stdout.
func isStdStream(pass *Pass, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.Info.Uses[sel.Sel]
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Pkg().Path() != "os" {
		return false
	}
	return v.Name() == "Stderr" || v.Name() == "Stdout"
}

// isNeverFailingWriter reports whether t is *strings.Builder or
// *bytes.Buffer (possibly behind a pointer), whose Write methods are
// documented to always succeed.
func isNeverFailingWriter(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return (path == "strings" && name == "Builder") || (path == "bytes" && name == "Buffer")
}

// calleeLabel renders the callee for diagnostics, e.g. "fmt.Fprintf" or
// "(*os.File).Sync".
func calleeLabel(pass *Pass, call *ast.CallExpr) string {
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		return "call"
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		return types.TypeString(sig.Recv().Type(), types.RelativeTo(pass.Pkg)) + "." + fn.Name()
	}
	if fn.Pkg() != nil && fn.Pkg() != pass.Pkg {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
