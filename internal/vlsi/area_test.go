package vlsi

import (
	"math"
	"testing"
)

func TestUniversalAreaEndpoints(t *testing.T) {
	t.Parallel()
	n := 1024
	// Full bandwidth: area Θ(n²) (Thompson's full-bisection figure).
	if got := UniversalArea(n, n); got != float64(n)*float64(n) {
		t.Errorf("w=n area %v, want n²", got)
	}
	// w = sqrt(n): area = (sqrt(n)·(lg n)/2)².
	w := 32
	want := math.Pow(float64(w)*5, 2) // lg(1024/32) = 5
	if got := UniversalArea(n, w); math.Abs(got-want) > 1e-9 {
		t.Errorf("area %v, want %v", got, want)
	}
}

func TestRootCapacityForAreaRoundTrip(t *testing.T) {
	t.Parallel()
	n := 1 << 14
	for _, w := range []int{1 << 7, 1 << 9, 1 << 11} {
		a := UniversalArea(n, w)
		w2 := RootCapacityForArea(n, a)
		ratio := float64(w2) / float64(w)
		if ratio < 0.3 || ratio > 3.5 {
			t.Errorf("w=%d: round trip gives %d (ratio %.2f)", w, w2, ratio)
		}
	}
}

func TestRootCapacityForAreaClamps(t *testing.T) {
	t.Parallel()
	if w := RootCapacityForArea(64, 0.5); w != 1 {
		t.Errorf("tiny area should clamp to 1, got %d", w)
	}
	if w := RootCapacityForArea(64, 1e9); w != 64 {
		t.Errorf("huge area should clamp to n, got %d", w)
	}
}

func TestNewUniversal2DOfArea(t *testing.T) {
	t.Parallel()
	ft := NewUniversal2DOfArea(256, MeshArea(256))
	if ft.Processors() != 256 {
		t.Fatalf("wrong size")
	}
	if ft.RootCapacity() < 1 || ft.RootCapacity() > 256 {
		t.Errorf("root capacity %d out of range", ft.RootCapacity())
	}
}

func TestAreaPanicsOnBadInput(t *testing.T) {
	t.Parallel()
	for _, f := range []func(){
		func() { UniversalArea(1, 1) },
		func() { UniversalArea(64, 0) },
		func() { RootCapacityForArea(64, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad input accepted")
				}
			}()
			f()
		}()
	}
}
