package vlsi

import (
	"fmt"
	"math"

	"fattree/internal/core"
	"fattree/internal/decomp"
)

// This file realizes a fat-tree geometrically: a recursive three-dimensional
// placement in the spirit of the Leighton–Rosenberg construction Theorem 4
// cites. Each subtree occupies a box; a node's two child boxes sit side by
// side along the box's currently shortest axis, and the node's own switch
// occupies a slab of volume Θ(m^(3/2)) extending the next-shortest axis —
// the greedy choices keep every box near-cubic. The achieved bounding volume
// is a constructive witness for the Theorem 4 figure, and the resulting
// processor positions feed the Section V decomposition machinery — letting a
// fat-tree be decomposed, balanced and simulated like any other network.

// PlacedBox is an axis-aligned box at a position.
type PlacedBox struct {
	Origin decomp.Point
	Size   Box
}

// TreeLayout is a complete 3-D placement of a fat-tree.
type TreeLayout struct {
	Tree *core.FatTree
	// Switches[v] is the slab occupied by internal node v (index 1..n-1);
	// index 0 is unused.
	Switches []PlacedBox
	// Processors places the leaf processors inside the bounding cube.
	Processors *decomp.Layout
	// Bounding is the total box of the layout.
	Bounding Box
	// BoxSum is the summed volume of switch slabs and unit processor cells —
	// a lower bound on any layout of this tree.
	BoxSum float64
}

// Volume returns the achieved bounding volume.
func (tl *TreeLayout) Volume() float64 { return tl.Bounding.Volume() }

// AspectRatio returns the longest side over the shortest side of the
// bounding box; the construction keeps it bounded.
func (tl *TreeLayout) AspectRatio() float64 {
	lo := math.Min(tl.Bounding.X, math.Min(tl.Bounding.Y, tl.Bounding.Z))
	hi := math.Max(tl.Bounding.X, math.Max(tl.Bounding.Y, tl.Bounding.Z))
	return hi / lo
}

// LayoutFatTree computes the recursive placement of t.
func LayoutFatTree(t *core.FatTree) *TreeLayout {
	tl := &TreeLayout{
		Tree:     t,
		Switches: make([]PlacedBox, t.Processors()),
		Processors: &decomp.Layout{
			Pos: make([]decomp.Point, t.Processors()),
		},
	}

	// dims computes the box shape of each subtree bottom-up. The stacking and
	// slab axes are chosen greedily (always extend the currently shortest
	// side), which keeps every box near-cubic; the choices are recorded so
	// the placement pass below makes the same ones.
	n := t.Processors()
	dims := make([]Box, 2*n)
	stackAxis := make([]int, n)
	slabAxisOf := make([]int, n)
	var computeDims func(v int) Box
	computeDims = func(v int) Box {
		if v >= n { // leaf: a unit processor cell
			dims[v] = Box{X: 1, Y: 1, Z: 1}
			tl.BoxSum++
			return dims[v]
		}
		child := computeDims(2 * v)
		other := computeDims(2*v + 1)
		// Children sit side by side along the currently shortest axis; their
		// shapes can differ only via per-channel overrides, so take the max
		// in the other axes.
		b := Box{
			X: math.Max(child.X, other.X),
			Y: math.Max(child.Y, other.Y),
			Z: math.Max(child.Z, other.Z),
		}
		stack := shortestAxis(b)
		stackAxis[v] = stack
		setAxis(&b, stack, axis(child, stack)+axis(other, stack))
		// The node's switch slab extends the (new) shortest axis.
		m := nodeWires(t, v)
		slab := shortestAxis(b)
		slabAxisOf[v] = slab
		face := b.Volume() / axis(b, slab)
		thickness := math.Pow(float64(m), 1.5) / face
		tl.BoxSum += math.Pow(float64(m), 1.5)
		setAxis(&b, slab, axis(b, slab)+thickness)
		dims[v] = b
		return b
	}
	tl.Bounding = computeDims(1)

	// place assigns origins top-down, repeating the recorded axis choices.
	var place func(v int, origin decomp.Point)
	place = func(v int, origin decomp.Point) {
		if v >= n {
			tl.Processors.Pos[t.ProcessorOf(v)] = decomp.Point{
				X: origin.X + 0.5, Y: origin.Y + 0.5, Z: origin.Z + 0.5,
			}
			return
		}
		stack := stackAxis[v]
		slab := slabAxisOf[v]
		b := dims[v]
		left, right := dims[2*v], dims[2*v+1]
		place(2*v, origin)
		childOrigin := origin
		shiftPoint(&childOrigin, stack, axis(left, stack))
		place(2*v+1, childOrigin)
		// Switch slab: the region above the children along the slab axis.
		childHeight := math.Max(axis(left, slab), axis(right, slab))
		slabOrigin := origin
		shiftPoint(&slabOrigin, slab, childHeight)
		slabSize := b
		setAxis(&slabSize, slab, axis(b, slab)-childHeight)
		tl.Switches[v] = PlacedBox{Origin: slabOrigin, Size: slabSize}
	}
	place(1, decomp.Point{})

	// The decomposition machinery wants a cube: use the longest side, with
	// the layout in a corner.
	side := math.Max(tl.Bounding.X, math.Max(tl.Bounding.Y, tl.Bounding.Z))
	tl.Processors.Side = side * (1 + 1e-9)
	return tl
}

// nodeWires counts the wires incident on node v (both directions of the
// parent channel and the two child channels).
func nodeWires(t *core.FatTree, v int) int {
	capParent := t.Capacity(core.Channel{Node: v, Dir: core.Up})
	capLeft := t.Capacity(core.Channel{Node: 2 * v, Dir: core.Up})
	capRight := t.Capacity(core.Channel{Node: 2*v + 1, Dir: core.Up})
	return 2 * (capParent + capLeft + capRight)
}

// axis reads one dimension of a box (0 = X, 1 = Y, 2 = Z).
func axis(b Box, a int) float64 {
	switch a {
	case 0:
		return b.X
	case 1:
		return b.Y
	default:
		return b.Z
	}
}

// setAxis writes one dimension of a box.
func setAxis(b *Box, a int, v float64) {
	switch a {
	case 0:
		b.X = v
	case 1:
		b.Y = v
	default:
		b.Z = v
	}
}

// shiftPoint moves a point along one axis.
func shiftPoint(p *decomp.Point, a int, v float64) {
	switch a {
	case 0:
		p.X += v
	case 1:
		p.Y += v
	default:
		p.Z += v
	}
}

// Validate checks the layout's geometric invariants: processors within the
// cube, pairwise distinct, and the bounding volume at least the box sum.
func (tl *TreeLayout) Validate() error {
	if err := tl.Processors.Validate(); err != nil {
		return err
	}
	if tl.Volume() < tl.BoxSum-1e-6 {
		return fmt.Errorf("vlsi: bounding volume %.1f below the box sum %.1f", tl.Volume(), tl.BoxSum)
	}
	return nil
}

// shortestAxis returns the index of the box's shortest side.
func shortestAxis(b Box) int {
	best, arg := b.X, 0
	if b.Y < best {
		best, arg = b.Y, 1
	}
	if b.Z < best {
		arg = 2
	}
	return arg
}
