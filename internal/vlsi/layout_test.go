package vlsi

import (
	"math"
	"testing"

	"fattree/internal/core"
	"fattree/internal/decomp"
)

func TestLayoutFatTreeValid(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct{ n, w int }{
		{16, 8}, {64, 16}, {256, 64}, {256, 256},
	} {
		ft := core.NewUniversal(tc.n, tc.w)
		tl := LayoutFatTree(ft)
		if err := tl.Validate(); err != nil {
			t.Errorf("n=%d w=%d: %v", tc.n, tc.w, err)
		}
		if len(tl.Processors.Pos) != tc.n {
			t.Errorf("n=%d: %d processor positions", tc.n, len(tl.Processors.Pos))
		}
	}
}

func TestLayoutVolumeTracksTheorem4(t *testing.T) {
	t.Parallel()
	// The achieved bounding volume should sit within a constant band around
	// the Theorem 4 figure across the parameter range (the construction's
	// padding and the formula's lg^(1/2) slack both land inside the band).
	for _, tc := range []struct{ n, w int }{
		{64, 16}, {256, 40}, {256, 256}, {1024, 101}, {1024, 1024},
	} {
		ft := core.NewUniversal(tc.n, tc.w)
		tl := LayoutFatTree(ft)
		formula := UniversalVolume(tc.n, tc.w)
		ratio := tl.Volume() / formula
		if ratio < 0.02 || ratio > 60 {
			t.Errorf("n=%d w=%d: achieved %.0f vs formula %.0f (ratio %.2f)",
				tc.n, tc.w, tl.Volume(), formula, ratio)
		}
	}
}

func TestLayoutAspectBounded(t *testing.T) {
	t.Parallel()
	for _, n := range []int{64, 256, 1024} {
		ft := core.NewUniversal(n, n/4)
		tl := LayoutFatTree(ft)
		if ar := tl.AspectRatio(); ar > 8 {
			t.Errorf("n=%d: aspect ratio %.1f too elongated", n, ar)
		}
	}
}

func TestLayoutSwitchSlabsPlaced(t *testing.T) {
	t.Parallel()
	ft := core.NewUniversal(64, 16)
	tl := LayoutFatTree(ft)
	for v := 1; v < 64; v++ {
		slab := tl.Switches[v]
		if slab.Size.Volume() <= 0 {
			t.Errorf("switch %d has empty slab", v)
		}
	}
	// The root's slab must lie inside the bounding box.
	root := tl.Switches[1]
	if root.Origin.X+root.Size.X > tl.Bounding.X+1e-6 ||
		root.Origin.Y+root.Size.Y > tl.Bounding.Y+1e-6 ||
		root.Origin.Z+root.Size.Z > tl.Bounding.Z+1e-6 {
		t.Errorf("root slab escapes the bounding box")
	}
}

func TestLayoutFeedsDecomposition(t *testing.T) {
	t.Parallel()
	// The layout's processor positions must be usable by the Section V
	// machinery end to end.
	ft := core.NewUniversal(64, 16)
	tl := LayoutFatTree(ft)
	tree := decomp.CutPlanes(tl.Processors, 1)
	if err := tree.Validate(); err != nil {
		t.Fatalf("decomposition: %v", err)
	}
	bt := decomp.Balance(tree)
	if err := bt.Validate(); err != nil {
		t.Fatalf("balance: %v", err)
	}
	if bt.Procs != 64 {
		t.Errorf("balanced procs %d", bt.Procs)
	}
}

func TestLayoutDeterministic(t *testing.T) {
	t.Parallel()
	a := LayoutFatTree(core.NewUniversal(128, 32))
	b := LayoutFatTree(core.NewUniversal(128, 32))
	if a.Volume() != b.Volume() {
		t.Errorf("layout volume not deterministic")
	}
	for p := range a.Processors.Pos {
		if a.Processors.Pos[p] != b.Processors.Pos[p] {
			t.Fatalf("processor %d placed differently", p)
		}
	}
}

func TestLayoutProcessorsSpread(t *testing.T) {
	t.Parallel()
	// Sibling processors should be near each other; processors across the
	// root far apart — geometry mirrors the tree.
	ft := core.NewUniversal(256, 64)
	tl := LayoutFatTree(ft)
	near := dist(tl.Processors.Pos[0], tl.Processors.Pos[1])
	far := dist(tl.Processors.Pos[0], tl.Processors.Pos[255])
	if near >= far {
		t.Errorf("sibling distance %.1f >= cross-root distance %.1f", near, far)
	}
}

func dist(a, b decomp.Point) float64 {
	dx, dy, dz := a.X-b.X, a.Y-b.Y, a.Z-b.Z
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}
