// Package vlsi implements the three-dimensional VLSI cost model of Section IV
// of the paper — an extension of Thompson's two-dimensional model in which
// wires occupy volume and have a minimum cross-sectional area. Hardware size
// is measured as physical volume, and the bandwidth through the surface of a
// closed region is proportional to the surface's area (Assumption of
// Section V). The package provides:
//
//   - node boxes (Lemma 3): a node with m incident wires and components fits
//     in a box of volume O(m^(3/2)) with a tunable aspect ratio;
//   - universal fat-tree hardware costs (Theorem 4): component counts
//     Θ(n·lg(w³/n²)) and volume Θ((w·lg(n/w))^(3/2));
//   - the inverse map from volume to root capacity (the "universal fat-tree
//     of volume v" has root capacity Θ(v^(2/3)/lg(n/v^(2/3))));
//   - volume models for the competing networks of the universality
//     experiments (hypercube Θ(n^(3/2)), 2-D mesh and binary tree Θ(n)), and
//     the generic lower bound v = Ω(B^(3/2)) for a network of bisection
//     width B.
//
// All volumes are in normalized units: one unit-volume cell holds one wire
// crossing or one component. Constant factors are explicit and documented so
// that the experiments compare like with like.
package vlsi

import (
	"fmt"
	"math"

	"fattree/internal/core"
)

// Box is a rectangular box with the given side lengths, in unit cells.
type Box struct {
	X, Y, Z float64
}

// Volume returns the box volume.
func (b Box) Volume() float64 { return b.X * b.Y * b.Z }

// String renders the box dimensions.
func (b Box) String() string { return fmt.Sprintf("%.1f x %.1f x %.1f", b.X, b.Y, b.Z) }

// NodeBox returns the dimensions of a box housing a fat-tree node with m
// incident wires and O(m) components, per Lemma 3: any interconnection
// pattern of m components and external wires fits in a box with side lengths
// O(sqrt(m·h)), O(sqrt(m·h)) and O(sqrt(m)/h), for any 1 <= h <= sqrt(m).
// The volume is O(m^(3/2)) regardless of h; h trades footprint for height
// (Thompson's layer-flattening argument). NodeBox panics if h is outside
// [1, sqrt(m)].
func NodeBox(m int, h float64) Box {
	if m < 1 {
		panic(fmt.Sprintf("vlsi: node with %d wires", m))
	}
	sq := math.Sqrt(float64(m))
	if h < 1 || h > sq {
		panic(fmt.Sprintf("vlsi: aspect parameter h=%g outside [1, sqrt(m)=%g]", h, sq))
	}
	return Box{
		X: math.Sqrt(float64(m) * h),
		Y: math.Sqrt(float64(m) * h),
		Z: sq / h,
	}
}

// UniversalComponents returns the exact number of switching components of a
// universal fat-tree on n processors with root capacity w, counting each
// node as proportional to its incident wires (the concentrator construction
// of Section IV uses O(m) components for m incident wires; we count m itself
// so the figure is implementation-independent).
func UniversalComponents(n, w int) int {
	levels := core.Lg(n)
	total := 0
	for k := 0; k < levels; k++ {
		capHere := core.UniversalCapacity(n, w, k)
		capChild := core.UniversalCapacity(n, w, k+1)
		// A node at level k has 2(capHere + 2·capChild) incident wires (both
		// directions of the parent channel and of the two child channels).
		perNode := 2 * (capHere + 2*capChild)
		total += (1 << uint(k)) * perNode
	}
	return total
}

// ComponentsBound returns Theorem 4's asymptotic component count
// c·n·lg(w³/n²), with the lg clamped to at least 1 so the bound is usable
// across the whole parameter range n^(2/3) <= w <= n. The constant c is the
// per-processor wire constant of the universal profile.
func ComponentsBound(n, w int) float64 {
	lg := 3*math.Log2(float64(w)) - 2*math.Log2(float64(n))
	if lg < 1 {
		lg = 1
	}
	return float64(n) * lg
}

// UniversalVolume returns the volume of a universal fat-tree on n processors
// with root capacity w per Theorem 4: Θ((w·lg(n/w))^(3/2)), with the lg
// clamped to at least 1 (a full-bandwidth tree with w = n occupies Θ(n^(3/2)),
// matching the hypercube). The layout realizing this bound is the
// unrestricted three-dimensional construction of Leighton and Rosenberg.
func UniversalVolume(n, w int) float64 {
	if n < 2 || w < 1 {
		panic(fmt.Sprintf("vlsi: invalid universal fat-tree n=%d w=%d", n, w))
	}
	lg := math.Log2(float64(n) / float64(w))
	if lg < 1 {
		lg = 1
	}
	return math.Pow(float64(w)*lg, 1.5)
}

// RootCapacityForVolume inverts UniversalVolume: it returns the root capacity
// w = Θ(v^(2/3)/lg(n/v^(2/3))) of a universal fat-tree of volume v on n
// processors (the Definition at the end of Section IV). The result is clamped
// to [1, n]: a root wider than n is useless because the leaf channels cannot
// feed it, and the paper's remark requires v large enough that w >= 1.
func RootCapacityForVolume(n int, v float64) int {
	if v <= 0 {
		panic(fmt.Sprintf("vlsi: non-positive volume %g", v))
	}
	v23 := math.Pow(v, 2.0/3.0)
	lg := math.Log2(float64(n) / v23)
	if lg < 1 {
		lg = 1
	}
	w := int(v23 / lg)
	if w < 1 {
		w = 1
	}
	if w > n {
		w = n
	}
	return w
}

// NewUniversalOfVolume builds the universal fat-tree of volume v on n
// processors: root capacity RootCapacityForVolume(n, v) with the Section IV
// capacity profile.
func NewUniversalOfVolume(n int, v float64) *core.FatTree {
	return core.NewUniversal(n, RootCapacityForVolume(n, v))
}

// HypercubeVolume returns the Θ(n^(3/2)) volume of a Boolean hypercube on n
// processors: its bisection width is n/2, so any layout needs a cross-section
// of area Ω(n) and hence side Ω(sqrt n); the matching upper bound is standard.
// "Hypercube-based networks are universal for volume Θ(n^(3/2)), but they do
// not scale down to smaller volumes."
func HypercubeVolume(n int) float64 { return math.Pow(float64(n), 1.5) }

// MeshVolume returns the Θ(n) volume of a two-dimensional mesh: constant
// wires per processor and a planar interconnection strategy requires only
// O(n) volume (the introduction's observation about planar graphs).
func MeshVolume(n int) float64 { return float64(n) }

// TreeVolume returns the Θ(n) volume of a plain binary tree network
// (capacity-1 channels): n-1 switches and 2n-2 unit channels.
func TreeVolume(n int) float64 { return 3 * float64(n) }

// ButterflyVolume returns the volume of an n-input butterfly network, whose
// bisection width is Θ(n/lg n): volume max(n·lg n, (n/lg n)^(3/2)) — the
// first term counts the n·lg n switches, the second the wiring cross-section.
func ButterflyVolume(n int) float64 {
	lg := math.Log2(float64(n))
	if lg < 1 {
		lg = 1
	}
	switches := float64(n) * lg
	wiring := math.Pow(float64(n)/lg, 1.5)
	return math.Max(switches, wiring)
}

// VolumeLowerBoundFromBisection returns the generic 3-D VLSI lower bound for
// any network on n processors with bisection width b: the layout must hold n
// processors (v >= n) and any bisecting surface must pass b wires, so some
// cross-section has area Omega(b) and v = Omega(b^(3/2)).
func VolumeLowerBoundFromBisection(n, b int) float64 {
	vol := float64(n)
	if b > 0 {
		if w := math.Pow(float64(b), 1.5); w > vol {
			vol = w
		}
	}
	return vol
}

// FatTreeNodeBoxes returns the boxes of every node of a universal fat-tree,
// level by level, using NodeBox with h = 1 (cube-ish nodes). The sum of the
// box volumes is a lower estimate of the tree's layout volume that the
// Theorem 4 figure must dominate.
func FatTreeNodeBoxes(n, w int) []Box {
	levels := core.Lg(n)
	boxes := make([]Box, 0, 2*n)
	for k := 0; k < levels; k++ {
		capHere := core.UniversalCapacity(n, w, k)
		capChild := core.UniversalCapacity(n, w, k+1)
		m := 2 * (capHere + 2*capChild)
		for i := 0; i < 1<<uint(k); i++ {
			boxes = append(boxes, NodeBox(m, 1))
		}
	}
	return boxes
}

// SumVolume adds up the volumes of the boxes.
func SumVolume(boxes []Box) float64 {
	total := 0.0
	for _, b := range boxes {
		total += b.Volume()
	}
	return total
}
