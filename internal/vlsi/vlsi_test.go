package vlsi

import (
	"math"
	"testing"
	"testing/quick"

	"fattree/internal/core"
)

func TestNodeBoxVolume(t *testing.T) {
	t.Parallel()
	// Volume must be Θ(m^(3/2)) for every legal aspect parameter.
	for _, m := range []int{1, 4, 16, 100, 10000} {
		want := math.Pow(float64(m), 1.5)
		for _, h := range []float64{1, 2, math.Sqrt(float64(m))} {
			if h < 1 || h > math.Sqrt(float64(m)) {
				continue
			}
			b := NodeBox(m, h)
			if math.Abs(b.Volume()-want) > 1e-6*want {
				t.Errorf("m=%d h=%g: volume %.1f, want %.1f", m, h, b.Volume(), want)
			}
		}
	}
}

func TestNodeBoxAspect(t *testing.T) {
	t.Parallel()
	// Larger h flattens the box: Z shrinks, X/Y grow.
	a := NodeBox(256, 1)
	b := NodeBox(256, 4)
	if b.Z >= a.Z || b.X <= a.X {
		t.Errorf("h=4 should flatten: %v vs %v", b, a)
	}
}

func TestNodeBoxRejectsBadAspect(t *testing.T) {
	t.Parallel()
	for _, h := range []float64{0.5, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NodeBox(16, %g) should panic", h)
				}
			}()
			NodeBox(16, h)
		}()
	}
}

func TestComponentsLeafLevelsDominate(t *testing.T) {
	t.Parallel()
	// Theorem 4's proof: the number of components nearer the leaves
	// dominates. Compare the components at the bottom half of the levels with
	// the top half.
	n, w := 1<<16, 1<<12
	levels := core.Lg(n)
	bottom, top := 0, 0
	for k := 0; k < levels; k++ {
		capHere := core.UniversalCapacity(n, w, k)
		capChild := core.UniversalCapacity(n, w, k+1)
		perLevel := (1 << uint(k)) * 2 * (capHere + 2*capChild)
		if k >= levels/2 {
			bottom += perLevel
		} else {
			top += perLevel
		}
	}
	if bottom <= top {
		t.Errorf("leaf-side components (%d) do not dominate root-side (%d)", bottom, top)
	}
}

func TestUniversalComponentsWithinBound(t *testing.T) {
	t.Parallel()
	// Exact counts stay within a constant factor of Theorem 4's
	// n·lg(w³/n²) figure across the legal parameter range.
	for _, n := range []int{1 << 8, 1 << 12, 1 << 16} {
		for _, frac := range []float64{2.0 / 3.0, 0.75, 0.9, 1.0} {
			w := int(math.Pow(float64(n), frac))
			got := float64(UniversalComponents(n, w))
			bound := ComponentsBound(n, w)
			ratio := got / bound
			if ratio > 30 || ratio < 0.1 {
				t.Errorf("n=%d w=%d: components %.0f vs bound %.0f (ratio %.2f)",
					n, w, got, bound, ratio)
			}
		}
	}
}

func TestUniversalComponentsFullBandwidth(t *testing.T) {
	t.Parallel()
	// w = n gives Θ(n lg n) components, like a butterfly.
	n := 1 << 12
	got := float64(UniversalComponents(n, n))
	nlgn := float64(n) * math.Log2(float64(n))
	if got < nlgn || got > 20*nlgn {
		t.Errorf("w=n components %.0f not Θ(n lg n) = %.0f", got, nlgn)
	}
}

func TestUniversalVolumeEndpoints(t *testing.T) {
	t.Parallel()
	n := 1 << 12
	// Full bandwidth matches the hypercube volume.
	if v := UniversalVolume(n, n); math.Abs(v-HypercubeVolume(n)) > 1e-6*v {
		t.Errorf("w=n volume %.0f != hypercube %.0f", v, HypercubeVolume(n))
	}
	// Volume grows with w through the meaningful range w <= n/4; the formula
	// w·lg(n/w) genuinely flattens as w approaches n (its maximum is at
	// w = n/e), so strict monotonicity is only expected below that.
	prev := 0.0
	for _, w := range []int{64, 128, 256, 512, 1024} {
		v := UniversalVolume(n, w)
		if v <= prev {
			t.Errorf("volume not increasing in w at w=%d", w)
		}
		prev = v
	}
	if UniversalVolume(n, n) < UniversalVolume(n, n/4) {
		t.Errorf("full-bandwidth volume below w=n/4 volume")
	}
}

func TestRootCapacityRoundTrip(t *testing.T) {
	t.Parallel()
	// w -> volume -> w' should come back within a constant factor (the lg
	// terms differ by O(lg lg) only).
	n := 1 << 14
	for _, w := range []int{1 << 10, 1 << 11, 1 << 12, 1 << 13} {
		v := UniversalVolume(n, w)
		w2 := RootCapacityForVolume(n, v)
		ratio := float64(w2) / float64(w)
		if ratio < 0.3 || ratio > 3.5 {
			t.Errorf("n=%d w=%d: round-trip gives %d (ratio %.2f)", n, w, w2, ratio)
		}
	}
}

func TestRootCapacityForVolumeMonotone(t *testing.T) {
	t.Parallel()
	n := 1 << 12
	f := func(raw uint32) bool {
		v := 1000 + float64(raw%1000000)
		return RootCapacityForVolume(n, v) <= RootCapacityForVolume(n, v*1.1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRootCapacityClamps(t *testing.T) {
	t.Parallel()
	n := 256
	if w := RootCapacityForVolume(n, 1); w != 1 {
		t.Errorf("tiny volume should clamp to w=1, got %d", w)
	}
	if w := RootCapacityForVolume(n, 1e12); w != n {
		t.Errorf("huge volume should clamp to w=n, got %d", w)
	}
}

func TestNewUniversalOfVolume(t *testing.T) {
	t.Parallel()
	n := 1024
	ft := NewUniversalOfVolume(n, HypercubeVolume(n))
	if ft.Processors() != n {
		t.Fatalf("wrong processor count")
	}
	if ft.RootCapacity() < n/8 {
		t.Errorf("hypercube-volume fat-tree root capacity %d suspiciously small", ft.RootCapacity())
	}
}

func TestScaledDownFatTreeIsCheaper(t *testing.T) {
	t.Parallel()
	// The core hardware-efficiency claim: a fat-tree sized for planar traffic
	// (w ~ sqrt n) costs far less volume than a hypercube.
	n := 1 << 12
	w := int(math.Sqrt(float64(n)))
	planar := UniversalVolume(n, w)
	cube := HypercubeVolume(n)
	if planar*4 > cube {
		t.Errorf("planar-scale fat-tree (%.0f) not clearly cheaper than hypercube (%.0f)", planar, cube)
	}
}

func TestBaselineVolumes(t *testing.T) {
	t.Parallel()
	n := 1 << 10
	if HypercubeVolume(n) <= MeshVolume(n) {
		t.Errorf("hypercube must cost more than mesh")
	}
	if got := VolumeLowerBoundFromBisection(n, n/2); got < math.Pow(float64(n)/2, 1.5) {
		t.Errorf("bisection bound too small: %g", got)
	}
	if got := VolumeLowerBoundFromBisection(n, 1); got != float64(n) {
		t.Errorf("processor-count bound should dominate for tiny bisection: %g", got)
	}
	if ButterflyVolume(n) < float64(n)*math.Log2(float64(n)) {
		t.Errorf("butterfly volume below its switch count")
	}
}

func TestFatTreeNodeBoxesWithinTheorem4Volume(t *testing.T) {
	t.Parallel()
	// The sum of the node boxes must not exceed the Theorem 4 volume figure
	// by more than a constant: the layout construction packs them plus
	// inter-node wiring.
	n, w := 1<<10, 1<<8
	boxes := FatTreeNodeBoxes(n, w)
	sum := SumVolume(boxes)
	total := UniversalVolume(n, w)
	if sum > 40*total {
		t.Errorf("node boxes (%.0f) wildly exceed Theorem 4 volume (%.0f)", sum, total)
	}
	if len(boxes) != n-1 {
		t.Errorf("expected %d node boxes, got %d", n-1, len(boxes))
	}
}
