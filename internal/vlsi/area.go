package vlsi

import (
	"fmt"
	"math"

	"fattree/internal/core"
)

// Two-dimensional (Thompson-model) cost figures for area-universal
// fat-trees, mirroring the Theorem 4 family one dimension down: a region of
// area A has perimeter Θ(sqrt A), so an area-universal fat-tree with root
// capacity w occupies area Θ((w·lg(n/w))²) and, inversely, an area-A tree
// has root capacity Θ(sqrt(A)/lg(n/sqrt A)).

// UniversalArea returns the Θ((w·lg(n/w))²) area of an area-universal
// fat-tree (lg clamped to at least 1; w = n gives Θ(n²), Thompson's figure
// for any full-bisection 2-D layout).
func UniversalArea(n, w int) float64 {
	if n < 2 || w < 1 {
		panic(fmt.Sprintf("vlsi: invalid area-universal fat-tree n=%d w=%d", n, w))
	}
	lg := math.Log2(float64(n) / float64(w))
	if lg < 1 {
		lg = 1
	}
	return float64(w) * lg * float64(w) * lg
}

// RootCapacityForArea inverts UniversalArea: the root capacity
// Θ(sqrt(A)/lg(n/sqrt A)) of the area-universal fat-tree of area A, clamped
// to [1, n].
func RootCapacityForArea(n int, area float64) int {
	if area <= 0 {
		panic(fmt.Sprintf("vlsi: non-positive area %g", area))
	}
	sq := math.Sqrt(area)
	lg := math.Log2(float64(n) / sq)
	if lg < 1 {
		lg = 1
	}
	w := int(sq / lg)
	if w < 1 {
		w = 1
	}
	if w > n {
		w = n
	}
	return w
}

// NewUniversal2DOfArea builds the area-universal fat-tree of area A on n
// processors.
func NewUniversal2DOfArea(n int, area float64) *core.FatTree {
	return core.NewUniversal2D(n, RootCapacityForArea(n, area))
}

// MeshArea is the Θ(n) area of the 2-D mesh, the area-optimal planar
// network.
func MeshArea(n int) float64 { return float64(n) }
