package decomp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGridLayoutValid(t *testing.T) {
	for _, n := range []int{1, 8, 27, 64, 100} {
		l := GridLayout(n, 1000)
		if err := l.Validate(); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
		if len(l.Pos) != n {
			t.Errorf("n=%d: %d positions", n, len(l.Pos))
		}
	}
}

func TestLayoutValidateCatchesDuplicates(t *testing.T) {
	l := &Layout{Side: 10, Pos: []Point{{1, 1, 1}, {1, 1, 1}}}
	if err := l.Validate(); err == nil {
		t.Errorf("duplicate positions accepted")
	}
	l2 := &Layout{Side: 10, Pos: []Point{{11, 1, 1}}}
	if err := l2.Validate(); err == nil {
		t.Errorf("out-of-cube position accepted")
	}
}

func TestCutPlanesBasics(t *testing.T) {
	l := GridLayout(64, 4096) // cube side 16
	tree := CutPlanes(l, 1)
	if err := tree.Validate(); err != nil {
		t.Fatalf("invalid tree: %v", err)
	}
	if tree.Procs() != 64 {
		t.Errorf("procs = %d", tree.Procs())
	}
	// Every processor must appear exactly once on the leaf line.
	seen := make([]bool, 64)
	for _, p := range tree.LeafProc {
		if p >= 0 {
			if seen[p] {
				t.Fatalf("processor %d on two leaves", p)
			}
			seen[p] = true
		}
	}
}

func TestCutPlanesTheorem5Shape(t *testing.T) {
	// Theorem 5: a network in a cube of volume v has an (O(v^(2/3)), 4^(1/3))
	// decomposition tree. Check the root bandwidth and the level ratio.
	vol := 32768.0 // side 32
	l := GridLayout(512, vol)
	tree := CutPlanes(l, 1)
	wantRoot := 6 * math.Pow(vol, 2.0/3.0) // surface area of the cube
	if math.Abs(tree.W[0]-wantRoot) > 1e-6*wantRoot {
		t.Errorf("root bandwidth %.1f, want %.1f", tree.W[0], wantRoot)
	}
	ratio := tree.Ratio()
	want := math.Pow(4, 1.0/3.0)
	if math.Abs(ratio-want) > 0.15 {
		t.Errorf("bandwidth ratio %.3f, want ~%.3f", ratio, want)
	}
}

func TestCutPlanesGammaScales(t *testing.T) {
	l := GridLayout(8, 512)
	a := CutPlanes(l, 1)
	b := CutPlanes(l, 2.5)
	for i := range a.W {
		if math.Abs(b.W[i]-2.5*a.W[i]) > 1e-9*b.W[i] {
			t.Errorf("gamma scaling broken at level %d", i)
		}
	}
}

func TestCutPlanesSeparatesClusteredPoints(t *testing.T) {
	// Two moderately tight clusters force deeper cuts than a uniform grid;
	// the recursion must still terminate and separate all points.
	l := &Layout{Side: 100, Pos: []Point{
		{1, 1, 1}, {4, 1, 1}, {1, 4, 1}, {1, 1, 4},
		{90, 90, 90}, {94, 90, 90},
	}}
	tree := CutPlanes(l, 1)
	if err := tree.Validate(); err != nil {
		t.Fatalf("%v", err)
	}
	if tree.Procs() != 6 {
		t.Errorf("procs = %d", tree.Procs())
	}
}

func TestCutPlanesRejectsPathologicalClusters(t *testing.T) {
	// Points closer than the dense leaf line can resolve must panic with a
	// clear message rather than exhaust memory.
	l := &Layout{Side: 100, Pos: []Point{{1, 1, 1}, {1.0000001, 1, 1}}}
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic for pathological cluster")
		}
	}()
	CutPlanes(l, 1)
}

func TestNewRegular(t *testing.T) {
	tr := NewRegular(4, 16, 2)
	if err := tr.Validate(); err != nil {
		t.Fatalf("%v", err)
	}
	if tr.W[0] != 16 || tr.W[4] != 1 {
		t.Errorf("bandwidths wrong: %v", tr.W)
	}
	if r := tr.Ratio(); math.Abs(r-2) > 1e-9 {
		t.Errorf("ratio %v", r)
	}
}

func TestMaximalSubtrees(t *testing.T) {
	cases := []struct {
		iv      Interval
		heights []int
	}{
		{Interval{0, 8}, []int{3}},
		{Interval{0, 7}, []int{2, 1, 0}},
		{Interval{1, 8}, []int{0, 1, 2}},
		{Interval{3, 11}, []int{0, 2, 1, 0}},
		{Interval{5, 6}, []int{0}},
		{Interval{2, 6}, []int{1, 1}},
	}
	for _, c := range cases {
		got := MaximalSubtrees(c.iv)
		if len(got) != len(c.heights) {
			t.Errorf("%+v: got %v want %v", c.iv, got, c.heights)
			continue
		}
		for i := range got {
			if got[i] != c.heights[i] {
				t.Errorf("%+v: got %v want %v", c.iv, got, c.heights)
				break
			}
		}
	}
}

func TestMaximalSubtreesProperties(t *testing.T) {
	// Lemma 7: the forest covers the interval exactly, has at most two trees
	// of any height, and the largest height is at most lg k.
	f := func(loRaw, lenRaw uint16) bool {
		lo := int(loRaw) % 1000
		k := int(lenRaw)%1000 + 1
		iv := Interval{lo, lo + k}
		heights := MaximalSubtrees(iv)
		covered := 0
		countAt := map[int]int{}
		maxH := 0
		for _, h := range heights {
			covered += 1 << uint(h)
			countAt[h]++
			if h > maxH {
				maxH = h
			}
		}
		if covered != k {
			return false
		}
		for _, c := range countAt {
			if c > 2 {
				return false
			}
		}
		return maxH <= int(math.Ceil(math.Log2(float64(k))))+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSplitPearlsOneString(t *testing.T) {
	// BBWW: exact halving needs one black and one white per side.
	colors := []bool{true, true, false, false}
	isBlack := func(i int) bool { return colors[i] }
	a, b := SplitPearls(isBlack, []Interval{{0, 4}})
	if countBlacks(isBlack, a) != 1 || countBlacks(isBlack, b) != 1 {
		t.Errorf("BBWW split blacks %d/%d, want 1/1", countBlacks(isBlack, a), countBlacks(isBlack, b))
	}
	if totalLen(a) != 2 || totalLen(b) != 2 {
		t.Errorf("BBWW split lengths %d/%d", totalLen(a), totalLen(b))
	}
	if len(a) > 2 || len(b) > 2 {
		t.Errorf("too many strings: %d, %d", len(a), len(b))
	}
}

func TestSplitPearlsAdversarialTwoStrings(t *testing.T) {
	// Blacks hidden at the far ends: prefix-only families fail, the full
	// valid space must find the split. S1 = WWWWWWBBBB, S2 = BBWW.
	colors := []bool{
		false, false, false, false, false, false, true, true, true, true, // [0,10)
		true, true, false, false, // [20,24)
	}
	pos := func(i int) bool {
		if i < 10 {
			return colors[i]
		}
		return colors[10+i-20]
	}
	a, b := SplitPearls(pos, []Interval{{0, 10}, {20, 24}})
	ba, bb := countBlacks(pos, a), countBlacks(pos, b)
	if d := ba - bb; d < -1 || d > 1 {
		t.Errorf("blacks split %d/%d", ba, bb)
	}
	if d := totalLen(a) - totalLen(b); d < -1 || d > 1 {
		t.Errorf("lengths split %d/%d", totalLen(a), totalLen(b))
	}
	if len(a) > 2 || len(b) > 2 {
		t.Errorf("too many strings: a=%v b=%v", a, b)
	}
}

func TestSplitPearlsProperty(t *testing.T) {
	// Property over random colorings and random one-or-two-string inputs:
	// blacks within 1, lengths within 1, at most two strings per side, exact
	// partition of positions.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		len1 := 1 + rng.Intn(40)
		len2 := rng.Intn(40)
		colors := make(map[int]bool)
		for i := 0; i < len1; i++ {
			colors[i] = rng.Intn(2) == 0
		}
		for i := 0; i < len2; i++ {
			colors[100+i] = rng.Intn(2) == 0
		}
		isBlack := func(i int) bool { return colors[i] }
		strs := []Interval{{0, len1}}
		if len2 > 0 {
			strs = append(strs, Interval{100, 100 + len2})
		}
		a, b := SplitPearls(isBlack, strs)
		if len(a) > 2 || len(b) > 2 {
			return false
		}
		if d := countBlacks(isBlack, a) - countBlacks(isBlack, b); d < -1 || d > 1 {
			return false
		}
		if d := totalLen(a) - totalLen(b); d < -1 || d > 1 {
			return false
		}
		// Exact partition: every position in exactly one side.
		seen := map[int]int{}
		for _, s := range append(append([]Interval{}, a...), b...) {
			for i := s.Lo; i < s.Hi; i++ {
				seen[i]++
			}
		}
		if len(seen) != len1+len2 {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBalanceRegularTree(t *testing.T) {
	tr := NewRegular(6, 64, math.Pow(4, 1.0/3.0))
	bt := Balance(tr)
	if err := bt.Validate(); err != nil {
		t.Fatalf("%v", err)
	}
	if bt.Procs != 64 {
		t.Errorf("root procs %d", bt.Procs)
	}
	// Balanced to within one at every level means height = lg n = 6.
	if h := bt.Height(); h != 6 {
		t.Errorf("height %d, want 6", h)
	}
	// Every processor appears exactly once in leaf order.
	order := bt.LeafOrder(tr)
	if len(order) != 64 {
		t.Fatalf("leaf order has %d processors", len(order))
	}
	seen := make([]bool, 64)
	for _, p := range order {
		if seen[p] {
			t.Fatalf("processor %d twice in leaf order", p)
		}
		seen[p] = true
	}
}

func TestCorollary9BandwidthBound(t *testing.T) {
	// For a (w, a) decomposition tree, the balanced tree's level-j bandwidth
	// is at most 4a/(a-1)·w_{j-1} (one extra level of slack covers the ±1
	// string-length accumulation). Verify on regular trees for a = 2 and
	// a = 4^(1/3).
	for _, a := range []float64{2, math.Pow(4, 1.0/3.0)} {
		depth := 8
		w := math.Pow(a, float64(depth)) // leaf bandwidth 1
		tr := NewRegular(depth, w, a)
		bt := Balance(tr)
		if err := bt.Validate(); err != nil {
			t.Fatalf("a=%.2f: %v", a, err)
		}
		maxBW := bt.MaxBandwidthAtLevel()
		factor := 4 * a / (a - 1)
		for j, bw := range maxBW {
			wj := w / math.Pow(a, float64(j))
			bound := factor * wj * a // one level of slack
			if bw > bound+1e-6 {
				t.Errorf("a=%.2f level %d: bandwidth %.1f exceeds Corollary 9 bound %.1f",
					a, j, bw, bound)
			}
		}
	}
}

func TestBalanceSparseTree(t *testing.T) {
	// A tree where only a quarter of the leaves hold processors, clustered at
	// one end — balancing must still split processors evenly.
	depth := 6
	size := 1 << depth
	tr := &Tree{Depth: depth, W: make([]float64, depth+1), LeafProc: make([]int, size)}
	for i := range tr.W {
		tr.W[i] = float64(int(1) << uint(depth-i))
	}
	for i := range tr.LeafProc {
		tr.LeafProc[i] = -1
	}
	nproc := size / 4
	tr.ProcLeaf = make([]int, nproc)
	for p := 0; p < nproc; p++ {
		tr.LeafProc[p] = p // all clustered at the left end
		tr.ProcLeaf[p] = p
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("%v", err)
	}
	bt := Balance(tr)
	if err := bt.Validate(); err != nil {
		t.Fatalf("%v", err)
	}
	if got := len(bt.LeafOrder(tr)); got != nproc {
		t.Errorf("leaf order %d, want %d", got, nproc)
	}
}

func TestBalanceFromCutPlanes(t *testing.T) {
	// End-to-end Section V: layout -> decomposition tree -> balanced tree.
	l := GridLayout(128, 8000)
	tr := CutPlanes(l, 1)
	bt := Balance(tr)
	if err := bt.Validate(); err != nil {
		t.Fatalf("%v", err)
	}
	if bt.Procs != 128 {
		t.Errorf("procs %d", bt.Procs)
	}
	order := bt.LeafOrder(tr)
	if len(order) != 128 {
		t.Errorf("leaf order %d", len(order))
	}
}

func TestIntervalBandwidthMonotone(t *testing.T) {
	// Wider intervals cannot have less bandwidth on a regular tree.
	tr := NewRegular(8, 256, 2)
	prev := 0.0
	for k := 1; k <= 256; k *= 2 {
		bw := IntervalBandwidth(tr, Interval{0, k})
		if bw < prev {
			t.Errorf("bandwidth decreased at width %d", k)
		}
		prev = bw
	}
	// An aligned block of 2^h leaves is a single subtree: bandwidth is
	// exactly W[depth-h].
	if bw := IntervalBandwidth(tr, Interval{0, 16}); bw != tr.W[4] {
		t.Errorf("aligned block bandwidth %.1f, want %.1f", bw, tr.W[4])
	}
}
