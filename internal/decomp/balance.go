package decomp

import "fmt"

// This file implements Theorem 8: from any [w0, ..., wr] decomposition tree a
// *balanced* decomposition tree can be produced, in which the number of
// processors on either side of every partition is equal to within one, at the
// cost of a constant-factor bandwidth increase: the level-j bandwidth becomes
// w'_j <= 4·Σ_{i>=j} w_i (Corollary 9: 4a/(a-1)·w_j for a (w, a) tree).
// Each balanced node corresponds to at most two strings of consecutive leaves
// of the original tree, split recursively with Lemma 6.

// BNode is a node of a balanced decomposition tree. Leaves have at most one
// processor.
type BNode struct {
	// Strings are the (at most two) runs of consecutive original-tree leaves
	// making up this node's region.
	Strings []Interval
	// Procs is the number of processors in the region.
	Procs int
	// Bandwidth is the node's external bandwidth, computed from the Lemma 7
	// forests of its strings.
	Bandwidth float64
	// Level is the node's distance from the balanced root.
	Level int

	Left, Right *BNode
}

// IsLeaf reports whether the node is a balanced-tree leaf (<= 1 processor).
func (b *BNode) IsLeaf() bool { return b.Left == nil && b.Right == nil }

// Balance builds the balanced decomposition tree of Theorem 8 from t.
// Considering the line of leaves as a string of black (processor) and white
// (empty) pearls, Lemma 6 cuts the string into two sets of at most two
// strings each with half the pearls of each color; recursing balances every
// level, and at level ceil(lg n) each set contains at most one processor.
func Balance(t *Tree) *BNode {
	isBlack := func(pos int) bool { return t.LeafProc[pos] >= 0 }
	root := &BNode{
		Strings: []Interval{{0, t.Leaves()}},
		Procs:   t.Procs(),
		Level:   0,
	}
	root.Bandwidth = StringsBandwidth(t, root.Strings)
	balanceRec(t, isBlack, root)
	return root
}

func balanceRec(t *Tree, isBlack func(int) bool, node *BNode) {
	if node.Procs <= 1 {
		return
	}
	aStrs, bStrs := SplitPearls(isBlack, node.Strings)
	aProcs := countBlacks(isBlack, aStrs)
	node.Left = &BNode{
		Strings:   aStrs,
		Procs:     aProcs,
		Bandwidth: StringsBandwidth(t, aStrs),
		Level:     node.Level + 1,
	}
	node.Right = &BNode{
		Strings:   bStrs,
		Procs:     node.Procs - aProcs,
		Bandwidth: StringsBandwidth(t, bStrs),
		Level:     node.Level + 1,
	}
	balanceRec(t, isBlack, node.Left)
	balanceRec(t, isBlack, node.Right)
}

// Walk visits every node of the balanced tree in pre-order.
func (b *BNode) Walk(fn func(*BNode)) {
	fn(b)
	if b.Left != nil {
		b.Left.Walk(fn)
	}
	if b.Right != nil {
		b.Right.Walk(fn)
	}
}

// Height returns the height of the balanced tree.
func (b *BNode) Height() int {
	if b.IsLeaf() {
		return 0
	}
	lh, rh := b.Left.Height(), b.Right.Height()
	if lh > rh {
		return lh + 1
	}
	return rh + 1
}

// LeafOrder returns the processors in the in-order sequence of the balanced
// tree's occupied leaves. This ordering is the "identification of the
// processors of FT with the processors of R" used by Theorem 10: processor
// LeafOrder[i] of the network is identified with fat-tree processor i.
func (b *BNode) LeafOrder(t *Tree) []int {
	var order []int
	var rec func(n *BNode)
	rec = func(n *BNode) {
		if n.IsLeaf() {
			for _, s := range n.Strings {
				for pos := s.Lo; pos < s.Hi; pos++ {
					if p := t.LeafProc[pos]; p >= 0 {
						order = append(order, p)
					}
				}
			}
			return
		}
		rec(n.Left)
		rec(n.Right)
	}
	rec(b)
	return order
}

// Validate checks the Theorem 8 invariants throughout the balanced tree:
// every node has at most two strings; children's processor counts are equal
// to within one and sum to the parent's; string lengths also split to within
// one (both pearl colors are balanced). maxBandwidthAtLevel returns, per
// balanced level, the maximum node bandwidth, for comparison against the
// Corollary 9 bound.
func (b *BNode) Validate() error {
	var err error
	b.Walk(func(n *BNode) {
		if err != nil {
			return
		}
		if len(n.Strings) > 2 {
			err = fmt.Errorf("decomp: node at level %d has %d strings", n.Level, len(n.Strings))
			return
		}
		if n.IsLeaf() {
			if n.Procs > 1 {
				err = fmt.Errorf("decomp: leaf at level %d holds %d processors", n.Level, n.Procs)
			}
			return
		}
		l, r := n.Left, n.Right
		if l.Procs+r.Procs != n.Procs {
			err = fmt.Errorf("decomp: level %d: children procs %d+%d != %d", n.Level, l.Procs, r.Procs, n.Procs)
			return
		}
		if d := l.Procs - r.Procs; d < -1 || d > 1 {
			err = fmt.Errorf("decomp: level %d: unbalanced procs %d vs %d", n.Level, l.Procs, r.Procs)
			return
		}
		if d := totalLen(l.Strings) - totalLen(r.Strings); d < -1 || d > 1 {
			err = fmt.Errorf("decomp: level %d: unbalanced lengths %d vs %d",
				n.Level, totalLen(l.Strings), totalLen(r.Strings))
			return
		}
	})
	return err
}

// MaxBandwidthAtLevel returns, for each balanced level j, the maximum
// bandwidth of any node at that level.
func (b *BNode) MaxBandwidthAtLevel() []float64 {
	var levels []float64
	b.Walk(func(n *BNode) {
		for len(levels) <= n.Level {
			levels = append(levels, 0)
		}
		if n.Bandwidth > levels[n.Level] {
			levels[n.Level] = n.Bandwidth
		}
	})
	return levels
}
