package decomp

import (
	"fmt"
	"math"
)

// Tree is a [w0, w1, ..., wr] decomposition tree of a routing network R on a
// set of processors: the amount of information that can enter or leave the
// whole processor set is at most W[0] bits per unit time; R can be
// partitioned into two sets each with bandwidth at most W[1]; each of those
// into two with bandwidth at most W[2]; and so on, until every set at the
// r-th level has either zero or one processors in it.
//
// The tree is complete with 2^Depth leaves; LeafProc records which processor
// (if any) occupies each leaf of the drawing with leaves on a line, and
// ProcLeaf is the inverse map.
type Tree struct {
	Depth    int       // r
	W        []float64 // W[i] = bandwidth bound at level i, len Depth+1
	LeafProc []int     // leaf position -> processor or -1, len 2^Depth
	ProcLeaf []int     // processor -> leaf position
}

// Leaves returns the number of leaf positions, 2^Depth.
func (t *Tree) Leaves() int { return 1 << uint(t.Depth) }

// Procs returns the number of processors in the tree.
func (t *Tree) Procs() int { return len(t.ProcLeaf) }

// Ratio returns the per-level bandwidth decrease factor a of a (w, a)
// decomposition tree, estimated as the geometric mean of successive W ratios.
// Theorem 5's cut-plane trees have a = 4^(1/3).
func (t *Tree) Ratio() float64 {
	if t.Depth == 0 {
		return 1
	}
	product := 1.0
	for i := 1; i <= t.Depth; i++ {
		product *= t.W[i-1] / t.W[i]
	}
	return math.Pow(product, 1.0/float64(t.Depth))
}

// Validate checks structural invariants: bandwidths positive and
// non-increasing, maps mutually inverse.
func (t *Tree) Validate() error {
	if len(t.W) != t.Depth+1 {
		return fmt.Errorf("decomp: %d bandwidth levels for depth %d", len(t.W), t.Depth)
	}
	for i, w := range t.W {
		if w <= 0 {
			return fmt.Errorf("decomp: non-positive bandwidth %g at level %d", w, i)
		}
		if i > 0 && w > t.W[i-1] {
			return fmt.Errorf("decomp: bandwidth increases from level %d to %d", i-1, i)
		}
	}
	if len(t.LeafProc) != t.Leaves() {
		return fmt.Errorf("decomp: %d leaves, want %d", len(t.LeafProc), t.Leaves())
	}
	for p, leaf := range t.ProcLeaf {
		if leaf < 0 || leaf >= len(t.LeafProc) || t.LeafProc[leaf] != p {
			return fmt.Errorf("decomp: processor %d mapped to leaf %d inconsistently", p, leaf)
		}
	}
	count := 0
	for _, p := range t.LeafProc {
		if p >= 0 {
			count++
		}
	}
	if count != len(t.ProcLeaf) {
		return fmt.Errorf("decomp: %d occupied leaves for %d processors", count, len(t.ProcLeaf))
	}
	return nil
}

// NewRegular builds a synthetic (w, a) decomposition tree of the given depth
// with every leaf occupied: W[i] = w/a^i and processor p at leaf p. It is the
// shape Theorem 5 produces for a fully populated cube and is used directly in
// tests and benchmarks of the balancing machinery.
func NewRegular(depth int, w, a float64) *Tree {
	if depth < 0 || w <= 0 || a < 1 {
		panic(fmt.Sprintf("decomp: invalid regular tree depth=%d w=%g a=%g", depth, w, a))
	}
	size := 1 << uint(depth)
	t := &Tree{
		Depth:    depth,
		W:        make([]float64, depth+1),
		LeafProc: make([]int, size),
		ProcLeaf: make([]int, size),
	}
	bw := w
	for i := 0; i <= depth; i++ {
		t.W[i] = bw
		bw /= a
	}
	for i := 0; i < size; i++ {
		t.LeafProc[i] = i
		t.ProcLeaf[i] = i
	}
	return t
}
