// Package decomp implements the decomposition-tree machinery of Section V of
// the paper: cut-plane decomposition trees of physical network layouts
// (Theorem 5), the strings-of-pearls partitioning lemma (Lemma 6), the
// forest-of-complete-subtrees lemma (Lemma 7), and balanced decomposition
// trees (Theorem 8 / Corollary 9). These bring the single physical assumption
// of the universality theorem — at most O(a) bits per unit time through a
// closed surface of area a — to bear on an arbitrary routing network.
package decomp

import (
	"fmt"
	"math"
)

// Point is a position in three-dimensional space, in the unit cells of the
// VLSI model.
type Point struct {
	X, Y, Z float64
}

// Layout is a physical arrangement of processors inside a cube of side Side:
// processor p sits at Pos[p]. Positions must be pairwise distinct and lie in
// [0, Side)^3 for CutPlanes to terminate.
type Layout struct {
	Side float64
	Pos  []Point
}

// Volume returns the volume of the enclosing cube.
func (l *Layout) Volume() float64 { return l.Side * l.Side * l.Side }

// Validate checks that positions are in range and pairwise distinct.
func (l *Layout) Validate() error {
	seen := make(map[Point]int, len(l.Pos))
	for p, pt := range l.Pos {
		if pt.X < 0 || pt.X >= l.Side || pt.Y < 0 || pt.Y >= l.Side || pt.Z < 0 || pt.Z >= l.Side {
			return fmt.Errorf("decomp: processor %d at %v outside cube of side %g", p, pt, l.Side)
		}
		if q, dup := seen[pt]; dup {
			return fmt.Errorf("decomp: processors %d and %d share position %v", q, p, pt)
		}
		seen[pt] = p
	}
	return nil
}

// GridLayout places n processors on a regular 3-D grid filling a cube of the
// given volume — the generic layout used for baseline networks whose precise
// floorplan the paper abstracts away. Grid points are offset off cut
// boundaries so median cuts separate them cleanly.
func GridLayout(n int, volume float64) *Layout {
	if n < 1 || volume <= 0 {
		panic(fmt.Sprintf("decomp: invalid grid layout n=%d volume=%g", n, volume))
	}
	side := math.Cbrt(volume)
	k := 1
	for k*k*k < n {
		k++
	}
	l := &Layout{Side: side, Pos: make([]Point, n)}
	step := side / float64(k)
	for p := 0; p < n; p++ {
		x := p % k
		y := (p / k) % k
		z := p / (k * k)
		l.Pos[p] = Point{
			X: (float64(x) + 0.293) * step,
			Y: (float64(y) + 0.293) * step,
			Z: (float64(z) + 0.293) * step,
		}
	}
	return l
}

// box is an axis-aligned region of the layout cube.
type box struct {
	min, max Point
}

func (b box) surfaceArea() float64 {
	dx, dy, dz := b.max.X-b.min.X, b.max.Y-b.min.Y, b.max.Z-b.min.Z
	return 2 * (dx*dy + dy*dz + dz*dx)
}

// CutPlanes builds the decomposition tree of Theorem 5 for the layout: a
// rectilinearly oriented plane splits the cube into two equal boxes, the next
// level cuts perpendicular to the first, the third dimension follows, and the
// procedure repeats until each box contains at most one processor. gamma is
// the constant relating surface area to bandwidth (bits per unit time through
// a surface of area a is at most gamma·a).
//
// The returned Tree has uniform depth r (boxes with zero or one processors
// are split down to the bottom so all leaves align), per-level bandwidths
// W[i] = gamma · (surface area of a level-i box), and the leaf line in cut
// order. Theorem 5's statement follows: W[0] = O(v^(2/3)) and the bandwidths
// shrink by 4^(1/3) per level (exactly by 2^(2/3) every cut once the box
// aspect cycle repeats).
func CutPlanes(l *Layout, gamma float64) *Tree {
	if err := l.Validate(); err != nil {
		panic(err)
	}
	n := len(l.Pos)
	// Depth: enough cuts that every processor is alone. Each triple of cuts
	// halves every box dimension, so distinct points separate once box
	// diagonals shrink below the minimum pairwise gap; grow depth adaptively
	// by first computing it via a trial recursion.
	r := requiredDepth(l)
	size := 1 << uint(r)

	t := &Tree{
		Depth:    r,
		W:        make([]float64, r+1),
		LeafProc: make([]int, size),
		ProcLeaf: make([]int, n),
	}
	for i := range t.LeafProc {
		t.LeafProc[i] = -1
	}

	// Per-level bandwidth from box geometry: every box at a level has the
	// same dimensions because cuts are at midpoints with a fixed axis cycle.
	b := box{max: Point{l.Side, l.Side, l.Side}}
	for i := 0; i <= r; i++ {
		t.W[i] = gamma * b.surfaceArea()
		b = halveBox(b, i%3).a
	}

	procs := make([]int, n)
	for i := range procs {
		procs[i] = i
	}
	var rec func(b box, procs []int, depth, leafBase int)
	rec = func(b box, procs []int, depth, leafBase int) {
		if depth == r {
			if len(procs) > 1 {
				panic("decomp: depth exhausted with multiple processors in one box")
			}
			if len(procs) == 1 {
				t.LeafProc[leafBase] = procs[0]
				t.ProcLeaf[procs[0]] = leafBase
			}
			return
		}
		halves := halveBox(b, depth%3)
		var left, right []int
		for _, p := range procs {
			if inBox(halves.a, l.Pos[p]) {
				left = append(left, p)
			} else {
				right = append(right, p)
			}
		}
		half := 1 << uint(r-depth-1)
		rec(halves.a, left, depth+1, leafBase)
		rec(halves.b, right, depth+1, leafBase+half)
	}
	rec(box{max: Point{l.Side, l.Side, l.Side}}, procs, 0, 0)
	return t
}

// boxPair is the two halves of a cut box.
type boxPair struct{ a, b box }

// halveBox splits b in two equal boxes by a plane perpendicular to the given
// axis (0 = X, 1 = Y, 2 = Z).
func halveBox(b box, axis int) boxPair {
	lo, hi := b, b
	switch axis {
	case 0:
		mid := (b.min.X + b.max.X) / 2
		lo.max.X, hi.min.X = mid, mid
	case 1:
		mid := (b.min.Y + b.max.Y) / 2
		lo.max.Y, hi.min.Y = mid, mid
	default:
		mid := (b.min.Z + b.max.Z) / 2
		lo.max.Z, hi.min.Z = mid, mid
	}
	return boxPair{a: lo, b: hi}
}

// inBox reports whether the point lies in the half-open box [min, max).
func inBox(b box, p Point) bool {
	return p.X >= b.min.X && p.X < b.max.X &&
		p.Y >= b.min.Y && p.Y < b.max.Y &&
		p.Z >= b.min.Z && p.Z < b.max.Z
}

// maxCutDepth bounds the decomposition depth: the leaf line is stored
// densely, so 2^maxCutDepth is the largest affordable leaf count. Layouts
// whose closest pair is within ~side/2^(maxCutDepth/3) of each other exceed
// it.
const maxCutDepth = 22

// requiredDepth runs the cut recursion without building leaves to find the
// depth at which every box holds at most one processor. It panics past
// maxCutDepth, which only duplicate or extremely clustered points reach.
func requiredDepth(l *Layout) int {
	maxDepth := 0
	procs := make([]int, len(l.Pos))
	for i := range procs {
		procs[i] = i
	}
	var rec func(b box, procs []int, depth int)
	rec = func(b box, procs []int, depth int) {
		if len(procs) <= 1 {
			if depth > maxDepth {
				maxDepth = depth
			}
			return
		}
		if depth > maxCutDepth {
			panic(fmt.Sprintf("decomp: cut recursion exceeds depth %d (2^%d leaves); "+
				"positions are too clustered for the dense leaf-line representation",
				maxCutDepth, maxCutDepth))
		}
		halves := halveBox(b, depth%3)
		var left, right []int
		for _, p := range procs {
			if inBox(halves.a, l.Pos[p]) {
				left = append(left, p)
			} else {
				right = append(right, p)
			}
		}
		rec(halves.a, left, depth+1)
		rec(halves.b, right, depth+1)
	}
	rec(box{max: Point{l.Side, l.Side, l.Side}}, procs, 0)
	return maxDepth
}
