package decomp

import "math/bits"

// This file implements Lemma 7: for a complete binary tree drawn with leaves
// on a line, any string of k consecutive leaves is covered by a forest of
// maximal complete subtrees with at most two trees of any given height and
// largest height at most lg k. All external communication of a complete
// subtree of a decomposition tree occurs through the surface corresponding to
// its root, so the bandwidth available to a leaf interval is the sum of its
// forest roots' bandwidths.

// MaximalSubtrees decomposes the leaf interval [iv.Lo, iv.Hi) of a complete
// binary tree into the maximal aligned complete subtrees whose leaves lie
// only in the interval, returning the heights of their roots in left-to-right
// order. A subtree of height h covers an aligned block of 2^h leaves.
func MaximalSubtrees(iv Interval) []int {
	var heights []int
	lo, hi := iv.Lo, iv.Hi
	for lo < hi {
		// The largest aligned block starting at lo: limited by lo's
		// alignment and by the remaining length.
		maxH := bits.Len(uint(hi-lo)) - 1 // largest 2^h <= hi-lo
		h := bits.TrailingZeros(uint(lo))
		if lo == 0 || h > maxH {
			h = maxH
		}
		heights = append(heights, h)
		lo += 1 << uint(h)
	}
	return heights
}

// IntervalBandwidth returns the total external bandwidth of the leaf interval
// under a decomposition tree with per-level bandwidths W (level 0 = root,
// level depth = leaves): the sum over the Lemma 7 forest of each root's
// bandwidth W[depth - height].
func IntervalBandwidth(t *Tree, iv Interval) float64 {
	total := 0.0
	for _, h := range MaximalSubtrees(iv) {
		level := t.Depth - h
		if level < 0 {
			level = 0
		}
		total += t.W[level]
	}
	return total
}

// StringsBandwidth sums IntervalBandwidth over a set of strings — the
// external bandwidth of a balanced-decomposition-tree node per the proof of
// Theorem 8.
func StringsBandwidth(t *Tree, strs []Interval) float64 {
	total := 0.0
	for _, s := range strs {
		total += IntervalBandwidth(t, s)
	}
	return total
}
