package decomp

import (
	"math"
	"testing"
)

func TestCutLinesBasics(t *testing.T) {
	l := GridLayout2D(64, 256) // square side 16
	tree := CutLines(l, 1)
	if err := tree.Validate(); err != nil {
		t.Fatalf("%v", err)
	}
	if tree.Procs() != 64 {
		t.Errorf("procs %d", tree.Procs())
	}
	// Root bandwidth = perimeter of the square = 4·16 = 64.
	if math.Abs(tree.W[0]-64) > 1e-9 {
		t.Errorf("W0 = %v, want 64", tree.W[0])
	}
	// Per-level ratio sqrt(2).
	if r := tree.Ratio(); math.Abs(r-math.Sqrt2) > 0.05 {
		t.Errorf("ratio %v, want sqrt2", r)
	}
}

func TestCutLinesRejectsNonPlanar(t *testing.T) {
	l := &Layout{Side: 10, Pos: []Point{{1, 1, 1}}}
	defer func() {
		if recover() == nil {
			t.Errorf("non-planar layout accepted")
		}
	}()
	CutLines(l, 1)
}

func TestCutLinesBalances(t *testing.T) {
	l := GridLayout2D(100, 400)
	tree := CutLines(l, 1)
	bt := Balance(tree)
	if err := bt.Validate(); err != nil {
		t.Fatalf("%v", err)
	}
	if got := len(bt.LeafOrder(tree)); got != 100 {
		t.Errorf("leaf order %d", got)
	}
}

func TestGridLayout2DPlanar(t *testing.T) {
	l := GridLayout2D(50, 100)
	if err := l.Validate(); err != nil {
		t.Fatalf("%v", err)
	}
	for p, pt := range l.Pos {
		if pt.Z != 0 {
			t.Fatalf("processor %d not planar", p)
		}
	}
}
