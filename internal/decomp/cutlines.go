package decomp

import (
	"fmt"
	"math"
)

// CutLines is the two-dimensional analog of CutPlanes (Theorem 5 in
// Thompson's planar model): a network occupying a square of area A is cut by
// alternating vertical and horizontal lines into equal halves; the bandwidth
// in or out of a region is gamma times its perimeter, so the per-level
// bandwidth ratio is 2^(1/2). Layouts must be planar: every point at Z = 0.
func CutLines(l *Layout, gamma float64) *Tree {
	if err := l.Validate(); err != nil {
		panic(err)
	}
	for p, pt := range l.Pos {
		if pt.Z != 0 {
			panic(fmt.Sprintf("decomp: CutLines needs a planar layout; processor %d has Z=%g", p, pt.Z))
		}
	}
	n := len(l.Pos)
	r := requiredDepth2D(l)
	size := 1 << uint(r)

	t := &Tree{
		Depth:    r,
		W:        make([]float64, r+1),
		LeafProc: make([]int, size),
		ProcLeaf: make([]int, n),
	}
	for i := range t.LeafProc {
		t.LeafProc[i] = -1
	}

	// Per-level bandwidth from rectangle perimeters: all rectangles at a
	// level share dimensions because cuts are at midpoints with a fixed
	// alternation.
	wDim, hDim := l.Side, l.Side
	for i := 0; i <= r; i++ {
		t.W[i] = gamma * 2 * (wDim + hDim)
		if i%2 == 0 {
			wDim /= 2
		} else {
			hDim /= 2
		}
	}

	procs := make([]int, n)
	for i := range procs {
		procs[i] = i
	}
	type rect struct{ x0, y0, x1, y1 float64 }
	var rec func(b rect, procs []int, depth, leafBase int)
	rec = func(b rect, procs []int, depth, leafBase int) {
		if depth == r {
			if len(procs) > 1 {
				panic("decomp: 2-D depth exhausted with multiple processors in one cell")
			}
			if len(procs) == 1 {
				t.LeafProc[leafBase] = procs[0]
				t.ProcLeaf[procs[0]] = leafBase
			}
			return
		}
		var lo, hi rect
		var inLo func(Point) bool
		if depth%2 == 0 {
			mid := (b.x0 + b.x1) / 2
			lo, hi = rect{b.x0, b.y0, mid, b.y1}, rect{mid, b.y0, b.x1, b.y1}
			inLo = func(p Point) bool { return p.X < mid }
		} else {
			mid := (b.y0 + b.y1) / 2
			lo, hi = rect{b.x0, b.y0, b.x1, mid}, rect{b.x0, mid, b.x1, b.y1}
			inLo = func(p Point) bool { return p.Y < mid }
		}
		var left, right []int
		for _, p := range procs {
			if inLo(l.Pos[p]) {
				left = append(left, p)
			} else {
				right = append(right, p)
			}
		}
		half := 1 << uint(r-depth-1)
		rec(lo, left, depth+1, leafBase)
		rec(hi, right, depth+1, leafBase+half)
	}
	rec(rect{0, 0, l.Side, l.Side}, procs, 0, 0)
	return t
}

// GridLayout2D places n processors on a regular grid filling a square of the
// given area (all points at Z = 0).
func GridLayout2D(n int, area float64) *Layout {
	if n < 1 || area <= 0 {
		panic(fmt.Sprintf("decomp: invalid 2-D grid layout n=%d area=%g", n, area))
	}
	side := math.Sqrt(area)
	k := 1
	for k*k < n {
		k++
	}
	l := &Layout{Side: side, Pos: make([]Point, n)}
	step := side / float64(k)
	for p := 0; p < n; p++ {
		l.Pos[p] = Point{
			X: (float64(p%k) + 0.293) * step,
			Y: (float64(p/k) + 0.293) * step,
			Z: 0,
		}
	}
	return l
}

// requiredDepth2D finds the cut depth separating all points in the plane.
func requiredDepth2D(l *Layout) int {
	maxDepth := 0
	procs := make([]int, len(l.Pos))
	for i := range procs {
		procs[i] = i
	}
	type rect struct{ x0, y0, x1, y1 float64 }
	var rec func(b rect, procs []int, depth int)
	rec = func(b rect, procs []int, depth int) {
		if len(procs) <= 1 {
			if depth > maxDepth {
				maxDepth = depth
			}
			return
		}
		if depth > maxCutDepth {
			panic(fmt.Sprintf("decomp: 2-D cut recursion exceeds depth %d; positions too clustered", maxCutDepth))
		}
		var left, right []int
		if depth%2 == 0 {
			mid := (b.x0 + b.x1) / 2
			for _, p := range procs {
				if l.Pos[p].X < mid {
					left = append(left, p)
				} else {
					right = append(right, p)
				}
			}
			rec(rect{b.x0, b.y0, mid, b.y1}, left, depth+1)
			rec(rect{mid, b.y0, b.x1, b.y1}, right, depth+1)
			return
		}
		mid := (b.y0 + b.y1) / 2
		for _, p := range procs {
			if l.Pos[p].Y < mid {
				left = append(left, p)
			} else {
				right = append(right, p)
			}
		}
		rec(rect{b.x0, b.y0, b.x1, mid}, left, depth+1)
		rec(rect{b.x0, mid, b.x1, b.y1}, right, depth+1)
	}
	rec(rect{0, 0, l.Side, l.Side}, procs, 0)
	return maxDepth
}
