package decomp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomLayout places n processors at random distinct grid-snapped positions
// in a cube — arbitrary geometry, unlike the regular grids of the baselines.
func randomLayout(n int, side float64, seed int64) *Layout {
	rng := rand.New(rand.NewSource(seed))
	l := &Layout{Side: side, Pos: make([]Point, 0, n)}
	seen := map[Point]bool{}
	// Snap to a fine grid so positions stay separable by median cuts within
	// the depth budget.
	cells := 64
	for len(l.Pos) < n {
		p := Point{
			X: (float64(rng.Intn(cells)) + 0.37) * side / float64(cells),
			Y: (float64(rng.Intn(cells)) + 0.37) * side / float64(cells),
			Z: (float64(rng.Intn(cells)) + 0.37) * side / float64(cells),
		}
		if !seen[p] {
			seen[p] = true
			l.Pos = append(l.Pos, p)
		}
	}
	return l
}

// TestPipelineOnRandomLayouts fuzzes the whole Section V pipeline on
// irregular geometry: cut-plane tree valid, balanced tree valid, every
// processor identified exactly once.
func TestPipelineOnRandomLayouts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(96)
		l := randomLayout(n, 100, seed)
		if err := l.Validate(); err != nil {
			t.Logf("seed %d: layout: %v", seed, err)
			return false
		}
		tree := CutPlanes(l, 1)
		if err := tree.Validate(); err != nil {
			t.Logf("seed %d: tree: %v", seed, err)
			return false
		}
		bt := Balance(tree)
		if err := bt.Validate(); err != nil {
			t.Logf("seed %d: balance: %v", seed, err)
			return false
		}
		order := bt.LeafOrder(tree)
		if len(order) != n {
			return false
		}
		seen := make([]bool, n)
		for _, p := range order {
			if p < 0 || p >= n || seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestBandwidthsNonincreasingOnRandomLayouts checks the (w, a) structure
// survives irregular geometry: level bandwidths never increase with depth.
func TestBandwidthsNonincreasingOnRandomLayouts(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		l := randomLayout(50, 64, seed)
		tree := CutPlanes(l, 1)
		for i := 1; i <= tree.Depth; i++ {
			if tree.W[i] > tree.W[i-1]+1e-9 {
				t.Fatalf("seed %d: bandwidth increases at level %d", seed, i)
			}
		}
	}
}
