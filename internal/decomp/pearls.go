package decomp

import "fmt"

// This file implements the strings-of-pearls partitioning of Lemma 6: given
// at most two strings of black and white pearls, cut them so that the pearls
// divide into two sets, each containing at most two strings, with each set
// holding (as near as possible) half the pearls of each color. Black pearls
// are processors, white pearls are empty leaves of a decomposition tree, and
// a "string" is a run of consecutive leaves.
//
// The implementation enumerates the complete space of valid configurations —
// a set's intersection with each input string must be a prefix or a suffix of
// it (anything else leaves the complement in three or more pieces) — and
// picks a configuration with minimum color imbalance. Lemma 6's rotation
// argument (Fig. 4) walks a connected path through exactly this space, so for
// even color counts an exact halving always exists and the enumeration finds
// it; with odd counts the split is balanced to within one, which is what
// Theorem 8 needs.

// Interval is a half-open run [Lo, Hi) of leaf positions.
type Interval struct {
	Lo, Hi int
}

// Len returns the number of positions in the interval.
func (iv Interval) Len() int { return iv.Hi - iv.Lo }

// SplitPearls divides the pearls of the given strings (at most two disjoint
// intervals, at least one pearl) into two sets A and B of at most two strings
// each, such that the black pearls (positions where isBlack is true) split to
// within one and so do the total pearls (hence the whites split to within
// two). It panics if given more than two strings, mirroring the lemma's
// precondition.
func SplitPearls(isBlack func(pos int) bool, strs []Interval) (a, b []Interval) {
	strs = normalizeStrings(strs)
	switch len(strs) {
	case 0:
		return nil, nil
	case 1:
		return splitOneString(isBlack, strs[0])
	case 2:
		return splitTwoStrings(isBlack, strs[0], strs[1])
	}
	panic(fmt.Sprintf("decomp: SplitPearls on %d strings; the invariant allows at most 2", len(strs)))
}

// normalizeStrings drops empty intervals and orders the rest by position.
func normalizeStrings(strs []Interval) []Interval {
	out := make([]Interval, 0, len(strs))
	for _, s := range strs {
		if s.Len() < 0 {
			panic(fmt.Sprintf("decomp: negative interval %+v", s))
		}
		if s.Len() > 0 {
			out = append(out, s)
		}
	}
	if len(out) == 2 && out[0].Lo > out[1].Lo {
		out[0], out[1] = out[1], out[0]
	}
	if len(out) == 2 && out[0].Hi > out[1].Lo {
		panic(fmt.Sprintf("decomp: overlapping strings %+v", out))
	}
	return out
}

// prefixBlacks returns P where P[i] = number of blacks among the first i
// positions of the interval.
func prefixBlacks(isBlack func(int) bool, s Interval) []int {
	p := make([]int, s.Len()+1)
	for i := 0; i < s.Len(); i++ {
		p[i+1] = p[i]
		if isBlack(s.Lo + i) {
			p[i+1]++
		}
	}
	return p
}

// splitOneString handles the single-string case: the circle has one junction,
// so the valid configurations are exactly the circular windows of half the
// length — an infix (complement = prefix ∪ suffix) or a wrap-around
// prefix ∪ suffix (complement = infix). A window with ceil(B/2) or floor(B/2)
// blacks always exists by discrete continuity: the window and its complement
// partition B, and one step moves the count by at most one.
func splitOneString(isBlack func(int) bool, s Interval) (a, b []Interval) {
	length := s.Len()
	if length == 1 {
		return []Interval{s}, nil
	}
	p := prefixBlacks(isBlack, s)
	total := p[length]
	half := length / 2
	target := total / 2

	blacksIn := func(i, j int) int { return p[j] - p[i] } // window [Lo+i, Lo+j)
	for start := 0; start < length; start++ {
		end := start + half
		var blacks int
		if end <= length {
			blacks = blacksIn(start, end)
		} else {
			blacks = blacksIn(start, length) + blacksIn(0, end-length)
		}
		if blacks == target || blacks == (total+1)/2 {
			if end <= length {
				a = []Interval{{s.Lo + start, s.Lo + end}}
				b = []Interval{{s.Lo, s.Lo + start}, {s.Lo + end, s.Hi}}
			} else {
				a = []Interval{{s.Lo + start, s.Hi}, {s.Lo, s.Lo + end - length}}
				b = []Interval{{s.Lo + end - length, s.Lo + start}}
			}
			return normalizeStrings(a), normalizeStrings(b)
		}
	}
	panic("decomp: no balanced window found — discrete continuity violated (bug)")
}

// splitTwoStrings handles the two-string case by enumerating the complete
// space of valid configurations with |A| = half the pearls:
//
//   - end families: A ∩ s_i is a prefix or suffix of s_i for both strings
//     (four combinations);
//   - infix families: A is an infix of one string together with all of the
//     other (the complement is the two outer pieces of the first string);
//   - outer families: A is a prefix plus a suffix of one string (the
//     complement is that string's infix together with all of the other).
//
// Every division of the pearls into two sets of at most two line-strings each
// falls into one of these shapes (an infix on one side forces the whole other
// string onto the same side, else the complement has three pieces). For the
// longer string s1, the end family prefix(s1)∪prefix(s2) connects to the
// infix family infix(s1)∪s2 at prefix(s1, half−|s2|)∪s2 and the infix slides
// to suffix(s1, half−|s2|)∪s2, which is exactly the complement of
// prefix(s1, half); along this path the black count changes by at most one
// per step and covers [x, B−x], so a count of floor(B/2) or ceil(B/2) is
// always reached — the discrete form of Lemma 6's continuity argument.
func splitTwoStrings(isBlack func(int) bool, s1, s2 Interval) (a, b []Interval) {
	l1, l2 := s1.Len(), s2.Len()
	p1 := prefixBlacks(isBlack, s1)
	p2 := prefixBlacks(isBlack, s2)
	total := p1[l1] + p2[l2]
	length := l1 + l2
	half := length / 2

	// pieceBlacks returns the black count of a prefix (kind 0) or suffix
	// (kind 1) of the string with prefix sums p.
	pieceBlacks := func(p []int, kind, pieceLen int) int {
		if kind == 0 {
			return p[pieceLen]
		}
		return p[len(p)-1] - p[len(p)-1-pieceLen]
	}
	infixBlacks := func(p []int, lo, hi int) int { return p[hi] - p[lo] }
	makePiece := func(s Interval, kind, pieceLen int) Interval {
		if kind == 0 {
			return Interval{s.Lo, s.Lo + pieceLen}
		}
		return Interval{s.Hi - pieceLen, s.Hi}
	}
	complementPiece := func(s Interval, kind, pieceLen int) Interval {
		if kind == 0 {
			return Interval{s.Lo + pieceLen, s.Hi}
		}
		return Interval{s.Lo, s.Hi - pieceLen}
	}

	bestImb := 2*length + 1
	var bestA, bestB []Interval
	record := func(blacks int, aStrs, bStrs []Interval) bool {
		imb := 2*blacks - total
		if imb < 0 {
			imb = -imb
		}
		if imb < bestImb {
			bestImb = imb
			bestA = normalizeStrings(aStrs)
			bestB = normalizeStrings(bStrs)
		}
		return bestImb <= 1
	}

	// End families.
	for k1 := 0; k1 < 2; k1++ {
		for k2 := 0; k2 < 2; k2++ {
			loA := half - l2
			if loA < 0 {
				loA = 0
			}
			hiA := half
			if hiA > l1 {
				hiA = l1
			}
			for a1 := loA; a1 <= hiA; a1++ {
				a2 := half - a1
				blacks := pieceBlacks(p1, k1, a1) + pieceBlacks(p2, k2, a2)
				if record(blacks,
					[]Interval{makePiece(s1, k1, a1), makePiece(s2, k2, a2)},
					[]Interval{complementPiece(s1, k1, a1), complementPiece(s2, k2, a2)}) {
					return bestA, bestB
				}
			}
		}
	}

	// Infix and outer families, for each orientation (sI carries the infix,
	// sO rides along whole).
	type oriented struct {
		sI, sO Interval
		pI     []int
		bO     int // blacks of the whole other string
	}
	for _, o := range []oriented{
		{s1, s2, p1, p2[l2]},
		{s2, s1, p2, p1[l1]},
	} {
		lI := o.sI.Len()
		// Infix family: A = infix(sI, t) ∪ all(sO), t = half - |sO|.
		if t := half - o.sO.Len(); t >= 0 && t <= lI {
			for i := 0; i+t <= lI; i++ {
				blacks := infixBlacks(o.pI, i, i+t) + o.bO
				if record(blacks,
					[]Interval{{o.sI.Lo + i, o.sI.Lo + i + t}, o.sO},
					[]Interval{{o.sI.Lo, o.sI.Lo + i}, {o.sI.Lo + i + t, o.sI.Hi}}) {
					return bestA, bestB
				}
			}
		}
		// Outer family: A = prefix(sI, p) ∪ suffix(sI, half-p); the
		// complement is sI's middle plus all of sO.
		if lI >= half {
			for p := 0; p <= half; p++ {
				q := half - p
				blacks := o.pI[p] + (o.pI[lI] - o.pI[lI-q])
				if record(blacks,
					[]Interval{{o.sI.Lo, o.sI.Lo + p}, {o.sI.Hi - q, o.sI.Hi}},
					[]Interval{{o.sI.Lo + p, o.sI.Hi - q}, o.sO}) {
					return bestA, bestB
				}
			}
		}
	}
	return bestA, bestB
}

// countBlacks tallies blacks across a set of intervals.
func countBlacks(isBlack func(int) bool, strs []Interval) int {
	count := 0
	for _, s := range strs {
		for i := s.Lo; i < s.Hi; i++ {
			if isBlack(i) {
				count++
			}
		}
	}
	return count
}

// totalLen tallies positions across a set of intervals.
func totalLen(strs []Interval) int {
	n := 0
	for _, s := range strs {
		n += s.Len()
	}
	return n
}
