package metrics

import "math"

// Tolerance helpers: the sanctioned replacements for exact floating-point
// equality in the numeric packages (enforced by the floatcompare analyzer,
// internal/lint). Fitted exponents, areas, and R² values travel through long
// chains of float arithmetic, so "equal" must always mean "equal to within a
// stated tolerance".

// DefaultTol is the relative tolerance used when a caller has no sharper
// error analysis: a few orders of magnitude above one ulp of float64, loose
// enough to absorb re-association and FMA contraction, tight enough that any
// physically meaningful difference in the experiment tables exceeds it.
const DefaultTol = 1e-12

// ApproxEqual reports whether a and b are equal to within the relative
// tolerance tol: |a-b| <= tol · max(1, |a|, |b|). NaNs are never
// approximately equal to anything; infinities are approximately equal only
// when identical.
func ApproxEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		//ftlint:ignore floatcompare operands are infinite here; equality is exact
		return a == b
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

// NearZero reports whether x vanishes relative to the magnitude of the
// computation that produced it: |x| <= DefaultTol · max(1, |scale|). Pass
// the sum of magnitudes of the terms whose cancellation could produce x —
// e.g. for den = n·Σx² − (Σx)², scale is n·Σx² + (Σx)².
func NearZero(x, scale float64) bool {
	return math.Abs(x) <= DefaultTol*math.Max(1, math.Abs(scale))
}
