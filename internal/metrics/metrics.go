// Package metrics provides the small statistics and table-rendering helpers
// shared by the benchmark harness, the cmd tools, and the examples. It keeps
// the experiment code focused on what is measured rather than how it is
// printed.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Summary holds order statistics of a sample.
type Summary struct {
	N                int
	Min, Max         float64
	Mean, Geomean    float64
	Median, P90, P99 float64
}

// Summarize computes order statistics of xs. An empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	sum, logSum := 0.0, 0.0
	geoOK := true
	for _, x := range s {
		sum += x
		if x > 0 {
			logSum += math.Log(x)
		} else {
			geoOK = false
		}
	}
	out := Summary{
		N:      len(s),
		Min:    s[0],
		Max:    s[len(s)-1],
		Mean:   sum / float64(len(s)),
		Median: Percentile(s, 50),
		P90:    Percentile(s, 90),
		P99:    Percentile(s, 99),
	}
	if geoOK {
		out.Geomean = math.Exp(logSum / float64(len(s)))
	}
	return out
}

// Percentile returns the p-th percentile (0..100) of a sorted sample using
// nearest-rank interpolation.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Table renders aligned ASCII tables for experiment output.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are rendered with %v, and float64 values with
// a compact %.3g.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// formatFloat renders floats compactly: integers without decimals, small
// values with three significant digits.
func formatFloat(v float64) string {
	// Exact integrality is the point here: 2.0 prints as "2", 2.0000001 must
	// not. A tolerance would silently round near-integers in the tables.
	//ftlint:ignore floatcompare exact integrality test chooses the format
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3g", v)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		return err.Error()
	}
	return b.String()
}

// MarshalJSON encodes the table as {"title", "headers", "rows"} with all
// cells as strings — the machine-readable form behind `ftbench -json`.
func (t *Table) MarshalJSON() ([]byte, error) {
	rows := t.rows
	if rows == nil {
		rows = [][]string{}
	}
	return json.Marshal(struct {
		Title   string     `json:"title"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}{t.Title, t.Headers, rows})
}
