package metrics

import (
	"fmt"
	"math"
)

// Growth-shape fitting: the experiments' claims are about *rates* — does a
// quantity grow like a polynomial in n or like a polylog? FitPower fits
// y ≈ c·n^a by least squares on log-log data, and FitPolylog fits
// y ≈ c·lg^b(n); CompareGrowth reports which model explains a series better.
// These are deliberately simple (two-parameter, closed form) so the
// experiment tables can carry fitted exponents without a stats dependency.

// PowerFit is the result of fitting y = c·x^a.
type PowerFit struct {
	C, A float64
	// R2 is the coefficient of determination in log space.
	R2 float64
}

// FitPower fits y = c·x^a by ordinary least squares on (ln x, ln y). All
// inputs must be positive; it panics otherwise (the experiments control
// their data).
func FitPower(xs, ys []float64) PowerFit {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			panic(fmt.Sprintf("metrics: FitPower needs positive data (x=%g, y=%g)", xs[i], ys[i]))
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	slope, intercept, r2 := leastSquares(lx, ly)
	return PowerFit{C: math.Exp(intercept), A: slope, R2: r2}
}

// PolylogFit is the result of fitting y = c·(lg x)^b.
type PolylogFit struct {
	C, B float64
	R2   float64
}

// FitPolylog fits y = c·(lg x)^b by least squares on (ln lg x, ln y). Inputs
// must be positive with x > 2.
func FitPolylog(xs, ys []float64) PolylogFit {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 2 || ys[i] <= 0 {
			panic(fmt.Sprintf("metrics: FitPolylog needs x > 2, y > 0 (x=%g, y=%g)", xs[i], ys[i]))
		}
		lx[i] = math.Log(math.Log2(xs[i]))
		ly[i] = math.Log(ys[i])
	}
	slope, intercept, r2 := leastSquares(lx, ly)
	return PolylogFit{C: math.Exp(intercept), B: slope, R2: r2}
}

// CompareGrowth fits both models and returns a verdict string such as
// "polynomial n^0.63 (R²=0.99)" or "polylog lg^2.1 (R²=0.98)", preferring
// the model with the higher R².
func CompareGrowth(xs, ys []float64) string {
	pw := FitPower(xs, ys)
	pl := FitPolylog(xs, ys)
	if pw.R2 >= pl.R2 {
		return fmt.Sprintf("polynomial n^%.2f (R²=%.3f)", pw.A, pw.R2)
	}
	return fmt.Sprintf("polylog lg^%.2f (R²=%.3f)", pl.B, pl.R2)
}

// leastSquares returns the slope, intercept and R² of the OLS line through
// (xs, ys).
func leastSquares(xs, ys []float64) (slope, intercept, r2 float64) {
	n := float64(len(xs))
	if len(xs) < 2 || len(xs) != len(ys) {
		panic("metrics: least squares needs at least two paired points")
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if NearZero(den, n*sxx+sx*sx) {
		// All x equal (up to cancellation error): flat fit.
		return 0, sy / n, 0
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	ssTot := syy - sy*sy/n
	if NearZero(ssTot, syy+sy*sy/n) {
		return slope, intercept, 1
	}
	ssRes := 0.0
	for i := range xs {
		d := ys[i] - (slope*xs[i] + intercept)
		ssRes += d * d
	}
	r2 = 1 - ssRes/ssTot
	return slope, intercept, r2
}
