package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	t.Parallel()
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.Median != 3 {
		t.Errorf("bad summary: %+v", s)
	}
	want := math.Pow(120, 1.0/5.0)
	if math.Abs(s.Geomean-want) > 1e-9 {
		t.Errorf("geomean %v, want %v", s.Geomean, want)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	t.Parallel()
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary: %+v", s)
	}
}

func TestSummarizeWithZeros(t *testing.T) {
	t.Parallel()
	s := Summarize([]float64{0, 2, 4})
	if s.Geomean != 0 {
		t.Errorf("geomean with zeros should be 0, got %v", s.Geomean)
	}
	if s.Mean != 2 {
		t.Errorf("mean %v", s.Mean)
	}
}

func TestPercentile(t *testing.T) {
	t.Parallel()
	sorted := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%.0f = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestSummaryInvariants(t *testing.T) {
	t.Parallel()
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Abs(x))
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return s.Min == sorted[0] && s.Max == sorted[len(sorted)-1] &&
			s.Min <= s.Median && s.Median <= s.Max &&
			s.Median <= s.P90+1e-9 && s.P90 <= s.P99+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTableMarshalJSON(t *testing.T) {
	t.Parallel()
	tab := NewTable("demo", "a", "b")
	tab.AddRow(1, 2.5)
	data, err := tab.MarshalJSON()
	if err != nil {
		t.Fatalf("%v", err)
	}
	s := string(data)
	for _, want := range []string{`"title":"demo"`, `"headers":["a","b"]`, `"rows":[["1","2.5"]]`} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %s in %s", want, s)
		}
	}
	// Empty table still encodes rows as [] not null.
	empty := NewTable("none", "x")
	data, _ = empty.MarshalJSON()
	if !strings.Contains(string(data), `"rows":[]`) {
		t.Errorf("empty rows should encode as []: %s", data)
	}
}

func TestTableRendering(t *testing.T) {
	t.Parallel()
	tab := NewTable("E1: demo", "n", "value", "note")
	tab.AddRow(16, 3.14159, "pi-ish")
	tab.AddRow(1024, 2.0, "two")
	out := tab.String()
	if !strings.Contains(out, "E1: demo") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "3.14") || !strings.Contains(out, "1024") {
		t.Errorf("missing cells:\n%s", out)
	}
	// Integral floats print without decimals.
	if !strings.Contains(out, "2 ") && !strings.HasSuffix(out, "2\n") && !strings.Contains(out, " 2 ") {
		t.Errorf("integral float not compact:\n%s", out)
	}
	if tab.Rows() != 2 {
		t.Errorf("Rows = %d", tab.Rows())
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + rule + 2 rows.
	if len(lines) != 5 {
		t.Errorf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
}
