package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestFitPowerExact(t *testing.T) {
	t.Parallel()
	// y = 3·x^1.5 exactly.
	xs := []float64{4, 16, 64, 256, 1024}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Pow(x, 1.5)
	}
	fit := FitPower(xs, ys)
	if math.Abs(fit.A-1.5) > 1e-9 || math.Abs(fit.C-3) > 1e-9 {
		t.Errorf("fit %+v, want c=3 a=1.5", fit)
	}
	if fit.R2 < 0.999999 {
		t.Errorf("R² = %v on exact data", fit.R2)
	}
}

func TestFitPolylogExact(t *testing.T) {
	t.Parallel()
	// y = 2·(lg x)³ exactly.
	xs := []float64{8, 32, 128, 1024, 65536}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2 * math.Pow(math.Log2(x), 3)
	}
	fit := FitPolylog(xs, ys)
	if math.Abs(fit.B-3) > 1e-9 || math.Abs(fit.C-2) > 1e-9 {
		t.Errorf("fit %+v, want c=2 b=3", fit)
	}
}

func TestCompareGrowthDiscriminates(t *testing.T) {
	t.Parallel()
	xs := []float64{16, 64, 256, 1024, 4096, 16384}
	poly := make([]float64, len(xs))
	plog := make([]float64, len(xs))
	for i, x := range xs {
		poly[i] = math.Pow(x, 0.66)
		plog[i] = math.Pow(math.Log2(x), 2)
	}
	if got := CompareGrowth(xs, poly); !strings.Contains(got, "polynomial n^0.66") {
		t.Errorf("polynomial data classified as %q", got)
	}
	if got := CompareGrowth(xs, plog); !strings.Contains(got, "polylog lg^2.00") {
		t.Errorf("polylog data classified as %q", got)
	}
}

func TestFitRejectsBadData(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Errorf("non-positive data accepted")
		}
	}()
	FitPower([]float64{1, 2}, []float64{0, 1})
}

func TestLeastSquaresDegenerate(t *testing.T) {
	t.Parallel()
	// Flat y: slope 0, perfect fit.
	s, i, r2 := leastSquares([]float64{1, 2, 3}, []float64{5, 5, 5})
	if s != 0 || i != 5 || r2 != 1 {
		t.Errorf("flat fit: slope=%v intercept=%v r2=%v", s, i, r2)
	}
}
