package baseline

import (
	"fmt"

	"fattree/internal/decomp"
)

// Mesh3D is the k×k×k three-dimensional array — the direct network that makes
// fullest use of the paper's 3-D VLSI model: n processors in Θ(n) volume with
// bisection Θ(n^(2/3)), the same order as the root capacity of the
// volume-matched universal fat-tree. It is the strongest "cheap" competitor:
// matched bandwidth at scale, but Θ(k) = Θ(n^(1/3)) latency on global
// traffic where the fat-tree pays only O(lg n).
type Mesh3D struct {
	k int
}

// NewMesh3D builds a k×k×k mesh on n = k³ processors.
func NewMesh3D(n int) *Mesh3D {
	k := 1
	for k*k*k < n {
		k++
	}
	if k*k*k != n || k < 2 {
		panic(fmt.Sprintf("baseline: 3-D mesh needs a perfect-cube n >= 8, got %d", n))
	}
	return &Mesh3D{k: k}
}

// Name returns "mesh3d".
func (m *Mesh3D) Name() string { return "mesh3d" }

// Nodes returns k³.
func (m *Mesh3D) Nodes() int { return m.k * m.k * m.k }

// Procs returns k³.
func (m *Mesh3D) Procs() int { return m.Nodes() }

// ProcNode is the identity.
func (m *Mesh3D) ProcNode(p int) int { return p }

// Degree returns 6.
func (m *Mesh3D) Degree() int { return 6 }

// BisectionWidth returns k² = n^(2/3).
func (m *Mesh3D) BisectionWidth() int { return m.k * m.k }

// Volume returns Θ(n): the mesh embeds isometrically in its own cube.
func (m *Mesh3D) Volume() float64 { return float64(m.Nodes()) }

// Layout is the identity embedding: processor (x, y, z) at that grid cell.
func (m *Mesh3D) Layout() *decomp.Layout {
	return decomp.GridLayout(m.Nodes(), m.Volume())
}

// Route performs XYZ dimension-ordered routing.
func (m *Mesh3D) Route(src, dst int) []int {
	k := m.k
	sx, sy, sz := src%k, (src/k)%k, src/(k*k)
	dx, dy, dz := dst%k, (dst/k)%k, dst/(k*k)
	path := []int{src}
	x, y, z := sx, sy, sz
	step := func(cur, target int) int {
		if cur < target {
			return cur + 1
		}
		return cur - 1
	}
	for x != dx {
		x = step(x, dx)
		path = append(path, z*k*k+y*k+x)
	}
	for y != dy {
		y = step(y, dy)
		path = append(path, z*k*k+y*k+x)
	}
	for z != dz {
		z = step(z, dz)
		path = append(path, z*k*k+y*k+x)
	}
	return path
}

var _ Network = (*Mesh3D)(nil)
