package baseline

import (
	"math/rand"
	"testing"

	"fattree/internal/core"
	"fattree/internal/vlsi"
	"fattree/internal/workload"
)

func TestClosSizes(t *testing.T) {
	t.Parallel()
	if c := NewClos(16); c.Radix() != 4 || c.SwitchCount() != 20 {
		t.Errorf("Clos(16): radix %d switches %d", c.Radix(), c.SwitchCount())
	}
	if c := NewClos(128); c.Radix() != 8 || c.SwitchCount() != 80 {
		t.Errorf("Clos(128): radix %d switches %d", c.Radix(), c.SwitchCount())
	}
	defer func() {
		if recover() == nil {
			t.Errorf("Clos(100) should panic")
		}
	}()
	NewClos(100)
}

func TestClosRouteShapes(t *testing.T) {
	t.Parallel()
	c := NewClos(128) // k=8
	// Same edge switch: 3 nodes.
	if path := c.Route(0, 1); len(path) != 3 {
		t.Errorf("same-edge path %v", path)
	}
	// Same pod, different edge: 5 nodes.
	if path := c.Route(0, 5); len(path) != 5 {
		t.Errorf("same-pod path %v", path)
	}
	// Cross pod: 7 nodes.
	if path := c.Route(0, 127); len(path) != 7 {
		t.Errorf("cross-pod path %v", path)
	}
}

func TestClosRoutesValid(t *testing.T) {
	t.Parallel()
	c := NewClos(128)
	ms := workload.Random(128, 500, 1)
	if err := ValidateRoutes(c, ms); err != nil {
		t.Fatalf("%v", err)
	}
	// Node id ranges respected.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		s, d := rng.Intn(128), rng.Intn(128)
		if s == d {
			continue
		}
		for _, v := range c.Route(s, d) {
			if v < 0 || v >= c.Nodes() {
				t.Fatalf("node %d out of range", v)
			}
		}
	}
}

func TestClosDownPathsUnique(t *testing.T) {
	t.Parallel()
	// From any core switch, the path to a destination is unique: two routes
	// to the same destination must coincide from their first shared node on.
	c := NewClos(128)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		dst := rng.Intn(128)
		s1, s2 := rng.Intn(128), rng.Intn(128)
		if s1 == dst || s2 == dst {
			continue
		}
		p1, p2 := c.Route(s1, dst), c.Route(s2, dst)
		// Compare suffixes after the first common node.
		common := map[int]int{}
		for i, v := range p1 {
			common[v] = i
		}
		for j, v := range p2 {
			if i, ok := common[v]; ok {
				// Suffixes must match.
				for a, b := i, j; a < len(p1) && b < len(p2); a, b = a+1, b+1 {
					if p1[a] != p2[b] {
						t.Fatalf("down paths diverge after shared node %d", v)
					}
				}
				break
			}
		}
	}
}

func TestClosDelivery(t *testing.T) {
	t.Parallel()
	c := NewClos(128)
	ms := workload.RandomPermutation(128, 5)
	res := Deliver(c, ms)
	if res.Cycles < res.MaxPathLen {
		t.Errorf("cycles %d below path bound %d", res.Cycles, res.MaxPathLen)
	}
	// Full-bisection fabric: random permutations should not congest badly.
	if res.Congestion > 8 {
		t.Errorf("unexpectedly high congestion %d on a full-bisection Clos", res.Congestion)
	}
}

func TestClosFullBisection(t *testing.T) {
	t.Parallel()
	c := NewClos(128)
	if c.BisectionWidth() != 64 {
		t.Errorf("bisection %d, want 64", c.BisectionWidth())
	}
	if c.Volume() != vlsi.HypercubeVolume(128) {
		t.Errorf("volume should match the full-bisection figure")
	}
	if err := c.Layout().Validate(); err != nil {
		t.Errorf("layout: %v", err)
	}
}

func TestClosECMPSpreadsLoad(t *testing.T) {
	t.Parallel()
	// Adversarial pattern for the deterministic choice: every processor of
	// pod 0 sends to the (edge 0, pos 0) processor of a distinct other pod —
	// all deterministic routes share aggregation position 0, while ECMP
	// spreads them over all k/2 aggregation switches.
	n := 128 // k = 8, 16 procs/pod, 7 other pods
	var ms core.MessageSet
	perPod := 16
	for i := 0; i < 7; i++ {
		src := i                // a processor in pod 0
		dst := (i + 1) * perPod // (edge 0, pos 0) of pod i+1
		ms = append(ms, core.Message{Src: src, Dst: dst})
		ms = append(ms, core.Message{Src: src + 8, Dst: dst})
	}
	det := Deliver(NewClos(n), ms)
	ecmp := Deliver(NewClosECMP(n, 7), ms)
	if ecmp.Congestion >= det.Congestion {
		t.Errorf("ECMP congestion %d not below deterministic %d", ecmp.Congestion, det.Congestion)
	}
	if err := ValidateRoutes(NewClosECMP(n, 9), ms); err != nil {
		t.Fatalf("ECMP routes invalid: %v", err)
	}
}
