package baseline

import (
	"math/rand"
	"testing"

	"fattree/internal/core"
	"fattree/internal/workload"
)

func TestCCCSizes(t *testing.T) {
	t.Parallel()
	if NewCCC(24).Nodes() != 24 { // d=3
		t.Errorf("CCC(24) wrong")
	}
	if NewCCC(64).Nodes() != 64 { // d=4
		t.Errorf("CCC(64) wrong")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("CCC(100) should panic")
		}
	}()
	NewCCC(100)
}

func TestCCCRouteAdjacency(t *testing.T) {
	t.Parallel()
	c := NewCCC(64) // d=4, 16 corners
	adjacent := func(u, v int) bool {
		uc, up := u/4, u%4
		vc, vp := v/4, v%4
		if uc == vc {
			diff := (up - vp + 4) % 4
			return diff == 1 || diff == 3
		}
		// Cube link: same position, corners differ in exactly bit `up`.
		return up == vp && uc^vc == 1<<uint(up)
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 500; trial++ {
		s, d := rng.Intn(64), rng.Intn(64)
		if s == d {
			continue
		}
		path := c.Route(s, d)
		if path[0] != s || path[len(path)-1] != d {
			t.Fatalf("route %d->%d endpoints wrong: %v", s, d, path)
		}
		for i := 1; i < len(path); i++ {
			if !adjacent(path[i-1], path[i]) {
				t.Fatalf("route %d->%d uses non-link %d-%d", s, d, path[i-1], path[i])
			}
		}
		if len(path)-1 > 3*4+2 { // O(d) hops: crossing pass + cycle walk
			t.Fatalf("route %d->%d too long: %d hops", s, d, len(path)-1)
		}
	}
}

func TestCCCDelivery(t *testing.T) {
	t.Parallel()
	c := NewCCC(64)
	ms := workload.RandomPermutation(64, 3)
	if err := ValidateRoutes(c, ms); err != nil {
		t.Fatalf("%v", err)
	}
	res := Deliver(c, ms)
	if res.Cycles < res.Congestion || res.Cycles < res.MaxPathLen {
		t.Errorf("cycles %d below lower bounds (%d, %d)", res.Cycles, res.Congestion, res.MaxPathLen)
	}
}

func TestCCCConstantDegreeProperties(t *testing.T) {
	t.Parallel()
	c := NewCCC(160) // d=5
	if c.Degree() != 3 {
		t.Errorf("degree %d", c.Degree())
	}
	if c.BisectionWidth() != 16 {
		t.Errorf("bisection %d, want 16", c.BisectionWidth())
	}
	if c.Volume() < float64(c.Nodes()) {
		t.Errorf("volume below node count")
	}
	if err := c.Layout().Validate(); err != nil {
		t.Errorf("layout: %v", err)
	}
}

func TestCCCMessageSetOnFatTree(t *testing.T) {
	t.Parallel()
	// CCC processors map onto a fat-tree through the universality pipeline —
	// exercised indirectly by building a valid message set over its procs.
	c := NewCCC(24)
	ms := workload.Random(24, 100, 1)
	ft := core.NewConstant(32, 1)
	_ = ft
	if err := ValidateRoutes(c, ms); err != nil {
		t.Fatalf("%v", err)
	}
}
