// Package baseline implements the fixed-connection networks the paper
// measures fat-trees against: the Boolean hypercube (the basis of "most
// networks that have been proposed for parallel processing"), the
// two-dimensional mesh and the simple binary tree (the non-universal networks
// of Section VI), the butterfly, and the shuffle-exchange network of
// Schwartz's ultracomputer. Each network knows its routing paths, bisection
// width, 3-D VLSI volume, and a physical layout for the Section V
// decomposition machinery; a store-and-forward simulator delivers message
// sets under per-link contention to obtain the time t that Theorem 10
// compares against.
package baseline

import (
	"fmt"

	"fattree/internal/core"
	"fattree/internal/decomp"
)

// Network is a fixed-connection routing network. Graph nodes are numbered
// 0..Nodes()-1; processors are a subset of the nodes (for processor-per-node
// networks the two coincide). Routing is deterministic and oblivious: every
// (source, destination) pair has one path.
type Network interface {
	// Name identifies the topology ("hypercube", "mesh", ...).
	Name() string
	// Nodes returns the number of graph nodes (switches and processors).
	Nodes() int
	// Procs returns the number of processors.
	Procs() int
	// ProcNode returns the graph node hosting processor p.
	ProcNode(p int) int
	// Route returns the node path of a message from processor src to
	// processor dst, inclusive of both endpoints. Consecutive nodes are
	// physically linked.
	Route(src, dst int) []int
	// Degree returns the maximum node degree.
	Degree() int
	// BisectionWidth returns the number of links crossing a halving of the
	// processors.
	BisectionWidth() int
	// Volume returns the network's 3-D VLSI volume (normalized units).
	Volume() float64
	// Layout places the processors in a cube of the network's volume.
	Layout() *decomp.Layout
}

// Result summarizes a store-and-forward delivery of a message set.
type Result struct {
	// Cycles is the number of unit-time steps until every message arrived,
	// with each directed link carrying at most one message per step.
	Cycles int
	// Congestion is the maximum number of routes sharing one directed link —
	// a lower bound on Cycles.
	Congestion int
	// MaxPathLen is the longest route, in hops — also a lower bound.
	MaxPathLen int
	// TotalHops is the sum of route lengths.
	TotalHops int
}

// link is a directed physical link.
type link struct{ from, to int }

// Deliver simulates store-and-forward delivery of ms on net: each message
// follows its deterministic route; in each cycle every directed link moves at
// most one queued message (FIFO). It returns the cycle count and congestion
// statistics. Deliver panics if a route is malformed (self-link or empty) or
// if delivery exceeds a generous livelock bound, which a correct FIFO network
// cannot reach.
func Deliver(net Network, ms core.MessageSet) Result {
	type flight struct {
		path []int
		hop  int // next link to traverse is path[hop] -> path[hop+1]
	}
	flights := make([]flight, 0, len(ms))
	res := Result{}
	linkLoad := make(map[link]int)
	queues := make(map[link][]int) // FIFO of flight indices

	for _, m := range ms {
		if m.IsExternal() {
			panic(fmt.Sprintf("baseline: %v: fixed-connection networks have no external interface", m))
		}
		path := net.Route(m.Src, m.Dst)
		if len(path) < 2 {
			panic(fmt.Sprintf("baseline: route %v for %v too short", path, m))
		}
		for i := 0; i+1 < len(path); i++ {
			if path[i] == path[i+1] {
				panic(fmt.Sprintf("baseline: self-link in route for %v", m))
			}
			linkLoad[link{path[i], path[i+1]}]++
		}
		if len(path)-1 > res.MaxPathLen {
			res.MaxPathLen = len(path) - 1
		}
		res.TotalHops += len(path) - 1
		flights = append(flights, flight{path: path})
	}
	for _, c := range linkLoad {
		if c > res.Congestion {
			res.Congestion = c
		}
	}
	if len(flights) == 0 {
		return res
	}

	// Register every link used by some route in deterministic (first-seen)
	// order, so the per-cycle sweep below is reproducible.
	var linkOrder []link
	for i := range flights {
		f := &flights[i]
		for h := 0; h+1 < len(f.path); h++ {
			l := link{f.path[h], f.path[h+1]}
			if _, seen := queues[l]; !seen {
				queues[l] = nil
				linkOrder = append(linkOrder, l)
			}
		}
	}
	// Seed the queues.
	for i := range flights {
		f := &flights[i]
		l := link{f.path[0], f.path[1]}
		queues[l] = append(queues[l], i)
	}

	remaining := len(flights)
	// Livelock bound: every cycle at least one message advances in a FIFO
	// store-and-forward network, so total hops cycles suffice.
	bound := res.TotalHops + 1
	for cycle := 1; cycle <= bound; cycle++ {
		type arrival struct {
			idx int
			l   link
		}
		var arrivals []arrival
		for _, l := range linkOrder {
			q := queues[l]
			if len(q) == 0 {
				continue
			}
			idx := q[0]
			queues[l] = q[1:]
			f := &flights[idx]
			f.hop++
			if f.hop+1 < len(f.path) {
				arrivals = append(arrivals, arrival{idx, link{f.path[f.hop], f.path[f.hop+1]}})
			} else {
				remaining--
			}
		}
		for _, a := range arrivals {
			queues[a.l] = append(queues[a.l], a.idx)
		}
		if remaining == 0 {
			res.Cycles = cycle
			return res
		}
	}
	panic("baseline: delivery exceeded the livelock bound (simulator bug)")
}

// ValidateRoutes checks, for every message of ms, that the network's route
// starts at the source's node, ends at the destination's node, and contains
// no self-hops. Immediate backtracking (a→b→a) is permitted because some
// oblivious schedules — shuffle-exchange routing across a stalled shuffle of
// the all-zeros or all-ones address — legitimately revisit a node.
func ValidateRoutes(net Network, ms core.MessageSet) error {
	for _, m := range ms {
		path := net.Route(m.Src, m.Dst)
		if len(path) == 0 {
			return fmt.Errorf("baseline: empty route for %v", m)
		}
		if path[0] != net.ProcNode(m.Src) {
			return fmt.Errorf("baseline: route for %v starts at node %d, not processor node %d",
				m, path[0], net.ProcNode(m.Src))
		}
		if path[len(path)-1] != net.ProcNode(m.Dst) {
			return fmt.Errorf("baseline: route for %v ends at node %d, not processor node %d",
				m, path[len(path)-1], net.ProcNode(m.Dst))
		}
		for i := 1; i < len(path); i++ {
			if path[i] == path[i-1] {
				return fmt.Errorf("baseline: route for %v stalls at hop %d", m, i)
			}
		}
	}
	return nil
}

// requirePow2 panics unless n is a power of two >= 2.
func requirePow2(who string, n int) {
	if n < 2 || n&(n-1) != 0 {
		panic(fmt.Sprintf("baseline: %s needs a power-of-two size >= 2, got %d", who, n))
	}
}
