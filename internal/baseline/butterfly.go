package baseline

import (
	"math/bits"

	"fattree/internal/decomp"
	"fattree/internal/vlsi"
)

// Butterfly is the d-dimensional butterfly on n = 2^d rows and d+1 levels:
// node (l, r) for level l in 0..d and row r connects to (l+1, r) (straight)
// and (l+1, r ^ 2^l) (cross). Processors sit at level 0, one per row.
// Messages ascend from (0, src) to (d, dst), correcting one address bit per
// level, then descend to (0, dst) along straight links.
type Butterfly struct {
	n, d int
}

// NewButterfly builds a butterfly with n = 2^d processors (rows).
func NewButterfly(n int) *Butterfly {
	requirePow2("butterfly", n)
	return &Butterfly{n: n, d: bits.Len(uint(n)) - 1}
}

// Name returns "butterfly".
func (b *Butterfly) Name() string { return "butterfly" }

// node maps (level, row) to a node id.
func (b *Butterfly) node(level, row int) int { return level*b.n + row }

// Nodes returns n(d+1).
func (b *Butterfly) Nodes() int { return b.n * (b.d + 1) }

// Procs returns n.
func (b *Butterfly) Procs() int { return b.n }

// ProcNode returns the level-0 node of row p.
func (b *Butterfly) ProcNode(p int) int { return b.node(0, p) }

// Degree returns 4 (two links up, two down, at interior levels).
func (b *Butterfly) Degree() int { return 4 }

// BisectionWidth returns Θ(n/lg n) — the classic butterfly bisection; we use
// the standard n/(2·lg n) figure rounded up.
func (b *Butterfly) BisectionWidth() int {
	w := b.n / (2 * b.d)
	if w < 1 {
		w = 1
	}
	return w
}

// Volume returns max(n·lg n, bisection^(3/2)).
func (b *Butterfly) Volume() float64 { return vlsi.ButterflyVolume(b.n) }

// Layout places the processors on a grid filling the butterfly's volume.
func (b *Butterfly) Layout() *decomp.Layout { return decomp.GridLayout(b.n, b.Volume()) }

// Route ascends correcting address bits toward dst, turning around at the
// level just above the highest differing bit (ascending further would only
// retrace straight links), then descends straight to the destination's
// level-0 node.
func (b *Butterfly) Route(src, dst int) []int {
	turn := bits.Len(uint(src ^ dst)) // highest differing bit + 1
	path := []int{b.ProcNode(src)}
	row := src
	for l := 0; l < turn; l++ {
		bit := 1 << uint(l)
		if row&bit != dst&bit {
			row ^= bit
		}
		path = append(path, b.node(l+1, row))
	}
	// row == dst at level turn; descend straight.
	for l := turn - 1; l >= 0; l-- {
		path = append(path, b.node(l, dst))
	}
	return path
}
