package baseline

import (
	"fmt"

	"fattree/internal/decomp"
	"fattree/internal/vlsi"
)

// Torus is the k×k two-dimensional torus (wraparound mesh): the mesh's
// boundary problem fixed at the cost of long wraparound wires. Bisection is
// 2k; volume stays Θ(n) in the 3-D model (wraparound links fold into the
// third dimension).
type Torus struct {
	k int
}

// NewTorus builds a k×k torus on n = k² processors.
func NewTorus(n int) *Torus {
	k := 1
	for k*k < n {
		k++
	}
	if k*k != n || k < 3 {
		panic(fmt.Sprintf("baseline: torus needs a perfect-square n >= 9, got %d", n))
	}
	return &Torus{k: k}
}

// Name returns "torus".
func (t *Torus) Name() string { return "torus" }

// Nodes returns k².
func (t *Torus) Nodes() int { return t.k * t.k }

// Procs returns k².
func (t *Torus) Procs() int { return t.k * t.k }

// ProcNode is the identity.
func (t *Torus) ProcNode(p int) int { return p }

// Degree returns 4.
func (t *Torus) Degree() int { return 4 }

// BisectionWidth returns 2k (each of the k rows contributes two crossing
// links thanks to the wraparound).
func (t *Torus) BisectionWidth() int { return 2 * t.k }

// Volume returns Θ(n).
func (t *Torus) Volume() float64 { return 1.5 * vlsi.MeshVolume(t.k*t.k) }

// Layout places the processors on a grid filling the torus's volume.
func (t *Torus) Layout() *decomp.Layout { return decomp.GridLayout(t.k*t.k, t.Volume()) }

// Route performs dimension-ordered routing along the shorter way around each
// ring.
func (t *Torus) Route(src, dst int) []int {
	sr, sc := src/t.k, src%t.k
	dr, dc := dst/t.k, dst%t.k
	path := []int{src}
	r, c := sr, sc
	stepRing := func(cur, target int) int {
		forward := (target - cur + t.k) % t.k
		if forward != 0 && forward <= t.k-forward {
			return (cur + 1) % t.k
		}
		return (cur - 1 + t.k) % t.k
	}
	for c != dc {
		c = stepRing(c, dc)
		path = append(path, r*t.k+c)
	}
	for r != dr {
		r = stepRing(r, dr)
		path = append(path, r*t.k+c)
	}
	return path
}

var _ Network = (*Torus)(nil)
