package baseline

import (
	"fattree/internal/core"
	"fattree/internal/decomp"
	"fattree/internal/vlsi"
)

// FatTreeNetwork adapts a fat-tree to the Network interface, so a fat-tree
// can play the role of the arbitrary routing network R in the Theorem 10
// machinery — including the pleasing self-application of simulating a
// fat-tree on a fat-tree. Graph nodes are the heap-indexed switches and
// leaves; each tree edge is modelled as cap(c) parallel unit links collapsed
// into one link of the store-and-forward simulator (the congestion figures
// thus overestimate the real fat-tree, which Deliver's callers account for by
// comparing shapes, not constants).
type FatTreeNetwork struct {
	ft     *core.FatTree
	layout *vlsi.TreeLayout
}

// NewFatTreeNetwork wraps ft with its geometric layout.
func NewFatTreeNetwork(ft *core.FatTree) *FatTreeNetwork {
	return &FatTreeNetwork{ft: ft, layout: vlsi.LayoutFatTree(ft)}
}

// Name returns "fat-tree".
func (f *FatTreeNetwork) Name() string { return "fat-tree" }

// Nodes returns 2n (heap slots; slot 0 unused).
func (f *FatTreeNetwork) Nodes() int { return 2 * f.ft.Processors() }

// Procs returns n.
func (f *FatTreeNetwork) Procs() int { return f.ft.Processors() }

// ProcNode returns processor p's leaf heap index.
func (f *FatTreeNetwork) ProcNode(p int) int { return f.ft.Leaf(p) }

// Degree returns 3 (tree node degree; channel widths are capacities, not
// extra links).
func (f *FatTreeNetwork) Degree() int { return 3 }

// BisectionWidth returns the root edge capacity — 2·cap(level 1) wires cross
// the halving cut.
func (f *FatTreeNetwork) BisectionWidth() int {
	return 2 * f.ft.Capacity(core.Channel{Node: 2, Dir: core.Up})
}

// Volume returns the *achieved* volume of the geometric layout.
func (f *FatTreeNetwork) Volume() float64 { return f.layout.Volume() }

// Layout returns the geometric processor placement.
func (f *FatTreeNetwork) Layout() *decomp.Layout { return f.layout.Processors }

// Route is the unique tree path through the least common ancestor.
func (f *FatTreeNetwork) Route(src, dst int) []int {
	path := []int{f.ft.Leaf(src)}
	for _, c := range f.ft.Path(core.Message{Src: src, Dst: dst}, nil) {
		if c.Dir == core.Up {
			path = append(path, c.Node>>1)
		} else {
			path = append(path, c.Node)
		}
	}
	return path
}

var _ Network = (*FatTreeNetwork)(nil)
