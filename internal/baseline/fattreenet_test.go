package baseline

import (
	"testing"

	"fattree/internal/core"
	"fattree/internal/workload"
)

func TestFatTreeNetworkRoutes(t *testing.T) {
	t.Parallel()
	ft := core.NewUniversal(64, 16)
	net := NewFatTreeNetwork(ft)
	ms := core.Concat(workload.RandomPermutation(64, 1), workload.KLocal(64, 100, 4, 2))
	if err := ValidateRoutes(net, ms); err != nil {
		t.Fatalf("%v", err)
	}
	// Sibling route: leaf, parent, leaf.
	path := net.Route(0, 1)
	if len(path) != 3 || path[0] != 64 || path[1] != 32 || path[2] != 65 {
		t.Errorf("sibling route %v", path)
	}
	// Cross-root route touches the root (node 1).
	path = net.Route(0, 63)
	touchedRoot := false
	for _, v := range path {
		if v == 1 {
			touchedRoot = true
		}
	}
	if !touchedRoot {
		t.Errorf("cross-root route misses the root: %v", path)
	}
}

func TestFatTreeNetworkDelivery(t *testing.T) {
	t.Parallel()
	net := NewFatTreeNetwork(core.NewUniversal(32, 8))
	res := Deliver(net, workload.RandomPermutation(32, 5))
	if res.Cycles < res.MaxPathLen {
		t.Errorf("cycles %d below path bound %d", res.Cycles, res.MaxPathLen)
	}
}

func TestFatTreeNetworkGeometry(t *testing.T) {
	t.Parallel()
	ft := core.NewUniversal(64, 16)
	net := NewFatTreeNetwork(ft)
	if net.Volume() <= 0 {
		t.Fatalf("non-positive volume")
	}
	if err := net.Layout().Validate(); err != nil {
		t.Fatalf("layout: %v", err)
	}
	if net.BisectionWidth() != 2*core.UniversalCapacity(64, 16, 1) {
		t.Errorf("bisection %d", net.BisectionWidth())
	}
	if net.Procs() != 64 || net.ProcNode(3) != 67 {
		t.Errorf("processor mapping wrong")
	}
}
