package baseline

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"

	"fattree/internal/core"
	"fattree/internal/workload"
)

func allNetworks(n int) []Network {
	return []Network{
		NewHypercube(n),
		NewMesh(n),
		NewBinaryTree(n),
		NewButterfly(n),
		NewShuffleExchange(n),
	}
}

func TestRoutesValidEverywhere(t *testing.T) {
	t.Parallel()
	n := 64
	ms := core.Concat(
		workload.RandomPermutation(n, 1),
		workload.Random(n, 200, 2),
		workload.BitReversal(n),
	)
	for _, net := range allNetworks(n) {
		if err := ValidateRoutes(net, ms); err != nil {
			t.Errorf("%s: %v", net.Name(), err)
		}
	}
}

func TestRouteAdjacency(t *testing.T) {
	t.Parallel()
	// Every hop must follow a physical link of the topology.
	n := 32
	adjacent := map[string]func(u, v int) bool{
		"hypercube": func(u, v int) bool { return bits.OnesCount(uint(u^v)) == 1 },
		"tree": func(u, v int) bool {
			return u == v/2 || v == u/2
		},
		"shuffle-exchange": func(u, v int) bool {
			d := 5
			sh := func(r int) int { return ((r << 1) | (r >> uint(d-1))) & (n - 1) }
			return v == u^1 || v == sh(u) || u == sh(v)
		},
	}
	nets := map[string]Network{
		"hypercube":        NewHypercube(n),
		"tree":             NewBinaryTree(n),
		"shuffle-exchange": NewShuffleExchange(n),
	}
	rng := rand.New(rand.NewSource(4))
	for name, net := range nets {
		adj := adjacent[name]
		for trial := 0; trial < 200; trial++ {
			s, d := rng.Intn(n), rng.Intn(n)
			if s == d {
				continue
			}
			path := net.Route(s, d)
			for i := 1; i < len(path); i++ {
				if !adj(path[i-1], path[i]) {
					t.Fatalf("%s: route %d->%d uses non-link %d-%d (path %v)",
						name, s, d, path[i-1], path[i], path)
				}
			}
		}
	}
}

func TestMeshRouteAdjacency(t *testing.T) {
	t.Parallel()
	m := NewMesh(64) // 8x8
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		s, d := rng.Intn(64), rng.Intn(64)
		if s == d {
			continue
		}
		path := m.Route(s, d)
		for i := 1; i < len(path); i++ {
			u, v := path[i-1], path[i]
			ur, uc := u/8, u%8
			vr, vc := v/8, v%8
			manhattan := abs(ur-vr) + abs(uc-vc)
			if manhattan != 1 {
				t.Fatalf("mesh hop %d-%d not adjacent", u, v)
			}
		}
		if len(path)-1 != abs(s/8-d/8)+abs(s%8-d%8) {
			t.Fatalf("mesh path %d->%d not shortest", s, d)
		}
	}
}

func TestButterflyRouteShape(t *testing.T) {
	t.Parallel()
	b := NewButterfly(16) // d=4
	path := b.Route(3, 12)
	// Ascend 4 levels, descend 4 levels: 9 nodes.
	if len(path) != 9 {
		t.Fatalf("butterfly path length %d, want 9", len(path))
	}
	if path[0] != 3 || path[len(path)-1] != 12 {
		t.Fatalf("butterfly endpoints wrong: %v", path)
	}
	// Middle node is (d, dst-row).
	if path[4] != 4*16+12 {
		t.Errorf("turnaround node %d, want %d", path[4], 4*16+12)
	}
}

func TestHypercubePathLengthIsHammingDistance(t *testing.T) {
	t.Parallel()
	h := NewHypercube(128)
	f := func(a, b uint8) bool {
		s, d := int(a)%128, int(b)%128
		if s == d {
			return true
		}
		return len(h.Route(s, d))-1 == bits.OnesCount(uint(s^d))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShuffleExchangePathLength(t *testing.T) {
	t.Parallel()
	// At most 2d hops (one exchange + one shuffle per round).
	s := NewShuffleExchange(64)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		a, b := rng.Intn(64), rng.Intn(64)
		if a == b {
			continue
		}
		path := s.Route(a, b)
		if len(path)-1 > 12 {
			t.Fatalf("SE path %d->%d has %d hops (> 2d)", a, b, len(path)-1)
		}
		if path[len(path)-1] != b {
			t.Fatalf("SE path ends at %d, want %d", path[len(path)-1], b)
		}
	}
}

func TestDeliverCompletesAndRespectsLowerBounds(t *testing.T) {
	t.Parallel()
	n := 64
	for _, net := range allNetworks(n) {
		for _, ms := range []core.MessageSet{
			workload.RandomPermutation(n, 3),
			workload.BitReversal(n),
			workload.Random(n, 150, 4),
		} {
			res := Deliver(net, ms)
			if res.Cycles < res.Congestion {
				t.Errorf("%s: cycles %d < congestion %d", net.Name(), res.Cycles, res.Congestion)
			}
			if res.Cycles < res.MaxPathLen {
				t.Errorf("%s: cycles %d < max path %d", net.Name(), res.Cycles, res.MaxPathLen)
			}
		}
	}
}

func TestDeliverEmptySet(t *testing.T) {
	t.Parallel()
	res := Deliver(NewHypercube(8), nil)
	if res.Cycles != 0 || res.Congestion != 0 {
		t.Errorf("empty delivery: %+v", res)
	}
}

func TestDeliverSingleMessage(t *testing.T) {
	t.Parallel()
	h := NewHypercube(16)
	res := Deliver(h, core.MessageSet{{Src: 0, Dst: 15}})
	if res.Cycles != 4 {
		t.Errorf("single message across 4 dimensions took %d cycles, want 4", res.Cycles)
	}
}

func TestTreeRootCongestion(t *testing.T) {
	t.Parallel()
	// Bit reversal on the plain tree: n/2 messages cross the root links in
	// each direction — congestion Θ(n).
	n := 64
	tr := NewBinaryTree(n)
	res := Deliver(tr, workload.Reversal(n))
	if res.Congestion < n/2 {
		t.Errorf("tree congestion %d, want >= %d", res.Congestion, n/2)
	}
	if res.Cycles < n/2 {
		t.Errorf("tree cycles %d below congestion bound", res.Cycles)
	}
}

func TestMeshSlowOnBitReversal(t *testing.T) {
	t.Parallel()
	// Mesh bisection sqrt(n) forces Ω(sqrt n) cycles on cross traffic, while
	// the hypercube finishes in O(lg n + congestion)-ish time. This is the
	// polynomial-vs-logarithmic separation of Section VI.
	n := 64
	mesh := Deliver(NewMesh(n), workload.BitReversal(n))
	cube := Deliver(NewHypercube(n), workload.BitReversal(n))
	if mesh.Cycles <= cube.Cycles {
		t.Errorf("mesh (%d) should be slower than hypercube (%d) on bit reversal",
			mesh.Cycles, cube.Cycles)
	}
}

func TestBisectionAndVolume(t *testing.T) {
	t.Parallel()
	n := 256
	h, m, tr := NewHypercube(n), NewMesh(n), NewBinaryTree(n)
	if h.BisectionWidth() != n/2 {
		t.Errorf("hypercube bisection %d", h.BisectionWidth())
	}
	if m.BisectionWidth() != 16 {
		t.Errorf("mesh bisection %d, want 16", m.BisectionWidth())
	}
	if tr.BisectionWidth() != 1 {
		t.Errorf("tree bisection %d, want 1", tr.BisectionWidth())
	}
	if h.Volume() <= m.Volume() || m.Volume() < float64(n) {
		t.Errorf("volume ordering wrong: cube %.0f mesh %.0f", h.Volume(), m.Volume())
	}
}

func TestLayoutsAreValid(t *testing.T) {
	t.Parallel()
	for _, net := range allNetworks(64) {
		l := net.Layout()
		if err := l.Validate(); err != nil {
			t.Errorf("%s layout: %v", net.Name(), err)
		}
		if len(l.Pos) != net.Procs() {
			t.Errorf("%s layout has %d positions for %d processors",
				net.Name(), len(l.Pos), net.Procs())
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
