package baseline

import (
	"math/bits"

	"fattree/internal/decomp"
	"fattree/internal/vlsi"
)

// ShuffleExchange is Stone's perfect-shuffle network on n = 2^d processors:
// each node r links to shuffle(r) (cyclic left rotation of the address bits)
// and to exchange(r) = r ^ 1. It underlies Schwartz's ultracomputer, whose
// "very large number of intercabinet wires" the paper quotes as the wiring
// problem fat-trees address. Routing uses the standard d-step
// shuffle-then-maybe-exchange schedule.
type ShuffleExchange struct {
	n, d int
}

// NewShuffleExchange builds the network on n = 2^d processors.
func NewShuffleExchange(n int) *ShuffleExchange {
	requirePow2("shuffle-exchange", n)
	return &ShuffleExchange{n: n, d: bits.Len(uint(n)) - 1}
}

// Name returns "shuffle-exchange".
func (s *ShuffleExchange) Name() string { return "shuffle-exchange" }

// Nodes returns n.
func (s *ShuffleExchange) Nodes() int { return s.n }

// Procs returns n.
func (s *ShuffleExchange) Procs() int { return s.n }

// ProcNode is the identity.
func (s *ShuffleExchange) ProcNode(p int) int { return p }

// Degree returns 3 (shuffle out, shuffle in, exchange).
func (s *ShuffleExchange) Degree() int { return 3 }

// BisectionWidth returns Θ(n/lg n), the known shuffle-exchange bisection.
func (s *ShuffleExchange) BisectionWidth() int {
	w := s.n / (2 * s.d)
	if w < 1 {
		w = 1
	}
	return w
}

// Volume returns the same wiring-dominated figure as the butterfly:
// max(n·lg n switches are not needed here, so n, and bisection^(3/2)).
func (s *ShuffleExchange) Volume() float64 {
	v := vlsi.VolumeLowerBoundFromBisection(s.n, s.BisectionWidth())
	return v
}

// Layout places the processors on a grid filling the network's volume.
func (s *ShuffleExchange) Layout() *decomp.Layout { return decomp.GridLayout(s.n, s.Volume()) }

// shuffle rotates the d address bits left by one.
func (s *ShuffleExchange) shuffle(r int) int {
	return ((r << 1) | (r >> uint(s.d-1))) & (s.n - 1)
}

// Route uses the classical schedule: d rounds, each an optional exchange (to
// set the low bit) followed by a shuffle. The bit written at round i is then
// rotated left d-i times, ending at position (d-i) mod d, so it must equal
// that bit of the destination; no later round clobbers it because a written
// bit only returns to position 0 at the very end.
func (s *ShuffleExchange) Route(src, dst int) []int {
	path := []int{src}
	cur := src
	for i := 0; i < s.d; i++ {
		want := (dst >> uint((s.d-i)%s.d)) & 1
		if cur&1 != want {
			cur ^= 1
			path = append(path, cur)
		}
		cur = s.shuffle(cur)
		path = append(path, cur)
	}
	// Remove a possible duplicate tail when cur revisits dst consecutively
	// (cannot happen: shuffle always moves unless cur is 00..0 or 11..1).
	if cur != dst {
		panic("baseline: shuffle-exchange routing failed (bug)")
	}
	return compressStalls(path)
}

// compressStalls removes consecutive duplicate nodes from a path (shuffling
// the all-zeros or all-ones address is a self-loop).
func compressStalls(path []int) []int {
	out := path[:1]
	for _, v := range path[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
