package baseline

import (
	"math/bits"

	"fattree/internal/decomp"
	"fattree/internal/vlsi"
)

// Hypercube is the Boolean d-cube on n = 2^d processors, one processor per
// node, with e-cube (dimension-ordered) routing. Its bisection width is n/2,
// which is what makes it powerful and also what costs it Θ(n^(3/2)) physical
// volume — the wirability and packaging problem the paper opens with.
type Hypercube struct {
	n, d int
}

// NewHypercube builds a hypercube on n = 2^d processors.
func NewHypercube(n int) *Hypercube {
	requirePow2("hypercube", n)
	return &Hypercube{n: n, d: bits.Len(uint(n)) - 1}
}

// Name returns "hypercube".
func (h *Hypercube) Name() string { return "hypercube" }

// Nodes returns n (every node is a processor).
func (h *Hypercube) Nodes() int { return h.n }

// Procs returns n.
func (h *Hypercube) Procs() int { return h.n }

// ProcNode is the identity: processor p is node p.
func (h *Hypercube) ProcNode(p int) int { return p }

// Degree returns d = lg n.
func (h *Hypercube) Degree() int { return h.d }

// BisectionWidth returns n/2 (the dimension-d/2 cut).
func (h *Hypercube) BisectionWidth() int { return h.n / 2 }

// Volume returns Θ(n^(3/2)).
func (h *Hypercube) Volume() float64 { return vlsi.HypercubeVolume(h.n) }

// Layout places the processors on a grid filling the hypercube's volume.
func (h *Hypercube) Layout() *decomp.Layout { return decomp.GridLayout(h.n, h.Volume()) }

// Route performs e-cube routing: correct the differing address bits from
// least significant to most significant.
func (h *Hypercube) Route(src, dst int) []int {
	path := []int{src}
	cur := src
	for cur != dst {
		diff := cur ^ dst
		bit := diff & -diff // lowest set bit
		cur ^= bit
		path = append(path, cur)
	}
	return path
}
