package baseline

import (
	"fmt"

	"fattree/internal/decomp"
	"fattree/internal/vlsi"
)

// Mesh is the k×k two-dimensional array on n = k² processors with XY
// (dimension-ordered) routing: first along the row, then along the column.
// Its bisection width is k = sqrt(n) and its volume Θ(n) — the hardware-cheap
// but non-universal network of Section VI, which exhibits polynomial slowdown
// when simulating other networks.
type Mesh struct {
	k int
}

// NewMesh builds a k×k mesh on n = k² processors; n must be a perfect square
// with k >= 2.
func NewMesh(n int) *Mesh {
	k := 1
	for k*k < n {
		k++
	}
	if k*k != n || k < 2 {
		panic(fmt.Sprintf("baseline: mesh needs a perfect-square n >= 4, got %d", n))
	}
	return &Mesh{k: k}
}

// Name returns "mesh".
func (m *Mesh) Name() string { return "mesh" }

// Nodes returns k².
func (m *Mesh) Nodes() int { return m.k * m.k }

// Procs returns k².
func (m *Mesh) Procs() int { return m.k * m.k }

// ProcNode is the identity.
func (m *Mesh) ProcNode(p int) int { return p }

// Degree returns 4.
func (m *Mesh) Degree() int { return 4 }

// BisectionWidth returns k.
func (m *Mesh) BisectionWidth() int { return m.k }

// Volume returns Θ(n).
func (m *Mesh) Volume() float64 { return vlsi.MeshVolume(m.k * m.k) }

// Layout places the processors on a grid filling the mesh's volume.
func (m *Mesh) Layout() *decomp.Layout { return decomp.GridLayout(m.k*m.k, m.Volume()) }

// Route performs XY routing from src to dst (row-major node numbering).
func (m *Mesh) Route(src, dst int) []int {
	sr, sc := src/m.k, src%m.k
	dr, dc := dst/m.k, dst%m.k
	path := []int{src}
	r, c := sr, sc
	for c != dc {
		if c < dc {
			c++
		} else {
			c--
		}
		path = append(path, r*m.k+c)
	}
	for r != dr {
		if r < dr {
			r++
		} else {
			r--
		}
		path = append(path, r*m.k+c)
	}
	return path
}
