package baseline

import (
	"math/rand"
	"testing"

	"fattree/internal/workload"
)

func TestTorusRouteShortestRing(t *testing.T) {
	t.Parallel()
	to := NewTorus(64) // 8x8
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		s, d := rng.Intn(64), rng.Intn(64)
		if s == d {
			continue
		}
		path := to.Route(s, d)
		if path[0] != s || path[len(path)-1] != d {
			t.Fatalf("endpoints wrong for %d->%d: %v", s, d, path)
		}
		// Ring distance per dimension.
		ringDist := func(a, b int) int {
			f := (b - a + 8) % 8
			if f > 8-f {
				return 8 - f
			}
			return f
		}
		want := ringDist(s%8, d%8) + ringDist(s/8, d/8)
		if len(path)-1 != want {
			t.Fatalf("%d->%d: %d hops, want %d", s, d, len(path)-1, want)
		}
		// Adjacency: each hop moves one step in exactly one ring.
		for i := 1; i < len(path); i++ {
			ur, uc := path[i-1]/8, path[i-1]%8
			vr, vc := path[i]/8, path[i]%8
			rowStep := ringDist(ur, vr)
			colStep := ringDist(uc, vc)
			if rowStep+colStep != 1 {
				t.Fatalf("non-adjacent torus hop %d->%d", path[i-1], path[i])
			}
		}
	}
}

func TestTorusBeatsMeshOnWraparound(t *testing.T) {
	t.Parallel()
	// Corner-to-corner traffic: torus halves the distance.
	torus := NewTorus(64)
	mesh := NewMesh(64)
	tPath := torus.Route(0, 63)
	mPath := mesh.Route(0, 63)
	if len(tPath) >= len(mPath) {
		t.Errorf("torus path %d not shorter than mesh %d", len(tPath), len(mPath))
	}
	if torus.BisectionWidth() != 2*mesh.BisectionWidth() {
		t.Errorf("torus bisection should double the mesh's")
	}
}

func TestMesh3DRoute(t *testing.T) {
	t.Parallel()
	m := NewMesh3D(64) // 4x4x4
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		s, d := rng.Intn(64), rng.Intn(64)
		if s == d {
			continue
		}
		path := m.Route(s, d)
		if path[0] != s || path[len(path)-1] != d {
			t.Fatalf("endpoints wrong")
		}
		// Manhattan distance in 3-D.
		abs3 := func(a, b int) int {
			if a > b {
				return a - b
			}
			return b - a
		}
		want := abs3(s%4, d%4) + abs3((s/4)%4, (d/4)%4) + abs3(s/16, d/16)
		if len(path)-1 != want {
			t.Fatalf("%d->%d: %d hops, want %d", s, d, len(path)-1, want)
		}
	}
}

func TestMesh3DBisectionMatchesFatTreeRootScale(t *testing.T) {
	t.Parallel()
	// The 3-D mesh's bisection is n^(2/3) — the same order as the root
	// capacity of the volume-matched universal fat-tree (before the lg
	// division). This is why it is the strongest cheap competitor.
	m := NewMesh3D(512) // 8x8x8
	if m.BisectionWidth() != 64 {
		t.Errorf("bisection %d, want 64 = n^(2/3)", m.BisectionWidth())
	}
	if m.Volume() != 512 {
		t.Errorf("volume %v, want 512", m.Volume())
	}
}

func TestNewNetworksDeliver(t *testing.T) {
	t.Parallel()
	for _, net := range []Network{NewTorus(64), NewMesh3D(64)} {
		ms := workload.RandomPermutation(64, 3)
		if err := ValidateRoutes(net, ms); err != nil {
			t.Fatalf("%s: %v", net.Name(), err)
		}
		res := Deliver(net, ms)
		if res.Cycles < res.MaxPathLen {
			t.Errorf("%s: cycles below path bound", net.Name())
		}
		if err := net.Layout().Validate(); err != nil {
			t.Errorf("%s layout: %v", net.Name(), err)
		}
	}
}

func TestNewNetworksRejectBadSizes(t *testing.T) {
	t.Parallel()
	for _, f := range []func(){
		func() { NewTorus(10) },
		func() { NewMesh3D(100) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad size accepted")
				}
			}()
			f()
		}()
	}
}
