package baseline

import (
	"fmt"
	"math/rand"

	"fattree/internal/decomp"
	"fattree/internal/vlsi"
)

// Clos is the k-ary folded-Clos "fat-tree" that Leiserson's construction
// evolved into in datacenter networks (Al-Fares et al. style): k pods, each
// with k/2 edge and k/2 aggregation switches, (k/2)² core switches, and
// n = k³/4 processors — constant-radix switches everywhere, full bisection
// bandwidth, and multipath routing collapsed here to a deterministic
// destination-based path choice. It plays the role of a modern comparator:
// the binary fat-tree with w = n root capacity offers the same bisection
// from variable-width switches, and Theorem 10 covers both.
type Clos struct {
	k    int // switch radix (even, >= 4)
	n    int // processors = k³/4
	half int // k/2
	// ecmp, when non-nil, randomizes the upward path choice per message
	// (ECMP-style multipath); nil keeps the deterministic destination-based
	// choice.
	ecmp *rand.Rand
}

// NewClos builds the k-ary folded-Clos network on n = k³/4 processors
// (k = 4 → 16, k = 8 → 128, k = 16 → 1024). It panics unless n matches some
// even k >= 4.
func NewClos(n int) *Clos {
	for k := 4; k <= 64; k += 2 {
		if k*k*k/4 == n {
			return &Clos{k: k, n: n, half: k / 2}
		}
		if k*k*k/4 > n {
			break
		}
	}
	panic(fmt.Sprintf("baseline: Clos needs n = k³/4 for even k >= 4 (16, 54, 128, 250, ...), got %d", n))
}

// NewClosECMP builds the same fabric with randomized upward path selection:
// each message independently picks its aggregation and core switch among the
// valid choices (any core reaches any pod in a folded Clos). This is the
// equal-cost multipath load balancing real deployments use; the seeded
// generator keeps runs reproducible.
func NewClosECMP(n int, seed int64) *Clos {
	c := NewClos(n)
	c.ecmp = rand.New(rand.NewSource(seed))
	return c
}

// Name returns "clos".
func (c *Clos) Name() string { return "clos" }

// Radix returns the switch radix k.
func (c *Clos) Radix() int { return c.k }

// Node numbering: processors [0, n), then edge switches (k·k/2), then
// aggregation switches (k·k/2), then core switches ((k/2)²).
func (c *Clos) edgeNode(pod, e int) int { return c.n + pod*c.half + e }
func (c *Clos) aggNode(pod, a int) int  { return c.n + c.k*c.half + pod*c.half + a }
func (c *Clos) coreNode(a, j int) int   { return c.n + 2*c.k*c.half + a*c.half + j }

// Nodes returns processors plus switches.
func (c *Clos) Nodes() int { return c.n + 2*c.k*c.half + c.half*c.half }

// Procs returns n = k³/4.
func (c *Clos) Procs() int { return c.n }

// ProcNode is the identity for processors.
func (c *Clos) ProcNode(p int) int { return p }

// Degree returns the switch radix k.
func (c *Clos) Degree() int { return c.k }

// BisectionWidth returns n/2: full bisection bandwidth, the headline feature
// of the folded Clos.
func (c *Clos) BisectionWidth() int { return c.n / 2 }

// Volume returns Θ(n^(3/2)), forced by the full bisection exactly as for the
// hypercube and the w = n binary fat-tree.
func (c *Clos) Volume() float64 { return vlsi.HypercubeVolume(c.n) }

// Layout places the processors on a grid filling the Clos volume.
func (c *Clos) Layout() *decomp.Layout { return decomp.GridLayout(c.n, c.Volume()) }

// coords decomposes a processor id into (pod, edge, position).
func (c *Clos) coords(p int) (pod, edge, pos int) {
	perPod := c.half * c.half
	return p / perPod, (p % perPod) / c.half, p % c.half
}

// Route is destination-based deterministic multipath: the aggregation switch
// is chosen by the destination's position and the core switch by the
// destination's edge index, so down-paths are unique and up-traffic to
// different destinations spreads over the fabric.
func (c *Clos) Route(src, dst int) []int {
	sPod, sEdge, _ := c.coords(src)
	dPod, dEdge, dPos := c.coords(dst)
	path := []int{src, c.edgeNode(sPod, sEdge)}
	switch {
	case sPod == dPod && sEdge == dEdge:
		// Same edge switch.
	case sPod == dPod:
		// Same pod: up to an aggregation switch (destination-chosen, or any
		// under ECMP), down to the destination edge.
		a := dPos
		if c.ecmp != nil {
			a = c.ecmp.Intn(c.half)
		}
		path = append(path, c.aggNode(sPod, a), c.edgeNode(dPod, dEdge))
	default:
		// Cross-pod: up to aggregation a, core (a, j), down into the
		// destination pod. Any (a, j) reaches any pod in a folded Clos, so
		// ECMP may pick both freely.
		a, j := dPos, dEdge
		if c.ecmp != nil {
			a, j = c.ecmp.Intn(c.half), c.ecmp.Intn(c.half)
		}
		path = append(path,
			c.aggNode(sPod, a),
			c.coreNode(a, j),
			c.aggNode(dPod, a),
			c.edgeNode(dPod, dEdge))
	}
	return append(path, dst)
}

var _ Network = (*Clos)(nil)

// SwitchCount returns the number of switches (edge + aggregation + core),
// for the hardware comparison tables.
func (c *Clos) SwitchCount() int { return 2*c.k*c.half + c.half*c.half }
