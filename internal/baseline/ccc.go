package baseline

import (
	"fmt"

	"fattree/internal/decomp"
	"fattree/internal/vlsi"
)

// CCC is the cube-connected-cycles network of Preparata and Vuillemin — the
// constant-degree substitute for the hypercube that Galil and Paul's
// general-purpose parallel processor (cited in Section VII) builds on. Each
// hypercube corner c of a d-cube is replaced by a cycle of d nodes; node
// (c, i) connects to its cycle neighbours (c, i±1) and across dimension i to
// (c ^ 2^i, i). One processor sits on every node, so n = d·2^d.
type CCC struct {
	d       int // cube dimension
	corners int // 2^d
}

// NewCCC builds the cube-connected cycles on n = d·2^d processors. n must be
// exactly d·2^d for some d >= 3 (the smallest proper CCC); NewCCC panics
// otherwise.
func NewCCC(n int) *CCC {
	for d := 3; d <= 30; d++ {
		if d*(1<<uint(d)) == n {
			return &CCC{d: d, corners: 1 << uint(d)}
		}
		if d*(1<<uint(d)) > n {
			break
		}
	}
	panic(fmt.Sprintf("baseline: CCC needs n = d·2^d (24, 64, 160, 384, ...), got %d", n))
}

// Name returns "ccc".
func (c *CCC) Name() string { return "ccc" }

// Nodes returns d·2^d.
func (c *CCC) Nodes() int { return c.d * c.corners }

// Procs returns d·2^d (one processor per node).
func (c *CCC) Procs() int { return c.Nodes() }

// ProcNode is the identity.
func (c *CCC) ProcNode(p int) int { return p }

// Degree returns 3 (two cycle links, one cube link).
func (c *CCC) Degree() int { return 3 }

// node maps (corner, position) to a node id.
func (c *CCC) node(corner, pos int) int { return corner*c.d + pos }

// split maps a node id to (corner, position).
func (c *CCC) split(v int) (corner, pos int) { return v / c.d, v % c.d }

// BisectionWidth returns Θ(2^d) = Θ(n/lg n): the CCC inherits the
// hypercube's dimension-(d-1) cut of 2^(d-1) cube links.
func (c *CCC) BisectionWidth() int { return c.corners / 2 }

// Volume returns the 3-D VLSI volume: constant degree keeps the switch count
// at n, but the bisection forces max(n, (2^(d-1))^(3/2)).
func (c *CCC) Volume() float64 {
	return vlsi.VolumeLowerBoundFromBisection(c.Nodes(), c.BisectionWidth())
}

// Layout places the processors on a grid filling the CCC's volume.
func (c *CCC) Layout() *decomp.Layout { return decomp.GridLayout(c.Nodes(), c.Volume()) }

// Route walks the cycle at the source corner, crossing cube dimensions where
// the corners differ (the standard CCC embedding of e-cube routing), then
// walks the destination cycle to the target position.
func (c *CCC) Route(src, dst int) []int {
	sc, sp := c.split(src)
	dc, dp := c.split(dst)
	path := []int{src}
	corner, pos := sc, sp
	// Pass over dimensions pos, pos+1, ..., pos+d-1 cyclically, crossing
	// where needed. This fixes all differing bits in at most 2d hops.
	for i := 0; i < c.d; i++ {
		if corner&(1<<uint(pos)) != dc&(1<<uint(pos)) {
			corner ^= 1 << uint(pos)
			path = append(path, c.node(corner, pos))
		}
		if corner == dc && pos == dp {
			return path
		}
		// Advance along the cycle toward the next dimension, unless we are
		// done crossing and should head straight for dp.
		if corner == dc {
			break
		}
		pos = (pos + 1) % c.d
		path = append(path, c.node(corner, pos))
	}
	// Same corner: walk the cycle the short way to dp.
	for pos != dp {
		forward := (dp - pos + c.d) % c.d
		if forward <= c.d-forward {
			pos = (pos + 1) % c.d
		} else {
			pos = (pos - 1 + c.d) % c.d
		}
		path = append(path, c.node(corner, pos))
	}
	return path
}

var _ Network = (*CCC)(nil)
