package baseline

import (
	"math/bits"

	"fattree/internal/decomp"
	"fattree/internal/vlsi"
)

// BinaryTree is the plain complete binary tree on n = 2^L leaf processors
// with capacity-1 channels — a fat-tree that never got fat, and the paper's
// canonical non-universal network: all cross-root traffic squeezes through
// two links. Graph nodes are heap-indexed 1..2n-1 (node 0 unused); leaves are
// n..2n-1.
type BinaryTree struct {
	n int
}

// NewBinaryTree builds the tree on n = 2^L processors.
func NewBinaryTree(n int) *BinaryTree {
	requirePow2("binary tree", n)
	return &BinaryTree{n: n}
}

// Name returns "tree".
func (t *BinaryTree) Name() string { return "tree" }

// Nodes returns 2n (heap slots; slot 0 unused).
func (t *BinaryTree) Nodes() int { return 2 * t.n }

// Procs returns n.
func (t *BinaryTree) Procs() int { return t.n }

// ProcNode returns the leaf heap index n+p.
func (t *BinaryTree) ProcNode(p int) int { return t.n + p }

// Degree returns 3 (parent plus two children).
func (t *BinaryTree) Degree() int { return 3 }

// BisectionWidth returns 1: cutting below the root separates the halves with
// a single link.
func (t *BinaryTree) BisectionWidth() int { return 1 }

// Volume returns Θ(n).
func (t *BinaryTree) Volume() float64 { return vlsi.TreeVolume(t.n) }

// Layout places the processors on a grid filling the tree's volume.
func (t *BinaryTree) Layout() *decomp.Layout { return decomp.GridLayout(t.n, t.Volume()) }

// Route climbs from the source leaf to the least common ancestor and descends
// to the destination leaf.
func (t *BinaryTree) Route(src, dst int) []int {
	a, b := t.ProcNode(src), t.ProcNode(dst)
	lca := a >> uint(bits.Len(uint(a^b)))
	path := []int{}
	for v := a; v != lca; v >>= 1 {
		path = append(path, v)
	}
	path = append(path, lca)
	var down []int
	for v := b; v != lca; v >>= 1 {
		down = append(down, v)
	}
	for i := len(down) - 1; i >= 0; i-- {
		path = append(path, down[i])
	}
	return path
}
