// Package trace models multi-phase parallel applications as sequences of
// message sets — the "many different parallel algorithms" a universal
// supercomputer must execute efficiently (Section VII). Each trace is a list
// of communication phases (possibly repeated); running a trace on a fat-tree
// schedules every phase off-line and totals delivery cycles and bit-serial
// ticks. The standard traces cover the paper's motivating spectrum: planar
// finite-element relaxation (local), FFT butterflies (global, hierarchical),
// multigrid V-cycles (local at every scale), and tree reductions/broadcasts.
package trace

import (
	"fmt"

	"fattree/internal/core"
	"fattree/internal/sched"
	"fattree/internal/sim"
	"fattree/internal/workload"
)

// Phase is one communication phase: a message set delivered Repeat times.
type Phase struct {
	Name     string
	Messages core.MessageSet
	Repeat   int
}

// Trace is a named sequence of phases over a fixed processor count.
type Trace struct {
	Name   string
	Procs  int
	Phases []Phase
}

// Messages returns the total message count, counting repeats.
func (tr *Trace) Messages() int {
	total := 0
	for _, p := range tr.Phases {
		total += p.Repeat * len(p.Messages)
	}
	return total
}

// Validate checks all phases against a fat-tree. Phase message endpoints
// must name processors the trace itself declares (< tr.Procs), not merely
// processors the tree happens to have: a 64-processor trace placed on a
// 1024-processor tree must still reject a message to processor 1000.
func (tr *Trace) Validate(t *core.FatTree) error {
	if t.Processors() < tr.Procs {
		return fmt.Errorf("trace: %s needs %d processors, tree has %d", tr.Name, tr.Procs, t.Processors())
	}
	for _, p := range tr.Phases {
		if p.Repeat < 1 {
			return fmt.Errorf("trace: phase %s has repeat %d", p.Name, p.Repeat)
		}
		if err := p.Messages.Validate(t); err != nil {
			return fmt.Errorf("trace: phase %s: %w", p.Name, err)
		}
		for i, m := range p.Messages {
			if m.Src != core.External && m.Src >= tr.Procs {
				return fmt.Errorf("trace: phase %s: message %d (%v): source outside the trace's %d processors",
					p.Name, i, m, tr.Procs)
			}
			if m.Dst != core.External && m.Dst >= tr.Procs {
				return fmt.Errorf("trace: phase %s: message %d (%v): destination outside the trace's %d processors",
					p.Name, i, m, tr.Procs)
			}
		}
	}
	return nil
}

// PhaseResult is the delivery cost of one phase.
type PhaseResult struct {
	Name   string
	Repeat int
	// Lambda is the phase's load factor on the tree.
	Lambda float64
	// Cycles is delivery cycles per repeat; TotalCycles = Repeat × Cycles.
	Cycles      int
	TotalCycles int
	// Ticks is the bit-serial time per repeat.
	Ticks      int
	TotalTicks int
}

// Result is a full trace run.
type Result struct {
	Trace       string
	PerPhase    []PhaseResult
	TotalCycles int
	TotalTicks  int
}

// Run schedules every phase of tr on t (Theorem 1) and totals the costs.
// payloadBits sets the bit-serial message length.
func Run(t *core.FatTree, tr *Trace, payloadBits int) *Result {
	if err := tr.Validate(t); err != nil {
		panic(err)
	}
	res := &Result{Trace: tr.Name}
	// One arena-backed scheduler serves every phase: each schedule is a loan
	// consumed (ticks counted, lengths recorded) before the next phase
	// overwrites it, so the reuse is safe and the loop stops allocating.
	sc := sched.NewScheduler(t)
	for _, p := range tr.Phases {
		s := sc.OffLine(p.Messages)
		ticks := sim.ScheduleTicks(t, s.Cycles, payloadBits)
		pr := PhaseResult{
			Name:        p.Name,
			Repeat:      p.Repeat,
			Lambda:      s.LoadFactor,
			Cycles:      s.Length(),
			TotalCycles: p.Repeat * s.Length(),
			Ticks:       ticks,
			TotalTicks:  p.Repeat * ticks,
		}
		res.PerPhase = append(res.PerPhase, pr)
		res.TotalCycles += pr.TotalCycles
		res.TotalTicks += pr.TotalTicks
	}
	return res
}

// FFT returns the n-point FFT communication trace: lg n butterfly stages; in
// stage i every processor exchanges with its partner across bit i. Stage
// lg n - 1 crosses the root — the global traffic that distinguishes full
// fat-trees from scaled-down ones.
func FFT(n int) *Trace {
	requirePow2("FFT", n)
	tr := &Trace{Name: "fft", Procs: n}
	for bit := 1; bit < n; bit <<= 1 {
		ms := make(core.MessageSet, 0, n)
		for p := 0; p < n; p++ {
			ms = append(ms, core.Message{Src: p, Dst: p ^ bit})
		}
		tr.Phases = append(tr.Phases, Phase{
			Name:     fmt.Sprintf("stage 2^%d", log2(bit)),
			Messages: ms,
			Repeat:   1,
		})
	}
	return tr
}

// FEMSolve returns an iterative planar finite-element solve on a k×k mesh:
// iters relaxation sweeps (nearest-neighbour exchange) each followed by a
// tree-structured residual reduction to processor 0 and a broadcast back.
func FEMSolve(k, iters int) *Trace {
	n := k * k
	mesh := workload.NewGridMesh(k, k)
	tr := &Trace{Name: "fem-solve", Procs: n}
	tr.Phases = append(tr.Phases,
		Phase{Name: "relaxation exchange", Messages: mesh.ExchangeStep(), Repeat: iters},
	)
	for _, p := range reductionPhases(n) {
		p.Repeat = iters
		tr.Phases = append(tr.Phases, p)
	}
	return tr
}

// reductionPhases returns the lg n rounds of a binary-tree reduction to
// processor 0 followed by the mirror broadcast.
func reductionPhases(n int) []Phase {
	var phases []Phase
	for stride := 1; stride < n; stride <<= 1 {
		var ms core.MessageSet
		for p := stride; p < n; p += 2 * stride {
			ms = append(ms, core.Message{Src: p, Dst: p - stride})
		}
		phases = append(phases, Phase{
			Name:     fmt.Sprintf("reduce stride %d", stride),
			Messages: ms,
			Repeat:   1,
		})
	}
	for stride := largestStride(n); stride >= 1; stride >>= 1 {
		var ms core.MessageSet
		for p := stride; p < n; p += 2 * stride {
			ms = append(ms, core.Message{Src: p - stride, Dst: p})
		}
		phases = append(phases, Phase{
			Name:     fmt.Sprintf("broadcast stride %d", stride),
			Messages: ms,
			Repeat:   1,
		})
	}
	return phases
}

// largestStride returns the largest power of two below n.
func largestStride(n int) int {
	s := 1
	for 2*s < n {
		s <<= 1
	}
	return s
}

// MultiGrid returns one V-cycle on a k×k grid: exchange at the fine level,
// restrict to each coarser level (fine points send to their coarse parent),
// exchange there, and prolong back down. Multigrid traffic is local at every
// scale — the workload where a modest fat-tree shines.
func MultiGrid(k int) *Trace {
	requirePow2("MultiGrid", k)
	n := k * k
	tr := &Trace{Name: "multigrid", Procs: n}
	// Descending half of the V-cycle.
	for level := 0; (k >> uint(level)) >= 2; level++ {
		kk := k >> uint(level)
		tr.Phases = append(tr.Phases, Phase{
			Name:     fmt.Sprintf("smooth %dx%d", kk, kk),
			Messages: coarseExchange(k, level),
			Repeat:   1,
		})
		if (k >> uint(level+1)) >= 2 {
			tr.Phases = append(tr.Phases, Phase{
				Name:     fmt.Sprintf("restrict to %dx%d", kk/2, kk/2),
				Messages: restriction(k, level),
				Repeat:   1,
			})
		}
	}
	// Ascending half: prolongation mirrors restriction.
	for level := levels(k) - 2; level >= 0; level-- {
		kk := k >> uint(level)
		tr.Phases = append(tr.Phases, Phase{
			Name:     fmt.Sprintf("prolong to %dx%d", kk, kk),
			Messages: prolongation(k, level),
			Repeat:   1,
		})
	}
	return tr
}

// levels returns the number of multigrid levels for a k×k grid (down to 2×2).
func levels(k int) int {
	l := 0
	for (k >> uint(l)) >= 2 {
		l++
	}
	return l
}

// gridProc maps coarse-grid coordinates at a level to the row-major fine-grid
// processor hosting that point.
func gridProc(k, level, r, c int) int {
	stride := 1 << uint(level)
	return (r*stride)*k + c*stride
}

// coarseExchange is the 5-point-stencil exchange on the level's subgrid.
func coarseExchange(k, level int) core.MessageSet {
	kk := k >> uint(level)
	var ms core.MessageSet
	for r := 0; r < kk; r++ {
		for c := 0; c < kk; c++ {
			p := gridProc(k, level, r, c)
			if c+1 < kk {
				q := gridProc(k, level, r, c+1)
				ms = append(ms, core.Message{Src: p, Dst: q}, core.Message{Src: q, Dst: p})
			}
			if r+1 < kk {
				q := gridProc(k, level, r+1, c)
				ms = append(ms, core.Message{Src: p, Dst: q}, core.Message{Src: q, Dst: p})
			}
		}
	}
	return ms
}

// restriction sends each non-representative fine point of a 2x2 block to the
// block's coarse representative.
func restriction(k, level int) core.MessageSet {
	kk := k >> uint(level)
	var ms core.MessageSet
	for r := 0; r < kk; r++ {
		for c := 0; c < kk; c++ {
			if r%2 == 0 && c%2 == 0 {
				continue
			}
			src := gridProc(k, level, r, c)
			dst := gridProc(k, level, r-r%2, c-c%2)
			ms = append(ms, core.Message{Src: src, Dst: dst})
		}
	}
	return ms
}

// prolongation mirrors restriction: coarse representatives update their fine
// block.
func prolongation(k, level int) core.MessageSet {
	rest := restriction(k, level)
	ms := make(core.MessageSet, len(rest))
	for i, m := range rest {
		ms[i] = core.Message{Src: m.Dst, Dst: m.Src}
	}
	return ms
}

// SampleSort returns a three-phase sample sort on n processors: a gather of
// p-1 splitter samples to processor 0, a splinter broadcast back, and a
// balanced all-to-all data redistribution (k messages per processor to
// random-but-seeded destinations).
func SampleSort(n, perProc int, seed int64) *Trace {
	requirePow2("SampleSort", n)
	tr := &Trace{Name: "sample-sort", Procs: n}
	var gather core.MessageSet
	for p := 1; p < n; p++ {
		gather = append(gather, core.Message{Src: p, Dst: 0})
	}
	var scatter core.MessageSet
	for p := 1; p < n; p++ {
		scatter = append(scatter, core.Message{Src: 0, Dst: p})
	}
	tr.Phases = append(tr.Phases,
		Phase{Name: "sample gather", Messages: gather, Repeat: 1},
		Phase{Name: "splitter broadcast", Messages: scatter, Repeat: 1},
		Phase{Name: "redistribution", Messages: workload.Random(n, n*perProc, seed), Repeat: 1},
	)
	return tr
}

// requirePow2 panics unless n is a power of two >= 2.
func requirePow2(who string, n int) {
	if n < 2 || n&(n-1) != 0 {
		panic(fmt.Sprintf("trace: %s needs a power-of-two size >= 2, got %d", who, n))
	}
}

// log2 returns lg of a power of two.
func log2(x int) int {
	l := 0
	for x > 1 {
		x >>= 1
		l++
	}
	return l
}
