package trace

import (
	"strings"
	"testing"

	"fattree/internal/core"
)

func TestFFTTrace(t *testing.T) {
	tr := FFT(64)
	if len(tr.Phases) != 6 {
		t.Fatalf("FFT(64) has %d phases, want 6", len(tr.Phases))
	}
	ft := core.NewUniversal(64, 64)
	if err := tr.Validate(ft); err != nil {
		t.Fatalf("%v", err)
	}
	// Every stage is a perfect pairing: n messages.
	for _, p := range tr.Phases {
		if len(p.Messages) != 64 {
			t.Errorf("phase %s has %d messages", p.Name, len(p.Messages))
		}
	}
	// The last stage crosses the root everywhere.
	last := tr.Phases[5].Messages
	lam := core.LoadFactor(core.NewConstant(64, 1), last)
	if lam != 32 {
		t.Errorf("final FFT stage λ on unit tree = %v, want 32", lam)
	}
	// The first stage is purely sibling traffic.
	first := tr.Phases[0].Messages
	if lam0 := core.LoadFactor(core.NewConstant(64, 1), first); lam0 != 1 {
		t.Errorf("first FFT stage λ = %v, want 1", lam0)
	}
}

func TestFEMSolveTrace(t *testing.T) {
	tr := FEMSolve(8, 3)
	ft := core.NewUniversal(64, 16)
	if err := tr.Validate(ft); err != nil {
		t.Fatalf("%v", err)
	}
	// 1 exchange + lg n reduce + lg n broadcast phases.
	if len(tr.Phases) != 1+6+6 {
		t.Errorf("FEMSolve phases = %d, want 13", len(tr.Phases))
	}
	for _, p := range tr.Phases {
		if p.Repeat != 3 {
			t.Errorf("phase %s repeat %d, want 3", p.Name, p.Repeat)
		}
	}
	// Reduction rounds halve: strides 1..32 send 32,16,8,4,2,1 messages.
	reduce1 := tr.Phases[1]
	if !strings.Contains(reduce1.Name, "stride 1") || len(reduce1.Messages) != 32 {
		t.Errorf("first reduce phase wrong: %s with %d messages", reduce1.Name, len(reduce1.Messages))
	}
}

func TestReductionConverges(t *testing.T) {
	// After all reduce phases, every processor's value has a path to 0:
	// verify each phase's destinations are senders in some later phase or 0.
	phases := reductionPhases(16)
	reduces := phases[:4]
	for i, p := range reduces {
		for _, m := range p.Messages {
			if m.Dst == 0 {
				continue
			}
			found := false
			for _, later := range reduces[i+1:] {
				for _, lm := range later.Messages {
					if lm.Src == m.Dst {
						found = true
					}
				}
			}
			if !found {
				t.Errorf("phase %d: value at %d never forwarded", i, m.Dst)
			}
		}
	}
}

func TestMultiGridTrace(t *testing.T) {
	tr := MultiGrid(16) // 16x16 -> 8x8 -> 4x4 -> 2x2
	ft := core.NewUniversal(256, 32)
	if err := tr.Validate(ft); err != nil {
		t.Fatalf("%v", err)
	}
	// 4 smooth + 3 restrict + 3 prolong.
	if len(tr.Phases) != 10 {
		t.Errorf("MultiGrid(16) phases = %d, want 10", len(tr.Phases))
	}
	// Prolongation mirrors restriction exactly.
	var restrictMsgs, prolongMsgs int
	for _, p := range tr.Phases {
		if strings.HasPrefix(p.Name, "restrict") {
			restrictMsgs += len(p.Messages)
		}
		if strings.HasPrefix(p.Name, "prolong") {
			prolongMsgs += len(p.Messages)
		}
	}
	if restrictMsgs != prolongMsgs {
		t.Errorf("restriction %d != prolongation %d", restrictMsgs, prolongMsgs)
	}
}

func TestSampleSortTrace(t *testing.T) {
	tr := SampleSort(32, 4, 1)
	ft := core.NewUniversal(32, 8)
	if err := tr.Validate(ft); err != nil {
		t.Fatalf("%v", err)
	}
	if len(tr.Phases) != 3 {
		t.Fatalf("phases = %d", len(tr.Phases))
	}
	if tr.Messages() != 31+31+128 {
		t.Errorf("total messages = %d", tr.Messages())
	}
}

func TestRunTotals(t *testing.T) {
	ft := core.NewUniversal(64, 16)
	tr := FFT(64)
	res := Run(ft, tr, 16)
	if len(res.PerPhase) != len(tr.Phases) {
		t.Fatalf("per-phase results missing")
	}
	sumCycles, sumTicks := 0, 0
	for _, pr := range res.PerPhase {
		if pr.TotalCycles != pr.Repeat*pr.Cycles {
			t.Errorf("%s: total cycles inconsistent", pr.Name)
		}
		sumCycles += pr.TotalCycles
		sumTicks += pr.TotalTicks
		if float64(pr.Cycles) < pr.Lambda {
			t.Errorf("%s: cycles below λ", pr.Name)
		}
	}
	if res.TotalCycles != sumCycles || res.TotalTicks != sumTicks {
		t.Errorf("totals inconsistent")
	}
}

func TestFFTStagesGetHarderUpTheTree(t *testing.T) {
	// On a scaled-down fat-tree, later FFT stages (more global) cost at least
	// as much as the earliest stage.
	ft := core.NewUniversal(64, 8)
	res := Run(ft, FFT(64), 0)
	first := res.PerPhase[0].Cycles
	last := res.PerPhase[len(res.PerPhase)-1].Cycles
	if last < first {
		t.Errorf("global stage (%d cycles) cheaper than local stage (%d)", last, first)
	}
}

func TestMultiGridLocalOnModestTree(t *testing.T) {
	// Multigrid's per-phase λ should stay small on a sqrt(n)-root tree —
	// locality at every scale.
	k := 16
	ft := core.NewUniversal(k*k, 2*k)
	res := Run(ft, MultiGrid(k), 0)
	for _, pr := range res.PerPhase {
		if pr.Lambda > 8 {
			t.Errorf("phase %s λ = %.1f — not local", pr.Name, pr.Lambda)
		}
	}
}

func TestValidateCatchesOversizedTrace(t *testing.T) {
	ft := core.NewConstant(16, 1)
	tr := FFT(64)
	if err := tr.Validate(ft); err == nil {
		t.Errorf("64-proc trace accepted on 16-proc tree")
	}
}

// TestValidateChecksEndpointsAgainstTraceProcs is the regression test for a
// validation hole: endpoints were checked only against the tree's processor
// count, so a small trace placed on a big tree accepted messages to
// processors the trace does not declare.
func TestValidateChecksEndpointsAgainstTraceProcs(t *testing.T) {
	ft := core.NewUniversal(1024, 64)
	mk := func(ms core.MessageSet) *Trace {
		return &Trace{
			Name:   "undersized",
			Procs:  64,
			Phases: []Phase{{Name: "p", Messages: ms, Repeat: 1}},
		}
	}

	// In-range endpoints and External messages remain valid on the big tree.
	good := mk(core.MessageSet{
		{Src: 0, Dst: 63},
		{Src: 5, Dst: core.External},
		{Src: core.External, Dst: 63},
	})
	if err := good.Validate(ft); err != nil {
		t.Fatalf("valid 64-proc trace rejected on 1024-proc tree: %v", err)
	}

	// Endpoints the tree has but the trace does not declare must be
	// rejected: both the plain and the External-paired side.
	for name, ms := range map[string]core.MessageSet{
		"dst":          {{Src: 0, Dst: 1000}},
		"src":          {{Src: 1000, Dst: 0}},
		"external-dst": {{Src: core.External, Dst: 1000}},
		"external-src": {{Src: 1000, Dst: core.External}},
	} {
		if err := mk(ms).Validate(ft); err == nil {
			t.Errorf("%s outside the trace's 64 processors accepted", name)
		}
	}
}
