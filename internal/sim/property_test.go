package sim

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"fattree/internal/concentrator"
	"fattree/internal/core"
	"fattree/internal/sched"
	"fattree/internal/workload"
)

// TestEngineDeliveryProperty fuzzes the delivery engine across random tree
// profiles and workloads: online delivery (both protocols) always completes
// on ideal switches, and playing a valid off-line schedule never drops.
func TestEngineDeliveryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (3 + rng.Intn(3)) // 8..32
		ft := workload.RandomTreeProfile(n, 8, seed)
		ms := workload.Random(n, 1+rng.Intn(4*n), seed+1)

		e := New(ft, concentrator.KindIdeal, seed)
		if got := RunOnline(e, ms); got.Delivered != len(ms) {
			t.Logf("seed %d: online delivered %d/%d", seed, got.Delivered, len(ms))
			return false
		}
		if got := RunOnlineRandom(e, ms, seed+2); got.Delivered != len(ms) {
			t.Logf("seed %d: random online delivered %d/%d", seed, got.Delivered, len(ms))
			return false
		}
		s := sched.OffLine(ft, ms)
		stats := RunSchedule(e, s)
		if stats.Drops != 0 || stats.Deferrals != 0 || stats.Delivered != len(ms) {
			t.Logf("seed %d: schedule playback %+v", seed, stats)
			return false
		}
		return stats.Cycles == s.Length()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestEngineCycleConservation fuzzes single cycles: delivered + dropped +
// deferred + still-in-flight-nowhere must cover all messages exactly, and
// delivered messages are a subset of the input.
func TestEngineCycleConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (3 + rng.Intn(3))
		ft := workload.RandomTreeProfile(n, 6, seed)
		ms := workload.Random(n, 1+rng.Intn(3*n), seed+1)
		e := New(ft, concentrator.KindIdeal, seed)
		delivered, res := e.RunCycle(ms)
		count := 0
		for _, ok := range delivered {
			if ok {
				count++
			}
		}
		if count != res.Delivered {
			return false
		}
		// Every message is either delivered, or was dropped/deferred at some
		// point: dropped+deferred >= undelivered (a message can be dropped at
		// most once per cycle).
		undelivered := len(ms) - count
		return res.Dropped+res.Deferred == undelivered
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestEngineReuseMatchesFresh fuzzes the scratch-arena reuse contract: one
// engine running a sequence of unrelated workloads (of varying size, so the
// arena shrinks and regrows) must produce exactly the stats a fresh engine
// produces for each workload, on both switch kinds and both cycle paths.
// Any cross-cycle residue in the arena — a stale epoch stamp, an unreset
// bucket, a dirty wire guard — shows up as a divergence here.
func TestEngineReuseMatchesFresh(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (3 + rng.Intn(3))
		ft := workload.RandomTreeProfile(n, 8, seed)
		kind := concentrator.KindIdeal
		if seed%2 == 0 {
			kind = concentrator.KindPartial
		}
		reusedSerial := NewWithOptions(ft, kind, seed, Options{Workers: 1})
		reusedParallel := NewWithOptions(ft, kind, seed, Options{Workers: 2})
		for rep := 0; rep < 4; rep++ {
			ms := workload.Random(n, 1+rng.Intn(4*n), seed+int64(rep))
			got := reusedSerial.Run(ms)
			want := NewWithOptions(ft, kind, seed, Options{Workers: 1}).Run(ms)
			if !reflect.DeepEqual(got, want) {
				t.Logf("seed %d rep %d: reused serial %+v, fresh %+v", seed, rep, got, want)
				return false
			}
			if par := reusedParallel.RunParallel(ms); !reflect.DeepEqual(par, want) {
				t.Logf("seed %d rep %d: reused parallel %+v, fresh %+v", seed, rep, par, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestLossyEngineStillDelivers fuzzes transient-fault injection: with loss
// rates up to 10%, the retry protocol always finishes on ideal switches.
func TestLossyEngineStillDelivers(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 16
		ft := core.NewUniversal(n, 8)
		e := New(ft, concentrator.KindIdeal, seed)
		rate := 0.02 + 0.08*rng.Float64()
		e.InjectLoss(rate, seed+1)
		ms := workload.Random(n, 2*n, seed+2)
		stats := RunOnlineRandom(e, ms, seed+3)
		return stats.Delivered == len(ms)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
