package sim

import (
	"reflect"
	"runtime"
	"testing"

	"fattree/internal/concentrator"
	"fattree/internal/core"
	"fattree/internal/obsv"
)

// decodeEngineFuzz turns raw fuzz bytes into a delivery scenario: byte 0
// picks the tree shape, byte 1 the switch kind, seed, and loss rate, and the
// remaining byte pairs are (src, dst) candidates (self-loops skipped so the
// set always validates).
func decodeEngineFuzz(data []byte) (ft *core.FatTree, ms core.MessageSet, kind concentrator.Kind, seed int64, loss float64) {
	shape, knobs := byte(0), byte(0)
	if len(data) > 0 {
		shape = data[0]
		data = data[1:]
	}
	if len(data) > 0 {
		knobs = data[0]
		data = data[1:]
	}
	n := 8 << (shape % 3)        // 8, 16, 32
	w := 1 << (1 + (shape>>2)%4) // 2, 4, 8, 16
	ft = core.NewUniversal(n, w)
	kind = concentrator.KindIdeal
	if knobs&1 == 1 {
		kind = concentrator.KindPartial
	}
	seed = int64(knobs>>1) + 1
	if knobs&2 == 2 {
		loss = float64(knobs>>4) / 100 // 0% .. 15%
	}
	for i := 0; i+1 < len(data) && len(ms) < 4*n; i += 2 {
		src, dst := int(data[i])%n, int(data[i+1])%n
		if src == dst {
			continue
		}
		ms = append(ms, core.Message{Src: src, Dst: dst})
	}
	return ft, ms, kind, seed, loss
}

// FuzzEngineParallelEquivalence cross-checks the parallel delivery-cycle
// path against the serial reference on fuzz-generated scenarios: for any
// tree shape, switch kind, loss rate, and worker count, RunParallel must
// reproduce Run bit-for-bit — total cycle count, per-cycle delivery
// profile, drops, and deferrals. This is the engine-level complement of
// sched's FuzzSchedule and the machine-checked form of the determinism
// contract in DESIGN.md: all per-switch randomness is pre-seeded by
// (seed, node), and every fan-out merges in message-index order.
func FuzzEngineParallelEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 7, 3, 4, 1})
	f.Add([]byte{1, 1, 0, 15, 15, 0, 1, 14, 2, 13, 3, 12})
	f.Add([]byte{2, 3, 5, 6, 5, 7, 5, 8, 6, 5, 7, 5})
	f.Add([]byte{9, 0x35, 5, 5, 5, 6, 5, 7, 5, 8, 6, 5, 7, 5, 1, 2, 3, 4})
	f.Add([]byte{4, 0xff, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		ft, ms, kind, seed, loss := decodeEngineFuzz(data)

		// Fresh engines per run: switch RNG streams advance as cycles are
		// routed, so serial and parallel must start from identical state.
		mkEngine := func(workers int) *Engine {
			e := NewWithOptions(ft, kind, seed, Options{Workers: workers})
			if loss > 0 {
				e.InjectLoss(loss, seed+1)
			}
			return e
		}

		serial := mkEngine(1).Run(ms)
		for _, workers := range []int{0, 2, 3} {
			parallel := mkEngine(workers).RunParallel(ms)
			if serial.Cycles != parallel.Cycles ||
				serial.Delivered != parallel.Delivered ||
				serial.Drops != parallel.Drops ||
				serial.Deferrals != parallel.Deferrals {
				t.Fatalf("workers=%d: stats diverge\nserial   %+v\nparallel %+v",
					workers, serial, parallel)
			}
			if !reflect.DeepEqual(serial.PerCycle, parallel.PerCycle) {
				t.Fatalf("workers=%d: per-cycle delivery profile diverges\nserial   %v\nparallel %v",
					workers, serial.PerCycle, parallel.PerCycle)
			}
		}

		// Observed runs: attaching an observer must not perturb the stats, and
		// the counter totals must be identical for every worker count — the
		// observer only sees the deterministic serial merge points.
		runObserved := func(workers int) (*obsv.Observer, Stats) {
			o := obsv.New(ft)
			e := mkEngine(workers)
			e.SetObserver(o)
			return o, e.RunParallel(ms)
		}
		obsRef, obsStats := runObserved(1)
		if !reflect.DeepEqual(obsStats, serial) {
			t.Fatalf("observer perturbed the run\nplain    %+v\nobserved %+v", serial, obsStats)
		}
		if c := &obsRef.C; c.Offered != c.Delivered+c.Dropped+c.Deferred {
			t.Fatalf("conservation broken: offered %d != delivered %d + dropped %d + deferred %d",
				c.Offered, c.Delivered, c.Dropped, c.Deferred)
		}
		for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
			o, stats := runObserved(workers)
			if !reflect.DeepEqual(stats, serial) {
				t.Fatalf("workers=%d: observed stats diverge\nserial   %+v\nobserved %+v",
					workers, serial, stats)
			}
			if !obsv.CountersEqual(obsRef, o) {
				t.Fatalf("workers=%d: observed counter totals diverge from workers=1", workers)
			}
		}

		// Implicit-vs-materialized phase: the streaming engine on the
		// implicit twin of the same capacity profile must reproduce the
		// dense serial reference bit for bit — stats, per-cycle delivery
		// profile, and observer counter totals with histograms — for
		// workers {1, 2, GOMAXPROCS}.
		imp := core.NewImplicit(ft.Processors(), ft.CapacityAtLevel)
		mkStream := func(workers int) *Engine {
			e := NewWithOptions(imp, kind, seed, Options{Workers: workers})
			if loss > 0 {
				e.InjectLoss(loss, seed+1)
			}
			return e
		}
		for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
			o := obsv.New(imp)
			e := mkStream(workers)
			e.SetObserver(o)
			stats := e.RunParallel(ms)
			if !reflect.DeepEqual(stats, serial) {
				t.Fatalf("workers=%d: implicit stream stats diverge from dense\ndense  %+v\nstream %+v",
					workers, serial, stats)
			}
			if !obsv.CountersEqual(obsRef, o) {
				t.Fatalf("workers=%d: implicit stream counters diverge from dense", workers)
			}
		}

		// The single-cycle API must agree as well, including the delivered
		// flags vector (message-index order is part of the contract).
		sd, sr := mkEngine(1).RunCycle(ms)
		pd, pr := mkEngine(2).RunCycleParallel(ms)
		if sr != pr || !reflect.DeepEqual(sd, pd) {
			t.Fatalf("RunCycle diverges: serial %+v %v, parallel %+v %v", sr, sd, pr, pd)
		}

		// Engine reuse: one engine runs many scenarios back to back, so any
		// state the scratch arena leaks between runs (a stale stamp, an
		// unreset bucket, a dirty wire guard) breaks the lockstep serial ==
		// parallel comparison below. The scenario sizes shrink and grow again
		// to stress arena reuse across resizes.
		scenarios := []core.MessageSet{ms, ms[:len(ms)/2], ms, ms[:len(ms)/3], ms}
		reusedSerial := mkEngine(1)
		reusedParallel := mkEngine(2)
		for rep, sc := range scenarios {
			rs := reusedSerial.Run(sc)
			rp := reusedParallel.RunParallel(sc)
			if !reflect.DeepEqual(rs, rp) {
				t.Fatalf("rep %d: reused engines diverge\nserial   %+v\nparallel %+v", rep, rs, rp)
			}
			// Without injected loss no RNG is consumed while routing (the
			// partial graphs are fixed at construction), so a reused engine
			// must also be indistinguishable from a fresh one.
			if loss == 0 {
				if fresh := mkEngine(1).Run(sc); !reflect.DeepEqual(rs, fresh) {
					t.Fatalf("rep %d: reused engine diverges from fresh\nreused %+v\nfresh  %+v", rep, rs, fresh)
				}
			}
		}

		// Reused single cycles after full runs: the delivered vector (scratch-
		// owned, valid until the engine's next cycle) must still agree.
		rd, rr := reusedSerial.RunCycle(ms)
		qd, qr := reusedParallel.RunCycleParallel(ms)
		if rr != qr || !reflect.DeepEqual(rd, qd) {
			t.Fatalf("reused RunCycle diverges: serial %+v %v, parallel %+v %v", rr, rd, qr, qd)
		}

		// K-ary phase, part 1: a binary-shaped KaryFatTree routes through the
		// k-ary engine, and on ideal lossless switches that engine must
		// reproduce the dense serial reference bit for bit — the concentrator
		// rules collapse to the same wire assignment when every tier is
		// binary.
		if kind == concentrator.KindIdeal && loss == 0 {
			caps := ft.LevelCapTable()
			bdesc := core.KaryDesc{
				Down:     make([]int, ft.Levels()),
				Up:       make([]int, ft.Levels()),
				Parallel: make([]int, ft.Levels()),
				Root:     caps[0],
			}
			for i := 0; i < ft.Levels(); i++ {
				bdesc.Down[i], bdesc.Up[i], bdesc.Parallel[i] = 2, caps[i+1], 1
			}
			bkt := core.NewKary(bdesc)
			for _, workers := range []int{1, 2} {
				o := obsv.New(bkt)
				e := NewWithOptions(bkt, concentrator.KindIdeal, seed, Options{Workers: workers})
				e.SetObserver(o)
				stats := e.RunParallel(ms)
				if !reflect.DeepEqual(stats, serial) {
					t.Fatalf("workers=%d: binary-shaped k-ary engine diverges from dense\ndense %+v\nkary  %+v",
						workers, serial, stats)
				}
			}
		}

		// K-ary phase, part 2: on genuinely non-binary topologies the same
		// determinism contract must hold — parallel delivery-cycle routing
		// reproduces the serial reference exactly, including observer counter
		// totals. The profile is picked by the fuzz seed; the message set is
		// folded into the smaller address space.
		kdesc := []core.KaryDesc{
			{Down: []int{3, 4}, Up: []int{2, 1}, Parallel: []int{1, 1}},
			{Down: []int{4, 2, 3}, Up: []int{3, 2, 1}, Parallel: []int{1, 1, 1}},
			{Down: []int{5, 5}, Up: []int{2, 1}, Parallel: []int{3, 2}, Root: 7},
		}[int(seed)%3]
		kt := core.NewKary(kdesc)
		kn := kt.Processors()
		var kms core.MessageSet
		for _, m := range ms {
			if s, d := m.Src%kn, m.Dst%kn; s != d {
				kms = append(kms, core.Message{Src: s, Dst: d})
			}
		}
		runKary := func(workers int) (*obsv.Observer, Stats) {
			o := obsv.New(kt)
			e := NewWithOptions(kt, concentrator.KindIdeal, seed, Options{Workers: workers})
			e.SetObserver(o)
			return o, e.RunParallel(kms)
		}
		karyRef, karySerial := runKary(1)
		if c := &karyRef.C; c.Offered != c.Delivered+c.Dropped+c.Deferred {
			t.Fatalf("k-ary conservation broken: offered %d != delivered %d + dropped %d + deferred %d",
				c.Offered, c.Delivered, c.Dropped, c.Deferred)
		}
		for _, workers := range []int{0, 2, 3} {
			o, stats := runKary(workers)
			if !reflect.DeepEqual(stats, karySerial) {
				t.Fatalf("workers=%d: k-ary parallel diverges\nserial   %+v\nparallel %+v",
					workers, karySerial, stats)
			}
			if !obsv.CountersEqual(karyRef, o) {
				t.Fatalf("workers=%d: k-ary observed counter totals diverge from workers=1", workers)
			}
		}
	})
}
