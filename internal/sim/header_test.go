package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fattree/internal/core"
	"fattree/internal/sched"
	"fattree/internal/workload"
)

func TestHeaderRoundTrip(t *testing.T) {
	ft := core.NewUniversal(64, 16)
	ms := workload.RandomPermutation(64, 1)
	s := sched.OffLine(ft, ms)
	st := CompileSettings(ft, s)
	for _, cyc := range st.Cycles {
		for _, wp := range cyc {
			h := EncodeHeader(ft, wp, 8)
			channels, wires, err := DecodeHeader(ft, wp.Msg, wp.Wires[0], h)
			if err != nil {
				t.Fatalf("message %v: %v", wp.Msg, err)
			}
			path := ft.Path(wp.Msg, nil)
			if len(channels) != len(path) {
				t.Fatalf("message %v: decoded %d channels, want %d", wp.Msg, len(channels), len(path))
			}
			for i := range path {
				if channels[i] != path[i] {
					t.Fatalf("message %v hop %d: decoded %v, want %v", wp.Msg, i, channels[i], path[i])
				}
				if wires[i] != wp.Wires[i] {
					t.Fatalf("message %v hop %d: decoded wire %d, want %d", wp.Msg, i, wires[i], wp.Wires[i])
				}
			}
		}
	}
}

func TestHeaderMBitRequired(t *testing.T) {
	ft := core.NewConstant(8, 1)
	m := core.Message{Src: 0, Dst: 7}
	wp := WirePath{Msg: m, Wires: make([]int, len(ft.Path(m, nil)))}
	h := EncodeHeader(ft, wp, 0)
	h.Bits[0] = 0 // idle wire
	if _, _, err := DecodeHeader(ft, m, 0, h); err == nil {
		t.Errorf("frame without M bit accepted")
	}
}

func TestFrameLengthBounds(t *testing.T) {
	// On a capacity-1 tree there are no wire-select bits: frame = 1 + path
	// routing bits + payload, and routing bits <= 2·lg n (the paper's
	// address-length bound).
	ft := core.NewConstant(64, 1)
	m := core.Message{Src: 0, Dst: 63}
	want := 1 + (ft.PathLength(m) - 1) + 16
	if got := FrameLength(ft, m, 16); got != want {
		t.Errorf("frame length %d, want %d", got, want)
	}
	if FrameLength(ft, m, 0) > 1+2*core.Lg(64) {
		t.Errorf("steering exceeds the 2·lg n address bound on a unit tree")
	}
}

func TestFrameLengthGrowsWithCapacity(t *testing.T) {
	// Wider channels need wire-select bits: the frame grows by ceil(lg cap)
	// per hop.
	thin := core.NewConstant(64, 1)
	wide := core.NewConstant(64, 16)
	m := core.Message{Src: 0, Dst: 63}
	if FrameLength(wide, m, 0) <= FrameLength(thin, m, 0) {
		t.Errorf("wide-channel frame not longer")
	}
}

func TestHeaderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (3 + rng.Intn(3))
		ft := workload.RandomTreeProfile(n, 8, seed)
		ms := workload.Random(n, 1+rng.Intn(2*n), seed+1)
		st := CompileSettings(ft, sched.OffLine(ft, ms))
		for _, cyc := range st.Cycles {
			for _, wp := range cyc {
				if wp.Msg.IsExternal() {
					continue
				}
				h := EncodeHeader(ft, wp, 4)
				_, wires, err := DecodeHeader(ft, wp.Msg, wp.Wires[0], h)
				if err != nil {
					return false
				}
				for i := range wires {
					if wires[i] != wp.Wires[i] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
