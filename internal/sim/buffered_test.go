package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fattree/internal/concentrator"
	"fattree/internal/core"
	"fattree/internal/workload"
)

func TestBufferedSingleMessage(t *testing.T) {
	ft := core.NewConstant(8, 1)
	stats := RunBuffered(ft, core.MessageSet{{Src: 0, Dst: 7}}, 4)
	if stats.Delivered != 1 {
		t.Fatalf("not delivered: %+v", stats)
	}
	// Path has 6 channels plus the injection hop.
	if stats.Hops != 7 {
		t.Errorf("hops = %d, want 7", stats.Hops)
	}
	if stats.MaxLatency != stats.Hops {
		t.Errorf("single message latency %d != hops %d", stats.MaxLatency, stats.Hops)
	}
}

func TestBufferedSiblingFast(t *testing.T) {
	ft := core.NewConstant(8, 1)
	stats := RunBuffered(ft, core.MessageSet{{Src: 2, Dst: 3}}, 4)
	// Injection + up + down = 3 hops.
	if stats.Hops != 3 {
		t.Errorf("sibling hops = %d, want 3", stats.Hops)
	}
}

func TestBufferedDeliversEverything(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (3 + rng.Intn(3))
		ft := workload.RandomTreeProfile(n, 6, seed)
		ms := workload.Random(n, 1+rng.Intn(4*n), seed+1)
		depth := 1 + rng.Intn(8)
		stats := RunBuffered(ft, ms, depth)
		if stats.Delivered != len(ms) {
			t.Logf("seed %d: delivered %d/%d", seed, stats.Delivered, len(ms))
			return false
		}
		return stats.MaxQueue <= depth
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBufferedRespectsQueueDepth(t *testing.T) {
	ft := core.NewConstant(64, 1)
	ms := workload.Reversal(64) // heavy root contention
	for _, depth := range []int{1, 2, 8} {
		stats := RunBuffered(ft, ms, depth)
		if stats.MaxQueue > depth {
			t.Errorf("depth %d: max queue %d", depth, stats.MaxQueue)
		}
		if stats.Delivered != len(ms) {
			t.Errorf("depth %d: incomplete", depth)
		}
	}
}

func TestBufferedCongestionLowerBound(t *testing.T) {
	// The root channel carries n/2 reversal messages at cap(level-1) per
	// hop: hops >= load/cap.
	n := 64
	ft := core.NewConstant(n, 2)
	stats := RunBuffered(ft, workload.Reversal(n), 4)
	if stats.Hops < n/2/2 {
		t.Errorf("hops %d below the congestion bound %d", stats.Hops, n/2/2)
	}
}

func TestBufferedBeatsDropRetryOnContention(t *testing.T) {
	// Under heavy contention, drop-retry wastes whole delivery cycles on
	// messages that lose at the last switch; backpressure queues don't. In
	// tick currency, a retry cycle costs ~2·lg n ticks while a buffered hop
	// costs ~1.
	n := 64
	ft := core.NewUniversal(n, 16)
	ms := workload.Random(n, 6*n, 3)
	buffered := RunBuffered(ft, ms, 4)
	engine := New(ft, concentrator.KindIdeal, 0)
	online := RunOnlineRandom(engine, ms, 5)
	bufferedTicks := buffered.Hops // ~1 tick per hop once the pipe is full
	onlineTicks := online.Cycles * MaxCycleTicks(ft, 0)
	if bufferedTicks >= onlineTicks {
		t.Errorf("buffered (%d ticks) not better than drop-retry (%d ticks)",
			bufferedTicks, onlineTicks)
	}
}

func TestBufferedLatencyReflectsLocality(t *testing.T) {
	n := 256
	ft := core.NewUniversal(n, 64)
	local := RunBuffered(ft, workload.KLocal(n, 300, 2, 7), 8)
	global := RunBuffered(ft, workload.BitReversal(n), 8)
	if local.MeanLatency >= global.MeanLatency {
		t.Errorf("local latency %.1f not below global %.1f", local.MeanLatency, global.MeanLatency)
	}
}

func TestBufferedEmptyAndBadDepth(t *testing.T) {
	ft := core.NewConstant(8, 1)
	stats := RunBuffered(ft, nil, 1)
	if stats.Hops != 0 || stats.Delivered != 0 {
		t.Errorf("empty run: %+v", stats)
	}
	defer func() {
		if recover() == nil {
			t.Errorf("depth 0 accepted")
		}
	}()
	RunBuffered(ft, core.MessageSet{{Src: 0, Dst: 1}}, 0)
}
