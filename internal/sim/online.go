package sim

import (
	"math"
	"math/rand"

	"fattree/internal/core"
)

// This file implements the on-line routing extension the paper announces in
// Section VI: "there are universal fat-trees for on-line routing ... a
// randomized routing algorithm that delivers all messages in O(λ(M) +
// lg n·lg lg n) delivery cycles with high probability" (Greenberg and
// Leiserson, reference [8]). The algorithm here captures its essential
// mechanism — contention resolved by fresh random priorities every cycle, so
// no adversarial arrival order can starve a message — and the E13 experiment
// measures delivered cycles against the λ + lg n·lg lg n envelope.

// OnlineBound returns the Greenberg–Leiserson envelope c·(λ + lg n·lg lg n)
// with constant c, the figure RunOnlineRandom is measured against.
func OnlineBound(t core.Topology, lambda float64, c float64) float64 {
	lg := float64(core.Lg(t.Processors()))
	lglg := math.Log2(lg)
	if lglg < 1 {
		lglg = 1
	}
	return c * (lambda + lg*lglg)
}

// RunOnlineRandom delivers ms with the randomized on-line protocol: every
// cycle, all undelivered messages contend with independently random
// priorities (implemented by shuffling the pending order, which determines
// who wins at every concentrator), losers are negatively acknowledged and
// retry. Unlike RunOnline's fixed arrival order, no message can be starved
// by a systematically unlucky position.
func RunOnlineRandom(e *Engine, ms core.MessageSet, seed int64) Stats {
	if err := ms.Validate(e.tree); err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(seed))
	var stats Stats
	pending := ms.Clone()
	// First-offer cycle stamps for the latency histogram; they ride the same
	// shuffle as pending (the swap consumes no randomness, so observing never
	// perturbs the routing).
	var ages, lat []int64
	if e.obs != nil {
		ages = make([]int64, len(pending))
	}
	// With random priorities (and possibly injected transient faults), an
	// individual cycle can make zero progress by bad luck; only a long streak
	// indicates genuine livelock.
	zeroStreak := 0
	const maxZeroStreak = 1000
	for len(pending) > 0 && stats.Cycles < maxCyclesDefault {
		rng.Shuffle(len(pending), func(i, j int) {
			pending[i], pending[j] = pending[j], pending[i]
			if ages != nil {
				ages[i], ages[j] = ages[j], ages[i]
			}
		})
		if stats.Cycles > 0 && e.obs != nil {
			e.obs.Retries(len(pending)) // re-offered losers of earlier cycles
		}
		delivered, res := e.RunCycle(pending)
		stats.Cycles++
		stats.Delivered += res.Delivered
		stats.Drops += res.Dropped
		stats.Deferrals += res.Deferred
		stats.PerCycle = append(stats.PerCycle, res.Delivered)
		var next core.MessageSet
		var nextAges []int64
		for i, ok := range delivered {
			if !ok {
				next = append(next, pending[i])
				if ages != nil {
					nextAges = append(nextAges, ages[i])
				}
			} else if ages != nil {
				lat = append(lat, int64(stats.Cycles)-ages[i])
			}
		}
		if e.obs != nil {
			e.obs.Latencies(lat)
			lat = lat[:0]
		}
		if res.Delivered == 0 {
			zeroStreak++
			if zeroStreak >= maxZeroStreak {
				return stats
			}
		} else {
			zeroStreak = 0
		}
		pending, ages = next, nextAges
	}
	return stats
}
